#include "bench_common.hpp"

#include <cstdio>
#include <map>

#include "util/timer.hpp"

namespace bdsm::bench {

const LabeledGraph& CachedDataset(DatasetId id) {
  static std::map<DatasetId, LabeledGraph> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, LoadDataset(id)).first;
  }
  return it->second;
}

std::vector<QueryGraph> MakeQuerySet(const LabeledGraph& g,
                                     QueryGraph::StructureClass cls,
                                     size_t num_vertices, size_t count,
                                     uint64_t seed) {
  QueryExtractor ex(g, seed);
  return ex.ExtractSet(num_vertices, cls, count);
}

UpdateBatch MakeRateBatch(const LabeledGraph& g, const DatasetSpec& spec,
                          double rate, const Scale& scale, uint64_t seed) {
  // Rate is applied against min(|E|, 10 x cap) so rate sweeps (Fig. 9)
  // scale linearly while the default 10% rate hits exactly the cap.
  double base = static_cast<double>(
      std::min<size_t>(g.NumEdges(), scale.max_batch_ops * 10));
  size_t count = std::min<size_t>(scale.max_batch_ops,
                                  static_cast<size_t>(rate * base));
  UpdateStreamGenerator gen(seed);
  size_t elabels = spec.edge_labels > 1 ? spec.edge_labels : 0;
  return gen.MakeInsertions(g, count, elabels);
}

CellResult RunEngineCell(const std::string& engine_name,
                         const LabeledGraph& g,
                         const std::vector<QueryGraph>& queries,
                         const UpdateBatch& batch, const Scale& scale,
                         GammaOptions gamma_options) {
  CellResult cell;
  EngineOptions opts;
  opts.gamma = gamma_options;
  opts.gamma.device.host_budget_seconds = scale.query_budget_s;
  opts.csm_result_cap = opts.gamma.result_cap;  // same cap both families
  opts.csm_budget_seconds = scale.query_budget_s;

  double total = 0.0, util = 0.0;
  for (const QueryGraph& q : queries) {
    auto engine = MakeEngine(engine_name, g, opts);
    QueryId id = engine->AddQuery(q);
    BatchReport report = engine->ProcessBatch(batch);
    const QueryReport* qr = report.Find(id);
    if (qr == nullptr || qr->Truncated()) {
      ++cell.unsolved;
      continue;
    }
    cell.total_matches += qr->TotalMatches();
    total += engine->ModelsDevice()
                 ? qr->ModeledSeconds(opts.gamma.device)
                 : qr->host_wall_seconds;
    util += qr->match_stats.Utilization();
    ++cell.solved;
  }
  cell.avg_latency_s = cell.solved ? total / double(cell.solved) : 0.0;
  cell.avg_utilization = cell.solved ? util / double(cell.solved) : 0.0;
  return cell;
}

std::string FormatCell(const CellResult& r) {
  char buf[64];
  if (r.solved == 0) {
    snprintf(buf, sizeof(buf), "t/o(%zu)", r.unsolved);
  } else if (r.unsolved > 0) {
    snprintf(buf, sizeof(buf), "%.4g(%zu)", r.avg_latency_s, r.unsolved);
  } else {
    snprintf(buf, sizeof(buf), "%.4g", r.avg_latency_s);
  }
  return buf;
}

void PrintHeader(const char* experiment, const char* what,
                 const Scale& scale) {
  printf("=== %s ===\n", experiment);
  printf("%s\n", what);
  printf(
      "scaling: %zu queries/set (paper 50), %.2gs budget/query (paper "
      "1800s), batch cap %zu ops; datasets are synthetic twins "
      "(DESIGN.md #2); CSM = host wall seconds, GAMMA = modeled device "
      "seconds.\n\n",
      scale.queries_per_set, scale.query_budget_s, scale.max_batch_ops);
}

}  // namespace bdsm::bench
