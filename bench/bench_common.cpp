#include "bench_common.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "obs/provenance.hpp"
#include "util/timer.hpp"

namespace bdsm::bench {

const LabeledGraph& CachedDataset(DatasetId id) {
  static std::map<DatasetId, LabeledGraph> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, LoadDataset(id)).first;
  }
  return it->second;
}

std::vector<QueryGraph> MakeQuerySet(const LabeledGraph& g,
                                     QueryGraph::StructureClass cls,
                                     size_t num_vertices, size_t count,
                                     uint64_t seed) {
  QueryExtractor ex(g, seed);
  return ex.ExtractSet(num_vertices, cls, count);
}

UpdateBatch MakeRateBatch(const LabeledGraph& g, const DatasetSpec& spec,
                          double rate, const Scale& scale, uint64_t seed) {
  // Rate is applied against min(|E|, 10 x cap) so rate sweeps (Fig. 9)
  // scale linearly while the default 10% rate hits exactly the cap.
  double base = static_cast<double>(
      std::min<size_t>(g.NumEdges(), scale.max_batch_ops * 10));
  size_t count = std::min<size_t>(scale.max_batch_ops,
                                  static_cast<size_t>(rate * base));
  UpdateStreamGenerator gen(seed);
  size_t elabels = spec.edge_labels > 1 ? spec.edge_labels : 0;
  return gen.MakeInsertions(g, count, elabels);
}

CellResult RunEngineCell(const std::string& engine_name,
                         const LabeledGraph& g,
                         const std::vector<QueryGraph>& queries,
                         const UpdateBatch& batch, const Scale& scale,
                         GammaOptions gamma_options) {
  CellResult cell;
  EngineOptions opts;
  opts.gamma = gamma_options;
  opts.gamma.device.host_budget_seconds = scale.query_budget_s;
  opts.csm_result_cap = opts.gamma.result_cap;  // same cap both families
  opts.csm_budget_seconds = scale.query_budget_s;

  double total = 0.0, util = 0.0;
  EngineInfo info;
  for (const QueryGraph& q : queries) {
    auto engine = MakeEngine(engine_name, g, opts);
    info = engine->Describe();
    QueryId id = engine->AddQuery(q);
    BatchReport report = engine->ProcessBatch(batch);
    const QueryReport* qr = report.Find(id);
    if (qr == nullptr || qr->Truncated()) {
      ++cell.unsolved;
      continue;
    }
    cell.total_matches += qr->TotalMatches();
    // The engine's declared clock picks the honest latency.
    switch (info.clock) {
      case ClockDomain::kModeledDevice:
        total += qr->ModeledSeconds(opts.gamma.device);
        break;
      case ClockDomain::kCriticalPath:
        total += report.critical_path_seconds;
        break;
      case ClockDomain::kHostWall:
        total += qr->host_wall_seconds;
        break;
    }
    util += qr->match_stats.Utilization();
    ++cell.solved;
  }
  cell.avg_latency_s = cell.solved ? total / double(cell.solved) : 0.0;
  cell.avg_utilization = cell.solved ? util / double(cell.solved) : 0.0;

  if (JsonSink::Instance().enabled()) {
    if (info.canonical_spec.empty()) {
      // Empty query set: no engine was built above, so describe a
      // throwaway instance to keep the provenance fields present.
      info = MakeEngine(engine_name, g, opts)->Describe();
    }
    JsonRow row;
    row.Set("engine", engine_name)
        .Set("spec", info.canonical_spec)
        .Set("clock", ClockDomainName(info.clock))
        .Set("avg_latency_s", cell.avg_latency_s)
        .Set("solved", cell.solved)
        .Set("unsolved", cell.unsolved)
        .Set("total_matches", static_cast<size_t>(cell.total_matches))
        .Set("avg_utilization", cell.avg_utilization);
    JsonSink::Instance().Add(std::move(row));
  }
  return cell;
}

std::vector<CellResult> RunMethodRow(const LabeledGraph& g,
                                     const std::vector<QueryGraph>& queries,
                                     const UpdateBatch& batch,
                                     const Scale& scale) {
  std::vector<CellResult> results;
  auto run = [&](const char* method) {
    CellResult r = RunEngineCell(method, g, queries, batch, scale);
    printf(" %12s", FormatCell(r).c_str());
    fflush(stdout);
    results.push_back(r);
  };
  for (const char* m : kBaselineMethods) run(m);
  run("gamma");
  return results;
}

std::string FormatCell(const CellResult& r) {
  char buf[64];
  if (r.solved == 0) {
    snprintf(buf, sizeof(buf), "t/o(%zu)", r.unsolved);
  } else if (r.unsolved > 0) {
    snprintf(buf, sizeof(buf), "%.4g(%zu)", r.avg_latency_s, r.unsolved);
  } else {
    snprintf(buf, sizeof(buf), "%.4g", r.avg_latency_s);
  }
  return buf;
}

void PrintHeader(const char* experiment, const char* what,
                 const Scale& scale) {
  printf("=== %s ===\n", experiment);
  printf("%s\n", what);
  printf(
      "scaling: %zu queries/set (paper 50), %.2gs budget/query (paper "
      "1800s), batch cap %zu ops; datasets are synthetic twins "
      "(docs/BENCHMARKS.md); CSM = host wall seconds, GAMMA = modeled "
      "device seconds.\n\n",
      scale.queries_per_set, scale.query_budget_s, scale.max_batch_ops);
}

// ------------------------------------------------- perf trajectory JSON

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (u < 0x20) {  // JSON forbids raw control characters
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  char buf[40];
  snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; a bench emitting one is a bug we
  // still want visible in the file, not a parse error.
  if (std::strchr(buf, 'n') || std::strchr(buf, 'i')) {
    return "null";
  }
  return buf;
}

}  // namespace

void JsonRow::Encode(const std::string& key, std::string literal) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(literal);
      return;
    }
  }
  fields_.emplace_back(key, std::move(literal));
}

JsonRow& JsonRow::Set(const std::string& key, double value) {
  Encode(key, JsonNumber(value));
  return *this;
}

JsonRow& JsonRow::Set(const std::string& key, size_t value) {
  Encode(key, std::to_string(value));
  return *this;
}

JsonRow& JsonRow::Set(const std::string& key, const std::string& value) {
  Encode(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonRow& JsonRow::SetBool(const std::string& key, bool value) {
  Encode(key, value ? "true" : "false");
  return *this;
}

JsonSink& JsonSink::Instance() {
  static JsonSink sink;
  return sink;
}

void JsonSink::Open(const std::string& bench_name, const std::string& path) {
  bench_name_ = bench_name;
  path_ = path;
}

void JsonSink::OpenCell(const std::string& bench_name,
                        const std::string& out_dir,
                        const std::string& cell_id,
                        const std::string& cell_key) {
  bench_name_ = bench_name;
  path_ = out_dir + "/" + cell_id + ".json";
  cell_id_ = cell_id;
  cell_key_ = cell_key;
}

void JsonSink::SetContextLiteral(const std::string& key,
                                 std::string literal) {
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = std::move(literal);
      return;
    }
  }
  context_.emplace_back(key, std::move(literal));
}

void JsonSink::Context(const std::string& key, const std::string& value) {
  SetContextLiteral(key, "\"" + JsonEscape(value) + "\"");
}

void JsonSink::Context(const std::string& key, double value) {
  SetContextLiteral(key, JsonNumber(value));
}

void JsonSink::Context(const std::string& key, size_t value) {
  SetContextLiteral(key, std::to_string(value));
}

void JsonSink::ClearContext(const std::string& key) {
  for (auto it = context_.begin(); it != context_.end(); ++it) {
    if (it->first == key) {
      context_.erase(it);
      return;
    }
  }
}

void JsonSink::Add(JsonRow row) {
  if (!enabled()) return;
  JsonRow merged;
  for (const auto& [k, v] : context_) merged.Encode(k, v);
  for (const auto& [k, v] : row.fields_) merged.Encode(k, v);
  rows_.push_back(std::move(merged));
}

void JsonSink::Flush() {
  if (!enabled()) return;
  // Cell mode seals the file atomically: write + fsync a temp sibling,
  // then rename over the final path, so run_matrix.py can treat "the
  // file exists and parses" as "this cell completed".  The rename
  // happens only after FinishBench() — atexit also runs on the
  // validation exit(2)/return-nonzero paths, and a failed run must
  // leave at most the .tmp post-mortem, never a sealed file.
  const bool cell_mode = !cell_id_.empty();
  const std::string write_path = cell_mode ? path_ + ".tmp" : path_;
  FILE* f = fopen(write_path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench: cannot write %s\n", write_path.c_str());
    return;
  }
  fprintf(f, "{\n  \"schema\": \"bdsm-bench-v1\",\n  \"bench\": \"%s\",\n",
          JsonEscape(bench_name_).c_str());
  if (cell_mode) {
    fprintf(f, "  \"cell_id\": \"%s\",\n", JsonEscape(cell_id_).c_str());
    if (!cell_key_.empty()) {
      fprintf(f, "  \"cell_key\": \"%s\",\n",
              JsonEscape(cell_key_).c_str());
    }
  }
  fprintf(f, "  \"provenance\": {\"tool\": \"%s\", \"git\": \"%s\"},\n",
          JsonEscape(bench_name_).c_str(),
          JsonEscape(obs::GitDescribe()).c_str());
  fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows_.size(); ++i) {
    fprintf(f, "    {");
    const auto& fields = rows_[i].fields_;
    for (size_t j = 0; j < fields.size(); ++j) {
      fprintf(f, "%s\"%s\": %s", j ? ", " : "",
              JsonEscape(fields[j].first).c_str(), fields[j].second.c_str());
    }
    fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  fprintf(f, "  ]%s\n}\n", cell_mode ? ",\n  \"sealed\": true" : "");
  if (cell_mode) {
    fflush(f);
    fsync(fileno(f));
  }
  fclose(f);
  if (cell_mode && !complete_) {
    fprintf(stderr,
            "bench: run did not complete; leaving %s unsealed "
            "(post-mortem at %s)\n",
            path_.c_str(), write_path.c_str());
    return;
  }
  if (cell_mode && rename(write_path.c_str(), path_.c_str()) != 0) {
    fprintf(stderr, "bench: cannot seal %s\n", path_.c_str());
    return;
  }
  // Status goes to stderr: bench stdout may itself be machine-readable
  // (bench_micro --benchmark_format=json) and must stay parseable.
  fprintf(stderr, "wrote %zu JSON rows to %s\n", rows_.size(),
          path_.c_str());
}

void InitBench(const char* bench_name, int argc, char** argv,
               const char* default_json_path) {
  const char* path = nullptr;
  const char* out_dir = nullptr;
  const char* cell_id = nullptr;
  const char* cell_key = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char** slot = nullptr;
    if (std::strcmp(argv[i], "--json") == 0) slot = &path;
    if (std::strcmp(argv[i], "--out-dir") == 0) slot = &out_dir;
    if (std::strcmp(argv[i], "--cell-id") == 0) slot = &cell_id;
    if (std::strcmp(argv[i], "--cell-key") == 0) slot = &cell_key;
    if (slot == nullptr) continue;
    if (i + 1 >= argc) {
      // Fail fast: silently dropping the trajectory after a minutes-long
      // run is worse than refusing to start.
      fprintf(stderr, "%s: %s needs an argument\n", bench_name, argv[i]);
      exit(2);
    }
    *slot = argv[i + 1];
  }
  if ((out_dir == nullptr) != (cell_id == nullptr)) {
    fprintf(stderr,
            "%s: --out-dir and --cell-id must be given together "
            "(docs/EXPERIMENTS.md)\n",
            bench_name);
    exit(2);
  }
  if (out_dir != nullptr && path != nullptr) {
    fprintf(stderr,
            "%s: --json conflicts with --out-dir/--cell-id (a cell row "
            "file has exactly one destination)\n",
            bench_name);
    exit(2);
  }
  if (cell_key != nullptr && out_dir == nullptr) {
    fprintf(stderr,
            "%s: --cell-key only makes sense with --out-dir/--cell-id "
            "(docs/EXPERIMENTS.md)\n",
            bench_name);
    exit(2);
  }
  if (out_dir != nullptr) {
    JsonSink::Instance().OpenCell(bench_name, out_dir, cell_id,
                                  cell_key != nullptr ? cell_key : "");
    std::atexit([] { JsonSink::Instance().Flush(); });
    return;
  }
  if (path == nullptr) path = default_json_path;
  if (path != nullptr) {
    JsonSink::Instance().Open(bench_name, path);
    std::atexit([] { JsonSink::Instance().Flush(); });
  }
}

void FinishBench() { JsonSink::Instance().MarkComplete(); }

void JsonContext(const std::string& key, const std::string& value) {
  JsonSink::Instance().Context(key, value);
}
void JsonContext(const std::string& key, double value) {
  JsonSink::Instance().Context(key, value);
}
void JsonContext(const std::string& key, size_t value) {
  JsonSink::Instance().Context(key, value);
}

void JsonProvenance(const EngineInfo& info) {
  JsonProvenance(info.canonical_spec, info.clock);
}

void JsonProvenance(const std::string& canonical_spec, ClockDomain clock) {
  JsonContext("spec", canonical_spec);
  JsonContext("clock", ClockDomainName(clock));
}

}  // namespace bdsm::bench
