/// Reproduces **Fig. 13** — GPU utilization with and without work
/// stealing, vs query size |V(Q)| (a: GH, b: ST) and vs insertion rate
/// Ir (c: GH, d: ST), per structure class.
///
/// Paper shape: +ws utilization consistently above w/o ws (paper: avg
/// +17.5%, peak +33.8%); utilization declines as |V(Q)| / Ir grow; the
/// ws gap widens with both.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

namespace {

double UtilPct(const LabeledGraph& g,
               const std::vector<QueryGraph>& queries,
               const UpdateBatch& batch, StealPolicy policy,
               const Scale& scale) {
  GammaOptions opts;
  // The twins' batches (~400 updates) must outnumber the warps for
  // utilization to be meaningful (the paper's full-size batches dwarf
  // the 3090's 664 warps); scale the device accordingly.
  opts.device.num_sms = 16;
  opts.device.warps_per_block = 4;
  opts.device.steal_policy = policy;
  JsonContext("steal", policy == StealPolicy::kActive ? "ws" : "none");
  CellResult r = RunEngineCell("gamma", g, queries, batch, scale, opts);
  return 100.0 * r.avg_utilization;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("bench_fig13", argc, argv);
  Scale scale;
  PrintHeader("Figure 13",
              "GPU utilization vs |V(Q)| and vs Ir, with (ws) and "
              "without (w/o) work stealing",
              scale);

  for (const char* ds : {"GH", "ST"}) {
    const DatasetSpec& spec = DatasetByName(ds);
    const LabeledGraph& g = CachedDataset(spec.id);
    UpdateBatch batch = MakeRateBatch(g, spec, scale.default_rate, scale,
                                      scale.seed + 1);
    JsonSink::Instance().ClearContext("rate_pct");
    printf("--- %s: utilization%% vs |V(Q)| ---\n", ds);
    printf("%-7s %6s | %8s %8s\n", "class", "|V(Q)|", "ws", "w/o ws");
    for (auto cls : AllClasses()) {
      for (size_t nq : {4, 6, 8, 10}) {
        auto queries =
            MakeQuerySet(g, cls, nq, scale.queries_per_set, scale.seed + nq);
        if (queries.empty()) continue;
        JsonContext("dataset", ds);
        JsonContext("structure", ToString(cls));
        JsonContext("query_size", nq);
        double with_ws =
            UtilPct(g, queries, batch, StealPolicy::kActive, scale);
        double without =
            UtilPct(g, queries, batch, StealPolicy::kNone, scale);
        printf("%-7s %6zu | %7.1f%% %7.1f%%\n", ToString(cls), nq, with_ws,
               without);
        fflush(stdout);
      }
    }
    JsonSink::Instance().ClearContext("query_size");
    printf("--- %s: utilization%% vs Ir ---\n", ds);
    printf("%-7s %6s | %8s %8s\n", "class", "Ir", "ws", "w/o ws");
    for (auto cls : AllClasses()) {
      auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                  scale.queries_per_set, scale.seed);
      if (queries.empty()) continue;
      for (int rate : {2, 6, 10}) {
        UpdateBatch rb = MakeRateBatch(g, spec, rate / 100.0, scale,
                                       scale.seed + rate);
        JsonContext("dataset", ds);
        JsonContext("structure", ToString(cls));
        JsonContext("rate_pct", static_cast<size_t>(rate));
        double with_ws = UtilPct(g, queries, rb, StealPolicy::kActive,
                                 scale);
        double without = UtilPct(g, queries, rb, StealPolicy::kNone,
                                 scale);
        printf("%-7s %5d%% | %7.1f%% %7.1f%%\n", ToString(cls), rate,
               with_ws, without);
        fflush(stdout);
      }
    }
  }
  printf("\nShape checks (paper): ws >= w/o ws everywhere; utilization "
         "falls as |V(Q)|/Ir rise; the ws gap widens with both.\n");
  FinishBench();
  return 0;
}
