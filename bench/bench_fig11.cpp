/// Reproduces **Fig. 11** — mixed workloads (insertion:deletion = 2:1)
/// on GH and ST, per structure class, all five methods.
///
/// Paper shape: same ordering as the pure-insertion workloads (Fig. 9);
/// runtime rises as the query class gets sparser; GAMMA lowest.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_fig11", argc, argv);
  Scale scale;
  PrintHeader("Figure 11",
              "Mixed workloads, insert:delete = 2:1 (paper follows "
              "CaLiG's setup)",
              scale);

  for (const char* ds : {"GH", "ST"}) {
    const DatasetSpec& spec = DatasetByName(ds);
    const LabeledGraph& g = CachedDataset(spec.id);
    UpdateStreamGenerator gen(scale.seed + 5);
    UpdateBatch batch = SanitizeBatch(
        g, gen.MakeMixed(g, scale.max_batch_ops, 2, 1,
                         spec.edge_labels > 1 ? spec.edge_labels : 0));
    printf("--- %s ---\n", ds);
    printf("%-7s | %12s %12s %12s %12s %12s\n", "class", "TF", "SYM", "RF",
           "CL", "GAMMA");
    for (auto cls : AllClasses()) {
      auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                  scale.queries_per_set, scale.seed);
      if (queries.empty()) {
        printf("%-7s | (no extractable queries)\n", ToString(cls));
        continue;
      }
      JsonContext("dataset", ds);
      JsonContext("structure", ToString(cls));
      printf("%-7s |", ToString(cls));
      RunMethodRow(g, queries, batch, scale);
      printf("\n");
    }
  }
  printf("\nShape checks (paper): ordering matches the single-polarity "
         "workloads; runtime rises Dense -> Sparse -> Tree; GAMMA "
         "lowest.\n");
  FinishBench();
  return 0;
}
