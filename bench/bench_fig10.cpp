/// Reproduces **Fig. 10** — latency vs update-region density on LS:
/// insertion endpoints sampled from k-cores of increasing k (the paper
/// uses k in {4,8,12} labeled Low/Middle/High; the scaled twin's
/// degeneracy is smaller, so k is scaled proportionally and printed).
///
/// Paper shape: all methods slow down in denser regions; GAMMA
/// accelerates relatively more (more parallel work, better balance).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "graph/kcore.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_fig10", argc, argv);
  Scale scale;
  PrintHeader("Figure 10",
              "Latency vs density of update regions (k-core sampled "
              "insertions) on LS",
              scale);

  const DatasetSpec& spec = DatasetByName("LS");
  const LabeledGraph& g = CachedDataset(spec.id);
  uint32_t degen = Degeneracy(g);
  // Scale the paper's {4, 8, 12} onto the twin's core spectrum.
  std::vector<std::pair<const char*, uint32_t>> levels = {
      {"Low", std::max(1u, degen / 3)},
      {"Middle", std::max(2u, 2 * degen / 3)},
      {"High", degen}};
  printf("twin degeneracy = %u; density levels use k = {%u, %u, %u}\n\n",
         degen, levels[0].second, levels[1].second, levels[2].second);

  for (auto cls : AllClasses()) {
    auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                scale.queries_per_set, scale.seed);
    printf("--- %s ---\n", ToString(cls));
    if (queries.empty()) {
      printf("(no extractable queries)\n");
      continue;
    }
    printf("%-8s | %12s %12s %12s %12s %12s\n", "density", "TF", "SYM",
           "RF", "CL", "GAMMA");
    for (auto [name, k] : levels) {
      UpdateStreamGenerator gen(scale.seed + k);
      UpdateBatch batch = gen.MakeCoreInsertions(
          g, scale.max_batch_ops / 2, k,
          spec.edge_labels > 1 ? spec.edge_labels : 0);
      JsonContext("dataset", "LS");
      JsonContext("structure", ToString(cls));
      JsonContext("density", name);
      printf("%-8s |", name);
      RunMethodRow(g, queries, batch, scale);
      printf("\n");
    }
  }
  printf("\nShape checks (paper): runtime increases with density for all "
         "methods; GAMMA's relative advantage is largest at High.\n");
  FinishBench();
  return 0;
}
