/// Reproduces **Table III** — overall performance: average query latency
/// (seconds) and unsolved-query counts for TF / SYM / RF / CL / GAMMA on
/// all six datasets and the three query structure classes.
///
/// Paper shape to verify: GAMMA best or competitive everywhere; RF the
/// strongest baseline; CL collapsing on the edge-labeled NF/LS; latency
/// and unsolved counts growing Dense -> Sparse -> Tree.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_table3", argc, argv);
  Scale scale;
  PrintHeader("Table III",
              "Overall performance vs baselines "
              "(avg latency s, (n) = unsolved)",
              scale);

  // One loop, one code path: every column is just an engine name given
  // to the unified registry (core/engine.hpp), run via RunMethodRow.
  printf("%-7s %-4s |", "QS", "DS");
  for (const char* m : kBaselineMethods) printf(" %12s", m);
  printf(" %12s\n", "gamma");
  printf("---------------------------------------------------------------"
         "-------------\n");
  for (auto cls : AllClasses()) {
    for (const DatasetSpec& spec : AllDatasets()) {
      const LabeledGraph& g = CachedDataset(spec.id);
      auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                  scale.queries_per_set, scale.seed);
      if (queries.empty()) {
        printf("%-7s %-4s | (no extractable %s queries)\n", ToString(cls),
               spec.short_name, ToString(cls));
        continue;
      }
      UpdateBatch batch = MakeRateBatch(g, spec, scale.default_rate, scale,
                                        scale.seed + 1);
      JsonContext("structure", ToString(cls));
      JsonContext("dataset", spec.short_name);
      printf("%-7s %-4s |", ToString(cls), spec.short_name);
      RunMethodRow(g, queries, batch, scale);
      printf("\n");
    }
  }
  printf("\nShape checks (paper): GAMMA lowest/competitive in every row; "
         "RF best baseline; CL times out on NF/LS sparse+tree.\n");
  FinishBench();
  return 0;
}
