/// Serving-layer bench (extension; no paper counterpart): wall-clock
/// throughput of the sharded concurrent serving path
/// (serve/sharded_engine.hpp) as the shard count grows, for a
/// device-modeled inner engine ("gamma") and a CPU baseline ("rf").
///
/// Sharding fans each batch's phases across N inner engines on a
/// thread pool, so different query partitions genuinely run on
/// different cores.  Batches are fed through the async front door
/// (SubmitBatch) the way a serving deployment would.  Two throughputs
/// are reported, following the repo's convention of separating what
/// this host measures from what the design delivers:
///  * measured wall  — end-to-end batches/s on THIS host.  Scales with
///    shards only up to the core count (a 1-core CI container shows
///    ~flat wall regardless of sharding).
///  * critical path  — batches/s from ShardedEngine's critical-path
///    accounting (per phase, the slowest shard's thread-CPU seconds):
///    the wall-clock a host with >= N free cores achieves.  This is
///    the serving analogue of "modeled device seconds" and the
///    monotone-scaling shape to check.
///
/// Expected shape: critical-path batches/s increases monotonically
/// from 1 to 4 shards on the default workload, flattening once shards
/// outnumber queries (an empty shard can't shorten the slowest one).
///
/// Emits the perf trajectory to BENCH_serving.json by default
/// (override with --json <path>; schema in docs/BENCHMARKS.md).
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "serve/sharded_engine.hpp"
#include "util/timer.hpp"

using namespace bdsm;
using namespace bdsm::bench;

namespace {

/// The serving workload: `num_queries` patterns over the dataset twin
/// and a pre-built stream of sanitized batches.
struct Workload {
  const LabeledGraph* graph;
  std::vector<QueryGraph> queries;
  std::vector<UpdateBatch> stream;
};

Workload MakeWorkload(const Scale& scale, size_t num_queries,
                      size_t num_batches, size_t ops_per_batch) {
  Workload w;
  const DatasetSpec& spec = DatasetByName("GH");
  w.graph = &CachedDataset(spec.id);
  w.queries = MakeQuerySet(*w.graph, QueryGraph::StructureClass::kSparse,
                           scale.default_query_size, num_queries,
                           scale.seed);
  if (w.queries.size() < num_queries) {
    auto extra = MakeQuerySet(*w.graph, QueryGraph::StructureClass::kTree,
                              scale.default_query_size,
                              num_queries - w.queries.size(),
                              scale.seed + 1);
    w.queries.insert(w.queries.end(), extra.begin(), extra.end());
  }

  UpdateStreamGenerator gen(scale.seed + 2);
  size_t elabels = spec.edge_labels > 1 ? spec.edge_labels : 0;
  LabeledGraph evolving = *w.graph;
  for (size_t i = 0; i < num_batches; ++i) {
    UpdateBatch b = SanitizeBatch(
        evolving, gen.MakeMixed(evolving, ops_per_batch, 2, 1, elabels));
    ApplyBatch(&evolving, b);
    w.stream.push_back(std::move(b));
  }
  return w;
}

struct ServingResult {
  double wall_s = 0.0;           ///< measured on this host
  double critical_path_s = 0.0;  ///< wall on a >=N-core host
  double batches_per_s_wall = 0.0;
  double batches_per_s = 0.0;    ///< headline: critical-path throughput
  size_t total_matches = 0;
};

/// Feeds the whole stream through SubmitBatch and waits for every
/// future; engine construction and query registration are offline
/// (not timed), matching how the figure benches treat index builds.
ServingResult RunServingCell(const EngineSpec& spec, const Workload& w,
                             const EngineOptions& opts,
                             EngineInfo* info_out) {
  auto engine = MakeEngine(spec, *w.graph, opts);
  for (const QueryGraph& q : w.queries) engine->AddQuery(q);
  *info_out = engine->Describe();

  // The registry hands back the Engine interface; the async front door
  // (SubmitBatch) is a serving-layer extension beyond it, so this
  // bench — which exists to exercise exactly that door — downcasts to
  // the concrete serving type it just asked the registry to build.
  auto* sharded = dynamic_cast<serve::ShardedEngine*>(engine.get());

  ServingResult r;
  Timer wall;
  std::vector<std::future<BatchReport>> futures;
  for (const UpdateBatch& b : w.stream) {
    futures.push_back(sharded->SubmitBatch(b));
  }
  for (auto& f : futures) {
    r.total_matches += f.get().TotalMatches();
  }
  r.wall_s = wall.ElapsedSeconds();
  r.critical_path_s = sharded->CriticalPathSeconds();
  double n = double(w.stream.size());
  r.batches_per_s_wall = r.wall_s > 0 ? n / r.wall_s : 0.0;
  r.batches_per_s =
      r.critical_path_s > 0 ? n / r.critical_path_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("bench_serving", argc, argv, "BENCH_serving.json");
  Scale scale;
  PrintHeader("Serving throughput (extension)",
              "Sharded concurrent serving: wall-clock batches/s vs shard "
              "count, async SubmitBatch front door",
              scale);

  const size_t kQueries = 12, kBatches = 8, kOps = 300;
  Workload w = MakeWorkload(scale, kQueries, kBatches, kOps);
  printf("workload: GH twin, %zu queries, %zu batches x ~%zu ops\n\n",
         w.queries.size(), w.stream.size(), kOps);
  JsonContext("dataset", "GH");
  JsonContext("num_queries", w.queries.size());
  JsonContext("num_batches", w.stream.size());

  EngineOptions opts;
  opts.gamma.device.host_budget_seconds = scale.query_budget_s;
  opts.csm_budget_seconds = scale.query_budget_s;
  opts.serve_queue_capacity = kBatches;

  for (const char* inner : {"gamma", "rf"}) {
    printf("--- inner engine \"%s\" ---\n", inner);
    printf("%8s | %12s %14s | %12s %14s | %8s\n", "shards", "wall(ms)",
           "wall-b/s", "critpath(ms)", "critpath-b/s", "speedup");
    double base = 0.0;
    for (size_t shards : {1, 2, 4, 8}) {
      // Compose the spec as a tree, not by string concatenation — the
      // same shape any config-driven deployment would build.
      EngineSpec spec;
      spec.name = "sharded";
      spec.children.push_back(EngineSpec{inner, {}, {}});
      spec.options.emplace_back("shards", std::to_string(shards));
      EngineInfo info;
      ServingResult r = RunServingCell(spec, w, opts, &info);
      if (shards == 1) base = r.critical_path_s;
      double speedup =
          r.critical_path_s > 0 ? base / r.critical_path_s : 0.0;
      printf("%8zu | %12.1f %14.2f | %12.1f %14.2f | %7.2fx\n", shards,
             r.wall_s * 1e3, r.batches_per_s_wall,
             r.critical_path_s * 1e3, r.batches_per_s, speedup);
      fflush(stdout);

      JsonRow row;
      row.Set("engine", inner)
          .Set("spec", info.canonical_spec)
          .Set("clock", ClockDomainName(info.clock))
          .Set("shards", shards)
          .Set("wall_s", r.wall_s)
          .Set("batches_per_s_wall", r.batches_per_s_wall)
          .Set("critical_path_s", r.critical_path_s)
          .Set("batches_per_s", r.batches_per_s)
          .Set("speedup_vs_1", speedup)
          .Set("total_matches", r.total_matches);
      JsonSink::Instance().Add(std::move(row));
    }
    printf("\n");
  }

  printf("Shape check: critical-path batches/s rises monotonically "
         "1 -> 4 shards (query partitions run concurrently), flattening "
         "once shards outnumber queries; measured wall tracks it only "
         "up to this host's core count.\n");
  FinishBench();
  return 0;
}
