/// Reproduces **Fig. 12** — preprocessing analysis: GPMA graph-update
/// time (ms) and its ratio to the total running time, per dataset, at
/// the default 10% update rate.
///
/// Paper shape: update time scales with the update volume (larger
/// datasets -> more time), and stays a modest fraction of the total
/// (the matching kernel dominates).
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_fig12", argc, argv);
  Scale scale;
  PrintHeader("Figure 12",
              "Graph-update (GPMA) time and ratio of total, 10% rate",
              scale);

  printf("%-4s | %10s %10s %8s | %12s\n", "DS", "update(ms)", "match(ms)",
         "ratio%", "encode-host(ms)");
  for (const DatasetSpec& spec : AllDatasets()) {
    const LabeledGraph& g = CachedDataset(spec.id);
    auto queries = MakeQuerySet(
        g, QueryGraph::StructureClass::kSparse, scale.default_query_size,
        1, scale.seed);
    if (queries.empty()) {
      queries = MakeQuerySet(g, QueryGraph::StructureClass::kTree,
                             scale.default_query_size, 1, scale.seed);
    }
    if (queries.empty()) {
      printf("%-4s | (no extractable queries)\n", spec.short_name);
      continue;
    }
    UpdateBatch batch = MakeRateBatch(g, spec, scale.default_rate, scale,
                                      scale.seed + 1);
    EngineOptions opts;
    opts.gamma.device.host_budget_seconds = scale.query_budget_s;
    auto engine = MakeEngine("gamma", g, opts);
    JsonProvenance(engine->Describe());
    QueryId id = engine->AddQuery(queries[0]);
    BatchReport report = engine->ProcessBatch(batch);
    const QueryReport& res = *report.Find(id);
    double tick_ms = opts.gamma.device.TickSeconds() * 1e3;
    double update_ms = double(res.update_stats.makespan_ticks) * tick_ms;
    double match_ms = double(res.match_stats.makespan_ticks) * tick_ms;
    double ratio = update_ms + match_ms > 0
                       ? 100.0 * update_ms / (update_ms + match_ms)
                       : 0.0;
    printf("%-4s | %10.4f %10.4f %7.1f%% | %12.3f\n", spec.short_name,
           update_ms, match_ms, ratio,
           res.preprocess_host_seconds * 1e3);

    JsonRow row;
    row.Set("dataset", spec.short_name)
        .Set("update_ms", update_ms)
        .Set("match_ms", match_ms)
        .Set("update_ratio_pct", ratio)
        .Set("encode_host_ms", res.preprocess_host_seconds * 1e3);
    JsonSink::Instance().Add(std::move(row));
  }
  printf("\nShape checks (paper): update time grows with dataset size / "
         "update volume; ratio stays below ~40%%; CPU-side encoding is "
         "small and overlappable.\n");
  FinishBench();
  return 0;
}
