/// Design-choice ablation (paper §V-C; docs/BENCHMARKS.md): GPMA vs a
/// rebuild-per-batch CSR container for the device graph, across batch
/// sizes and two workload shapes.  Not a paper figure; it substantiates
/// the paper's adoption of GPMA ("for its simplicity and efficiency" in
/// applying update batches) with numbers.
///
/// Expected shape: rebuild cost is flat at ~2|E| entry moves regardless
/// of batch size or mix, GPMA's cost scales with the batch — so GPMA
/// wins by orders of magnitude at realistic (2-10%) rates, and the
/// advantage shrinks as the batch approaches |E|.  The churn rows
/// (delete-heavy mixed batches) lean on the deferred delete-phase
/// rebalancing: erases are in-place segment shifts with one windowed
/// redistribution pass per batch, so the gap over rebuild is widest
/// there.
#include <cstdio>

#include "bench_common.hpp"
#include "gpma/gpma_kernel.hpp"
#include "gpma/rebuild_container.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_ablation_container", argc, argv);
  // Container-level bench: GPMA is gamma's device graph container and
  // both contenders run on the modeled device clock; no Engine exists
  // to Describe(), so the provenance names the family.
  JsonProvenance("gamma", ClockDomain::kModeledDevice);
  Scale scale;
  PrintHeader("Ablation: graph container",
              "GPMA incremental updates vs full CSR rebuild (modeled "
              "device microseconds per batch)",
              scale);

  printf("%-4s %-7s %8s | %12s %12s | %8s\n", "DS", "mix", "batch",
         "GPMA(us)", "rebuild(us)", "ratio");
  for (const char* ds : {"GH", "ST", "LS"}) {
    const DatasetSpec& spec = DatasetByName(ds);
    const LabeledGraph& g = CachedDataset(spec.id);
    for (const char* mix : {"insert", "churn"}) {
      bool churn = mix[0] == 'c';
      for (size_t ops : {32, 128, 512, 2048}) {
        UpdateStreamGenerator gen(scale.seed + ops);
        size_t elabels = spec.edge_labels > 1 ? spec.edge_labels : 0;
        // Churn = delete-heavy 1:3 mix, the regime where the deferred
        // delete-phase rebalancing earns its keep.
        UpdateBatch batch =
            churn ? SanitizeBatch(g, gen.MakeMixed(g, ops, 1, 3, elabels))
                  : gen.MakeInsertions(g, ops, elabels);

        Gpma gpma(32);
        gpma.BuildFrom(g);
        Device dev_gpma;
        UpdatePlan gpma_plan = gpma.ApplyBatch(batch);
        DeviceStats s_gpma = SimulateGpmaUpdate(dev_gpma, gpma_plan);

        RebuildContainer rebuild;
        rebuild.BuildFrom(g);
        Device dev_rebuild;
        UpdatePlan rebuild_plan = rebuild.ApplyBatch(batch);
        DeviceStats s_rebuild =
            SimulateGpmaUpdate(dev_rebuild, rebuild_plan);

        double us_gpma = double(s_gpma.makespan_ticks) *
                         dev_gpma.config().TickSeconds() * 1e6;
        double us_rebuild = double(s_rebuild.makespan_ticks) *
                            dev_rebuild.config().TickSeconds() * 1e6;
        printf("%-4s %-7s %8zu | %12.3f %12.3f | %7.1fx\n", ds, mix,
               batch.size(), us_gpma, us_rebuild,
               us_gpma > 0 ? us_rebuild / us_gpma : 0.0);

        JsonRow row;
        row.Set("dataset", ds)
            .Set("workload", mix)
            .Set("batch_ops", batch.size())
            .Set("gpma_us", us_gpma)
            .Set("rebuild_us", us_rebuild)
            .Set("rebuild_over_gpma",
                 us_gpma > 0 ? us_rebuild / us_gpma : 0.0);
        JsonSink::Instance().Add(std::move(row));
      }
    }
  }
  printf("\nShape check: rebuild cost ~constant in the batch size (full "
         "2|E| moves); GPMA cost tracks the batch; the ratio shrinks as "
         "batch size approaches |E| — incremental structures pay off "
         "exactly in the paper's 2-10%% regime.  Churn batches widen "
         "the gap further: deferred delete rebalancing keeps GPMA's "
         "per-batch work near the in-place minimum.\n");
  FinishBench();
  return 0;
}
