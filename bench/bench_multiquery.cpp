/// System extension bench: multi-pattern registration.
/// The paper evaluates per-query latency; production monitors register
/// many patterns against one graph.  This bench measures the benefit of
/// sharing the device graph and fusing all queries' seeds into one
/// kernel launch versus running one full engine per query.
///
/// Both contenders sit behind the unified Engine interface: "multi"
/// (shared GPMA, fused launches) and "gamma" (one device graph and
/// launch per query) — the comparison is literally the same loop with a
/// different registry name.
///
/// Expected shape: fused launches amortize device occupancy — modeled
/// makespan grows sub-linearly in the number of registered queries,
/// while per-query engines pay a full launch each.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

namespace {

/// Update + matching makespan of one ProcessBatch, in ticks.
uint64_t ReportTicks(const BatchReport& report) {
  return report.update_stats.makespan_ticks +
         report.match_stats.makespan_ticks;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("bench_multiquery", argc, argv);
  Scale scale;
  PrintHeader("Multi-query registration (extension)",
              "Fused multi-pattern launches (\"multi\") vs one engine "
              "per pattern (\"gamma\"), modeled device us per batch",
              scale);

  const DatasetSpec& spec = DatasetByName("GH");
  const LabeledGraph& g = CachedDataset(spec.id);
  auto pool = MakeQuerySet(g, QueryGraph::StructureClass::kSparse,
                           scale.default_query_size, 8, scale.seed);
  if (pool.size() < 8) {
    auto extra = MakeQuerySet(g, QueryGraph::StructureClass::kTree,
                              scale.default_query_size, 8 - pool.size(),
                              scale.seed + 1);
    pool.insert(pool.end(), extra.begin(), extra.end());
  }
  UpdateBatch batch =
      MakeRateBatch(g, spec, scale.default_rate, scale, scale.seed + 2);

  EngineOptions opts;
  opts.gamma.device.host_budget_seconds = scale.query_budget_s;
  double tick_us = opts.gamma.device.TickSeconds() * 1e6;

  // Row provenance: the measured system is the fused "multi" engine
  // (modeled-device clock); the per-engine contender it is compared
  // against rides along as baseline_spec.
  JsonProvenance(MakeEngine("multi", g, opts)->Describe());
  JsonContext("baseline_spec", "gamma");

  printf("%8s | %14s %14s | %8s\n", "#queries", "fused(us)",
         "per-engine(us)", "ratio");
  for (size_t nq : {1, 2, 4, 8}) {
    if (pool.size() < nq) break;

    uint64_t ticks[2] = {0, 0};
    const char* const contenders[2] = {"multi", "gamma"};
    for (int c = 0; c < 2; ++c) {
      auto engine = MakeEngine(contenders[c], g, opts);
      for (size_t i = 0; i < nq; ++i) engine->AddQuery(pool[i]);
      ticks[c] = ReportTicks(engine->ProcessBatch(batch));
    }

    double fused_us = double(ticks[0]) * tick_us;
    double sep_us = double(ticks[1]) * tick_us;
    printf("%8zu | %14.2f %14.2f | %7.2fx\n", nq, fused_us, sep_us,
           fused_us > 0 ? sep_us / fused_us : 0.0);
    fflush(stdout);

    JsonRow row;
    row.Set("num_queries", nq)
        .Set("fused_us", fused_us)
        .Set("per_engine_us", sep_us)
        .Set("fused_speedup", fused_us > 0 ? sep_us / fused_us : 0.0);
    JsonSink::Instance().Add(std::move(row));
  }

  // Dynamic query churn: register 8 patterns, retire half mid-stream —
  // the engine keeps serving the survivors without a rebuild.
  if (pool.size() >= 8) {
    auto engine = MakeEngine("multi", g, opts);
    std::vector<QueryId> ids;
    for (size_t i = 0; i < 8; ++i) ids.push_back(engine->AddQuery(pool[i]));
    uint64_t before = ReportTicks(engine->ProcessBatch(batch));
    for (size_t i = 0; i < 8; i += 2) engine->RemoveQuery(ids[i]);
    UpdateStreamGenerator gen(scale.seed + 3);
    UpdateBatch batch2 = gen.MakeInsertions(
        engine->host_graph(), batch.size(),
        spec.edge_labels > 1 ? spec.edge_labels : 0);
    uint64_t after = ReportTicks(engine->ProcessBatch(batch2));
    printf("\nchurn: 8 -> %zu live queries mid-stream; fused makespan "
           "%llu -> %llu ticks\n",
           engine->NumQueries(), static_cast<unsigned long long>(before),
           static_cast<unsigned long long>(after));
  }

  printf("\nShape check: the fused makespan grows sub-linearly with the "
         "number of registered patterns (shared update, shared launch "
         "occupancy); per-engine cost is ~linear.\n");
  FinishBench();
  return 0;
}
