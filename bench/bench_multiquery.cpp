/// System extension bench: multi-pattern registration (MultiGamma).
/// The paper evaluates per-query latency; production monitors register
/// many patterns against one graph.  This bench measures the benefit of
/// sharing the device graph and fusing all queries' seeds into one
/// kernel launch versus running one Gamma engine per query.
///
/// Expected shape: fused launches amortize device occupancy — modeled
/// makespan grows sub-linearly in the number of registered queries,
/// while per-query engines pay a full launch each.
#include <cstdio>

#include "bench_common.hpp"
#include "core/multi_gamma.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main() {
  Scale scale;
  PrintHeader("Multi-query registration (extension)",
              "Fused multi-pattern launches vs one engine per pattern "
              "(modeled device us per batch)",
              scale);

  const DatasetSpec& spec = DatasetByName("GH");
  const LabeledGraph& g = CachedDataset(spec.id);
  auto pool = MakeQuerySet(g, QueryGraph::StructureClass::kSparse,
                           scale.default_query_size, 8, scale.seed);
  if (pool.size() < 8) {
    auto extra = MakeQuerySet(g, QueryGraph::StructureClass::kTree,
                              scale.default_query_size, 8 - pool.size(),
                              scale.seed + 1);
    pool.insert(pool.end(), extra.begin(), extra.end());
  }
  UpdateBatch batch =
      MakeRateBatch(g, spec, scale.default_rate, scale, scale.seed + 2);

  printf("%8s | %14s %14s | %8s\n", "#queries", "fused(us)",
         "per-engine(us)", "ratio");
  for (size_t nq : {1, 2, 4, 8}) {
    if (pool.size() < nq) break;
    GammaOptions opts;
    opts.device.host_budget_seconds = scale.query_budget_s;

    MultiGamma multi(g, opts);
    for (size_t i = 0; i < nq; ++i) multi.AddQuery(pool[i]);
    MultiBatchResult mres = multi.ProcessBatch(batch);
    // Fused: one update + the two shared matching launches.
    uint64_t fused_ticks = mres.update_stats.makespan_ticks;
    if (!mres.per_query.empty()) {
      fused_ticks += mres.per_query[0].match_stats.makespan_ticks;
    }

    uint64_t separate_ticks = 0;
    for (size_t i = 0; i < nq; ++i) {
      Gamma gamma(g, pool[i], opts);
      BatchResult r = gamma.ProcessBatch(batch);
      separate_ticks +=
          r.update_stats.makespan_ticks + r.match_stats.makespan_ticks;
    }

    double tick_us = opts.device.TickSeconds() * 1e6;
    double fused_us = double(fused_ticks) * tick_us;
    double sep_us = double(separate_ticks) * tick_us;
    printf("%8zu | %14.2f %14.2f | %7.2fx\n", nq, fused_us, sep_us,
           fused_us > 0 ? sep_us / fused_us : 0.0);
    fflush(stdout);
  }
  printf("\nShape check: the fused makespan grows sub-linearly with the "
         "number of registered patterns (shared update, shared launch "
         "occupancy); per-engine cost is ~linear.\n");
  return 0;
}
