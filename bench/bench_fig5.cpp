/// Reproduces **Fig. 5** — BFS vs DFS in a GPU environment, on the LS
/// dataset: (a) device-memory usage over the run, (b) time breakdown
/// into computation and host<->device communication.
///
/// Paper shape: BFS memory grows rapidly and hits the device ceiling,
/// triggering spills whose communication time dominates (several times
/// the computation); DFS stays flat and never communicates.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/bfs_kernel.hpp"

using namespace bdsm;
using namespace bdsm::bench;

namespace {

struct KernelSetup {
  LabeledGraph g;
  QueryContext ctx;
  CandidateEncoder enc;
  Gpma gpma{32};
  std::unordered_map<Edge, uint32_t, EdgeHash> order;
  std::vector<SeedEdge> seeds;

  KernelSetup(const LabeledGraph& base, const QueryGraph& q,
              const UpdateBatch& batch)
      : g(base), ctx(BuildQueryContext(q, false)), enc(q) {
    ApplyBatch(&g, batch);
    gpma.BuildFrom(g);
    enc.BuildAll(g);
    uint32_t next = 0;
    for (const UpdateOp& op : batch) {
      seeds.push_back(SeedEdge{op.u, op.v, op.elabel, next});
      order.emplace(Edge(op.u, op.v), next);
      ++next;
    }
  }

  WbmEnv Env() { return WbmEnv{&gpma, &ctx, &enc, &order, true}; }
};

}  // namespace

int main(int argc, char** argv) {
  InitBench("bench_fig5", argc, argv);
  // Kernel-level bench: the rows measure gamma's BFS/DFS device kernels
  // directly (no Engine is built), so the canonical-spec + clock
  // provenance names the family whose kernels these are.
  JsonProvenance("gamma", ClockDomain::kModeledDevice);
  Scale scale;
  PrintHeader("Figure 5",
              "BFS vs DFS on LS: (a) device memory usage, (b) "
              "computation vs communication time",
              scale);

  const DatasetSpec& spec = DatasetByName("LS");
  const LabeledGraph& base = CachedDataset(spec.id);
  UpdateBatch batch =
      MakeRateBatch(base, spec, scale.default_rate, scale, scale.seed + 1);
  // Larger queries give BFS room to misbehave (geometric frontiers);
  // the paper's Fig. 5 runs full-size LS where even |V(Q)| = 6 does.
  const size_t query_size = 9;

  // Device memory scaled down with the datasets (~2000x below the
  // 3090's 24 GB): the resident graph takes most of it, frontiers
  // compete for the rest — the regime Fig. 5 demonstrates.
  const uint64_t graph_bytes = 12ull * 2 * base.NumEdges();  // key+val+dst
  DeviceConfig bfs_cfg;
  bfs_cfg.global_mem_bytes = graph_bytes + 2 * 1024;
  bfs_cfg.host_budget_seconds = scale.query_budget_s;
  DeviceConfig dfs_cfg = bfs_cfg;
  const double cap = double(bfs_cfg.global_mem_bytes);

  auto run_cls = [&](QueryGraph::StructureClass cls, auto&& fn) {
    auto queries = MakeQuerySet(base, cls, query_size, 1, scale.seed);
    if (queries.empty()) {
      printf("%-7s | (no extractable queries)\n", ToString(cls));
      return;
    }
    KernelSetup setup(base, queries[0], batch);
    Device bfs_dev(bfs_cfg), dfs_dev(dfs_cfg);
    // Charge the resident graph to both devices up front.
    bfs_dev.allocator().Alloc(graph_bytes);
    dfs_dev.allocator().Alloc(graph_bytes);
    BfsResult bfs = RunBfsKernel(bfs_dev, setup.Env(), setup.seeds);
    WbmResult dfs = RunWbmKernel(dfs_dev, setup.Env(), setup.seeds);
    fn(bfs, dfs);
  };

  printf("(a) memory usage over run (%% of device capacity; BFS sampled "
         "per frontier expansion; DFS allocates no frontiers beyond the "
         "resident graph)\n");
  printf("%-7s | %8s %8s | %-s\n", "class", "BFS-peak", "DFS-peak",
         "BFS usage timeline (10 samples)");
  for (auto cls : AllClasses()) {
    run_cls(cls, [&](const BfsResult& bfs, const WbmResult& dfs) {
      double bfs_peak = 0;
      for (double p : bfs.memory_samples) bfs_peak = std::max(bfs_peak, p);
      double dfs_peak = 100.0 * double(dfs.stats.peak_device_bytes) / cap;
      uint64_t bfs_frontier =
          bfs.stats.peak_device_bytes > graph_bytes
              ? bfs.stats.peak_device_bytes - graph_bytes
              : 0;
      printf("%-7s | %7.1f%% %7.1f%% (frontier %6llu B) |", ToString(cls),
             bfs_peak, dfs_peak,
             static_cast<unsigned long long>(bfs_frontier));
      size_t n = bfs.memory_samples.size();
      for (size_t i = 0; i < 10 && n > 0; ++i) {
        size_t idx = i * (n - 1) / 9;
        printf(" %5.1f", bfs.memory_samples[idx]);
      }
      printf("\n");
    });
  }

  printf("\n(b) time breakdown (modeled ms; Comm = host<->device spill "
         "traffic)\n");
  printf("%-7s | %10s %10s | %10s %10s\n", "class", "BFS-Comp", "BFS-Comm",
         "DFS-Comp", "DFS-Comm");
  for (auto cls : AllClasses()) {
    run_cls(cls, [&](const BfsResult& bfs, const WbmResult& dfs) {
      double tick_ms = bfs_cfg.TickSeconds() * 1e3;
      auto comp = [&](const DeviceStats& s) {
        return double(s.makespan_ticks -
                      std::min(s.makespan_ticks, s.transfer_ticks)) *
               tick_ms;
      };
      auto comm = [&](const DeviceStats& s) {
        return double(s.transfer_ticks) * tick_ms;
      };
      printf("%-7s | %10.4f %10.4f | %10.4f %10.4f\n", ToString(cls),
             comp(bfs.stats), comm(bfs.stats), comp(dfs.stats),
             comm(dfs.stats));

      double bfs_peak = 0;
      for (double p : bfs.memory_samples) bfs_peak = std::max(bfs_peak, p);
      JsonRow row;
      row.Set("dataset", "LS")
          .Set("structure", ToString(cls))
          .Set("bfs_peak_mem_pct", bfs_peak)
          .Set("dfs_peak_mem_pct",
               100.0 * double(dfs.stats.peak_device_bytes) / cap)
          .Set("bfs_comp_ms", comp(bfs.stats))
          .Set("bfs_comm_ms", comm(bfs.stats))
          .Set("dfs_comp_ms", comp(dfs.stats))
          .Set("dfs_comm_ms", comm(dfs.stats));
      JsonSink::Instance().Add(std::move(row));
    });
  }
  printf("\nShape checks (paper): BFS peak -> 100%% (exhaustion), DFS "
         "peak flat & low; BFS Comm >> BFS Comp; DFS Comm = 0.\n");
  FinishBench();
  return 0;
}
