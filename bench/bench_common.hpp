/// \file bench_common.hpp
/// Shared harness of the paper-reproduction benchmarks (one binary per
/// table/figure; docs/BENCHMARKS.md is the experiment index).
///
/// Every measurement goes through the unified Engine interface
/// (core/engine.hpp): `RunEngineCell("tf" | "sym" | "rf" | "cl" | "gf" |
/// "gamma" | "multi", ...)` — engine choice is a string, not a code
/// path, so every bench can sweep methods from one loop.
///
/// Every bench binary — `bench_micro` included (its custom main peels
/// the flag off before google-benchmark parses argv) — accepts
/// `--json <path>` (wired through InitBench): when given, each
/// measured cell is appended as one row of a machine-readable
/// perf-trajectory file (schema in docs/BENCHMARKS.md), so benches can
/// feed regression tracking without scraping stdout.
///
/// Methodology notes (the scaling rationale lives in docs/BENCHMARKS.md):
/// * Datasets are the synthetic twins of Table II (scaled).
/// * Query sets are extracted per structure class like §VI-A; the per-set
///   count and the per-query time budget are scaled from the paper's
///   50 queries / 30 minutes to keep the whole suite minutes-long on one
///   CPU core.  Scale factors are printed with every table.
/// * CSM baselines report host wall-clock (they are CPU systems); GAMMA
///   reports modeled device latency (simulated makespan ticks x clock,
///   preprocessing overlapped) — the honest analogue on a GPU-less host.
///   RunEngineCell picks the right clock from Engine::Describe()
///   (ClockDomain), and stamps every JSON row with the engine's
///   canonical spec + clock for provenance (scripts/bench_diff.py
///   joins trajectories on those fields).  Shapes (who wins, trends),
///   not absolute 3090 numbers, are the reproduction target.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"

namespace bdsm::bench {

/// Suite-wide scaling knobs.
struct Scale {
  size_t queries_per_set = 3;    ///< paper: 50
  double query_budget_s = 1.0;   ///< paper: 1800 s
  size_t max_batch_ops = 400;    ///< cap on |batch| after the rate
  size_t default_query_size = 6; ///< paper default |V(Q)|
  double default_rate = 0.10;    ///< paper default Ir = 10%
  uint64_t seed = 2024;
};

/// One (method x query-set) measurement.
struct CellResult {
  double avg_latency_s = 0.0;  ///< over solved queries only (paper rule)
  size_t unsolved = 0;
  size_t solved = 0;
  double avg_utilization = 0.0;  ///< device engines only
  Count total_matches = 0;
};

/// Lazily-loaded dataset cache (twin generation is deterministic but
/// not free; benches reuse instances).
const LabeledGraph& CachedDataset(DatasetId id);

/// Query set of `count` graphs of the class/size, extracted from g.
std::vector<QueryGraph> MakeQuerySet(const LabeledGraph& g,
                                     QueryGraph::StructureClass cls,
                                     size_t num_vertices, size_t count,
                                     uint64_t seed);

/// Batch for the dataset at `rate` (fraction of |E|), capped.
UpdateBatch MakeRateBatch(const LabeledGraph& g, const DatasetSpec& spec,
                          double rate, const Scale& scale, uint64_t seed);

/// Runs any registered engine spec over the query set; each query gets
/// a fresh engine (index/device-graph built offline, not counted) and
/// the batch re-applied.  `gamma_options` tunes the device engines (the
/// CPU engines get the paper cap/budget from `scale`); latency follows
/// the engine's declared clock (Engine::Describe().clock).
CellResult RunEngineCell(const std::string& engine, const LabeledGraph& g,
                         const std::vector<QueryGraph>& queries,
                         const UpdateBatch& batch, const Scale& scale,
                         GammaOptions gamma_options = {});

/// "0.553" or "12.3(2)" — the paper's latency(unsolved) cell format.
std::string FormatCell(const CellResult& r);

/// One printed row of the five-method comparison tables (Table III,
/// Figs. 8–11): runs kBaselineMethods then gamma through RunEngineCell,
/// printing each FormatCell column (no leading label, no trailing
/// newline — the caller owns both ends of the line).  Returns the
/// per-method results in column order, gamma last.
std::vector<CellResult> RunMethodRow(const LabeledGraph& g,
                                     const std::vector<QueryGraph>& queries,
                                     const UpdateBatch& batch,
                                     const Scale& scale);

// ------------------------------------------------- perf trajectory JSON

/// One flat JSON object; insertion order is preserved in the output.
class JsonRow {
 public:
  JsonRow& Set(const std::string& key, double value);
  JsonRow& Set(const std::string& key, size_t value);
  JsonRow& Set(const std::string& key, const std::string& value);
  JsonRow& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonRow& SetBool(const std::string& key, bool value);

 private:
  friend class JsonSink;
  void Encode(const std::string& key, std::string literal);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects JsonRows and writes `{"schema": "bdsm-bench-v1", "bench":
/// <name>, "provenance": {...}, "rows": [...]}` to the path given via
/// `--json` (schema documented in docs/BENCHMARKS.md).  Disabled (all
/// calls no-ops) until Open()/InitBench() enables it, so benches can
/// emit unconditionally.  Flush() runs automatically at process exit.
///
/// Cell mode (`--out-dir DIR --cell-id ID`, the experiment-matrix
/// assist; docs/EXPERIMENTS.md): the document gains `"cell_id"` (and
/// `"cell_key"` when the driver passed one) and a trailing
/// `"sealed": true` marker, and lands at `DIR/ID.json` via an fsynced
/// temp-file + rename — but only when the bench reached its success
/// path (FinishBench below).  A run that dies or exits nonzero leaves
/// at most `DIR/ID.json.tmp` as a post-mortem, so "sealed" means
/// "completed", never "got as far as process exit" — the property
/// `run_matrix.py` resumes on.
class JsonSink {
 public:
  static JsonSink& Instance();

  void Open(const std::string& bench_name, const std::string& path);
  /// Cell mode: atomic write to `out_dir/cell_id.json`.  `cell_key` is
  /// the driver's identity fingerprint, echoed verbatim into the
  /// document ("" = omit).
  void OpenCell(const std::string& bench_name, const std::string& out_dir,
                const std::string& cell_id, const std::string& cell_key);
  /// Marks the run completed; until this is called, cell mode refuses
  /// to seal at Flush().  Non-cell mode ignores it.
  void MarkComplete() { complete_ = true; }
  bool enabled() const { return !path_.empty(); }

  /// Sticky context merged into every subsequent row (loop position:
  /// dataset, structure class, rate, ...).  Setting a key replaces it;
  /// clear keys that do not apply to the next sweep.
  void Context(const std::string& key, const std::string& value);
  void Context(const std::string& key, double value);
  void Context(const std::string& key, size_t value);
  void ClearContext(const std::string& key);

  void Add(JsonRow row);
  void Flush();

 private:
  void SetContextLiteral(const std::string& key, std::string literal);

  std::string bench_name_;
  std::string path_;
  std::string cell_id_;  ///< non-empty = cell mode (atomic, sealed)
  std::string cell_key_;
  bool complete_ = false;  ///< set by FinishBench; gates cell sealing
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<JsonRow> rows_;
};

/// Shared entry chores for every bench main: scans argv for
/// `--json <path>` (or uses `default_json_path` when the flag is
/// absent; pass nullptr for "disabled by default") or for the
/// experiment-matrix pair `--out-dir DIR --cell-id ID` (which must
/// appear together and conflict with `--json`; `--cell-key FP`
/// optionally rides along and is echoed into the document), and opens
/// the JsonSink.  RunEngineCell then records one row per cell
/// automatically.
void InitBench(const char* bench_name, int argc, char** argv,
               const char* default_json_path = nullptr);

/// Declares the run successful — call it exactly on main's success
/// path, right before `return 0`.  In cell mode the atexit Flush seals
/// the row file only after this, so a validation error or mid-run
/// failure (any nonzero exit) can never produce a file that
/// run_matrix.py would resume past as completed.
void FinishBench();

/// Shorthand for JsonSink::Instance().Context(...).
void JsonContext(const std::string& key, const std::string& value);
void JsonContext(const std::string& key, double value);
void JsonContext(const std::string& key, size_t value);

/// Stamps canonical-spec + clock provenance onto the sticky JSON
/// context, for benches that emit ad-hoc rows instead of going through
/// RunEngineCell (which stamps per-row).  The EngineInfo overload is
/// the honest source (`Engine::Describe()`); the (spec, clock)
/// overload serves kernel-level benches (Fig. 5, the container
/// ablation) that measure an engine family's device kernels without
/// building an Engine — `spec` names that family's canonical spec.
void JsonProvenance(const EngineInfo& info);
void JsonProvenance(const std::string& canonical_spec, ClockDomain clock);

/// Prints the standard header block for a bench binary.
void PrintHeader(const char* experiment, const char* what,
                 const Scale& scale);

/// The paper's CSM baseline set (Table III columns before GAMMA).
const char* const kBaselineMethods[] = {"tf", "sym", "rf", "cl"};

inline const std::vector<QueryGraph::StructureClass>& AllClasses() {
  static const std::vector<QueryGraph::StructureClass> kClasses = {
      QueryGraph::StructureClass::kDense,
      QueryGraph::StructureClass::kSparse,
      QueryGraph::StructureClass::kTree};
  return kClasses;
}

}  // namespace bdsm::bench
