/// Reproduces **Fig. 14** — ablation study: WBM alone, WBM + coalesced
/// search (cs), WBM + work stealing (ws), and WBM + cs + ws, on all six
/// datasets, per structure class (modeled device latency).
///
/// Paper shape: every optimized variant beats plain WBM; ws helps more
/// than cs (paper: ws 1.2-6.4x, cs 1.1-1.9x); sparse/tree query sets
/// gain the most from cs.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

namespace {

CellResult RunVariant(const LabeledGraph& g,
                      const std::vector<QueryGraph>& queries,
                      const UpdateBatch& batch, bool cs, bool ws,
                      const Scale& scale) {
  GammaOptions opts;
  opts.device.num_sms = 16;  // keep warps fed (see bench_fig13)
  opts.device.warps_per_block = 4;
  opts.coalesced_search = cs;
  opts.device.steal_policy = ws ? StealPolicy::kActive : StealPolicy::kNone;
  return RunEngineCell("gamma", g, queries, batch, scale, opts);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("bench_fig14", argc, argv);
  Scale scale;
  PrintHeader("Figure 14",
              "Ablation: WBM / WBM+cs / WBM+ws / WBM+cs+ws (modeled "
              "device seconds)",
              scale);

  for (auto cls : AllClasses()) {
    printf("--- %s queries ---\n", ToString(cls));
    printf("%-4s | %12s %12s %12s %12s | speedup(cs) speedup(ws)\n", "DS",
           "WBM", "WBM+cs", "WBM+ws", "WBM+cs+ws");
    for (const DatasetSpec& spec : AllDatasets()) {
      const LabeledGraph& g = CachedDataset(spec.id);
      auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                  scale.queries_per_set, scale.seed);
      if (queries.empty()) {
        printf("%-4s | (no extractable queries)\n", spec.short_name);
        continue;
      }
      UpdateBatch batch = MakeRateBatch(g, spec, scale.default_rate, scale,
                                        scale.seed + 1);
      JsonContext("structure", ToString(cls));
      JsonContext("dataset", spec.short_name);
      JsonContext("variant", "wbm");
      CellResult base = RunVariant(g, queries, batch, false, false, scale);
      JsonContext("variant", "wbm+cs");
      CellResult cs = RunVariant(g, queries, batch, true, false, scale);
      JsonContext("variant", "wbm+ws");
      CellResult ws = RunVariant(g, queries, batch, false, true, scale);
      JsonContext("variant", "wbm+cs+ws");
      CellResult both = RunVariant(g, queries, batch, true, true, scale);
      auto speedup = [&](const CellResult& r) {
        return r.avg_latency_s > 0 ? base.avg_latency_s / r.avg_latency_s
                                   : 0.0;
      };
      printf("%-4s | %12s %12s %12s %12s | %10.2fx %10.2fx\n",
             spec.short_name, FormatCell(base).c_str(),
             FormatCell(cs).c_str(), FormatCell(ws).c_str(),
             FormatCell(both).c_str(), speedup(cs), speedup(ws));
      fflush(stdout);
    }
  }
  printf("\nShape checks (paper): all variants <= WBM; ws speedup > cs "
         "speedup; cs gains largest on Sparse/Tree sets.\n");
  FinishBench();
  return 0;
}
