/// Reproduces **Fig. 9** — scalability vs insertion rate Ir in
/// {2,4,6,8,10}% on GH and ST, per structure class, all five methods.
///
/// Paper shape: query time grows with the rate (baselines re-search per
/// edge, so cost is ~linear in |batch|); GAMMA amortizes the batch over
/// the device and scales flattest.
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_fig9", argc, argv);
  Scale scale;
  scale.query_budget_s = 0.5;
  PrintHeader("Figure 9", "Latency & solved% vs insertion rate Ir (%)",
              scale);

  for (const char* ds : {"GH", "ST"}) {
    const DatasetSpec& spec = DatasetByName(ds);
    const LabeledGraph& g = CachedDataset(spec.id);
    for (auto cls : AllClasses()) {
      auto queries = MakeQuerySet(g, cls, scale.default_query_size,
                                  scale.queries_per_set, scale.seed);
      printf("--- %s / %s ---\n", ds, ToString(cls));
      if (queries.empty()) {
        printf("(no extractable queries)\n");
        continue;
      }
      printf("%6s | %12s %12s %12s %12s %12s\n", "Ir", "TF", "SYM", "RF",
             "CL", "GAMMA");
      for (int rate : {2, 4, 6, 8, 10}) {
        UpdateBatch batch = MakeRateBatch(g, spec, rate / 100.0, scale,
                                          scale.seed + rate);
        JsonContext("dataset", ds);
        JsonContext("structure", ToString(cls));
        JsonContext("rate_pct", static_cast<size_t>(rate));
        printf("%5d%% |", rate);
        RunMethodRow(g, queries, batch, scale);
        printf("\n");
      }
    }
  }
  printf("\nShape checks (paper): latency grows with Ir for every "
         "method; GAMMA grows slowest (batch amortization).\n");
  FinishBench();
  return 0;
}
