/// Reproduces **Fig. 8** — scalability vs query graph size |V(Q)| on GH
/// and ST: average latency and solved-query percentage for all five
/// methods, per structure class.
///
/// Paper shape: latency grows and solved%% falls with |V(Q)|; GAMMA's
/// advantage widens with query size (bigger search space, more
/// parallelism to exploit).
#include <cstdio>

#include "bench_common.hpp"

using namespace bdsm;
using namespace bdsm::bench;

int main(int argc, char** argv) {
  InitBench("bench_fig8", argc, argv);
  Scale scale;
  scale.query_budget_s = 0.5;  // 5 sizes x 3 classes x 5 methods: tighter cap
  PrintHeader("Figure 8", "Latency & solved% vs |V(Q)| in {4,6,8,10,12}",
              scale);

  for (const char* ds : {"GH", "ST"}) {
    const DatasetSpec& spec = DatasetByName(ds);
    const LabeledGraph& g = CachedDataset(spec.id);
    UpdateBatch batch = MakeRateBatch(g, spec, scale.default_rate, scale,
                                      scale.seed + 1);
    for (auto cls : AllClasses()) {
      printf("--- %s / %s ---\n", ds, ToString(cls));
      printf("%6s | %12s %12s %12s %12s %12s | solved%%\n", "|V(Q)|", "TF",
             "SYM", "RF", "CL", "GAMMA");
      for (size_t nq : {4, 6, 8, 10, 12}) {
        auto queries =
            MakeQuerySet(g, cls, nq, scale.queries_per_set, scale.seed + nq);
        if (queries.empty()) {
          printf("%6zu | (no extractable queries)\n", nq);
          continue;
        }
        JsonContext("dataset", ds);
        JsonContext("structure", ToString(cls));
        JsonContext("query_size", nq);
        printf("%6zu |", nq);
        size_t total_runs = 0, total_solved = 0;
        for (const CellResult& r : RunMethodRow(g, queries, batch, scale)) {
          total_runs += r.solved + r.unsolved;
          total_solved += r.solved;
        }
        printf(" | %5.1f\n",
               100.0 * double(total_solved) / double(total_runs));
        fflush(stdout);
      }
    }
  }
  printf("\nShape checks (paper): latency rises with |V(Q)|; unsolved "
         "counts concentrate in the baselines at large |V(Q)|; GAMMA "
         "remains lowest.\n");
  FinishBench();
  return 0;
}
