/// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
/// operations §I identifies as dominating subgraph matching (set
/// intersections / adjacency probes), GPMA updates, incremental
/// encoding, and the unified engine layer (dispatch + streaming
/// delivery overhead).  Not a paper table — engineering guardrails.
///
/// Like every other bench, accepts `--json <path>` (perf-trajectory
/// schema in docs/BENCHMARKS.md): each google-benchmark run lands as
/// one row (name, iterations, real/cpu time in the run's time unit).
/// The flag is peeled off before google-benchmark parses the rest of
/// the command line, so all `--benchmark_*` flags keep working.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "core/encoder.hpp"
#include "core/engine.hpp"
#include "gpma/gpma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

LabeledGraph& BenchGraph() {
  static LabeledGraph g = [] {
    GeneratorParams p;
    p.num_vertices = 4000;
    p.avg_degree = 12;
    p.vertex_labels = 5;
    p.seed = 7;
    return GeneratePowerLawGraph(p);
  }();
  return g;
}

QueryGraph BenchQuery() {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  return q;
}

void BM_GpmaBuild(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  for (auto _ : state) {
    Gpma gpma(32);
    gpma.BuildFrom(g);
    benchmark::DoNotOptimize(gpma.NumEdges());
  }
}
BENCHMARK(BM_GpmaBuild);

void BM_GpmaBatchInsert(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  UpdateStreamGenerator gen(11);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(0)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    state.ResumeTiming();
    UpdatePlan plan = gpma.ApplyBatch(batch);
    benchmark::DoNotOptimize(plan.ops.size());
  }
}
BENCHMARK(BM_GpmaBatchInsert)->Arg(64)->Arg(256)->Arg(1024);

void BM_GpmaNeighborScan(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  std::vector<Neighbor> scratch;
  VertexId v = 0;
  for (auto _ : state) {
    gpma.NeighborsInto(v, &scratch);
    benchmark::DoNotOptimize(scratch.size());
    v = (v + 17) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaNeighborScan);

void BM_GpmaEdgeProbe(benchmark::State& state) {
  // The "set intersection" primitive: adjacency membership probes are
  // 58.2% of matching runtime per the paper's citation [20].
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  VertexId a = 1, b = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpma.HasEdge(a, b));
    a = (a + 13) % static_cast<VertexId>(g.NumVertices());
    b = (b + 29) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaEdgeProbe);

void BM_EncoderBuildAll(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  for (auto _ : state) {
    CandidateEncoder enc(q);
    enc.BuildAll(g);
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderBuildAll);

void BM_EncoderDirtyUpdate(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  UpdateStreamGenerator gen(13);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  for (auto _ : state) {
    enc.ApplyBatchDirty(g, batch);  // same state: measures the refresh
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderDirtyUpdate);

// Engine choice is a registry index here — the same ProcessBatch loop
// drives the device systems and the CPU baselines.
const char* const kMicroEngines[] = {"gamma", "multi", "tf", "rf"};

void BM_EngineProcessBatch(benchmark::State& state) {
  const char* name = kMicroEngines[state.range(0)];
  state.SetLabel(name);
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(17);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(1)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine(name, g);
    engine->AddQuery(q);
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch);
    benchmark::DoNotOptimize(report.TotalMatches());
  }
}
BENCHMARK(BM_EngineProcessBatch)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 128}});

// Streaming delivery vs materialized vectors: the sink path must not
// cost more than the vectors it saves.
void BM_EngineStreamingSink(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(19);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  struct CountingSink final : ResultSink {
    size_t n = 0;
    void OnMatch(QueryId, const MatchRecord&) override { ++n; }
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine("gamma", g);
    engine->AddQuery(q);
    CountingSink sink;
    BatchOptions opts;
    opts.sink = &sink;
    opts.materialize = false;
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch, opts);
    benchmark::DoNotOptimize(report.TotalMatches());
    benchmark::DoNotOptimize(sink.n);
  }
}
BENCHMARK(BM_EngineStreamingSink);

// Mirrors every measured run into the shared JsonSink so bench_micro
// feeds the same perf-trajectory files as the figure benches.  Wraps
// the flag-selected display reporter (instead of subclassing
// ConsoleReporter) so --benchmark_format et al. keep working.
class TrajectoryReporter : public benchmark::BenchmarkReporter {
 public:
  explicit TrajectoryReporter(benchmark::BenchmarkReporter* inner)
      : inner_(inner) {}

  bool ReportContext(const Context& context) override {
    return inner_->ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      bench::JsonRow row;
      row.Set("name", run.benchmark_name())
          .Set("label", run.report_label)
          .Set("iterations", static_cast<size_t>(run.iterations))
          .Set("real_time", run.GetAdjustedRealTime())
          .Set("cpu_time", run.GetAdjustedCPUTime())
          .Set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      bench::JsonSink::Instance().Add(std::move(row));
    }
    inner_->ReportRuns(runs);
  }
  void Finalize() override { inner_->Finalize(); }

 private:
  benchmark::BenchmarkReporter* inner_;
};

}  // namespace
}  // namespace bdsm

int main(int argc, char** argv) {
  // InitBench consumes --json <path>; google-benchmark must not see it
  // (it rejects unknown flags), so strip the pair from its argv copy.
  bdsm::bench::InitBench("bench_micro", argc, argv);
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      ++i;  // skip the path too
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  std::unique_ptr<benchmark::BenchmarkReporter> display(
      benchmark::CreateDefaultDisplayReporter());
  bdsm::TrajectoryReporter reporter(display.get());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
