/// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
/// operations §I identifies as dominating subgraph matching (set
/// intersections / adjacency probes), GPMA updates, incremental
/// encoding, and the unified engine layer (dispatch + streaming
/// delivery overhead).  Not a paper table — engineering guardrails.
///
/// Like every other bench, accepts `--json <path>` (perf-trajectory
/// schema in docs/BENCHMARKS.md): each google-benchmark run lands as
/// one row (name, iterations, real/cpu time in the run's time unit).
/// The flag is peeled off before google-benchmark parses the rest of
/// the command line, so all `--benchmark_*` flags keep working.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_common.hpp"
#include "core/encoder.hpp"
#include "core/engine.hpp"
#include "gpma/gpma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

LabeledGraph& BenchGraph() {
  static LabeledGraph g = [] {
    GeneratorParams p;
    p.num_vertices = 4000;
    p.avg_degree = 12;
    p.vertex_labels = 5;
    p.seed = 7;
    return GeneratePowerLawGraph(p);
  }();
  return g;
}

QueryGraph BenchQuery() {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  return q;
}

void BM_GpmaBuild(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  for (auto _ : state) {
    Gpma gpma(32);
    gpma.BuildFrom(g);
    benchmark::DoNotOptimize(gpma.NumEdges());
  }
}
BENCHMARK(BM_GpmaBuild);

void BM_GpmaBatchInsert(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  UpdateStreamGenerator gen(11);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(0)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    state.ResumeTiming();
    UpdatePlan plan = gpma.ApplyBatch(batch);
    benchmark::DoNotOptimize(plan.ops.size());
  }
}
BENCHMARK(BM_GpmaBatchInsert)->Arg(64)->Arg(256)->Arg(1024);

void BM_GpmaNeighborScan(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  std::vector<Neighbor> scratch;
  VertexId v = 0;
  for (auto _ : state) {
    gpma.NeighborsInto(v, &scratch);
    benchmark::DoNotOptimize(scratch.size());
    v = (v + 17) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaNeighborScan);

void BM_GpmaEdgeProbe(benchmark::State& state) {
  // The "set intersection" primitive: adjacency membership probes are
  // 58.2% of matching runtime per the paper's citation [20].
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  VertexId a = 1, b = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpma.HasEdge(a, b));
    a = (a + 13) % static_cast<VertexId>(g.NumVertices());
    b = (b + 29) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaEdgeProbe);

void BM_EncoderBuildAll(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  for (auto _ : state) {
    CandidateEncoder enc(q);
    enc.BuildAll(g);
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderBuildAll);

void BM_EncoderDirtyUpdate(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  UpdateStreamGenerator gen(13);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  for (auto _ : state) {
    enc.ApplyBatchDirty(g, batch);  // same state: measures the refresh
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderDirtyUpdate);

// Engine choice is a registry index here — the same ProcessBatch loop
// drives the device systems and the CPU baselines.
const char* const kMicroEngines[] = {"gamma", "multi", "tf", "rf"};

void BM_EngineProcessBatch(benchmark::State& state) {
  const char* name = kMicroEngines[state.range(0)];
  state.SetLabel(name);
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(17);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(1)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine(name, g);
    engine->AddQuery(q);
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch);
    benchmark::DoNotOptimize(report.TotalMatches());
  }
}
BENCHMARK(BM_EngineProcessBatch)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 128}});

// Streaming delivery vs materialized vectors: the sink path must not
// cost more than the vectors it saves.
void BM_EngineStreamingSink(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(19);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  struct CountingSink final : ResultSink {
    size_t n = 0;
    void OnMatch(QueryId, const MatchRecord&) override { ++n; }
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine("gamma", g);
    engine->AddQuery(q);
    CountingSink sink;
    BatchOptions opts;
    opts.sink = &sink;
    opts.materialize = false;
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch, opts);
    benchmark::DoNotOptimize(report.TotalMatches());
    benchmark::DoNotOptimize(sink.n);
  }
}
BENCHMARK(BM_EngineStreamingSink);

// ----------------------------------------------- update-path profile
//
// Deterministic plan-counter profile of the GPMA update path: three
// seeded workloads (insert-heavy growth, deletion-heavy churn, a
// delete/re-insert locate+rebalance ping-pong) whose every metric
// derives from UpdatePlan counters and final structure state — no
// clocks — so two runs on any host produce identical rows.  These rows
// are the CI cost gate for the update path (scripts/bench_diff.py
// against bench/baselines/BENCH_micro.json; docs/BENCHMARKS.md):
// `resized_entries_per_update` and `moved_entries_per_update` are the
// gated fields.  `--profile-only` runs just this section.

struct PlanTotals {
  size_t batches = 0;
  size_t applied_updates = 0;   ///< sanitized ops submitted
  uint64_t locate_searches = 0;
  uint64_t resizes = 0;
  uint64_t resized_entries = 0;  ///< entries moved by grow/shrink
  uint64_t window_entries = 0;   ///< entries moved by window rebalances
  uint64_t segment_ops = 0;

  void Absorb(const UpdatePlan& plan, size_t batch_ops) {
    ++batches;
    applied_updates += batch_ops;
    locate_searches += plan.locate_searches;
    resizes += plan.resizes;
    resized_entries += plan.resized_entries;
    segment_ops += plan.ops.size();
    for (const SegmentOp& op : plan.ops) {
      if (op.window_segments > 1) window_entries += op.window_entries;
    }
  }
};

void EmitProfileRow(const char* workload, const Gpma& gpma,
                    const PlanTotals& t) {
  double per = t.applied_updates ? static_cast<double>(t.applied_updates)
                                 : 1.0;
  double resized_per = static_cast<double>(t.resized_entries) / per;
  double moved_per =
      static_cast<double>(t.resized_entries + t.window_entries) / per;
  double locates_per = static_cast<double>(t.locate_searches) / per;
  printf("%-16s %7zu %9zu | %8.3f %8.3f %8.3f | %5llu %8zu %6.3f\n",
         workload, t.batches, t.applied_updates, locates_per, resized_per,
         moved_per, static_cast<unsigned long long>(t.resizes),
         gpma.NumSegments(), gpma.Occupancy());
  bench::JsonRow row;
  row.Set("workload", workload)
      .Set("container", "gpma")
      .Set("batches", t.batches)
      .Set("applied_updates", t.applied_updates)
      .Set("locates_per_update", locates_per)
      .Set("resized_entries_per_update", resized_per)
      .Set("moved_entries_per_update", moved_per)
      .Set("resizes", static_cast<size_t>(t.resizes))
      .Set("segment_ops", static_cast<size_t>(t.segment_ops))
      .Set("final_segments", gpma.NumSegments())
      .Set("final_occupancy", gpma.Occupancy());
  bench::JsonSink::Instance().Add(std::move(row));
}

LabeledGraph ProfileGraph() {
  return GenerateUniformGraph(1200, 6000, 4, 2, 97);
}

void RunUpdatePathProfile() {
  printf("Update-path profile (deterministic UpdatePlan counters; the "
         "delete-churn\nrow's *_per_update fields are the CI gate vs "
         "bench/baselines/BENCH_micro.json)\n\n");
  printf("%-16s %7s %9s | %8s %8s %8s | %5s %8s %6s\n", "workload",
         "batches", "updates", "loc/upd", "rsz/upd", "mov/upd", "rsz",
         "segs", "occ");

  {  // Pure growth from the bulk-loaded state.
    LabeledGraph g = ProfileGraph();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    UpdateStreamGenerator gen(101);
    PlanTotals t;
    for (int round = 0; round < 40; ++round) {
      UpdateBatch batch = gen.MakeInsertions(g, 256, 2);
      t.Absorb(gpma.ApplyBatch(batch), batch.size());
      ApplyBatch(&g, batch);
    }
    EmitProfileRow("insert-heavy", gpma, t);
  }

  {  // Deletion-heavy turnover (65% deletes, the churn scenario's mix):
     // the structure must keep shedding capacity without sweeping.
    LabeledGraph g = ProfileGraph();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    UpdateStreamGenerator gen(103);
    PlanTotals t;
    for (int round = 0; round < 64; ++round) {
      UpdateBatch batch =
          SanitizeBatch(g, gen.MakeMixed(g, 256, 7, 13, 2));
      t.Absorb(gpma.ApplyBatch(batch), batch.size());
      ApplyBatch(&g, batch);
    }
    EmitProfileRow("delete-churn", gpma, t);
  }

  {  // Steady-state locate + rebalance: delete a block of edges, then
     // re-insert exactly those edges next batch.
    LabeledGraph g = ProfileGraph();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    UpdateStreamGenerator gen(107);
    PlanTotals t;
    UpdateBatch deleted;
    for (int round = 0; round < 48; ++round) {
      UpdateBatch batch;
      if (round % 2 == 0) {
        batch = gen.MakeDeletions(g, 128);
        deleted = batch;
      } else {
        for (const UpdateOp& op : deleted) {
          batch.push_back(UpdateOp{true, op.u, op.v, op.elabel});
        }
      }
      batch = SanitizeBatch(g, batch);
      t.Absorb(gpma.ApplyBatch(batch), batch.size());
      ApplyBatch(&g, batch);
    }
    EmitProfileRow("locate-rebalance", gpma, t);
  }
  printf("\n");
}

// Mirrors every measured run into the shared JsonSink so bench_micro
// feeds the same perf-trajectory files as the figure benches.  Wraps
// the flag-selected display reporter (instead of subclassing
// ConsoleReporter) so --benchmark_format et al. keep working.
class TrajectoryReporter : public benchmark::BenchmarkReporter {
 public:
  explicit TrajectoryReporter(benchmark::BenchmarkReporter* inner)
      : inner_(inner) {}

  bool ReportContext(const Context& context) override {
    return inner_->ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      bench::JsonRow row;
      row.Set("name", run.benchmark_name())
          .Set("label", run.report_label)
          .Set("iterations", static_cast<size_t>(run.iterations))
          .Set("real_time", run.GetAdjustedRealTime())
          .Set("cpu_time", run.GetAdjustedCPUTime())
          .Set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      bench::JsonSink::Instance().Add(std::move(row));
    }
    inner_->ReportRuns(runs);
  }
  void Finalize() override { inner_->Finalize(); }

 private:
  benchmark::BenchmarkReporter* inner_;
};

}  // namespace
}  // namespace bdsm

int main(int argc, char** argv) {
  // InitBench consumes --json <path>; google-benchmark must not see it
  // (it rejects unknown flags), so strip the pair from its argv copy —
  // same for our own --profile-only flag.
  bdsm::bench::InitBench("bench_micro", argc, argv);
  bool profile_only = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 ||
        std::strcmp(argv[i], "--out-dir") == 0 ||
        std::strcmp(argv[i], "--cell-id") == 0 ||
        std::strcmp(argv[i], "--cell-key") == 0) {
      ++i;  // skip the value too (all consumed by InitBench)
      continue;
    }
    if (std::strcmp(argv[i], "--profile-only") == 0) {
      profile_only = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  // The deterministic update-path profile always runs (it is the gated
  // part of this bench's JSON rows); the timing benchmarks follow
  // unless --profile-only asked for the counters alone.
  bdsm::RunUpdatePathProfile();
  if (profile_only) {
    // The atexit flush writes the rows; marking the run complete here
    // is what lets cell mode seal them.
    bdsm::bench::FinishBench();
    return 0;
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  std::unique_ptr<benchmark::BenchmarkReporter> display(
      benchmark::CreateDefaultDisplayReporter());
  bdsm::TrajectoryReporter reporter(display.get());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bdsm::bench::FinishBench();
  return 0;
}
