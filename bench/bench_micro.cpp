/// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
/// operations §I identifies as dominating subgraph matching (set
/// intersections / adjacency probes), GPMA updates, incremental
/// encoding, and the unified engine layer (dispatch + streaming
/// delivery overhead).  Not a paper table — engineering guardrails.
#include <benchmark/benchmark.h>

#include "core/encoder.hpp"
#include "core/engine.hpp"
#include "gpma/gpma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

LabeledGraph& BenchGraph() {
  static LabeledGraph g = [] {
    GeneratorParams p;
    p.num_vertices = 4000;
    p.avg_degree = 12;
    p.vertex_labels = 5;
    p.seed = 7;
    return GeneratePowerLawGraph(p);
  }();
  return g;
}

QueryGraph BenchQuery() {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  return q;
}

void BM_GpmaBuild(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  for (auto _ : state) {
    Gpma gpma(32);
    gpma.BuildFrom(g);
    benchmark::DoNotOptimize(gpma.NumEdges());
  }
}
BENCHMARK(BM_GpmaBuild);

void BM_GpmaBatchInsert(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  UpdateStreamGenerator gen(11);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(0)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    Gpma gpma(32);
    gpma.BuildFrom(g);
    state.ResumeTiming();
    UpdatePlan plan = gpma.ApplyBatch(batch);
    benchmark::DoNotOptimize(plan.ops.size());
  }
}
BENCHMARK(BM_GpmaBatchInsert)->Arg(64)->Arg(256)->Arg(1024);

void BM_GpmaNeighborScan(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  std::vector<Neighbor> scratch;
  VertexId v = 0;
  for (auto _ : state) {
    gpma.NeighborsInto(v, &scratch);
    benchmark::DoNotOptimize(scratch.size());
    v = (v + 17) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaNeighborScan);

void BM_GpmaEdgeProbe(benchmark::State& state) {
  // The "set intersection" primitive: adjacency membership probes are
  // 58.2% of matching runtime per the paper's citation [20].
  LabeledGraph& g = BenchGraph();
  Gpma gpma(32);
  gpma.BuildFrom(g);
  VertexId a = 1, b = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpma.HasEdge(a, b));
    a = (a + 13) % static_cast<VertexId>(g.NumVertices());
    b = (b + 29) % static_cast<VertexId>(g.NumVertices());
  }
}
BENCHMARK(BM_GpmaEdgeProbe);

void BM_EncoderBuildAll(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  for (auto _ : state) {
    CandidateEncoder enc(q);
    enc.BuildAll(g);
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderBuildAll);

void BM_EncoderDirtyUpdate(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  UpdateStreamGenerator gen(13);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  for (auto _ : state) {
    enc.ApplyBatchDirty(g, batch);  // same state: measures the refresh
    benchmark::DoNotOptimize(enc.CandidateMask(0));
  }
}
BENCHMARK(BM_EncoderDirtyUpdate);

// Engine choice is a registry index here — the same ProcessBatch loop
// drives the device systems and the CPU baselines.
const char* const kMicroEngines[] = {"gamma", "multi", "tf", "rf"};

void BM_EngineProcessBatch(benchmark::State& state) {
  const char* name = kMicroEngines[state.range(0)];
  state.SetLabel(name);
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(17);
  UpdateBatch batch =
      gen.MakeInsertions(g, static_cast<size_t>(state.range(1)), 0);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine(name, g);
    engine->AddQuery(q);
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch);
    benchmark::DoNotOptimize(report.TotalMatches());
  }
}
BENCHMARK(BM_EngineProcessBatch)
    ->ArgsProduct({{0, 1, 2, 3}, {32, 128}});

// Streaming delivery vs materialized vectors: the sink path must not
// cost more than the vectors it saves.
void BM_EngineStreamingSink(benchmark::State& state) {
  LabeledGraph& g = BenchGraph();
  QueryGraph q = BenchQuery();
  UpdateStreamGenerator gen(19);
  UpdateBatch batch = gen.MakeInsertions(g, 128, 0);
  struct CountingSink final : ResultSink {
    size_t n = 0;
    void OnMatch(QueryId, const MatchRecord&) override { ++n; }
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MakeEngine("gamma", g);
    engine->AddQuery(q);
    CountingSink sink;
    BatchOptions opts;
    opts.sink = &sink;
    opts.materialize = false;
    state.ResumeTiming();
    BatchReport report = engine->ProcessBatch(batch, opts);
    benchmark::DoNotOptimize(report.TotalMatches());
    benchmark::DoNotOptimize(sink.n);
  }
}
BENCHMARK(BM_EngineStreamingSink);

}  // namespace
}  // namespace bdsm

BENCHMARK_MAIN();
