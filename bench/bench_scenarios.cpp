/// SLO-style scenario driver: runs any registry engine spec over any
/// named workload scenario (src/workload/) and reports per-batch
/// latency percentiles (p50/p95/p99), throughput, and truncation
/// counts.  Not a paper table — this is the serving-layer benchmark
/// substrate every scaling PR measures against (docs/WORKLOADS.md).
///
/// Usage:
///   bench_scenarios [--scenario NAME|all] [--engine SPEC[,SPEC...]]
///                   [--seed N] [--json PATH] [--record PATH]
///                   [--replay PATH] [--budget SECONDS] [--list]
///                   [--checkpoint-dir DIR] [--checkpoint-every N]
///                   [--restart-at K] [--failover-at K] [--tenants N]
///                   [--priority-mix CLASS[:W],...] [--admission on|off]
///                   [--slo SECONDS] [--metrics-json PATH]
///                   [--trace-out PATH] [--out-dir DIR --cell-id ID]
///
/// Experiment matrix (docs/EXPERIMENTS.md): `--out-dir DIR --cell-id
/// ID` replaces `--json` for matrix cells — the row document gains the
/// cell id + a sealed marker and is written atomically to DIR/ID.json,
/// so scripts/experiments/run_matrix.py can resume an interrupted
/// sweep by skipping sealed cells.
///
/// Observability (src/obs/; docs/OBSERVABILITY.md): --metrics-json
/// dumps the unified metrics registry as a bdsm-metrics-v1 document;
/// --trace-out writes clock-domain-tagged phase spans as a
/// chrome://tracing / Perfetto JSON.  Either flag runtime-enables the
/// observability layer for the run; both artifacts carry the run
/// provenance header (tool, scenario, engine, seed, git describe).
///
/// Multi-tenant runs (docs/SERVING.md): tenant-mix scenarios
/// (tenant-skew, noisy-neighbor, overload-storm) drive bare engine
/// specs through an auto-composed tenant(...) front door and report
/// per-tenant rows + the Jain fairness index.  `--tenants N` synthesizes
/// an N-way uniform mix for any scenario that does not define its own
/// (priorities rotate through --priority-mix; default all silver);
/// --admission/--slo tune the composed wrap.  Specs already rooted at
/// tenant(...) are taken verbatim — combining them with these flags is
/// rejected so nothing is silently ignored.
///
/// Defaults: --scenario smoke, --engine gamma, --seed 2024
/// (workload::kDefaultScenarioSeed).  Engines may be any registry spec
/// per the canonical grammar of docs/ENGINES.md, e.g.
/// "sharded(gamma, shards=4)" or "gamma(result_cap=100000)" (the
/// legacy "sharded:gamma@4" sugar still parses); every spec is
/// validated before the first run starts.  --record freezes the
/// generated stream as a trace artifact; --replay substitutes a
/// recorded trace for the generated stream.
///
/// Persistence (src/persist/; docs/PERSISTENCE.md):
///   --checkpoint-dir DIR   checkpoint the run into DIR — base
///                          snapshot + WAL tee + snapshot every
///                          --checkpoint-every batches (default 4)
///   --restart-at K         the `restart` scenario drill: run cold,
///                          re-run killed after K batches
///                          (checkpointing into --checkpoint-dir, or a
///                          dir next to it), warm-restore, finish the
///                          stream, verify the stitched run equals the
///                          cold one batch for batch.  Exits 1 on
///                          divergence — this is the CI smoke gate
///                          `scenario_restart`.
///
/// Replication (src/replica/; docs/REPLICATION.md):
///   --failover-at K        the replica-group failover drill: wrap each
///                          engine in replicated(...) (specs already
///                          rooted there are taken verbatim), apply K
///                          batches, kill the leader, promote the
///                          most-caught-up follower (checkpoint restore
///                          + WAL-tail replay), finish the stream, and
///                          verify the stitched run equals an
///                          uninterrupted unreplicated run batch for
///                          batch with follower staleness inside the
///                          poll_every bound.  Exits 1 on divergence —
///                          the CI smoke gate `scenario_failover`.
///                          --checkpoint-dir/--checkpoint-every name
///                          the group's shipping directory and leader
///                          snapshot cadence.  JSON rows carry shipped
///                          bytes/batches, lag, and the modeled
///                          failover + replication throughput under
///                          the critical-path clock.
///
/// Latency metric per engine (one CPU core; never wall-clock
/// parallelism claims): modeled device seconds for device engines,
/// critical-path seconds for sharded CPU engines, host wall otherwise —
/// each JSON row names its clock in "latency_metric".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "persist/restart.hpp"
#include "replica/failover.hpp"
#include "workload/scenario_runner.hpp"

using namespace bdsm;
using namespace bdsm::workload;

namespace {

void ListScenarios() {
  printf("available scenarios (--scenario NAME):\n");
  for (const ScenarioSpec& s : AllScenarios()) {
    printf("  %-10s %s [%s, %zu batches x ~%zu ops, %zu queries of %zu]\n",
           s.name.c_str(), s.description.c_str(),
           StreamKindName(s.stream.kind), s.stream.num_batches,
           s.stream.ops_per_batch, s.num_queries, s.query_size);
  }
  printf("\nregistered engine specs (--engine SPEC; wrappers compose, "
         "grammar in docs/ENGINES.md):\n");
  for (const EngineRegistry::Listing& l :
       EngineRegistry::Instance().Listings()) {
    std::string keys;
    for (const std::string& k : l.option_keys) {
      keys += keys.empty() ? k : ", " + k;
    }
    printf("  %-10s e.g. %-44s %s%s\n", l.name.c_str(), l.example.c_str(),
           keys.empty() ? "(no options)" : "options: ", keys.c_str());
  }
}

/// Splits a comma-separated engine list, honoring spec parentheses:
/// "gamma,sharded(tf, shards=2)" is two specs, not three fragments.
std::vector<std::string> SplitSpecList(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

/// The --restart-at drill for one (scenario, engine): cold vs
/// kill+restore+finish, verified batch for batch.  Returns false on
/// divergence.
bool RunRestartDrill(const ScenarioSpec& spec, uint64_t seed,
                     const std::string& engine_spec, size_t kill_at,
                     const std::string& dir,
                     const EngineOptions& options) {
  persist::RestartOutcome outcome;
  try {
    outcome = persist::RunRestartScenario(spec, seed, engine_spec, kill_at,
                                          dir, options);
  } catch (const persist::PersistError& e) {
    fprintf(stderr, "restart drill failed: %s\n", e.what());
    return false;
  }
  printf("  %-16s restart drill: %s — %s\n", engine_spec.c_str(),
         outcome.identical ? "OK" : "DIVERGED", outcome.detail.c_str());

  bench::JsonRow row;
  row.Set("engine", engine_spec)
      .Set("spec", outcome.cold.canonical_spec)
      .Set("latency_metric", outcome.cold.latency_metric)
      .Set("mode", "restart")
      .Set("kill_after_batches", kill_at)
      .Set("restored_at", static_cast<size_t>(outcome.restored_at))
      .Set("wal_batches_replayed",
           static_cast<size_t>(outcome.wal_batches_replayed))
      .Set("identical", outcome.identical ? "yes" : "no");
  bench::JsonSink::Instance().Add(std::move(row));
  return outcome.identical;
}

/// The --failover-at drill for one (scenario, engine): uninterrupted
/// unreplicated run vs replicated prefix + leader kill + promoted
/// follower finishing the stream, verified batch for batch with the
/// staleness bound asserted.  Returns false on divergence.
bool RunFailoverDrill(const ScenarioSpec& spec, uint64_t seed,
                      const std::string& engine_spec, size_t kill_at,
                      const EngineOptions& options) {
  replica::FailoverOutcome outcome;
  try {
    outcome = replica::RunFailoverScenario(spec, seed, engine_spec, kill_at,
                                           options);
  } catch (const EngineSpecError& e) {
    fprintf(stderr, "failover drill cannot replicate \"%s\": %s\n",
            engine_spec.c_str(), e.what());
    return false;
  } catch (const persist::PersistError& e) {
    fprintf(stderr, "failover drill failed: %s\n", e.what());
    return false;
  }
  printf("  %-16s failover drill: %s — %s\n", engine_spec.c_str(),
         outcome.identical ? "OK" : "DIVERGED", outcome.detail.c_str());

  // Replication throughput under the critical-path clock: the slowest
  // follower's applied ops over its modeled ship + apply seconds
  // (followers run in parallel, so the group drains at the slowest
  // chain's rate).
  double replication_ops_per_s = 0.0;
  uint64_t max_lag = 0, resyncs = 0;
  bool first = true;
  for (const ReplicaStats& r : outcome.stats.replicas) {
    const double s = r.transport_seconds + r.apply_seconds;
    if (s > 0.0) {
      const double rate = static_cast<double>(r.applied_ops) / s;
      if (first || rate < replication_ops_per_s) {
        replication_ops_per_s = rate;
      }
      first = false;
    }
    max_lag = std::max(max_lag, r.max_lag_batches);
    resyncs += r.resyncs;
  }

  bench::JsonRow row;
  row.Set("engine", engine_spec)
      .Set("spec", outcome.prefix.canonical_spec)
      .Set("mode", "failover")
      .Set("latency_metric", "critical_path_seconds")
      .Set("kill_after_batches", outcome.killed_at)
      // Zero-tolerance gate columns: deterministic in (spec, scenario,
      // seed) — `total_matches` is the uninterrupted run's count and
      // `matches` the stitched prefix+tail count; CI diffs both at 0%.
      .Set("total_matches", outcome.cold.total_matches)
      .Set("matches",
           outcome.prefix.total_matches + outcome.tail.total_matches)
      .Set("shipped_batches",
           outcome.prefix.shipped_batches + outcome.tail.shipped_batches)
      .Set("shipped_bytes",
           outcome.prefix.shipped_bytes + outcome.tail.shipped_bytes)
      .Set("lag_bound_batches", outcome.lag_bound)
      .Set("max_lag_batches", static_cast<size_t>(max_lag))
      .Set("resyncs", static_cast<size_t>(resyncs))
      .Set("wal_batches_replayed",
           static_cast<size_t>(outcome.stats.last_failover_replayed))
      .Set("failover_modeled_s", outcome.stats.last_failover_seconds)
      .Set("replication_ops_per_s", replication_ops_per_s)
      .Set("identical", outcome.identical ? "yes" : "no")
      .Set("lag_bounded", outcome.lag_bounded ? "yes" : "no");
  bench::JsonSink::Instance().Add(std::move(row));
  return outcome.identical;
}

/// Writes the --metrics-json / --trace-out artifacts (no-op for empty
/// paths).  Returns false, after complaining, when a file cannot be
/// written.
bool WriteObsArtifacts(const std::string& metrics_path,
                       const std::string& trace_path,
                       const obs::RunProvenance& prov) {
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << obs::MetricsRegistry::Instance().Snapshot().ToJson(&prov);
    if (!out) {
      fprintf(stderr, "cannot write metrics JSON %s\n",
              metrics_path.c_str());
      return false;
    }
    printf("wrote metrics JSON to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!obs::TraceRecorder::Instance().WriteChromeJson(trace_path, prov)) {
      fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return false;
    }
    printf("wrote chrome trace to %s (load in chrome://tracing or "
           "ui.perfetto.dev)\n",
           trace_path.c_str());
  }
  return true;
}

void RunOne(const ScenarioRunner& runner, const std::string& engine_spec,
            const EngineOptions& options,
            persist::Checkpointer* checkpointer) {
  ScenarioRunner::RunControls controls;
  controls.checkpointer = checkpointer;
  ScenarioReport r = runner.Run(engine_spec, options, controls);
  double p50 = r.LatencyPercentile(50), p95 = r.LatencyPercentile(95),
         p99 = r.LatencyPercentile(99);
  // Ingest observability (queue wait under the engine's clock, pending
  // depth at formation/dispatch): worst case over the run's batches.
  double queue_wait_max = 0.0;
  size_t queue_depth_max = 0;
  for (const ScenarioBatchMetric& b : r.batches) {
    queue_wait_max = std::max(queue_wait_max, b.queue_wait_seconds);
    queue_depth_max = std::max(queue_depth_max, b.queue_depth);
  }
  printf(
      "  %-16s %zu batches | latency (%s) p50 %.4g ms  p95 %.4g ms  "
      "p99 %.4g ms | %.4g ops/s | matches %zu | truncated %zu queries / "
      "%zu batches\n",
      engine_spec.c_str(), r.batches.size(), r.latency_metric.c_str(),
      p50 * 1e3, p95 * 1e3, p99 * 1e3, r.ThroughputOpsPerSec(),
      r.total_matches, r.truncated_queries, r.truncated_batches);

  bench::JsonRow row;
  row.Set("engine", engine_spec)
      .Set("spec", r.canonical_spec)
      .Set("latency_metric", r.latency_metric)
      .Set("num_queries", r.num_queries)
      .Set("batches", r.batches.size())
      .Set("total_ops", r.total_ops)
      .Set("total_matches", r.total_matches)
      .Set("latency_p50_s", p50)
      .Set("latency_p95_s", p95)
      .Set("latency_p99_s", p99)
      .Set("latency_mean_s", r.MeanLatencySeconds())
      .Set("throughput_ops_per_s", r.ThroughputOpsPerSec())
      .Set("truncated_queries", r.truncated_queries)
      .Set("truncated_batches", r.truncated_batches)
      .Set("queue_wait_max_s", queue_wait_max)
      .Set("queue_depth_max", queue_depth_max);
  if (!r.tenants.empty()) row.Set("fairness", r.fairness);
  if (!r.replicas.empty()) {
    row.Set("shipped_batches", r.shipped_batches)
        .Set("shipped_bytes", r.shipped_bytes)
        .Set("failovers", r.failovers);
  }
  bench::JsonSink::Instance().Add(std::move(row));

  // Replica accounting (replicated(...) runs only): one printed line
  // and one JSON row per follower — lag under the group's modeled
  // critical-path clock, drained at end of stream by the runner.
  for (const ScenarioReplicaMetric& rep : r.replicas) {
    printf(
        "    replica %d: applied %zu batches / %zu ops | ship %.4g ms + "
        "apply %.4g ms (critical path) | lag %zu (max %zu) | resyncs "
        "%zu\n",
        rep.replica, rep.applied_batches, rep.applied_ops,
        rep.transport_seconds * 1e3, rep.apply_seconds * 1e3,
        rep.lag_batches, rep.max_lag_batches, rep.resyncs);
    bench::JsonRow rrow;
    // Same provenance header as the top-level engine row (spec +
    // clock), so tree-mode bench_diff keys replica rows identically
    // (tests/python/test_provenance_rows.py asserts this).
    rrow.Set("engine", engine_spec)
        .Set("spec", r.canonical_spec)
        .Set("latency_metric", r.latency_metric)
        .Set("replica", static_cast<size_t>(rep.replica))
        .Set("applied_batches", rep.applied_batches)
        .Set("applied_ops", rep.applied_ops)
        .Set("lag_batches", rep.lag_batches)
        .Set("max_lag_batches", rep.max_lag_batches)
        .Set("resyncs", rep.resyncs)
        .Set("transport_s", rep.transport_seconds)
        .Set("apply_s", rep.apply_seconds);
    bench::JsonSink::Instance().Add(std::move(rrow));
  }

  // Per-tenant accounting (multi-tenant runs only): one printed line
  // and one JSON row per tenant — the "tenant" field keys the rows
  // apart in bench_diff.py; no throughput field, so they inform but
  // never gate.
  for (const ScenarioTenantMetric& t : r.tenants) {
    printf(
        "    tenant %-10s [%s] offered %zu admitted %zu shed %zu "
        "degraded %zu | sojourn p50 %.4g ms  p95 %.4g ms  p99 %.4g ms | "
        "max wait %.4g ms | matches %zu\n",
        t.tenant.c_str(), t.priority.c_str(), t.offered_ops,
        t.admitted_ops, t.shed_ops, t.degraded_ops, t.sojourn_p50_s * 1e3,
        t.sojourn_p95_s * 1e3, t.sojourn_p99_s * 1e3,
        t.max_queue_wait_s * 1e3,
        t.positive_matches + t.negative_matches);
    bench::JsonRow trow;
    // Tenant rows carry the engine row's provenance header too; the
    // sojourn percentiles below are under the same declared clock.
    trow.Set("engine", engine_spec)
        .Set("spec", r.canonical_spec)
        .Set("latency_metric", r.latency_metric)
        .Set("tenant", t.tenant)
        .Set("priority", t.priority)
        .Set("offered_ops", t.offered_ops)
        .Set("admitted_ops", t.admitted_ops)
        .Set("shed_ops", t.shed_ops)
        .Set("degraded_ops", t.degraded_ops)
        .Set("batches", t.batches)
        .Set("matches", t.positive_matches + t.negative_matches)
        .Set("sojourn_p50_s", t.sojourn_p50_s)
        .Set("sojourn_p95_s", t.sojourn_p95_s)
        .Set("sojourn_p99_s", t.sojourn_p99_s)
        .Set("max_queue_wait_s", t.max_queue_wait_s);
    bench::JsonSink::Instance().Add(std::move(trow));
  }
  if (!r.tenants.empty()) {
    printf("    fairness (Jain, admitted/offered shares): %.4f\n",
           r.fairness);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "smoke";
  std::string engines_arg = "gamma";
  std::string record_path, replay_path, checkpoint_dir;
  std::string metrics_json_path, trace_out_path;
  uint64_t seed = kDefaultScenarioSeed;
  double budget_s = 0.0;
  size_t checkpoint_every = 4;
  long restart_at = -1;
  long failover_at = -1;
  bool list_only = false;
  long tenants_n = 0;
  std::string priority_mix_arg;
  bool admission_on = true, have_admission = false;
  double slo_s = 0.0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s needs an argument\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_name = next("--scenario");
    } else if (std::strcmp(argv[i], "--engine") == 0) {
      engines_arg = next("--engine");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--record") == 0) {
      record_path = next("--record");
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = next("--replay");
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      budget_s = std::atof(next("--budget"));
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      checkpoint_dir = next("--checkpoint-dir");
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      checkpoint_every = std::strtoull(next("--checkpoint-every"),
                                       nullptr, 10);
    } else if (std::strcmp(argv[i], "--restart-at") == 0) {
      restart_at = std::atol(next("--restart-at"));
      if (restart_at < 1) {
        fprintf(stderr, "--restart-at wants a kill point >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--failover-at") == 0) {
      failover_at = std::atol(next("--failover-at"));
      if (failover_at < 1) {
        fprintf(stderr, "--failover-at wants a kill point >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants_n = std::atol(next("--tenants"));
      if (tenants_n < 1) {
        fprintf(stderr, "--tenants wants a tenant count >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--priority-mix") == 0) {
      priority_mix_arg = next("--priority-mix");
    } else if (std::strcmp(argv[i], "--admission") == 0) {
      const char* v = next("--admission");
      if (std::strcmp(v, "on") == 0) {
        admission_on = true;
      } else if (std::strcmp(v, "off") == 0) {
        admission_on = false;
      } else {
        fprintf(stderr, "--admission wants on|off, got \"%s\"\n", v);
        return 2;
      }
      have_admission = true;
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      slo_s = std::atof(next("--slo"));
      if (slo_s <= 0.0) {
        fprintf(stderr, "--slo wants a latency target in seconds > 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json_path = next("--metrics-json");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out_path = next("--trace-out");
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0 ||
               std::strcmp(argv[i], "--out-dir") == 0 ||
               std::strcmp(argv[i], "--cell-id") == 0 ||
               std::strcmp(argv[i], "--cell-key") == 0) {
      ++i;  // consumed by InitBench
    } else {
      fprintf(stderr, "unknown flag %s\n", argv[i]);
      ListScenarios();
      return 2;
    }
  }
  if (list_only) {
    ListScenarios();
    return 0;
  }
  bench::InitBench("bench_scenarios", argc, argv);

  std::vector<const ScenarioSpec*> scenarios;
  if (scenario_name == "all") {
    // One trace file cannot serve several scenarios: --record would
    // silently keep only the last scenario's stream and --replay would
    // feed one scenario's stream to graphs it is invalid against.
    // One checkpoint directory cannot either (one manifest = one
    // stream).
    if (!record_path.empty() || !replay_path.empty() ||
        !checkpoint_dir.empty() || restart_at >= 0 || failover_at >= 0) {
      fprintf(stderr,
              "--record/--replay/--checkpoint-dir/--restart-at/"
              "--failover-at need a single --scenario, not all\n");
      return 2;
    }
    for (const ScenarioSpec& s : AllScenarios()) scenarios.push_back(&s);
  } else {
    const ScenarioSpec* s = FindScenario(scenario_name);
    if (s == nullptr) {
      fprintf(stderr, "unknown scenario \"%s\"\n", scenario_name.c_str());
      ListScenarios();
      return 2;
    }
    scenarios.push_back(s);
  }

  // Fail fast: every engine spec is parsed and validated (names,
  // nesting arity, option keys/values, recursively) before the first
  // run starts — a sweep must never die on a typo mid-way through.
  std::vector<std::string> engines = SplitSpecList(engines_arg);
  if (engines.empty()) {
    fprintf(stderr, "--engine needs at least one spec\n");
    return 2;
  }
  for (const std::string& e : engines) {
    if (std::optional<std::string> err =
            EngineRegistry::Instance().Validate(e)) {
      fprintf(stderr, "bad --engine spec \"%s\": %s\n", e.c_str(),
              err->c_str());
      return 2;
    }
  }
  // One checkpoint directory holds one checkpoint: measuring several
  // engines through the same --checkpoint-dir would leave only the
  // last engine's state restorable, silently.  (The restart drill is
  // exempt — each drill restores and verifies before the next engine
  // reuses the directory.)
  // Each drill runs its engines one at a time, so they cannot be
  // combined — the two modes disagree on who owns the checkpoint tee.
  if (restart_at >= 0 && failover_at >= 0) {
    fprintf(stderr,
            "--restart-at and --failover-at are separate drills; run "
            "them as two invocations\n");
    return 2;
  }
  // A replica group ships its own WAL; attaching the measurement
  // loop's Checkpointer on top would tee the stream twice.
  if (!checkpoint_dir.empty() && restart_at < 0 && failover_at < 0) {
    for (const std::string& e : engines) {
      if (EngineRegistry::Instance().Canonicalize(EngineSpec::Parse(e))
              .name == "replicated") {
        fprintf(stderr,
                "--checkpoint-dir conflicts with the replicated(...) "
                "spec \"%s\" (the group ships its own WAL; point "
                "EngineOptions::replica.dir — or --failover-at's "
                "--checkpoint-dir — at it instead)\n",
                e.c_str());
        return 2;
      }
    }
  }
  if (!checkpoint_dir.empty() && restart_at < 0 && failover_at < 0 &&
      engines.size() > 1) {
    fprintf(stderr,
            "--checkpoint-dir needs a single --engine (one manifest = "
            "one engine's checkpoint); run the engines separately with "
            "their own directories\n");
    return 2;
  }

  // ---- multi-tenant flag surface (docs/SERVING.md) ----
  // Every unknown or conflicting combination is rejected up front with
  // a message naming what is valid, mirroring EngineSpecError style.
  std::vector<PriorityClass> mix_cycle;
  if (!priority_mix_arg.empty()) {
    if (tenants_n == 0) {
      fprintf(stderr,
              "--priority-mix needs --tenants N (it rotates priorities "
              "across the synthesized tenants)\n");
      return 2;
    }
    std::string err;
    if (!ParsePriorityMix(priority_mix_arg, &mix_cycle, &err)) {
      fprintf(stderr, "bad --priority-mix \"%s\": %s\n",
              priority_mix_arg.c_str(), err.c_str());
      return 2;
    }
  }
  if (tenants_n > 0) {
    if (scenario_name == "all") {
      fprintf(stderr,
              "--tenants needs a single --scenario (the synthesized mix "
              "would collide with the tenant-mix scenarios in the "
              "catalog)\n");
      return 2;
    }
    const ScenarioSpec* s = scenarios.front();
    if (s->tenants.Enabled()) {
      std::string roles;
      for (const TenantRole& r : s->tenants.roles) {
        if (!roles.empty()) roles += ", ";
        roles += r.name;
      }
      fprintf(stderr,
              "scenario \"%s\" defines its own tenant mix (roles: %s); "
              "--tenants only applies to scenarios without one\n",
              s->name.c_str(), roles.c_str());
      return 2;
    }
  }
  bool any_mix = tenants_n > 0;
  for (const ScenarioSpec* s : scenarios) {
    any_mix = any_mix || s->tenants.Enabled();
  }
  if ((have_admission || slo_s > 0.0) && !any_mix) {
    fprintf(stderr,
            "--admission/--slo only apply to multi-tenant runs — pick a "
            "tenant-mix scenario (tenant-skew, noisy-neighbor, "
            "overload-storm) or pass --tenants N\n");
    return 2;
  }
  // Explicit tenant(...) specs are taken verbatim; wrap flags on top of
  // one would be silently ignored, so the combination is an error.
  if (tenants_n > 0 || have_admission || slo_s > 0.0) {
    for (const std::string& e : engines) {
      if (EngineSpec::Parse(e).name == "tenant") {
        fprintf(stderr,
                "--tenants/--priority-mix/--admission/--slo conflict "
                "with the explicit tenant(...) spec \"%s\"; set "
                "tenants=/admission=/slo= keys inside the spec instead\n",
                e.c_str());
        return 2;
      }
    }
  }
  if (any_mix && (!checkpoint_dir.empty() || restart_at >= 0 ||
                  failover_at >= 0)) {
    fprintf(stderr,
            "multi-tenant runs cannot be checkpointed, restart-drilled, "
            "or replicated (batch formation re-draws the batch "
            "boundaries a WAL would have to record; docs/SERVING.md); "
            "drop --checkpoint-dir/--restart-at/--failover-at or use a "
            "single-tenant scenario\n");
    return 2;
  }

  EngineOptions options;
  if (budget_s > 0.0) {
    options.gamma.device.host_budget_seconds = budget_s;
    options.csm_budget_seconds = budget_s;
  }

  // Run provenance (docs/OBSERVABILITY.md): printed on every run,
  // embedded in the --metrics-json / --trace-out artifact headers.
  obs::RunProvenance prov;
  prov.tool = "bench_scenarios";
  prov.scenario = scenario_name;
  prov.engine = engines_arg;
  prov.seed = seed;
  prov.obs_compiled = BDSM_OBS != 0;
  if (!metrics_json_path.empty() || !trace_out_path.empty()) {
    obs::SetEnabled(true);
    if (!trace_out_path.empty()) {
      obs::TraceRecorder::Instance().SetEnabled(true);
    }
  }

  printf("=== scenario driver ===\nseed %llu (default %llu; see "
         "docs/WORKLOADS.md)\ngit %s | obs %s\n\n",
         static_cast<unsigned long long>(seed),
         static_cast<unsigned long long>(kDefaultScenarioSeed),
         obs::GitDescribe(),
         prov.obs_compiled
             ? (obs::Enabled() ? "enabled" : "compiled, off")
             : "compiled out");

  // The restart drill is its own mode: it runs the scenario several
  // times (cold / killed / restored) per engine, so the plain
  // measurement loop below does not apply.
  if (restart_at >= 0) {
    const ScenarioSpec* spec = scenarios.front();
    if (checkpoint_dir.empty()) checkpoint_dir = "ckpt_restart";
    printf("scenario %-10s — restart drill: kill after %ld batches, "
           "checkpoint dir %s\n",
           spec->name.c_str(), restart_at, checkpoint_dir.c_str());
    bench::JsonContext("scenario", spec->name);
    bench::JsonContext("seed", static_cast<size_t>(seed));
    bool all_ok = true;
    for (const std::string& e : engines) {
      all_ok = RunRestartDrill(*spec, seed, e,
                               static_cast<size_t>(restart_at),
                               checkpoint_dir, options) &&
               all_ok;
    }
    if (!WriteObsArtifacts(metrics_json_path, trace_out_path, prov)) {
      return 1;
    }
    if (!all_ok) return 1;
    bench::FinishBench();
    return 0;
  }

  // The failover drill mirrors it for the replica layer: the group
  // owns its own WAL tee, so --checkpoint-dir/--checkpoint-every
  // configure the group instead of attaching a Checkpointer.
  if (failover_at >= 0) {
    const ScenarioSpec* spec = scenarios.front();
    EngineOptions drill_options = options;
    drill_options.replica.dir = checkpoint_dir;  // "" = fresh temp dir
    drill_options.replica.checkpoint_every = checkpoint_every;
    printf("scenario %-10s — failover drill: kill the leader after %ld "
           "batches, shipping dir %s\n",
           spec->name.c_str(), failover_at,
           checkpoint_dir.empty() ? "(temp)" : checkpoint_dir.c_str());
    bench::JsonContext("scenario", spec->name);
    bench::JsonContext("seed", static_cast<size_t>(seed));
    bool all_ok = true;
    for (const std::string& e : engines) {
      all_ok = RunFailoverDrill(*spec, seed, e,
                                static_cast<size_t>(failover_at),
                                drill_options) &&
               all_ok;
    }
    if (!WriteObsArtifacts(metrics_json_path, trace_out_path, prov)) {
      return 1;
    }
    if (!all_ok) return 1;
    bench::FinishBench();
    return 0;
  }

  for (const ScenarioSpec* spec : scenarios) {
    ScenarioSpec eff = *spec;
    if (tenants_n > 0) {
      eff.tenants =
          MakeUniformTenantMix(static_cast<size_t>(tenants_n), mix_cycle);
    }
    ScenarioRunner runner(eff, seed);
    if (!replay_path.empty()) {
      if (!runner.ReplayTrace(replay_path)) {
        fprintf(stderr, "cannot replay trace %s\n", replay_path.c_str());
        return 1;
      }
    }
    if (!record_path.empty()) {
      if (!runner.RecordTrace(record_path)) {
        fprintf(stderr, "cannot record trace %s\n", record_path.c_str());
        return 1;
      }
      printf("recorded %zu batches to %s\n", runner.stream().size(),
             record_path.c_str());
    }
    printf("scenario %-10s [%s] — %s\n  graph |V|=%zu |E|=%zu, "
           "%zu queries, %zu batches%s\n",
           spec->name.c_str(), StreamKindName(spec->stream.kind),
           spec->description.c_str(), runner.graph().NumVertices(),
           runner.graph().NumEdges(), runner.queries().size(),
           runner.stream().size(),
           replay_path.empty() ? "" : " (replayed)");
    bench::JsonContext("scenario", spec->name);
    bench::JsonContext("seed", static_cast<size_t>(seed));
    std::optional<persist::Checkpointer> checkpointer;
    if (!checkpoint_dir.empty()) {
      persist::CheckpointPolicy policy;
      policy.every_batches = checkpoint_every;
      checkpointer.emplace(checkpoint_dir, policy, persist::WalOptions{},
                           options.gamma.device);
      printf("  checkpointing into %s (snapshot every %zu batches)\n",
             checkpoint_dir.c_str(), checkpoint_every);
    }
    // Tenant-mix runs drive bare specs through a composed tenant(...)
    // wrap (explicit tenant specs pass through verbatim); the composed
    // spec is printed so the JSON "spec" provenance is no surprise.
    std::vector<std::string> run_engines = engines;
    if (eff.tenants.Enabled()) {
      for (std::string& e : run_engines) {
        EngineSpec parsed = EngineSpec::Parse(e);
        if (parsed.name == "tenant") continue;
        EngineSpec wrapped;
        wrapped.name = "tenant";
        wrapped.children.push_back(std::move(parsed));
        if (have_admission && !admission_on) {
          wrapped.options.emplace_back("admission", "off");
        }
        if (slo_s > 0.0) {
          char buf[32];
          snprintf(buf, sizeof buf, "%g", slo_s);
          wrapped.options.emplace_back("slo", buf);
        }
        std::string w = wrapped.ToString();
        printf("  note: driving \"%s\" as %s (tenant mix)\n", e.c_str(),
               w.c_str());
        e = std::move(w);
      }
    }
    for (const std::string& e : run_engines) {
      try {
        RunOne(runner, e, options,
               checkpointer ? &*checkpointer : nullptr);
      } catch (const persist::PersistError& err) {
        fprintf(stderr, "checkpointing failed: %s\n", err.what());
        return 1;
      }
    }
    printf("\n");
  }
  if (!WriteObsArtifacts(metrics_json_path, trace_out_path, prov)) {
    return 1;
  }
  bench::FinishBench();
  return 0;
}
