"""Shared machinery of the experiment-matrix harness (docs/EXPERIMENTS.md).

A matrix config (schema ``bdsm-matrix-v1``, e.g. ``experiments/
matrix.json``) declares groups of cells: {engine spec template x
scenario x option sweep}.  This module expands a config into the
deterministic, ordered cell list that ``run_matrix.py`` executes and
``bench_diff.py --tree`` / ``report.py`` consume, and owns the seed
derivation and results-tree conventions:

* Cell ids are stable slugs (``group__scenario__engine[__k-v...]``);
  the per-cell row file is ``<tree>/cells/<id>.json``, written sealed
  (atomic rename, ``"sealed": true``, success paths only) by the
  bench's ``--out-dir DIR --cell-id ID`` assist.  The driver also
  passes ``--cell-key``, a digest of the cell's full identity (tool,
  scenario, engine, sweep, args, seed) echoed into the document, so a
  sealed file is only resumed past when it measured *this* config's
  cell — editing the matrix (a new master seed, different args) re-runs
  the affected cells instead of silently keeping stale results.
* Per-cell seeds follow the repo's DeriveSeed convention
  (src/util/rng.hpp): SplitMix64 over (master seed, stream id).  The
  stream id is FNV-1a of the cell's *workload key* — group id +
  scenario, NOT the engine or sweep values — so every cell of a sweep
  measures the identical stream and cross-engine match-count
  invariants (sharded == unsharded, replicated == bare) hold inside a
  group.
* ``RESULTS_MANIFEST.json`` (schema ``bdsm-results-v1``) records every
  cell's identity, status, and RunProvenance (spec, clock, seed, git)
  with no timestamps or measured values, so an interrupted-then-resumed
  sweep finishes with a byte-identical manifest to an uninterrupted
  one.
"""
import hashlib
import itertools
import json
import pathlib
import re

MATRIX_SCHEMA = "bdsm-matrix-v1"
RESULTS_SCHEMA = "bdsm-results-v1"
BENCH_SCHEMA = "bdsm-bench-v1"
MANIFEST_NAME = "RESULTS_MANIFEST.json"
CELLS_DIR = "cells"

MASK64 = (1 << 64) - 1


class MatrixError(Exception):
    """A config or results tree violates the schema."""


# --------------------------------------------------------------- seeds
def splitmix64(z):
    """The SplitMix64 finalizer, bit-for-bit util/rng.hpp SplitMix64."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)


def derive_seed(master, stream_id):
    """util/rng.hpp DeriveSeed: independent sub-seed per stream id."""
    return splitmix64((master + 0x9E3779B97F4A7C15 * (stream_id + 1)) & MASK64)


def fnv1a64(text):
    """FNV-1a over UTF-8 — the stable string -> stream-id mapping."""
    h = 0xCBF29CE484222325
    for b in text.encode("utf-8"):
        h = ((h ^ b) * 0x100000001B3) & MASK64
    return h


def cell_seed(master, workload_key):
    return derive_seed(master, fnv1a64(workload_key))


# --------------------------------------------------------------- cells
_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def slug(text):
    """Filesystem/shell-safe cell-id fragment."""
    return _SLUG_RE.sub("-", text).strip("-")


def _subst(template, values):
    """Fills {key} placeholders; unknown placeholders are an error."""
    out = str(template)
    for k, v in values.items():
        out = out.replace("{%s}" % k, str(v))
    dangling = re.findall(r"\{([A-Za-z0-9_]+)\}", out)
    if dangling:
        raise MatrixError(
            f"template {template!r} has unbound placeholder(s) "
            f"{sorted(set(dangling))}; sweep keys are {sorted(values)}")
    return out


class Cell:
    """One fully-bound matrix cell: everything needed to run and key it."""

    def __init__(self, group, tool, scenario, engine, sweep, args, seed,
                 workload_key):
        self.group = group
        self.tool = tool
        self.scenario = scenario  # None for non-scenario tools
        self.engine = engine      # None for non-engine tools
        self.sweep = dict(sweep)
        self.args = list(args)
        self.seed = seed
        self.workload_key = workload_key
        parts = [group]
        if scenario:
            parts.append(slug(scenario))
        if engine:
            parts.append(slug(engine))
        for k, v in self.sweep.items():
            parts.append(f"{slug(k)}-{slug(str(v))}")
        self.cell_id = "__".join(parts)
        # Identity fingerprint: what --cell-key carries and is_sealed()
        # compares, covering every run-relevant component of the cell.
        self.cell_key = hashlib.sha256(
            json.dumps(self.describe(), sort_keys=True)
            .encode("utf-8")).hexdigest()

    def command(self, bin_path):
        """argv to seal this cell into ``out_dir`` (appended by caller)."""
        cmd = [str(bin_path)]
        if self.scenario is not None:
            cmd += ["--scenario", self.scenario]
        if self.engine is not None:
            cmd += ["--engine", self.engine]
        if self.scenario is not None:
            cmd += ["--seed", str(self.seed)]
        cmd += self.args
        return cmd

    def describe(self):
        """The manifest entry's identity half (no results)."""
        entry = {"id": self.cell_id, "group": self.group, "tool": self.tool,
                 "seed": self.seed}
        if self.scenario is not None:
            entry["scenario"] = self.scenario
        if self.engine is not None:
            entry["engine"] = self.engine
        if self.sweep:
            entry["sweep"] = self.sweep
        if self.args:
            entry["args"] = self.args
        return entry


def load_config(path):
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise MatrixError(f"cannot read matrix config {path}: {e}")
    if doc.get("schema") != MATRIX_SCHEMA:
        raise MatrixError(f"{path} is not a {MATRIX_SCHEMA} config")
    for key in ("name", "seed", "groups"):
        if key not in doc:
            raise MatrixError(f"{path}: missing required key {key!r}")
    return doc


def config_digest(path):
    """Content digest recorded in the manifest (whitespace-sensitive on
    purpose: the manifest identifies the exact committed config)."""
    return hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()


def expand_cells(config):
    """Expands a config into its ordered cell list.

    Order is deterministic: groups in config order, then scenarios,
    then engine templates, then the sweep's cartesian product with each
    key's values in listed order — the same order every run, which is
    what lets resumed and uninterrupted sweeps converge on identical
    manifests.
    """
    master = int(config["seed"])
    cells = []
    seen = {}
    for group in config["groups"]:
        if "id" not in group:
            raise MatrixError("every group needs an 'id'")
        gid = group["id"]
        if slug(gid) != gid or not gid:
            raise MatrixError(f"group id {gid!r} is not a clean slug")
        tool = group.get("tool", "bench_scenarios")
        scenarios = group.get("scenarios")
        engines = group.get("engines")
        if (scenarios is None) != (engines is None):
            raise MatrixError(
                f"group {gid!r}: 'scenarios' and 'engines' come together "
                "(scenario tools) or not at all (e.g. bench_micro)")
        sweep = group.get("sweep", {})
        args = group.get("args", [])
        combos = [dict(zip(sweep.keys(), values))
                  for values in itertools.product(*sweep.values())]
        for scenario in (scenarios if scenarios is not None else [None]):
            workload_key = group.get("seed_key") or (
                f"{gid}/{scenario}" if scenario else gid)
            seed = cell_seed(master, workload_key)
            for engine in (engines if engines is not None else [None]):
                for combo in combos:
                    bound_engine = (_subst(engine, combo)
                                    if engine is not None else None)
                    bound_args = [_subst(a, combo) for a in args]
                    cell = Cell(gid, tool, scenario, bound_engine, combo,
                                bound_args, seed, workload_key)
                    if cell.cell_id in seen:
                        raise MatrixError(
                            f"cell id collision: {cell.cell_id!r} (groups "
                            f"{seen[cell.cell_id]!r} and {gid!r}) — "
                            "disambiguate the group/engine/sweep names")
                    seen[cell.cell_id] = gid
                    cells.append(cell)
    return cells


# --------------------------------------------------------- results tree
def cell_path(tree, cell_id):
    return pathlib.Path(tree) / CELLS_DIR / f"{cell_id}.json"


def load_cell(path):
    """Parses a sealed cell row file; returns the document or None when
    the file is absent, torn, or not a sealed bdsm-bench-v1 doc."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("schema") != BENCH_SCHEMA or not doc.get("sealed"):
        return None
    return doc


def doc_matches(doc, cell):
    """Does a sealed document measure exactly this expanded cell?

    The cell_key comparison is what keeps resume honest against config
    edits: a row file sealed under an older matrix (different seed,
    args, engine binding) fingerprints differently and is re-run, never
    silently kept while the manifest stamps the new identity next to
    it.  Files sealed by pre-cell-key binaries (no "cell_key" field)
    also re-run."""
    return (doc is not None and doc.get("cell_id") == cell.cell_id
            and doc.get("cell_key") == cell.cell_key)


def is_sealed(tree, cell):
    """True when the cell's row file exists, parses, and matches the
    cell's identity — the resume predicate of run_matrix.py."""
    return doc_matches(load_cell(cell_path(tree, cell.cell_id)), cell)


def cell_provenance(doc):
    """RunProvenance recorded per cell in the manifest: canonical spec +
    clock from the first row, git from the file header.  Deterministic
    in (binary, config) — never measured values."""
    prov = {}
    header = doc.get("provenance", {})
    if "git" in header:
        prov["git"] = header["git"]
    rows = doc.get("rows", [])
    if rows:
        first = rows[0]
        if "spec" in first:
            prov["spec"] = first["spec"]
        clock = first.get("clock", first.get("latency_metric"))
        if clock is not None:
            prov["clock"] = clock
    return prov


def render_manifest(config, config_path, cells, tree):
    """The manifest document for the tree's current state."""
    entries = []
    for cell in cells:
        entry = cell.describe()
        doc = load_cell(cell_path(tree, cell.cell_id))
        if doc_matches(doc, cell):
            entry["status"] = "sealed"
            entry["rows"] = len(doc.get("rows", []))
            entry["provenance"] = cell_provenance(doc)
        else:
            entry["status"] = "pending"
        entries.append(entry)
    return {
        "schema": RESULTS_SCHEMA,
        "matrix": config["name"],
        "seed": config["seed"],
        "config": pathlib.Path(config_path).name,
        "config_sha256": config_digest(config_path),
        "cells": entries,
    }


def write_manifest(tree, manifest):
    """Atomic write: the manifest is either the previous state or the
    new one, never torn — and byte-deterministic (sorted keys, fixed
    indentation, trailing newline)."""
    path = pathlib.Path(tree) / MANIFEST_NAME
    text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)


def load_manifest(tree):
    path = pathlib.Path(tree) / MANIFEST_NAME
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise MatrixError(f"cannot read {path}: {e}")
    if doc.get("schema") != RESULTS_SCHEMA:
        raise MatrixError(f"{path} is not a {RESULTS_SCHEMA} manifest")
    return doc
