#!/usr/bin/env python3
"""Resumable experiment-matrix driver (docs/EXPERIMENTS.md).

Expands a ``bdsm-matrix-v1`` config into cells and runs each through
the bench binaries' cell assist (``--out-dir DIR --cell-id ID
--cell-key FP``), which writes one provenance-headed row file per cell
*atomically*, marking it ``"sealed": true`` only when the bench's run
completed successfully (nonzero exits leave at most a ``.tmp``
post-mortem, and the driver scrubs the cell path after any failed
attempt).  On restart the driver skips every cell whose sealed file is
already present, valid, and carries this config's identity
fingerprint (``cell_key``), so a killed sweep resumes
exactly where it stopped — no cell re-executed — and finishes with a
RESULTS_MANIFEST.json byte-identical to an uninterrupted run's (the
manifest is a pure function of config + sealed files: no timestamps,
no measured values).

Usage:
  run_matrix.py --config experiments/matrix-ci.json --bin-dir build \
                --out results-ci [--only REGEX] [--list] [--keep-going]

Exit status: 0 all selected cells sealed; 1 a cell failed (or, with
--keep-going, at least one failure after attempting the rest); 2 bad
usage/config.
"""
import argparse
import pathlib
import re
import subprocess
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import matrix_common as mx


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="run an experiment matrix with sealed-cell resume")
    ap.add_argument("--config", required=True,
                    help="bdsm-matrix-v1 config (experiments/*.json)")
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding the bench binaries (build/)")
    ap.add_argument("--out", required=True,
                    help="results tree to create/resume")
    ap.add_argument("--only", metavar="REGEX", default=None,
                    help="run only cells whose id matches (others stay "
                         "pending in the manifest; exit ignores them)")
    ap.add_argument("--list", action="store_true",
                    help="print the expanded cells and exit")
    ap.add_argument("--keep-going", action="store_true",
                    help="attempt remaining cells after a failure")
    args = ap.parse_args(argv)

    try:
        config = mx.load_config(args.config)
        cells = mx.expand_cells(config)
    except mx.MatrixError as e:
        print(f"run_matrix: {e}", file=sys.stderr)
        return 2

    only = re.compile(args.only) if args.only else None
    selected = [c for c in cells
                if only is None or only.search(c.cell_id)]
    if args.list:
        for cell in cells:
            mark = " " if only is None or only.search(cell.cell_id) else "-"
            print(f"{mark} {cell.cell_id}  tool={cell.tool} "
                  f"seed={cell.seed}")
        print(f"{len(selected)}/{len(cells)} cells selected")
        return 0
    if not selected:
        print("run_matrix: --only matched no cells", file=sys.stderr)
        return 2

    bin_dir = pathlib.Path(args.bin_dir)
    tools = {}
    for cell in selected:
        path = bin_dir / cell.tool
        if cell.tool not in tools:
            if not path.is_file():
                print(f"run_matrix: missing tool {path} "
                      f"(build it first)", file=sys.stderr)
                return 2
            tools[cell.tool] = path

    tree = pathlib.Path(args.out)
    cells_dir = tree / mx.CELLS_DIR
    cells_dir.mkdir(parents=True, exist_ok=True)
    # A manifest exists from the first moment: a killed run leaves a
    # valid tree whose pending entries say exactly what remains.
    mx.write_manifest(tree, mx.render_manifest(config, args.config,
                                               cells, tree))

    ran = skipped = failed = 0
    for cell in selected:
        if mx.is_sealed(tree, cell):
            skipped += 1
            print(f"[seal ] {cell.cell_id} (already sealed, skipping)")
            continue
        cmd = cell.command(tools[cell.tool]) + [
            "--out-dir", str(cells_dir), "--cell-id", cell.cell_id,
            "--cell-key", cell.cell_key]
        print(f"[run  ] {cell.cell_id}: {' '.join(cmd)}")
        sys.stdout.flush()
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0 or not mx.is_sealed(tree, cell):
            failed += 1
            why = (f"exit {proc.returncode}" if proc.returncode != 0
                   else "tool exited 0 but left no sealed row file")
            print(f"[FAIL ] {cell.cell_id}: {why}", file=sys.stderr)
            # A failed attempt must leave nothing a later resume could
            # mistake for a completed cell: the benches only seal on
            # success, but a stale row file from an older config (or a
            # third-party tool sealing unconditionally at exit) could
            # still be sitting at the cell path.
            row_file = mx.cell_path(tree, cell.cell_id)
            row_file.unlink(missing_ok=True)
            pathlib.Path(str(row_file) + ".tmp").unlink(missing_ok=True)
            if not args.keep_going:
                break
            continue
        ran += 1
        mx.write_manifest(tree, mx.render_manifest(config, args.config,
                                                   cells, tree))

    mx.write_manifest(tree, mx.render_manifest(config, args.config,
                                               cells, tree))
    total = len(selected)
    print(f"run_matrix: {ran} ran, {skipped} resumed-sealed, "
          f"{failed} failed, {total} selected "
          f"({len(cells)} cells total) -> {tree / mx.MANIFEST_NAME}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
