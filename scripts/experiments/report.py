#!/usr/bin/env python3
"""Report generator for experiment-matrix results trees
(docs/EXPERIMENTS.md).

Reads one or more results trees written by run_matrix.py (the LAST one
is the current run; earlier ones feed the perf-trajectory section) and
writes a deterministic REPORT.md plus pure-Python SVG charts into
--out:

  throughput_latency.svg   engine rows on the throughput-latency plane
  scaling_shards.svg       shard-sweep throughput (critical-path clock)
  scaling_followers.svg    follower-sweep throughput
  trajectory.svg           per-cell throughput across the given trees

Deterministic means: same input trees -> byte-identical outputs.  No
timestamps, no environment probes; ordering follows the manifest cell
order; every number is formatted with fixed precision.  Charts degrade
gracefully — a section is omitted when its cells are absent.

Usage:
  report.py TREE [TREE ...] --out DIR
"""
import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import matrix_common as mx

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2"]


def fmt(v):
    """Fixed numeric formatting so the report is byte-deterministic."""
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


# ------------------------------------------------------------ SVG
def svg_chart(path, title, xlabel, ylabel, series):
    """Minimal deterministic line/scatter chart.

    series: list of (label, [(x, y), ...]) with numeric x/y.  Points
    are drawn as circles and connected in x order when a series has
    more than one point.
    """
    width, height = 640, 400
    ml, mr, mt, mb = 70, 160, 40, 50
    pw, ph = width - ml - mr, height - mt - mb
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    if not xs:
        return False
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmin, xmax = xmin - 0.5, xmax + 0.5
    if ymax == ymin:
        ymin, ymax = ymin - 0.5 * abs(ymin or 1), ymax + 0.5 * abs(ymax or 1)

    def px(x):
        return ml + pw * (x - xmin) / (xmax - xmin)

    def py(y):
        return mt + ph * (1.0 - (y - ymin) / (ymax - ymin))

    out = []
    out.append(f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
               f'height="{height}" viewBox="0 0 {width} {height}">')
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    out.append(f'<text x="{width // 2}" y="20" text-anchor="middle" '
               f'font-family="sans-serif" font-size="14">{title}</text>')
    # axes
    out.append(f'<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{mt + ph}" '
               'stroke="black"/>')
    out.append(f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" '
               f'y2="{mt + ph}" stroke="black"/>')
    for i in range(5):
        fx = xmin + (xmax - xmin) * i / 4
        fy = ymin + (ymax - ymin) * i / 4
        out.append(f'<text x="{px(fx):.1f}" y="{mt + ph + 16}" '
                   'text-anchor="middle" font-family="sans-serif" '
                   f'font-size="10">{fx:.3g}</text>')
        out.append(f'<text x="{ml - 6}" y="{py(fy):.1f}" '
                   'text-anchor="end" font-family="sans-serif" '
                   f'font-size="10">{fy:.3g}</text>')
        if i:
            out.append(f'<line x1="{ml}" y1="{py(fy):.1f}" '
                       f'x2="{ml + pw}" y2="{py(fy):.1f}" '
                       'stroke="#dddddd"/>')
    out.append(f'<text x="{ml + pw // 2}" y="{height - 10}" '
               'text-anchor="middle" font-family="sans-serif" '
               f'font-size="12">{xlabel}</text>')
    out.append(f'<text x="16" y="{mt + ph // 2}" text-anchor="middle" '
               'font-family="sans-serif" font-size="12" '
               f'transform="rotate(-90 16 {mt + ph // 2})">{ylabel}</text>')
    for i, (label, pts) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        pts = sorted(pts)
        if len(pts) > 1:
            poly = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in pts)
            out.append(f'<polyline points="{poly}" fill="none" '
                       f'stroke="{color}" stroke-width="1.5"/>')
        for x, y in pts:
            out.append(f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                       f'fill="{color}"/>')
        ly = mt + 14 * i
        out.append(f'<rect x="{ml + pw + 8}" y="{ly}" width="10" '
                   f'height="10" fill="{color}"/>')
        label = label if len(label) <= 24 else label[:21] + "..."
        out.append(f'<text x="{ml + pw + 22}" y="{ly + 9}" '
                   'font-family="sans-serif" font-size="10">'
                   f'{label}</text>')
    out.append("</svg>")
    pathlib.Path(path).write_text("\n".join(out) + "\n", encoding="utf-8")
    return True


# ------------------------------------------------------------ loading
def load_tree(tree):
    """(manifest, {cell_id: entry}, {cell_id: rows}) for sealed cells."""
    manifest = mx.load_manifest(tree)
    entries, rows = {}, {}
    for entry in manifest.get("cells", []):
        if entry.get("status") != "sealed":
            continue
        doc = mx.load_cell(mx.cell_path(tree, entry["id"]))
        if doc is None:
            raise mx.MatrixError(
                f"{tree}: manifest lists {entry['id']} as sealed but its "
                "row file is unreadable")
        entries[entry["id"]] = entry
        rows[entry["id"]] = doc.get("rows", [])
    return manifest, entries, rows


def engine_row(cell_rows):
    """The cell's engine summary row (has throughput); None otherwise."""
    for row in cell_rows:
        if "throughput_ops_per_s" in row and "tenant" not in row:
            return row
    return None


def table(lines, headers, rows):
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    lines.append("")


# ------------------------------------------------------------ sections
def main(argv=None):
    ap = argparse.ArgumentParser(
        description="render REPORT.md + SVG charts from results trees")
    ap.add_argument("trees", nargs="+",
                    help="results trees, oldest first; last = current")
    ap.add_argument("--out", required=True, help="output directory")
    args = ap.parse_args(argv)

    try:
        loaded = [load_tree(t) for t in args.trees]
    except mx.MatrixError as e:
        print(f"report: {e}", file=sys.stderr)
        return 2
    manifest, entries, rows_by_cell = loaded[-1]
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    gits = sorted({e.get("provenance", {}).get("git", "?")
                   for e in entries.values()})
    lines = []
    lines.append(f"# Experiment report — matrix `{manifest['matrix']}`")
    lines.append("")
    lines.append(f"Config `{manifest['config']}` "
                 f"(sha256 `{manifest['config_sha256'][:12]}`), "
                 f"master seed {manifest['seed']}, "
                 f"binaries `{', '.join(gits)}`. "
                 f"{len(entries)} sealed cells"
                 + (f" across {len(loaded)} stored runs."
                    if len(loaded) > 1 else "."))
    lines.append("")

    # --- cell inventory ---
    lines.append("## Cells")
    lines.append("")
    table(lines, ["cell", "tool", "scenario", "engine", "clock", "rows"],
          [[f"`{cid}`", e["tool"], e.get("scenario", "—"),
            f"`{e.get('engine', '—')}`",
            e.get("provenance", {}).get("clock", "—"), e.get("rows", 0)]
           for cid, e in entries.items()])

    # --- engine x scenario summary + throughput-latency plane ---
    summary = []
    for cid, e in entries.items():
        row = engine_row(rows_by_cell[cid])
        if row is not None:
            summary.append((cid, e, row))
    if summary:
        lines.append("## Engine × scenario")
        lines.append("")
        lines.append("Latency percentiles are per-batch, on each row's "
                     "own clock domain (`latency_metric`); match counts "
                     "are exact and deterministic in (binary, seed).")
        lines.append("")
        table(lines, ["scenario", "spec", "clock", "p50 (s)", "p95 (s)",
                      "throughput (ops/s)", "matches"],
              [[r.get("scenario", "—"), f"`{r.get('spec', '?')}`",
                r.get("latency_metric", "?"), fmt(r.get("latency_p50_s")),
                fmt(r.get("latency_p95_s")),
                fmt(r.get("throughput_ops_per_s")),
                fmt(r.get("total_matches"))]
               for _, _, r in summary])
        by_spec = {}
        for _, _, r in summary:
            pt = (r.get("throughput_ops_per_s"), r.get("latency_p95_s"))
            if None not in pt:
                by_spec.setdefault(r.get("spec", "?"), []).append(pt)
        if svg_chart(out / "throughput_latency.svg",
                     "Throughput vs p95 latency (per engine row)",
                     "throughput (ops/s)", "p95 latency (s)",
                     sorted(by_spec.items())):
            lines.append("![throughput vs latency](throughput_latency.svg)")
            lines.append("")

    # --- scaling sweeps ---
    for key, fname, title in (
            ("shards", "scaling_shards.svg", "Shard scaling"),
            ("followers", "scaling_followers.svg", "Follower scaling")):
        sweep_cells = [(cid, e, engine_row(rows_by_cell[cid]))
                       for cid, e in entries.items()
                       if key in e.get("sweep", {})]
        sweep_cells = [(c, e, r) for c, e, r in sweep_cells if r]
        if not sweep_cells:
            continue
        lines.append(f"## {title}")
        lines.append("")
        clocks = sorted({r.get("latency_metric", "?")
                         for _, _, r in sweep_cells})
        lines.append(f"Clock domain(s): {', '.join(clocks)} — one CPU "
                     "core; sharded scaling is critical-path, never "
                     "wall-clock parallelism.")
        lines.append("")
        extra = (["shipped bytes", "max lag"] if key == "followers" else [])
        body = []
        for cid, e, r in sweep_cells:
            row = [e["sweep"][key], r.get("scenario", "—"),
                   f"`{r.get('spec', '?')}`",
                   fmt(r.get("throughput_ops_per_s")),
                   fmt(r.get("latency_p95_s")),
                   fmt(r.get("total_matches"))]
            if key == "followers":
                lags = [rr.get("max_lag_batches") for rr in
                        rows_by_cell[cid] if "replica" in rr]
                row += [fmt(r.get("shipped_bytes", 0)),
                        fmt(max([l for l in lags if l is not None],
                                default=0))]
            body.append(row)
        table(lines, [key, "scenario", "spec", "throughput (ops/s)",
                      "p95 (s)", "matches"] + extra, body)
        series = {}
        for cid, e, r in sweep_cells:
            thr = r.get("throughput_ops_per_s")
            if thr is not None:
                series.setdefault(r.get("scenario", "?"), []).append(
                    (e["sweep"][key], thr))
        if svg_chart(out / fname, f"{title}: throughput vs {key}",
                     key, "throughput (ops/s)", sorted(series.items())):
            lines.append(f"![{title.lower()}]({fname})")
            lines.append("")

    # --- tenant fairness ---
    tenant_cells = [(cid, e) for cid, e in entries.items()
                    if any("tenant" in r for r in rows_by_cell[cid])]
    if tenant_cells:
        lines.append("## Tenant fairness")
        lines.append("")
        for cid, e in tenant_cells:
            eng = engine_row(rows_by_cell[cid])
            fairness = fmt(eng.get("fairness")) if eng else "—"
            lines.append(f"### `{cid}` — Jain fairness {fairness}")
            lines.append("")
            table(lines, ["tenant", "priority", "offered", "admitted",
                          "shed", "matches", "sojourn p95 (s)"],
                  [[r["tenant"], r.get("priority", "—"),
                    fmt(r.get("offered_ops")), fmt(r.get("admitted_ops")),
                    fmt(r.get("shed_ops")), fmt(r.get("matches")),
                    fmt(r.get("sojourn_p95_s"))]
                   for r in rows_by_cell[cid] if "tenant" in r])

    # --- microbench profile ---
    micro = [(cid, r) for cid, e in entries.items()
             for r in rows_by_cell[cid] if "container" in r]
    if micro:
        lines.append("## GPMA container profile")
        lines.append("")
        table(lines, ["cell", "workload", "applied", "moved/update",
                      "resized/update", "segment ops"],
              [[f"`{cid}`", r.get("workload", "?"),
                fmt(r.get("applied_updates")),
                fmt(r.get("moved_entries_per_update")),
                fmt(r.get("resized_entries_per_update")),
                fmt(r.get("segment_ops"))] for cid, r in micro])

    # --- perf trajectory across stored runs ---
    if len(loaded) > 1:
        lines.append(f"## Perf trajectory ({len(loaded)} runs)")
        lines.append("")
        lines.append("Runs are ordered as given (oldest first); the "
                     "x axis is the run index. Only cells sealed in "
                     "every run are plotted.")
        lines.append("")
        common = set(loaded[0][1])
        for _, ents, _ in loaded[1:]:
            common &= set(ents)
        series, body = {}, []
        for cid in [c for c in entries if c in common]:
            pts = []
            for i, (_, _, rows_i) in enumerate(loaded):
                r = engine_row(rows_i[cid])
                if r and r.get("throughput_ops_per_s") is not None:
                    pts.append((i, r["throughput_ops_per_s"]))
            if len(pts) == len(loaded):
                series[cid] = pts
                first, last = pts[0][1], pts[-1][1]
                delta = (100.0 * (last - first) / first) if first else 0.0
                body.append([f"`{cid}`", fmt(first), fmt(last),
                             f"{delta:+.1f}%"])
        if body:
            table(lines, ["cell", "first (ops/s)", "last (ops/s)",
                          "change"], body)
            if svg_chart(out / "trajectory.svg",
                         "Throughput trajectory across runs",
                         "run index", "throughput (ops/s)",
                         sorted(series.items())):
                lines.append("![trajectory](trajectory.svg)")
                lines.append("")
        skipped = len(entries) - len(common)
        if skipped:
            lines.append(f"({skipped} cell(s) of the current run are "
                         "not present in every stored run and were "
                         "left off the trajectory.)")
            lines.append("")

    (out / "REPORT.md").write_text("\n".join(lines).rstrip() + "\n",
                                   encoding="utf-8")
    print(f"report: wrote {out / 'REPORT.md'} "
          f"(+ {len(list(out.glob('*.svg')))} charts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
