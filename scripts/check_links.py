#!/usr/bin/env python3
"""Checks that relative Markdown links in the repo's docs resolve.

Scans README.md and docs/*.md for [text](target) links; every target
that is not an external URL or a pure #anchor must exist on disk
(relative to the file containing the link).  CI runs this in the docs
job so moved/renamed files that leave dangling links fail the build.

Usage: python3 scripts/check_links.py [repo_root]
"""
import pathlib
import re
import sys

# [text](target) — won't catch reference-style links, which these docs
# don't use; code spans are stripped first so `[i](x)` in code is safe.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
CODE_BLOCK_RE = re.compile(r"```.*?```", re.DOTALL)


def links_in(path: pathlib.Path):
    text = path.read_text(encoding="utf-8")
    text = CODE_BLOCK_RE.sub("", text)
    text = CODE_SPAN_RE.sub("", text)
    return LINK_RE.findall(text)


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    missing = []
    checked = 0
    for f in files:
        if not f.exists():
            continue
        for target in links_in(f):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (f.parent / target.split("#", 1)[0]).resolve()
            checked += 1
            if not resolved.exists():
                missing.append(f"{f}: broken link -> {target}")
    for line in missing:
        print(line, file=sys.stderr)
    print(f"check_links: {checked} relative links checked, "
          f"{len(missing)} broken")
    return 1 if missing else 0


if __name__ == "__main__":
    sys.exit(main())
