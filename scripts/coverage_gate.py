#!/usr/bin/env python3
"""Line-coverage gate over a --coverage (gcov) instrumented build.

Walks a build directory for .gcda counter files, runs `gcov
--json-format` on each, merges the per-line execution counts (a header
or template line hit from any translation unit counts as covered), and
enforces a minimum line-coverage percentage over the files whose
repo-relative path starts with a given prefix.

Usage:
  python3 scripts/coverage_gate.py --build-dir build-cov \
      --prefix src/gpma/ --min-percent 85

Requires gcov >= 9 (JSON intermediate format).  No gcovr/lcov needed.

Exit codes: 0 gate met, 1 coverage below threshold, 2 usage/input error.
"""
import argparse
import gzip
import json
import pathlib
import subprocess
import sys
import tempfile


def run_gcov(gcda_paths, scratch):
    """Runs gcov in JSON mode over the counter files; yields parsed docs."""
    # gcov drops its *.gcov.json.gz next to the cwd — use a scratch dir.
    cmd = ["gcov", "--json-format", "--branch-probabilities"]
    cmd += [str(p.resolve()) for p in gcda_paths]
    proc = subprocess.run(cmd, cwd=scratch, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"coverage_gate: gcov failed:\n{proc.stderr}", file=sys.stderr)
        sys.exit(2)
    for out in pathlib.Path(scratch).glob("*.gcov.json.gz"):
        try:
            with gzip.open(out, "rt", encoding="utf-8") as f:
                yield json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"coverage_gate: cannot parse {out}: {e}", file=sys.stderr)
            sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", required=True,
                    help="instrumented build tree to scan for .gcda files")
    ap.add_argument("--prefix", action="append", required=True,
                    help="repo-relative source prefix to gate (repeatable)")
    ap.add_argument("--min-percent", type=float, default=85.0,
                    help="minimum line coverage over the gated files")
    ap.add_argument("--repo-root", default=".",
                    help="repository root the prefixes are relative to")
    args = ap.parse_args()

    build = pathlib.Path(args.build_dir)
    if not build.is_dir():
        print(f"coverage_gate: no such build dir {build}", file=sys.stderr)
        sys.exit(2)
    gcda = sorted(build.rglob("*.gcda"))
    if not gcda:
        print(f"coverage_gate: no .gcda under {build} — did the "
              "instrumented tests run?", file=sys.stderr)
        sys.exit(2)

    root = pathlib.Path(args.repo_root).resolve()
    # (file -> line -> max count) merged across translation units.
    lines = {}
    with tempfile.TemporaryDirectory() as scratch:
        for doc in run_gcov(gcda, scratch):
            for f in doc.get("files", []):
                path = pathlib.Path(f["file"])
                if not path.is_absolute():
                    path = (root / path).resolve()
                try:
                    rel = path.resolve().relative_to(root).as_posix()
                except ValueError:
                    continue  # system header
                if not any(rel.startswith(p) for p in args.prefix):
                    continue
                per_file = lines.setdefault(rel, {})
                for ln in f.get("lines", []):
                    n = ln["line_number"]
                    per_file[n] = max(per_file.get(n, 0), ln["count"])

    if not lines:
        print("coverage_gate: no gated files appear in the coverage data "
              f"(prefixes: {', '.join(args.prefix)})", file=sys.stderr)
        sys.exit(2)

    total = hit = 0
    print(f"{'file':<44} {'lines':>7} {'hit':>7} {'cov%':>7}")
    for rel in sorted(lines):
        per_file = lines[rel]
        file_total = len(per_file)
        file_hit = sum(1 for c in per_file.values() if c > 0)
        total += file_total
        hit += file_hit
        pct = 100.0 * file_hit / file_total if file_total else 100.0
        print(f"{rel:<44} {file_total:>7} {file_hit:>7} {pct:>6.1f}%")
    pct = 100.0 * hit / total if total else 100.0
    print(f"{'TOTAL':<44} {total:>7} {hit:>7} {pct:>6.1f}%")
    if pct < args.min_percent:
        print(f"coverage_gate: {pct:.1f}% < required {args.min_percent}%",
              file=sys.stderr)
        return 1
    print(f"coverage_gate: {pct:.1f}% >= {args.min_percent}% — gate met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
