#!/usr/bin/env python3
"""Diffs perf-trajectory files (schema bdsm-bench-v1) — two row files,
or two experiment-matrix results trees (docs/EXPERIMENTS.md).

Rows are keyed by their string-valued fields — the canonical-spec
provenance field ("spec") that every bench row carries, plus whatever
sweep context the bench recorded (dataset, scenario, structure class,
...) — so a row compares against the row measuring the same cell in
the other file, regardless of row order.  Numeric fields are compared
as relative change (new vs old).

Two-file mode:
  python3 scripts/bench_diff.py OLD.json NEW.json
      [--metric FIELD]      only diff this numeric field (repeatable)
      [--max-regress PCT]   exit 1 when a gated metric regresses by
                            more than PCT percent; requires --metric.
                            By default a regression is GROWTH
                            (lower-is-better metrics: latencies,
                            critical path); with --higher-is-better it
                            is SHRINKAGE (throughput, batches/s)
      [--higher-is-better]  gated --metric fields are
                            higher-is-better: the gate fires on drops
      [--all]               print unchanged rows too

Tree mode (the fleet-wide regression gate):
  python3 scripts/bench_diff.py --tree OLD_DIR NEW_DIR
      [--max-regress PCT] [--all]

  OLD_DIR/NEW_DIR are results trees written by run_matrix.py
  (RESULTS_MANIFEST.json + cells/*.json).  Rows pair by canonical cell
  id + row key, i.e. keyed by canonical spec + scenario + clock
  provenance.  The gate is direction-aware per metric without flags:

  * match counts (total_matches, matches) are ZERO-TOLERANCE — any
    change, either direction, and any row present on one side only
    inside a common cell, fails the gate;
  * a cell sealed in OLD but missing/unsealed in NEW fails the gate
    (a sweep that silently lost coverage is a regression);
  * directional metrics (latency-style lower-is-better,
    throughput-style higher-is-better — see DIRECTION/suffix table)
    gate only when --max-regress is given, each in its own direction;
  * metrics with unknown direction are reported, never gated.

Exit codes: 0 ok, 1 regression/missing coverage, 2 usage/input error.
"""
import argparse
import json
import pathlib
import sys

# --- tree-mode direction tables -------------------------------------
# Zero tolerance: correctness results. The engines are deterministic in
# (binary, seed), so any drift in match counts is a real behavior
# change, not noise.
ZERO_TOLERANCE = {"total_matches", "matches"}

# Known directions for the gate. Metrics not resolvable here or via the
# suffix/prefix heuristics are reported but never gated.  Every name
# must be a field a bench actually emits (bench/*.cpp `.Set("...")`) —
# a dead entry silently un-gates its metric, so the tables are locked
# to the sources by tests/python/test_bench_diff.py.
HIGHER_IS_BETTER = {
    "throughput_ops_per_s", "replication_ops_per_s", "batches_per_s",
    "batches_per_s_wall", "fused_speedup", "speedup_vs_1", "solved",
    "admitted_ops", "fairness", "avg_utilization",
}
LOWER_IS_BETTER = {
    "unsolved", "shed_ops", "degraded_ops", "truncated_queries",
    "truncated_batches", "resyncs", "lag_batches", "max_lag_batches",
    "queue_depth_max", "locates_per_update",
    "resized_entries_per_update", "moved_entries_per_update",
    "update_ratio_pct", "rebuild_over_gpma", "bfs_peak_mem_pct",
    "dfs_peak_mem_pct",
}
_LOWER_SUFFIXES = ("_s", "_ms", "_us", "_ticks", "_bytes")
_LOWER_PREFIXES = ("latency_", "sojourn_", "queue_wait_", "p50", "p95",
                   "p99")


def metric_direction(field):
    """'higher' | 'lower' | None (unknown: report-only)."""
    if field in HIGHER_IS_BETTER:
        return "higher"
    if field in LOWER_IS_BETTER:
        return "lower"
    # Rates end in "_per_s", which also matches the lower-is-better
    # "_s" suffix — resolve them as throughput first so a future
    # "*_ops_per_s" field gates in the right direction.
    if field.endswith("_per_s"):
        return "higher"
    if field.startswith(_LOWER_PREFIXES) or field.endswith(_LOWER_SUFFIXES):
        return "lower"
    return None


def load_rows(path):
    try:
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bdsm-bench-v1":
        print(f"bench_diff: {path} is not a bdsm-bench-v1 file",
              file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), doc.get("rows", [])


def row_key(row):
    """Identity of a measured cell: every string field, sorted.

    The "spec" field (the engine's canonical spec stamped from
    Engine::Describe()) is the primary provenance component; string
    sweep context (dataset, scenario, structure class, clock) completes
    it.  Rows that share a key — numeric sweeps like a rate or shard
    loop — are paired positionally, which is stable because benches
    emit sweep rows in a deterministic order.
    """
    parts = []
    for k, v in sorted(row.items()):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            parts.append(f"{k}={v}")
    return " ".join(parts)


def numeric_fields(row, only):
    out = {}
    for k, v in row.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        if only and k not in only:
            continue
        out[k] = v
    return out


def diff_files(args):
    old_bench, old_rows = load_rows(args.old)
    new_bench, new_rows = load_rows(args.new)
    if old_bench != new_bench:
        print(f"bench_diff: comparing different benches "
              f"({old_bench} vs {new_bench})", file=sys.stderr)

    old_by_key = {}
    for row in old_rows:
        old_by_key.setdefault(row_key(row), []).append(row)

    regressions = 0
    matched = 0
    for row in new_rows:
        key = row_key(row)
        bucket = old_by_key.get(key)
        if not bucket:
            print(f"NEW ROW   {key}")
            continue
        old_row = bucket.pop(0)
        matched += 1
        lines = []
        for field, new_v in sorted(numeric_fields(row, args.metric).items()):
            old_v = old_row.get(field)
            if not isinstance(old_v, (int, float)) or isinstance(old_v, bool):
                continue
            if old_v == new_v:
                continue
            if old_v == 0:
                rel = float("inf") if new_v != 0 else 0.0
            else:
                rel = 100.0 * (new_v - old_v) / abs(old_v)
            mark = ""
            # Direction-aware: latency-style metrics regress upward,
            # throughput-style metrics regress downward.
            regress_pct = -rel if args.higher_is_better else rel
            if args.max_regress is not None and regress_pct > args.max_regress:
                mark = "  <-- REGRESSION"
                regressions += 1
            lines.append(f"    {field}: {old_v:.6g} -> {new_v:.6g} "
                         f"({rel:+.1f}%){mark}")
        if lines or args.all:
            print(f"ROW       {key}")
            for line in lines:
                print(line)
    for key, bucket in old_by_key.items():
        for _ in bucket:
            print(f"GONE      {key}")

    print(f"bench_diff: {matched} rows matched, "
          f"{len(new_rows) - matched} new, "
          f"{sum(len(b) for b in old_by_key.values())} gone, "
          f"{regressions} regressions over threshold")
    return 1 if regressions else 0


# --- tree mode -------------------------------------------------------
def load_tree(tree):
    """{cell_id: rows} for every sealed cell of a results tree."""
    tree = pathlib.Path(tree)
    manifest_path = tree / "RESULTS_MANIFEST.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {manifest_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if manifest.get("schema") != "bdsm-results-v1":
        print(f"bench_diff: {manifest_path} is not a bdsm-results-v1 "
              "manifest", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for entry in manifest.get("cells", []):
        if entry.get("status") != "sealed":
            continue
        cid = entry["id"]
        path = tree / "cells" / f"{cid}.json"
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: manifest says {cid} is sealed but "
                  f"{path} is unreadable: {e}", file=sys.stderr)
            sys.exit(2)
        if not doc.get("sealed") or doc.get("cell_id") != cid:
            print(f"bench_diff: {path} is not a sealed row file for "
                  f"{cid}", file=sys.stderr)
            sys.exit(2)
        cells[cid] = doc.get("rows", [])
    return cells


def diff_cell_rows(cell_id, old_rows, new_rows, max_regress, show_all):
    """Gates one common cell; returns the number of gate failures."""
    failures = 0
    old_by_key = {}
    for row in old_rows:
        old_by_key.setdefault(row_key(row), []).append(row)
    for row in new_rows:
        key = row_key(row)
        bucket = old_by_key.get(key)
        if not bucket:
            # Inside a common cell the row set is part of the result
            # (e.g. a per-tenant row vanishing) — zero tolerance.
            print(f"FAIL {cell_id}: new row with no baseline "
                  f"counterpart [{key}]")
            failures += 1
            continue
        old_row = bucket.pop(0)
        lines = []
        for field, new_v in sorted(numeric_fields(row, None).items()):
            old_v = old_row.get(field)
            if not isinstance(old_v, (int, float)) or isinstance(old_v, bool):
                continue
            if field in ZERO_TOLERANCE:
                if old_v != new_v:
                    print(f"FAIL {cell_id}: {field} changed "
                          f"{old_v:.6g} -> {new_v:.6g} "
                          f"(zero tolerance) [{key}]")
                    failures += 1
                continue
            if old_v == new_v:
                continue
            if old_v == 0:
                rel = float("inf") if new_v != 0 else 0.0
            else:
                rel = 100.0 * (new_v - old_v) / abs(old_v)
            direction = metric_direction(field)
            mark = ""
            if max_regress is not None and direction is not None:
                regress_pct = -rel if direction == "higher" else rel
                if regress_pct > max_regress:
                    mark = "  <-- REGRESSION"
                    failures += 1
            lines.append(f"    {field}: {old_v:.6g} -> {new_v:.6g} "
                         f"({rel:+.1f}%){mark}")
        if lines and (show_all or any("REGRESSION" in l for l in lines)):
            print(f"CELL {cell_id} [{key}]")
            for line in lines:
                print(line)
    for key, bucket in old_by_key.items():
        for _ in bucket:
            print(f"FAIL {cell_id}: baseline row vanished [{key}]")
            failures += 1
    return failures


def diff_trees(args):
    old_cells = load_tree(args.old)
    new_cells = load_tree(args.new)

    failures = 0
    compared = 0
    for cell_id in old_cells:
        if cell_id not in new_cells:
            print(f"FAIL missing cell: {cell_id} sealed in baseline, "
                  "absent/unsealed in new tree")
            failures += 1
    new_only = [c for c in new_cells if c not in old_cells]
    for cell_id in new_only:
        print(f"NEW CELL  {cell_id} (no baseline; not gated)")
    for cell_id, old_rows in old_cells.items():
        if cell_id not in new_cells:
            continue
        compared += 1
        failures += diff_cell_rows(cell_id, old_rows, new_cells[cell_id],
                                   args.max_regress, args.all)

    print(f"bench_diff[tree]: {compared} cells compared, "
          f"{len(old_cells) - compared} missing, {len(new_only)} new, "
          f"{failures} gate failures")
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline row file, or tree with --tree")
    ap.add_argument("new", help="candidate row file, or tree with --tree")
    ap.add_argument("--tree", action="store_true",
                    help="OLD/NEW are run_matrix.py results trees; gate "
                         "every cell (direction-aware, zero-tolerance "
                         "match counts, missing cells fail)")
    ap.add_argument("--metric", action="append", default=[],
                    help="numeric field(s) to diff (two-file mode; "
                         "default: all)")
    ap.add_argument("--max-regress", type=float, default=None, metavar="PCT",
                    help="fail on a >PCT%% regression. Two-file mode: "
                         "requires --metric (growth by default; a drop "
                         "with --higher-is-better). Tree mode: gates "
                         "every known-direction metric, each in its own "
                         "direction")
    ap.add_argument("--higher-is-better", action="store_true",
                    help="two-file mode: gated metrics are "
                         "higher-is-better (regression is a drop)")
    ap.add_argument("--all", action="store_true",
                    help="print rows with no gate failure too")
    args = ap.parse_args()

    if args.tree:
        if args.metric or args.higher_is_better:
            print("bench_diff: --metric/--higher-is-better are two-file "
                  "flags; tree mode is direction-aware per metric",
                  file=sys.stderr)
            sys.exit(2)
        return diff_trees(args)

    if args.max_regress is not None and not args.metric:
        # A change is only a regression relative to the metric's
        # direction, so the gate must name which fields it judges.
        print("bench_diff: --max-regress requires --metric (and "
              "--higher-is-better when the metric is throughput-like)",
              file=sys.stderr)
        sys.exit(2)
    return diff_files(args)


if __name__ == "__main__":
    sys.exit(main())
