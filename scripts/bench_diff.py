#!/usr/bin/env python3
"""Diffs two perf-trajectory files (BENCH_*.json, schema bdsm-bench-v1).

Rows are keyed by their string-valued fields — the canonical-spec
provenance field ("spec") that every bench row carries, plus whatever
sweep context the bench recorded (dataset, scenario, structure class,
...) — so a row compares against the row measuring the same cell in
the other file, regardless of row order.  Numeric fields are compared
as relative change (new vs old).

Usage:
  python3 scripts/bench_diff.py OLD.json NEW.json
      [--metric FIELD]      only diff this numeric field (repeatable)
      [--max-regress PCT]   exit 1 when a gated metric regresses by
                            more than PCT percent; requires --metric.
                            By default a regression is GROWTH
                            (lower-is-better metrics: latencies,
                            critical path); with --higher-is-better it
                            is SHRINKAGE (throughput, batches/s)
      [--higher-is-better]  gated --metric fields are
                            higher-is-better: the gate fires on drops
      [--all]               print unchanged rows too

Intended for perf-trajectory checks: run a bench at two commits with
--json, then `bench_diff.py old.json new.json --metric avg_latency_s
--max-regress 20` fails the gate on a >20% latency regression, and
`bench_diff.py baseline.json new.json --metric throughput_ops_per_s
--higher-is-better --max-regress 25` fails on a >25% throughput drop
(the scenarios-smoke CI gate against bench/baselines/).

Exit codes: 0 ok, 1 regression over threshold, 2 usage/input error.
"""
import argparse
import json
import pathlib
import sys


def load_rows(path):
    try:
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bdsm-bench-v1":
        print(f"bench_diff: {path} is not a bdsm-bench-v1 file",
              file=sys.stderr)
        sys.exit(2)
    return doc.get("bench", "?"), doc.get("rows", [])


def row_key(row):
    """Identity of a measured cell: every string field, sorted.

    The "spec" field (the engine's canonical spec stamped from
    Engine::Describe()) is the primary provenance component; string
    sweep context (dataset, scenario, structure class, clock) completes
    it.  Rows that share a key — numeric sweeps like a rate or shard
    loop — are paired positionally, which is stable because benches
    emit sweep rows in a deterministic order.
    """
    parts = []
    for k, v in sorted(row.items()):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            parts.append(f"{k}={v}")
    return " ".join(parts)


def numeric_fields(row, only):
    out = {}
    for k, v in row.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        if only and k not in only:
            continue
        out[k] = v
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--metric", action="append", default=[],
                    help="numeric field(s) to diff (default: all)")
    ap.add_argument("--max-regress", type=float, default=None, metavar="PCT",
                    help="fail when a --metric regresses by more than PCT%% "
                         "(growth by default; a drop with "
                         "--higher-is-better)")
    ap.add_argument("--higher-is-better", action="store_true",
                    help="gated metrics are higher-is-better: regression "
                         "is a drop, not growth")
    ap.add_argument("--all", action="store_true",
                    help="print rows with no change too")
    args = ap.parse_args()
    if args.max_regress is not None and not args.metric:
        # A change is only a regression relative to the metric's
        # direction, so the gate must name which fields it judges.
        print("bench_diff: --max-regress requires --metric (and "
              "--higher-is-better when the metric is throughput-like)",
              file=sys.stderr)
        sys.exit(2)

    old_bench, old_rows = load_rows(args.old)
    new_bench, new_rows = load_rows(args.new)
    if old_bench != new_bench:
        print(f"bench_diff: comparing different benches "
              f"({old_bench} vs {new_bench})", file=sys.stderr)

    old_by_key = {}
    for row in old_rows:
        old_by_key.setdefault(row_key(row), []).append(row)

    regressions = 0
    matched = 0
    for row in new_rows:
        key = row_key(row)
        bucket = old_by_key.get(key)
        if not bucket:
            print(f"NEW ROW   {key}")
            continue
        old_row = bucket.pop(0)
        matched += 1
        lines = []
        for field, new_v in sorted(numeric_fields(row, args.metric).items()):
            old_v = old_row.get(field)
            if not isinstance(old_v, (int, float)) or isinstance(old_v, bool):
                continue
            if old_v == new_v:
                continue
            if old_v == 0:
                rel = float("inf") if new_v != 0 else 0.0
            else:
                rel = 100.0 * (new_v - old_v) / abs(old_v)
            mark = ""
            # Direction-aware: latency-style metrics regress upward,
            # throughput-style metrics regress downward.
            regress_pct = -rel if args.higher_is_better else rel
            if args.max_regress is not None and regress_pct > args.max_regress:
                mark = "  <-- REGRESSION"
                regressions += 1
            lines.append(f"    {field}: {old_v:.6g} -> {new_v:.6g} "
                         f"({rel:+.1f}%){mark}")
        if lines or args.all:
            print(f"ROW       {key}")
            for line in lines:
                print(line)
    for key, bucket in old_by_key.items():
        for _ in bucket:
            print(f"GONE      {key}")

    print(f"bench_diff: {matched} rows matched, "
          f"{len(new_rows) - matched} new, "
          f"{sum(len(b) for b in old_by_key.values())} gone, "
          f"{regressions} regressions over threshold")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
