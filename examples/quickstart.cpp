/// \file quickstart.cpp
/// GAMMA in ~40 lines: the paper's running example (Fig. 1).
///
/// Builds the data graph G, registers the query Q (an A-vertex with two
/// interconnected B-neighbors, one of which has a C-neighbor), applies
/// the batch {+(v0,v2), +(v1,v4), -(v4,v5)} and prints the incremental
/// matches — the four positive matches of the BDSM column of Fig. 1(c).
///
///   ./example_quickstart
#include <cstdio>

#include "core/gamma.hpp"

using namespace bdsm;

int main() {
  // Data graph G of Fig. 1(b).  Labels: A=0, B=1, C=2.
  LabeledGraph g({0, 0, 1, 1, 1, 1, 1, 2, 2, 2});
  for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 3}, {0, 4}, {2, 3},
                      {2, 4}, {2, 7}, {3, 8}, {4, 8}, {1, 5}, {5, 6},
                      {5, 9}, {6, 9}, {4, 5}}) {
    g.InsertEdge(u, v);
  }

  // Query graph Q of Fig. 1(a).
  QueryGraph q({0, 1, 1, 2});  // u0=A, u1=B, u2=B, u3=C
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);

  // The system: GPMA device graph + encoder + query plans, one call.
  Gamma gamma(g, q, GammaOptions{});

  // The update batch of Example 1.
  UpdateBatch batch = {
      {true, 0, 2, kNoLabel},   // +(v0, v2)
      {true, 1, 4, kNoLabel},   // +(v1, v4)
      {false, 4, 5, kNoLabel},  // -(v4, v5)
  };
  BatchResult res = gamma.ProcessBatch(batch);

  printf("positive matches: %zu\n", res.positive_matches.size());
  for (const MatchRecord& m : res.positive_matches) {
    printf("  u0->v%u u1->v%u u2->v%u u3->v%u\n", m.m[0], m.m[1], m.m[2],
           m.m[3]);
  }
  printf("negative matches: %zu\n", res.negative_matches.size());
  for (const MatchRecord& m : res.negative_matches) {
    printf("  u0->v%u u1->v%u u2->v%u u3->v%u\n", m.m[0], m.m[1], m.m[2],
           m.m[3]);
  }
  printf("modeled device latency: %.3f us (update %llu + match %llu "
         "ticks), utilization %.1f%%\n",
         res.ModeledSeconds(gamma.options().device) * 1e6,
         static_cast<unsigned long long>(res.update_stats.makespan_ticks),
         static_cast<unsigned long long>(res.match_stats.makespan_ticks),
         100.0 * res.match_stats.Utilization());
  return 0;
}
