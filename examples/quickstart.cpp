/// \file quickstart.cpp
/// GAMMA in ~40 lines: the paper's running example (Fig. 1), driven
/// through the unified Engine interface (core/engine.hpp).
///
/// Builds the data graph G, registers the query Q (an A-vertex with two
/// interconnected B-neighbors, one of which has a C-neighbor), applies
/// the batch {+(v0,v2), +(v1,v4), -(v4,v5)} and prints the incremental
/// matches — the four positive matches of the BDSM column of Fig. 1(c).
/// Swap "gamma" for any registry name ("multi", "tf", "sym", "rf",
/// "cl", "gf") and the same code runs a different system.
///
///   ./example_quickstart [engine]
#include <cstdio>
#include <optional>
#include <string>

#include "core/engine.hpp"

using namespace bdsm;

int main(int argc, char** argv) {
  const char* engine_name = argc > 1 ? argv[1] : "gamma";
  if (std::optional<std::string> err =
          EngineRegistry::Instance().Validate(engine_name)) {
    fprintf(stderr, "%s\n", err->c_str());
    return 2;
  }

  // Data graph G of Fig. 1(b).  Labels: A=0, B=1, C=2.
  LabeledGraph g({0, 0, 1, 1, 1, 1, 1, 2, 2, 2});
  for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 3}, {0, 4}, {2, 3},
                      {2, 4}, {2, 7}, {3, 8}, {4, 8}, {1, 5}, {5, 6},
                      {5, 9}, {6, 9}, {4, 5}}) {
    g.InsertEdge(u, v);
  }

  // Query graph Q of Fig. 1(a).
  QueryGraph q({0, 1, 1, 2});  // u0=A, u1=B, u2=B, u3=C
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);

  // The system: one registry call, one registered query.
  EngineOptions opts;
  auto engine = MakeEngine(engine_name, g, opts);
  QueryId qid = engine->AddQuery(q);
  printf("engine: %s\n", engine->Name());

  // The update batch of Example 1.
  UpdateBatch batch = {
      {true, 0, 2, kNoLabel},   // +(v0, v2)
      {true, 1, 4, kNoLabel},   // +(v1, v4)
      {false, 4, 5, kNoLabel},  // -(v4, v5)
  };
  BatchReport report = engine->ProcessBatch(batch);
  const QueryReport& res = *report.Find(qid);

  // Device engines emit the batch delta directly; the sequential CSM
  // baselines emit a raw per-edge stream whose (+,-) flips cancel —
  // either way NetDelta yields the BDSM delta of Fig. 1(c).
  std::vector<MatchRecord> delta = NetDelta(res);

  size_t positives = 0;
  for (const MatchRecord& m : delta) positives += m.positive;
  printf("positive matches: %zu\n", positives);
  for (const MatchRecord& m : delta) {
    if (!m.positive) continue;
    printf("  u0->v%u u1->v%u u2->v%u u3->v%u\n", m.m[0], m.m[1], m.m[2],
           m.m[3]);
  }
  printf("negative matches: %zu\n", delta.size() - positives);
  for (const MatchRecord& m : delta) {
    if (m.positive) continue;
    printf("  u0->v%u u1->v%u u2->v%u u3->v%u\n", m.m[0], m.m[1], m.m[2],
           m.m[3]);
  }
  if (engine->Describe().clock == ClockDomain::kModeledDevice) {
    printf("modeled device latency: %.3f us (update %llu + match %llu "
           "ticks), utilization %.1f%%\n",
           res.ModeledSeconds(opts.gamma.device) * 1e6,
           static_cast<unsigned long long>(res.update_stats.makespan_ticks),
           static_cast<unsigned long long>(res.match_stats.makespan_ticks),
           100.0 * res.match_stats.Utilization());
  } else {
    printf("host wall: %.3f us (sequential CPU baseline)\n",
           res.host_wall_seconds * 1e6);
  }
  return 0;
}
