/// \file network_motifs.cpp
/// Cellular-network monitoring — the paper cites CellIQ-style analytics
/// as a batch-dynamic consumer; here GAMMA tracks a congestion motif
/// over a stream of link updates while comparing against a sequential
/// CSM baseline, showing the batch-amortization the paper argues for.
///
/// Vertices: cell towers (label 0), aggregation switches (label 1) and
/// gateways (label 2); edges carry a load-class label (0 = normal,
/// 1 = hot).  The motif: a tower connected by *hot* links to two
/// switches that both uplink to the same gateway — an early congestion
/// signature.
///
///   ./example_network_motifs [num_batches]
#include <cstdio>
#include <cstdlib>

#include "baselines/csm_common.hpp"
#include "core/gamma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"
#include "util/timer.hpp"

using namespace bdsm;

namespace {

LabeledGraph MakeTopology(size_t towers, size_t switches, size_t gateways,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> labels;
  for (size_t i = 0; i < towers; ++i) labels.push_back(0);
  for (size_t i = 0; i < switches; ++i) labels.push_back(1);
  for (size_t i = 0; i < gateways; ++i) labels.push_back(2);
  LabeledGraph g(labels);
  auto rand_in = [&](size_t base, size_t count) {
    return static_cast<VertexId>(base + rng.Uniform(count));
  };
  // Every tower homed to ~3 switches, every switch to ~2 gateways.
  for (size_t t = 0; t < towers; ++t) {
    for (int i = 0; i < 3; ++i) {
      g.InsertEdge(static_cast<VertexId>(t), rand_in(towers, switches),
                   rng.Chance(0.2) ? 1 : 0);
    }
  }
  for (size_t s = 0; s < switches; ++s) {
    for (int i = 0; i < 2; ++i) {
      g.InsertEdge(static_cast<VertexId>(towers + s),
                   rand_in(towers + switches, gateways), 0);
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_batches = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;

  LabeledGraph g = MakeTopology(2500, 400, 40, 7);
  printf("topology: %zu vertices, %zu edges\n", g.NumVertices(),
         g.NumEdges());

  // Congestion motif: tower u0 -hot-> switches u1, u2; both uplink to
  // gateway u3 (uplink label 0).
  QueryGraph motif({0, 1, 1, 2});
  motif.AddEdge(0, 1, 1);
  motif.AddEdge(0, 2, 1);
  motif.AddEdge(1, 3, 0);
  motif.AddEdge(2, 3, 0);

  Gamma gamma(g, motif, GammaOptions{});
  UpdateStreamGenerator stream(55);

  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch = SanitizeBatch(
        gamma.host_graph(),
        stream.MakeMixed(gamma.host_graph(), 300, 2, 1, /*elabels=*/2));

    // Sequential CSM baseline (RapidFlow) on the same batch, same state.
    auto rf = MakeCsmEngine("RF", gamma.host_graph(), motif);
    Timer rf_timer;
    auto rf_raw = rf->ProcessBatch(batch);
    double rf_wall = rf_timer.ElapsedSeconds();
    size_t rf_net = NetEffect(rf_raw).size();

    BatchResult res = gamma.ProcessBatch(batch);
    printf("batch %zu (%3zu ops): GAMMA +%zu/-%zu motifs, device %.1f us"
           " | RF (sequential CSM) net %zu in %.1f us host\n",
           b + 1, batch.size(), res.positive_matches.size(),
           res.negative_matches.size(),
           res.ModeledSeconds(gamma.options().device) * 1e6, rf_net,
           rf_wall * 1e6);
  }
  printf("\nGAMMA processes the batch as one parallel kernel; the CSM "
         "baseline re-searches per edge — the gap grows with batch "
         "size (paper Fig. 9).\n");
  return 0;
}
