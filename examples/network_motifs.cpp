/// \file network_motifs.cpp
/// Cellular-network monitoring — the paper cites CellIQ-style analytics
/// as a batch-dynamic consumer; here a congestion motif is tracked over
/// a stream of link updates by GAMMA *and* a sequential CSM baseline,
/// both driven by the exact same Engine loop (the engine name is the
/// only difference), showing the batch-amortization the paper argues
/// for.
///
/// Vertices: cell towers (label 0), aggregation switches (label 1) and
/// gateways (label 2); edges carry a load-class label (0 = normal,
/// 1 = hot).  The motif: a tower connected by *hot* links to two
/// switches that both uplink to the same gateway — an early congestion
/// signature.
///
///   ./example_network_motifs [num_batches] [baseline-engine]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

using namespace bdsm;

namespace {

LabeledGraph MakeTopology(size_t towers, size_t switches, size_t gateways,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> labels;
  for (size_t i = 0; i < towers; ++i) labels.push_back(0);
  for (size_t i = 0; i < switches; ++i) labels.push_back(1);
  for (size_t i = 0; i < gateways; ++i) labels.push_back(2);
  LabeledGraph g(labels);
  auto rand_in = [&](size_t base, size_t count) {
    return static_cast<VertexId>(base + rng.Uniform(count));
  };
  // Every tower homed to ~3 switches, every switch to ~2 gateways.
  for (size_t t = 0; t < towers; ++t) {
    for (int i = 0; i < 3; ++i) {
      g.InsertEdge(static_cast<VertexId>(t), rand_in(towers, switches),
                   rng.Chance(0.2) ? 1 : 0);
    }
  }
  for (size_t s = 0; s < switches; ++s) {
    for (int i = 0; i < 2; ++i) {
      g.InsertEdge(static_cast<VertexId>(towers + s),
                   rand_in(towers + switches, gateways), 0);
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_batches = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const char* baseline = argc > 2 ? argv[2] : "rf";

  LabeledGraph g = MakeTopology(2500, 400, 40, 7);
  printf("topology: %zu vertices, %zu edges\n", g.NumVertices(),
         g.NumEdges());

  // Congestion motif: tower u0 -hot-> switches u1, u2; both uplink to
  // gateway u3 (uplink label 0).
  QueryGraph motif({0, 1, 1, 2});
  motif.AddEdge(0, 1, 1);
  motif.AddEdge(0, 2, 1);
  motif.AddEdge(1, 3, 0);
  motif.AddEdge(2, 3, 0);

  // Two engines, one interface: the GPU system and a sequential CSM
  // baseline, both registered with the same motif and fed the same
  // batches.
  EngineOptions opts;
  auto gamma = MakeEngine("gamma", g, opts);
  auto csm = MakeEngine(baseline, g, opts);
  QueryId gq = gamma->AddQuery(motif);
  QueryId cq = csm->AddQuery(motif);

  UpdateStreamGenerator stream(55);
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch = SanitizeBatch(
        gamma->host_graph(),
        stream.MakeMixed(gamma->host_graph(), 300, 2, 1, /*elabels=*/2));

    BatchReport gr = gamma->ProcessBatch(batch);
    BatchReport cr = csm->ProcessBatch(batch);
    const QueryReport& gres = *gr.Find(gq);
    const QueryReport& cres = *cr.Find(cq);
    size_t csm_net = NetDelta(cres).size();

    printf("batch %zu (%3zu ops): GAMMA +%zu/-%zu motifs, device %.1f us"
           " | %s (sequential CSM) net %zu in %.1f us host\n",
           b + 1, batch.size(), gres.num_positive, gres.num_negative,
           gres.ModeledSeconds(opts.gamma.device) * 1e6, csm->Name(),
           csm_net, cres.host_wall_seconds * 1e6);
  }
  printf("\nGAMMA processes the batch as one parallel kernel; the CSM "
         "baseline re-searches per edge — the gap grows with batch "
         "size (paper Fig. 9).\n");
  return 0;
}
