/// \file cli.cpp
/// Command-line driver: run any registered engine on your own
/// graph/query files.  Engine choice is a flag, not a code path.
///
/// Usage:
///   ./example_cli [--engine SPEC] [--shards N] <graph-file> <query-file>
///                 [ins-rate%] [seed]
///   ./example_cli [--engine SPEC] [--shards N] --demo  # built-in demo
///   ./example_cli [--engine SPEC] [--shards N] --scenario NAME
///                 [--seed N] [--checkpoint-dir DIR]
///                 [--checkpoint-every N]
///                 [--tenants N [--priority-mix CLASS[:W],...]]
///                 # named workload scenario
///   ./example_cli --restore DIR             # warm-start from a
///                 # checkpoint directory and finish its scenario
///   ./example_cli --list-engines            # registered engines
///
/// Any mode also accepts --metrics-json PATH and --trace-out PATH
/// (docs/OBSERVABILITY.md): dump the unified metrics registry and the
/// clock-domain-tagged chrome://tracing phase spans, both stamped with
/// run provenance (tool, scenario, engine, seed, git describe).
///
/// SPEC is any engine spec per the canonical grammar of
/// docs/ENGINES.md: a plain name ("gamma" (default), "multi", "tf",
/// ...), a spec with inline options ("gamma(result_cap=100000)"), or a
/// composed wrapper ("sharded(gamma, shards=4)"; the legacy
/// "sharded:gamma@4" sugar still parses).  --shards N wraps the chosen
/// engine in the sharded serving layer (serve/sharded_engine.hpp),
/// equivalent to writing the sharded(...) spec yourself.  --scenario
/// runs a named workload from the scenario catalog
/// (src/workload/scenario.hpp; docs/WORKLOADS.md) through the chosen
/// engine and prints latency percentiles, throughput and truncation —
/// the same driver bench_scenarios uses.
///
/// Multi-tenant serving (src/serve/tenant_front_door.hpp;
/// docs/SERVING.md): tenant-mix scenarios (tenant-skew,
/// noisy-neighbor, overload-storm) automatically drive the chosen
/// engine through a composed tenant(...) front door and print
/// per-tenant accounting + the Jain fairness index.  `--tenants N`
/// synthesizes an N-way uniform mix for any other scenario, with
/// priorities rotating through `--priority-mix`
/// (e.g. "gold:1,silver:2,best_effort:1"; default all silver).
///
/// Persistence (src/persist/; docs/PERSISTENCE.md): --checkpoint-dir
/// checkpoints a --scenario run as it goes (base snapshot, WAL tee
/// with fsync on batch boundaries, snapshot every --checkpoint-every
/// batches, default 4).  --restore DIR warm-starts from that
/// directory — snapshot + WAL tail, O(tail) not O(stream) — and
/// finishes the remaining scenario batches on the restored engine.
///
/// File format (shared with the CSM literature; see graph/graph_io.hpp):
///   t <num_vertices> <num_edges>
///   v <id> <label>
///   e <u> <v> [edge_label]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/stream_pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_io.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"
#include "persist/checkpoint.hpp"
#include "workload/scenario_runner.hpp"

using namespace bdsm;

namespace {

/// Flushes the --metrics-json / --trace-out artifacts (no-op for empty
/// paths) and forwards `rc`; a write failure turns a successful run
/// into exit 1 (docs/OBSERVABILITY.md).
int FinishObs(int rc, const std::string& metrics_path,
              const std::string& trace_path,
              const obs::RunProvenance& prov) {
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << obs::MetricsRegistry::Instance().Snapshot().ToJson(&prov);
    if (!out) {
      fprintf(stderr, "cannot write metrics JSON %s\n",
              metrics_path.c_str());
      if (rc == 0) rc = 1;
    } else {
      printf("wrote metrics JSON to %s\n", metrics_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    if (!obs::TraceRecorder::Instance().WriteChromeJson(trace_path,
                                                        prov)) {
      fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    } else {
      printf("wrote chrome trace to %s (load in chrome://tracing or "
             "ui.perfetto.dev)\n",
             trace_path.c_str());
    }
  }
  return rc;
}

void PrintScenarioReport(const std::string& engine_name,
                         const workload::ScenarioReport& r) {
  printf("engine %s: latency (%s) p50 %.4g ms, p95 %.4g ms, p99 %.4g ms; "
         "%.4g ops/s; %zu matches; truncated %zu queries / %zu batches\n",
         engine_name.c_str(), r.latency_metric.c_str(),
         r.LatencyPercentile(50) * 1e3, r.LatencyPercentile(95) * 1e3,
         r.LatencyPercentile(99) * 1e3, r.ThroughputOpsPerSec(),
         r.total_matches, r.truncated_queries, r.truncated_batches);
  for (const workload::ScenarioTenantMetric& t : r.tenants) {
    printf("  tenant %-10s [%s] offered %zu admitted %zu shed %zu "
           "degraded %zu; sojourn p50 %.4g ms, p95 %.4g ms, p99 %.4g ms\n",
           t.tenant.c_str(), t.priority.c_str(), t.offered_ops,
           t.admitted_ops, t.shed_ops, t.degraded_ops,
           t.sojourn_p50_s * 1e3, t.sojourn_p95_s * 1e3,
           t.sojourn_p99_s * 1e3);
  }
  if (!r.tenants.empty()) {
    printf("  fairness (Jain, admitted/offered shares): %.4f\n",
           r.fairness);
  }
}

int RunScenario(const std::string& engine_name,
                const std::string& scenario_name, uint64_t seed,
                const std::string& checkpoint_dir, size_t checkpoint_every,
                size_t tenants_n,
                const std::vector<PriorityClass>& mix_cycle) {
  const workload::ScenarioSpec* spec =
      workload::FindScenario(scenario_name);
  if (spec == nullptr) {
    fprintf(stderr, "unknown scenario \"%s\"; available:",
            scenario_name.c_str());
    for (const workload::ScenarioSpec& s : workload::AllScenarios()) {
      fprintf(stderr, " %s", s.name.c_str());
    }
    fprintf(stderr, "\n");
    return 2;
  }
  workload::ScenarioSpec eff = *spec;
  if (tenants_n > 0) {
    if (eff.tenants.Enabled()) {
      fprintf(stderr,
              "scenario \"%s\" defines its own tenant mix; --tenants "
              "only applies to scenarios without one\n",
              eff.name.c_str());
      return 2;
    }
    eff.tenants = workload::MakeUniformTenantMix(tenants_n, mix_cycle);
  }
  std::string engine = engine_name;
  if (eff.tenants.Enabled()) {
    if (!checkpoint_dir.empty()) {
      fprintf(stderr,
              "multi-tenant runs cannot be checkpointed (batch formation "
              "re-draws batch boundaries; docs/SERVING.md); drop "
              "--checkpoint-dir\n");
      return 2;
    }
    // Bare specs go through a composed tenant(...) front door, same as
    // bench_scenarios; an explicit tenant(...) spec is taken verbatim.
    EngineSpec parsed = EngineSpec::Parse(engine);
    if (parsed.name != "tenant") {
      EngineSpec wrapped;
      wrapped.name = "tenant";
      wrapped.children.push_back(std::move(parsed));
      engine = wrapped.ToString();
      printf("driving \"%s\" as %s (tenant mix)\n", engine_name.c_str(),
             engine.c_str());
    }
  }
  printf("scenario %s — %s (seed %llu)\n", eff.name.c_str(),
         eff.description.c_str(),
         static_cast<unsigned long long>(seed));
  workload::ScenarioRunner runner(eff, seed);
  printf("graph |V|=%zu |E|=%zu, %zu queries, %zu batches\n",
         runner.graph().NumVertices(), runner.graph().NumEdges(),
         runner.queries().size(), runner.stream().size());
  try {
    workload::ScenarioReport r;
    if (checkpoint_dir.empty()) {
      r = runner.Run(engine);
    } else {
      persist::CheckpointPolicy policy;
      policy.every_batches = checkpoint_every;
      persist::Checkpointer checkpointer(checkpoint_dir, policy);
      workload::ScenarioRunner::RunControls controls;
      controls.checkpointer = &checkpointer;
      r = runner.Run(engine, EngineOptions{}, controls);
      printf("checkpointed into %s: %zu snapshots, WAL through batch "
             "%llu (restore with --restore %s)\n",
             checkpoint_dir.c_str(), checkpointer.snapshots_taken(),
             static_cast<unsigned long long>(checkpointer.next_batch()),
             checkpoint_dir.c_str());
    }
    PrintScenarioReport(engine, r);
  } catch (const persist::PersistError& e) {
    fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

/// --restore DIR: warm-start from a checkpoint and finish the
/// scenario stream it was recording.
int RunRestore(const std::string& dir) {
  try {
    persist::RestoredEngine restored = persist::RestoreEngine(dir);
    printf("restored engine \"%s\" from %s: scenario %s seed %llu, "
           "snapshot at batch %llu + %llu WAL batches%s -> resuming at "
           "batch %llu\n",
           restored.manifest.engine_spec.c_str(), dir.c_str(),
           restored.manifest.scenario.c_str(),
           static_cast<unsigned long long>(restored.manifest.seed),
           static_cast<unsigned long long>(restored.manifest.snapshot_batch),
           static_cast<unsigned long long>(restored.wal_batches_replayed),
           restored.wal_tail_torn ? " (torn tail recovered)" : "",
           static_cast<unsigned long long>(restored.next_batch));
    printf("totals so far: %llu batches, %llu ops, +%llu/-%llu matches\n",
           static_cast<unsigned long long>(restored.totals.batches),
           static_cast<unsigned long long>(restored.totals.ops),
           static_cast<unsigned long long>(restored.totals.positive_matches),
           static_cast<unsigned long long>(
               restored.totals.negative_matches));
    const workload::ScenarioSpec* spec =
        workload::FindScenario(restored.manifest.scenario);
    if (spec == nullptr) {
      printf("scenario \"%s\" is not in this build's catalog; engine is "
             "restored but there is no stream to finish\n",
             restored.manifest.scenario.c_str());
      return 0;
    }
    workload::ScenarioRunner runner(*spec, restored.manifest.seed);
    if (restored.next_batch >= runner.stream().size()) {
      printf("checkpoint already covers the whole %zu-batch stream; "
             "nothing to finish\n", runner.stream().size());
      return 0;
    }
    workload::ScenarioRunner::RunControls controls;
    controls.engine = restored.engine.get();
    controls.first_batch = static_cast<size_t>(restored.next_batch);
    workload::ScenarioReport r =
        runner.Run(restored.manifest.engine_spec, EngineOptions{},
                   controls);
    printf("finished batches [%llu, %zu) on the restored engine:\n",
           static_cast<unsigned long long>(restored.next_batch),
           runner.stream().size());
    PrintScenarioReport(restored.manifest.engine_spec, r);
  } catch (const persist::PersistError& e) {
    fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}

int RunDemo(const std::string& engine_name) {
  printf("demo: GH dataset twin, one extracted sparse query, 3 batches, "
         "engine \"%s\"\n",
         engine_name.c_str());
  LabeledGraph g = LoadDataset(DatasetId::kGithub);
  QueryExtractor ex(g, 7);
  auto q = ex.Extract(6, QueryGraph::StructureClass::kSparse);
  if (!q) {
    fprintf(stderr, "query extraction failed\n");
    return 1;
  }
  printf("query: %s\n", q->ToString().c_str());

  auto engine = MakeEngine(engine_name, g);
  QueryId qid = engine->AddQuery(*q);
  UpdateStreamGenerator gen(13);
  std::vector<UpdateBatch> stream;
  LabeledGraph evolving = g;
  for (int i = 0; i < 3; ++i) {
    UpdateBatch b =
        SanitizeBatch(evolving, gen.MakeMixed(evolving, 200, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  StreamPipeline pipe(engine.get());
  std::vector<BatchReport> reports;
  PipelineStats stats = pipe.Run(stream, &reports);
  for (size_t i = 0; i < reports.size(); ++i) {
    const QueryReport* qr = reports[i].Find(qid);
    printf("batch %zu: +%zu / -%zu matches, device %llu ticks\n", i + 1,
           qr->num_positive, qr->num_negative,
           static_cast<unsigned long long>(
               stats.batches[i].device.makespan_ticks));
  }
  printf("pipeline: %.2f ms wall, %.3f ms host prep hidden by overlap\n",
         stats.wall_seconds * 1e3, stats.total_hidden_seconds * 1e3);
  return 0;
}

}  // namespace

int ListEngines() {
  printf("registered engines (--engine SPEC; grammar in docs/ENGINES.md):\n");
  for (const EngineRegistry::Listing& l :
       EngineRegistry::Instance().Listings()) {
    std::string keys;
    for (const std::string& k : l.option_keys) {
      keys += keys.empty() ? k : ", " + k;
    }
    printf("  %-10s e.g. %-44s %s%s\n", l.name.c_str(), l.example.c_str(),
           keys.empty() ? "(no options)" : "options: ",
           keys.c_str());
  }
  printf("legacy sugar: \"sharded:<engine>[@N]\" still parses to the "
         "canonical form.\n");
  return 0;
}

int main(int argc, char** argv) {
  std::string engine_name = "gamma";
  std::string scenario_name;
  std::string checkpoint_dir, restore_dir;
  std::string metrics_json_path, trace_out_path;
  uint64_t scenario_seed = workload::kDefaultScenarioSeed;
  size_t checkpoint_every = 4;
  long shards = 0;
  long tenants = 0;
  std::string priority_mix;
  // Peel off --engine SPEC / --shards N / --scenario NAME / --seed N /
  // --checkpoint-dir DIR / --checkpoint-every N / --restore DIR /
  // --tenants N / --priority-mix MIX / --list-engines wherever they
  // appear.
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      scenario_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
               i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
               i + 1 < argc) {
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--restore") == 0 && i + 1 < argc) {
      restore_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--list-engines") == 0) {
      return ListEngines();
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atol(argv[++i]);
      if (shards < 1) {
        fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = std::atol(argv[++i]);
      if (tenants < 1) {
        fprintf(stderr, "--tenants wants a positive count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--priority-mix") == 0 &&
               i + 1 < argc) {
      priority_mix = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 &&
               i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (shards > 0) {
    // Wrap whatever spec --engine gave us; the tree nests arbitrarily.
    try {
      EngineSpec wrapped;
      wrapped.name = "sharded";
      wrapped.children.push_back(EngineSpec::Parse(engine_name));
      wrapped.options.emplace_back("shards", std::to_string(shards));
      engine_name = wrapped.ToString();
    } catch (const EngineSpecError& e) {
      fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (std::optional<std::string> err =
          EngineRegistry::Instance().Validate(engine_name)) {
    fprintf(stderr, "%s\n(--list-engines prints every registered "
            "engine with an example spec)\n", err->c_str());
    return 2;
  }
  if ((tenants > 0 || !priority_mix.empty()) && scenario_name.empty()) {
    fprintf(stderr,
            "--tenants/--priority-mix apply to --scenario runs only\n");
    return 2;
  }
  std::vector<PriorityClass> mix_cycle;
  if (!priority_mix.empty()) {
    if (tenants == 0) {
      fprintf(stderr,
              "--priority-mix needs --tenants N (it rotates priorities "
              "across the synthesized tenants)\n");
      return 2;
    }
    std::string err;
    if (!workload::ParsePriorityMix(priority_mix, &mix_cycle, &err)) {
      fprintf(stderr, "bad --priority-mix \"%s\": %s\n",
              priority_mix.c_str(), err.c_str());
      return 2;
    }
  }

  // Observability surface (src/obs/; docs/OBSERVABILITY.md): either
  // flag runtime-enables the layer; both artifacts carry provenance.
  obs::RunProvenance prov;
  prov.tool = "example_cli";
  prov.scenario = scenario_name;
  prov.engine = engine_name;
  prov.seed = scenario_seed;
  prov.obs_compiled = BDSM_OBS != 0;
  if (!metrics_json_path.empty() || !trace_out_path.empty()) {
    obs::SetEnabled(true);
    if (!trace_out_path.empty()) {
      obs::TraceRecorder::Instance().SetEnabled(true);
    }
    printf("observability on: git %s, obs %s\n", obs::GitDescribe(),
           prov.obs_compiled ? "compiled in" : "compiled out");
  }

  if (!restore_dir.empty()) {
    return FinishObs(RunRestore(restore_dir), metrics_json_path,
                     trace_out_path, prov);
  }
  if (!scenario_name.empty()) {
    return FinishObs(
        RunScenario(engine_name, scenario_name, scenario_seed,
                    checkpoint_dir, checkpoint_every,
                    static_cast<size_t>(tenants), mix_cycle),
        metrics_json_path, trace_out_path, prov);
  }
  if (!args.empty() && std::strcmp(args[0], "--demo") == 0) {
    return FinishObs(RunDemo(engine_name), metrics_json_path,
                     trace_out_path, prov);
  }
  if (args.size() < 2) {
    fprintf(stderr,
            "usage: %s [--engine SPEC] <graph-file> <query-file> "
            "[ins-rate%%] [seed]\n"
            "       %s [--engine SPEC] --demo\n"
            "       %s [--engine SPEC] --scenario NAME [--seed N]\n"
            "           [--checkpoint-dir DIR [--checkpoint-every N]]\n"
            "       %s --restore DIR\n"
            "       %s --list-engines\n",
            argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  LabeledGraph g = LoadGraph(args[0]);
  QueryGraph q = LoadQuery(args[1]);
  double rate = args.size() > 2 ? std::atof(args[2]) / 100.0 : 0.10;
  uint64_t seed =
      args.size() > 3 ? std::strtoull(args[3], nullptr, 10) : 42;
  printf("graph: %zu vertices, %zu edges | query: %s\n", g.NumVertices(),
         g.NumEdges(), q.ToString().c_str());

  UpdateStreamGenerator gen(seed);
  size_t count = static_cast<size_t>(rate * double(g.NumEdges()));
  UpdateBatch batch = gen.MakeInsertions(
      g, count, g.EdgeLabelAlphabet() > 1 ? g.EdgeLabelAlphabet() : 0);
  printf("batch: %zu insertions (%.1f%% of |E|)\n", batch.size(),
         100.0 * rate);

  EngineOptions opts;
  auto engine = MakeEngine(engine_name, g, opts);
  QueryId qid = engine->AddQuery(q);
  BatchReport report = engine->ProcessBatch(batch);
  const QueryReport& res = *report.Find(qid);
  printf("engine %s: incremental matches +%zu / -%zu%s\n", engine->Name(),
         res.num_positive, res.num_negative,
         res.Truncated() ? " (TRUNCATED: budget/cap hit)" : "");
  if (engine->Describe().clock == ClockDomain::kModeledDevice) {
    printf("modeled device: update %llu + match %llu ticks (%.3f ms); "
           "utilization %.1f%%; host wall %.3f ms\n",
           static_cast<unsigned long long>(res.update_stats.makespan_ticks),
           static_cast<unsigned long long>(res.match_stats.makespan_ticks),
           res.ModeledSeconds(opts.gamma.device) * 1e3,
           100.0 * res.match_stats.Utilization(),
           res.host_wall_seconds * 1e3);
  } else {
    printf("sequential CPU baseline; host wall %.3f ms\n",
           res.host_wall_seconds * 1e3);
  }
  prov.seed = seed;  // the file-run path parses its own seed operand
  return FinishObs(0, metrics_json_path, trace_out_path, prov);
}
