/// \file cli.cpp
/// Command-line driver: run GAMMA on your own graph/query files.
///
/// Usage:
///   ./example_cli <graph-file> <query-file> [ins-rate%] [seed]
///   ./example_cli --demo            # built-in dataset demo
///
/// File format (shared with the CSM literature; see graph/graph_io.hpp):
///   t <num_vertices> <num_edges>
///   v <id> <label>
///   e <u> <v> [edge_label]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/stream_pipeline.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_io.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"

using namespace bdsm;

namespace {

int RunDemo() {
  printf("demo: GH dataset twin, one extracted sparse query, 3 batches\n");
  LabeledGraph g = LoadDataset(DatasetId::kGithub);
  QueryExtractor ex(g, 7);
  auto q = ex.Extract(6, QueryGraph::StructureClass::kSparse);
  if (!q) {
    fprintf(stderr, "query extraction failed\n");
    return 1;
  }
  printf("query: %s\n", q->ToString().c_str());

  Gamma gamma(g, *q, GammaOptions{});
  UpdateStreamGenerator gen(13);
  std::vector<UpdateBatch> stream;
  LabeledGraph evolving = g;
  for (int i = 0; i < 3; ++i) {
    UpdateBatch b = SanitizeBatch(evolving, gen.MakeMixed(evolving, 200, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  StreamPipeline pipe(&gamma);
  std::vector<BatchResult> results;
  PipelineStats stats = pipe.Run(stream, &results);
  for (size_t i = 0; i < results.size(); ++i) {
    printf("batch %zu: +%zu / -%zu matches, device %llu ticks\n", i + 1,
           results[i].positive_matches.size(),
           results[i].negative_matches.size(),
           static_cast<unsigned long long>(
               stats.batches[i].device.makespan_ticks));
  }
  printf("pipeline: %.2f ms wall, %.3f ms host prep hidden by overlap\n",
         stats.wall_seconds * 1e3, stats.total_hidden_seconds * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return RunDemo();
  if (argc < 3) {
    fprintf(stderr,
            "usage: %s <graph-file> <query-file> [ins-rate%%] [seed]\n"
            "       %s --demo\n",
            argv[0], argv[0]);
    return 2;
  }
  LabeledGraph g = LoadGraph(argv[1]);
  QueryGraph q = LoadQuery(argv[2]);
  double rate = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.10;
  uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  printf("graph: %zu vertices, %zu edges | query: %s\n", g.NumVertices(),
         g.NumEdges(), q.ToString().c_str());

  UpdateStreamGenerator gen(seed);
  size_t count = static_cast<size_t>(rate * double(g.NumEdges()));
  UpdateBatch batch = gen.MakeInsertions(
      g, count, g.EdgeLabelAlphabet() > 1 ? g.EdgeLabelAlphabet() : 0);
  printf("batch: %zu insertions (%.1f%% of |E|)\n", batch.size(),
         100.0 * rate);

  Gamma gamma(g, q, GammaOptions{});
  BatchResult res = gamma.ProcessBatch(batch);
  printf("incremental matches: +%zu / -%zu%s\n",
         res.positive_matches.size(), res.negative_matches.size(),
         res.TimedOut() ? " (TRUNCATED: budget/cap hit)" : "");
  printf("modeled device: update %llu + match %llu ticks (%.3f ms); "
         "utilization %.1f%%; host wall %.3f ms\n",
         static_cast<unsigned long long>(res.update_stats.makespan_ticks),
         static_cast<unsigned long long>(res.match_stats.makespan_ticks),
         res.ModeledSeconds(gamma.options().device) * 1e3,
         100.0 * res.match_stats.Utilization(),
         res.host_wall_seconds * 1e3);
  return 0;
}
