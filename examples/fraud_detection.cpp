/// \file fraud_detection.cpp
/// E-commerce fraud monitoring — one of the batch-dynamic applications
/// the paper's introduction motivates ("identifying patterns of
/// malicious activity" over graph databases "collected and updated in
/// batches").
///
/// Scenario: a transaction graph whose vertices are accounts (label 0),
/// merchants (label 1) and payment instruments (label 2).  A classic
/// collusion pattern is two accounts sharing a payment instrument and
/// both paying the same merchant (a 4-cycle through the instrument plus
/// the shared merchant — a "diamond").  Transactions arrive in batches;
/// each batch is run through GAMMA and new pattern instances are
/// reported as alerts, while retired edges (charge-backs) retract them.
///
///   ./example_fraud_detection [num_batches]
#include <cstdio>
#include <cstdlib>

#include "baselines/enumerate.hpp"
#include "core/gamma.hpp"
#include "core/match_store.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

using namespace bdsm;

namespace {

/// Accounts 60%, merchants 25%, instruments 15%.
LabeledGraph MakeTransactionGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> labels(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.UniformReal();
    labels[i] = x < 0.6 ? 0 : (x < 0.85 ? 1 : 2);
  }
  LabeledGraph g(labels);
  // Transactions: account->merchant and account->instrument edges.
  size_t target_edges = n * 3;
  size_t attempts = 0;
  while (g.NumEdges() < target_edges && attempts++ < target_edges * 20) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (g.VertexLabel(a) != 0 || g.VertexLabel(b) == 0) continue;
    g.InsertEdge(a, b);
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_batches = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  LabeledGraph g = MakeTransactionGraph(4000, 99);
  printf("transaction graph: %zu vertices, %zu edges\n", g.NumVertices(),
         g.NumEdges());

  // The collusion diamond: accounts u0, u2 both linked to merchant u1
  // and instrument u3.
  QueryGraph fraud({0, 1, 0, 2});
  fraud.AddEdge(0, 1);
  fraud.AddEdge(1, 2);
  fraud.AddEdge(2, 3);
  fraud.AddEdge(3, 0);

  Gamma gamma(g, fraud, GammaOptions{});
  UpdateStreamGenerator stream(1234);
  MatchStore alerts;  // the maintained alert view (postprocess)
  // Initial sweep: alerts already present before the stream starts
  // (a one-off static matching; GAMMA maintains it incrementally after).
  for (MatchRecord m : EnumerateAllMatches(g, fraud)) {
    m.positive = true;
    alerts.ApplyDelta(m);
  }
  printf("initial open alerts: %zu\n", alerts.LiveCount());

  for (size_t b = 0; b < num_batches; ++b) {
    // 90% new transactions, 10% charge-backs.
    UpdateBatch batch =
        SanitizeBatch(gamma.host_graph(),
                      stream.MakeMixed(gamma.host_graph(), 200, 9, 1, 0));
    BatchResult res = gamma.ProcessBatch(batch);
    alerts.Apply(res);
    printf("batch %zu: %3zu updates -> +%zu alerts, -%zu retractions "
           "(open: %zu) | device %.1f us, util %.1f%%\n",
           b + 1, batch.size(), res.positive_matches.size(),
           res.negative_matches.size(), alerts.LiveCount(),
           res.ModeledSeconds(gamma.options().device) * 1e6,
           100.0 * res.match_stats.Utilization());
    if (b == 0 && !res.positive_matches.empty()) {
      const MatchRecord& m = res.positive_matches.front();
      printf("  e.g. accounts %u & %u share merchant %u and instrument "
             "%u\n",
             m.m[0], m.m[2], m.m[1], m.m[3]);
    }
  }

  // Repeat offenders: accounts participating in several open alerts.
  size_t repeat = 0;
  VertexId worst = kInvalidVertex;
  size_t worst_count = 0;
  for (VertexId v = 0; v < gamma.host_graph().NumVertices(); ++v) {
    size_t n = alerts.ParticipationCount(v);
    if (gamma.host_graph().VertexLabel(v) != 0) continue;  // accounts only
    if (n >= 2) ++repeat;
    if (n > worst_count) {
      worst_count = n;
      worst = v;
    }
  }
  printf("repeat-offender accounts (>=2 open alerts): %zu", repeat);
  if (worst != kInvalidVertex && worst_count > 0) {
    printf("; most flagged: account %u with %zu alerts", worst,
           worst_count);
  }
  printf("\n");
  return 0;
}
