/// \file fraud_detection.cpp
/// E-commerce fraud monitoring — one of the batch-dynamic applications
/// the paper's introduction motivates ("identifying patterns of
/// malicious activity" over graph databases "collected and updated in
/// batches").
///
/// Scenario: a transaction graph whose vertices are accounts (label 0),
/// merchants (label 1) and payment instruments (label 2).  A fraud desk
/// monitors several typologies at once and changes the set at runtime —
/// exactly what the unified Engine interface provides: one "multi"
/// engine (shared device graph, fused launches), one AddQuery per
/// typology, alerts streamed through a ResultSink into per-typology
/// MatchStores (no unbounded result vectors), RemoveQuery when a
/// typology is retired.
///
/// Typologies:
///  * "diamond": two accounts sharing a payment instrument and both
///    paying the same merchant (a 4-cycle through instrument+merchant).
///  * "fan": one instrument shared by two distinct accounts — a cheap
///    early-warning wedge, registered mid-stream to show runtime query
///    registration.
///
///   ./example_fraud_detection [num_batches]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "baselines/enumerate.hpp"
#include "core/engine.hpp"
#include "core/match_store.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

using namespace bdsm;

namespace {

/// Accounts 60%, merchants 25%, instruments 15%.
LabeledGraph MakeTransactionGraph(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Label> labels(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.UniformReal();
    labels[i] = x < 0.6 ? 0 : (x < 0.85 ? 1 : 2);
  }
  LabeledGraph g(labels);
  // Transactions: account->merchant and account->instrument edges.
  size_t target_edges = n * 3;
  size_t attempts = 0;
  while (g.NumEdges() < target_edges && attempts++ < target_edges * 20) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (g.VertexLabel(a) != 0 || g.VertexLabel(b) == 0) continue;
    g.InsertEdge(a, b);
  }
  return g;
}

/// Streams every incremental match into the per-typology alert view —
/// the postprocess hook of Fig. 3, with bounded memory.
class AlertSink final : public ResultSink {
 public:
  void OnMatch(QueryId query, const MatchRecord& m) override {
    stores_[query].ApplyDelta(m);
  }
  MatchStore& StoreFor(QueryId query) { return stores_[query]; }

 private:
  std::map<QueryId, MatchStore> stores_;
};

}  // namespace

int main(int argc, char** argv) {
  size_t num_batches = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  LabeledGraph g = MakeTransactionGraph(4000, 99);
  printf("transaction graph: %zu vertices, %zu edges\n", g.NumVertices(),
         g.NumEdges());

  // The collusion diamond: accounts u0, u2 both linked to merchant u1
  // and instrument u3.
  QueryGraph diamond({0, 1, 0, 2});
  diamond.AddEdge(0, 1);
  diamond.AddEdge(1, 2);
  diamond.AddEdge(2, 3);
  diamond.AddEdge(3, 0);

  // The sharing wedge: instrument u1 used by two distinct accounts
  // u0, u2 — a cheaper early-warning typology than the full diamond.
  QueryGraph fan({0, 2, 0});
  fan.AddEdge(0, 1);
  fan.AddEdge(1, 2);

  EngineOptions opts;
  auto engine = MakeEngine("multi", g, opts);
  QueryId q_diamond = engine->AddQuery(diamond);

  AlertSink alerts;
  BatchOptions batch_opts;
  batch_opts.sink = &alerts;
  batch_opts.materialize = false;  // alerts live in the store, not vectors

  // Initial sweep: alerts already present before the stream starts
  // (a one-off static matching; the engine maintains it incrementally).
  for (MatchRecord m : EnumerateAllMatches(g, diamond)) {
    m.positive = true;
    alerts.OnMatch(q_diamond, m);
  }
  printf("initial open diamond alerts: %zu\n",
         alerts.StoreFor(q_diamond).LiveCount());

  UpdateStreamGenerator stream(1234);
  QueryId q_fan = kInvalidQueryId;
  for (size_t b = 0; b < num_batches; ++b) {
    if (b == 2) {
      // The desk adds a typology mid-stream; the engine maintains it
      // from here on, so backfill its view with a one-off static sweep
      // of the current graph (same recipe as the diamond above).
      q_fan = engine->AddQuery(fan);
      for (MatchRecord m : EnumerateAllMatches(engine->host_graph(), fan)) {
        m.positive = true;
        alerts.OnMatch(q_fan, m);
      }
      printf("-- registered \"fan\" typology at batch %zu (now %zu live "
             "queries, %zu open alerts backfilled)\n",
             b + 1, engine->NumQueries(),
             alerts.StoreFor(q_fan).LiveCount());
    }
    // 90% new transactions, 10% charge-backs.
    UpdateBatch batch =
        SanitizeBatch(engine->host_graph(),
                      stream.MakeMixed(engine->host_graph(), 200, 9, 1, 0));
    BatchReport report = engine->ProcessBatch(batch, batch_opts);
    const QueryReport& d = *report.Find(q_diamond);
    printf("batch %zu: %3zu updates -> +%zu alerts, -%zu retractions "
           "(open: %zu) | device %.1f us, util %.1f%%\n",
           b + 1, batch.size(), d.num_positive, d.num_negative,
           alerts.StoreFor(q_diamond).LiveCount(),
           report.ModeledSeconds(opts.gamma.device) * 1e6,
           100.0 * report.match_stats.Utilization());
    if (q_fan != kInvalidQueryId) {
      const QueryReport* f = report.Find(q_fan);
      printf("         fan typology: +%zu / -%zu (open: %zu)\n",
             f->num_positive, f->num_negative,
             alerts.StoreFor(q_fan).LiveCount());
    }
  }

  // Retire the fan typology: later batches stop evaluating it.
  if (q_fan != kInvalidQueryId) {
    engine->RemoveQuery(q_fan);
    printf("-- retired \"fan\" typology (%zu live queries)\n",
           engine->NumQueries());
  }

  // Repeat offenders: accounts participating in several open alerts.
  const MatchStore& open = alerts.StoreFor(q_diamond);
  size_t repeat = 0;
  VertexId worst = kInvalidVertex;
  size_t worst_count = 0;
  for (VertexId v = 0; v < engine->host_graph().NumVertices(); ++v) {
    size_t n = open.ParticipationCount(v);
    if (engine->host_graph().VertexLabel(v) != 0) continue;  // accounts
    if (n >= 2) ++repeat;
    if (n > worst_count) {
      worst_count = n;
      worst = v;
    }
  }
  printf("repeat-offender accounts (>=2 open alerts): %zu", repeat);
  if (worst != kInvalidVertex && worst_count > 0) {
    printf("; most flagged: account %u with %zu alerts", worst,
           worst_count);
  }
  printf("\n");
  return 0;
}
