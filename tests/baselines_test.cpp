/// Baseline-engine correctness: every CSM engine's *net* batch effect
/// must equal the oracle match-set difference (and hence GAMMA's
/// output), on vertex-labeled and edge-labeled graphs, across engines
/// and seeds (parameterized sweep).
#include <gtest/gtest.h>

#include <set>

#include "baselines/csm_common.hpp"
#include "baselines/enumerate.hpp"
#include "core/gamma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

std::pair<std::vector<std::string>, std::vector<std::string>> OracleDelta(
    const LabeledGraph& before, const UpdateBatch& batch,
    const QueryGraph& q) {
  LabeledGraph after = before;
  ApplyBatch(&after, batch);
  auto keys = [](std::vector<MatchRecord> ms, bool pos) {
    std::set<std::string> out;
    for (MatchRecord& m : ms) {
      m.positive = pos;
      out.insert(m.Key());
    }
    return out;
  };
  auto bp = keys(EnumerateAllMatches(before, q), true);
  auto ap = keys(EnumerateAllMatches(after, q), true);
  auto bn = keys(EnumerateAllMatches(before, q), false);
  auto an = keys(EnumerateAllMatches(after, q), false);
  std::vector<std::string> pos, neg;
  for (const auto& k : ap) {
    if (!bp.count(k)) pos.push_back(k);
  }
  for (const auto& k : bn) {
    if (!an.count(k)) neg.push_back(k);
  }
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  return {pos, neg};
}

void ExpectEngineMatchesOracle(const std::string& engine,
                               const LabeledGraph& g,
                               const UpdateBatch& raw,
                               const QueryGraph& q) {
  UpdateBatch batch = SanitizeBatch(g, raw);
  auto [want_pos, want_neg] = OracleDelta(g, batch, q);
  auto eng = MakeCsmEngine(engine, g, q);
  std::vector<MatchRecord> net = NetEffect(eng->ProcessBatch(batch));
  std::vector<std::string> pos, neg;
  for (const MatchRecord& m : net) {
    (m.positive ? pos : neg).push_back(m.Key());
  }
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  EXPECT_EQ(pos, want_pos) << engine;
  EXPECT_EQ(neg, want_neg) << engine;
}

class CsmEngineTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(CsmEngineTest, NetEffectEqualsOracle) {
  const char* engine = std::get<0>(GetParam());
  uint64_t seed = std::get<1>(GetParam());
  LabeledGraph g = GenerateUniformGraph(120, 420, 3, 1, seed);
  UpdateStreamGenerator gen(seed + 100);
  UpdateBatch batch = gen.MakeMixed(g, 30, 2, 1, 0);

  QueryGraph tri({0, 0, 1});
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(0, 2);
  ExpectEngineMatchesOracle(engine, g, batch, tri);

  QueryGraph star({0, 1, 1, 2});  // exercises RF's query reduction
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  ExpectEngineMatchesOracle(engine, g, batch, star);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, CsmEngineTest,
    ::testing::Combine(::testing::Values("GF", "TF", "SYM", "RF", "CL"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CsmEngineTest, EdgeLabeledOracleAgreement) {
  // Edge labels force CaLiG onto its transformed-graph path.
  for (const char* engine : {"GF", "TF", "SYM", "RF", "CL"}) {
    LabeledGraph g = GenerateUniformGraph(100, 360, 2, 3, 17);
    UpdateStreamGenerator gen(18);
    UpdateBatch batch = gen.MakeMixed(g, 24, 2, 1, 3);
    QueryGraph q({0, 1, 0});
    q.AddEdge(0, 1, 0);
    q.AddEdge(1, 2, 1);
    q.AddEdge(0, 2, 0);
    ExpectEngineMatchesOracle(engine, g, batch, q);
  }
}

TEST(CsmEngineTest, AgreesWithGamma) {
  LabeledGraph g = GenerateUniformGraph(130, 450, 3, 1, 23);
  UpdateStreamGenerator gen(24);
  UpdateBatch batch = SanitizeBatch(g, gen.MakeMixed(g, 30, 2, 1, 0));
  QueryGraph q({0, 1, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);

  GammaOptions opts;
  opts.device.num_sms = 2;
  Gamma gamma(g, q, opts);
  BatchResult res = gamma.ProcessBatch(batch);
  std::vector<std::string> gamma_keys;
  for (const auto& m : res.positive_matches) gamma_keys.push_back(m.Key());
  for (const auto& m : res.negative_matches) gamma_keys.push_back(m.Key());
  std::sort(gamma_keys.begin(), gamma_keys.end());

  auto rf = MakeCsmEngine("RF", g, q);
  std::vector<MatchRecord> net = NetEffect(rf->ProcessBatch(batch));
  std::vector<std::string> rf_keys;
  for (const auto& m : net) rf_keys.push_back(m.Key());
  std::sort(rf_keys.begin(), rf_keys.end());
  EXPECT_EQ(gamma_keys, rf_keys);
}

TEST(CsmEngineTest, TimeoutReported) {
  // A clique data graph + clique query with a tiny budget must trip the
  // timeout guard (the paper's 30-minute cap, scaled down).
  std::vector<Label> labels(40, 0);
  LabeledGraph g(labels);
  UpdateBatch batch;
  for (VertexId a = 0; a < 40; ++a) {
    for (VertexId b = a + 1; b < 40; ++b) {
      batch.push_back(UpdateOp{true, a, b, kNoLabel});
    }
  }
  QueryGraph q({0, 0, 0, 0, 0, 0});
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = a + 1; b < 6; ++b) q.AddEdge(a, b);
  }
  auto gf = MakeCsmEngine("GF", g, q);
  gf->ProcessBatch(batch, /*budget_seconds=*/0.05);
  EXPECT_TRUE(gf->timed_out());
  EXPECT_TRUE(gf->Truncated());
}

TEST(CsmEngineTest, ResultCapReportsOverflowNotTimeout) {
  // Hitting the result cap is a memory condition, not a deadline one;
  // the two abort causes are reported separately.
  std::vector<Label> labels(30, 0);
  LabeledGraph g(labels);
  UpdateBatch batch;
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = a + 1; b < 30; ++b) {
      batch.push_back(UpdateOp{true, a, b, kNoLabel});
    }
  }
  QueryGraph q({0, 0});
  q.AddEdge(0, 1);
  auto gf = MakeCsmEngine("GF", g, q);
  gf->set_result_cap(5);
  gf->ProcessBatch(batch);
  EXPECT_TRUE(gf->overflowed());
  EXPECT_FALSE(gf->timed_out());
  EXPECT_TRUE(gf->Truncated());
}

TEST(NetEffectTest, CancelsFlips) {
  MatchRecord a;
  a.n = 2;
  a.m[0] = 1;
  a.m[1] = 2;
  a.positive = true;
  MatchRecord b = a;
  b.positive = false;
  MatchRecord c = a;
  c.m[1] = 3;
  auto net = NetEffect({a, b, c});
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].m[1], 3u);
  EXPECT_TRUE(net[0].positive);
}

}  // namespace
}  // namespace bdsm
