/// Scenario-subsystem tests: catalog integrity (>= 6 unique named
/// scenarios), runner determinism under a fixed seed, trace
/// record/replay through the runner, sharded-vs-unsharded scenario
/// parity, and the cross-engine differential: "gamma" and a CSM
/// baseline digest an identical generated deletion-heavy stream and
/// must agree on every query's net match delta (NetEffect parity).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/engine.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm::workload {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// A fast deletion-heavy spec for the differential test: small batches
/// on the smallest twin so every engine finishes instantly, but real
/// deletions so negative matching is exercised.
ScenarioSpec MiniChurnSpec() {
  ScenarioSpec s;
  s.name = "mini-churn";
  s.description = "test-only deletion-heavy mini scenario";
  s.dataset = DatasetId::kGithub;
  s.stream.kind = StreamKind::kChurn;
  s.stream.num_batches = 3;
  s.stream.ops_per_batch = 60;
  s.num_queries = 2;
  s.query_size = 4;
  s.mixed_classes = false;
  s.query_class = QueryGraph::StructureClass::kSparse;
  return s;
}

TEST(ScenarioCatalogTest, AtLeastSixUniqueNamedScenarios) {
  const auto& all = AllScenarios();
  EXPECT_GE(all.size(), 6u);
  std::set<std::string> names;
  for (const ScenarioSpec& s : all) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(FindScenario(s.name), &s);
  }
  EXPECT_NE(FindScenario("smoke"), nullptr);
  EXPECT_EQ(FindScenario("no-such-scenario"), nullptr);
}

TEST(ScenarioRunnerTest, DeterministicUnderFixedSeed) {
  const ScenarioSpec& smoke = *FindScenario("smoke");
  ScenarioRunner a(smoke, 5), b(smoke, 5), c(smoke, 6);
  EXPECT_EQ(a.stream(), b.stream());
  EXPECT_NE(a.stream(), c.stream());
  ASSERT_EQ(a.queries().size(), b.queries().size());
  for (size_t i = 0; i < a.queries().size(); ++i) {
    EXPECT_EQ(a.queries()[i].ToString(), b.queries()[i].ToString());
  }

  ScenarioReport ra = a.Run("gamma"), rb = b.Run("gamma");
  EXPECT_EQ(ra.total_matches, rb.total_matches);
  EXPECT_EQ(ra.total_ops, rb.total_ops);
  ASSERT_EQ(ra.batches.size(), rb.batches.size());
  for (size_t i = 0; i < ra.batches.size(); ++i) {
    EXPECT_EQ(ra.batches[i].positive_matches,
              rb.batches[i].positive_matches);
    EXPECT_EQ(ra.batches[i].negative_matches,
              rb.batches[i].negative_matches);
  }
}

TEST(ScenarioRunnerTest, RecordReplayRoundTrip) {
  ScenarioRunner original(MiniChurnSpec(), 11);
  std::string path = TempPath("scenario.trace");
  ASSERT_TRUE(original.RecordTrace(path));

  ScenarioRunner replayed(MiniChurnSpec(), 11);
  ASSERT_TRUE(replayed.ReplayTrace(path));
  EXPECT_EQ(replayed.stream(), original.stream());

  ScenarioReport r1 = original.Run("gamma");
  ScenarioReport r2 = replayed.Run("gamma");
  EXPECT_EQ(r1.total_matches, r2.total_matches);

  EXPECT_FALSE(original.Run("gamma").batches.empty());
  ScenarioRunner broken(MiniChurnSpec(), 11);
  EXPECT_FALSE(broken.ReplayTrace(TempPath("missing.trace")));

  // A trace recorded for another scenario pins another dataset; the
  // runner must refuse it rather than replay an invalid stream.
  ScenarioRunner other(*FindScenario("smoke"), 11);
  EXPECT_FALSE(other.ReplayTrace(path));
  // Same scenario, different master seed: same dataset, still valid.
  ScenarioRunner reseeded(MiniChurnSpec(), 12);
  EXPECT_TRUE(reseeded.ReplayTrace(path));
  EXPECT_EQ(reseeded.stream(), original.stream());

  // Re-recording a replayed stream preserves the *stream's* seed (11),
  // not the replaying runner's (12) — trace provenance follows batches.
  std::string rerecorded = TempPath("scenario-rerecord.trace");
  ASSERT_TRUE(reseeded.RecordTrace(rerecorded));
  TraceMeta meta;
  ASSERT_TRUE(ReadTrace(rerecorded, &meta).has_value());
  EXPECT_EQ(meta.seed, 11u);
  EXPECT_EQ(meta.scenario, "mini-churn");
}

TEST(ScenarioRunnerTest, ShardedMatchesUnsharded) {
  const ScenarioSpec& smoke = *FindScenario("smoke");
  ScenarioRunner runner(smoke, kDefaultScenarioSeed);
  ScenarioReport plain = runner.Run("gamma");
  ScenarioReport sharded = runner.Run("sharded:gamma@2");
  EXPECT_EQ(plain.total_matches, sharded.total_matches);
  EXPECT_EQ(plain.total_ops, sharded.total_ops);
  EXPECT_EQ(plain.truncated_queries, sharded.truncated_queries);
  ASSERT_EQ(plain.batches.size(), sharded.batches.size());
  for (size_t i = 0; i < plain.batches.size(); ++i) {
    EXPECT_EQ(plain.batches[i].positive_matches,
              sharded.batches[i].positive_matches);
    EXPECT_EQ(plain.batches[i].negative_matches,
              sharded.batches[i].negative_matches);
  }
}

TEST(ScenarioRunnerTest, ReportsLatencyMetricPerEngineFamily) {
  const ScenarioSpec& smoke = *FindScenario("smoke");
  ScenarioRunner runner(smoke, kDefaultScenarioSeed);
  EXPECT_EQ(runner.Run("gamma").latency_metric, "modeled-device");
  EXPECT_EQ(runner.Run("tf").latency_metric, "host-wall");
  EXPECT_EQ(runner.Run("sharded:tf@2").latency_metric, "critical-path");
  // Percentiles are ordered and throughput is finite and positive.
  ScenarioReport r = runner.Run("gamma");
  EXPECT_LE(r.LatencyPercentile(50), r.LatencyPercentile(95));
  EXPECT_LE(r.LatencyPercentile(95), r.LatencyPercentile(99));
  EXPECT_GT(r.ThroughputOpsPerSec(), 0.0);
}

// The cross-engine differential: a device engine and a sequential CPU
// baseline process the identical generated deletion-heavy stream; for
// every batch and every query, the *net* match deltas (positive minus
// cancelled negative flips — NetDelta/NetEffect) must be identical as
// multisets.
TEST(ScenarioDifferentialTest, GammaVsCsmNetParityOnChurn) {
  ScenarioRunner runner(MiniChurnSpec(), 2024);
  ASSERT_GE(runner.queries().size(), 1u);
  ASSERT_EQ(runner.stream().size(), 3u);

  auto gamma = MakeEngine("gamma", runner.graph());
  auto csm = MakeEngine("tf", runner.graph());
  std::vector<QueryId> gids, cids;
  for (const QueryGraph& q : runner.queries()) {
    gids.push_back(gamma->AddQuery(q));
    cids.push_back(csm->AddQuery(q));
  }

  size_t deletes_seen = 0, negatives_seen = 0;
  for (const UpdateBatch& batch : runner.stream()) {
    for (const UpdateOp& op : batch) deletes_seen += op.is_insert ? 0 : 1;
    BatchReport gr = gamma->ProcessBatch(batch);
    BatchReport cr = csm->ProcessBatch(batch);
    for (size_t qi = 0; qi < gids.size(); ++qi) {
      const QueryReport* gq = gr.Find(gids[qi]);
      const QueryReport* cq = cr.Find(cids[qi]);
      ASSERT_NE(gq, nullptr);
      ASSERT_NE(cq, nullptr);
      ASSERT_FALSE(gq->Truncated());
      ASSERT_FALSE(cq->Truncated());
      std::vector<std::string> gkeys, ckeys;
      for (const MatchRecord& m : NetDelta(*gq)) gkeys.push_back(m.Key());
      for (const MatchRecord& m : NetDelta(*cq)) ckeys.push_back(m.Key());
      std::sort(gkeys.begin(), gkeys.end());
      std::sort(ckeys.begin(), ckeys.end());
      EXPECT_EQ(gkeys, ckeys);
      negatives_seen += gq->num_negative;
    }
  }
  EXPECT_GT(deletes_seen, 0u);  // the scenario really is deletion-heavy
}

}  // namespace
}  // namespace bdsm::workload
