/// System-level GAMMA tests: option interplay (parameterized matrix),
/// device budget/result-cap behaviour, utilization/stat plausibility,
/// per-dataset smoke runs, and heavier randomized property sweeps.
#include <gtest/gtest.h>

#include <set>

#include "baselines/enumerate.hpp"
#include "core/gamma.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_generator.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

TEST(GammaSystemTest, AllDatasetTwinsSmoke) {
  // Every dataset twin must run end-to-end with an extracted query.
  for (const DatasetSpec& spec : AllDatasets()) {
    LabeledGraph g = LoadDataset(spec.id);
    QueryExtractor ex(g, 5);
    auto q = ex.Extract(5, QueryGraph::StructureClass::kTree);
    ASSERT_TRUE(q.has_value()) << spec.short_name;
    UpdateStreamGenerator gen(6);
    UpdateBatch batch = gen.MakeInsertions(
        g, 50, spec.edge_labels > 1 ? spec.edge_labels : 0);
    GammaOptions opts;
    opts.device.host_budget_seconds = 5.0;
    Gamma gamma(g, *q, opts);
    BatchResult res = gamma.ProcessBatch(batch);
    EXPECT_FALSE(res.TimedOut()) << spec.short_name;
    EXPECT_GT(res.match_stats.makespan_ticks, 0u) << spec.short_name;
  }
}

TEST(GammaSystemTest, ResultCapMarksUnsolved) {
  // A clique query over a clique batch explodes; a tiny cap must trip.
  std::vector<Label> labels(30, 0);
  LabeledGraph g(labels);
  UpdateBatch batch;
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = a + 1; b < 30; ++b) {
      batch.push_back(UpdateOp{true, a, b, kNoLabel});
    }
  }
  QueryGraph tri({0, 0, 0});  // matches the clique's uniform label
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(0, 2);
  GammaOptions opts;
  opts.result_cap = 1000;
  Gamma gamma(g, tri, opts);
  BatchResult res = gamma.ProcessBatch(batch);
  EXPECT_TRUE(res.overflowed);
  EXPECT_TRUE(res.TimedOut());
  EXPECT_LE(res.TotalMatches(), 1200u);  // cap plus in-flight slack
}

TEST(GammaSystemTest, HostBudgetMarksUnsolved) {
  std::vector<Label> labels(60, 0);
  LabeledGraph g(labels);
  UpdateBatch batch;
  for (VertexId a = 0; a < 60; ++a) {
    for (VertexId b = a + 1; b < 60; ++b) {
      batch.push_back(UpdateOp{true, a, b, kNoLabel});
    }
  }
  QueryGraph q({0, 0, 0, 0, 0});
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) q.AddEdge(a, b);
  }
  GammaOptions opts;
  opts.result_cap = 0;  // unlimited: force the *time* budget to trip
  opts.device.host_budget_seconds = 0.02;
  Gamma gamma(g, q, opts);
  BatchResult res = gamma.ProcessBatch(batch);
  EXPECT_TRUE(res.TimedOut());
}

TEST(GammaSystemTest, UtilizationWithinBounds) {
  LabeledGraph g = LoadDataset(DatasetId::kAmazon);
  QueryExtractor ex(g, 8);
  auto q = ex.Extract(6, QueryGraph::StructureClass::kSparse);
  ASSERT_TRUE(q.has_value());
  UpdateStreamGenerator gen(9);
  UpdateBatch batch = gen.MakeInsertions(g, 100, 0);
  GammaOptions opts;
  opts.device.num_sms = 8;
  Gamma gamma(g, *q, opts);
  BatchResult res = gamma.ProcessBatch(batch);
  double util = res.match_stats.Utilization();
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0);
  EXPECT_GT(res.match_stats.total_busy_ticks, 0u);
  EXPECT_GE(res.match_stats.total_warp_ticks,
            res.match_stats.total_busy_ticks);
}

TEST(GammaSystemTest, StealEventsOnlyWithStealing) {
  LabeledGraph g = LoadDataset(DatasetId::kGithub);
  QueryExtractor ex(g, 10);
  auto q = ex.Extract(6, QueryGraph::StructureClass::kSparse);
  ASSERT_TRUE(q.has_value());
  UpdateStreamGenerator gen(11);
  UpdateBatch batch = gen.MakeInsertions(g, 120, 0);
  GammaOptions none, active;
  none.device.steal_policy = StealPolicy::kNone;
  active.device.steal_policy = StealPolicy::kActive;
  none.device.num_sms = active.device.num_sms = 4;
  Gamma g1(g, *q, none), g2(g, *q, active);
  BatchResult r1 = g1.ProcessBatch(batch);
  BatchResult r2 = g2.ProcessBatch(batch);
  EXPECT_EQ(r1.match_stats.steal_events, 0u);
  EXPECT_EQ(r1.TotalMatches(), r2.TotalMatches());
}

/// Heavier randomized sweep across option matrix on dataset twins: the
/// engine's total match count must equal the oracle's delta count.
class GammaMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(GammaMatrixTest, CountsMatchOracleOnTwins) {
  auto [ds_idx, cs, aggressive] = GetParam();
  const DatasetSpec& spec = AllDatasets()[static_cast<size_t>(ds_idx)];
  // Shrink the twin for oracle tractability.
  GeneratorParams p;
  p.num_vertices = 400;
  p.avg_degree = std::min(spec.avg_degree, 8.0);
  p.vertex_labels = spec.vertex_labels;
  p.edge_labels = spec.edge_labels;
  p.seed = 1000 + static_cast<uint64_t>(ds_idx);
  LabeledGraph g = GeneratePowerLawGraph(p);

  QueryExtractor ex(g, 17);
  auto q = ex.Extract(4, QueryGraph::StructureClass::kSparse);
  if (!q) q = ex.Extract(4, QueryGraph::StructureClass::kTree);
  ASSERT_TRUE(q.has_value()) << spec.short_name;

  UpdateStreamGenerator gen(18);
  UpdateBatch batch = SanitizeBatch(
      g, gen.MakeMixed(g, 40, 2, 1,
                       spec.edge_labels > 1 ? spec.edge_labels : 0));

  LabeledGraph after = g;
  ApplyBatch(&after, batch);
  auto keyset = [&](const LabeledGraph& gg) {
    std::set<std::string> ks;
    for (auto& m : EnumerateAllMatches(gg, *q)) ks.insert(m.Key());
    return ks;
  };
  auto kb = keyset(g), ka = keyset(after);
  size_t want_pos = 0, want_neg = 0;
  for (const auto& k : ka) want_pos += !kb.count(k);
  for (const auto& k : kb) want_neg += !ka.count(k);

  GammaOptions opts;
  opts.coalesced_search = cs;
  opts.aggressive_coalescing = aggressive;
  opts.device.num_sms = 4;
  Gamma gamma(g, *q, opts);
  BatchResult res = gamma.ProcessBatch(batch);
  EXPECT_EQ(res.positive_matches.size(), want_pos) << spec.short_name;
  EXPECT_EQ(res.negative_matches.size(), want_neg) << spec.short_name;
}

INSTANTIATE_TEST_SUITE_P(
    Twins, GammaMatrixTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(
                 AllDatasets()[static_cast<size_t>(
                                   std::get<0>(info.param))]
                     .short_name) +
             (std::get<1>(info.param) ? "_cs" : "_nocs") +
             (std::get<2>(info.param) ? "_aggr" : "_safe");
    });

}  // namespace
}  // namespace bdsm
