/// Encoder tests: thermometer semantics, GSI AND-test soundness (the
/// filter must never prune a vertex that participates in a real match),
/// and incremental dirty re-encoding equivalence.
#include <gtest/gtest.h>

#include "baselines/enumerate.hpp"
#include "core/encoder.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

QueryGraph PaperQuery() {
  // Fig. 1(a): u0(A) - u1(B), u0 - u2(B), u1 - u2, u1 - u3(C).
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  return q;
}

TEST(EncoderTest, ThermometerBits) {
  EXPECT_EQ(ThermometerBits2(0), 0b00u);
  EXPECT_EQ(ThermometerBits2(1), 0b01u);
  EXPECT_EQ(ThermometerBits2(2), 0b11u);
  EXPECT_EQ(ThermometerBits2(7), 0b11u);
}

TEST(EncoderTest, QueryCodesReflectStructure) {
  QueryGraph q = PaperQuery();
  CandidateEncoder enc(q);
  EXPECT_EQ(enc.CodeBits(), 9u);  // 3 labels -> 3 + 6 bits
  // u0 has label A (index 0) and two B neighbors: label bit 0, B-counter
  // (label index 1) = 11.
  uint64_t u0 = enc.QueryCode(0);
  EXPECT_EQ(u0 & 0b111u, 0b001u);
  EXPECT_EQ((u0 >> (3 + 2)) & 0b11u, 0b11u);  // B neighbors saturated
  EXPECT_EQ((u0 >> (3 + 4)) & 0b11u, 0b00u);  // no C neighbor
  // u1 (B): one A, one B, one C neighbor.
  uint64_t u1 = enc.QueryCode(1);
  EXPECT_EQ(u1 & 0b111u, 0b010u);
  EXPECT_EQ((u1 >> 3) & 0b11u, 0b01u);
  EXPECT_EQ((u1 >> 5) & 0b11u, 0b01u);
  EXPECT_EQ((u1 >> 7) & 0b11u, 0b01u);
}

TEST(EncoderTest, CandidateRequiresLabelAndCounts) {
  QueryGraph q = PaperQuery();
  // Data: v0(A) with two B nbrs (v1, v2) which are connected; v3(C) on v1.
  LabeledGraph g({0, 1, 1, 2, 1});
  g.InsertEdge(0, 1);
  g.InsertEdge(0, 2);
  g.InsertEdge(1, 2);
  g.InsertEdge(1, 3);
  g.InsertEdge(2, 4);  // v4: B neighbor of v2
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  EXPECT_TRUE(enc.IsCandidate(0, 0));   // v0 matches u0
  EXPECT_FALSE(enc.IsCandidate(1, 0));  // wrong label
  EXPECT_TRUE(enc.IsCandidate(1, 1));   // v1 has A, B, C neighbors
  EXPECT_FALSE(enc.IsCandidate(2, 1));  // v2 lacks a C neighbor
  EXPECT_TRUE(enc.IsCandidate(2, 2));   // u2 needs A+B neighbors only
  EXPECT_FALSE(enc.IsCandidate(4, 2));  // v4 has no A neighbor
}

TEST(EncoderTest, FilterIsSound) {
  // Soundness: every vertex participating in a real match at position u
  // must be in C(u).  Randomized over labeled-edge graphs.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    LabeledGraph g = GenerateUniformGraph(120, 500, 3, 2, seed);
    QueryGraph q({0, 1, 2, 0});
    q.AddEdge(0, 1, 0);
    q.AddEdge(1, 2, 1);
    q.AddEdge(2, 3, 0);
    q.AddEdge(3, 0, 1);
    CandidateEncoder enc(q);
    enc.BuildAll(g);
    auto matches = EnumerateAllMatches(g, q, 500);
    for (const MatchRecord& m : matches) {
      for (VertexId u = 0; u < q.NumVertices(); ++u) {
        EXPECT_TRUE(enc.IsCandidate(m.m[u], u))
            << "seed " << seed << " pruned a true match";
      }
    }
  }
}

TEST(EncoderTest, IncrementalEqualsFullRebuild) {
  LabeledGraph g = GenerateUniformGraph(200, 700, 4, 2, 77);
  QueryGraph q({0, 1, 2, 3});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  CandidateEncoder inc(q);
  inc.BuildAll(g);
  UpdateStreamGenerator gen(5);
  for (int round = 0; round < 6; ++round) {
    UpdateBatch batch = SanitizeBatch(g, gen.MakeMixed(g, 60, 2, 1, 2));
    ApplyBatch(&g, batch);
    inc.ApplyBatchDirty(g, batch);
    CandidateEncoder full(q);
    full.BuildAll(g);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(inc.CandidateMask(v), full.CandidateMask(v))
          << "round " << round << " vertex " << v;
    }
  }
}

TEST(EncoderTest, SaturationTradeoff) {
  // The paper's Fig. 4 note: inserting e(v0, v2) does not change v0's
  // encoding because its B-counter is already saturated at "11".
  QueryGraph q = PaperQuery();
  LabeledGraph g({0, 1, 1, 1});
  g.InsertEdge(0, 1);
  g.InsertEdge(0, 2);
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  uint64_t before = enc.VertexCode(0);
  g.InsertEdge(0, 3);  // third B neighbor
  enc.UpdateDirty(g, std::vector<VertexId>{0, 3});
  EXPECT_EQ(enc.VertexCode(0), before);
}

TEST(EncoderTest, CountCandidates) {
  QueryGraph q({0, 0});
  q.AddEdge(0, 1);
  LabeledGraph g({0, 0, 0, 1});
  g.InsertEdge(0, 1);
  g.InsertEdge(1, 2);
  g.InsertEdge(2, 3);
  CandidateEncoder enc(q);
  enc.BuildAll(g);
  // u0/u1 need one 0-labeled neighbor: v0 (nbr v1), v1 (v0, v2), v2 (v1).
  EXPECT_EQ(enc.CountCandidates(0), 3u);
  EXPECT_EQ(enc.CountCandidates(1), 3u);
}

}  // namespace
}  // namespace bdsm
