/// Multi-tenant front door tests (src/serve/tenant_front_door.hpp):
/// pass-through match-identity of tenant(...) against the bare inner
/// engine, namespace quotas and ownership, token-bucket determinism,
/// priority ordering, SLO target adaptation, result-budget
/// degradation, the Jain fairness index, and the noisy-neighbor
/// acceptance experiment (admission ON bounds the victim's sojourn
/// tail near its solo run while admission OFF measurably degrades it).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"
#include "serve/tenant_front_door.hpp"
#include "util/stats.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm {
namespace {

using serve::TenantFrontDoor;
using workload::ScenarioReport;
using workload::ScenarioRunner;
using workload::ScenarioTenantMetric;

QueryGraph TriangleQuery() {
  QueryGraph q({0, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

QueryGraph PathQuery() {
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

/// A mixed stream prepared against the evolving graph (the sanitized
/// per-batch form every engine sees).
std::vector<UpdateBatch> MakeStream(const LabeledGraph& g, uint64_t seed,
                                    size_t batches = 3,
                                    size_t ops_per_batch = 25) {
  UpdateStreamGenerator gen(seed);
  std::vector<UpdateBatch> stream;
  LabeledGraph evolving = g;
  for (size_t i = 0; i < batches; ++i) {
    UpdateBatch b = SanitizeBatch(
        evolving, gen.MakeMixed(evolving, ops_per_batch, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  return stream;
}

std::vector<std::string> SortedKeys(const std::vector<MatchRecord>& ms) {
  std::vector<std::string> keys = CanonicalKeys(ms);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// The pass-through guarantee: under the default permissive policy, the
// flat ProcessBatch path through tenant(...) is match-identical to the
// bare inner engine — matches (order included), counts, flags, and the
// deterministic device stats.
TEST(TenantFrontDoorTest, PassThroughIsMatchIdenticalToInner) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 3, 1, 2024);
  std::vector<UpdateBatch> stream = MakeStream(g, 2025);

  for (const char* inner : {"gamma", "sharded(gamma, shards=2)"}) {
    SCOPED_TRACE(inner);
    auto bare = MakeEngine(inner, g);
    auto wrapped = MakeEngine(std::string("tenant(") + inner + ")", g);
    ASSERT_TRUE(wrapped->Describe().supports_tenancy);
    ASSERT_NE(wrapped->tenant_control(), nullptr);
    EXPECT_EQ(bare->tenant_control(), nullptr);

    for (const QueryGraph& q : {TriangleQuery(), PathQuery()}) {
      bare->AddQuery(q);
      wrapped->AddQuery(q);
    }
    size_t total = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      SCOPED_TRACE("batch " + std::to_string(i));
      BatchReport want = bare->ProcessBatch(stream[i]);
      BatchReport got = wrapped->ProcessBatch(stream[i]);
      ASSERT_EQ(got.queries.size(), want.queries.size());
      for (size_t qi = 0; qi < want.queries.size(); ++qi) {
        const QueryReport& w = want.queries[qi];
        const QueryReport& o = got.queries[qi];
        EXPECT_EQ(o.id, w.id);
        EXPECT_EQ(o.num_positive, w.num_positive);
        EXPECT_EQ(o.num_negative, w.num_negative);
        EXPECT_EQ(SortedKeys(o.positive_matches),
                  SortedKeys(w.positive_matches));
        EXPECT_EQ(SortedKeys(o.negative_matches),
                  SortedKeys(w.negative_matches));
        EXPECT_EQ(o.timed_out, w.timed_out);
        EXPECT_EQ(o.overflowed, w.overflowed);
      }
      EXPECT_EQ(got.update_stats.makespan_ticks,
                want.update_stats.makespan_ticks);
      EXPECT_EQ(got.match_stats.makespan_ticks,
                want.match_stats.makespan_ticks);
      total += want.TotalMatches();
    }
    EXPECT_GT(total, 0u) << "workload must exercise matching";
    EXPECT_EQ(wrapped->host_graph().NumEdges(),
              bare->host_graph().NumEdges());
  }
}

// Namespaces: per-tenant query ownership on the inner engine's public
// ids, the standing-query quota, and the released slot after removal.
TEST(TenantFrontDoorTest, QueryQuotasAndOwnership) {
  LabeledGraph g = GenerateUniformGraph(60, 180, 3, 1, 7);
  TenantFrontDoor fd("gamma", g);

  TenantPolicy capped;
  capped.max_queries = 1;
  TenantId a = fd.RegisterTenant("a", capped);
  TenantId b = fd.RegisterTenant("b", {});
  EXPECT_EQ(fd.NumTenants(), 3u);  // default + a + b

  QueryId qa = fd.AddTenantQuery(a, TriangleQuery());
  ASSERT_NE(qa, kInvalidQueryId);
  EXPECT_EQ(fd.OwnerOf(qa), a);
  // Quota hit: rejected deterministically, counted, no inner mutation.
  EXPECT_EQ(fd.AddTenantQuery(a, PathQuery()), kInvalidQueryId);
  EXPECT_EQ(fd.Snapshot(a).counters.rejected_queries, 1u);
  EXPECT_EQ(fd.QueryIds().size(), 1u);

  QueryId qb = fd.AddTenantQuery(b, PathQuery());
  ASSERT_NE(qb, kInvalidQueryId);
  EXPECT_EQ(fd.OwnerOf(qb), b);
  EXPECT_EQ(fd.OwnerOf(static_cast<QueryId>(9999)), kInvalidTenantId);

  // Removal releases the quota slot.
  EXPECT_TRUE(fd.RemoveQuery(qa));
  EXPECT_EQ(fd.Snapshot(a).live_queries, 0u);
  EXPECT_NE(fd.AddTenantQuery(a, TriangleQuery()), kInvalidQueryId);
}

// Token buckets refill per formed batch — deterministic ticks, not
// wall time: the same ingest twice yields identical admission traces,
// and a rate-limited tenant drains at its rate.
TEST(TenantFrontDoorTest, TokenBucketAdmissionIsDeterministic) {
  LabeledGraph g = GenerateUniformGraph(60, 180, 3, 1, 11);
  UpdateBatch ops = MakeStream(g, 12, 1, 40)[0];
  ASSERT_GE(ops.size(), 20u);

  auto run = [&] {
    TenantFrontDoor fd("gamma", g);
    TenantPolicy limited;
    limited.rate_ops_per_batch = 4;
    limited.burst_ops = 4;
    TenantId t = fd.RegisterTenant("limited", limited);
    fd.AddTenantQuery(t, PathQuery());
    fd.Ingest(t, ops);
    std::vector<size_t> admitted;
    FormedBatchStats fb;
    while (fd.PumpFormedBatch(&fb)) admitted.push_back(fb.admitted_ops);
    return std::pair<std::vector<size_t>, TenantCounters>(
        admitted, fd.Snapshot(t).counters);
  };

  auto [admitted1, counters1] = run();
  auto [admitted2, counters2] = run();
  EXPECT_EQ(admitted1, admitted2);
  EXPECT_EQ(counters1.admitted_ops, counters2.admitted_ops);
  EXPECT_EQ(counters1.offered_ops, ops.size());
  EXPECT_EQ(counters1.admitted_ops + counters1.shed_ops, ops.size());
  // Rate 4/batch with burst 4: no formed batch carries more than 4 of
  // the tenant's ops.
  for (size_t a : admitted1) EXPECT_LE(a, 4u);
  EXPECT_GT(admitted1.size(), 1u) << "the drain must take several ticks";
}

// Admission fills class by class: when gold and best-effort ops
// compete for a batch smaller than either queue, gold rides first.
TEST(TenantFrontDoorTest, PriorityClassesAdmitGoldFirst) {
  LabeledGraph g = GenerateUniformGraph(60, 180, 3, 1, 13);
  UpdateBatch ops = MakeStream(g, 14, 1, 40)[0];
  ASSERT_GE(ops.size(), 16u);
  UpdateBatch half_a(ops.begin(), ops.begin() + 8);
  UpdateBatch half_b(ops.begin() + 8, ops.begin() + 16);

  EngineOptions opts;
  opts.front_door.batch_ops_min = 8;
  opts.front_door.batch_ops_init = 8;
  opts.front_door.batch_ops_max = 8;
  TenantFrontDoor fd("gamma", g, opts);
  TenantPolicy gold;
  gold.priority = PriorityClass::kGold;
  TenantPolicy best;
  best.priority = PriorityClass::kBestEffort;
  TenantId tb = fd.RegisterTenant("best", best);
  TenantId tg = fd.RegisterTenant("gold", gold);
  fd.AddTenantQuery(tg, PathQuery());

  // Best-effort arrives FIRST; gold still wins the 8-op batch.
  fd.Ingest(tb, half_b);
  fd.Ingest(tg, half_a);
  FormedBatchStats fb;
  ASSERT_TRUE(fd.PumpFormedBatch(&fb));
  EXPECT_EQ(fb.admitted_ops, 8u);
  EXPECT_EQ(fd.Snapshot(tg).counters.admitted_ops, 8u);
  EXPECT_EQ(fd.Snapshot(tb).counters.admitted_ops, 0u);
  // The next tick serves the waiting best-effort backlog.
  ASSERT_TRUE(fd.PumpFormedBatch(&fb));
  EXPECT_EQ(fd.Snapshot(tb).counters.admitted_ops, 8u);
}

// The AIMD controller under the inner engine's clock: an unmeetable
// SLO drives the target down to batch_ops_min; a trivially met one
// grows it to batch_ops_max.
TEST(TenantFrontDoorTest, SloControllerAdaptsTarget) {
  LabeledGraph g = GenerateUniformGraph(80, 240, 3, 1, 17);
  // Enough ops that the additive-increase arm can step 16 -> 64 before
  // the backlog drains (each met-SLO batch adds batch_ops_min).
  std::vector<UpdateBatch> stream = MakeStream(g, 18, 8, 80);

  auto drive = [&](double slo) {
    EngineOptions opts;
    opts.front_door.slo_seconds = slo;
    opts.front_door.batch_ops_min = 8;
    opts.front_door.batch_ops_init = 16;
    opts.front_door.batch_ops_max = 64;
    TenantFrontDoor fd("gamma", g, opts);
    TenantId t = fd.RegisterTenant("t", {});
    fd.AddTenantQuery(t, PathQuery());
    for (const UpdateBatch& b : stream) {
      fd.Ingest(t, b);
      FormedBatchStats fb;
      fd.PumpFormedBatch(&fb);
    }
    FormedBatchStats fb;
    while (fd.PumpFormedBatch(&fb)) {
    }
    return fd.TargetBatchOps();
  };

  EXPECT_EQ(drive(1e-12), 8u);   // nothing meets a picosecond SLO
  EXPECT_EQ(drive(1e9), 64u);    // everything meets a 31-year SLO
  // slo=0 disables adaptation: the target stays pinned at init.
  EXPECT_EQ(drive(0.0), 16u);
}

// A blown per-batch result budget degrades the tenant: its admission
// share is clamped for the next degrade_batches formed batches, and
// both decisions are counted.
TEST(TenantFrontDoorTest, ResultBudgetDegradesDeterministically) {
  LabeledGraph g = GenerateUniformGraph(120, 500, 3, 1, 19);
  std::vector<UpdateBatch> stream = MakeStream(g, 20, 4, 60);

  EngineOptions opts;
  opts.front_door.batch_ops_min = 8;
  opts.front_door.batch_ops_init = 32;
  opts.front_door.batch_ops_max = 32;
  TenantFrontDoor fd("gamma", g, opts);
  TenantPolicy tight;
  tight.result_budget = 1;  // any real batch blows this
  TenantId t = fd.RegisterTenant("tight", tight);
  fd.AddTenantQuery(t, PathQuery());

  for (const UpdateBatch& b : stream) {
    fd.Ingest(t, b);
    FormedBatchStats fb;
    fd.PumpFormedBatch(&fb);
  }
  FormedBatchStats fb;
  while (fd.PumpFormedBatch(&fb)) {
  }
  const TenantCounters c = fd.Snapshot(t).counters;
  EXPECT_GT(c.over_budget_batches, 0u);
  EXPECT_GT(c.degraded_ops, 0u);
  EXPECT_EQ(c.admitted_ops + c.shed_ops, c.offered_ops);
}

TEST(TenantFrontDoorTest, JainIndexProperties) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.7, 0.7, 0.7}), 1.0);
  EXPECT_NEAR(JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_NEAR(JainIndex({1.0, 0.5}), 0.9, 1e-12);
}

// The spec surface: unknown keys fail validation with a message that
// lists the valid ones, and non-default knobs round-trip through the
// canonical spec.
TEST(TenantFrontDoorTest, SpecValidationAndCanonicalRoundTrip) {
  auto err = EngineRegistry::Instance().Validate("tenant(gamma, bogus=1)");
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("bogus"), std::string::npos);
  EXPECT_NE(err->find("slo"), std::string::npos) << *err;
  EXPECT_FALSE(EngineRegistry::Instance()
                   .Validate("tenant(sharded(gamma, shards=2), slo=0.01, "
                             "admission=off)")
                   .has_value());
  // tenant(...) wraps exactly one engine.
  EXPECT_TRUE(EngineRegistry::Instance().Validate("tenant()").has_value());

  LabeledGraph g = GenerateUniformGraph(40, 100, 3, 1, 23);
  auto e = MakeEngine("tenant(gamma, slo=0.01, batch_init=64)", g);
  const std::string canonical = e->Describe().canonical_spec;
  EXPECT_NE(canonical.find("tenant(gamma"), std::string::npos)
      << canonical;
  EXPECT_NE(canonical.find("slo=0.01"), std::string::npos) << canonical;
  EXPECT_NE(canonical.find("batch_init=64"), std::string::npos)
      << canonical;
  // Defaults are not materialized.
  EXPECT_EQ(canonical.find("admission"), std::string::npos) << canonical;
}

/// Drives only `role`'s share of the scenario stream through a fresh
/// front door — the tenant's "solo" baseline the acceptance criterion
/// compares against.  Mirrors the runner's split exactly (same
/// kSeedTenantAssign sub-seed).
Samples SoloSojourn(const ScenarioRunner& runner, const std::string& spec,
                    size_t role) {
  auto engine = MakeEngine(spec, runner.graph());
  TenantControl* tc = engine->tenant_control();
  const workload::TenantRole& r = runner.spec().tenants.roles[role];
  TenantId id = tc->RegisterTenant(r.name, r.policy);
  for (const QueryGraph& q : runner.queries()) tc->AddTenantQuery(id, q);
  Rng assign_rng(DeriveSeed(runner.seed(), workload::kSeedTenantAssign));
  for (const UpdateBatch& batch : runner.stream()) {
    std::vector<size_t> who =
        AssignTenants(runner.spec().tenants, batch.size(), &assign_rng);
    UpdateBatch mine;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (who[i] == role) mine.push_back(batch[i]);
    }
    if (!mine.empty()) tc->Ingest(id, mine);
    FormedBatchStats fb;
    tc->PumpFormedBatch(&fb);
  }
  FormedBatchStats fb;
  while (tc->PumpFormedBatch(&fb)) {
  }
  const TenantSnapshot snap = tc->Snapshot(id);
  Samples sojourn;
  for (size_t i = 0; i < snap.service_seconds.size(); ++i) {
    sojourn.Add(snap.service_seconds[i] + snap.queue_wait_seconds[i]);
  }
  return sojourn;
}

const ScenarioTenantMetric& FindTenant(const ScenarioReport& r,
                                       const std::string& name) {
  for (const ScenarioTenantMetric& t : r.tenants) {
    if (t.tenant == name) return t;
  }
  ADD_FAILURE() << "tenant " << name << " missing from report";
  static ScenarioTenantMetric none;
  return none;
}

// The ISSUE acceptance experiment on the fixed default seed: in
// noisy-neighbor, admission ON keeps the gold victim's sojourn p99
// within a small factor of its solo run (and sheds the hog's overrun),
// while admission OFF — global FIFO behind the same constrained
// formation target — measurably degrades the victim.  Ratios compare
// same-run quantities under the modeled clock, so the assertions are
// load-shape facts, not machine-speed facts.
TEST(TenantFrontDoorTest, NoisyNeighborAdmissionBoundsVictimTail) {
  const workload::ScenarioSpec* spec =
      workload::FindScenario("noisy-neighbor");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner runner(*spec, workload::kDefaultScenarioSeed);

  // batch_init=batch_max=64 keeps formation capacity below the arrival
  // rate (~160 ops per stream batch) — the overload the experiment is
  // about; admission is the only difference between the arms.
  const std::string on = "tenant(gamma, batch_init=64, batch_max=64)";
  const std::string off =
      "tenant(gamma, batch_init=64, batch_max=64, admission=off)";
  ScenarioReport r_on = runner.Run(on);
  ScenarioReport r_off = runner.Run(off);
  const double solo_p99 = SoloSojourn(runner, on, /*role=*/0).Percentile(99);
  ASSERT_GT(solo_p99, 0.0);

  const ScenarioTenantMetric& victim_on = FindTenant(r_on, "victim");
  const ScenarioTenantMetric& victim_off = FindTenant(r_off, "victim");
  const ScenarioTenantMetric& hog_on = FindTenant(r_on, "hog");
  const ScenarioTenantMetric& hog_off = FindTenant(r_off, "hog");

  // ON: the victim's tail stays within 4x of its solo run, nothing of
  // its traffic is shed, and the hog's overrun is shed instead of
  // queued in front of the victim.  (Measured on the fixed seed: the
  // ratio is ~1x; 4x leaves room for dataset-twin regeneration.)
  EXPECT_LE(victim_on.sojourn_p99_s, 4.0 * solo_p99);
  EXPECT_EQ(victim_on.shed_ops, 0u);
  EXPECT_GT(hog_on.shed_ops, 0u);
  EXPECT_LT(r_on.fairness, 1.0);

  // OFF: global FIFO lets the hog's backlog stall the victim — at
  // least 2x the ON tail (measured ~9x) and 2x its solo run.
  EXPECT_GE(victim_off.sojourn_p99_s, 2.0 * victim_on.sojourn_p99_s);
  EXPECT_GE(victim_off.sojourn_p99_s, 2.0 * solo_p99);
  EXPECT_EQ(victim_off.shed_ops + hog_off.shed_ops, 0u)
      << "admission=off must not shed";

  // Offered traffic is identical across arms — same stream, same split.
  EXPECT_EQ(victim_on.offered_ops, victim_off.offered_ops);
  EXPECT_EQ(hog_on.offered_ops, hog_off.offered_ops);
}

// Two rate-limited tenants of the same class against full bounded
// queues: the round-robin pump drains both — neither starves, and the
// accounting balances op for op.
TEST(TenantFrontDoorTest, FullQueuesDrainFairlyAcrossTenants) {
  LabeledGraph g = GenerateUniformGraph(80, 240, 3, 1, 29);
  std::vector<UpdateBatch> stream = MakeStream(g, 30, 4, 60);

  EngineOptions opts;
  opts.front_door.batch_ops_min = 8;
  opts.front_door.batch_ops_init = 16;
  opts.front_door.batch_ops_max = 16;
  TenantFrontDoor fd("gamma", g, opts);
  TenantPolicy p;
  p.queue_limit_ops = 32;
  TenantId a = fd.RegisterTenant("a", p);
  TenantId b = fd.RegisterTenant("b", p);
  fd.AddTenantQuery(a, PathQuery());

  // Overfill both queues before pumping once: everything beyond the
  // bound sheds (never blocks), then the pump alternates fairly.
  for (const UpdateBatch& batch : stream) {
    fd.Ingest(a, batch);
    fd.Ingest(b, batch);
  }
  EXPECT_GT(fd.Snapshot(a).counters.shed_ops, 0u);
  FormedBatchStats fb;
  while (fd.PumpFormedBatch(&fb)) {
  }
  const TenantCounters ca = fd.Snapshot(a).counters;
  const TenantCounters cb = fd.Snapshot(b).counters;
  EXPECT_GT(ca.admitted_ops, 0u);
  EXPECT_GT(cb.admitted_ops, 0u);
  // Same class, same policy, same offered load: round-robin admission
  // keeps their service equal to the op.
  EXPECT_EQ(ca.admitted_ops, cb.admitted_ops);
  EXPECT_EQ(ca.offered_ops, ca.admitted_ops + ca.shed_ops);
  EXPECT_EQ(cb.offered_ops, cb.admitted_ops + cb.shed_ops);
  EXPECT_EQ(fd.PendingOps(), 0u);
  EXPECT_DOUBLE_EQ(fd.JainFairnessIndex(), 1.0);
}

}  // namespace
}  // namespace bdsm
