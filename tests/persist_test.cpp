/// Persistence & recovery subsystem tests (src/persist/;
/// docs/PERSISTENCE.md): snapshot round-trip and byte-stability,
/// corrupt-artifact rejection (snapshot sections, manifest seal),
/// checkpoint policies + pruning, WAL torn-tail recovery, and the
/// headline recovery invariant — restore-at-batch-k + WAL-tail replay
/// is bit-identical to a cold full replay (matches, counts,
/// truncation flags, evolving replica, and modeled device stats) for
/// gamma / CSM / sharded engines, match-multiset-identical for the
/// fused "multi" engine, across multiple scenarios.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/crc32.hpp"
#include "persist/restart.hpp"
#include "serve/sharded_engine.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm::persist {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
}

/// Expects `fn` to throw a PersistError whose message contains `part`.
template <typename Fn>
void ExpectPersistError(Fn fn, const std::string& part) {
  try {
    fn();
    FAIL() << "expected PersistError mentioning \"" << part << "\"";
  } catch (const PersistError& e) {
    EXPECT_NE(std::string(e.what()).find(part), std::string::npos)
        << "got: " << e.what();
  }
}

/// A small already-evolved engine with live queries: scenario smoke's
/// graph + query set, two batches applied.
std::unique_ptr<Engine> EvolvedEngine(const workload::ScenarioRunner& r,
                                      const std::string& spec,
                                      size_t batches) {
  std::unique_ptr<Engine> engine = MakeEngine(spec, r.graph());
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);
  for (size_t i = 0; i < batches; ++i) {
    engine->ProcessBatch(r.stream()[i]);
  }
  return engine;
}

const workload::ScenarioRunner& SmokeRunner() {
  static const workload::ScenarioRunner runner(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed);
  return runner;
}

// ------------------------------------------------------------------ CRC

TEST(Crc32Test, KnownAnswerAndStreaming) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chunked == one-shot.
  uint32_t piecewise = Crc32("56789", Crc32("1234"));
  EXPECT_EQ(piecewise, 0xCBF43926u);
}

// ------------------------------------------------------------- snapshot

TEST(SnapshotTest, CaptureRoundTripsThroughDisk) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> engine = EvolvedEngine(r, "gamma", 2);
  SnapshotTotals totals;
  totals.batches = 2;
  totals.ops = 96;
  totals.positive_matches = 7;
  totals.latency_seconds = 0.25;

  Snapshot snap = CaptureSnapshot(*engine, 2024, "smoke", 2, totals);
  EXPECT_EQ(snap.engine_spec, "gamma");
  EXPECT_EQ(snap.queries.size(), r.queries().size());
  EXPECT_EQ(snap.graph, engine->host_graph());

  std::string path = TempPath("snap_roundtrip.snap");
  WriteSnapshot(path, snap);
  Snapshot back = ReadSnapshot(path);
  EXPECT_EQ(back.engine_spec, snap.engine_spec);
  EXPECT_EQ(back.seed, snap.seed);
  EXPECT_EQ(back.scenario, snap.scenario);
  EXPECT_EQ(back.stream_offset, snap.stream_offset);
  EXPECT_EQ(back.totals, snap.totals);
  EXPECT_EQ(back.graph, snap.graph);
  ASSERT_EQ(back.queries.size(), snap.queries.size());
  for (size_t i = 0; i < snap.queries.size(); ++i) {
    EXPECT_EQ(back.queries[i].id, snap.queries[i].id);
    EXPECT_EQ(back.queries[i].query, snap.queries[i].query);
  }
}

TEST(SnapshotTest, SerializationIsByteStable) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> engine = EvolvedEngine(r, "gamma", 2);
  Snapshot snap = CaptureSnapshot(*engine, 2024, "smoke", 2);

  std::string a = TempPath("snap_stable_a.snap");
  std::string b = TempPath("snap_stable_b.snap");
  std::string c = TempPath("snap_stable_c.snap");
  WriteSnapshot(a, snap);
  WriteSnapshot(b, snap);
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
  // write -> read -> write is the identity on bytes too.
  WriteSnapshot(c, ReadSnapshot(a));
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(c));
}

TEST(SnapshotTest, RejectsCorruptionWithNamedErrors) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> engine = EvolvedEngine(r, "gamma", 1);
  Snapshot snap = CaptureSnapshot(*engine, 2024, "smoke", 1);
  std::string path = TempPath("snap_corrupt.snap");
  WriteSnapshot(path, snap);
  const std::string good = ReadFileBytes(path);

  ExpectPersistError([&] { ReadSnapshot(TempPath("missing.snap")); },
                     "no such file");

  std::string bad = good;
  bad[0] = 'X';
  WriteFileBytes(path, bad);
  ExpectPersistError([&] { ReadSnapshot(path); }, "bad magic");

  bad = good;
  bad[8] = 9;  // version field
  WriteFileBytes(path, bad);
  ExpectPersistError([&] { ReadSnapshot(path); }, "format version");

  // Flip one byte inside the graph section's payload: the section CRC
  // must catch it and the message must name the section.
  bad = good;
  bad[good.size() / 2] ^= 0x40;
  WriteFileBytes(path, bad);
  ExpectPersistError([&] { ReadSnapshot(path); }, "CRC");

  // Truncation mid-section.
  WriteFileBytes(path, good.substr(0, good.size() - 7));
  ExpectPersistError([&] { ReadSnapshot(path); }, "truncated");
}

TEST(SnapshotTest, EveryRegistryLeafSupportsSnapshots) {
  const workload::ScenarioRunner& r = SmokeRunner();
  for (const char* spec :
       {"gamma", "multi", "tf", "sym", "rf", "cl", "gf",
        "sharded(gamma, shards=2)", "sharded(rf, shards=2)"}) {
    std::unique_ptr<Engine> engine = MakeEngine(spec, r.graph());
    EXPECT_TRUE(engine->Describe().supports_snapshot) << spec;
  }
}

TEST(SnapshotTest, RegisteredQueriesSurviveRemovalGaps) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> engine =
      MakeEngine("sharded(gamma, shards=2)", r.graph());
  QueryId a = engine->AddQuery(r.queries()[0]);
  QueryId b = engine->AddQuery(r.queries()[1]);
  QueryId c = engine->AddQuery(r.queries()[0]);
  ASSERT_TRUE(engine->RemoveQuery(b));

  Snapshot snap = CaptureSnapshot(*engine, 1, "", 0);
  ASSERT_EQ(snap.queries.size(), 2u);
  EXPECT_EQ(snap.queries[0].id, a);
  EXPECT_EQ(snap.queries[1].id, c);

  std::unique_ptr<Engine> restored = BuildEngineFromSnapshot(snap);
  EXPECT_EQ(restored->QueryIds(), engine->QueryIds());
  // The id counter advanced past the gap: the next id is fresh on both.
  EXPECT_EQ(restored->AddQuery(r.queries()[1]),
            engine->AddQuery(r.queries()[1]));
}

TEST(SnapshotTest, RestoreQueryRefusesOutOfOrderIds) {
  const workload::ScenarioRunner& r = SmokeRunner();
  for (const char* spec : {"gamma", "multi", "tf",
                           "sharded(gamma, shards=2)"}) {
    std::unique_ptr<Engine> engine = MakeEngine(spec, r.graph());
    EXPECT_TRUE(engine->RestoreQuery(r.queries()[0], 3)) << spec;
    // 3 is live, 2 is behind the counter: both must be refused.
    EXPECT_FALSE(engine->RestoreQuery(r.queries()[1], 3)) << spec;
    EXPECT_FALSE(engine->RestoreQuery(r.queries()[1], 2)) << spec;
    EXPECT_TRUE(engine->RestoreQuery(r.queries()[1], 7)) << spec;
    EXPECT_EQ(engine->QueryIds(), (std::vector<QueryId>{3, 7})) << spec;
  }
}

// ------------------------------------------------------------- manifest

TEST(ManifestTest, RoundTripAndSealedAgainstCorruption) {
  std::string dir = TempDir("manifest_rt");
  fs::create_directories(dir);
  Manifest m;
  m.engine_spec = "sharded(gamma, shards=4)";
  m.scenario = "churn";
  m.seed = 77;
  m.snapshot_file = "snapshot-0000000004.snap";
  m.snapshot_batch = 4;
  m.wal = {{"wal-0000000004.trc", 4}, {"wal-0000000260.trc", 260}};
  WriteManifest(dir, m);
  EXPECT_EQ(ReadManifest(dir), m);

  // Flip a byte in the body: the CRC seal must reject it.
  std::string path = dir + "/" + kManifestFileName;
  std::string bytes = ReadFileBytes(path);
  std::string bad = bytes;
  bad[bytes.find("churn")] = 'x';
  WriteFileBytes(path, bad);
  ExpectPersistError([&] { ReadManifest(dir); }, "CRC seal");

  // Truncation loses the seal line entirely.
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 14));
  ExpectPersistError([&] { ReadManifest(dir); }, "seal");

  ExpectPersistError([&] { ReadManifest(TempDir("manifest_none")); },
                     "no checkpoint");
}

// -------------------------------------------------- checkpoint policies

TEST(CheckpointerTest, EveryBatchesPolicySnapshotsAndPrunes) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("ckpt_policy_batches");
  std::unique_ptr<Engine> engine = MakeEngine("gamma", r.graph());
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);

  Checkpointer cp(dir, CheckpointPolicy{.every_batches = 1,
                                        .every_updates = 0,
                                        .prune = true});
  cp.Begin(*engine, 2024, "smoke");
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
  }
  cp.Finish();
  // Base snapshot + one per batch.
  EXPECT_EQ(cp.snapshots_taken(), 1 + r.stream().size());
  EXPECT_EQ(cp.totals().batches, r.stream().size());

  // Pruning leaves exactly the latest snapshot + the tail segment(s).
  std::set<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.insert(entry.path().filename().string());
  }
  Manifest m = ReadManifest(dir);
  EXPECT_EQ(m.snapshot_batch, r.stream().size());
  std::set<std::string> expected = {kManifestFileName, m.snapshot_file};
  for (const WalSegment& seg : m.wal) expected.insert(seg.file);
  EXPECT_EQ(files, expected);

  // Restore from the final checkpoint: nothing left to replay.
  RestoredEngine restored = RestoreEngine(dir);
  EXPECT_EQ(restored.next_batch, r.stream().size());
  EXPECT_EQ(restored.wal_batches_replayed, 0u);
  EXPECT_FALSE(restored.wal_tail_torn);
  EXPECT_EQ(restored.engine->host_graph(), engine->host_graph());
}

TEST(CheckpointerTest, EveryUpdatesPolicyTriggersOnOps) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("ckpt_policy_updates");
  std::unique_ptr<Engine> engine = MakeEngine("gamma", r.graph());
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);

  // Smoke batches carry ~48 ops: a 60-op budget fires roughly every
  // other batch, strictly more than the base snapshot alone.
  Checkpointer cp(dir, CheckpointPolicy{.every_batches = 0,
                                        .every_updates = 60,
                                        .prune = true});
  cp.Begin(*engine, 2024, "smoke");
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
  }
  cp.Finish();
  EXPECT_GT(cp.snapshots_taken(), 1u);
  EXPECT_LT(ReadManifest(dir).snapshot_batch, r.stream().size());
}

TEST(CheckpointerTest, BeginSweepsStaleArtifacts) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("ckpt_sweep");
  fs::create_directories(dir);
  WriteFileBytes(dir + "/snapshot-0000000099.snap", "stale");
  WriteFileBytes(dir + "/wal-0000000099.trc", "stale");
  WriteFileBytes(dir + "/README.txt", "user file, not ours");

  std::unique_ptr<Engine> engine = MakeEngine("gamma", r.graph());
  Checkpointer cp(dir);
  cp.Begin(*engine, 1, "");
  cp.Finish();
  EXPECT_FALSE(fs::exists(dir + "/snapshot-0000000099.snap"));
  EXPECT_FALSE(fs::exists(dir + "/wal-0000000099.trc"));
  EXPECT_TRUE(fs::exists(dir + "/README.txt"));  // never touch user files
  EXPECT_NO_THROW(RestoreEngine(dir));
}

// ---------------------------------------------------- torn-tail recovery

TEST(WalTest, TornTailRecoversToLastDurableBatch) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("ckpt_torn");
  std::unique_ptr<Engine> engine = MakeEngine("gamma", r.graph());
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);

  Checkpointer cp(dir);  // base snapshot only; the whole stream is WAL
  cp.Begin(*engine, 2024, "smoke");
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
  }
  cp.Finish();

  // Crash surgery: tear the final bytes of the last WAL segment.
  Manifest m = ReadManifest(dir);
  ASSERT_FALSE(m.wal.empty());
  std::string seg = dir + "/" + m.wal.back().file;
  std::string bytes = ReadFileBytes(seg);
  WriteFileBytes(seg, bytes.substr(0, bytes.size() - 3));

  RestoredEngine restored = RestoreEngine(dir);
  EXPECT_TRUE(restored.wal_tail_torn);
  // The torn batch is gone; everything before it replayed.
  EXPECT_EQ(restored.next_batch, r.stream().size() - 1);
  EXPECT_EQ(restored.wal_batches_replayed, r.stream().size() - 1);

  // Finishing the lost batch converges with the uninterrupted engine.
  restored.engine->ProcessBatch(r.stream().back());
  EXPECT_EQ(restored.engine->host_graph(), engine->host_graph());
}

TEST(WalTest, RolledBackHeaderOnRotatedSegmentLosesNothing) {
  // Power-loss shape the rotation fsync guards against — and the
  // reader tolerates regardless: a rotated (non-final) segment whose
  // patched header count rolled back to the placeholder 0.  The
  // batches' bytes are durable, so replay must see all of them.
  std::string dir = TempDir("wal_header_rollback");
  fs::create_directories(dir);
  std::vector<UpdateBatch> batches = {
      {UpdateOp{true, 1, 2, 0}},
      {UpdateOp{true, 3, 4, 0}},
      {UpdateOp{false, 1, 2, 0}}};
  WalOptions opts;
  opts.batches_per_segment = 2;  // forces a rotation at batch 2
  std::vector<WalSegment> segments;
  {
    WalWriter wal(dir, workload::TraceMeta{1, "t"}, opts);
    for (const UpdateBatch& b : batches) wal.Append(b);
    ASSERT_TRUE(wal.ok());
    wal.Close();
    segments = wal.segments();
  }
  ASSERT_EQ(segments.size(), 2u);

  // Roll the first (non-final) segment's header count back to 0.
  std::string first = dir + "/" + segments[0].file;
  std::string bytes = ReadFileBytes(first);
  for (int i = 0; i < 8; ++i) bytes[24 + i] = '\0';  // num_batches field
  WriteFileBytes(first, bytes);

  bool torn = false;
  std::vector<UpdateBatch> replayed = ReadWalTail(dir, segments, 0, &torn);
  EXPECT_FALSE(torn);
  EXPECT_EQ(replayed, batches);

  // A non-final segment that is actually SHORT is data loss, not a
  // recoverable tail.
  WriteFileBytes(first, ReadFileBytes(first).substr(0, bytes.size() - 4));
  ExpectPersistError([&] { ReadWalTail(dir, segments, 0); },
                     "corrupt mid-stream");
}

// --------------------------------------- restore == cold replay (core)

struct RestoreCase {
  const char* scenario;
  const char* engine;
  /// Bit-identical per-query match *vectors* (order included); false
  /// for "multi", whose fused-launch emission order legitimately
  /// differs after the snapshot decomposes construction — its match
  /// multisets must still be identical.
  bool bitwise;
};

class RestoreParityTest : public ::testing::TestWithParam<RestoreCase> {};

TEST_P(RestoreParityTest, WarmRestoreMatchesColdReplay) {
  const RestoreCase& param = GetParam();
  workload::ScenarioRunner runner(*workload::FindScenario(param.scenario),
                                  workload::kDefaultScenarioSeed);
  const std::vector<UpdateBatch>& stream = runner.stream();
  const size_t kill = stream.size() / 2;

  // Cold reference: one engine, the whole stream.
  std::unique_ptr<Engine> cold = MakeEngine(param.engine, runner.graph());
  for (const QueryGraph& q : runner.queries()) cold->AddQuery(q);
  std::vector<BatchReport> cold_tail;
  for (size_t i = 0; i < stream.size(); ++i) {
    BatchReport report = cold->ProcessBatch(stream[i]);
    if (i >= kill) cold_tail.push_back(std::move(report));
  }

  // Warm path: checkpoint the first half (snapshot every 2 batches, so
  // the restore point uses snapshot + a WAL tail, not just a
  // snapshot), die, restore, finish.
  std::string dir = TempDir("ckpt_parity");
  {
    std::unique_ptr<Engine> dying = MakeEngine(param.engine, runner.graph());
    for (const QueryGraph& q : runner.queries()) dying->AddQuery(q);
    Checkpointer cp(dir, CheckpointPolicy{.every_batches = 2,
                                          .every_updates = 0,
                                          .prune = true});
    cp.Begin(*dying, runner.seed(), param.scenario);
    for (size_t i = 0; i < kill; ++i) {
      BatchReport report = dying->ProcessBatch(stream[i]);
      cp.OnBatchApplied(*dying, stream[i], report);
    }
  }
  RestoredEngine restored = RestoreEngine(dir);
  EXPECT_EQ(restored.next_batch, kill);
  EXPECT_EQ(restored.manifest.engine_spec,
            cold->Describe().canonical_spec);

  // The tail must reproduce the cold run bit for bit.
  for (size_t i = kill; i < stream.size(); ++i) {
    BatchReport warm = restored.engine->ProcessBatch(stream[i]);
    const BatchReport& ref = cold_tail[i - kill];
    ASSERT_EQ(warm.queries.size(), ref.queries.size()) << "batch " << i;
    for (size_t q = 0; q < ref.queries.size(); ++q) {
      const QueryReport& wq = warm.queries[q];
      const QueryReport& rq = ref.queries[q];
      ASSERT_EQ(wq.id, rq.id) << "batch " << i;
      EXPECT_EQ(wq.num_positive, rq.num_positive) << "batch " << i;
      EXPECT_EQ(wq.num_negative, rq.num_negative) << "batch " << i;
      EXPECT_EQ(wq.timed_out, rq.timed_out) << "batch " << i;
      EXPECT_EQ(wq.overflowed, rq.overflowed) << "batch " << i;
      if (param.bitwise) {
        EXPECT_EQ(wq.positive_matches, rq.positive_matches)
            << "batch " << i << " query " << q;
        EXPECT_EQ(wq.negative_matches, rq.negative_matches)
            << "batch " << i << " query " << q;
      } else {
        EXPECT_EQ(CanonicalKeys(wq.positive_matches),
                  CanonicalKeys(rq.positive_matches))
            << "batch " << i << " query " << q;
        EXPECT_EQ(CanonicalKeys(wq.negative_matches),
                  CanonicalKeys(rq.negative_matches))
            << "batch " << i << " query " << q;
      }
    }
    if (param.bitwise) {
      // The matching kernels' modeled stats reproduce too: candidate
      // structures and match schedules are pure functions of (graph,
      // query).  update_stats is *not* asserted — the GPMA's physical
      // segment layout after a warm bulk-build legitimately differs
      // from the incrementally-evolved one, so the update kernel's
      // memory-traffic counters may differ (docs/PERSISTENCE.md).
      EXPECT_EQ(warm.match_stats, ref.match_stats) << "batch " << i;
    }
  }
  EXPECT_EQ(restored.engine->host_graph(), cold->host_graph());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndScenarios, RestoreParityTest,
    ::testing::Values(
        RestoreCase{"smoke", "gamma", true},
        RestoreCase{"smoke", "tf", true},
        RestoreCase{"smoke", "multi", false},
        RestoreCase{"smoke", "sharded(gamma, shards=4)", true},
        RestoreCase{"churn", "gamma", true},
        RestoreCase{"churn", "rf", true},
        RestoreCase{"churn", "sharded(gamma, shards=4)", true},
        RestoreCase{"churn", "multi", false}),
    [](const ::testing::TestParamInfo<RestoreCase>& info) {
      std::string name = std::string(info.param.scenario) + "_" +
                         info.param.engine;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------- restart drill + serving tee

TEST(RestartScenarioTest, StitchedRunEqualsColdRun) {
  RestartOutcome outcome = RunRestartScenario(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed,
      "sharded(gamma, shards=2)", 2, TempDir("ckpt_drill"));
  EXPECT_TRUE(outcome.identical) << outcome.detail;
  EXPECT_EQ(outcome.restored_at, 2u);
  EXPECT_EQ(outcome.prefix.batches.size() + outcome.tail.batches.size(),
            outcome.cold.batches.size());
  EXPECT_EQ(outcome.restored_totals.batches, 2u);
}

TEST(RestartScenarioTest, KillPointBeyondStreamClamps) {
  RestartOutcome outcome = RunRestartScenario(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed,
      "gamma", 999, TempDir("ckpt_drill_clamp"));
  EXPECT_TRUE(outcome.identical) << outcome.detail;
  EXPECT_TRUE(outcome.tail.batches.empty());
}

TEST(ShardedTeeTest, AttachCheckpointerTeesFromTheBatchBarrier) {
  // The serving-layer integration: the engine itself tees every batch
  // (here via direct ProcessBatch; SubmitBatch funnels into the same
  // phase barrier), so drivers that only see an Engine* still get
  // durability.
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("ckpt_sharded_tee");
  auto engine = std::make_unique<serve::ShardedEngine>(
      "gamma", 2, r.graph(), EngineOptions{});
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);

  Checkpointer cp(dir, CheckpointPolicy{.every_batches = 2,
                                        .every_updates = 0,
                                        .prune = true});
  cp.Begin(*engine, r.seed(), "smoke");
  engine->AttachCheckpointer(&cp);
  for (const UpdateBatch& batch : r.stream()) {
    engine->ProcessBatch(batch);
  }
  engine->AttachCheckpointer(nullptr);
  cp.Finish();
  EXPECT_EQ(cp.next_batch(), r.stream().size());

  RestoredEngine restored = RestoreEngine(dir);
  EXPECT_EQ(restored.next_batch, r.stream().size());
  EXPECT_EQ(restored.engine->host_graph(), engine->host_graph());
  EXPECT_EQ(restored.engine->QueryIds(), engine->QueryIds());
}

}  // namespace
}  // namespace bdsm::persist
