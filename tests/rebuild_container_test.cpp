/// RebuildContainer tests: query-interface equivalence with GPMA after
/// identical batch streams, and the cost-model asymmetry the ablation
/// bench relies on.
#include <gtest/gtest.h>

#include "gpma/gpma.hpp"
#include "gpma/gpma_kernel.hpp"
#include "gpma/rebuild_container.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

TEST(RebuildContainerTest, MatchesGpmaAfterBatches) {
  LabeledGraph g = GenerateUniformGraph(200, 700, 3, 2, 81);
  Gpma gpma(32);
  RebuildContainer rebuild;
  gpma.BuildFrom(g);
  rebuild.BuildFrom(g);
  UpdateStreamGenerator gen(82);
  LabeledGraph mirror = g;
  for (int round = 0; round < 4; ++round) {
    UpdateBatch batch =
        SanitizeBatch(mirror, gen.MakeMixed(mirror, 60, 2, 1, 2));
    ApplyBatch(&mirror, batch);
    gpma.ApplyBatch(batch);
    rebuild.ApplyBatch(batch);
    ASSERT_EQ(rebuild.NumEdges(), gpma.NumEdges());
    std::vector<Neighbor> a, b;
    for (VertexId v = 0; v < mirror.NumVertices(); ++v) {
      gpma.NeighborsInto(v, &a);
      rebuild.NeighborsInto(v, &b);
      ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].v, b[i].v);
        EXPECT_EQ(a[i].elabel, b[i].elabel);
      }
    }
  }
}

TEST(RebuildContainerTest, FindEdgeSemantics) {
  LabeledGraph g({0, 0, 0});
  g.InsertEdge(0, 1, 4);
  RebuildContainer c;
  c.BuildFrom(g);
  Label el = kNoLabel;
  EXPECT_TRUE(c.FindEdge(0, 1, &el));
  EXPECT_EQ(el, 4u);
  EXPECT_TRUE(c.FindEdge(1, 0, &el));
  EXPECT_FALSE(c.FindEdge(0, 2, &el));
}

TEST(RebuildContainerTest, RebuildCostIsFlatGpmaCostScales) {
  LabeledGraph g = GenerateUniformGraph(800, 6000, 2, 1, 83);
  UpdateStreamGenerator gen(84);
  UpdateBatch small = gen.MakeInsertions(g, 16, 0);
  UpdateBatch large = gen.MakeInsertions(g, 1024, 0);

  auto price = [&](auto& container, const UpdateBatch& batch) {
    container.BuildFrom(g);
    Device dev;
    return SimulateGpmaUpdate(dev, container.ApplyBatch(batch));
  };
  Gpma g1(32), g2(32);
  RebuildContainer r1, r2;
  DeviceStats gpma_small = price(g1, small);
  DeviceStats gpma_large = price(g2, large);
  DeviceStats rebuild_small = price(r1, small);
  DeviceStats rebuild_large = price(r2, large);

  // Total device *work* (busy ticks): GPMA's grows with the batch, the
  // rebuild's stays ~flat at 2|E| moves.  (Makespan hides the growth
  // while blocks are unsaturated — the throughput-vs-latency GPU story.)
  EXPECT_GT(gpma_large.total_busy_ticks, gpma_small.total_busy_ticks * 4);
  EXPECT_LT(rebuild_large.total_busy_ticks,
            rebuild_small.total_busy_ticks * 2);
  // And GPMA wins decisively on the small batch, in work and makespan.
  EXPECT_LT(gpma_small.total_busy_ticks * 4,
            rebuild_small.total_busy_ticks);
  EXPECT_LT(gpma_small.makespan_ticks, rebuild_small.makespan_ticks);
}

}  // namespace
}  // namespace bdsm
