/// Tests for the SIMT device simulator: charging/cost model, allocator
/// spill accounting, block scheduling determinism, work stealing
/// (active + passive) semantics and utilization effects.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "gpusim/coop_groups.hpp"
#include "gpusim/device.hpp"

namespace bdsm {
namespace {

/// A splittable task that burns `units` steps, each charging `cost_words`
/// of global memory traffic.  Mirrors the shape of WBM's DFS work.
class BurnTask : public WarpTask {
 public:
  BurnTask(uint64_t units, uint64_t cost_words, std::atomic<uint64_t>* done)
      : units_(units), cost_words_(cost_words), done_(done) {}

  bool Step(WarpContext& ctx) override {
    if (units_ == 0) return false;
    ctx.ChargeGlobal(cost_words_, /*coalesced=*/true);
    ctx.ChargeCompute(cost_words_);
    --units_;
    done_->fetch_add(1, std::memory_order_relaxed);
    return units_ > 0;
  }

  uint64_t EstimateRemaining() const override { return units_; }

  std::unique_ptr<WarpTask> StealHalf() override {
    if (units_ < 2) return nullptr;
    uint64_t half = units_ / 2;
    units_ -= half;
    return std::make_unique<BurnTask>(half, cost_words_, done_);
  }

 private:
  uint64_t units_;
  uint64_t cost_words_;
  std::atomic<uint64_t>* done_;
};

DeviceConfig SmallConfig(StealPolicy policy) {
  DeviceConfig cfg;
  cfg.num_sms = 2;
  cfg.warps_per_block = 4;
  cfg.steal_policy = policy;
  return cfg;
}

TEST(WarpContextTest, ComputeChargesSimtSteps) {
  DeviceConfig cfg;
  SharedMemory shm(1024);
  DeviceAllocator alloc(1 << 20);
  WarpContext ctx(cfg, &shm, &alloc, 0, 0);
  ctx.ChargeCompute(64);  // 64 ops over 32 lanes = 2 steps
  EXPECT_EQ(ctx.compute_steps(), 2u);
  EXPECT_EQ(ctx.DrainTicks(), 2u * cfg.ticks_per_compute_step);
  EXPECT_EQ(ctx.DrainTicks(), 0u) << "drain must reset";
}

TEST(WarpContextTest, CoalescingMatters) {
  DeviceConfig cfg;
  SharedMemory shm(1024);
  DeviceAllocator alloc(1 << 20);
  WarpContext a(cfg, &shm, &alloc, 0, 0);
  WarpContext b(cfg, &shm, &alloc, 0, 1);
  a.ChargeGlobal(128, true);
  b.ChargeGlobal(128, false);
  EXPECT_EQ(a.global_transactions(), 4u);    // 128/32
  EXPECT_EQ(b.global_transactions(), 128u);  // one per word
  EXPECT_EQ(a.DrainTicks() * 32, b.DrainTicks());
}

TEST(WarpContextTest, TransferBilledPerKiB) {
  DeviceConfig cfg;
  SharedMemory shm(1024);
  DeviceAllocator alloc(1 << 20);
  WarpContext ctx(cfg, &shm, &alloc, 0, 0);
  ctx.ChargeTransfer(4096);
  EXPECT_EQ(ctx.transfer_bytes(), 4096u);
  EXPECT_EQ(ctx.transfer_ticks(), 4u * cfg.ticks_per_kib_transfer);
}

TEST(SharedMemoryTest, AllocAndBudget) {
  SharedMemory shm(256);
  uint32_t* a = shm.Alloc<uint32_t>(16);
  ASSERT_NE(a, nullptr);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 0u);
  EXPECT_GE(shm.used(), 64u);
  EXPECT_DEATH(shm.Alloc<uint64_t>(1000), "shared memory budget");
  shm.Reset();
  EXPECT_EQ(shm.used(), 0u);
}

TEST(DeviceAllocatorTest, SpillAccounting) {
  DeviceAllocator alloc(1000);
  EXPECT_EQ(alloc.Alloc(600), 0u);
  EXPECT_EQ(alloc.Alloc(600), 200u);  // 200 bytes over capacity
  EXPECT_EQ(alloc.live_bytes(), 1200u);
  EXPECT_EQ(alloc.peak_bytes(), 1200u);
  EXPECT_GT(alloc.UsagePercent(), 100.0);
  EXPECT_EQ(alloc.total_spill_traffic(), 400u);  // evict + reload
  alloc.Free(600);
  EXPECT_EQ(alloc.live_bytes(), 600u);
  EXPECT_EQ(alloc.peak_bytes(), 1200u);
}

TEST(DeviceTest, AllWorkExecutes) {
  Device dev(SmallConfig(StealPolicy::kNone));
  std::atomic<uint64_t> done{0};
  std::vector<std::unique_ptr<WarpTask>> tasks;
  uint64_t expected = 0;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(std::make_unique<BurnTask>(10 + i, 8, &done));
    expected += 10 + static_cast<uint64_t>(i);
  }
  DeviceStats stats = dev.Launch(std::move(tasks));
  EXPECT_EQ(done.load(), expected);
  EXPECT_EQ(stats.tasks_executed, 20u);
  EXPECT_GT(stats.makespan_ticks, 0u);
  EXPECT_GT(stats.Utilization(), 0.0);
  EXPECT_LE(stats.Utilization(), 1.0);
}

TEST(DeviceTest, DeterministicAcrossRuns) {
  auto run = [] {
    Device dev(SmallConfig(StealPolicy::kActive));
    std::atomic<uint64_t> done{0};
    std::vector<std::unique_ptr<WarpTask>> tasks;
    for (int i = 0; i < 17; ++i) {
      tasks.push_back(
          std::make_unique<BurnTask>(5 + (i * 7) % 23, 4, &done));
    }
    return dev.Launch(std::move(tasks));
  };
  DeviceStats a = run();
  DeviceStats b = run();
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.total_busy_ticks, b.total_busy_ticks);
  EXPECT_EQ(a.steal_events, b.steal_events);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
}

TEST(DeviceTest, ActiveStealingBalancesSkew) {
  // One giant task + many tiny ones in a single block: without stealing
  // the giant task serializes on one warp; with active stealing siblings
  // share it, shrinking the makespan and raising utilization.
  auto run = [](StealPolicy policy) {
    DeviceConfig cfg;
    cfg.num_sms = 1;
    cfg.warps_per_block = 4;
    cfg.steal_policy = policy;
    Device dev(cfg);
    std::atomic<uint64_t> done{0};
    std::vector<std::unique_ptr<WarpTask>> tasks;
    tasks.push_back(std::make_unique<BurnTask>(4000, 8, &done));
    for (int i = 0; i < 3; ++i) {
      tasks.push_back(std::make_unique<BurnTask>(10, 8, &done));
    }
    DeviceStats s = dev.Launch(std::move(tasks));
    EXPECT_EQ(done.load(), 4000u + 30u);
    return s;
  };
  DeviceStats without = run(StealPolicy::kNone);
  DeviceStats with = run(StealPolicy::kActive);
  EXPECT_EQ(without.steal_events, 0u);
  EXPECT_GT(with.steal_events, 0u);
  EXPECT_LT(with.makespan_ticks, without.makespan_ticks / 2);
  EXPECT_GT(with.Utilization(), without.Utilization());
}

TEST(DeviceTest, PassiveStealingAlsoBalances) {
  auto run = [](StealPolicy policy) {
    DeviceConfig cfg;
    cfg.num_sms = 1;
    cfg.warps_per_block = 4;
    cfg.steal_policy = policy;
    Device dev(cfg);
    std::atomic<uint64_t> done{0};
    std::vector<std::unique_ptr<WarpTask>> tasks;
    tasks.push_back(std::make_unique<BurnTask>(2000, 8, &done));
    tasks.push_back(std::make_unique<BurnTask>(5, 8, &done));
    return dev.Launch(std::move(tasks));
  };
  DeviceStats passive = run(StealPolicy::kPassive);
  DeviceStats none = run(StealPolicy::kNone);
  EXPECT_GT(passive.steal_events, 0u);
  EXPECT_LT(passive.makespan_ticks, none.makespan_ticks);
}

TEST(DeviceTest, MoreTasksThanWarpsAllRun) {
  DeviceConfig cfg;
  cfg.num_sms = 2;
  cfg.warps_per_block = 2;
  Device dev(cfg);
  std::atomic<uint64_t> done{0};
  std::vector<std::unique_ptr<WarpTask>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back(std::make_unique<BurnTask>(3, 2, &done));
  }
  DeviceStats stats = dev.Launch(std::move(tasks));
  EXPECT_EQ(stats.tasks_executed, 100u);
  EXPECT_EQ(done.load(), 300u);
}

TEST(DeviceTest, EmptyLaunchIsNoop) {
  Device dev(SmallConfig(StealPolicy::kActive));
  DeviceStats stats = dev.Launch({});
  EXPECT_EQ(stats.makespan_ticks, 0u);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(CoopGroupsTest, PartitionSizes) {
  EXPECT_EQ(PartitionForSegment(1).group_size, 1u);
  EXPECT_EQ(PartitionForSegment(1).num_groups, 32u);
  EXPECT_EQ(PartitionForSegment(9).group_size, 16u);
  EXPECT_EQ(PartitionForSegment(16).group_size, 16u);
  EXPECT_EQ(PartitionForSegment(16).num_groups, 2u);
  EXPECT_EQ(PartitionForSegment(17).group_size, 32u);
  EXPECT_EQ(PartitionForSegment(100).group_size, 32u);
}

TEST(CoopGroupsTest, CgNeverSlowerForSmallSegments) {
  for (uint32_t seg = 1; seg <= 32; ++seg) {
    for (uint64_t n : {1ull, 7ull, 64ull, 1000ull}) {
      EXPECT_LE(SegmentPassSteps(n, seg, true),
                SegmentPassSteps(n, seg, false))
          << "seg=" << seg << " n=" << n;
    }
  }
  // And strictly better in the paper's 16-entry example with many segs.
  EXPECT_LT(SegmentPassSteps(64, 16, true), SegmentPassSteps(64, 16, false));
}

}  // namespace
}  // namespace bdsm
