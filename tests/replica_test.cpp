/// Replica-group subsystem tests (src/replica/;
/// docs/REPLICATION.md): the incremental WalReader (poll semantics,
/// segment roll mid-stream, torn final write, generation switch while
/// a follower is mid-tail — converge, never double-apply), follower
/// convergence and the bounded-staleness contract, wrapper
/// transparency (a replicated engine's reports are bit-identical to
/// the bare inner engine's), and the headline invariant — kill the
/// leader mid-stream, fail over to a follower, finish the stream, and
/// the completed run is bit-identical (matches, order, counts,
/// truncation flags) to an uninterrupted unreplicated run for
/// gamma / CSM / sharded inners, match-multiset-identical for the
/// fused "multi" engine, across smoke and churn scenarios.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal_reader.hpp"
#include "replica/failover.hpp"
#include "replica/group.hpp"
#include "replica/transport.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm::replica {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
}

const workload::ScenarioRunner& SmokeRunner() {
  static const workload::ScenarioRunner runner(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed);
  return runner;
}

/// The 8-batch "uniform" scenario, for tests whose setups need a
/// longer stream than smoke's 3 batches (mid-stream mutations,
/// generation switches, torn tails past the first checkpoint).
const workload::ScenarioRunner& UniformRunner() {
  static const workload::ScenarioRunner runner(
      *workload::FindScenario("uniform"), workload::kDefaultScenarioSeed);
  return runner;
}

/// A fresh inner engine with the scenario's queries registered.
std::unique_ptr<Engine> FreshEngine(const workload::ScenarioRunner& r,
                                    const std::string& spec,
                                    const EngineOptions& options = {}) {
  std::unique_ptr<Engine> engine = MakeEngine(spec, r.graph(), options);
  for (const QueryGraph& q : r.queries()) engine->AddQuery(q);
  return engine;
}

// ------------------------------------------------------------ WalReader

TEST(WalReaderTest, PollsNewlyDurableBatchesExactlyOnce) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("walreader_poll");
  std::unique_ptr<Engine> engine = FreshEngine(r, "gamma");

  persist::Checkpointer cp(dir);  // base snapshot only
  cp.Begin(*engine, 2024, "smoke");
  persist::WalReader reader(dir, 0);

  uint64_t seen = 0;
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
    persist::WalReader::PollResult poll = reader.Poll();
    EXPECT_FALSE(poll.gap);
    EXPECT_FALSE(poll.no_manifest);
    ASSERT_EQ(poll.batches.size(), 1u) << "batch " << seen;
    EXPECT_EQ(poll.batches[0], batch);
    ++seen;
    EXPECT_EQ(reader.next_batch(), seen);
    // An immediate re-poll sees nothing new — the cursor is monotone.
    EXPECT_TRUE(reader.Poll().batches.empty());
  }
  EXPECT_EQ(seen, r.stream().size());
}

TEST(WalReaderTest, SegmentRollMidStreamIsSeamless) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("walreader_roll");
  std::unique_ptr<Engine> engine = FreshEngine(r, "gamma");

  // Two batches per segment forces rolls mid-stream; the reader must
  // chain across them without loss or duplication.
  persist::Checkpointer cp(dir, persist::CheckpointPolicy{},
                           persist::WalOptions{.batches_per_segment = 2,
                                               .sync_every_batch = true});
  cp.Begin(*engine, 2024, "smoke");
  persist::WalReader reader(dir, 0);
  std::vector<UpdateBatch> got;
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
    persist::WalReader::PollResult poll = reader.Poll();
    for (UpdateBatch& b : poll.batches) got.push_back(std::move(b));
  }
  EXPECT_EQ(got, r.stream());
  ASSERT_GE(persist::ReadManifest(dir).wal.size(), 2u)
      << "segment roll never happened; the test is vacuous";
}

TEST(WalReaderTest, TornFinalWriteStopsAtLastDurableBatchThenResumes) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("walreader_torn");
  std::unique_ptr<Engine> engine = FreshEngine(r, "gamma");

  persist::Checkpointer cp(dir);
  cp.Begin(*engine, 2024, "smoke");
  const size_t total = r.stream().size();
  for (const UpdateBatch& batch : r.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    cp.OnBatchApplied(*engine, batch, report);
  }

  // Tear the live tail: chop the final batch's last bytes, as a crash
  // mid-append would.
  persist::Manifest m = persist::ReadManifest(dir);
  ASSERT_FALSE(m.wal.empty());
  std::string seg = dir + "/" + m.wal.back().file;
  std::string bytes = ReadFileBytes(seg);
  WriteFileBytes(seg, bytes.substr(0, bytes.size() - 3));

  persist::WalReader reader(dir, 0);
  persist::WalReader::PollResult poll = reader.Poll();
  EXPECT_TRUE(poll.torn);
  EXPECT_EQ(poll.batches.size(), total - 1);
  EXPECT_EQ(reader.next_batch(), total - 1);

  // The append completes (bytes restored): the reader resumes at the
  // durable point and sees exactly the one missing batch — no
  // double-apply across the torn read.
  WriteFileBytes(seg, bytes);
  poll = reader.Poll();
  EXPECT_FALSE(poll.torn);
  ASSERT_EQ(poll.batches.size(), 1u);
  EXPECT_EQ(poll.batches[0], r.stream().back());
  EXPECT_EQ(reader.next_batch(), total);
}

TEST(WalReaderTest, GenerationSwitchBehindCursorReportsGap) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::string dir = TempDir("walreader_gen");
  std::unique_ptr<Engine> engine = FreshEngine(r, "gamma");

  persist::Checkpointer cp(dir);
  cp.Begin(*engine, 2024, "smoke");
  persist::WalReader reader(dir, 0);
  for (size_t i = 0; i < 3; ++i) {
    BatchReport report = engine->ProcessBatch(r.stream()[i]);
    cp.OnBatchApplied(*engine, r.stream()[i], report);
  }
  EXPECT_EQ(reader.Poll().batches.size(), 3u);

  // A new generation whose snapshot point is past the reader's cursor
  // (with the old segments swept) means the log can no longer serve
  // the cursor: the reader reports a gap instead of silently skipping.
  cp.Begin(*engine, 2024, "smoke", cp.next_batch(), cp.totals());
  reader.Reset(0);
  persist::WalReader::PollResult poll = reader.Poll();
  EXPECT_TRUE(poll.gap);
  EXPECT_TRUE(poll.batches.empty());
  // Jumping to the snapshot point (what a follower resync does) makes
  // the next poll serve again.
  reader.Reset(persist::ReadManifest(dir).snapshot_batch);
  poll = reader.Poll();
  EXPECT_FALSE(poll.gap);
}

// --------------------------------------------------------- replica group

TEST(ReplicaGroupTest, FollowersConvergeToLeaderState) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> group =
      FreshEngine(r, "replicated(gamma, followers=2)");
  ReplicationControl* rc = group->replication_control();
  ASSERT_NE(rc, nullptr);
  EXPECT_TRUE(group->Describe().supports_replication);
  EXPECT_EQ(group->Describe().num_followers, 2u);

  for (const UpdateBatch& batch : r.stream()) group->ProcessBatch(batch);
  rc->DrainFollowers();

  ReplicationStats stats = rc->Stats();
  EXPECT_EQ(stats.leader_batches, r.stream().size());
  EXPECT_EQ(stats.shipped_batches, 2 * r.stream().size());
  EXPECT_EQ(stats.MaxLagBatches(), 0u);
  EXPECT_EQ(stats.MaxLagUpdates(), 0u);
  ASSERT_EQ(stats.replicas.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const Engine* follower = rc->FollowerEngine(i);
    ASSERT_NE(follower, nullptr);
    EXPECT_EQ(follower->host_graph(), group->host_graph()) << "replica " << i;
    EXPECT_EQ(follower->QueryIds(), group->QueryIds()) << "replica " << i;
    EXPECT_EQ(stats.replicas[i].applied_batches, r.stream().size());
  }
}

TEST(ReplicaGroupTest, StalenessBoundedByPollCadence) {
  const workload::ScenarioRunner& r = SmokeRunner();
  EngineOptions options;
  options.replica.followers = 1;
  options.replica.poll_every = 3;
  std::unique_ptr<Engine> group =
      MakeEngine("replicated(gamma)", r.graph(), options);
  for (const QueryGraph& q : r.queries()) group->AddQuery(q);
  ReplicationControl* rc = group->replication_control();

  for (const UpdateBatch& batch : r.stream()) {
    group->ProcessBatch(batch);
    // Observable staleness never exceeds the poll cadence.
    EXPECT_LE(rc->Stats().MaxLagBatches(), 3u);
  }
  EXPECT_LE(rc->Stats().replicas[0].max_lag_batches, 3u);
  EXPECT_GE(rc->Stats().replicas[0].max_lag_batches, 2u)
      << "lag never accumulated; the cadence test is vacuous";
  rc->DrainFollowers();
  EXPECT_EQ(rc->Stats().MaxLagBatches(), 0u);
  EXPECT_EQ(rc->FollowerEngine(0)->host_graph(), group->host_graph());
}

TEST(ReplicaGroupTest, ReplicatedReportsAreBitIdenticalToInner) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> bare = FreshEngine(r, "gamma");
  std::unique_ptr<Engine> group = FreshEngine(r, "replicated(gamma)");
  EXPECT_EQ(group->Describe().canonical_spec,
            "replicated(gamma, followers=2)");
  EXPECT_EQ(group->Describe().inner_spec, "gamma");

  for (const UpdateBatch& batch : r.stream()) {
    BatchReport ref = bare->ProcessBatch(batch);
    BatchReport rep = group->ProcessBatch(batch);
    ASSERT_EQ(rep.queries.size(), ref.queries.size());
    for (size_t q = 0; q < ref.queries.size(); ++q) {
      EXPECT_EQ(rep.queries[q].positive_matches,
                ref.queries[q].positive_matches);
      EXPECT_EQ(rep.queries[q].negative_matches,
                ref.queries[q].negative_matches);
      EXPECT_EQ(rep.queries[q].timed_out, ref.queries[q].timed_out);
      EXPECT_EQ(rep.queries[q].overflowed, ref.queries[q].overflowed);
    }
    EXPECT_EQ(rep.match_stats, ref.match_stats);
  }
  EXPECT_EQ(group->host_graph(), bare->host_graph());
}

TEST(ReplicaGroupTest, QueryMutationsMirrorAndSurviveResync) {
  const workload::ScenarioRunner& r = UniformRunner();
  EngineOptions options;
  options.replica.followers = 1;
  // A lazy follower (poll_every past the stream) that checkpoints
  // often with pruning: by the time the follower polls, the segments
  // its cursor needs are gone — it must resync from the snapshot,
  // which must carry the mutated query set.
  options.replica.poll_every = 64;
  options.replica.checkpoint_every = 2;
  std::unique_ptr<Engine> group =
      MakeEngine("replicated(gamma)", r.graph(), options);
  ReplicationControl* rc = group->replication_control();

  ASSERT_GE(r.queries().size(), 2u);
  QueryId q0 = group->AddQuery(r.queries()[0]);
  for (size_t i = 0; i < 3; ++i) group->ProcessBatch(r.stream()[i]);
  QueryId q1 = group->AddQuery(r.queries()[1]);
  EXPECT_TRUE(group->RemoveQuery(q0));
  for (size_t i = 3; i < 6; ++i) group->ProcessBatch(r.stream()[i]);

  rc->DrainFollowers();
  ReplicationStats stats = rc->Stats();
  EXPECT_GE(stats.replicas[0].resyncs, 1u)
      << "follower never resynced; the generation-switch path is untested";
  const Engine* follower = rc->FollowerEngine(0);
  EXPECT_EQ(follower->QueryIds(), std::vector<QueryId>{q1});
  EXPECT_EQ(follower->host_graph(), group->host_graph());
}

TEST(ReplicaGroupTest, GenerationSwitchWhileFollowerMidTailConverges) {
  const workload::ScenarioRunner& r = UniformRunner();
  EngineOptions options;
  options.replica.followers = 2;
  options.replica.poll_every = 2;      // followers trail mid-tail
  options.replica.checkpoint_every = 3;  // generations switch mid-stream
  options.replica.segment_batches = 2;   // segments roll mid-stream too
  std::unique_ptr<Engine> group =
      MakeEngine("replicated(gamma)", r.graph(), options);
  for (const QueryGraph& q : r.queries()) group->AddQuery(q);
  ReplicationControl* rc = group->replication_control();

  std::unique_ptr<Engine> bare = FreshEngine(r, "gamma");
  for (const UpdateBatch& batch : r.stream()) {
    group->ProcessBatch(batch);
    bare->ProcessBatch(batch);
  }
  rc->DrainFollowers();
  ReplicationStats stats = rc->Stats();
  for (const ReplicaStats& rs : stats.replicas) {
    // Applied + resync coverage must account for every batch exactly
    // once: applied_batches < leader_batches iff a resync jumped the
    // cursor, and lag is zero after the drain either way.
    EXPECT_EQ(rs.lag_batches, 0u);
    EXPECT_EQ(rs.lag_updates, 0u);
  }
  for (size_t i = 0; i < rc->NumFollowers(); ++i) {
    EXPECT_EQ(rc->FollowerEngine(i)->host_graph(), bare->host_graph())
        << "replica " << i;
  }
}

TEST(ReplicaGroupTest, KillLeaderRefusesBatchesUntilFailover) {
  const workload::ScenarioRunner& r = SmokeRunner();
  std::unique_ptr<Engine> group =
      FreshEngine(r, "replicated(gamma, followers=2)");
  ReplicationControl* rc = group->replication_control();
  for (size_t i = 0; i < 2; ++i) group->ProcessBatch(r.stream()[i]);

  rc->KillLeader();
  EXPECT_TRUE(rc->LeaderDead());
  EXPECT_DEATH(group->ProcessBatch(r.stream()[2]), "killed replica group");

  EXPECT_TRUE(rc->Failover());
  EXPECT_FALSE(rc->LeaderDead());
  EXPECT_EQ(rc->NumFollowers(), 1u);  // the winner was promoted away
  ReplicationStats stats = rc->Stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GT(stats.last_failover_seconds, 0.0);
  group->ProcessBatch(r.stream()[2]);  // the group serves again
}

// ------------------------------------- failover == uninterrupted replay

struct FailoverCase {
  const char* scenario;
  const char* inner;
  /// Bit-identical per-query match *vectors* (order included); false
  /// for "multi" (fused-launch emission order after a snapshot-based
  /// promotion differs legitimately — multisets must still match).
  bool bitwise;
};

class FailoverParityTest : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(FailoverParityTest, FailoverRunMatchesUnreplicatedRun) {
  const FailoverCase& param = GetParam();
  workload::ScenarioRunner runner(*workload::FindScenario(param.scenario),
                                  workload::kDefaultScenarioSeed);
  const std::vector<UpdateBatch>& stream = runner.stream();
  const size_t kill = stream.size() / 2;
  ASSERT_GE(kill, 1u);

  // The unreplicated reference nobody killed.
  std::unique_ptr<Engine> cold = FreshEngine(runner, param.inner);
  std::vector<BatchReport> cold_reports;
  for (const UpdateBatch& batch : stream) {
    cold_reports.push_back(cold->ProcessBatch(batch));
  }

  // The replica group: apply the prefix, kill the leader, fail over,
  // finish the stream on the promoted follower.
  EngineOptions options;
  options.replica.checkpoint_every = 2;  // snapshot supersession + tails
  std::unique_ptr<Engine> group = MakeEngine(
      "replicated(" + std::string(param.inner) + ", followers=2)",
      runner.graph(), options);
  for (const QueryGraph& q : runner.queries()) group->AddQuery(q);
  ReplicationControl* rc = group->replication_control();

  auto check = [&](size_t i, const BatchReport& got) {
    const BatchReport& ref = cold_reports[i];
    ASSERT_EQ(got.queries.size(), ref.queries.size()) << "batch " << i;
    for (size_t q = 0; q < ref.queries.size(); ++q) {
      const QueryReport& gq = got.queries[q];
      const QueryReport& rq = ref.queries[q];
      ASSERT_EQ(gq.id, rq.id) << "batch " << i;
      EXPECT_EQ(gq.num_positive, rq.num_positive) << "batch " << i;
      EXPECT_EQ(gq.num_negative, rq.num_negative) << "batch " << i;
      EXPECT_EQ(gq.timed_out, rq.timed_out) << "batch " << i;
      EXPECT_EQ(gq.overflowed, rq.overflowed) << "batch " << i;
      if (param.bitwise) {
        EXPECT_EQ(gq.positive_matches, rq.positive_matches)
            << "batch " << i << " query " << q;
        EXPECT_EQ(gq.negative_matches, rq.negative_matches)
            << "batch " << i << " query " << q;
      } else {
        EXPECT_EQ(CanonicalKeys(gq.positive_matches),
                  CanonicalKeys(rq.positive_matches))
            << "batch " << i << " query " << q;
        EXPECT_EQ(CanonicalKeys(gq.negative_matches),
                  CanonicalKeys(rq.negative_matches))
            << "batch " << i << " query " << q;
      }
    }
  };

  for (size_t i = 0; i < kill; ++i) check(i, group->ProcessBatch(stream[i]));
  rc->KillLeader();
  ASSERT_TRUE(rc->Failover());
  for (size_t i = kill; i < stream.size(); ++i) {
    check(i, group->ProcessBatch(stream[i]));
  }
  EXPECT_EQ(group->host_graph(), cold->host_graph());

  // The surviving follower rode the failover's generation switch (or
  // resynced across it) and still converges.
  rc->DrainFollowers();
  ASSERT_EQ(rc->NumFollowers(), 1u);
  EXPECT_EQ(rc->FollowerEngine(0)->host_graph(), cold->host_graph());
  EXPECT_EQ(rc->Stats().failovers, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndScenarios, FailoverParityTest,
    ::testing::Values(FailoverCase{"smoke", "gamma", true},
                      FailoverCase{"smoke", "tf", true},
                      FailoverCase{"smoke", "multi", false},
                      FailoverCase{"smoke", "sharded(gamma, shards=2)", true},
                      FailoverCase{"churn", "gamma", true},
                      FailoverCase{"churn", "tf", true},
                      FailoverCase{"churn", "multi", false},
                      FailoverCase{"churn", "sharded(gamma, shards=2)", true}),
    [](const ::testing::TestParamInfo<FailoverCase>& info) {
      std::string name =
          std::string(info.param.scenario) + "_" + info.param.inner;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------------- torn write at the kill

TEST(ReplicaFailoverTest, TornFinalWriteLosesOnlyTheUnackedBatch) {
  const workload::ScenarioRunner& r = UniformRunner();
  EngineOptions options;
  options.replica.dir = TempDir("replica_torn");
  options.replica.followers = 2;
  options.replica.poll_every = 64;  // followers stay behind the tear
  std::unique_ptr<Engine> group =
      MakeEngine("replicated(gamma)", r.graph(), options);
  for (const QueryGraph& q : r.queries()) group->AddQuery(q);
  ReplicationControl* rc = group->replication_control();

  const size_t kill = 4;
  for (size_t i = 0; i < kill; ++i) group->ProcessBatch(r.stream()[i]);
  rc->KillLeader();

  // The crash tore the final append: its last bytes never hit disk.
  persist::Manifest m = persist::ReadManifest(options.replica.dir);
  ASSERT_FALSE(m.wal.empty());
  std::string seg = options.replica.dir + "/" + m.wal.back().file;
  std::string bytes = ReadFileBytes(seg);
  WriteFileBytes(seg, bytes.substr(0, bytes.size() - 3));

  ASSERT_TRUE(rc->Failover());
  // The promoted leader recovered to the last durable batch: the torn
  // batch was never acknowledged, so re-feeding it (what an upstream
  // producer does on a non-ack) converges with the uninterrupted run.
  std::unique_ptr<Engine> bare = FreshEngine(r, "gamma");
  for (size_t i = 0; i < kill; ++i) bare->ProcessBatch(r.stream()[i]);
  EXPECT_NE(group->host_graph(), bare->host_graph());
  group->ProcessBatch(r.stream()[kill - 1]);
  EXPECT_EQ(group->host_graph(), bare->host_graph());
}

// ----------------------------------------------------------- drill API

TEST(FailoverScenarioTest, DrillReportsZeroLossAndBoundedLag) {
  FailoverOutcome outcome = RunFailoverScenario(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed,
      "gamma", 2);
  EXPECT_TRUE(outcome.identical) << outcome.detail;
  EXPECT_TRUE(outcome.lag_bounded) << outcome.detail;
  EXPECT_EQ(outcome.killed_at, 2u);
  EXPECT_EQ(outcome.stats.failovers, 1u);
  EXPECT_GT(outcome.stats.last_failover_seconds, 0.0);
  EXPECT_EQ(outcome.prefix.batches.size() + outcome.tail.batches.size(),
            outcome.cold.batches.size());
  // The replica rows rode into the scenario reports.
  EXPECT_FALSE(outcome.tail.replicas.empty());
  EXPECT_GT(outcome.prefix.shipped_batches, 0u);
}

TEST(FailoverScenarioTest, ExplicitReplicatedSpecIsAccepted) {
  FailoverOutcome outcome = RunFailoverScenario(
      *workload::FindScenario("smoke"), workload::kDefaultScenarioSeed,
      "replicated(gamma, followers=2, poll_every=2)", 3);
  EXPECT_TRUE(outcome.identical) << outcome.detail;
  EXPECT_EQ(outcome.lag_bound, 2u);  // the spec key, not the defaults
}

// ------------------------------------------------------- observability

#if BDSM_OBS
/// Mirrors tests/obs_test.cpp for the replica surface: `replica.*`
/// counters/gauges are deterministic across same-seed runs, follower
/// ship/apply spans carry replica ids on the critical-path clock, and
/// the span structure is digest-stable (docs/OBSERVABILITY.md).
class ReplicaObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }
  static void ResetAll() {
    obs::SetEnabled(false);
    obs::TraceRecorder::Instance().SetEnabled(false);
    obs::MetricsRegistry::Instance().Reset();
    obs::TraceRecorder::Instance().Reset();
  }
  /// Smoke through a 2-follower group (runner drains at end of
  /// stream), returning the registry snapshot.
  static obs::MetricsSnapshot RunReplicatedSmoke() {
    workload::ScenarioRunner runner(*workload::FindScenario("smoke"),
                                    workload::kDefaultScenarioSeed);
    runner.Run("replicated(gamma, followers=2, poll_every=2)",
               EngineOptions{});
    return obs::MetricsRegistry::Instance().Snapshot();
  }
  /// The `*_us` measured-time filter of docs/OBSERVABILITY.md: what is
  /// left must be bit-identical across same-seed runs.
  static std::vector<std::pair<std::string, uint64_t>> Deterministic(
      const obs::MetricsSnapshot& snap) {
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto& [name, value] : snap.counters) {
      if (name.size() >= 3 &&
          name.compare(name.size() - 3, 3, "_us") == 0) {
        continue;
      }
      out.emplace_back(name, value);
    }
    return out;
  }
};

TEST_F(ReplicaObsTest, ReplicaCountersDeterministicAcrossRuns) {
  obs::SetEnabled(true);
  obs::MetricsSnapshot first = RunReplicatedSmoke();
  // 3 smoke batches x 2 followers, shipped and (post-drain) applied.
  EXPECT_EQ(first.CounterValue("replica.shipped_batches"), 6u);
  EXPECT_EQ(first.CounterValue("replica.applied_batches"), 6u);
  EXPECT_GT(first.CounterValue("replica.shipped_bytes"), 0u);
  EXPECT_GT(first.CounterValue("replica.applied_ops"), 0u);
  // The staleness gauges read zero after the runner's drain.
  EXPECT_EQ(first.GaugeValue("replica.lag_batches"), 0);
  EXPECT_EQ(first.GaugeValue("replica.lag_updates"), 0);

  obs::MetricsRegistry::Instance().Reset();
  obs::MetricsSnapshot second = RunReplicatedSmoke();
  EXPECT_EQ(Deterministic(first), Deterministic(second));
  EXPECT_FALSE(Deterministic(first).empty());
}

TEST_F(ReplicaObsTest, FailoverPublishesCounterAndDurationHistogram) {
  obs::SetEnabled(true);
  RunFailoverScenario(*workload::FindScenario("smoke"),
                      workload::kDefaultScenarioSeed, "gamma", 2);
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap.CounterValue("replica.failovers"), 1u);
  EXPECT_EQ(snap.CounterValue("replica.leader_kills"), 1u);
  bool found = false;
  for (const obs::MetricsSnapshot::Hist& h : snap.histograms) {
    if (h.name == "replica.failover_us") {
      found = true;
      EXPECT_EQ(h.data.count, 1u);
    }
  }
  EXPECT_TRUE(found) << "no replica.failover_us duration histogram";
}

TEST_F(ReplicaObsTest, FollowerSpansTaggedAndStructurallyDeterministic) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Instance().SetEnabled(true);
  RunReplicatedSmoke();
  std::set<int32_t> ids;
  size_t ship = 0, apply = 0;
  for (const obs::TraceSpan& s : obs::TraceRecorder::Instance().Spans()) {
    if (s.replica < 0) continue;
    ids.insert(s.replica);
    if (s.name == "replica.ship") ++ship;
    if (s.name == "replica.apply") ++apply;
    EXPECT_EQ(s.domain, obs::Domain::kCriticalPath) << s.name;
  }
  EXPECT_EQ(ids, (std::set<int32_t>{0, 1}));
  EXPECT_EQ(ship, 6u);   // every shipped batch got a ship span...
  EXPECT_EQ(apply, 6u);  // ...tiled against its apply span
  const uint64_t digest1 = obs::TraceRecorder::Instance().StructuralDigest();
  EXPECT_NE(digest1, 0u);

  ResetAll();
  obs::SetEnabled(true);
  obs::TraceRecorder::Instance().SetEnabled(true);
  RunReplicatedSmoke();
  EXPECT_EQ(obs::TraceRecorder::Instance().StructuralDigest(), digest1);
}
#endif  // BDSM_OBS

}  // namespace
}  // namespace bdsm::replica
