/// Workload-layer tests: generator determinism (same seed => identical
/// stream) and replay validity for every stream kind, kind-specific
/// shape properties (temporal expiry, churn deletion-heaviness, burst
/// spikes, hotspot/power-law concentration), and the binary trace
/// format (record/replay round-trip exact, golden byte-identity,
/// corrupt-header rejection).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "graph/graph_generator.hpp"
#include "workload/stream_gen.hpp"
#include "workload/trace.hpp"

namespace bdsm::workload {
namespace {

LabeledGraph TestGraph() {
  // Big enough that deletions never drain it under churn.
  return GenerateUniformGraph(400, 2400, 3, 2, 99);
}

StreamSpec SpecFor(StreamKind kind) {
  StreamSpec s;
  s.kind = kind;
  s.num_batches = 6;
  s.ops_per_batch = 80;
  s.elabels = 2;
  s.window_batches = 2;
  s.burst_period = 3;
  return s;
}

std::string ReadFileBytes(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  fclose(f);
  return bytes;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(StreamKindTest, NamesRoundTrip) {
  for (StreamKind k : AllStreamKinds()) {
    StreamKind back;
    ASSERT_TRUE(StreamKindFromName(StreamKindName(k), &back));
    EXPECT_EQ(back, k);
  }
  StreamKind unused;
  EXPECT_FALSE(StreamKindFromName("nope", &unused));
}

class StreamGeneratorTest : public ::testing::TestWithParam<StreamKind> {};

TEST_P(StreamGeneratorTest, DeterministicForSeed) {
  LabeledGraph g = TestGraph();
  StreamSpec spec = SpecFor(GetParam());
  std::vector<UpdateBatch> a = StreamGenerator(spec, 42).Generate(g);
  std::vector<UpdateBatch> b = StreamGenerator(spec, 42).Generate(g);
  std::vector<UpdateBatch> c = StreamGenerator(spec, 43).Generate(g);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_P(StreamGeneratorTest, EveryOpEffectiveOnReplay) {
  // The replay invariant: applied in order to a fresh copy of the
  // initial graph, every single op takes effect (no conflicting or
  // no-op updates survive generation).
  LabeledGraph g = TestGraph();
  StreamSpec spec = SpecFor(GetParam());
  std::vector<UpdateBatch> stream = StreamGenerator(spec, 7).Generate(g);
  ASSERT_EQ(stream.size(), spec.num_batches);
  size_t total_ops = 0;
  for (const UpdateBatch& batch : stream) {
    EXPECT_FALSE(batch.empty());
    size_t applied = ApplyBatch(&g, batch);
    EXPECT_EQ(applied, batch.size());
    total_ops += batch.size();
  }
  EXPECT_GT(total_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StreamGeneratorTest, ::testing::ValuesIn(AllStreamKinds()),
    [](const ::testing::TestParamInfo<StreamKind>& info) {
      return StreamKindName(info.param);
    });

TEST(StreamGeneratorShapeTest, TemporalWindowExpiresInserts) {
  LabeledGraph g = TestGraph();
  StreamSpec spec = SpecFor(StreamKind::kTemporal);
  std::vector<UpdateBatch> stream = StreamGenerator(spec, 5).Generate(g);
  // Everything inserted in batch 0 must be deleted by the expiry batch
  // (index == window): temporal has no other deletion source and the
  // inserts avoid existing edges.
  std::set<Edge> inserted0;
  for (const UpdateOp& op : stream[0]) {
    ASSERT_TRUE(op.is_insert);
    inserted0.insert(Edge(op.u, op.v));
  }
  std::set<Edge> deleted_at_window;
  for (const UpdateOp& op : stream[spec.window_batches]) {
    if (!op.is_insert) deleted_at_window.insert(Edge(op.u, op.v));
  }
  for (const Edge& e : inserted0) {
    EXPECT_TRUE(deleted_at_window.count(e))
        << "edge (" << e.u << "," << e.v << ") did not expire";
  }
  // Batches before the window has filled contain no deletions at all.
  for (size_t b = 0; b < spec.window_batches; ++b) {
    for (const UpdateOp& op : stream[b]) EXPECT_TRUE(op.is_insert);
  }
}

TEST(StreamGeneratorShapeTest, ChurnIsDeletionHeavy) {
  LabeledGraph g = TestGraph();
  std::vector<UpdateBatch> stream =
      StreamGenerator(SpecFor(StreamKind::kChurn), 5).Generate(g);
  size_t ins = 0, del = 0;
  for (const UpdateBatch& batch : stream) {
    for (const UpdateOp& op : batch) (op.is_insert ? ins : del)++;
  }
  EXPECT_GT(del, ins);
}

TEST(StreamGeneratorShapeTest, BurstBatchesSpike) {
  LabeledGraph g = TestGraph();
  StreamSpec spec = SpecFor(StreamKind::kBurst);
  spec.burst_factor = 5.0;
  std::vector<UpdateBatch> stream = StreamGenerator(spec, 5).Generate(g);
  size_t largest = 0, smallest = SIZE_MAX;
  for (const UpdateBatch& b : stream) {
    largest = std::max(largest, b.size());
    smallest = std::min(smallest, b.size());
  }
  EXPECT_GE(largest, smallest * 3);
}

// Fraction of op endpoints landing on the most popular 5% of vertices.
double TopEndpointConcentration(const std::vector<UpdateBatch>& stream,
                                size_t num_vertices) {
  std::map<VertexId, size_t> freq;
  size_t total = 0;
  for (const UpdateBatch& batch : stream) {
    for (const UpdateOp& op : batch) {
      ++freq[op.u];
      ++freq[op.v];
      total += 2;
    }
  }
  std::vector<size_t> counts;
  for (const auto& [v, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  size_t top = std::max<size_t>(1, num_vertices / 20);
  size_t in_top = 0;
  for (size_t i = 0; i < std::min(top, counts.size()); ++i) {
    in_top += counts[i];
  }
  return static_cast<double>(in_top) / static_cast<double>(total);
}

TEST(StreamGeneratorShapeTest, HotspotAndPowerLawConcentrate) {
  LabeledGraph g = TestGraph();
  double uniform = TopEndpointConcentration(
      StreamGenerator(SpecFor(StreamKind::kUniform), 5).Generate(g),
      g.NumVertices());
  double hotspot = TopEndpointConcentration(
      StreamGenerator(SpecFor(StreamKind::kHotspot), 5).Generate(g),
      g.NumVertices());
  double powerlaw = TopEndpointConcentration(
      StreamGenerator(SpecFor(StreamKind::kPowerLaw), 5).Generate(g),
      g.NumVertices());
  EXPECT_GT(hotspot, uniform + 0.2);
  EXPECT_GT(powerlaw, uniform + 0.05);
}

TEST(TraceTest, RoundTripExact) {
  LabeledGraph g = TestGraph();
  std::vector<UpdateBatch> stream =
      StreamGenerator(SpecFor(StreamKind::kChurn), 21).Generate(g);
  TraceMeta meta{21, "churn-test"};
  std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(WriteTrace(path, meta, stream));
  TraceMeta back;
  auto replayed = ReadTrace(path, &back);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(back, meta);
  EXPECT_EQ(*replayed, stream);
}

TEST(TraceTest, EmptyAndUnlabeledRoundTrip) {
  // kNoLabel (0xffffffff) and empty batches survive the format.
  std::vector<UpdateBatch> stream = {
      {}, {UpdateOp{true, 0, 1, kNoLabel}, UpdateOp{false, 2, 3, 5}}};
  std::string path = TempPath("edgecases.trace");
  ASSERT_TRUE(WriteTrace(path, TraceMeta{0, ""}, stream));
  auto replayed = ReadTrace(path);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, stream);
}

TEST(TraceTest, GoldenTraceByteIdentical) {
  // Same seed => byte-identical trace artifact, generation included.
  LabeledGraph g = TestGraph();
  StreamSpec spec = SpecFor(StreamKind::kTemporal);
  std::string p1 = TempPath("golden1.trace");
  std::string p2 = TempPath("golden2.trace");
  ASSERT_TRUE(WriteTrace(p1, TraceMeta{77, "golden"},
                         StreamGenerator(spec, 77).Generate(g)));
  ASSERT_TRUE(WriteTrace(p2, TraceMeta{77, "golden"},
                         StreamGenerator(spec, 77).Generate(g)));
  std::string b1 = ReadFileBytes(p1), b2 = ReadFileBytes(p2);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
}

TEST(TraceTest, RejectsCorruptHeaders) {
  EXPECT_FALSE(ReadTrace(TempPath("does-not-exist.trace")).has_value());

  // Bad magic.
  std::string bad_magic = TempPath("badmagic.trace");
  FILE* f = fopen(bad_magic.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite("NOTATRACE-------", 1, 16, f);
  fclose(f);
  EXPECT_FALSE(ReadTrace(bad_magic).has_value());

  // Right magic, unsupported version.
  std::string bad_version = TempPath("badversion.trace");
  f = fopen(bad_version.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f);
  unsigned char v99[4] = {99, 0, 0, 0};
  fwrite(v99, 1, 4, f);
  fclose(f);
  EXPECT_FALSE(ReadTrace(bad_version).has_value());

  // Counts the file cannot hold (corrupt/hostile header) must be
  // rejected before anything tries to allocate for them.
  std::string huge_count = TempPath("hugecount.trace");
  ASSERT_TRUE(WriteTrace(huge_count, TraceMeta{1, "h"},
                         {{UpdateOp{true, 1, 2, 0}}}));
  std::string trace_bytes = ReadFileBytes(huge_count);
  for (int i = 0; i < 8; ++i) trace_bytes[24 + i] = '\xff';  // num_batches
  f = fopen(huge_count.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(trace_bytes.data(), 1, trace_bytes.size(), f);
  fclose(f);
  EXPECT_FALSE(ReadTrace(huge_count).has_value());

  // Valid trace truncated mid-body.
  std::vector<UpdateBatch> stream = {{UpdateOp{true, 1, 2, 0}},
                                     {UpdateOp{true, 3, 4, 0}}};
  std::string truncated = TempPath("truncated.trace");
  ASSERT_TRUE(WriteTrace(truncated, TraceMeta{1, "t"}, stream));
  std::string bytes = ReadFileBytes(truncated);
  f = fopen(truncated.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(bytes.data(), 1, bytes.size() - 5, f);
  fclose(f);
  EXPECT_FALSE(ReadTrace(truncated).has_value());
}

TEST(TraceTest, RecoverModeStopsAtLastGoodBatch) {
  // The WAL-tail contract (persist/wal.hpp): a torn final write is
  // recoverable wreckage, not corruption — recover mode serves every
  // complete batch and reports truncated() instead of !ok().
  std::vector<UpdateBatch> stream = {
      {UpdateOp{true, 1, 2, 0}},
      {UpdateOp{true, 3, 4, 0}, UpdateOp{false, 1, 2, 0}},
      {UpdateOp{true, 5, 6, 0}}};
  std::string path = TempPath("recover.trace");
  ASSERT_TRUE(WriteTrace(path, TraceMeta{9, "r"}, stream));
  const std::string bytes = ReadFileBytes(path);

  auto rewrite = [&](size_t keep) {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, keep, f);
    fclose(f);
  };
  auto drain = [](TraceReader* r) {
    std::vector<UpdateBatch> got;
    while (auto b = r->Next()) got.push_back(std::move(*b));
    return got;
  };
  TraceReader::Options recover;
  recover.recover_truncated = true;

  // Torn mid-op in the final batch: two good batches survive.
  rewrite(bytes.size() - 5);
  {
    TraceReader strict(path);
    ASSERT_TRUE(strict.ok());
    drain(&strict);
    EXPECT_FALSE(strict.ok());  // strict mode: corrupt

    TraceReader r(path, recover);
    ASSERT_TRUE(r.ok());
    std::vector<UpdateBatch> got = drain(&r);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.truncated());
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], stream[0]);
    EXPECT_EQ(got[1], stream[1]);
    EXPECT_EQ(r.read_batches(), 2u);
  }

  // Torn exactly on a batch boundary (the final batch's ops are gone
  // but its count survived): still two good batches.
  rewrite(bytes.size() - 13 - 4);  // 13-byte op + part of the count
  {
    TraceReader r(path, recover);
    EXPECT_EQ(drain(&r).size(), 2u);
    EXPECT_TRUE(r.truncated());
  }

  // Untouched file: recover mode is a no-op (all batches, clean end).
  rewrite(bytes.size());
  {
    TraceReader r(path, recover);
    EXPECT_EQ(drain(&r), stream);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.truncated());
  }

  // Crashed-writer shape: header batch count still the placeholder 0
  // (never patched by Close).  Strict mode sees an empty trace;
  // recover mode walks the bytes and finds all three batches.
  std::string unpatched = bytes;
  for (int i = 0; i < 8; ++i) unpatched[24 + i] = '\0';
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(unpatched.data(), 1, unpatched.size(), f);
    fclose(f);
    TraceReader strict(path);
    EXPECT_EQ(drain(&strict).size(), 0u);
    EXPECT_TRUE(strict.ok());

    TraceReader r(path, recover);
    EXPECT_EQ(drain(&r), stream);
    EXPECT_FALSE(r.truncated());  // every batch was durable
  }
}

TEST(TraceTest, IncrementalWriterMatchesOneShot) {
  LabeledGraph g = TestGraph();
  std::vector<UpdateBatch> stream =
      StreamGenerator(SpecFor(StreamKind::kUniform), 3).Generate(g);
  std::string p1 = TempPath("incremental.trace");
  std::string p2 = TempPath("oneshot.trace");
  TraceMeta meta{3, "inc"};
  {
    TraceWriter w(p1, meta);
    for (const UpdateBatch& b : stream) w.Append(b);
    w.Close();
    ASSERT_TRUE(w.ok());
  }
  ASSERT_TRUE(WriteTrace(p2, meta, stream));
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));

  TraceReader r(p1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.meta(), meta);
  EXPECT_EQ(r.num_batches(), stream.size());
  size_t i = 0;
  while (auto b = r.Next()) {
    EXPECT_EQ(*b, stream[i++]);
  }
  EXPECT_TRUE(r.ok());  // clean end-of-trace, not truncation
  EXPECT_EQ(i, stream.size());
}

TEST(DeriveSeedTest, StableAndDecorrelated) {
  EXPECT_EQ(DeriveSeed(1, 1), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 1), DeriveSeed(1, 2));
  EXPECT_NE(DeriveSeed(1, 1), DeriveSeed(2, 1));
}

}  // namespace
}  // namespace bdsm::workload
