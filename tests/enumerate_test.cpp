/// Oracle tests: the reference enumerator itself must be right (every
/// differential test leans on it).  Closed-form counts on canonical
/// shapes, seeded-search semantics, label handling, limits.
#include <gtest/gtest.h>

#include "baselines/enumerate.hpp"
#include "graph/graph_generator.hpp"

namespace bdsm {
namespace {

LabeledGraph CompleteGraph(size_t n, Label l = 0) {
  std::vector<Label> labels(n, l);
  LabeledGraph g(labels);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) g.InsertEdge(a, b);
  }
  return g;
}

QueryGraph TriangleQuery() {
  QueryGraph q({0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

TEST(EnumerateTest, TrianglesInK4) {
  // K4 has 4 triangles x 3! automorphic assignments = 24 bijections.
  LabeledGraph g = CompleteGraph(4);
  EXPECT_EQ(EnumerateAllMatches(g, TriangleQuery()).size(), 24u);
}

TEST(EnumerateTest, EdgesInKn) {
  // Single-edge query in K_n: n*(n-1) ordered assignments.
  QueryGraph q({0, 0});
  q.AddEdge(0, 1);
  for (size_t n : {3, 5, 8}) {
    LabeledGraph g = CompleteGraph(n);
    EXPECT_EQ(EnumerateAllMatches(g, q).size(), n * (n - 1)) << n;
  }
}

TEST(EnumerateTest, PathsInCycle) {
  // 3-path (2 edges) in C5, all labels equal: each of the 5 center
  // vertices gives 2 ordered end assignments = 10 bijections.
  std::vector<Label> labels(5, 0);
  LabeledGraph g(labels);
  for (VertexId i = 0; i < 5; ++i) {
    g.InsertEdge(i, static_cast<VertexId>((i + 1) % 5));
  }
  QueryGraph q({0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  EXPECT_EQ(EnumerateAllMatches(g, q).size(), 10u);
}

TEST(EnumerateTest, LabelsPrune) {
  LabeledGraph g({0, 1, 0, 1});
  g.InsertEdge(0, 1);
  g.InsertEdge(1, 2);
  g.InsertEdge(2, 3);
  QueryGraph q({0, 1});
  q.AddEdge(0, 1);
  // Matches: (0,1), (2,1), (2,3) as (label0 -> label1) assignments.
  EXPECT_EQ(EnumerateAllMatches(g, q).size(), 3u);
}

TEST(EnumerateTest, EdgeLabelsPrune) {
  LabeledGraph g({0, 0, 0});
  g.InsertEdge(0, 1, 5);
  g.InsertEdge(1, 2, 6);
  QueryGraph q({0, 0});
  q.AddEdge(0, 1, 5);
  auto ms = EnumerateAllMatches(g, q);
  ASSERT_EQ(ms.size(), 2u);  // both orientations of the 5-labeled edge
  for (const MatchRecord& m : ms) {
    EXPECT_TRUE((m.m[0] == 0 && m.m[1] == 1) ||
                (m.m[0] == 1 && m.m[1] == 0));
  }
}

TEST(EnumerateTest, LimitStopsEarly) {
  LabeledGraph g = CompleteGraph(8);
  auto ms = EnumerateAllMatches(g, TriangleQuery(), 10);
  EXPECT_EQ(ms.size(), 10u);
}

TEST(EnumerateTest, SeededRequiresSeedEdge) {
  LabeledGraph g = CompleteGraph(4);
  QueryGraph q = TriangleQuery();
  // Valid seed: (0, 1) is an edge.
  auto ms = EnumerateSeededMatches(g, q, 0, 1, 0, 1);
  EXPECT_EQ(ms.size(), 2u);  // third vertex: 2 or 3
  for (const MatchRecord& m : ms) {
    EXPECT_EQ(m.m[0], 0u);
    EXPECT_EQ(m.m[1], 1u);
  }
  // Absent data edge: no matches even though labels agree.
  LabeledGraph sparse({0, 0, 0});
  sparse.InsertEdge(0, 1);
  EXPECT_TRUE(EnumerateSeededMatches(sparse, q, 0, 1, 0, 2).empty());
}

TEST(EnumerateTest, InjectivityEnforced) {
  // A 2-vertex data graph cannot host a triangle.
  LabeledGraph g({0, 0});
  g.InsertEdge(0, 1);
  EXPECT_TRUE(EnumerateAllMatches(g, TriangleQuery()).empty());
}

}  // namespace
}  // namespace bdsm
