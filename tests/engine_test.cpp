/// Unified-engine-layer tests: registry round-trip over every engine
/// name, cross-engine result parity on one identical batch (GAMMA's net
/// matches == each CSM baseline's NetEffect), streaming-sink vs
/// materialized equivalence, dynamic AddQuery/RemoveQuery, and the
/// unified truncation reporting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/enumerate.hpp"
#include "core/engine.hpp"
#include "core/match_store.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

const char* const kAllEngines[] = {"gamma", "multi", "tf", "sym",
                                   "rf",    "cl",    "gf"};

QueryGraph TriangleQuery() {
  QueryGraph q({0, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

QueryGraph PathQuery() {
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

/// Signed canonical keys of a report's net effect.  Device engines
/// already emit the batch delta; CSM engines emit the raw sequential
/// stream, which NetDelta reduces to the same delta.
std::vector<std::string> NetKeys(const QueryReport& qr) {
  std::vector<std::string> keys;
  for (const MatchRecord& m : NetDelta(qr)) keys.push_back(m.Key());
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(EngineRegistryTest, AllNamesConstructAndRoundTrip) {
  LabeledGraph g = GenerateUniformGraph(60, 150, 2, 1, 11);
  for (const char* name : kAllEngines) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    ASSERT_NE(engine, nullptr);
    EXPECT_STREQ(engine->Name(), name);
    EXPECT_EQ(engine->NumQueries(), 0u);
    EXPECT_EQ(engine->host_graph().NumEdges(), g.NumEdges());

    QueryId a = engine->AddQuery(TriangleQuery());
    QueryId b = engine->AddQuery(PathQuery());
    EXPECT_NE(a, b);
    EXPECT_EQ(engine->QueryIds(), (std::vector<QueryId>{a, b}));

    EXPECT_TRUE(engine->RemoveQuery(a));
    EXPECT_FALSE(engine->RemoveQuery(a));  // ids are never reused
    EXPECT_EQ(engine->QueryIds(), (std::vector<QueryId>{b}));

    QueryId c = engine->AddQuery(TriangleQuery());
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);
    EXPECT_EQ(engine->NumQueries(), 2u);
  }
}

TEST(EngineRegistryTest, AliasesAndCaseInsensitivity) {
  LabeledGraph g = GenerateUniformGraph(40, 90, 2, 1, 12);
  EXPECT_STREQ(MakeEngine("TF", g)->Name(), "tf");
  EXPECT_STREQ(MakeEngine("turboflux", g)->Name(), "tf");
  EXPECT_STREQ(MakeEngine("RapidFlow", g)->Name(), "rf");
  EXPECT_STREQ(MakeEngine("GAMMA", g)->Name(), "gamma");
  EXPECT_STREQ(MakeEngine("multigamma", g)->Name(), "multi");
  EXPECT_TRUE(EngineRegistry::Instance().Has("sym"));
  EXPECT_FALSE(EngineRegistry::Instance().Has("no-such-engine"));

  std::vector<std::string> names = EngineNames();
  for (const char* name : kAllEngines) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(EngineRegistryTest, DescribeSplitsClockDomains) {
  LabeledGraph g = GenerateUniformGraph(40, 90, 2, 1, 13);
  for (const char* name : {"gamma", "multi"}) {
    EngineInfo info = MakeEngine(name, g)->Describe();
    EXPECT_EQ(info.clock, ClockDomain::kModeledDevice) << name;
    EXPECT_EQ(info.canonical_spec, name);
    EXPECT_EQ(info.num_shards, 1u);
    EXPECT_TRUE(info.supports_remove_query);
  }
  for (const char* name : {"tf", "sym", "rf", "cl", "gf"}) {
    EngineInfo info = MakeEngine(name, g)->Describe();
    EXPECT_EQ(info.clock, ClockDomain::kHostWall) << name;
    EXPECT_EQ(info.canonical_spec, name);
  }
  // Aliases canonicalize in the provenance spec.
  EXPECT_EQ(MakeEngine("TurboFlux", g)->Describe().canonical_spec, "tf");
  EXPECT_STREQ(ClockDomainName(ClockDomain::kModeledDevice),
               "modeled-device");
  EXPECT_STREQ(ClockDomainName(ClockDomain::kCriticalPath),
               "critical-path");
  EXPECT_STREQ(ClockDomainName(ClockDomain::kHostWall), "host-wall");
}

TEST(EngineRegistryTest, CustomRegistration) {
  LabeledGraph g = GenerateUniformGraph(40, 90, 2, 1, 14);
  EngineRegistry::Instance().Register(
      "gamma-aggressive",
      [](const EngineSpec&, const LabeledGraph& graph,
         const EngineOptions& options) {
        EngineOptions tuned = options;
        tuned.gamma.aggressive_coalescing = true;
        return EngineRegistry::Instance().Make("gamma", graph, tuned);
      });
  auto engine = MakeEngine("gamma-aggressive", g);
  EXPECT_STREQ(engine->Name(), "gamma");
  // Provenance names the spec that rebuilds this engine — the
  // delegating factory's nested Make("gamma") stamp must not leak.
  EXPECT_EQ(engine->Describe().canonical_spec, "gamma-aggressive");
  EXPECT_TRUE(EngineRegistry::Instance().Has("gamma-aggressive"));
  // The shorthand registration accepts no inline options or children.
  EXPECT_FALSE(EngineRegistry::Instance().Has("gamma-aggressive(x=1)"));
  EXPECT_FALSE(EngineRegistry::Instance().Has("gamma-aggressive(gamma)"));
}

// Acceptance bar: one identical fixed-seed batch through every engine
// via the uniform interface; GAMMA's net matches equal each baseline's
// NetEffect, per query.
TEST(EngineParityTest, IdenticalBatchAcrossAllEngines) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 3, 1, 2024);
  UpdateStreamGenerator gen(2025);
  UpdateBatch batch = gen.MakeMixed(g, 30, 2, 1, 0);

  std::vector<QueryGraph> queries = {TriangleQuery(), PathQuery()};

  // Reference: the GAMMA engine.
  auto reference = MakeEngine("gamma", g);
  std::vector<QueryId> ref_ids;
  for (const QueryGraph& q : queries) ref_ids.push_back(reference->AddQuery(q));
  BatchReport ref = reference->ProcessBatch(batch);

  std::vector<std::vector<std::string>> want;
  for (QueryId id : ref_ids) want.push_back(NetKeys(*ref.Find(id)));
  ASSERT_FALSE(want[0].empty());  // the workload must exercise matching

  for (const char* name : kAllEngines) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    std::vector<QueryId> ids;
    for (const QueryGraph& q : queries) ids.push_back(engine->AddQuery(q));
    BatchReport report = engine->ProcessBatch(batch);
    ASSERT_EQ(report.queries.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryReport* qr = report.Find(ids[qi]);
      ASSERT_NE(qr, nullptr);
      EXPECT_EQ(NetKeys(*qr), want[qi]) << "query " << qi;
    }
  }
}

// Streaming-sink delivery must produce the same match multiset as the
// materialized report vectors, for every engine family.
TEST(EngineSinkTest, SinkEqualsMaterialized) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 31);
  UpdateStreamGenerator gen(32);
  UpdateBatch batch = gen.MakeMixed(g, 25, 2, 1, 0);

  for (const char* name : kAllEngines) {
    SCOPED_TRACE(name);
    auto materialized = MakeEngine(name, g);
    auto streaming = MakeEngine(name, g);
    QueryId mq = materialized->AddQuery(TriangleQuery());
    QueryId sq = streaming->AddQuery(TriangleQuery());

    BatchReport mr = materialized->ProcessBatch(batch);

    CollectingSink sink;
    BatchOptions bo;
    bo.sink = &sink;
    bo.materialize = false;
    BatchReport sr = streaming->ProcessBatch(batch, bo);

    const QueryReport* mqr = mr.Find(mq);
    const QueryReport* sqr = sr.Find(sq);
    ASSERT_NE(mqr, nullptr);
    ASSERT_NE(sqr, nullptr);

    // Counts survive non-materialization; vectors do not.
    EXPECT_EQ(sqr->num_positive, mqr->num_positive);
    EXPECT_EQ(sqr->num_negative, mqr->num_negative);
    EXPECT_TRUE(sqr->positive_matches.empty());
    EXPECT_TRUE(sqr->negative_matches.empty());

    // Same multiset through the sink as in the materialized vectors.
    std::vector<MatchRecord> all = mqr->positive_matches;
    all.insert(all.end(), mqr->negative_matches.begin(),
               mqr->negative_matches.end());
    std::vector<std::string> want = CanonicalKeys(all);
    std::vector<std::string> got = CanonicalKeys(sink.MatchesFor(sq));
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

// Delta ordering end-to-end: a MatchStore-backed sink (which aborts on
// out-of-order deltas) maintained purely from streamed matches must
// arrive at exactly the oracle's post-batch match set — for the device
// family (batch-level delta) and the CSM family (raw interleaved
// stream, whose emission order DeliverDirect preserves).
TEST(EngineSinkTest, StoreSinkTracksOracleAcrossFamilies) {
  LabeledGraph g = GenerateUniformGraph(80, 260, 2, 1, 35);
  QueryGraph wedge({1, 0, 1});
  wedge.AddEdge(0, 1);
  wedge.AddEdge(1, 2);
  UpdateStreamGenerator gen(36);
  UpdateBatch batch = gen.MakeMixed(g, 30, 2, 1, 0);

  struct StoreSink final : ResultSink {
    MatchStore store;
    void OnMatch(QueryId, const MatchRecord& m) override {
      store.ApplyDelta(m);
    }
  };

  for (const char* name : {"gamma", "multi", "gf", "rf"}) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    QueryId q = engine->AddQuery(wedge);

    StoreSink sink;
    for (MatchRecord m : EnumerateAllMatches(g, wedge)) {
      m.positive = true;
      sink.OnMatch(q, m);
    }

    BatchOptions bo;
    bo.sink = &sink;
    bo.materialize = false;
    engine->ProcessBatch(batch, bo);

    std::vector<std::string> got = CanonicalKeys(sink.store.Snapshot());
    std::vector<MatchRecord> after_ms =
        EnumerateAllMatches(engine->host_graph(), wedge);
    for (MatchRecord& m : after_ms) m.positive = true;
    std::vector<std::string> want = CanonicalKeys(after_ms);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

// Sink alongside materialization: both delivery paths active at once.
TEST(EngineSinkTest, SinkAndMaterializeTogether) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 33);
  UpdateStreamGenerator gen(34);
  UpdateBatch batch = gen.MakeInsertions(g, 20, 0);

  auto engine = MakeEngine("multi", g);
  QueryId q1 = engine->AddQuery(TriangleQuery());
  QueryId q2 = engine->AddQuery(PathQuery());

  CollectingSink sink;
  BatchOptions bo;
  bo.sink = &sink;  // materialize stays true
  BatchReport report = engine->ProcessBatch(batch, bo);

  for (QueryId q : {q1, q2}) {
    const QueryReport* qr = report.Find(q);
    ASSERT_NE(qr, nullptr);
    EXPECT_EQ(qr->positive_matches.size() + qr->negative_matches.size(),
              sink.MatchesFor(q).size());
    EXPECT_EQ(qr->TotalMatches(), sink.MatchesFor(q).size());
  }
}

// Queries registered/removed mid-stream: a query added after batch 1
// sees exactly what a fresh engine over the evolved graph sees.
TEST(EngineDynamicTest, AddQueryMidStream) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 41);
  UpdateStreamGenerator gen(42);
  UpdateBatch batch1 = gen.MakeMixed(g, 25, 2, 1, 0);

  for (const char* name : {"gamma", "multi", "rf"}) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    engine->AddQuery(TriangleQuery());
    engine->ProcessBatch(batch1);

    // Register a second pattern against the evolved graph.
    QueryId late = engine->AddQuery(PathQuery());
    UpdateBatch batch2 =
        SanitizeBatch(engine->host_graph(),
                      gen.MakeMixed(engine->host_graph(), 25, 2, 1, 0));
    BatchReport got = engine->ProcessBatch(batch2);

    // host_graph() already includes batch2; rebuild the pre-batch state.
    LabeledGraph before = g;
    ApplyBatch(&before, SanitizeBatch(g, batch1));
    auto witness = MakeEngine(name, before);
    QueryId wq = witness->AddQuery(PathQuery());
    BatchReport want = witness->ProcessBatch(batch2);

    EXPECT_EQ(NetKeys(*got.Find(late)), NetKeys(*want.Find(wq)));
  }
}

TEST(EngineDynamicTest, RemoveQueryDropsItsResults) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 43);
  UpdateStreamGenerator gen(44);
  UpdateBatch batch = gen.MakeMixed(g, 25, 2, 1, 0);

  for (const char* name : kAllEngines) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    QueryId keep = engine->AddQuery(TriangleQuery());
    QueryId drop = engine->AddQuery(PathQuery());
    ASSERT_TRUE(engine->RemoveQuery(drop));

    BatchReport report = engine->ProcessBatch(batch);
    EXPECT_EQ(report.queries.size(), 1u);
    EXPECT_NE(report.Find(keep), nullptr);
    EXPECT_EQ(report.Find(drop), nullptr);

    // The survivor's results equal a never-shared engine's.
    auto witness = MakeEngine(name, g);
    QueryId wq = witness->AddQuery(TriangleQuery());
    BatchReport want = witness->ProcessBatch(batch);
    EXPECT_EQ(NetKeys(*report.Find(keep)), NetKeys(*want.Find(wq)));
  }
}

// The unified truncation story: a tiny result cap reports Truncated()
// through the same flag set for both engine families.
TEST(EngineReportTest, TruncationIsUnified) {
  LabeledGraph g = GenerateUniformGraph(150, 600, 2, 1, 51);
  UpdateStreamGenerator gen(52);
  UpdateBatch batch = gen.MakeInsertions(g, 120, 0);

  EngineOptions tiny;
  tiny.gamma.result_cap = 1;
  tiny.csm_result_cap = 1;

  // A 2-label wedge so the 2-label graph actually produces matches.
  QueryGraph wedge({1, 0, 1});
  wedge.AddEdge(0, 1);
  wedge.AddEdge(1, 2);

  for (const char* name : {"gamma", "multi", "gf"}) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g, tiny);
    QueryId q = engine->AddQuery(wedge);
    BatchReport report = engine->ProcessBatch(batch);
    const QueryReport* qr = report.Find(q);
    ASSERT_NE(qr, nullptr);
    EXPECT_TRUE(qr->Truncated());
    EXPECT_TRUE(report.Truncated());
  }
}

TEST(EngineReportTest, EmptyEngineStillAdvancesGraph) {
  LabeledGraph g = GenerateUniformGraph(60, 150, 2, 1, 53);
  UpdateStreamGenerator gen(54);
  UpdateBatch batch = gen.MakeInsertions(g, 10, 0);
  for (const char* name : kAllEngines) {
    SCOPED_TRACE(name);
    auto engine = MakeEngine(name, g);
    BatchReport report = engine->ProcessBatch(batch);
    EXPECT_TRUE(report.queries.empty());
    EXPECT_EQ(report.TotalMatches(), 0u);
    EXPECT_EQ(engine->host_graph().NumEdges(), g.NumEdges() + 10);
  }
}

}  // namespace
}  // namespace bdsm
