"""Every JSON row bench_scenarios emits — engine summary, per-tenant,
per-replica — carries the same provenance header fields: spec,
scenario, seed, latency_metric (the row's clock domain).

Needs the built binary; gated on BDSM_BENCH_SCENARIOS (the
`python_tools` ctest entry sets it to the build-tree path, CI exports
it explicitly; plain `python3 -m unittest` without a build skips)."""
import json
import os
import pathlib
import subprocess
import tempfile
import unittest

BIN = os.environ.get("BDSM_BENCH_SCENARIOS")
PROVENANCE_FIELDS = ("spec", "scenario", "seed", "latency_metric")


@unittest.skipUnless(BIN and pathlib.Path(BIN).is_file(),
                     "BDSM_BENCH_SCENARIOS not set (binary not built)")
class ProvenanceRowsTest(unittest.TestCase):
    def rows(self, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "rows.json"
            proc = subprocess.run(
                [BIN, *flags, "--json", str(out)],
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
                text=True)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            doc = json.loads(out.read_text())
        self.assertEqual(doc["schema"], "bdsm-bench-v1")
        # Satellite of the experiment-matrix PR: the file header names
        # the producing tool + git describe.
        self.assertIn("tool", doc["provenance"])
        self.assertIn("git", doc["provenance"])
        self.assertTrue(doc["rows"])
        return doc["rows"]

    def assert_provenance(self, rows):
        for row in rows:
            for field in PROVENANCE_FIELDS:
                self.assertIn(field, row,
                              f"row missing {field!r}: {row}")

    def test_tenant_rows_carry_provenance(self):
        rows = self.rows("--scenario", "tenant-skew", "--engine", "gamma")
        self.assert_provenance(rows)
        self.assertTrue(any("tenant" in r for r in rows),
                        "tenant-skew must emit per-tenant rows")

    def test_replica_rows_carry_provenance(self):
        rows = self.rows("--scenario", "smoke", "--engine",
                         "replicated(gamma, followers=1)")
        self.assert_provenance(rows)
        self.assertTrue(any("replica" in r for r in rows),
                        "replicated runs must emit per-replica rows")

    def test_cell_mode_seals_atomically_named_cell(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = subprocess.run(
                [BIN, "--scenario", "smoke", "--engine", "gamma",
                 "--out-dir", tmp, "--cell-id", "probe",
                 "--cell-key", "deadbeef"],
                stdout=subprocess.DEVNULL)
            self.assertEqual(proc.returncode, 0)
            doc = json.loads(
                (pathlib.Path(tmp) / "probe.json").read_text())
        self.assertEqual(doc["cell_id"], "probe")
        self.assertEqual(doc["cell_key"], "deadbeef")
        self.assertIs(doc["sealed"], True)
        self.assert_provenance(doc["rows"])

    def test_failed_run_leaves_no_sealed_cell_file(self):
        # Validation failures exit(2) AFTER InitBench registered the
        # atexit flush; sealing happens only on the success path, so
        # a failed run must leave at most the .tmp post-mortem — a
        # sealed file here would make run_matrix.py resume past a
        # persistently failing cell as "completed".
        with tempfile.TemporaryDirectory() as tmp:
            proc = subprocess.run(
                [BIN, "--scenario", "smoke",
                 "--engine", "no-such-engine",
                 "--out-dir", tmp, "--cell-id", "probe"],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            self.assertNotEqual(proc.returncode, 0)
            self.assertFalse(
                (pathlib.Path(tmp) / "probe.json").exists(),
                "failed run sealed a cell row file")


if __name__ == "__main__":
    unittest.main()
