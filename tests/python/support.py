"""Shared fixtures for the Python tool tests (tests/python/).

Runs under both `python3 -m unittest discover -s tests/python` (the
`python_tools` ctest entry — no third-party deps) and pytest (the CI
job).  Provides repo paths, a stub bench tool for run_matrix.py tests,
and builders for synthetic results trees.
"""
import json
import os
import pathlib
import stat
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPTS = REPO / "scripts"
EXPERIMENTS = SCRIPTS / "experiments"
sys.path.insert(0, str(EXPERIMENTS))

import matrix_common as mx  # noqa: E402


def run(cmd, **kw):
    """Runs a tool, capturing output; never raises on nonzero exit."""
    return subprocess.run([sys.executable] + [str(c) for c in cmd],
                          capture_output=True, text=True, **kw)


STUB_SOURCE = r'''#!/usr/bin/env python3
"""Stand-in bench tool: speaks the --out-dir/--cell-id/--cell-key cell
protocol.

Writes a sealed bdsm-bench-v1 row file whose rows are a pure function
of (scenario, engine, seed) and logs every invocation to $STUB_LOG.
Failure drills, keyed on the invocation count in the log:
* $STUB_FAIL_AFTER=N — exits 1 WITHOUT sealing once count > N
  (a matrix killed mid-sweep; the real benches' behavior).
* $STUB_SEAL_THEN_FAIL_AFTER=N — seals, then exits 2, once count > N
  (a misbehaving tool that seals unconditionally at exit; the driver
  must scrub its row file rather than resume past it).
"""
import json, os, pathlib, sys

args = sys.argv[1:]
opt = {}
i = 0
while i < len(args):
    opt[args[i]] = args[i + 1]
    i += 2

log = pathlib.Path(os.environ["STUB_LOG"])
with log.open("a") as f:
    f.write(opt.get("--cell-id", "?") + "\n")
count = len(log.read_text().splitlines())
fail_after = int(os.environ.get("STUB_FAIL_AFTER", "0"))
if fail_after and count > fail_after:
    sys.exit(1)

seed = int(opt.get("--seed", "0"))
row = {
    "spec": opt.get("--engine", "stub"),
    "scenario": opt.get("--scenario", "none"),
    "clock": "modeled-device",
    "seed": seed,
    "total_matches": 100 + seed % 7,
    "latency_p95_s": 0.001,
    "throughput_ops_per_s": 50000.0,
}
doc = {
    "schema": "bdsm-bench-v1",
    "bench": "bench_stub",
    "cell_id": opt["--cell-id"],
    "provenance": {"tool": "bench_stub", "git": "stub-0"},
    "rows": [row],
    "sealed": True,
}
if "--cell-key" in opt:
    doc["cell_key"] = opt["--cell-key"]
out = pathlib.Path(opt["--out-dir"]) / (opt["--cell-id"] + ".json")
tmp = out.with_suffix(".json.tmp")
tmp.write_text(json.dumps(doc, indent=2) + "\n")
tmp.replace(out)
seal_then_fail = int(os.environ.get("STUB_SEAL_THEN_FAIL_AFTER", "0"))
if seal_then_fail and count > seal_then_fail:
    sys.exit(2)
'''


def make_stub_bin_dir(tmpdir, tool="bench_stub"):
    """An executable stub bench tool inside a fake --bin-dir."""
    bin_dir = pathlib.Path(tmpdir) / "bin"
    bin_dir.mkdir(parents=True, exist_ok=True)
    path = bin_dir / tool
    path.write_text(STUB_SOURCE)
    path.chmod(path.stat().st_mode | stat.S_IXUSR)
    return bin_dir


def stub_config(tmpdir, name="stubmx"):
    """A 4-cell config driven entirely by the stub tool."""
    config = {
        "schema": "bdsm-matrix-v1",
        "name": name,
        "seed": 2024,
        "groups": [
            {"id": "a", "tool": "bench_stub", "scenarios": ["s1"],
             "engines": ["e1", "e2"]},
            {"id": "b", "tool": "bench_stub", "scenarios": ["s1"],
             "engines": ["sw(k={k})"], "sweep": {"k": [1, 2]}},
        ],
    }
    path = pathlib.Path(tmpdir) / "matrix.json"
    path.write_text(json.dumps(config, indent=2) + "\n")
    return path


def write_tree(tree, cells):
    """Builds a synthetic results tree.

    cells: {cell_id: rows}.  The manifest carries just enough for
    bench_diff.py --tree / report.py: schema + sealed cell entries.
    """
    tree = pathlib.Path(tree)
    (tree / "cells").mkdir(parents=True, exist_ok=True)
    entries = []
    for cid, rows in cells.items():
        doc = {"schema": "bdsm-bench-v1", "bench": "bench_stub",
               "cell_id": cid,
               "provenance": {"tool": "bench_stub", "git": "stub-0"},
               "rows": rows, "sealed": True}
        (tree / "cells" / f"{cid}.json").write_text(
            json.dumps(doc, indent=2) + "\n")
        entries.append({"id": cid, "group": cid.split("__")[0],
                        "tool": "bench_stub", "seed": 1,
                        "status": "sealed", "rows": len(rows),
                        "provenance": mx.cell_provenance(doc)})
    manifest = {"schema": "bdsm-results-v1", "matrix": "stubmx",
                "seed": 2024, "config": "matrix.json",
                "config_sha256": "0" * 64, "cells": entries}
    (tree / "RESULTS_MANIFEST.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return tree


def engine_row(spec="gamma", scenario="smoke", matches=200, p95=1e-4,
               thr=5e5, **extra):
    row = {"spec": spec, "scenario": scenario, "seed": 7,
           "latency_metric": "modeled-device", "total_matches": matches,
           "latency_p95_s": p95, "throughput_ops_per_s": thr}
    row.update(extra)
    return row
