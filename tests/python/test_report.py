"""report.py: deterministic output, section selection, trajectory."""
import pathlib
import tempfile
import unittest

import support
from support import engine_row, run, write_tree

REPORT = support.EXPERIMENTS / "report.py"


def make_tree(root, name, thr):
    return write_tree(pathlib.Path(root) / name, {
        "engines__smoke__gamma": [engine_row(thr=thr)],
        "shards__smoke__s2": [engine_row(
            spec="sharded(gamma, shards=2)", thr=thr * 1.5)],
        "tenants__skew__gamma": [
            engine_row(spec="tenant(gamma)", scenario="tenant-skew",
                       fairness=0.91),
            {"spec": "tenant(gamma)", "scenario": "tenant-skew",
             "seed": 7, "latency_metric": "modeled-device",
             "tenant": "t0", "priority": "gold", "offered_ops": 10,
             "admitted_ops": 10, "shed_ops": 0, "matches": 44,
             "sojourn_p95_s": 2e-4}],
    })


class ReportTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.dir = pathlib.Path(self.tmp.name)
        # write_tree's manifest has no sweep info, so patch one in for
        # the scaling section via a manifest rewrite.
        self.t1 = make_tree(self.dir, "t1", 1e5)
        self.t2 = make_tree(self.dir, "t2", 2e5)
        for tree in (self.t1, self.t2):
            manifest = support.mx.load_manifest(tree)
            for cell in manifest["cells"]:
                if cell["id"].startswith("shards__"):
                    cell["sweep"] = {"shards": 2}
                    cell["scenario"] = "smoke"
            support.mx.write_manifest(tree, manifest)

    def test_report_is_deterministic_and_sectioned(self):
        out1, out2 = self.dir / "r1", self.dir / "r2"
        for out in (out1, out2):
            proc = run([REPORT, self.t2, "--out", out])
            self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual((out1 / "REPORT.md").read_bytes(),
                         (out2 / "REPORT.md").read_bytes())
        text = (out1 / "REPORT.md").read_text()
        self.assertIn("## Engine × scenario", text)
        self.assertIn("## Shard scaling", text)
        self.assertIn("## Tenant fairness", text)
        self.assertIn("Jain fairness 0.91", text)
        self.assertNotIn("## Perf trajectory", text)
        self.assertTrue((out1 / "throughput_latency.svg").exists())
        self.assertTrue((out1 / "scaling_shards.svg").exists())

    def test_trajectory_across_stored_runs(self):
        out = self.dir / "traj"
        proc = run([REPORT, self.t1, self.t2, "--out", out])
        self.assertEqual(proc.returncode, 0, proc.stderr)
        text = (out / "REPORT.md").read_text()
        self.assertIn("## Perf trajectory (2 runs)", text)
        self.assertIn("+100.0%", text)  # thr doubled t1 -> t2
        self.assertTrue((out / "trajectory.svg").exists())

    def test_unreadable_tree_is_an_input_error(self):
        proc = run([REPORT, self.dir / "nope", "--out", self.dir / "o"])
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
