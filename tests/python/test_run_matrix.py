"""Resume semantics of scripts/experiments/run_matrix.py and the seed/
cell-expansion conventions of matrix_common.py.

The kill-mid-matrix drill uses a stub bench tool (support.py) that
seals deterministic cell files and can be told to start failing after N
invocations; the test asserts a rerun completes WITHOUT re-executing
sealed cells and converges on a manifest byte-identical to an
uninterrupted run's — the ISSUE's resume acceptance criterion."""
import json
import os
import pathlib
import tempfile
import unittest

import support
from support import mx, run

RUN_MATRIX = support.EXPERIMENTS / "run_matrix.py"


class SeedConventionTest(unittest.TestCase):
    """Golden values captured from the C++ (util/rng.hpp DeriveSeed)."""

    def test_derive_seed_matches_cpp(self):
        self.assertEqual(mx.derive_seed(2024, 0), 11487996472437173461)
        self.assertEqual(mx.derive_seed(2024, 1), 1793612131670815442)
        self.assertEqual(mx.derive_seed(123456789, 42),
                         11444020087538809912)

    def test_fnv1a64_golden(self):
        # FNV-1a 64 reference vectors.
        self.assertEqual(mx.fnv1a64(""), 0xCBF29CE484222325)
        self.assertEqual(mx.fnv1a64("a"), 0xAF63DC4C8601EC8C)

    def test_workload_key_shares_stream_across_a_sweep(self):
        config = {"schema": "bdsm-matrix-v1", "name": "x", "seed": 2024,
                  "groups": [{"id": "g", "scenarios": ["smoke"],
                              "engines": ["sharded(gamma, shards={n})"],
                              "sweep": {"n": [1, 2, 4]}}]}
        cells = mx.expand_cells(config)
        self.assertEqual(len(cells), 3)
        self.assertEqual(len({c.seed for c in cells}), 1,
                         "a sweep must measure one stream")
        self.assertEqual(cells[0].seed,
                         mx.cell_seed(2024, "g/smoke"))

    def test_distinct_scenarios_get_distinct_streams(self):
        config = {"schema": "bdsm-matrix-v1", "name": "x", "seed": 2024,
                  "groups": [{"id": "g", "scenarios": ["smoke", "churn"],
                              "engines": ["gamma"]}]}
        seeds = {c.seed for c in mx.expand_cells(config)}
        self.assertEqual(len(seeds), 2)


class ExpansionTest(unittest.TestCase):
    def test_cell_ids_and_template_substitution(self):
        config = {"schema": "bdsm-matrix-v1", "name": "x", "seed": 1,
                  "groups": [{"id": "g", "scenarios": ["s"],
                              "engines": ["e(k={k})"],
                              "sweep": {"k": [1, 2]},
                              "args": ["--opt", "{k}"]}]}
        cells = mx.expand_cells(config)
        self.assertEqual([c.cell_id for c in cells],
                         ["g__s__e-k-1__k-1", "g__s__e-k-2__k-2"])
        self.assertEqual(cells[1].engine, "e(k=2)")
        self.assertEqual(cells[1].args, ["--opt", "2"])

    def test_dangling_placeholder_is_an_error(self):
        config = {"schema": "bdsm-matrix-v1", "name": "x", "seed": 1,
                  "groups": [{"id": "g", "scenarios": ["s"],
                              "engines": ["e(k={missing})"]}]}
        with self.assertRaises(mx.MatrixError):
            mx.expand_cells(config)

    def test_cell_id_collision_is_an_error(self):
        # "a(b)" and "a-b" slug to the same cell-id fragment.
        config = {"schema": "bdsm-matrix-v1", "name": "x", "seed": 1,
                  "groups": [{"id": "g", "scenarios": ["s"],
                              "engines": ["a(b)", "a-b"]}]}
        with self.assertRaises(mx.MatrixError):
            mx.expand_cells(config)


class ResumeTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.dir = pathlib.Path(self.tmp.name)
        self.bin_dir = support.make_stub_bin_dir(self.dir)
        self.config = support.stub_config(self.dir)

    def run_matrix(self, out, log, fail_after=0, seal_then_fail_after=0,
                   config=None):
        env = dict(os.environ, STUB_LOG=str(log))
        for var, n in (("STUB_FAIL_AFTER", fail_after),
                       ("STUB_SEAL_THEN_FAIL_AFTER", seal_then_fail_after)):
            if n:
                env[var] = str(n)
            else:
                env.pop(var, None)
        return run([RUN_MATRIX, "--config", config or self.config,
                    "--bin-dir", self.bin_dir, "--out", out], env=env)

    def invocations(self, log):
        return pathlib.Path(log).read_text().splitlines()

    def test_kill_mid_matrix_then_resume(self):
        # Uninterrupted reference run.
        ref_log = self.dir / "ref.log"
        proc = self.run_matrix(self.dir / "ref", ref_log)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(len(self.invocations(ref_log)), 4)

        # Interrupted run: the tool dies on its 3rd invocation.
        log = self.dir / "int.log"
        proc = self.run_matrix(self.dir / "int", log, fail_after=2)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(len(self.invocations(log)), 3)
        manifest = mx.load_manifest(self.dir / "int")
        statuses = [c["status"] for c in manifest["cells"]]
        self.assertEqual(statuses, ["sealed", "sealed", "pending",
                                    "pending"])

        # Resume: completes, re-executing NO sealed cell.
        proc = self.run_matrix(self.dir / "int", log)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2 resumed-sealed", proc.stdout)
        invs = self.invocations(log)
        self.assertEqual(len(invs), 5)  # 3 before + only the 2 missing
        for cid in invs[:2]:
            self.assertEqual(invs.count(cid), 1,
                             f"sealed cell {cid} was re-executed")

        # The resumed manifest is byte-identical to the uninterrupted
        # run's.
        ref = (self.dir / "ref" / mx.MANIFEST_NAME).read_bytes()
        got = (self.dir / "int" / mx.MANIFEST_NAME).read_bytes()
        self.assertEqual(ref, got)

    def test_seal_at_failed_exit_does_not_poison_resume(self):
        # A tool that seals its row file and THEN exits nonzero (e.g. a
        # legacy binary sealing unconditionally at process exit) must
        # not turn a persistently failing cell into a "completed" one:
        # the driver scrubs the row file, the manifest stays pending,
        # and the resumed run re-executes the cell.
        ref_log = self.dir / "ref.log"
        self.assertEqual(
            self.run_matrix(self.dir / "ref", ref_log).returncode, 0)

        log = self.dir / "stf.log"
        out = self.dir / "stf"
        proc = self.run_matrix(out, log, seal_then_fail_after=2)
        self.assertEqual(proc.returncode, 1)
        manifest = mx.load_manifest(out)
        statuses = [c["status"] for c in manifest["cells"]]
        self.assertEqual(statuses, ["sealed", "sealed", "pending",
                                    "pending"])
        failed_id = self.invocations(log)[2]
        self.assertFalse(mx.cell_path(out, failed_id).exists(),
                         "failed attempt left a sealed row file behind")

        proc = self.run_matrix(out, log)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(self.invocations(log).count(failed_id), 2,
                         "the failed cell must be re-executed")
        ref = (self.dir / "ref" / mx.MANIFEST_NAME).read_bytes()
        self.assertEqual(ref, (out / mx.MANIFEST_NAME).read_bytes())

    def test_config_edit_reruns_stale_sealed_cells(self):
        # Resuming into a tree after the matrix changed (here: a new
        # master seed) must re-run every affected cell — sealed results
        # from the old config fingerprint differently (cell_key) and
        # would otherwise sit next to a manifest stamping the new seed.
        log = self.dir / "edit.log"
        out = self.dir / "edit"
        self.assertEqual(self.run_matrix(out, log).returncode, 0)
        self.assertEqual(len(self.invocations(log)), 4)

        cfg = json.loads(self.config.read_text())
        cfg["seed"] = 2025
        edited = self.dir / "matrix-edited.json"
        edited.write_text(json.dumps(cfg, indent=2) + "\n")
        proc = self.run_matrix(out, log, config=edited)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("0 resumed-sealed", proc.stdout)
        self.assertEqual(len(self.invocations(log)), 8,
                         "every stale cell must re-run")
        self.assertEqual(mx.load_manifest(out)["seed"], 2025)

    def test_cell_file_without_cell_key_is_re_run(self):
        # Trees sealed by pre-cell-key tooling carry no identity
        # fingerprint; the resume predicate treats them as unsealed.
        log = self.dir / "nokey.log"
        out = self.dir / "nokey"
        self.assertEqual(self.run_matrix(out, log).returncode, 0)
        victim = mx.cell_path(out, "a__s1__e1")
        doc = json.loads(victim.read_text())
        del doc["cell_key"]
        victim.write_text(json.dumps(doc, indent=2) + "\n")
        self.assertEqual(self.run_matrix(out, log).returncode, 0)
        self.assertEqual(self.invocations(log).count("a__s1__e1"), 2)

    def test_torn_cell_file_is_re_run(self):
        log = self.dir / "torn.log"
        out = self.dir / "torn"
        self.assertEqual(self.run_matrix(out, log).returncode, 0)
        # Corrupt one sealed file: truncate mid-document (a crash
        # between write and rename can't produce this, but a copy
        # might) — the resume predicate must reject and re-run it.
        victim = mx.cell_path(out, "a__s1__e1")
        victim.write_text(victim.read_text()[:40])
        self.assertEqual(self.run_matrix(out, log).returncode, 0)
        self.assertEqual(self.invocations(log).count("a__s1__e1"), 2)

    def test_list_and_only(self):
        log = self.dir / "x.log"
        env = dict(os.environ, STUB_LOG=str(log))
        proc = run([RUN_MATRIX, "--config", self.config, "--bin-dir",
                    self.bin_dir, "--out", self.dir / "x", "--list"],
                   env=env)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("4/4 cells selected", proc.stdout)
        self.assertFalse(log.exists(), "--list must not run anything")
        proc = run([RUN_MATRIX, "--config", self.config, "--bin-dir",
                    self.bin_dir, "--out", self.dir / "x",
                    "--only", "a__"], env=env)
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(len(self.invocations(log)), 2)

    def test_missing_tool_is_usage_error(self):
        cfg = json.loads(self.config.read_text())
        cfg["groups"][0]["tool"] = "bench_nonexistent"
        bad = self.dir / "bad.json"
        bad.write_text(json.dumps(cfg))
        proc = run([RUN_MATRIX, "--config", bad, "--bin-dir",
                    self.bin_dir, "--out", self.dir / "y"],
                   env=dict(os.environ, STUB_LOG=str(self.dir / "y.log")))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
