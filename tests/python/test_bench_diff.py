"""Gate semantics of scripts/bench_diff.py: tree mode (fleet-wide
regression gate, direction-aware per metric, zero-tolerance match
counts, missing-cell detection) and two-file backward compatibility."""
import copy
import importlib.util
import re
import tempfile
import unittest

import support
from support import engine_row, run, write_tree

DIFF = support.SCRIPTS / "bench_diff.py"


def load_bench_diff():
    """Imports bench_diff.py as a module (main() is __main__-guarded)."""
    spec = importlib.util.spec_from_file_location("bench_diff", DIFF)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TreeModeTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.base_cells = {
            "a__smoke__gamma": [engine_row()],
            "t__skew__gamma": [
                engine_row(spec="tenant(gamma)", scenario="tenant-skew"),
                {"spec": "tenant(gamma)", "scenario": "tenant-skew",
                 "seed": 7, "latency_metric": "modeled-device",
                 "tenant": "t0", "matches": 44, "sojourn_p95_s": 2e-4},
            ],
        }
        self.old = write_tree(f"{self.tmp.name}/old", self.base_cells)

    def new_tree(self, cells):
        return write_tree(f"{self.tmp.name}/new", cells)

    def diff(self, new, *flags):
        return run([DIFF, "--tree", self.old, new, *flags])

    def test_identical_trees_pass(self):
        proc = self.diff(self.new_tree(self.base_cells))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("2 cells compared", proc.stdout)

    def test_match_count_change_fails_without_threshold(self):
        cells = copy.deepcopy(self.base_cells)
        cells["a__smoke__gamma"][0]["total_matches"] = 199
        proc = self.diff(self.new_tree(cells))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("zero tolerance", proc.stdout)

    def test_tenant_matches_are_zero_tolerance_too(self):
        cells = copy.deepcopy(self.base_cells)
        cells["t__skew__gamma"][1]["matches"] = 45
        self.assertEqual(self.diff(self.new_tree(cells)).returncode, 1)

    def test_latency_growth_gates_only_with_max_regress(self):
        cells = copy.deepcopy(self.base_cells)
        cells["a__smoke__gamma"][0]["latency_p95_s"] *= 1.5
        new = self.new_tree(cells)
        self.assertEqual(self.diff(new).returncode, 0)
        self.assertEqual(self.diff(new, "--max-regress", "20").returncode, 1)
        self.assertEqual(self.diff(new, "--max-regress", "60").returncode, 0)

    def test_throughput_drop_gates_in_its_own_direction(self):
        cells = copy.deepcopy(self.base_cells)
        cells["a__smoke__gamma"][0]["throughput_ops_per_s"] *= 0.5
        new = self.new_tree(cells)
        proc = self.diff(new, "--max-regress", "20")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)
        # Throughput GROWTH is an improvement, never a regression.
        cells["a__smoke__gamma"][0]["throughput_ops_per_s"] = 9e9
        self.assertEqual(
            self.diff(self.new_tree(cells), "--max-regress", "20")
            .returncode, 0)

    def test_missing_cell_fails(self):
        cells = {"a__smoke__gamma": self.base_cells["a__smoke__gamma"]}
        proc = self.diff(self.new_tree(cells))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing cell", proc.stdout)

    def test_new_cell_is_reported_not_gated(self):
        cells = copy.deepcopy(self.base_cells)
        cells["extra__cell"] = [engine_row(scenario="uniform")]
        proc = self.diff(self.new_tree(cells))
        self.assertEqual(proc.returncode, 0)
        self.assertIn("NEW CELL", proc.stdout)

    def test_row_vanishing_inside_common_cell_fails(self):
        cells = copy.deepcopy(self.base_cells)
        del cells["t__skew__gamma"][1]
        proc = self.diff(self.new_tree(cells))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("vanished", proc.stdout)

    def test_tree_mode_rejects_two_file_flags(self):
        proc = self.diff(self.old, "--metric", "latency_p95_s")
        self.assertEqual(proc.returncode, 2)

    def test_fairness_drop_gates_as_higher_is_better(self):
        old = write_tree(f"{self.tmp.name}/f-old",
                         {"c": [engine_row(fairness=0.9)]})
        drop = write_tree(f"{self.tmp.name}/f-drop",
                          {"c": [engine_row(fairness=0.45)]})
        rise = write_tree(f"{self.tmp.name}/f-rise",
                          {"c": [engine_row(fairness=0.99)]})
        proc = run([DIFF, "--tree", old, drop, "--max-regress", "20"])
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertEqual(
            run([DIFF, "--tree", old, rise,
                 "--max-regress", "20"]).returncode, 0)

    def test_unlisted_rate_metric_gates_as_throughput(self):
        # A future "*_ops_per_s" field must resolve higher-is-better,
        # not fall through to the lower-is-better "_s" suffix rule.
        old = write_tree(f"{self.tmp.name}/r-old",
                         {"c": [engine_row(frobnicate_ops_per_s=100.0)]})
        drop = write_tree(f"{self.tmp.name}/r-drop",
                          {"c": [engine_row(frobnicate_ops_per_s=50.0)]})
        rise = write_tree(f"{self.tmp.name}/r-rise",
                          {"c": [engine_row(frobnicate_ops_per_s=200.0)]})
        proc = run([DIFF, "--tree", old, drop, "--max-regress", "20"])
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertEqual(
            run([DIFF, "--tree", old, rise,
                 "--max-regress", "20"]).returncode, 0)


class DirectionTableTest(unittest.TestCase):
    """The tables must name fields the benches actually emit — a dead
    entry (e.g. a renamed metric) silently un-gates its metric."""

    def emitted_fields(self):
        fields = set()
        for path in (support.REPO / "bench").glob("*.cpp"):
            fields.update(re.findall(
                r'\.Set(?:Bool)?\(\s*"([A-Za-z0-9_]+)"', path.read_text()))
        return fields

    def test_tables_only_name_emitted_fields(self):
        bd = load_bench_diff()
        emitted = self.emitted_fields()
        for table in ("HIGHER_IS_BETTER", "LOWER_IS_BETTER"):
            dead = getattr(bd, table) - emitted
            self.assertFalse(
                dead, f"{table} entries no bench emits: {sorted(dead)}")

    def test_metric_direction_resolution_order(self):
        bd = load_bench_diff()
        self.assertEqual(bd.metric_direction("future_ops_per_s"), "higher")
        self.assertEqual(bd.metric_direction("batches_per_s_wall"),
                         "higher")
        self.assertEqual(bd.metric_direction("latency_p95_s"), "lower")
        self.assertEqual(bd.metric_direction("fairness"), "higher")
        self.assertIsNone(bd.metric_direction("mystery_metric"))


class TwoFileModeTest(unittest.TestCase):
    """The pre-existing CI gates use two-file mode; lock its contract."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, rows):
        import json
        import pathlib
        path = pathlib.Path(self.tmp.name) / name
        path.write_text(json.dumps(
            {"schema": "bdsm-bench-v1", "bench": "b", "rows": rows}))
        return path

    def test_gate_requires_metric(self):
        a = self.write("a.json", [engine_row()])
        proc = run([DIFF, a, a, "--max-regress", "10"])
        self.assertEqual(proc.returncode, 2)

    def test_directional_gate(self):
        a = self.write("a.json", [engine_row(thr=100.0)])
        b = self.write("b.json", [engine_row(thr=50.0)])
        ok = run([DIFF, a, b, "--metric", "throughput_ops_per_s",
                  "--max-regress", "20"])
        self.assertEqual(ok.returncode, 0)  # drop needs --higher-is-better
        gated = run([DIFF, a, b, "--metric", "throughput_ops_per_s",
                     "--higher-is-better", "--max-regress", "20"])
        self.assertEqual(gated.returncode, 1)


if __name__ == "__main__":
    unittest.main()
