/// Utility-layer tests: RNG determinism and distribution sanity, Zipf
/// skew, bitsets (the encoder substrate), stats accumulators, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/bitset.hpp"
#include "util/common.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace bdsm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    double r = rng.UniformReal();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(8);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[rng.Uniform(8)];
  ASSERT_EQ(counts.size(), 8u);
  for (auto& [v, n] : counts) {
    EXPECT_GT(n, 700) << v;  // ~1000 expected each
    EXPECT_LT(n, 1300) << v;
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, SkewOrdersRanks) {
  Rng rng(10);
  ZipfSampler zipf(10, 1.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 clearly dominates rank 9, and counts are roughly monotone.
  EXPECT_GT(counts[0], counts[9] * 4);
  EXPECT_GT(counts[0], counts[4]);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(11);
  ZipfSampler zipf(5, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.PopCount(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  b.Reset();
  EXPECT_EQ(b.PopCount(), 0u);
}

TEST(BitsetTest, ContainsIsTheGsiTest) {
  Bitset enc_u(9), enc_v(9);
  enc_u.Set(0);
  enc_u.Set(3);
  enc_v.Set(0);
  enc_v.Set(3);
  enc_v.Set(5);
  EXPECT_TRUE(enc_v.Contains(enc_u));   // v superset of u: candidate
  EXPECT_FALSE(enc_u.Contains(enc_v));  // u lacks bit 5
  EXPECT_TRUE(enc_u.Contains(enc_u));
}

TEST(BitsetTest, ToStringRoundTrip) {
  Bitset b(5);
  b.Set(1);
  b.Set(4);
  EXPECT_EQ(b.ToString(), "01001");
}

TEST(EdgeTest, CanonicalizationAndHash) {
  Edge a(5, 2), b(2, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.u, 2u);
  EXPECT_EQ(a.v, 5u);
  EXPECT_EQ(EdgeHash{}(a), EdgeHash{}(b));
  EXPECT_EQ(EdgeSrc(PackEdge(7, 9)), 7u);
  EXPECT_EQ(EdgeDst(PackEdge(7, 9)), 9u);
}

TEST(StatsTest, Accumulator) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

TEST(StatsTest, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.6);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.2);
}

TEST(StatsTest, EmptyAndSingleSampleEdgeCases) {
  StatAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);

  Samples empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(99), 0.0);

  Samples one;
  one.Add(7.0);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.Mean(), 7.0);
  // Every percentile of a single sample is that sample.
  EXPECT_DOUBLE_EQ(one.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(one.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(one.Percentile(100), 7.0);
}

TEST(StatsTest, PercentileInterpolatesBetweenSamples) {
  Samples s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 12.5);
  // Insertion order must not matter.
  Samples r;
  r.Add(20.0);
  r.Add(10.0);
  EXPECT_DOUBLE_EQ(r.Percentile(50), 15.0);
}

TEST(TimerTest, ThreadCpuSecondsIsMonotone) {
  double prev = ThreadCpuSeconds();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 10; ++i) {
    double now = ThreadCpuSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
  // Burning CPU on this thread must advance the clock.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GT(ThreadCpuSeconds(), prev);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbage) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("4", &level));
  EXPECT_FALSE(ParseLogLevel("debugx", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // out untouched on failure
}

TEST(LoggingTest, SetAndGetLogLevelRoundTrip) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed emissions (below threshold) must be cheap no-ops; this
  // also smoke-covers the rate-limited macro's expansion.
  for (int i = 0; i < 5; ++i) {
    GAMMA_LOG_EVERY_N(INFO, 3, "suppressed %d", i);
  }
  SetLogLevel(before);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  double e1 = t.ElapsedSeconds();
  EXPECT_GT(e1, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), e1);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), e1 + 1.0);
  // Unit relationships hold.
  double s = t.ElapsedSeconds();
  EXPECT_LE(s * 1e3, t.ElapsedMillis() + 1.0);
  EXPECT_LE(s * 1e6, t.ElapsedMicros() + 1e3);
}

}  // namespace
}  // namespace bdsm
