/// MatchStore tests: the maintained view must track the true match set
/// of the evolving graph across a stream of batches (differential test
/// against full enumeration), plus unit semantics of deltas.
#include <gtest/gtest.h>

#include <set>

#include "baselines/enumerate.hpp"
#include "core/match_store.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

MatchRecord Rec(std::initializer_list<VertexId> vs, bool positive) {
  MatchRecord m;
  m.n = static_cast<uint8_t>(vs.size());
  m.positive = positive;
  size_t i = 0;
  for (VertexId v : vs) m.m[i++] = v;
  return m;
}

TEST(MatchStoreTest, InsertRemoveCycle) {
  MatchStore store;
  store.ApplyDelta(Rec({1, 2, 3}, true));
  store.ApplyDelta(Rec({4, 5, 6}, true));
  EXPECT_EQ(store.LiveCount(), 2u);
  EXPECT_TRUE(store.Contains(Rec({1, 2, 3}, true)));
  EXPECT_EQ(store.ParticipationCount(2), 1u);

  store.ApplyDelta(Rec({1, 2, 3}, false));
  EXPECT_EQ(store.LiveCount(), 1u);
  EXPECT_FALSE(store.Contains(Rec({1, 2, 3}, true)));
  EXPECT_EQ(store.ParticipationCount(2), 0u);
  EXPECT_EQ(store.applied_positive(), 2u);
  EXPECT_EQ(store.applied_negative(), 1u);
}

TEST(MatchStoreTest, ParticipationCounts) {
  MatchStore store;
  store.ApplyDelta(Rec({7, 8}, true));
  store.ApplyDelta(Rec({7, 9}, true));
  store.ApplyDelta(Rec({7, 10}, true));
  EXPECT_EQ(store.ParticipationCount(7), 3u);
  EXPECT_EQ(store.ParticipationCount(9), 1u);
  store.ApplyDelta(Rec({7, 9}, false));
  EXPECT_EQ(store.ParticipationCount(7), 2u);
}

TEST(MatchStoreTest, DuplicateInsertAborts) {
  MatchStore store;
  store.ApplyDelta(Rec({1, 2}, true));
  EXPECT_DEATH(store.ApplyDelta(Rec({1, 2}, true)), "duplicate");
  EXPECT_DEATH(store.ApplyDelta(Rec({5, 6}, false)), "unknown");
}

TEST(MatchStoreTest, TracksTruthAcrossStream) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 2, 1, 71);
  QueryGraph q({0, 1, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);

  GammaOptions opts;
  opts.device.num_sms = 2;
  Gamma gamma(g, q, opts);
  MatchStore store;
  // Seed the store with the initial matches.
  for (const MatchRecord& m : EnumerateAllMatches(g, q)) {
    MatchRecord pos = m;
    pos.positive = true;
    store.ApplyDelta(pos);
  }

  UpdateStreamGenerator gen(72);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch batch = SanitizeBatch(
        gamma.host_graph(), gen.MakeMixed(gamma.host_graph(), 30, 2, 1, 0));
    BatchResult res = gamma.ProcessBatch(batch);
    store.Apply(res);

    // Ground truth on the evolved graph.
    auto truth = EnumerateAllMatches(gamma.host_graph(), q);
    ASSERT_EQ(store.LiveCount(), truth.size()) << "round " << round;
    std::set<std::string> live_keys;
    for (const MatchRecord& m : store.Snapshot()) {
      MatchRecord k = m;
      k.positive = true;
      live_keys.insert(k.Key());
    }
    for (MatchRecord m : truth) {
      m.positive = true;
      EXPECT_TRUE(live_keys.count(m.Key())) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace bdsm
