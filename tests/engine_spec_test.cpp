/// Spec-layer tests: EngineSpec parse/print round-trips across every
/// registered engine (nesting, aliases, case and whitespace
/// normalization), the friendly error paths (unknown engine / unknown
/// option key / bad value / bad nesting / trailing garbage — all
/// EngineSpecError, never an abort), registry validation, and the
/// legacy-sugar equivalence: "sharded:gamma@2" and
/// "sharded(gamma, shards=2)" build engines whose BatchReports are
/// bit-identical on a seeded scenario stream.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/engine_spec.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm {
namespace {

std::string ErrorOf(const std::string& spec) {
  std::optional<std::string> err = EngineRegistry::Instance().Validate(spec);
  return err.value_or("");
}

TEST(EngineSpecTest, ParseToStringRoundTripsEveryRegisteredEngine) {
  for (const std::string& name : EngineNames()) {
    SCOPED_TRACE(name);
    EngineSpec spec = EngineSpec::Parse(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_TRUE(spec.children.empty());
    EXPECT_TRUE(spec.options.empty());
    EXPECT_EQ(spec.ToString(), name);
    EXPECT_EQ(EngineSpec::Parse(spec.ToString()), spec);
  }
}

TEST(EngineSpecTest, ParseToStringRoundTripsNestedSpecs) {
  for (const char* text : {
           "gamma(result_cap=100000)",
           "sharded(gamma, shards=8)",
           "sharded(gamma, shards=8, threads=4)",
           "sharded(gamma(result_cap=100000, budget=0.5), shards=2)",
           "sharded(sharded(rf, shards=2), shards=2, queue=16)",
           "tf(result_cap=100, budget=1.5)",
       }) {
    SCOPED_TRACE(text);
    EngineSpec spec = EngineSpec::Parse(text);
    EXPECT_EQ(spec.ToString(), text);  // the inputs are canonical
    EXPECT_EQ(EngineSpec::Parse(spec.ToString()), spec);
  }
}

TEST(EngineSpecTest, CaseAndWhitespaceNormalize) {
  EngineSpec canonical = EngineSpec::Parse("sharded(gamma, shards=8)");
  EXPECT_EQ(EngineSpec::Parse("SHARDED(Gamma,shards=8)"), canonical);
  EXPECT_EQ(EngineSpec::Parse("  sharded ( gamma , shards = 8 )  "),
            canonical);
  EXPECT_EQ(EngineSpec::Parse("sharded(GAMMA, SHARDS=8)"), canonical);
  // Legacy sugar tolerates surrounding whitespace too (an --engine
  // comma list splits into " sharded:gamma@8"-shaped fragments).
  EXPECT_EQ(EngineSpec::Parse(" sharded:gamma@8 "),
            EngineSpec::Parse("sharded:gamma@8"));
}

TEST(EngineSpecTest, OptionsKeepOrderAndLastBindingWins) {
  EngineSpec spec = EngineSpec::Parse("gamma(result_cap=5, result_cap=9)");
  ASSERT_EQ(spec.options.size(), 2u);  // preserved for faithful printing
  ASSERT_NE(spec.FindOption("result_cap"), nullptr);
  EXPECT_EQ(*spec.FindOption("result_cap"), "9");  // last one wins
  EXPECT_EQ(spec.FindOption("no-such-key"), nullptr);
}

TEST(EngineSpecTest, LegacySugarDesugarsToCanonicalTree) {
  EXPECT_EQ(EngineSpec::Parse("sharded:gamma@8"),
            EngineSpec::Parse("sharded(gamma, shards=8)"));
  EXPECT_EQ(EngineSpec::Parse("sharded:gamma"),
            EngineSpec::Parse("sharded(gamma)"));
  EXPECT_EQ(EngineSpec::Parse("SHARDED:TurboFlux@2"),
            EngineSpec::Parse("sharded(turboflux, shards=2)"));
  EXPECT_EQ(EngineSpec::Parse("sharded:gamma@8").ToString(),
            "sharded(gamma, shards=8)");
}

TEST(EngineSpecTest, ParseErrorsNameTheBadToken) {
  for (const char* bad : {
           "",                    // no name at all
           "gamma(",              // unterminated argument list
           "gamma()",             // empty argument list
           "gamma(result_cap=)",  // missing value
           "gamma(=5)",           // missing key
           "gamma)x",             // trailing garbage
           "gamma extra",         // trailing garbage, space-separated
           "sharded(gamma,)",     // dangling comma
           "sharded:gamma@",      // legacy: empty shard count
           "sharded:gamma@0",     // legacy: zero shards
           "sharded:gamma@x",     // legacy: non-numeric shards
           "sharded:gamma@2@3",   // legacy: double @
           "sharded:sharded:gamma",  // legacy specs do not nest
           "a:b(c)",              // ':' only valid in the legacy shape
       }) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(EngineSpec::Parse(bad), EngineSpecError);
  }
  try {
    EngineSpec::Parse("gamma(result_cap=100000) trailing");
    FAIL() << "expected EngineSpecError";
  } catch (const EngineSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
}

TEST(EngineSpecTest, UnknownEngineErrorListsRegisteredNames) {
  std::string err = ErrorOf("no-such-engine");
  EXPECT_NE(err.find("unknown engine \"no-such-engine\""),
            std::string::npos)
      << err;
  for (const std::string& name : EngineNames()) {
    EXPECT_NE(err.find(name), std::string::npos) << name << " in " << err;
  }
  // The same friendly error surfaces from Make as a throw, not an abort.
  LabeledGraph g({0, 1});
  EXPECT_THROW((void)MakeEngine("no-such-engine", g), EngineSpecError);
  // Unknown names nested inside a wrapper are caught too.
  EXPECT_NE(ErrorOf("sharded(no-such-engine, shards=2)").find(
                "unknown engine"),
            std::string::npos);
}

TEST(EngineSpecTest, UnknownOptionKeyErrorListsValidKeys) {
  std::string err = ErrorOf("gamma(frobnicate=1)");
  EXPECT_NE(err.find("unknown option \"frobnicate\""), std::string::npos)
      << err;
  for (const char* key : {"result_cap", "budget", "segment_capacity",
                          "coalesced", "aggressive_coalescing"}) {
    EXPECT_NE(err.find(key), std::string::npos) << key << " in " << err;
  }
  // CSM engines have their own (smaller) key table.
  std::string csm_err = ErrorOf("tf(segment_capacity=32)");
  EXPECT_NE(csm_err.find("unknown option"), std::string::npos) << csm_err;
  EXPECT_NE(csm_err.find("result_cap"), std::string::npos) << csm_err;
}

TEST(EngineSpecTest, BadValuesAndBadNestingAreRejected) {
  EXPECT_NE(ErrorOf("gamma(result_cap=many)").find("bad value"),
            std::string::npos);
  EXPECT_NE(ErrorOf("gamma(segment_capacity=33)").find("bad value"),
            std::string::npos);  // not a power of two
  EXPECT_NE(ErrorOf("sharded(gamma, shards=0)").find("bad value"),
            std::string::npos);
  // Leaf engines take no inner spec; wrappers need exactly one.
  EXPECT_NE(ErrorOf("gamma(tf)").find("no inner engine spec"),
            std::string::npos);
  EXPECT_NE(ErrorOf("sharded(shards=2)").find("exactly one"),
            std::string::npos);
  EXPECT_NE(ErrorOf("sharded(gamma, tf)").find("exactly one"),
            std::string::npos);
  // Valid specs validate clean.
  EXPECT_EQ(ErrorOf("sharded(gamma(result_cap=10), shards=2)"), "");
  EXPECT_EQ(ErrorOf("multi(coalesced=false)"), "");
}

TEST(EngineSpecTest, ProgrammaticBadSegmentCapacityThrowsNotAborts) {
  // The spec-string parser rejects a non-power-of-two segment capacity
  // ("bad value", tested above), but EngineOptions set in code bypass
  // those parsers entirely.  The registry must still surface the same
  // friendly EngineSpecError instead of hitting the Gpma constructor's
  // internal-check abort.
  LabeledGraph g(std::vector<Label>(8, 0));
  g.InsertEdge(0, 1, 0);
  for (uint32_t bad : {0u, 3u, 24u, 33u, 100u}) {
    SCOPED_TRACE(bad);
    EngineOptions opts;
    opts.gamma.gpma_segment_capacity = bad;
    try {
      (void)MakeEngine("gamma", g, opts);
      FAIL() << "expected EngineSpecError for capacity " << bad;
    } catch (const EngineSpecError& e) {
      EXPECT_NE(std::string(e.what()).find("power of two"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find(std::to_string(bad)),
                std::string::npos);
    }
    // Wrapped engines validate before their children are constructed.
    EXPECT_THROW((void)MakeEngine("sharded(gamma, shards=2)", g, opts),
                 EngineSpecError);
  }
  // A spec-string override repairs programmatic nonsense: the option
  // parser runs after the base options are copied in.
  EngineOptions odd;
  odd.gamma.gpma_segment_capacity = 24;
  EXPECT_NO_THROW((void)MakeEngine("gamma(segment_capacity=16)", g, odd));
}

TEST(EngineSpecTest, InlineOptionsConfigureTheEngine) {
  // A result cap of 1 via the spec must truncate exactly like the same
  // cap passed through EngineOptions.
  workload::ScenarioRunner runner(*workload::FindScenario("smoke"), 7);
  EngineOptions capped;
  capped.gamma.result_cap = 1;
  workload::ScenarioReport via_options = runner.Run("gamma", capped);
  workload::ScenarioReport via_spec = runner.Run("gamma(result_cap=1)");
  EXPECT_GT(via_spec.truncated_queries, 0u);
  EXPECT_EQ(via_spec.truncated_queries, via_options.truncated_queries);
  EXPECT_EQ(via_spec.total_matches, via_options.total_matches);
}

void ExpectBitIdenticalReports(const BatchReport& a, const BatchReport& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryReport& qa = a.queries[i];
    const QueryReport& qb = b.queries[i];
    EXPECT_EQ(qa.id, qb.id);
    EXPECT_EQ(qa.positive_matches, qb.positive_matches);
    EXPECT_EQ(qa.negative_matches, qb.negative_matches);
    EXPECT_EQ(qa.num_positive, qb.num_positive);
    EXPECT_EQ(qa.num_negative, qb.num_negative);
    EXPECT_EQ(qa.timed_out, qb.timed_out);
    EXPECT_EQ(qa.overflowed, qb.overflowed);
    EXPECT_EQ(qa.update_stats.makespan_ticks, qb.update_stats.makespan_ticks);
    EXPECT_EQ(qa.match_stats.makespan_ticks, qb.match_stats.makespan_ticks);
    EXPECT_EQ(qa.match_stats.total_busy_ticks,
              qb.match_stats.total_busy_ticks);
  }
  EXPECT_EQ(a.update_stats.makespan_ticks, b.update_stats.makespan_ticks);
  EXPECT_EQ(a.match_stats.makespan_ticks, b.match_stats.makespan_ticks);
  EXPECT_EQ(a.match_stats.tasks_executed, b.match_stats.tasks_executed);
}

// The legacy sugar is sugar only: "sharded:gamma@2" and
// "sharded(gamma, shards=2)" digest the same seeded scenario stream
// into bit-identical reports, batch by batch.
TEST(EngineSpecTest, LegacySugarBuildsBitIdenticalEngine) {
  workload::ScenarioRunner runner(*workload::FindScenario("smoke"), 2024);
  auto legacy = MakeEngine("sharded:gamma@2", runner.graph());
  auto canonical = MakeEngine("sharded(gamma, shards=2)", runner.graph());
  EXPECT_STREQ(legacy->Name(), canonical->Name());
  EXPECT_EQ(legacy->Describe().canonical_spec,
            canonical->Describe().canonical_spec);
  for (const QueryGraph& q : runner.queries()) {
    legacy->AddQuery(q);
    canonical->AddQuery(q);
  }
  ASSERT_FALSE(runner.stream().empty());
  for (const UpdateBatch& batch : runner.stream()) {
    BatchReport lr = legacy->ProcessBatch(batch);
    BatchReport cr = canonical->ProcessBatch(batch);
    ExpectBitIdenticalReports(lr, cr);
    EXPECT_GT(lr.critical_path_seconds, 0.0);
  }
}

}  // namespace
}  // namespace bdsm
