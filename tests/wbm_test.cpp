/// WBM kernel + Gamma pipeline correctness: differential testing against
/// the from-scratch oracle (matches(G') \ matches(G) and the reverse),
/// the paper's Fig. 1 running example, dedup across batch updates,
/// work-stealing result invariance, and coalesced-search equivalence.
#include <gtest/gtest.h>

#include <set>

#include "baselines/enumerate.hpp"
#include "core/gamma.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_generator.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

/// Oracle incremental matches: set difference of full enumerations.
struct OracleDelta {
  std::vector<std::string> positive;  // canonical keys
  std::vector<std::string> negative;
};

OracleDelta OracleIncremental(const LabeledGraph& before,
                              const UpdateBatch& batch,
                              const QueryGraph& q) {
  LabeledGraph after = before;
  ApplyBatch(&after, batch);
  auto keys_of = [](std::vector<MatchRecord> ms, bool positive) {
    std::set<std::string> keys;
    for (MatchRecord& m : ms) {
      m.positive = positive;
      keys.insert(m.Key());
    }
    return keys;
  };
  std::set<std::string> kb = keys_of(EnumerateAllMatches(before, q), true);
  std::set<std::string> ka = keys_of(EnumerateAllMatches(after, q), true);
  OracleDelta delta;
  for (const std::string& k : ka) {
    if (!kb.count(k)) delta.positive.push_back(k);
  }
  // Negative keys are stamped '-' by the engines.
  std::set<std::string> kbn =
      keys_of(EnumerateAllMatches(before, q), false);
  std::set<std::string> kan = keys_of(EnumerateAllMatches(after, q), false);
  for (const std::string& k : kbn) {
    if (!kan.count(k)) delta.negative.push_back(k);
  }
  std::sort(delta.positive.begin(), delta.positive.end());
  std::sort(delta.negative.begin(), delta.negative.end());
  return delta;
}

void ExpectMatchesOracle(const LabeledGraph& before,
                         const UpdateBatch& batch, const QueryGraph& q,
                         const GammaOptions& opts,
                         const char* context) {
  UpdateBatch clean = SanitizeBatch(before, batch);
  OracleDelta oracle = OracleIncremental(before, clean, q);
  Gamma gamma(before, q, opts);
  BatchResult res = gamma.ProcessBatch(clean);
  EXPECT_EQ(CanonicalKeys(res.positive_matches), oracle.positive)
      << context;
  EXPECT_EQ(CanonicalKeys(res.negative_matches), oracle.negative)
      << context;
}

GammaOptions SmallDevice() {
  GammaOptions o;
  o.device.num_sms = 2;
  o.device.warps_per_block = 4;
  return o;
}

TEST(WbmTest, PaperFigure1Example) {
  // Data graph G of Fig. 1(b): labels A=0 (v0, v1), B=1 (v2..v6),
  // C=2 (v7, v8, v9).
  LabeledGraph g({0, 0, 1, 1, 1, 1, 1, 2, 2, 2});
  // Edges before the update (read off the figure; the update edges
  // (v0,v2), (v1,v4), (v4,v5) are applied as the batch).
  g.InsertEdge(0, 3);
  g.InsertEdge(0, 4);
  g.InsertEdge(2, 3);
  g.InsertEdge(2, 4);
  g.InsertEdge(2, 7);
  g.InsertEdge(3, 8);
  g.InsertEdge(4, 8);
  g.InsertEdge(1, 5);
  g.InsertEdge(5, 6);
  g.InsertEdge(5, 9);
  g.InsertEdge(6, 9);
  g.InsertEdge(4, 5);  // will be deleted by the batch
  QueryGraph q({0, 1, 1, 2});  // Fig. 1(a)
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);

  UpdateBatch batch = {
      {true, 0, 2, kNoLabel},   // +(v0, v2)
      {true, 1, 4, kNoLabel},   // +(v1, v4)
      {false, 4, 5, kNoLabel},  // -(v4, v5)
  };
  // BDSM semantics (Example 1): four positive matches, and the negative
  // matches of -(v4,v5) are cancelled... the figure reports the *net*
  // batch effect; our oracle computes it exactly.
  ExpectMatchesOracle(g, batch, q, SmallDevice(), "fig1");

  // Cross-check the headline number: the paper's BDSM column shows 4
  // positive matches for this batch.
  Gamma gamma(g, q, SmallDevice());
  BatchResult res = gamma.ProcessBatch(SanitizeBatch(g, batch));
  EXPECT_EQ(res.positive_matches.size(), 4u);
}

class WbmDifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, int>> {};

TEST_P(WbmDifferentialTest, MatchesOracleOnRandomInstances) {
  auto [seed, cs, steal] = GetParam();
  GammaOptions opts = SmallDevice();
  opts.coalesced_search = cs;
  // Exercise the harder (relaxed-filter) coalescing path in the sweep.
  opts.aggressive_coalescing = cs;
  opts.device.steal_policy = static_cast<StealPolicy>(steal);

  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, seed);
  UpdateStreamGenerator gen(seed * 31 + 7);
  UpdateBatch batch = gen.MakeMixed(g, 40, 2, 1, 0);

  // A symmetric query (triangle + tail) to exercise coalesced search.
  QueryGraph q({0, 0, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  q.AddEdge(2, 3);
  ExpectMatchesOracle(g, batch, q, opts, "triangle+tail");

  // A path query (no automorphic subgraph pressure).
  QueryGraph path({0, 1, 0, 1});
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  ExpectMatchesOracle(g, batch, path, opts, "path");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WbmDifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool(),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_cs" : "_nocs") + "_steal" +
             std::to_string(std::get<2>(info.param));
    });

TEST(WbmTest, EdgeLabeledGraphs) {
  for (uint64_t seed : {11ull, 12ull}) {
    LabeledGraph g = GenerateUniformGraph(120, 420, 2, 3, seed);
    UpdateStreamGenerator gen(seed);
    UpdateBatch batch = gen.MakeMixed(g, 30, 2, 1, 3);
    QueryGraph q({0, 1, 0});
    q.AddEdge(0, 1, 0);
    q.AddEdge(1, 2, 1);
    q.AddEdge(0, 2, 2);
    ExpectMatchesOracle(g, batch, q, SmallDevice(), "edge-labeled");
  }
}

TEST(WbmTest, NoDuplicateMatchesAcrossBatch) {
  // Dense insert batch in a small region: many matches share several
  // inserted edges; the total-order rule must attribute each exactly
  // once.
  LabeledGraph g({0, 0, 0, 0, 0, 0});
  UpdateBatch batch;
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = a + 1; b < 6; ++b) {
      batch.push_back(UpdateOp{true, a, b, kNoLabel});
    }
  }
  QueryGraph q({0, 0, 0});  // triangle
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  Gamma gamma(g, q, SmallDevice());
  BatchResult res = gamma.ProcessBatch(batch);
  auto keys = CanonicalKeys(res.positive_matches);
  std::set<std::string> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size()) << "duplicate incremental matches";
  // C(6,3) triangles x 6 automorphic mappings each.
  EXPECT_EQ(res.positive_matches.size(), 20u * 6u);
  ExpectMatchesOracle(g, batch, q, SmallDevice(), "clique-batch");
}

TEST(WbmTest, StealingPoliciesAgreeOnResults) {
  LabeledGraph g = LoadDataset(DatasetId::kGithub);
  QueryExtractor ex(g, 3);
  auto qopt = ex.Extract(5, QueryGraph::StructureClass::kSparse);
  ASSERT_TRUE(qopt.has_value());
  UpdateStreamGenerator gen(9);
  UpdateBatch batch = gen.MakeInsertions(g, 60, 0);

  std::vector<std::vector<std::string>> all_keys;
  for (StealPolicy p :
       {StealPolicy::kNone, StealPolicy::kPassive, StealPolicy::kActive}) {
    GammaOptions opts = SmallDevice();
    opts.device.steal_policy = p;
    Gamma gamma(g, *qopt, opts);
    BatchResult res = gamma.ProcessBatch(batch);
    all_keys.push_back(CanonicalKeys(res.positive_matches));
  }
  EXPECT_EQ(all_keys[0], all_keys[1]);
  EXPECT_EQ(all_keys[0], all_keys[2]);
}

TEST(WbmTest, CoalescedSearchEquivalence) {
  // cs on/off must agree on a strongly symmetric query where coalesced
  // plans actually fire.
  LabeledGraph g = GenerateUniformGraph(150, 700, 2, 1, 21);
  UpdateStreamGenerator gen(22);
  UpdateBatch batch = gen.MakeInsertions(g, 40, 0);
  QueryGraph q({0, 0, 0, 0});  // square
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  GammaOptions on = SmallDevice(), off = SmallDevice();
  on.coalesced_search = true;
  on.aggressive_coalescing = true;
  off.coalesced_search = false;
  Gamma a(g, q, on), b(g, q, off);
  BatchResult ra = a.ProcessBatch(batch);
  BatchResult rb = b.ProcessBatch(batch);
  EXPECT_EQ(CanonicalKeys(ra.positive_matches),
            CanonicalKeys(rb.positive_matches));
  EXPECT_GT(a.query_context().coalesced_pairs, 0u);
}

TEST(WbmTest, SequentialBatchesStayConsistent) {
  // Stream of batches: the engine's internal graph/encoder state must
  // track the truth across rounds.
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 33);
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  Gamma gamma(g, q, SmallDevice());
  UpdateStreamGenerator gen(34);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch batch = SanitizeBatch(g, gen.MakeMixed(g, 30, 2, 1, 0));
    OracleDelta oracle = OracleIncremental(g, batch, q);
    BatchResult res = gamma.ProcessBatch(batch);
    EXPECT_EQ(CanonicalKeys(res.positive_matches), oracle.positive)
        << "round " << round;
    EXPECT_EQ(CanonicalKeys(res.negative_matches), oracle.negative)
        << "round " << round;
    ApplyBatch(&g, batch);  // keep the reference in sync
  }
}

TEST(WbmTest, EmptyBatchYieldsNothing) {
  LabeledGraph g = GenerateUniformGraph(50, 150, 2, 1, 44);
  QueryGraph q({0, 1});
  q.AddEdge(0, 1);
  Gamma gamma(g, q, SmallDevice());
  BatchResult res = gamma.ProcessBatch({});
  EXPECT_TRUE(res.positive_matches.empty());
  EXPECT_TRUE(res.negative_matches.empty());
}

TEST(WbmTest, TwoVertexQuery) {
  // |V(Q)| = 2 exercises the InitPlan fast path.
  LabeledGraph g = GenerateUniformGraph(80, 240, 2, 1, 45);
  UpdateStreamGenerator gen(46);
  UpdateBatch batch = gen.MakeMixed(g, 20, 1, 1, 0);
  QueryGraph q({0, 1});
  q.AddEdge(0, 1);
  ExpectMatchesOracle(g, batch, q, SmallDevice(), "2-vertex");
  QueryGraph qsym({0, 0});  // symmetric: both orientations per edge
  qsym.AddEdge(0, 1);
  ExpectMatchesOracle(g, batch, qsym, SmallDevice(), "2-vertex-sym");
}

}  // namespace
}  // namespace bdsm
