/// Observability-layer tests (src/obs/; docs/OBSERVABILITY.md):
/// metric primitives, cross-thread striping, the runtime switch,
/// registry-vs-report consistency, snapshot determinism (counters are
/// bit-identical across same-seed runs once `*_us` measured-time
/// metrics are filtered out), trace structural determinism (the golden
/// smoke digest), chrome-trace export shape, and the per-tenant
/// admission/shed span contract on a noisy-neighbor run.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceRecorder;
using workload::ScenarioRunner;

/// Every obs test starts and ends with the layer disabled and empty —
/// the registry and recorder are process-global.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }
  static void ResetAll() {
    obs::SetEnabled(false);
    TraceRecorder::Instance().SetEnabled(false);
    MetricsRegistry::Instance().Reset();
    TraceRecorder::Instance().Reset();
  }
};

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  obs::Counter& c = MetricsRegistry::Instance().GetCounter("t.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Value(), 7u);
  c.AddSecondsAsMicros(0.001);  // 1000 us
  EXPECT_EQ(c.Value(), 1007u);

  obs::Gauge& g = MetricsRegistry::Instance().GetGauge("t.gauge");
  g.Set(42);
  g.Set(-7);
  EXPECT_EQ(g.Value(), -7);

  obs::Histogram& h = MetricsRegistry::Instance().GetHistogram(
      "t.hist_us", {1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(10.0);   // bucket 1 (<= 10, inclusive bound)
  h.Observe(99.0);   // bucket 2
  h.Observe(1e6);    // overflow bucket
  obs::Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 10.0 + 99.0 + 1e6);

  // Same name returns the same handle; Reset zeroes without
  // invalidating it (the static-macro-cache contract).
  EXPECT_EQ(&c, &MetricsRegistry::Instance().GetCounter("t.counter"));
  MetricsRegistry::Instance().Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(ObsTest, CounterStripesSumAcrossThreads) {
  obs::Counter& c = MetricsRegistry::Instance().GetCounter("t.mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), 8000u);
}

#if BDSM_OBS
TEST_F(ObsTest, MacrosRespectRuntimeSwitch) {
  BDSM_OBS_COUNT("t.switch", 5);  // disabled: must not register or count
  MetricsSnapshot off = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(off.CounterValue("t.switch"), 0u);

  obs::SetEnabled(true);
  BDSM_OBS_COUNT("t.switch", 5);
  BDSM_OBS_GAUGE_SET("t.switch_gauge", 9);
  BDSM_OBS_HISTOGRAM_US("t.switch_us", 0.000002);
  MetricsSnapshot on = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(on.CounterValue("t.switch"), 5u);
  EXPECT_EQ(on.GaugeValue("t.switch_gauge"), 9);
  // Registry entries persist across Reset() (handle stability), so look
  // the histogram up by name rather than asserting the registry-wide count.
  bool found = false;
  for (const auto& hist : on.histograms) {
    if (hist.name == "t.switch_us") {
      found = true;
      EXPECT_EQ(hist.data.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}
#endif

TEST_F(ObsTest, MetricsJsonCarriesProvenance) {
  obs::SetEnabled(true);
  MetricsRegistry::Instance().GetCounter("t.json").Add(3);
  obs::RunProvenance prov;
  prov.tool = "obs_test";
  prov.scenario = "smoke";
  prov.engine = "gamma";
  prov.seed = 7;
  std::string json = MetricsRegistry::Instance().Snapshot().ToJson(&prov);
  EXPECT_NE(json.find("\"schema\": \"bdsm-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"t.json\": 3"), std::string::npos);
}

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

/// Runs the smoke scenario on a flat gamma engine with obs enabled and
/// returns (snapshot, report).
MetricsSnapshot RunSmoke(workload::ScenarioReport* report_out,
                         size_t max_batches = static_cast<size_t>(-1)) {
  const workload::ScenarioSpec* spec = workload::FindScenario("smoke");
  EXPECT_NE(spec, nullptr);
  ScenarioRunner runner(*spec, workload::kDefaultScenarioSeed);
  ScenarioRunner::RunControls controls;
  controls.max_batches = max_batches;
  workload::ScenarioReport r = runner.Run("gamma", EngineOptions{}, controls);
  if (report_out != nullptr) *report_out = r;
  return MetricsRegistry::Instance().Snapshot();
}

/// Counters with measured-time names (`*_us`) are excluded from
/// determinism comparisons — everything else must be bit-identical
/// across same-seed runs (the naming rule of docs/OBSERVABILITY.md).
std::vector<std::pair<std::string, uint64_t>> DeterministicCounters(
    const MetricsSnapshot& snap) {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [name, value] : snap.counters) {
    if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_us") == 0) {
      continue;
    }
    out.emplace_back(name, value);
  }
  return out;
}

#if BDSM_OBS
TEST_F(ObsTest, RegistryAgreesWithScenarioReport) {
  obs::SetEnabled(true);
  workload::ScenarioReport report;
  MetricsSnapshot snap = RunSmoke(&report);
  // The registry-backed views publish from the same variables the
  // report is built from — they can never disagree.
  EXPECT_EQ(snap.CounterValue("scenario.batches"), report.batches.size());
  EXPECT_EQ(snap.CounterValue("scenario.ops"), report.total_ops);
  EXPECT_EQ(snap.CounterValue("scenario.matches"), report.total_matches);
  EXPECT_EQ(snap.CounterValue("engine.batches"), report.batches.size());
  EXPECT_EQ(snap.CounterValue("engine.ops"), report.total_ops);
  EXPECT_EQ(snap.CounterValue("engine.matches.positive") +
                snap.CounterValue("engine.matches.negative"),
            report.total_matches);
  // The GPMA plan counters fire once per engine batch phase pass.
  EXPECT_GT(snap.CounterValue("gpma.batches"), 0u);
}

TEST_F(ObsTest, CounterSnapshotsDeterministicAcrossRuns) {
  obs::SetEnabled(true);
  MetricsSnapshot first = RunSmoke(nullptr);
  MetricsRegistry::Instance().Reset();
  MetricsSnapshot second = RunSmoke(nullptr);
  EXPECT_EQ(DeterministicCounters(first), DeterministicCounters(second));
  EXPECT_FALSE(DeterministicCounters(first).empty());
}

TEST_F(ObsTest, DisabledRunMatchesEnabledRunOutput) {
  // Observability must be read-only: per-batch match counts are
  // bit-identical whether the layer records or not.
  workload::ScenarioReport off_report;
  RunSmoke(&off_report, 2);
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  workload::ScenarioReport on_report;
  RunSmoke(&on_report, 2);
  ASSERT_EQ(off_report.batches.size(), on_report.batches.size());
  for (size_t i = 0; i < off_report.batches.size(); ++i) {
    EXPECT_EQ(off_report.batches[i].positive_matches,
              on_report.batches[i].positive_matches);
    EXPECT_EQ(off_report.batches[i].negative_matches,
              on_report.batches[i].negative_matches);
    EXPECT_EQ(off_report.batches[i].ops, on_report.batches[i].ops);
  }
  EXPECT_EQ(off_report.total_matches, on_report.total_matches);
}

TEST_F(ObsTest, SmokeTraceStructurallyDeterministic) {
  // The golden-trace gate: same (spec, scenario, seed) => the same
  // span structure (names, domains, batch/shard/tenant tags, details);
  // only the measured times may differ.
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  RunSmoke(nullptr, 3);
  const uint64_t digest1 = TraceRecorder::Instance().StructuralDigest();
  const size_t spans1 = TraceRecorder::Instance().Spans().size();
  ResetAll();
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  RunSmoke(nullptr, 3);
  EXPECT_EQ(TraceRecorder::Instance().StructuralDigest(), digest1);
  EXPECT_EQ(TraceRecorder::Instance().Spans().size(), spans1);
  EXPECT_GT(spans1, 0u);
}

TEST_F(ObsTest, EngineSpansTileTheModeledTimeline) {
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  RunSmoke(nullptr, 3);
  std::vector<obs::TraceSpan> spans = TraceRecorder::Instance().Spans();
  size_t batches = 0, phases = 0;
  for (const obs::TraceSpan& s : spans) {
    if (s.name == "engine.batch") {
      ++batches;
      EXPECT_EQ(s.domain, obs::Domain::kModeledDevice);
    }
    if (s.name == "engine.match.neg" || s.name == "engine.update" ||
        s.name == "engine.match.pos") {
      ++phases;
    }
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(phases, 3u * 3u);  // three phases per batch
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  RunSmoke(nullptr, 2);
  obs::RunProvenance prov;
  prov.tool = "obs_test";
  prov.scenario = "smoke";
  prov.engine = "gamma";
  prov.seed = workload::kDefaultScenarioSeed;
  const std::string path =
      ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(TraceRecorder::Instance().WriteChromeJson(path, prov));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"bdsm-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("clock: modeled-device"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity without a
  // JSON parser in the test deps.
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, NoisyNeighborEmitsTenantAndShardSpans) {
  // The acceptance experiment's trace: a tenant front door over a
  // sharded inner engine must produce per-tenant admission spans and
  // per-shard kernel-phase spans in one trace, and the shed-span
  // presence must agree with the shed counter.
  obs::SetEnabled(true);
  TraceRecorder::Instance().SetEnabled(true);
  const workload::ScenarioSpec* spec =
      workload::FindScenario("noisy-neighbor");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner runner(*spec, workload::kDefaultScenarioSeed);
  ScenarioRunner::RunControls controls;
  controls.max_batches = 6;
  runner.Run("tenant(sharded(gamma, shards=2), batch_init=64, batch_max=64)",
             EngineOptions{}, controls);

  std::set<std::string> admit_tenants, shed_tenants;
  size_t shard_spans = 0;
  for (const obs::TraceSpan& s : TraceRecorder::Instance().Spans()) {
    if (s.name == "tenant.admit") admit_tenants.insert(s.tenant);
    if (s.name == "tenant.shed") shed_tenants.insert(s.tenant);
    if (s.name == "serve.shard") {
      ++shard_spans;
      EXPECT_GE(s.shard, 0);
      EXPECT_LT(s.shard, 2);
      EXPECT_EQ(s.domain, obs::Domain::kCriticalPath);
    }
  }
  EXPECT_FALSE(admit_tenants.empty());
  EXPECT_GT(shard_spans, 0u);
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(!shed_tenants.empty(),
            snap.CounterValue("tenant.shed_ops") > 0);
}
#endif  // BDSM_OBS

}  // namespace
}  // namespace bdsm
