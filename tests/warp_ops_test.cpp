/// Warp-primitive tests: results and charged costs of the cooperative
/// toolbox (ballot, shuffle, scan, parallel-binary-search intersection).
#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/warp_ops.hpp"

namespace bdsm {
namespace {

struct Fixture {
  DeviceConfig cfg;
  SharedMemory shm{48 * 1024};
  DeviceAllocator alloc{1 << 20};
  WarpContext ctx{cfg, &shm, &alloc, 0, 0};
};

TEST(WarpOpsTest, BallotPacksLanes) {
  Fixture f;
  std::vector<bool> lanes(32, false);
  lanes[0] = lanes[5] = lanes[31] = true;
  uint32_t mask = WarpOps::Ballot(f.ctx, lanes);
  EXPECT_EQ(mask, (1u << 0) | (1u << 5) | (1u << 31));
  EXPECT_EQ(f.ctx.DrainTicks(), f.cfg.ticks_per_compute_step);
}

TEST(WarpOpsTest, ShuffleBroadcasts) {
  Fixture f;
  EXPECT_EQ(WarpOps::Shuffle(f.ctx, 42), 42);
  EXPECT_GT(f.ctx.DrainTicks(), 0u);
}

TEST(WarpOpsTest, InclusiveScan) {
  Fixture f;
  std::vector<uint32_t> in = {1, 2, 3, 4, 5};
  auto out = WarpOps::InclusiveScan(f.ctx, in);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 3, 6, 10, 15}));
  // Hillis-Steele: log2(32) = 5 steps.
  EXPECT_EQ(f.ctx.compute_steps(), 5u);
}

TEST(WarpOpsTest, IntersectSortedCorrect) {
  Fixture f;
  std::vector<VertexId> a = {1, 3, 5, 7, 9, 11};
  std::vector<VertexId> b = {2, 3, 4, 7, 8, 11, 20, 30};
  auto out = WarpOps::IntersectSorted(f.ctx, a, b);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 7, 11}));
  EXPECT_GT(f.ctx.global_transactions(), 0u);
}

TEST(WarpOpsTest, IntersectProbesSmallerSide) {
  Fixture f1, f2;
  std::vector<VertexId> small = {5, 10};
  std::vector<VertexId> big(1000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<VertexId>(2 * i);
  }
  WarpOps::IntersectSorted(f1.ctx, small, big);
  WarpOps::IntersectSorted(f2.ctx, big, small);
  // Symmetric: both orders probe from the 2-element side.
  EXPECT_EQ(f1.ctx.DrainTicks(), f2.ctx.DrainTicks());
}

TEST(WarpOpsTest, IntersectOpsScalesLogarithmically) {
  EXPECT_EQ(WarpOps::IntersectOps(1, 2), 1u);
  EXPECT_EQ(WarpOps::IntersectOps(1, 1024), 10u);
  EXPECT_EQ(WarpOps::IntersectOps(8, 1024), 80u);
  EXPECT_LT(WarpOps::IntersectOps(10, 100),
            WarpOps::IntersectOps(10, 100000));
}

TEST(WarpOpsTest, EmptyInputs) {
  Fixture f;
  std::vector<VertexId> empty;
  std::vector<VertexId> some = {1, 2, 3};
  EXPECT_TRUE(WarpOps::IntersectSorted(f.ctx, empty, some).empty());
  EXPECT_TRUE(WarpOps::IntersectSorted(f.ctx, some, empty).empty());
  auto scanned = WarpOps::InclusiveScan(f.ctx, empty);
  EXPECT_TRUE(scanned.empty());
}

}  // namespace
}  // namespace bdsm
