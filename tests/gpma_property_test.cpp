/// GPMA property suite: a seeded randomized differential harness
/// against a std::map oracle, run over a grid of seeds x segment
/// capacities.  After every batch the harness checks
///   * the container's own invariants (CheckInvariants: sortedness,
///     tree/bitmap coherence, counts);
///   * the physical layout against the oracle's sorted key sequence —
///     per-segment counts, per-segment minima (with kEmptyKey for empty
///     segments), occupancy-bitmap words as prefix masks whose popcount
///     equals the live count;
///   * density and size-class waste bounds (AllocatedSlots within the
///     documented slack of the live entries);
///   * locate equivalence: the segment-tree descent
///     (LocateSegmentIndexed) answers exactly like a linear scan over
///     segment minima (LocateSegmentLinear) for present keys, absent
///     keys, and the extremes;
///   * the full engine-visible surface — NumEdges, HasEdge/EdgeLabel
///     both directions, and every vertex's NeighborsOf — against the
///     oracle.
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "gpma/gpma.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace bdsm {
namespace {

using Oracle = std::map<std::pair<VertexId, VertexId>, Label>;

constexpr VertexId kNumVertices = 160;

/// Directed sorted key/label sequence the container must store.
std::vector<std::pair<uint64_t, Label>> DirectedEntries(const Oracle& o) {
  std::vector<std::pair<uint64_t, Label>> out;
  out.reserve(o.size() * 2);
  for (const auto& [uv, l] : o) {
    out.emplace_back(PackEdge(uv.first, uv.second), l);
    out.emplace_back(PackEdge(uv.second, uv.first), l);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Mirrors ApplyBatch's phase semantics onto the oracle: all deletions
/// first (absent edges skipped), then insertions (existing skipped).
/// ApplyBatch materializes insertions in sorted (key, label) order, so
/// among duplicate same-batch inserts of one edge the smallest label
/// wins — the oracle applies them in the same order.
void ApplyToOracle(Oracle* o, const UpdateBatch& batch) {
  for (const UpdateOp& op : batch) {
    if (op.is_insert) continue;
    VertexId u = std::min(op.u, op.v), v = std::max(op.u, op.v);
    o->erase({u, v});
  }
  std::vector<std::tuple<VertexId, VertexId, Label>> inserts;
  for (const UpdateOp& op : batch) {
    if (!op.is_insert) continue;
    inserts.emplace_back(std::min(op.u, op.v), std::max(op.u, op.v),
                         op.elabel);
  }
  std::sort(inserts.begin(), inserts.end());
  for (const auto& [u, v, l] : inserts) o->emplace(std::pair{u, v}, l);
}

class GpmaPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {
 protected:
  uint64_t seed() const { return std::get<0>(GetParam()); }
  uint32_t cap() const { return std::get<1>(GetParam()); }

  /// Layout check: walking the segments left to right must reproduce
  /// the oracle's sorted directed key sequence — counts, minima, and
  /// bitmap words all derive from it.
  void CheckLayout(const Gpma& g, const Oracle& oracle) {
    auto entries = DirectedEntries(oracle);
    ASSERT_EQ(g.NumEntries(), entries.size());
    size_t n = g.NumSegments();
    size_t at = 0;
    uint64_t prev_min = 0;
    bool seen_nonempty = false;
    size_t allocated = 0;
    for (size_t seg = 0; seg < n; ++seg) {
      uint32_t count = g.SegmentCount(seg);
      uint32_t alloc = g.SegmentAllocated(seg);
      allocated += alloc;
      ASSERT_LE(count, alloc);
      ASSERT_LE(alloc, g.segment_capacity());
      // Size-class slack: the class never exceeds the hysteresis bound
      // (the class for twice the live count), modulo the 4-slot floor.
      uint32_t bound = Gpma::SizeClassFor(
          static_cast<uint32_t>(
              std::min<uint64_t>(2 * std::max(count, 1u),
                                 g.segment_capacity())),
          g.segment_capacity());
      ASSERT_LE(alloc, std::max(bound, 4u)) << "segment " << seg;
      uint64_t min = g.SegmentMin(seg);
      if (count == 0) {
        ASSERT_EQ(min, Gpma::kEmptyKey) << "segment " << seg;
      } else {
        ASSERT_LT(at, entries.size());
        ASSERT_EQ(min, entries[at].first) << "segment " << seg;
        // Mins of non-empty segments are strictly increasing.
        if (seen_nonempty) ASSERT_GT(min, prev_min) << "segment " << seg;
        prev_min = min;
        seen_nonempty = true;
        at += count;
      }
      // Occupancy words are the prefix mask of count.
      uint32_t seen = 0;
      for (size_t w = 0; w < g.OccupancyWordsPerSegment(); ++w) {
        uint64_t word = g.OccupancyWord(seg, w);
        uint32_t full = count >= (w + 1) * 64 ? 64
                        : count > w * 64     ? count - w * 64
                                             : 0;
        ASSERT_EQ(word, full == 64 ? ~0ull : (1ull << full) - 1)
            << "segment " << seg << " word " << w;
        seen += std::popcount(word);
      }
      ASSERT_EQ(seen, count) << "segment " << seg;
    }
    ASSERT_EQ(at, entries.size());
    // Aggregate waste bound: quarter-step classes bound fresh
    // allocations within 25% of live entries; the shrink hysteresis may
    // retain up to the class for twice the live count after deletions —
    // so total allocation stays within 2.5x live plus the class floor.
    ASSERT_EQ(allocated, g.AllocatedSlots());
    ASSERT_LE(allocated,
              5 * g.NumEntries() / 2 + 4 * n);
  }

  /// Locate-path equivalence on a probe set derived from the oracle.
  void CheckLocate(const Gpma& g, const Oracle& oracle, Rng* rng) {
    auto probe = [&](uint64_t key) {
      ASSERT_EQ(g.LocateSegmentIndexed(key), g.LocateSegmentLinear(key))
          << "key " << key;
    };
    // kEmptyKey itself is the reserved empty-segment sentinel, not a
    // storable key (it would tie with empty subtrees in the descent);
    // probe up to the largest storable key instead.
    probe(0);
    probe(Gpma::kEmptyKey - 1);
    auto entries = DirectedEntries(oracle);
    for (int i = 0; i < 32 && !entries.empty(); ++i) {
      uint64_t k = entries[rng->Uniform(entries.size())].first;
      probe(k);
      probe(k - 1);
      probe(k + 1);
    }
    for (int i = 0; i < 32; ++i) {
      probe(PackEdge(static_cast<VertexId>(rng->Uniform(kNumVertices)),
                     static_cast<VertexId>(rng->Uniform(kNumVertices))));
    }
  }

  /// Engine-visible surface vs the oracle.
  void CheckVisible(const Gpma& g, const Oracle& oracle, Rng* rng) {
    ASSERT_EQ(g.NumEdges(), oracle.size());
    // Full adjacency sweep.
    std::vector<std::vector<Neighbor>> adj(kNumVertices);
    for (const auto& [uv, l] : oracle) {
      adj[uv.first].push_back(Neighbor{uv.second, l});
      adj[uv.second].push_back(Neighbor{uv.first, l});
    }
    for (VertexId v = 0; v < kNumVertices; ++v) {
      std::sort(adj[v].begin(), adj[v].end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.v < b.v;
                });
      auto got = g.NeighborsOf(v);
      ASSERT_EQ(got.size(), adj[v].size()) << "vertex " << v;
      ASSERT_EQ(g.Degree(v), adj[v].size()) << "vertex " << v;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].v, adj[v][i].v) << "vertex " << v;
        ASSERT_EQ(got[i].elabel, adj[v][i].elabel) << "vertex " << v;
      }
    }
    // Point lookups: present edges both directions, absent edges.
    for (int i = 0; i < 64 && !oracle.empty(); ++i) {
      auto it = oracle.begin();
      std::advance(it, rng->Uniform(oracle.size()));
      auto [uv, l] = *it;
      ASSERT_TRUE(g.HasEdge(uv.first, uv.second));
      ASSERT_TRUE(g.HasEdge(uv.second, uv.first));
      ASSERT_EQ(g.EdgeLabel(uv.first, uv.second), l);
      ASSERT_EQ(g.EdgeLabel(uv.second, uv.first), l);
    }
    for (int i = 0; i < 64; ++i) {
      VertexId u = static_cast<VertexId>(rng->Uniform(kNumVertices));
      VertexId v = static_cast<VertexId>(rng->Uniform(kNumVertices));
      if (u == v) continue;
      bool want = oracle.count({std::min(u, v), std::max(u, v)}) > 0;
      ASSERT_EQ(g.HasEdge(u, v), want);
    }
  }

  void CheckAll(const Gpma& g, const Oracle& oracle, Rng* rng) {
    g.CheckInvariants();
    CheckLayout(g, oracle);
    CheckLocate(g, oracle, rng);
    CheckVisible(g, oracle, rng);
  }

  UpdateBatch MakeBatch(const Oracle& oracle, Rng* rng, size_t ops,
                        double insert_prob) {
    UpdateBatch batch;
    for (size_t i = 0; i < ops; ++i) {
      if (!oracle.empty() && !rng->Chance(insert_prob)) {
        auto it = oracle.begin();
        std::advance(it, rng->Uniform(oracle.size()));
        batch.push_back(
            UpdateOp{false, it->first.first, it->first.second, kNoLabel});
      } else {
        VertexId u = static_cast<VertexId>(rng->Uniform(kNumVertices));
        VertexId v = static_cast<VertexId>(rng->Uniform(kNumVertices));
        if (u == v) v = (v + 1) % kNumVertices;
        batch.push_back(
            UpdateOp{true, u, v, static_cast<Label>(rng->Uniform(5))});
      }
    }
    return batch;
  }
};

TEST_P(GpmaPropertyTest, DifferentialAgainstMapOracle) {
  Gpma gpma(cap());
  Oracle oracle;
  Rng rng(seed() * 7919 + cap());
  gpma.CheckInvariants();
  // Growth phase: insert-heavy batches through the batch path.
  for (int round = 0; round < 10; ++round) {
    UpdateBatch batch = MakeBatch(oracle, &rng, 120, 0.85);
    gpma.ApplyBatch(batch);
    ApplyToOracle(&oracle, batch);
    CheckAll(gpma, oracle, &rng);
  }
  size_t peak_segments = gpma.NumSegments();
  // Churn phase: balanced mixes, exercising the deferred delete-phase
  // rebalancing and in-place inserts together.
  for (int round = 0; round < 10; ++round) {
    UpdateBatch batch = MakeBatch(oracle, &rng, 140, 0.5);
    gpma.ApplyBatch(batch);
    ApplyToOracle(&oracle, batch);
    CheckAll(gpma, oracle, &rng);
  }
  // Drain phase: delete-heavy batches down to a sliver, hitting the
  // size-class shrink hysteresis and the direct-to-target array shrink.
  for (int round = 0; round < 8; ++round) {
    UpdateBatch batch = MakeBatch(oracle, &rng, 160, 0.1);
    gpma.ApplyBatch(batch);
    ApplyToOracle(&oracle, batch);
    CheckAll(gpma, oracle, &rng);
  }
  // Final full drain through one batch.
  UpdateBatch drain;
  for (const auto& [uv, l] : oracle) {
    drain.push_back(UpdateOp{false, uv.first, uv.second, kNoLabel});
  }
  gpma.ApplyBatch(drain);
  oracle.clear();
  CheckAll(gpma, oracle, &rng);
  EXPECT_EQ(gpma.NumEdges(), 0u);
  EXPECT_LT(gpma.NumSegments(), peak_segments);
}

TEST_P(GpmaPropertyTest, SingleEdgePathMatchesOracle) {
  // The same differential discipline over the single-edge API, which
  // rebalances per operation instead of per batch phase.
  Gpma gpma(cap());
  Oracle oracle;
  Rng rng(seed() * 104729 + cap());
  for (int step = 0; step < 600; ++step) {
    VertexId u = static_cast<VertexId>(rng.Uniform(kNumVertices));
    VertexId v = static_cast<VertexId>(rng.Uniform(kNumVertices));
    if (u == v) v = (v + 1) % kNumVertices;
    VertexId lo = std::min(u, v), hi = std::max(u, v);
    // Bias toward inserts early, deletes late.
    bool insert = rng.Chance(step < 400 ? 0.8 : 0.2);
    if (insert) {
      Label l = static_cast<Label>(rng.Uniform(5));
      bool fresh = oracle.emplace(std::pair{lo, hi}, l).second;
      ASSERT_EQ(gpma.InsertEdge(u, v, l), fresh);
    } else if (!oracle.empty()) {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      auto uv = it->first;
      oracle.erase(it);
      ASSERT_TRUE(gpma.RemoveEdge(uv.first, uv.second));
    }
    if (step % 50 == 49) CheckAll(gpma, oracle, &rng);
  }
  CheckAll(gpma, oracle, &rng);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByCapacities, GpmaPropertyTest,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u),
                       ::testing::Values(8u, 16u, 32u)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, uint32_t>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_cap" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bdsm
