/// Automorphism engine tests: group enumeration on canonical shapes,
/// k-degenerated subgraph discovery, orbit structure, overlap rules,
/// and the permutation algebra the coalesced search relies on.
#include <gtest/gtest.h>

#include <set>

#include "core/automorphism.hpp"
#include "core/query_context.hpp"

namespace bdsm {
namespace {

uint16_t FullMask(const QueryGraph& q) {
  return static_cast<uint16_t>((1u << q.NumVertices()) - 1);
}

TEST(AutomorphismTest, TriangleSameLabels) {
  QueryGraph q({0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  auto autos = InducedAutomorphisms(q, FullMask(q));
  EXPECT_EQ(autos.size(), 6u);  // S3
}

TEST(AutomorphismTest, TriangleDistinctLabelBreaksSymmetry) {
  QueryGraph q({0, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  auto autos = InducedAutomorphisms(q, FullMask(q));
  EXPECT_EQ(autos.size(), 2u);  // identity + swap(0,1)
}

TEST(AutomorphismTest, EdgeLabelsRespected) {
  QueryGraph q({0, 0, 0});
  q.AddEdge(0, 1, 5);
  q.AddEdge(1, 2, 6);
  q.AddEdge(0, 2, 6);
  auto autos = InducedAutomorphisms(q, FullMask(q));
  // Only identity and the swap fixing vertex 1's role: sigma must map
  // the unique 5-labeled edge onto itself -> {id, swap(0,1)}.
  EXPECT_EQ(autos.size(), 2u);
}

TEST(AutomorphismTest, StarLeaves) {
  QueryGraph q({0, 1, 1, 1});  // center 0, three leaves
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(0, 3);
  auto autos = InducedAutomorphisms(q, FullMask(q));
  EXPECT_EQ(autos.size(), 6u);  // S3 on leaves
}

TEST(AutomorphismTest, InducedSubgraphMask) {
  // Paper Example 4: removing u3 from Q leaves {u0,u1,u2} automorphic.
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  // Full graph: u1 has a C neighbor, u2 does not -> only identity.
  EXPECT_EQ(InducedAutomorphisms(q, FullMask(q)).size(), 1u);
  // Remove u3 (mask 0b0111): swap(u1,u2) appears.
  auto autos = InducedAutomorphisms(q, 0b0111);
  EXPECT_EQ(autos.size(), 2u);
  bool found_swap = false;
  for (const Permutation& p : autos) {
    if (p[0] == 0 && p[1] == 2 && p[2] == 1) found_swap = true;
    EXPECT_EQ(p[3], kInvalidVertex);  // removed vertex stays unmapped
  }
  EXPECT_TRUE(found_swap);
}

TEST(EquivalentEdgeGroupsTest, PaperExampleGroup) {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  auto groups = ComputeEquivalentEdgeGroups(q);
  ASSERT_FALSE(groups.empty());
  // Expect a k=1 group on mask {u0,u1,u2} whose orbit contains the
  // directed pairs of e(u0,u1) and e(u0,u2).
  bool found = false;
  for (const auto& g : groups) {
    if (g.vertex_mask != 0b0111) continue;
    EXPECT_EQ(g.k, 1u);
    std::set<std::pair<VertexId, VertexId>> orbit(
        g.directed_orbit.begin(), g.directed_orbit.end());
    if (orbit.count({0, 1}) && orbit.count({0, 2})) found = true;
    EXPECT_EQ(g.perms.size(), g.directed_orbit.size() - 1);
  }
  EXPECT_TRUE(found);
}

TEST(EquivalentEdgeGroupsTest, DirectedPairsDisjointAcrossGroups) {
  // A symmetric square: many overlapping automorphic subgraphs; rules
  // 1 & 2 must leave every directed pair in at most one group.
  QueryGraph q({0, 0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  auto groups = ComputeEquivalentEdgeGroups(q);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& g : groups) {
    for (const auto& d : g.directed_orbit) {
      EXPECT_TRUE(seen.insert(d).second)
          << "pair (" << d.first << "," << d.second
          << ") in two groups";
    }
  }
  // The square is fully symmetric at k=0: expect one big group covering
  // all 8 directed pairs.
  ASSERT_FALSE(groups.empty());
  EXPECT_EQ(groups.front().k, 0u);
  EXPECT_EQ(groups.front().directed_orbit.size(), 8u);
}

TEST(EquivalentEdgeGroupsTest, PermutationsMapSeedCorrectly) {
  // For each group: P_d = P o perm must place the update edge at pair d,
  // i.e. perm[d.first] = rep.first and perm[d.second] = rep.second.
  QueryGraph q({0, 0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  for (const auto& g : ComputeEquivalentEdgeGroups(q)) {
    auto rep = g.directed_orbit.front();
    for (size_t i = 1; i < g.directed_orbit.size(); ++i) {
      auto d = g.directed_orbit[i];
      const Permutation& p = g.perms[i - 1];
      EXPECT_EQ(p[d.first], rep.first);
      EXPECT_EQ(p[d.second], rep.second);
    }
  }
}

TEST(EquivalentEdgeGroupsTest, NoGroupsWhenLabelsDistinct) {
  QueryGraph q({0, 1, 2, 3});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  EXPECT_TRUE(ComputeEquivalentEdgeGroups(q).empty());
}

TEST(QueryContextTest, PlansCoverAllDirectedPairsExactlyOnce) {
  for (bool cs : {false, true}) {
    QueryGraph q({0, 1, 1, 2});
    q.AddEdge(0, 1);
    q.AddEdge(0, 2);
    q.AddEdge(1, 2);
    q.AddEdge(1, 3);
    QueryContext ctx = BuildQueryContext(q, cs);
    std::multiset<std::pair<VertexId, VertexId>> covered;
    for (const SeedPlan& plan : ctx.plans) {
      covered.insert({plan.a, plan.b});
      // Pairs derived by permutation: perm maps d -> rep, so d.first is
      // the vertex x with perm[x] == plan.a paired with perm == plan.b.
      for (const Permutation& p : plan.perms) {
        VertexId df = kInvalidVertex, ds = kInvalidVertex;
        for (VertexId x = 0; x < q.NumVertices(); ++x) {
          if (p[x] == plan.a) df = x;
          if (p[x] == plan.b) ds = x;
        }
        ASSERT_NE(df, kInvalidVertex);
        ASSERT_NE(ds, kInvalidVertex);
        covered.insert({df, ds});
      }
    }
    EXPECT_EQ(covered.size(), 2 * q.NumEdges()) << "cs=" << cs;
    for (const QueryEdge& e : q.edges()) {
      EXPECT_EQ(covered.count({e.u1, e.u2}), 1u) << "cs=" << cs;
      EXPECT_EQ(covered.count({e.u2, e.u1}), 1u) << "cs=" << cs;
    }
  }
}

TEST(QueryContextTest, CoalescedPlansShrinkPlanCount) {
  QueryGraph q({0, 0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  QueryContext plain = BuildQueryContext(q, false);
  QueryContext cs = BuildQueryContext(q, true);
  EXPECT_EQ(plain.plans.size(), 8u);
  EXPECT_LT(cs.plans.size(), plain.plans.size());
  EXPECT_GT(cs.coalesced_pairs, 0u);
}

TEST(QueryContextTest, OrdersAreConnectedPermutations) {
  QueryGraph q({0, 1, 0, 1, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 4);
  q.AddEdge(4, 0);
  QueryContext ctx = BuildQueryContext(q, true);
  for (const SeedPlan& plan : ctx.plans) {
    ASSERT_EQ(plan.order.size(), q.NumVertices());
    EXPECT_EQ(plan.order[0], plan.a);
    EXPECT_EQ(plan.order[1], plan.b);
    uint16_t placed =
        static_cast<uint16_t>((1u << plan.a) | (1u << plan.b));
    for (size_t i = 2; i < plan.order.size(); ++i) {
      VertexId u = plan.order[i];
      EXPECT_NE((placed >> u) & 1u, 1u) << "duplicate in order";
      EXPECT_NE(q.AdjacencyMask(u) & placed, 0) << "disconnected order";
      placed |= static_cast<uint16_t>(1u << u);
    }
  }
}

TEST(QueryContextTest, VkPrefixHoldsForCoalescedPlans) {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  QueryContext ctx = BuildQueryContext(q, true);
  for (const SeedPlan& plan : ctx.plans) {
    if (plan.perms.empty()) continue;
    // The first vk_size order entries must be exactly the permutation
    // domain (V^k).
    std::set<VertexId> prefix(plan.order.begin(),
                              plan.order.begin() + plan.vk_size);
    for (const Permutation& p : plan.perms) {
      for (VertexId x = 0; x < q.NumVertices(); ++x) {
        if (p[x] != kInvalidVertex) {
          EXPECT_TRUE(prefix.count(x));
        } else {
          EXPECT_FALSE(prefix.count(x));
        }
      }
    }
  }
}

}  // namespace
}  // namespace bdsm
