/// MultiGamma tests: fused multi-query launches must return exactly
/// what per-query Gamma instances return, across batch streams.
#include <gtest/gtest.h>

#include "core/multi_gamma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

TEST(MultiGammaTest, EquivalentToPerQueryEngines) {
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, 91);
  std::vector<QueryGraph> queries;
  {
    QueryGraph tri({0, 1, 1});
    tri.AddEdge(0, 1);
    tri.AddEdge(1, 2);
    tri.AddEdge(0, 2);
    queries.push_back(tri);
    QueryGraph path({0, 1, 2});
    path.AddEdge(0, 1);
    path.AddEdge(1, 2);
    queries.push_back(path);
    QueryGraph star({1, 0, 0, 2});
    star.AddEdge(0, 1);
    star.AddEdge(0, 2);
    star.AddEdge(0, 3);
    queries.push_back(star);
  }

  GammaOptions opts;
  opts.device.num_sms = 2;

  MultiGamma multi(g, opts);
  std::vector<std::unique_ptr<Gamma>> singles;
  for (const QueryGraph& q : queries) {
    multi.AddQuery(q);
    singles.push_back(std::make_unique<Gamma>(g, q, opts));
  }
  ASSERT_EQ(multi.NumQueries(), 3u);

  UpdateStreamGenerator gen(92);
  for (int round = 0; round < 4; ++round) {
    UpdateBatch batch = SanitizeBatch(
        multi.host_graph(), gen.MakeMixed(multi.host_graph(), 40, 2, 1, 0));
    MultiBatchResult mres = multi.ProcessBatch(batch);
    ASSERT_EQ(mres.per_query.size(), queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      BatchResult sres = singles[qi]->ProcessBatch(batch);
      EXPECT_EQ(CanonicalKeys(mres.per_query[qi].positive_matches),
                CanonicalKeys(sres.positive_matches))
          << "round " << round << " query " << qi;
      EXPECT_EQ(CanonicalKeys(mres.per_query[qi].negative_matches),
                CanonicalKeys(sres.negative_matches))
          << "round " << round << " query " << qi;
    }
  }
}

TEST(MultiGammaTest, SharedUpdateChargedOnce) {
  LabeledGraph g = GenerateUniformGraph(100, 300, 2, 1, 93);
  QueryGraph q({0, 0});
  q.AddEdge(0, 1);
  GammaOptions opts;
  MultiGamma multi(g, opts);
  multi.AddQuery(q);
  multi.AddQuery(q);
  UpdateStreamGenerator gen(94);
  UpdateBatch batch = gen.MakeInsertions(g, 30, 0);
  MultiBatchResult res = multi.ProcessBatch(batch);
  // Both queries report the same shared update stats.
  EXPECT_EQ(res.per_query[0].update_stats.makespan_ticks,
            res.per_query[1].update_stats.makespan_ticks);
  EXPECT_EQ(res.update_stats.makespan_ticks,
            res.per_query[0].update_stats.makespan_ticks);
  EXPECT_GT(res.update_stats.makespan_ticks, 0u);
}

TEST(MultiGammaTest, RemoveQueryKeepsOthersCorrect) {
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, 97);
  QueryGraph tri({0, 1, 1});
  tri.AddEdge(0, 1);
  tri.AddEdge(1, 2);
  tri.AddEdge(0, 2);
  QueryGraph path({0, 1, 2});
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  QueryGraph wedge({1, 0, 1});
  wedge.AddEdge(0, 1);
  wedge.AddEdge(1, 2);

  MultiGamma multi(g, GammaOptions{});
  size_t id_tri = multi.AddQuery(tri);
  size_t id_path = multi.AddQuery(path);
  size_t id_wedge = multi.AddQuery(wedge);
  ASSERT_TRUE(multi.RemoveQuery(id_path));
  EXPECT_FALSE(multi.RemoveQuery(id_path));  // ids never reused
  EXPECT_FALSE(multi.RemoveQuery(999));
  EXPECT_EQ(multi.NumQueries(), 2u);
  EXPECT_EQ(multi.QueryIds(), (std::vector<size_t>{id_tri, id_wedge}));

  // The survivors behave exactly like a MultiGamma that never saw the
  // removed query, across a stream of batches.
  MultiGamma witness(g, GammaOptions{});
  witness.AddQuery(tri);
  witness.AddQuery(wedge);

  UpdateStreamGenerator gen(98);
  for (int round = 0; round < 3; ++round) {
    UpdateBatch batch = SanitizeBatch(
        multi.host_graph(), gen.MakeMixed(multi.host_graph(), 35, 2, 1, 0));
    MultiBatchResult got = multi.ProcessBatch(batch);
    MultiBatchResult want = witness.ProcessBatch(batch);
    ASSERT_EQ(got.per_query.size(), 2u);
    for (size_t qi = 0; qi < 2; ++qi) {
      EXPECT_EQ(CanonicalKeys(got.per_query[qi].positive_matches),
                CanonicalKeys(want.per_query[qi].positive_matches))
          << "round " << round << " query " << qi;
      EXPECT_EQ(CanonicalKeys(got.per_query[qi].negative_matches),
                CanonicalKeys(want.per_query[qi].negative_matches))
          << "round " << round << " query " << qi;
    }
  }

  // Removing the last queries empties the engine but keeps it usable.
  ASSERT_TRUE(multi.RemoveQuery(id_tri));
  ASSERT_TRUE(multi.RemoveQuery(id_wedge));
  EXPECT_EQ(multi.NumQueries(), 0u);
  UpdateBatch batch = gen.MakeInsertions(multi.host_graph(), 10, 0);
  MultiBatchResult res = multi.ProcessBatch(batch);
  EXPECT_TRUE(res.per_query.empty());
}

TEST(MultiGammaTest, NoQueriesIsFine) {
  LabeledGraph g = GenerateUniformGraph(50, 120, 2, 1, 95);
  MultiGamma multi(g, GammaOptions{});
  UpdateStreamGenerator gen(96);
  MultiBatchResult res = multi.ProcessBatch(gen.MakeInsertions(g, 10, 0));
  EXPECT_TRUE(res.per_query.empty());
  EXPECT_EQ(multi.host_graph().NumEdges(), g.NumEdges() + 10);
}

}  // namespace
}  // namespace bdsm
