/// GPMA tests: differential testing against LabeledGraph as the
/// reference adjacency structure, PMA invariants after every mutation
/// burst, growth/shrink behaviour, and the update-kernel cost model.
#include <gtest/gtest.h>

#include "gpma/gpma.hpp"
#include "gpma/gpma_kernel.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"
#include "util/rng.hpp"

namespace bdsm {
namespace {

void ExpectSameAdjacency(const Gpma& gpma, const LabeledGraph& g) {
  ASSERT_EQ(gpma.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto got = gpma.NeighborsOf(v);
    auto want = g.Neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].v, want[i].v) << "vertex " << v;
      EXPECT_EQ(got[i].elabel, want[i].elabel) << "vertex " << v;
    }
  }
}

TEST(GpmaTest, EmptyStructure) {
  Gpma gpma(32);
  EXPECT_EQ(gpma.NumEdges(), 0u);
  EXPECT_EQ(gpma.NumSegments(), 1u);
  EXPECT_FALSE(gpma.HasEdge(0, 1));
  EXPECT_TRUE(gpma.NeighborsOf(0).empty());
  gpma.CheckInvariants();
}

TEST(GpmaTest, SingleInsertAndLookup) {
  Gpma gpma(32);
  EXPECT_TRUE(gpma.InsertEdge(3, 7, 5));
  EXPECT_FALSE(gpma.InsertEdge(3, 7, 5));
  EXPECT_FALSE(gpma.InsertEdge(7, 3, 5));
  EXPECT_TRUE(gpma.HasEdge(3, 7));
  EXPECT_TRUE(gpma.HasEdge(7, 3));
  EXPECT_EQ(gpma.EdgeLabel(3, 7), 5u);
  EXPECT_EQ(gpma.EdgeLabel(7, 3), 5u);
  EXPECT_EQ(gpma.NumEdges(), 1u);
  gpma.CheckInvariants();
}

TEST(GpmaTest, RemoveEdge) {
  Gpma gpma(32);
  gpma.InsertEdge(1, 2, 0);
  gpma.InsertEdge(2, 3, 1);
  EXPECT_TRUE(gpma.RemoveEdge(1, 2));
  EXPECT_FALSE(gpma.RemoveEdge(1, 2));
  EXPECT_FALSE(gpma.HasEdge(1, 2));
  EXPECT_TRUE(gpma.HasEdge(2, 3));
  EXPECT_EQ(gpma.NumEdges(), 1u);
  gpma.CheckInvariants();
}

TEST(GpmaTest, GrowsUnderInsertions) {
  Gpma gpma(8);  // tiny segments force early growth
  size_t before = gpma.NumSegments();
  for (VertexId i = 0; i < 200; ++i) {
    ASSERT_TRUE(gpma.InsertEdge(i, i + 1000, i % 5));
    gpma.CheckInvariants();
  }
  EXPECT_GT(gpma.NumSegments(), before);
  EXPECT_EQ(gpma.NumEdges(), 200u);
  for (VertexId i = 0; i < 200; ++i) {
    EXPECT_TRUE(gpma.HasEdge(i, i + 1000));
    EXPECT_EQ(gpma.EdgeLabel(i, i + 1000), i % 5);
  }
}

TEST(GpmaTest, BuildFromMatchesGraph) {
  LabeledGraph g = GenerateUniformGraph(300, 1200, 4, 3, 42);
  Gpma gpma(32);
  gpma.BuildFrom(g);
  gpma.CheckInvariants();
  ExpectSameAdjacency(gpma, g);
}

TEST(GpmaTest, BatchInsertionsMatchReference) {
  LabeledGraph g = GenerateUniformGraph(200, 600, 3, 2, 7);
  Gpma gpma(32);
  gpma.BuildFrom(g);
  UpdateStreamGenerator gen(11);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch batch = gen.MakeInsertions(g, 80, 2);
    gpma.ApplyBatch(batch);
    ApplyBatch(&g, batch);
    gpma.CheckInvariants();
    ExpectSameAdjacency(gpma, g);
  }
}

TEST(GpmaTest, BatchDeletionsMatchReference) {
  LabeledGraph g = GenerateUniformGraph(200, 1000, 3, 2, 8);
  Gpma gpma(32);
  gpma.BuildFrom(g);
  UpdateStreamGenerator gen(12);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch batch = gen.MakeDeletions(g, 120);
    gpma.ApplyBatch(batch);
    ApplyBatch(&g, batch);
    gpma.CheckInvariants();
    ExpectSameAdjacency(gpma, g);
  }
}

TEST(GpmaTest, MixedBatchesMatchReference) {
  LabeledGraph g = GenerateUniformGraph(250, 900, 4, 3, 9);
  Gpma gpma(16);
  gpma.BuildFrom(g);
  UpdateStreamGenerator gen(13);
  for (int round = 0; round < 8; ++round) {
    UpdateBatch batch =
        SanitizeBatch(g, gen.MakeMixed(g, 100, 2, 1, 3));
    gpma.ApplyBatch(batch);
    ApplyBatch(&g, batch);
    gpma.CheckInvariants();
    ExpectSameAdjacency(gpma, g);
  }
}

TEST(GpmaTest, ShrinksAfterMassDeletion) {
  LabeledGraph g = GenerateUniformGraph(300, 2000, 3, 1, 10);
  Gpma gpma(16);
  gpma.BuildFrom(g);
  size_t peak_segments = gpma.NumSegments();
  UpdateBatch all_dels;
  for (const Edge& e : g.CollectEdges()) {
    all_dels.push_back(UpdateOp{false, e.u, e.v, kNoLabel});
  }
  gpma.ApplyBatch(all_dels);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.NumEdges(), 0u);
  EXPECT_LT(gpma.NumSegments(), peak_segments);
}

TEST(GpmaTest, NeighborsSortedAndComplete) {
  Gpma gpma(8);
  Rng rng(55);
  std::vector<VertexId> targets;
  for (int i = 0; i < 60; ++i) {
    VertexId t = static_cast<VertexId>(1 + rng.Uniform(500));
    if (gpma.InsertEdge(0, t, 1)) targets.push_back(t);
  }
  std::sort(targets.begin(), targets.end());
  auto nbrs = gpma.NeighborsOf(0);
  ASSERT_EQ(nbrs.size(), targets.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(nbrs[i].v, targets[i]);
  }
}

TEST(GpmaTest, TreeHeightGrowsLogarithmically) {
  Gpma gpma(8);
  uint32_t h0 = gpma.TreeHeight();
  for (VertexId i = 0; i < 500; ++i) gpma.InsertEdge(i, i + 1000, 0);
  EXPECT_GT(gpma.TreeHeight(), h0);
  EXPECT_LE(gpma.TreeHeight(), 16u);
}

TEST(GpmaPlanTest, PlanDescribesWork) {
  LabeledGraph g = GenerateUniformGraph(200, 800, 3, 1, 14);
  Gpma gpma(32);
  gpma.BuildFrom(g);
  UpdateStreamGenerator gen(15);
  UpdateBatch batch = gen.MakeInsertions(g, 100, 0);
  UpdatePlan plan = gpma.ApplyBatch(batch);
  // Every directed entry needs a locate; 2 per undirected insert.
  EXPECT_GE(plan.locate_searches, batch.size());
  EXPECT_FALSE(plan.ops.empty());
  EXPECT_GT(plan.tree_height, 0u);
  uint64_t inserted = 0;
  for (const SegmentOp& op : plan.ops) inserted += op.inserted;
  EXPECT_GE(inserted, 2 * batch.size() / 2);  // both directions counted
}

TEST(GpmaKernelTest, CooperativeGroupsSpeedUpSmallSegments) {
  // A plan of many tiny segment ops: CG should shorten the makespan.
  UpdatePlan plan;
  plan.tree_height = 6;
  plan.locate_searches = 64;
  for (int i = 0; i < 200; ++i) {
    plan.AddOp(SegmentOp{8, 1, 4, 0, SegmentStrategy::kWarp});
  }
  DeviceConfig cfg;
  cfg.num_sms = 2;
  cfg.warps_per_block = 4;
  Device dev_cg(cfg), dev_plain(cfg);
  GpmaKernelOptions with_cg{true, 3};
  GpmaKernelOptions without_cg{false, 3};
  DeviceStats s_cg = SimulateGpmaUpdate(dev_cg, plan, with_cg);
  DeviceStats s_plain = SimulateGpmaUpdate(dev_plain, plan, without_cg);
  EXPECT_LE(s_cg.makespan_ticks, s_plain.makespan_ticks);
}

TEST(GpmaKernelTest, CachedLayersCutGlobalTraffic) {
  UpdatePlan plan;
  plan.tree_height = 8;
  plan.locate_searches = 4096;
  DeviceConfig cfg;
  cfg.num_sms = 4;
  cfg.warps_per_block = 4;
  Device dev_cached(cfg), dev_uncached(cfg);
  DeviceStats cached =
      SimulateGpmaUpdate(dev_cached, plan, GpmaKernelOptions{true, 4});
  DeviceStats uncached =
      SimulateGpmaUpdate(dev_uncached, plan, GpmaKernelOptions{true, 0});
  EXPECT_LT(cached.global_transactions, uncached.global_transactions);
  EXPECT_GT(cached.shared_accesses, uncached.shared_accesses);
  EXPECT_LT(cached.makespan_ticks, uncached.makespan_ticks);
}

TEST(GpmaKernelTest, ResizePricedWhenPlanResizes) {
  Gpma gpma(8);
  // Seed live entries first: a resize of an empty array is free (the
  // direct-to-target grow sizes the array before any entry lands), so
  // the plan only prices moved entries once there is something to move.
  for (VertexId i = 0; i < 50; ++i) {
    ASSERT_TRUE(gpma.InsertEdge(i, i + 5000, 0));
  }
  UpdateBatch batch;
  for (VertexId i = 0; i < 300; ++i) {
    batch.push_back(UpdateOp{true, i, i + 1000, 0});
  }
  UpdatePlan plan = gpma.ApplyBatch(batch);
  EXPECT_GT(plan.resizes, 0u);
  EXPECT_GT(plan.resized_entries, 0u);
  Device dev;
  DeviceStats stats = SimulateGpmaUpdate(dev, plan);
  EXPECT_GT(stats.makespan_ticks, 0u);
}

}  // namespace
}  // namespace bdsm
