/// Serving-layer tests (src/serve/): ShardedEngine parity against the
/// unsharded inner engine for every registry name, determinism across
/// pool sizes, query removal on shards, streaming fan-in, the bounded
/// SubmitBatch ingest queue (back-pressure), StreamPipeline over a
/// sharded engine, and the registry's composite-spec syntax.
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/stream_pipeline.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"
#include "serve/sharded_engine.hpp"

namespace bdsm {
namespace {

using serve::ShardedEngine;

const char* const kAllEngines[] = {"gamma", "multi", "tf", "sym",
                                   "rf",    "cl",    "gf"};

QueryGraph TriangleQuery() {
  QueryGraph q({0, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

QueryGraph PathQuery() {
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

QueryGraph WedgeQuery() {
  QueryGraph q({1, 0, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

std::vector<QueryGraph> FiveQueries() {
  return {TriangleQuery(), PathQuery(), WedgeQuery(), PathQuery(),
          TriangleQuery()};
}

void ExpectStatsEq(const DeviceStats& a, const DeviceStats& b,
                   const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.makespan_ticks, b.makespan_ticks);
  EXPECT_EQ(a.total_busy_ticks, b.total_busy_ticks);
  EXPECT_EQ(a.total_warp_ticks, b.total_warp_ticks);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.coalesced_words, b.coalesced_words);
  EXPECT_EQ(a.uncoalesced_words, b.uncoalesced_words);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.compute_steps, b.compute_steps);
  EXPECT_EQ(a.steal_events, b.steal_events);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.transfer_bytes, b.transfer_bytes);
  EXPECT_EQ(a.transfer_ticks, b.transfer_ticks);
  EXPECT_EQ(a.peak_device_bytes, b.peak_device_bytes);
  EXPECT_EQ(a.timed_out, b.timed_out);
}

std::vector<std::string> SortedKeys(const std::vector<MatchRecord>& ms) {
  std::vector<std::string> keys = CanonicalKeys(ms);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Everything deterministic in two reports must match.  `with_stats`
/// (which also demands exact match-vector order) is dropped only for
/// inner engines whose launch decomposition legitimately changes under
/// sharding: "multi" fuses each shard's queries into shared launches,
/// so its schedule-dependent emission order and launch stats reflect
/// the decomposition, while each query's match multiset does not.
void ExpectReportsEq(const BatchReport& got, const BatchReport& want,
                     bool with_stats) {
  ASSERT_EQ(got.queries.size(), want.queries.size());
  for (size_t i = 0; i < want.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const QueryReport& g = got.queries[i];
    const QueryReport& w = want.queries[i];
    EXPECT_EQ(g.id, w.id);
    if (with_stats) {
      EXPECT_EQ(g.positive_matches, w.positive_matches);
      EXPECT_EQ(g.negative_matches, w.negative_matches);
    } else {
      EXPECT_EQ(SortedKeys(g.positive_matches),
                SortedKeys(w.positive_matches));
      EXPECT_EQ(SortedKeys(g.negative_matches),
                SortedKeys(w.negative_matches));
    }
    EXPECT_EQ(g.num_positive, w.num_positive);
    EXPECT_EQ(g.num_negative, w.num_negative);
    EXPECT_EQ(g.timed_out, w.timed_out);
    EXPECT_EQ(g.overflowed, w.overflowed);
    if (with_stats) {
      ExpectStatsEq(g.update_stats, w.update_stats, "query update_stats");
      ExpectStatsEq(g.match_stats, w.match_stats, "query match_stats");
    }
  }
  if (with_stats) {
    ExpectStatsEq(got.update_stats, want.update_stats, "update_stats");
    ExpectStatsEq(got.match_stats, want.match_stats, "match_stats");
  }
}

/// A 3-batch mixed stream prepared against the evolving graph (the
/// per-batch sanitized form every engine will see).
std::vector<UpdateBatch> MakeStream(const LabeledGraph& g, uint64_t seed,
                                    size_t ops_per_batch = 25) {
  UpdateStreamGenerator gen(seed);
  std::vector<UpdateBatch> stream;
  LabeledGraph evolving = g;
  for (int i = 0; i < 3; ++i) {
    UpdateBatch b =
        SanitizeBatch(evolving, gen.MakeMixed(evolving, ops_per_batch, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  return stream;
}

// The acceptance bar: for every registry engine and several shard
// counts, the sharded report is bit-identical to the unsharded inner
// engine's over a multi-batch stream — matches (order included),
// counts, truncation flags, and, for per-query-independent engines,
// the full deterministic device stats.  "multi" fuses each shard's
// queries into shared launches, so its launch-level stats legitimately
// reflect the sharded decomposition; everything else is still
// bit-identical.
TEST(ShardedEngineTest, BitIdenticalToUnshardedForAllEngines) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 3, 1, 2024);
  std::vector<UpdateBatch> stream = MakeStream(g, 2025);

  for (const char* name : kAllEngines) {
    bool with_stats = std::string(name) != "multi";
    auto reference = MakeEngine(name, g);
    for (const QueryGraph& q : FiveQueries()) reference->AddQuery(q);
    std::vector<BatchReport> want;
    for (const UpdateBatch& b : stream) {
      want.push_back(reference->ProcessBatch(b));
    }
    ASSERT_GT(want[0].TotalMatches(), 0u)
        << "workload must exercise matching";

    for (size_t shards : {1u, 2u, 3u}) {
      SCOPED_TRACE(std::string(name) + " @ " + std::to_string(shards));
      ShardedEngine sharded(name, shards, g);
      for (const QueryGraph& q : FiveQueries()) sharded.AddQuery(q);
      for (size_t i = 0; i < stream.size(); ++i) {
        SCOPED_TRACE("batch " + std::to_string(i));
        BatchReport got = sharded.ProcessBatch(stream[i]);
        ExpectReportsEq(got, want[i], with_stats);
      }
      EXPECT_EQ(sharded.host_graph().NumEdges(),
                reference->host_graph().NumEdges());
    }
  }
}

// Output must not depend on the pool size: merging happens in fixed
// shard order after a barrier, never in completion order.
TEST(ShardedEngineTest, DeterministicAcrossThreadCounts) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 61);
  std::vector<UpdateBatch> stream = MakeStream(g, 62);

  for (const char* name : {"gamma", "multi", "rf"}) {
    SCOPED_TRACE(name);
    std::vector<BatchReport> baseline;
    for (size_t threads : {1u, 2u, 8u}) {
      EngineOptions opts;
      opts.serve_threads = threads;
      ShardedEngine sharded(name, /*num_shards=*/4, g, opts);
      for (const QueryGraph& q : FiveQueries()) sharded.AddQuery(q);
      for (size_t i = 0; i < stream.size(); ++i) {
        BatchReport report = sharded.ProcessBatch(stream[i]);
        if (threads == 1) {
          baseline.push_back(std::move(report));
        } else {
          SCOPED_TRACE("threads " + std::to_string(threads) + " batch " +
                       std::to_string(i));
          // Same shard decomposition -> stats identical even for multi.
          ExpectReportsEq(report, baseline[i], /*with_stats=*/true);
        }
      }
    }
  }
}

// Removing a query on one shard must not disturb the others, and a
// query added after batches have been processed must see the evolved
// graph — both compared against an unsharded engine doing the same
// add/remove sequence.
TEST(ShardedEngineTest, RemoveAndLateAddOnShards) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 71);
  std::vector<UpdateBatch> stream = MakeStream(g, 72);

  ShardedEngine sharded("gamma", 3, g);
  auto reference = MakeEngine("gamma", g);

  std::vector<QueryId> sharded_ids, ref_ids;
  for (const QueryGraph& q : FiveQueries()) {
    sharded_ids.push_back(sharded.AddQuery(q));
    ref_ids.push_back(reference->AddQuery(q));
  }
  EXPECT_EQ(sharded_ids, ref_ids);  // stable engine-scoped ids
  // Round-robin placement is deterministic.
  EXPECT_EQ(sharded.ShardOf(sharded_ids[0]), 0u);
  EXPECT_EQ(sharded.ShardOf(sharded_ids[4]), 1u);

  // Drop one query from each shard (ids 1, 2, 3 live on shards 1, 2, 0).
  for (QueryId id : {sharded_ids[1], sharded_ids[2], sharded_ids[3]}) {
    EXPECT_TRUE(sharded.RemoveQuery(id));
    EXPECT_FALSE(sharded.RemoveQuery(id));  // ids are never reused
    EXPECT_TRUE(reference->RemoveQuery(id));
  }
  EXPECT_EQ(sharded.ShardOf(sharded_ids[1]), ShardedEngine::kInvalidShard);
  EXPECT_EQ(sharded.QueryIds(), reference->QueryIds());

  ExpectReportsEq(sharded.ProcessBatch(stream[0]),
                  reference->ProcessBatch(stream[0]),
                  /*with_stats=*/true);

  // Late registration lands on a shard whose replica has evolved.
  QueryId late_s = sharded.AddQuery(WedgeQuery());
  QueryId late_r = reference->AddQuery(WedgeQuery());
  EXPECT_EQ(late_s, late_r);
  BatchReport got = sharded.ProcessBatch(stream[1]);
  BatchReport want = reference->ProcessBatch(stream[1]);
  ExpectReportsEq(got, want, /*with_stats=*/true);
  EXPECT_NE(got.Find(late_s), nullptr);
}

// Runtime query-set mutation between every batch of a longer stream —
// the registration state the persistence layer serializes.  Adds and
// removals interleave until shards empty and refill; after every
// mutation the sharded report must stay bit-identical to the unsharded
// reference, placement must stay the pure function of the public id
// (round-robin), and ids must never be reused.
TEST(ShardedEngineTest, InterleavedMutationStreamStaysBitIdentical) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 91);
  UpdateStreamGenerator gen(92);
  LabeledGraph evolving = g;

  constexpr size_t kShards = 3;
  ShardedEngine sharded("gamma", kShards, g);
  auto reference = MakeEngine("gamma", g);
  std::vector<QueryGraph> pool = FiveQueries();

  std::vector<QueryId> live;
  auto add = [&](const QueryGraph& q) {
    QueryId s = sharded.AddQuery(q);
    QueryId r = reference->AddQuery(q);
    ASSERT_EQ(s, r);
    // Placement is id % shards, always — the invariant that lets a
    // snapshot restore reproduce the sharding from public ids alone.
    EXPECT_EQ(sharded.ShardOf(s), s % kShards);
    live.push_back(s);
  };
  auto remove_at = [&](size_t idx) {
    QueryId id = live[idx];
    EXPECT_TRUE(sharded.RemoveQuery(id));
    EXPECT_TRUE(reference->RemoveQuery(id));
    EXPECT_FALSE(sharded.RemoveQuery(id));  // never reused
    EXPECT_EQ(sharded.ShardOf(id), ShardedEngine::kInvalidShard);
    live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
  };

  add(pool[0]);
  add(pool[1]);
  add(pool[2]);
  for (size_t step = 0; step < 8; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    // Mutate: drain towards empty on even steps, grow on odd ones.
    if (step % 2 == 0 && !live.empty()) {
      remove_at(step % live.size());
      if (live.size() > 1) remove_at(0);
    } else {
      add(pool[step % pool.size()]);
      add(pool[(step + 2) % pool.size()]);
    }
    EXPECT_EQ(sharded.QueryIds(), reference->QueryIds());
    EXPECT_EQ(sharded.NumQueries(), live.size());

    UpdateBatch b =
        SanitizeBatch(evolving, gen.MakeMixed(evolving, 20, 2, 1, 0));
    ApplyBatch(&evolving, b);
    ExpectReportsEq(sharded.ProcessBatch(b), reference->ProcessBatch(b),
                    /*with_stats=*/true);
  }
  // The drain phase above must actually have emptied a shard at some
  // point for the refill path to be exercised; ids grew past 2 rounds
  // of additions either way.
  EXPECT_GE(live.size(), 1u);
}

// The mutated registration state round-trips through the snapshot
// layer: ids with gaps, their shard placement, and the queries
// themselves (RegisteredQueries / RestoreQuery are what
// persist::CaptureSnapshot serializes).
TEST(ShardedEngineTest, MutatedQuerySetSurvivesSnapshotRestore) {
  LabeledGraph g = GenerateUniformGraph(100, 320, 3, 1, 95);
  ShardedEngine sharded("gamma", 3, g);
  std::vector<QueryGraph> pool = FiveQueries();
  std::vector<QueryId> ids;
  for (const QueryGraph& q : pool) ids.push_back(sharded.AddQuery(q));
  ASSERT_TRUE(sharded.RemoveQuery(ids[1]));
  ASSERT_TRUE(sharded.RemoveQuery(ids[3]));
  QueryId late = sharded.AddQuery(WedgeQuery());  // id 5, shard 2

  std::vector<RegisteredQuery> captured = sharded.RegisteredQueries();
  ASSERT_EQ(captured.size(), 4u);
  EXPECT_EQ(captured[0].id, ids[0]);
  EXPECT_EQ(captured[1].id, ids[2]);
  EXPECT_EQ(captured[2].id, ids[4]);
  EXPECT_EQ(captured[3].id, late);
  EXPECT_EQ(captured[3].query, WedgeQuery());

  ShardedEngine restored("gamma", 3, g);
  for (const RegisteredQuery& rq : captured) {
    ASSERT_TRUE(restored.RestoreQuery(rq.query, rq.id));
  }
  EXPECT_EQ(restored.QueryIds(), sharded.QueryIds());
  for (QueryId id : restored.QueryIds()) {
    EXPECT_EQ(restored.ShardOf(id), sharded.ShardOf(id)) << id;
  }
  // Both engines assign the same fresh id next — the counter survived
  // the gaps.
  EXPECT_EQ(restored.AddQuery(PathQuery()), sharded.AddQuery(PathQuery()));
}

// Fewer queries than shards (empty shards) and zero queries: replicas
// still advance in lockstep.
TEST(ShardedEngineTest, EmptyShardsStayInLockstep) {
  LabeledGraph g = GenerateUniformGraph(60, 150, 2, 1, 81);
  std::vector<UpdateBatch> stream = MakeStream(g, 82, /*ops_per_batch=*/10);

  ShardedEngine sharded("gamma", 4, g);
  BatchReport empty = sharded.ProcessBatch(stream[0]);
  EXPECT_TRUE(empty.queries.empty());
  EXPECT_EQ(sharded.host_graph().NumEdges(),
            [&] {
              LabeledGraph w = g;
              ApplyBatch(&w, stream[0]);
              return w.NumEdges();
            }());

  QueryId q = sharded.AddQuery(TriangleQuery());  // three shards stay empty
  BatchReport got = sharded.ProcessBatch(stream[1]);

  LabeledGraph evolved = g;
  ApplyBatch(&evolved, stream[0]);
  auto witness = MakeEngine("gamma", evolved);
  QueryId wq = witness->AddQuery(TriangleQuery());
  BatchReport want = witness->ProcessBatch(stream[1]);
  EXPECT_EQ(got.Find(q)->positive_matches, want.Find(wq)->positive_matches);
  EXPECT_EQ(got.Find(q)->negative_matches, want.Find(wq)->negative_matches);
  ExpectStatsEq(got.match_stats, want.match_stats, "match_stats");
}

// Streaming under sharding: the fan-in preserves each query's emission
// sequence exactly as the unsharded engine streams it, and counts
// survive materialize=false.
TEST(ShardedEngineTest, StreamingFanInPreservesPerQueryOrder) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 91);
  std::vector<UpdateBatch> stream = MakeStream(g, 92);

  // "gamma" flushes per phase; "gf" delivers match-by-match through
  // DeliverDirect — both delivery paths must survive the fan-in.
  for (const char* name : {"gamma", "gf"}) {
    SCOPED_TRACE(name);
    auto reference = MakeEngine(name, g);
    ShardedEngine sharded(name, 3, g);
    for (const QueryGraph& q : FiveQueries()) {
      reference->AddQuery(q);
      sharded.AddQuery(q);
    }

    CollectingSink want_sink, got_sink;
    BatchOptions bo;
    bo.materialize = false;
    for (const UpdateBatch& b : stream) {
      bo.sink = &want_sink;
      BatchReport want = reference->ProcessBatch(b, bo);
      bo.sink = &got_sink;
      BatchReport got = sharded.ProcessBatch(b, bo);

      ExpectReportsEq(got, want, /*with_stats=*/false);
      for (const QueryReport& qr : got.queries) {
        EXPECT_TRUE(qr.positive_matches.empty());
        EXPECT_TRUE(qr.negative_matches.empty());
      }
    }
    ASSERT_GT(want_sink.TotalCount(), 0u);
    for (QueryId q : sharded.QueryIds()) {
      SCOPED_TRACE("query " + std::to_string(q));
      // Per-query arrival sequence is identical, not just the multiset.
      EXPECT_EQ(got_sink.MatchesFor(q), want_sink.MatchesFor(q));
    }
  }
}

// The async front door: futures resolve, in submission order, to the
// same reports direct ProcessBatch calls produce.
TEST(ShardedEngineTest, SubmitBatchMatchesDirectProcessing) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 101);
  std::vector<UpdateBatch> stream = MakeStream(g, 102);

  ShardedEngine direct("gamma", 2, g);
  ShardedEngine async("gamma", 2, g);
  for (const QueryGraph& q : FiveQueries()) {
    direct.AddQuery(q);
    async.AddQuery(q);
  }

  std::vector<std::future<BatchReport>> futures;
  for (const UpdateBatch& b : stream) {
    futures.push_back(async.SubmitBatch(b));
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    SCOPED_TRACE("batch " + std::to_string(i));
    BatchReport got = futures[i].get();
    BatchReport want = direct.ProcessBatch(stream[i]);
    ExpectReportsEq(got, want, /*with_stats=*/true);
  }
  EXPECT_EQ(async.host_graph().NumEdges(), direct.host_graph().NumEdges());
}

/// Blocks the dispatcher inside its first delivery until released, so
/// the test can observe a full ingest queue deterministically.
struct GateSink final : ResultSink {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  void OnMatch(QueryId, const MatchRecord&) override {
    std::unique_lock<std::mutex> lock(mu);
    if (release) return;
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return release; });
  }
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
};

// Back-pressure: once `serve_queue_capacity` batches wait behind an
// in-flight one, TrySubmitBatch sheds load instead of queueing more;
// accepted batches all complete once the stall clears.
TEST(ShardedEngineTest, BoundedQueueAppliesBackPressure) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 111);
  std::vector<UpdateBatch> stream = MakeStream(g, 112);

  // The gated batch must stream at least one match to block on.
  {
    auto probe = MakeEngine("gamma", g);
    for (const QueryGraph& q : FiveQueries()) probe->AddQuery(q);
    ASSERT_GT(probe->ProcessBatch(stream[0]).TotalMatches(), 0u);
  }

  EngineOptions opts;
  opts.serve_queue_capacity = 2;
  ShardedEngine sharded("gamma", 2, g, opts);
  for (const QueryGraph& q : FiveQueries()) sharded.AddQuery(q);
  EXPECT_EQ(sharded.QueueCapacity(), 2u);

  GateSink gate;
  BatchOptions gated;
  gated.sink = &gate;
  std::future<BatchReport> first = sharded.SubmitBatch(stream[0], gated);
  gate.WaitUntilBlocked();  // dispatcher is mid-batch; queue is empty

  auto second = sharded.TrySubmitBatch(stream[1]);
  auto third = sharded.TrySubmitBatch(stream[2]);
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(sharded.PendingBatches(), 2u);

  auto rejected = sharded.TrySubmitBatch(stream[2]);
  EXPECT_FALSE(rejected.has_value());  // explicit back-pressure

  gate.Release();
  BatchReport r1 = first.get();
  BatchReport r2 = second->get();
  BatchReport r3 = third->get();
  EXPECT_GT(r1.TotalMatches() + r2.TotalMatches() + r3.TotalMatches(), 0u);
  EXPECT_EQ(sharded.PendingBatches(), 0u);

  // Ingest observability: reports carry the host-wall time a batch
  // waited behind the in-flight one and the queue depth at submit.
  // The second and third batches queued while the gate held the
  // dispatcher, so their waits are real; the third saw the second
  // already queued ahead of it.
  EXPECT_GT(r2.queue_wait_seconds, 0.0);
  EXPECT_GT(r3.queue_wait_seconds, 0.0);
  EXPECT_EQ(r2.queue_depth, 0u);
  EXPECT_EQ(r3.queue_depth, 1u);

  // Capacity is available again once the burst drains.
  auto again = sharded.TrySubmitBatch(stream[2]);
  ASSERT_TRUE(again.has_value());
  again->get();
}

// Back-pressure fairness, no tenant layer: two producers racing a
// capacity-1 ingest queue, each retrying its own rejected submissions,
// both finish their whole disjoint workload — shedding never turns
// into starvation.  Insert-only batches of unique fresh edges keep
// every interleaving valid.
TEST(ShardedEngineTest, TwoProducersBothProgressUnderBackPressure) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 131);
  constexpr size_t kBatchesPerProducer = 5, kOpsPerBatch = 8;
  std::vector<std::vector<UpdateBatch>> work(2);
  VertexId u = 0, v = 1;
  auto next_missing_edge = [&] {
    while (v >= g.NumVertices() || g.HasEdge(u, v)) {
      if (++v >= g.NumVertices()) {
        ++u;
        v = u + 1;
      }
    }
  };
  for (auto& batches : work) {
    for (size_t b = 0; b < kBatchesPerProducer; ++b) {
      UpdateBatch batch;
      for (size_t i = 0; i < kOpsPerBatch; ++i) {
        next_missing_edge();
        batch.push_back(UpdateOp{true, u, v, kNoLabel});
        ++v;  // never hand the same edge out twice
      }
      batches.push_back(std::move(batch));
    }
  }

  EngineOptions opts;
  opts.serve_queue_capacity = 1;
  ShardedEngine sharded("gamma", 2, g, opts);
  for (const QueryGraph& q : FiveQueries()) sharded.AddQuery(q);

  std::vector<size_t> rejections(2, 0);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (const UpdateBatch& batch : work[p]) {
        std::optional<std::future<BatchReport>> fut;
        while (!(fut = sharded.TrySubmitBatch(batch))) {
          ++rejections[p];  // back-pressure: shed and retry, never block
          std::this_thread::yield();
        }
        fut->get();
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Both producers landed every batch: all 80 unique edges are in.
  EXPECT_EQ(sharded.host_graph().NumEdges(),
            g.NumEdges() + 2 * kBatchesPerProducer * kOpsPerBatch);
  EXPECT_EQ(sharded.PendingBatches(), 0u);
}

// Back-pressure fairness, with the tenant layer: the same two-producer
// race, but each producer ingests into its own bounded tenant queue of
// a tenant(sharded(...)) front door (externally synchronized, per the
// Engine contract) while a consumer pumps.  Both tenants get admitted
// work and every offered op is accounted admitted-or-shed.
TEST(ShardedEngineTest, TwoProducersBothProgressThroughTenantLayer) {
  LabeledGraph g = GenerateUniformGraph(100, 350, 3, 1, 137);
  std::vector<UpdateBatch> stream = MakeStream(g, 138, 40);

  EngineOptions opts;
  opts.front_door.batch_ops_init = 16;
  opts.front_door.batch_ops_min = 8;
  opts.front_door.batch_ops_max = 16;
  auto engine = MakeEngine("tenant(sharded(gamma, shards=2))", g, opts);
  TenantControl* tc = engine->tenant_control();
  ASSERT_NE(tc, nullptr);
  TenantPolicy bounded;
  bounded.queue_limit_ops = 24;
  TenantId ta = tc->RegisterTenant("a", bounded);
  TenantId tb = tc->RegisterTenant("b", bounded);
  tc->AddTenantQuery(ta, PathQuery());
  tc->AddTenantQuery(tb, WedgeQuery());

  std::mutex mu;  // the front door itself is externally synchronized
  std::vector<std::thread> producers;
  for (TenantId id : {ta, tb}) {
    producers.emplace_back([&, id] {
      for (const UpdateBatch& batch : stream) {
        std::lock_guard<std::mutex> lock(mu);
        tc->Ingest(id, batch);  // sheds past the bound, never blocks
      }
    });
  }
  bool done = false;
  std::thread consumer([&] {
    while (true) {
      bool formed;
      {
        std::lock_guard<std::mutex> lock(mu);
        FormedBatchStats fb;
        formed = tc->PumpFormedBatch(&fb);
        if (!formed && done) return;
      }
      if (!formed) std::this_thread::yield();
    }
  });
  for (std::thread& t : producers) t.join();
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  consumer.join();

  for (TenantId id : {ta, tb}) {
    SCOPED_TRACE(id);
    const TenantCounters c = tc->Snapshot(id).counters;
    EXPECT_GT(c.admitted_ops, 0u);  // neither producer starved
    EXPECT_EQ(c.offered_ops, c.admitted_ops + c.shed_ops);
  }
  EXPECT_EQ(tc->PendingOps(), 0u);
}

// StreamPipeline drives a sharded engine through the same phases it
// drives any engine — bit-identical to per-batch ProcessBatch.
TEST(ShardedEngineTest, StreamPipelineOverShardedIsBitIdentical) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 3, 1, 121);
  std::vector<UpdateBatch> stream = MakeStream(g, 122);

  ShardedEngine piped("gamma", 3, g);
  ShardedEngine batched("gamma", 3, g);
  for (const QueryGraph& q : FiveQueries()) {
    piped.AddQuery(q);
    batched.AddQuery(q);
  }

  StreamPipeline pipe(&piped);
  std::vector<BatchReport> got;
  PipelineStats stats = pipe.Run(stream, &got);
  ASSERT_EQ(got.size(), stream.size());
  EXPECT_GT(stats.TotalMatches(), 0u);

  for (size_t i = 0; i < stream.size(); ++i) {
    SCOPED_TRACE("batch " + std::to_string(i));
    ExpectReportsEq(got[i], batched.ProcessBatch(stream[i]),
                    /*with_stats=*/true);
  }
}

TEST(ShardedSpecTest, CanonicalAndLegacySpecsResolve) {
  EngineRegistry& reg = EngineRegistry::Instance();
  // Canonical grammar and the legacy sugar both validate.
  EXPECT_TRUE(reg.Has("sharded(gamma, shards=2)"));
  EXPECT_TRUE(reg.Has("sharded(turboflux)"));  // inner aliases resolve
  EXPECT_TRUE(reg.Has("sharded:gamma@2"));
  EXPECT_TRUE(reg.Has("sharded:turboflux"));
  EXPECT_TRUE(reg.Has("SHARDED:Gamma@2"));  // case-insensitive
  EXPECT_FALSE(reg.Has("sharded:no-such-engine@2"));
  EXPECT_FALSE(reg.Has("sharded:gamma@0"));
  EXPECT_FALSE(reg.Has("sharded(gamma, shards=0)"));
  EXPECT_FALSE(reg.Has("nosuchprefix:gamma@2"));
  EXPECT_FALSE(reg.Has("sharded"));  // a wrapper needs an inner spec
  // Wrappers nest recursively in the canonical grammar.
  EXPECT_TRUE(reg.Has("sharded(sharded(rf, shards=2), shards=2)"));

  // Composite specs don't pollute the plain-name listing.
  for (const std::string& n : EngineNames()) {
    EXPECT_EQ(n.find('('), std::string::npos) << n;
  }

  LabeledGraph g = GenerateUniformGraph(60, 150, 2, 1, 131);
  auto engine = MakeEngine("SHARDED:Gamma@2", g);
  EXPECT_STREQ(engine->Name(), "sharded(gamma, shards=2)");
  EngineInfo info = engine->Describe();
  EXPECT_EQ(info.clock, ClockDomain::kModeledDevice);
  EXPECT_EQ(info.canonical_spec, "sharded(gamma, shards=2)");
  EXPECT_EQ(info.num_shards, 2u);
  EXPECT_EQ(info.inner_spec, "gamma");
  auto* sharded = dynamic_cast<ShardedEngine*>(engine.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->NumShards(), 2u);

  auto defaulted = MakeEngine("sharded:gf", g);
  EXPECT_STREQ(defaulted->Name(),
               ("sharded(gf, shards=" +
                std::to_string(ShardedEngine::kDefaultShards) + ")")
                   .c_str());
  // The stamped canonical spec materializes the defaulted shard count
  // (Name() and provenance agree).
  EXPECT_EQ(defaulted->Describe().canonical_spec,
            std::string(defaulted->Name()));
  EXPECT_EQ(defaulted->Describe().clock, ClockDomain::kCriticalPath);
}

// Nested wrappers must keep the critical-path clock honest: the outer
// layer's workers block on the inner pools (accruing ~no thread-CPU of
// their own), so the outer critical path has to charge each shard's
// inner critical path, not just the worker's own time.
TEST(ShardedNestingTest, NestedCriticalPathChargesInnerLayer) {
  LabeledGraph g = GenerateUniformGraph(300, 1400, 2, 1, 77);
  auto flat = MakeEngine("sharded(rf, shards=4)", g);
  auto nested = MakeEngine("sharded(sharded(rf, shards=2), shards=2)", g);
  EXPECT_EQ(nested->Describe().clock, ClockDomain::kCriticalPath);
  EXPECT_EQ(nested->Describe().num_shards, 2u);
  EXPECT_EQ(nested->Describe().inner_spec, "sharded(rf, shards=2)");
  for (Engine* e : {flat.get(), nested.get()}) {
    for (const QueryGraph& q : FiveQueries()) e->AddQuery(q);
  }
  UpdateStreamGenerator gen(78);
  UpdateBatch batch = SanitizeBatch(g, gen.MakeMixed(g, 60, 2, 1, 0));
  BatchReport fr = flat->ProcessBatch(batch);
  BatchReport nr = nested->ProcessBatch(batch);
  EXPECT_EQ(fr.TotalMatches(), nr.TotalMatches());
  EXPECT_GT(fr.critical_path_seconds, 0.0);
  EXPECT_GT(nr.critical_path_seconds, 0.0);
  // Both decompose the same work 4 ways; without inner-layer charging
  // the nested clock would be orders of magnitude below the flat one.
  EXPECT_GT(nr.critical_path_seconds, 0.1 * fr.critical_path_seconds);
}

}  // namespace
}  // namespace bdsm
