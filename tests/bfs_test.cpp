/// BFS kernel tests: result equivalence with WBM (differentially), and
/// the memory/transfer behaviour Fig. 5 is built on.
#include <gtest/gtest.h>

#include "core/bfs_kernel.hpp"
#include "core/gamma.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

struct BfsFixture {
  LabeledGraph g;
  QueryGraph q;
  QueryContext ctx;
  CandidateEncoder enc;
  Gpma gpma;
  std::unordered_map<Edge, uint32_t, EdgeHash> order;
  std::vector<SeedEdge> seeds;

  static QueryGraph MakeQuery(size_t nq) {
    std::vector<Label> labels(nq);
    for (size_t i = 0; i < nq; ++i) labels[i] = i % 2;
    QueryGraph q(labels);
    for (size_t i = 0; i + 1 < nq; ++i) {
      q.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
    }
    if (nq == 4) q.AddEdge(3, 0);  // square for the small cases
    return q;
  }

  BfsFixture(uint64_t seed, size_t inserts, size_t nq = 4)
      : g(GenerateUniformGraph(150, 900, 2, 1, seed)),
        q(MakeQuery(nq)),
        enc(q),
        gpma(32) {
    ctx = BuildQueryContext(q, /*coalesced_search=*/false);
    UpdateStreamGenerator gen(seed + 1);
    UpdateBatch batch = gen.MakeInsertions(g, inserts, 0);
    ApplyBatch(&g, batch);
    gpma.BuildFrom(g);
    enc.BuildAll(g);
    uint32_t next = 0;
    for (const UpdateOp& op : batch) {
      seeds.push_back(SeedEdge{op.u, op.v, op.elabel, next});
      order.emplace(Edge(op.u, op.v), next);
      ++next;
    }
  }

  WbmEnv Env() { return WbmEnv{&gpma, &ctx, &enc, &order, true}; }
};

TEST(BfsKernelTest, MatchesWbmResults) {
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    BfsFixture s(seed, 30);
    DeviceConfig cfg;
    cfg.num_sms = 2;
    cfg.warps_per_block = 4;
    Device dev_bfs(cfg), dev_dfs(cfg);
    BfsResult bfs = RunBfsKernel(dev_bfs, s.Env(), s.seeds);
    WbmResult dfs = RunWbmKernel(dev_dfs, s.Env(), s.seeds);
    EXPECT_EQ(CanonicalKeys(bfs.matches), CanonicalKeys(dfs.matches))
        << "seed " << seed;
  }
}

TEST(BfsKernelTest, MemorySamplesRecorded) {
  BfsFixture s(7, 30);
  Device dev;
  BfsResult bfs = RunBfsKernel(dev, s.Env(), s.seeds);
  EXPECT_FALSE(bfs.memory_samples.empty());
  for (double pct : bfs.memory_samples) EXPECT_GE(pct, 0.0);
}

TEST(BfsKernelTest, SmallDeviceMemoryForcesSpills) {
  // Deep path query: frontiers grow multiplicatively with the level,
  // which is exactly Fig. 5(a)'s BFS failure mode.
  BfsFixture s(8, 40, /*nq=*/6);
  DeviceConfig tight;
  tight.global_mem_bytes = 512;  // pathological: force spilling
  Device dev_tight(tight), dev_roomy;
  BfsResult spilled = RunBfsKernel(dev_tight, s.Env(), s.seeds);
  BfsResult roomy = RunBfsKernel(dev_roomy, s.Env(), s.seeds);
  EXPECT_EQ(CanonicalKeys(spilled.matches), CanonicalKeys(roomy.matches));
  EXPECT_GT(spilled.stats.transfer_bytes, 0u);
  EXPECT_EQ(roomy.stats.transfer_bytes, 0u);
  double peak = 0;
  for (double p : spilled.memory_samples) peak = std::max(peak, p);
  EXPECT_GT(peak, 100.0) << "tight device must exceed capacity";
}

TEST(BfsKernelTest, DfsUsesLessPeakMemoryThanBfs) {
  // The Fig. 5(a) claim: DFS's working set is tiny, BFS's is the full
  // frontier.  WBM allocates no frontier at all, so its device peak is
  // the graph only; BFS's allocator peak must exceed it.
  BfsFixture s(9, 60);
  Device dev;
  BfsResult bfs = RunBfsKernel(dev, s.Env(), s.seeds);
  EXPECT_GT(bfs.stats.peak_device_bytes, 0u);
}

}  // namespace
}  // namespace bdsm
