/// Stream-pipeline tests: the asynchronous overlap must be a pure
/// scheduling change — results identical to per-batch ProcessBatch —
/// and the bookkeeping (hidden-prep accounting, per-batch stats) sane.
#include <gtest/gtest.h>

#include "core/stream_pipeline.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

std::vector<UpdateBatch> MakeStream(const LabeledGraph& g, size_t batches,
                                    size_t ops, uint64_t seed) {
  // Batches generated against the evolving graph so they stay valid.
  LabeledGraph evolving = g;
  UpdateStreamGenerator gen(seed);
  std::vector<UpdateBatch> stream;
  for (size_t i = 0; i < batches; ++i) {
    UpdateBatch b =
        SanitizeBatch(evolving, gen.MakeMixed(evolving, ops, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  return stream;
}

QueryGraph TestQuery() {
  QueryGraph q({0, 1, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

TEST(StreamPipelineTest, MatchesSerialProcessing) {
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, 61);
  QueryGraph q = TestQuery();
  auto stream = MakeStream(g, 5, 40, 62);

  GammaOptions opts;
  opts.device.num_sms = 2;

  // Serial reference.
  Gamma serial(g, q, opts);
  std::vector<std::vector<std::string>> want;
  for (const UpdateBatch& b : stream) {
    BatchResult r = serial.ProcessBatch(b);
    auto keys = CanonicalKeys(r.positive_matches);
    auto neg = CanonicalKeys(r.negative_matches);
    keys.insert(keys.end(), neg.begin(), neg.end());
    want.push_back(keys);
  }

  // Pipelined run.
  Gamma pipelined(g, q, opts);
  StreamPipeline pipe(&pipelined);
  std::vector<BatchResult> results;
  PipelineStats stats = pipe.Run(stream, &results);

  ASSERT_EQ(results.size(), stream.size());
  ASSERT_EQ(stats.batches.size(), stream.size());
  for (size_t i = 0; i < results.size(); ++i) {
    auto keys = CanonicalKeys(results[i].positive_matches);
    auto neg = CanonicalKeys(results[i].negative_matches);
    keys.insert(keys.end(), neg.begin(), neg.end());
    EXPECT_EQ(keys, want[i]) << "batch " << i;
  }
}

TEST(StreamPipelineTest, StatsAreConsistent) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 2, 1, 63);
  QueryGraph q = TestQuery();
  auto stream = MakeStream(g, 4, 30, 64);

  Gamma gamma(g, q, GammaOptions{});
  StreamPipeline pipe(&gamma);
  std::vector<BatchResult> results;
  PipelineStats stats = pipe.Run(stream, &results);

  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.total_hidden_seconds, 0.0);
  size_t total = 0;
  for (size_t i = 0; i < stats.batches.size(); ++i) {
    const PipelineBatchStats& b = stats.batches[i];
    EXPECT_EQ(b.applied_ops, stream[i].size());
    EXPECT_EQ(b.positive_matches, results[i].positive_matches.size());
    EXPECT_EQ(b.negative_matches, results[i].negative_matches.size());
    EXPECT_GE(b.prep_seconds, b.prep_hidden_seconds);
    total += b.positive_matches + b.negative_matches;
  }
  EXPECT_EQ(stats.TotalMatches(), total);
}

TEST(StreamPipelineTest, EmptyStream) {
  LabeledGraph g = GenerateUniformGraph(50, 120, 2, 1, 65);
  Gamma gamma(g, TestQuery(), GammaOptions{});
  StreamPipeline pipe(&gamma);
  PipelineStats stats = pipe.Run({});
  EXPECT_TRUE(stats.batches.empty());
  EXPECT_EQ(stats.TotalMatches(), 0u);
}

TEST(StreamPipelineTest, GraphStateTracksStream) {
  LabeledGraph g = GenerateUniformGraph(100, 300, 2, 1, 66);
  auto stream = MakeStream(g, 3, 25, 67);
  LabeledGraph expected = g;
  for (const auto& b : stream) ApplyBatch(&expected, b);

  Gamma gamma(g, TestQuery(), GammaOptions{});
  StreamPipeline pipe(&gamma);
  pipe.Run(stream);
  EXPECT_EQ(gamma.host_graph().NumEdges(), expected.NumEdges());
  EXPECT_EQ(gamma.host_graph().CollectEdges(), expected.CollectEdges());
  EXPECT_EQ(gamma.device_graph().NumEdges(), expected.NumEdges());
}

}  // namespace
}  // namespace bdsm
