/// Stream-pipeline tests: the asynchronous overlap must be a pure
/// scheduling change — results identical to per-batch ProcessBatch for
/// every engine it drives — and the bookkeeping (hidden-prep
/// accounting, per-batch stats) sane.
#include <gtest/gtest.h>

#include "core/stream_pipeline.hpp"
#include "graph/graph_generator.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

std::vector<UpdateBatch> MakeStream(const LabeledGraph& g, size_t batches,
                                    size_t ops, uint64_t seed) {
  // Batches generated against the evolving graph so they stay valid.
  LabeledGraph evolving = g;
  UpdateStreamGenerator gen(seed);
  std::vector<UpdateBatch> stream;
  for (size_t i = 0; i < batches; ++i) {
    UpdateBatch b =
        SanitizeBatch(evolving, gen.MakeMixed(evolving, ops, 2, 1, 0));
    ApplyBatch(&evolving, b);
    stream.push_back(std::move(b));
  }
  return stream;
}

QueryGraph TestQuery() {
  QueryGraph q({0, 1, 1});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  return q;
}

QueryGraph PathQuery() {
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

TEST(StreamPipelineTest, MatchesSerialProcessing) {
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, 61);
  QueryGraph q = TestQuery();
  auto stream = MakeStream(g, 5, 40, 62);

  EngineOptions opts;
  opts.gamma.device.num_sms = 2;

  // Serial reference.
  auto serial = MakeEngine("gamma", g, opts);
  QueryId sq = serial->AddQuery(q);
  std::vector<std::vector<std::string>> want;
  for (const UpdateBatch& b : stream) {
    BatchReport r = serial->ProcessBatch(b);
    const QueryReport* qr = r.Find(sq);
    ASSERT_NE(qr, nullptr);
    auto keys = CanonicalKeys(qr->positive_matches);
    auto neg = CanonicalKeys(qr->negative_matches);
    keys.insert(keys.end(), neg.begin(), neg.end());
    want.push_back(keys);
  }

  // Pipelined run.
  auto pipelined = MakeEngine("gamma", g, opts);
  QueryId pq = pipelined->AddQuery(q);
  StreamPipeline pipe(pipelined.get());
  std::vector<BatchReport> reports;
  PipelineStats stats = pipe.Run(stream, &reports);

  ASSERT_EQ(reports.size(), stream.size());
  ASSERT_EQ(stats.batches.size(), stream.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    const QueryReport* qr = reports[i].Find(pq);
    ASSERT_NE(qr, nullptr);
    auto keys = CanonicalKeys(qr->positive_matches);
    auto neg = CanonicalKeys(qr->negative_matches);
    keys.insert(keys.end(), neg.begin(), neg.end());
    EXPECT_EQ(keys, want[i]) << "batch " << i;
  }
}

// The acceptance bar for multi-query pipelining: StreamPipeline over a
// MultiGamma-backed engine must be *bit-identical* to per-batch
// ProcessBatch — same match vectors in the same order, same stats.
TEST(StreamPipelineTest, OverMultiGammaBitIdenticalToPerBatch) {
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 1, 71);
  auto stream = MakeStream(g, 4, 35, 72);

  EngineOptions opts;
  opts.gamma.device.num_sms = 2;

  auto serial = MakeEngine("multi", g, opts);
  auto pipelined = MakeEngine("multi", g, opts);
  std::vector<QueryId> ids;
  for (const QueryGraph& q : {TestQuery(), PathQuery()}) {
    QueryId a = serial->AddQuery(q);
    QueryId b = pipelined->AddQuery(q);
    ASSERT_EQ(a, b);
    ids.push_back(a);
  }

  std::vector<BatchReport> want;
  for (const UpdateBatch& b : stream) {
    want.push_back(serial->ProcessBatch(b));
  }

  StreamPipeline pipe(pipelined.get());
  std::vector<BatchReport> got;
  pipe.Run(stream, &got);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].queries.size(), want[i].queries.size());
    for (QueryId id : ids) {
      const QueryReport* w = want[i].Find(id);
      const QueryReport* p = got[i].Find(id);
      ASSERT_NE(w, nullptr);
      ASSERT_NE(p, nullptr);
      // Bit-identical: exact vectors, not just canonicalized sets.
      EXPECT_EQ(p->positive_matches, w->positive_matches)
          << "batch " << i << " query " << id;
      EXPECT_EQ(p->negative_matches, w->negative_matches)
          << "batch " << i << " query " << id;
      EXPECT_EQ(p->match_stats.makespan_ticks,
                w->match_stats.makespan_ticks);
      EXPECT_EQ(p->update_stats.makespan_ticks,
                w->update_stats.makespan_ticks);
    }
  }
}

// CPU (CSM) engines cannot split their phases; the pipeline must still
// produce the same results as per-batch ProcessBatch.
TEST(StreamPipelineTest, OverCsmEngineMatchesPerBatch) {
  LabeledGraph g = GenerateUniformGraph(100, 320, 2, 1, 73);
  auto stream = MakeStream(g, 3, 25, 74);

  auto serial = MakeEngine("rf", g);
  auto pipelined = MakeEngine("rf", g);
  QueryId sq = serial->AddQuery(TestQuery());
  QueryId pq = pipelined->AddQuery(TestQuery());

  std::vector<BatchReport> want;
  for (const UpdateBatch& b : stream) {
    want.push_back(serial->ProcessBatch(b));
  }
  StreamPipeline pipe(pipelined.get());
  std::vector<BatchReport> got;
  pipe.Run(stream, &got);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].Find(pq)->positive_matches,
              want[i].Find(sq)->positive_matches);
    EXPECT_EQ(got[i].Find(pq)->negative_matches,
              want[i].Find(sq)->negative_matches);
  }
}

TEST(StreamPipelineTest, StatsAreConsistent) {
  LabeledGraph g = GenerateUniformGraph(120, 420, 2, 1, 63);
  QueryGraph q = TestQuery();
  auto stream = MakeStream(g, 4, 30, 64);

  auto engine = MakeEngine("gamma", g);
  QueryId qid = engine->AddQuery(q);
  StreamPipeline pipe(engine.get());
  std::vector<BatchReport> reports;
  PipelineStats stats = pipe.Run(stream, &reports);

  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.total_hidden_seconds, 0.0);
  size_t total = 0;
  for (size_t i = 0; i < stats.batches.size(); ++i) {
    const PipelineBatchStats& b = stats.batches[i];
    const QueryReport* qr = reports[i].Find(qid);
    EXPECT_EQ(b.applied_ops, stream[i].size());
    EXPECT_EQ(b.positive_matches, qr->positive_matches.size());
    EXPECT_EQ(b.negative_matches, qr->negative_matches.size());
    EXPECT_GE(b.prep_seconds, b.prep_hidden_seconds);
    total += b.positive_matches + b.negative_matches;
  }
  EXPECT_EQ(stats.TotalMatches(), total);
}

TEST(StreamPipelineTest, EmptyStream) {
  LabeledGraph g = GenerateUniformGraph(50, 120, 2, 1, 65);
  auto engine = MakeEngine("gamma", g);
  engine->AddQuery(TestQuery());
  StreamPipeline pipe(engine.get());
  PipelineStats stats = pipe.Run({});
  EXPECT_TRUE(stats.batches.empty());
  EXPECT_EQ(stats.TotalMatches(), 0u);
}

TEST(StreamPipelineTest, GraphStateTracksStream) {
  LabeledGraph g = GenerateUniformGraph(100, 300, 2, 1, 66);
  auto stream = MakeStream(g, 3, 25, 67);
  LabeledGraph expected = g;
  for (const auto& b : stream) ApplyBatch(&expected, b);

  auto engine = MakeEngine("gamma", g);
  engine->AddQuery(TestQuery());
  StreamPipeline pipe(engine.get());
  pipe.Run(stream);
  EXPECT_EQ(engine->host_graph().NumEdges(), expected.NumEdges());
  EXPECT_EQ(engine->host_graph().CollectEdges(), expected.CollectEdges());
}

// Streaming delivery through the pipeline equals the materialized
// per-batch reports.
TEST(StreamPipelineTest, SinkThroughPipeline) {
  LabeledGraph g = GenerateUniformGraph(120, 400, 3, 1, 68);
  auto stream = MakeStream(g, 3, 30, 69);

  auto engine = MakeEngine("gamma", g);
  QueryId qid = engine->AddQuery(TestQuery());

  CollectingSink sink;
  BatchOptions bo;
  bo.sink = &sink;
  bo.materialize = false;
  StreamPipeline pipe(engine.get());
  std::vector<BatchReport> reports;
  pipe.Run(stream, &reports, bo);

  size_t counted = 0;
  for (const BatchReport& r : reports) {
    const QueryReport* qr = r.Find(qid);
    EXPECT_TRUE(qr->positive_matches.empty());  // not materialized
    EXPECT_TRUE(qr->negative_matches.empty());
    counted += qr->TotalMatches();
  }
  EXPECT_EQ(sink.MatchesFor(qid).size(), counted);
  EXPECT_GT(counted, 0u);
}

}  // namespace
}  // namespace bdsm
