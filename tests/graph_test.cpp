/// Unit tests for the graph substrate: LabeledGraph, QueryGraph, CSR,
/// k-core, generators, update streams, I/O round-trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_generator.hpp"
#include "graph/graph_io.hpp"
#include "graph/kcore.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_extractor.hpp"
#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

LabeledGraph MakeTriangleWithTail() {
  // 0-1-2 triangle, 2-3 tail.  Labels: 0,1,1,2.
  LabeledGraph g({0, 1, 1, 2});
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_TRUE(g.InsertEdge(1, 2));
  EXPECT_TRUE(g.InsertEdge(0, 2));
  EXPECT_TRUE(g.InsertEdge(2, 3));
  return g;
}

TEST(LabeledGraphTest, BasicInsertAndQuery) {
  LabeledGraph g = MakeTriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.VertexLabel(3), 2u);
}

TEST(LabeledGraphTest, DuplicateAndSelfLoopRejected) {
  LabeledGraph g({0, 0});
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(1, 0));
  EXPECT_FALSE(g.InsertEdge(1, 1));
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(LabeledGraphTest, RemoveEdge) {
  LabeledGraph g = MakeTriangleWithTail();
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(LabeledGraphTest, AdjacencySorted) {
  LabeledGraph g({0, 0, 0, 0, 0});
  g.InsertEdge(0, 4);
  g.InsertEdge(0, 2);
  g.InsertEdge(0, 3);
  g.InsertEdge(0, 1);
  auto nbrs = g.Neighbors(0);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1].v, nbrs[i].v);
  }
}

TEST(LabeledGraphTest, EdgeLabels) {
  LabeledGraph g({0, 0, 0});
  g.InsertEdge(0, 1, 7);
  g.InsertEdge(1, 2, 3);
  EXPECT_EQ(g.EdgeLabel(0, 1), 7u);
  EXPECT_EQ(g.EdgeLabel(1, 0), 7u);
  EXPECT_EQ(g.EdgeLabel(1, 2), 3u);
  EXPECT_EQ(g.EdgeLabel(0, 2), kNoLabel);
  EXPECT_EQ(g.EdgeLabelAlphabet(), 8u);
}

TEST(LabeledGraphTest, CountNeighborsWithLabel) {
  LabeledGraph g = MakeTriangleWithTail();
  EXPECT_EQ(g.CountNeighborsWithLabel(0, 1), 2u);  // v1, v2 have label 1
  EXPECT_EQ(g.CountNeighborsWithLabel(2, 2), 1u);  // v3 has label 2
  EXPECT_EQ(g.CountNeighborsWithLabel(3, 0), 0u);
}

TEST(LabeledGraphTest, CollectEdgesCanonical) {
  LabeledGraph g = MakeTriangleWithTail();
  auto edges = g.CollectEdges();
  EXPECT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(QueryGraphTest, MasksAndDegrees) {
  QueryGraph q({0, 1, 1, 2});
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 0));
  EXPECT_FALSE(q.HasEdge(0, 3));
  EXPECT_EQ(q.AdjacencyMask(0), 0b0110u);
  EXPECT_EQ(q.AdjacencyMask(2), 0b1011u);
  EXPECT_EQ(q.Degree(2), 3u);
  EXPECT_TRUE(q.IsConnected());
  EXPECT_FALSE(q.IsTree());
}

TEST(QueryGraphTest, Classification) {
  QueryGraph tree({0, 0, 0, 0});
  tree.AddEdge(0, 1);
  tree.AddEdge(1, 2);
  tree.AddEdge(2, 3);
  EXPECT_EQ(tree.Classify(), QueryGraph::StructureClass::kTree);

  QueryGraph dense({0, 0, 0, 0});
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) dense.AddEdge(a, b);
  }
  EXPECT_EQ(dense.Classify(), QueryGraph::StructureClass::kDense);

  QueryGraph sparse({0, 0, 0, 0, 0});
  sparse.AddEdge(0, 1);
  sparse.AddEdge(1, 2);
  sparse.AddEdge(2, 3);
  sparse.AddEdge(3, 4);
  sparse.AddEdge(4, 0);  // 5-cycle: davg = 2, not a tree
  EXPECT_EQ(sparse.Classify(), QueryGraph::StructureClass::kSparse);
}

TEST(QueryGraphTest, DisconnectedDetected) {
  QueryGraph q({0, 0, 0, 0});
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(q.IsConnected());
}

TEST(QueryGraphTest, UsedVertexLabels) {
  QueryGraph q({5, 2, 5, 9});
  auto used = q.UsedVertexLabels();
  EXPECT_EQ(used, (std::vector<Label>{2, 5, 9}));
}

TEST(CsrTest, MatchesSourceGraph) {
  LabeledGraph g = GenerateUniformGraph(200, 800, 4, 3, 123);
  CsrGraph csr(g);
  ASSERT_EQ(csr.NumVertices(), g.NumVertices());
  ASSERT_EQ(csr.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(csr.VertexLabel(v), g.VertexLabel(v));
    ASSERT_EQ(csr.Degree(v), g.Degree(v));
    auto nbrs = csr.Neighbors(v);
    auto gold = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(nbrs[i], gold[i].v);
      EXPECT_EQ(csr.NeighborEdgeLabels(v)[i], gold[i].elabel);
    }
  }
}

TEST(CsrTest, HasEdgeAndLabel) {
  LabeledGraph g({0, 0, 0});
  g.InsertEdge(0, 1, 4);
  CsrGraph csr(g);
  EXPECT_TRUE(csr.HasEdge(0, 1));
  EXPECT_FALSE(csr.HasEdge(0, 2));
  EXPECT_EQ(csr.EdgeLabel(1, 0), 4u);
  EXPECT_EQ(csr.EdgeLabel(0, 2), kNoLabel);
}

TEST(KCoreTest, TriangleWithTail) {
  LabeledGraph g = MakeTriangleWithTail();
  auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(Degeneracy(g), 2u);
}

TEST(KCoreTest, CompleteGraph) {
  LabeledGraph g({0, 0, 0, 0, 0});
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) g.InsertEdge(a, b);
  }
  auto core = CoreNumbers(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 4u);
}

TEST(KCoreTest, CoreInvariant) {
  // Every vertex in the k-core must have >= k neighbors inside the core.
  LabeledGraph g = GenerateUniformGraph(300, 1500, 3, 1, 77);
  auto core = CoreNumbers(g);
  uint32_t k = Degeneracy(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (core[v] < k) continue;
    size_t inside = 0;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (core[nb.v] >= k) ++inside;
    }
    EXPECT_GE(inside, k) << "vertex " << v;
  }
}

TEST(GeneratorTest, PowerLawHitsTargets) {
  GeneratorParams p;
  p.num_vertices = 2000;
  p.avg_degree = 10.0;
  p.vertex_labels = 5;
  p.edge_labels = 1;
  p.seed = 9;
  LabeledGraph g = GeneratePowerLawGraph(p);
  EXPECT_EQ(g.NumVertices(), 2000u);
  EXPECT_NEAR(g.AverageDegree(), 10.0, 2.0);
  EXPECT_LE(g.VertexLabelAlphabet(), 5u);
  // Power-law: max degree should far exceed the average.
  size_t max_deg = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  EXPECT_GT(max_deg, 40u);
}

TEST(GeneratorTest, Deterministic) {
  GeneratorParams p;
  p.num_vertices = 500;
  p.seed = 31337;
  LabeledGraph a = GeneratePowerLawGraph(p);
  LabeledGraph b = GeneratePowerLawGraph(p);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.CollectEdges(), b.CollectEdges());
  EXPECT_EQ(a.vertex_labels(), b.vertex_labels());
}

TEST(DatasetTest, AllTwinsLoadable) {
  for (const DatasetSpec& spec : AllDatasets()) {
    LabeledGraph g = LoadDataset(spec);
    EXPECT_EQ(g.NumVertices(), spec.twin_vertices) << spec.short_name;
    EXPECT_NEAR(g.AverageDegree(), spec.avg_degree,
                spec.avg_degree * 0.35 + 1.0)
        << spec.short_name;
    EXPECT_LE(g.VertexLabelAlphabet(), spec.vertex_labels)
        << spec.short_name;
    if (spec.edge_labels > 1) {
      EXPECT_GT(g.EdgeLabelAlphabet(), 1u) << spec.short_name;
    }
  }
}

TEST(DatasetTest, LookupByName) {
  const DatasetSpec& nf = DatasetByName("NF");
  EXPECT_EQ(nf.id, DatasetId::kNetflow);
  EXPECT_EQ(nf.edge_labels, 7u);
}

TEST(UpdateStreamTest, InsertionsAreFresh) {
  LabeledGraph g = GenerateUniformGraph(300, 900, 3, 1, 5);
  UpdateStreamGenerator gen(17);
  UpdateBatch batch = gen.MakeInsertions(g, 50, 0);
  EXPECT_EQ(batch.size(), 50u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const UpdateOp& op : batch) {
    EXPECT_TRUE(op.is_insert);
    EXPECT_FALSE(g.HasEdge(op.u, op.v));
    EXPECT_TRUE(seen.emplace(op.u, op.v).second) << "duplicate in batch";
  }
}

TEST(UpdateStreamTest, DeletionsExist) {
  LabeledGraph g = GenerateUniformGraph(300, 900, 3, 1, 6);
  UpdateStreamGenerator gen(18);
  UpdateBatch batch = gen.MakeDeletions(g, 40);
  EXPECT_EQ(batch.size(), 40u);
  for (const UpdateOp& op : batch) {
    EXPECT_FALSE(op.is_insert);
    EXPECT_TRUE(g.HasEdge(op.u, op.v));
  }
}

TEST(UpdateStreamTest, ApplyAndRevertRoundTrip) {
  LabeledGraph g = GenerateUniformGraph(200, 600, 3, 2, 7);
  auto before = g.CollectEdges();
  UpdateStreamGenerator gen(19);
  UpdateBatch batch = gen.MakeMixed(g, 60, 2, 1, 2);
  size_t applied = ApplyBatch(&g, batch);
  EXPECT_EQ(applied, batch.size());
  RevertBatch(&g, batch);
  EXPECT_EQ(g.CollectEdges(), before);
}

TEST(UpdateStreamTest, MixedRatio) {
  LabeledGraph g = GenerateUniformGraph(400, 1600, 3, 1, 8);
  UpdateStreamGenerator gen(20);
  UpdateBatch batch = gen.MakeMixed(g, 90, 2, 1, 0);
  size_t ins = 0, del = 0;
  for (const UpdateOp& op : batch) (op.is_insert ? ins : del)++;
  EXPECT_NEAR(static_cast<double>(ins) / static_cast<double>(del), 2.0, 0.5);
}

TEST(UpdateStreamTest, CoreInsertionsStayInCore) {
  LabeledGraph g = LoadDataset(DatasetId::kLSBench);
  auto core = CoreNumbers(g);
  uint32_t k = std::min<uint32_t>(4, Degeneracy(g));
  ASSERT_GT(k, 0u);
  UpdateStreamGenerator gen(21);
  UpdateBatch batch = gen.MakeCoreInsertions(g, 30, k, 44);
  ASSERT_FALSE(batch.empty());
  for (const UpdateOp& op : batch) {
    EXPECT_GE(core[op.u], k);
    EXPECT_GE(core[op.v], k);
  }
}

TEST(UpdateStreamTest, SanitizeDropsConflicts) {
  LabeledGraph g({0, 0, 0});
  g.InsertEdge(0, 1);
  UpdateBatch dirty = {
      {true, 0, 1, kNoLabel},   // already exists
      {false, 1, 2, kNoLabel},  // does not exist
      {true, 1, 2, kNoLabel},   // fine
      {true, 2, 1, kNoLabel},   // duplicate of previous (canonical)
      {true, 2, 2, kNoLabel},   // self-loop
      {false, 0, 1, kNoLabel},  // fine
  };
  UpdateBatch clean = SanitizeBatch(g, dirty);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_TRUE(clean[0].is_insert);
  EXPECT_FALSE(clean[1].is_insert);
}

TEST(QueryExtractorTest, ExtractsRequestedClasses) {
  LabeledGraph g = LoadDataset(DatasetId::kGithub);
  QueryExtractor ex(g, 99);
  for (auto cls : {QueryGraph::StructureClass::kDense,
                   QueryGraph::StructureClass::kSparse,
                   QueryGraph::StructureClass::kTree}) {
    auto q = ex.Extract(6, cls);
    ASSERT_TRUE(q.has_value()) << ToString(cls);
    EXPECT_EQ(q->NumVertices(), 6u);
    EXPECT_TRUE(q->IsConnected());
    EXPECT_EQ(q->Classify(), cls);
  }
}

TEST(QueryExtractorTest, QuerySetSizes) {
  LabeledGraph g = LoadDataset(DatasetId::kAmazon);
  QueryExtractor ex(g, 123);
  auto set = ex.ExtractSet(8, QueryGraph::StructureClass::kTree, 10);
  EXPECT_GE(set.size(), 8u);  // allow a couple of sampler misses
  for (const QueryGraph& q : set) {
    EXPECT_EQ(q.Classify(), QueryGraph::StructureClass::kTree);
  }
}

TEST(GraphIoTest, RoundTrip) {
  LabeledGraph g = GenerateUniformGraph(50, 120, 4, 3, 11);
  std::filesystem::path tmp =
      std::filesystem::temp_directory_path() / "gamma_io_test.graph";
  SaveGraph(g, tmp.string());
  LabeledGraph g2 = LoadGraph(tmp.string());
  EXPECT_EQ(g2.NumVertices(), g.NumVertices());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_EQ(g2.vertex_labels(), g.vertex_labels());
  EXPECT_EQ(g2.CollectEdges(), g.CollectEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      EXPECT_EQ(g2.EdgeLabel(v, nb.v), nb.elabel);
    }
  }
  std::filesystem::remove(tmp);
}

TEST(GraphIoTest, QueryRoundTrip) {
  QueryGraph q({0, 1, 2});
  q.AddEdge(0, 1, 5);
  q.AddEdge(1, 2);
  std::filesystem::path tmp =
      std::filesystem::temp_directory_path() / "gamma_io_test.query";
  SaveQuery(q, tmp.string());
  QueryGraph q2 = LoadQuery(tmp.string());
  EXPECT_EQ(q2.NumVertices(), 3u);
  EXPECT_EQ(q2.edges().size(), 2u);
  EXPECT_EQ(q2.EdgeLabelBetween(0, 1), 5u);
  EXPECT_EQ(q2.EdgeLabelBetween(1, 2), kNoLabel);
  std::filesystem::remove(tmp);
}

}  // namespace
}  // namespace bdsm
