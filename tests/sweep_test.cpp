/// Parameterized property sweeps across configuration axes the other
/// test files fix: GPMA segment capacities, device geometries, query
/// extraction size x class grids, and steal-policy x capacity matrices.
#include <gtest/gtest.h>

#include "core/gamma.hpp"
#include "gpma/gpma.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_generator.hpp"
#include "graph/query_extractor.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {
namespace {

// --- GPMA across segment capacities -----------------------------------

class GpmaCapacitySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GpmaCapacitySweep, FuzzedBatchesKeepInvariants) {
  uint32_t cap = GetParam();
  LabeledGraph g = GenerateUniformGraph(150, 500, 3, 2, 700 + cap);
  Gpma gpma(cap);
  gpma.BuildFrom(g);
  UpdateStreamGenerator gen(800 + cap);
  for (int round = 0; round < 6; ++round) {
    UpdateBatch batch =
        SanitizeBatch(g, gen.MakeMixed(g, 70, 2, 1, 2));
    gpma.ApplyBatch(batch);
    ApplyBatch(&g, batch);
    gpma.CheckInvariants();
    ASSERT_EQ(gpma.NumEdges(), g.NumEdges()) << "cap " << cap;
  }
  // Full teardown keeps invariants too.
  UpdateBatch all;
  for (const Edge& e : g.CollectEdges()) {
    all.push_back(UpdateOp{false, e.u, e.v, kNoLabel});
  }
  gpma.ApplyBatch(all);
  gpma.CheckInvariants();
  EXPECT_EQ(gpma.NumEdges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, GpmaCapacitySweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u),
                         [](const auto& info) {
                           return "cap" + std::to_string(info.param);
                         });

// --- Device geometries -------------------------------------------------

class DeviceGeometrySweep
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(DeviceGeometrySweep, GeometryNeverChangesResults) {
  auto [sms, warps] = GetParam();
  LabeledGraph g = GenerateUniformGraph(120, 420, 2, 1, 55);
  QueryGraph q({0, 1, 0});
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  UpdateStreamGenerator gen(56);
  UpdateBatch batch = SanitizeBatch(g, gen.MakeMixed(g, 30, 2, 1, 0));

  GammaOptions ref;  // default geometry
  Gamma reference(g, q, ref);
  auto want = reference.ProcessBatch(batch);

  GammaOptions opts;
  opts.device.num_sms = sms;
  opts.device.warps_per_block = warps;
  Gamma gamma(g, q, opts);
  auto got = gamma.ProcessBatch(batch);
  EXPECT_EQ(CanonicalKeys(got.positive_matches),
            CanonicalKeys(want.positive_matches));
  EXPECT_EQ(CanonicalKeys(got.negative_matches),
            CanonicalKeys(want.negative_matches));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DeviceGeometrySweep,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 8u),
                      std::make_pair(4u, 2u), std::make_pair(16u, 16u),
                      std::make_pair(83u, 8u)),
    [](const auto& info) {
      return "sms" + std::to_string(info.param.first) + "x" +
             std::to_string(info.param.second);
    });

// --- Query extraction grid ---------------------------------------------

class ExtractionSweep
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(ExtractionSweep, ExtractedQueriesAreWellFormed) {
  auto [cls_idx, nq] = GetParam();
  auto cls = static_cast<QueryGraph::StructureClass>(cls_idx);
  // GH twin: dense enough for every class at every size.
  const LabeledGraph& g = [] {
    static LabeledGraph graph = LoadDataset(DatasetId::kGithub);
    return graph;
  }();
  QueryExtractor ex(g, 900 + nq);
  auto qs = ex.ExtractSet(nq, cls, 3);
  // Dense at 12 vertices may legitimately fail on the twin; everything
  // else must succeed.
  if (cls == QueryGraph::StructureClass::kDense && nq >= 10) {
    return;  // extraction best-effort at the twin's scale
  }
  ASSERT_FALSE(qs.empty());
  for (const QueryGraph& q : qs) {
    EXPECT_EQ(q.NumVertices(), nq);
    EXPECT_TRUE(q.IsConnected());
    EXPECT_EQ(q.Classify(), cls);
    // Labels must exist in the data graph.
    for (VertexId u = 0; u < q.NumVertices(); ++u) {
      EXPECT_LT(q.VertexLabel(u), g.VertexLabelAlphabet());
    }
  }
}

// Outside the macro: commas in a brace-init break macro argument
// splitting.
std::string ExtractionSweepName(
    const ::testing::TestParamInfo<std::tuple<int, size_t>>& info);

INSTANTIATE_TEST_SUITE_P(
    Grid, ExtractionSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4, 6, 8, 10, 12)),
    ExtractionSweepName);

std::string ExtractionSweepName(
    const ::testing::TestParamInfo<std::tuple<int, size_t>>& info) {
  static const char* kNames[] = {"Dense", "Sparse", "Tree"};
  return std::string(kNames[std::get<0>(info.param)]) + "_n" +
         std::to_string(std::get<1>(info.param));
}

}  // namespace
}  // namespace bdsm
