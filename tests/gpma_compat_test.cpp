/// Bit-compat regression tests for the GPMA hot-path overhaul: the
/// engine-visible contract — match vectors (order, counts, truncation
/// flags) and the snapshot -> restore -> replay story — is pinned by
/// golden digests of the full match stream on the seeded `smoke` and
/// `churn` scenarios across gamma / tf / multi / sharded.  The goldens
/// were recorded from the pre-overhaul GPMA (flat mins-array search,
/// sweep rebalances); any physical-layout or plan-cost change must
/// reproduce them exactly.  "multi" hashes per-query match *multisets*
/// (its fused-launch emission order legitimately reflects launch
/// decomposition; see tests/persist_test.cpp); everything else hashes
/// vectors in emission order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "persist/checkpoint.hpp"
#include "persist/restart.hpp"
#include "workload/scenario_runner.hpp"

namespace bdsm {
namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void HashString(const std::string& s, uint64_t* h) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
  *h ^= '|';  // field separator so "ab","c" != "a","bc"
  *h *= kFnvPrime;
}

struct StreamDigest {
  uint64_t hash = kFnvBasis;
  size_t total_matches = 0;
};

/// Runs the scenario's full stream through a fresh engine and folds
/// every query report into one digest.
StreamDigest DigestScenario(const char* scenario, const std::string& spec,
                            bool order_sensitive) {
  workload::ScenarioRunner runner(*workload::FindScenario(scenario),
                                  workload::kDefaultScenarioSeed);
  std::unique_ptr<Engine> engine = MakeEngine(spec, runner.graph());
  for (const QueryGraph& q : runner.queries()) engine->AddQuery(q);
  StreamDigest d;
  for (const UpdateBatch& batch : runner.stream()) {
    BatchReport report = engine->ProcessBatch(batch);
    for (const QueryReport& q : report.queries) {
      HashString("q" + std::to_string(q.id) + ":" +
                     std::to_string(q.num_positive) + "/" +
                     std::to_string(q.num_negative) +
                     (q.timed_out ? "T" : "") + (q.overflowed ? "O" : ""),
                 &d.hash);
      std::vector<std::string> keys;
      keys.reserve(q.positive_matches.size() + q.negative_matches.size());
      for (const MatchRecord& m : q.positive_matches) keys.push_back(m.Key());
      for (const MatchRecord& m : q.negative_matches) keys.push_back(m.Key());
      if (!order_sensitive) std::sort(keys.begin(), keys.end());
      for (const std::string& k : keys) HashString(k, &d.hash);
      d.total_matches += q.TotalMatches();
    }
  }
  return d;
}

struct GoldenCase {
  const char* scenario;
  const char* spec;
  bool order_sensitive;
  uint64_t hash;
  size_t total_matches;
};

// Recorded from the pre-overhaul implementation (PR 6 tree,
// kDefaultScenarioSeed).  Do NOT update these for a data-structure
// change: a mismatch means engine-visible behavior moved.
const GoldenCase kGoldens[] = {
    {"smoke", "gamma", true, 8114857666714125531ull, 32},
    {"smoke", "tf", true, 1805476668834737927ull, 32},
    {"smoke", "multi", false, 10762819622103603133ull, 32},
    {"smoke", "sharded(gamma, shards=2)", true, 8114857666714125531ull, 32},
    {"churn", "gamma", true, 15893862522157088347ull, 123483},
    {"churn", "tf", true, 18280637274354360373ull, 123583},
    {"churn", "multi", false, 13912819475659346377ull, 123483},
    {"churn", "sharded(gamma, shards=2)", true, 15893862522157088347ull, 123483},
};

class GoldenDigestTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenDigestTest, MatchStreamReproducesPreOverhaulGolden) {
  const GoldenCase& c = GetParam();
  StreamDigest d = DigestScenario(c.scenario, c.spec, c.order_sensitive);
  EXPECT_EQ(d.hash, c.hash)
      << c.scenario << " x " << c.spec << ": match stream diverged";
  EXPECT_EQ(d.total_matches, c.total_matches)
      << c.scenario << " x " << c.spec;
}

INSTANTIATE_TEST_SUITE_P(GpmaCompat, GoldenDigestTest,
                         ::testing::ValuesIn(kGoldens));

/// Snapshot -> restore -> replay on the deletion-heavy scenario must
/// stay bit-identical with the overhauled physical layout: the replica
/// graph is the snapshot contract, so a bulk rebuild from it has to
/// reproduce the cold run's match vectors exactly.
TEST(GpmaCompatTest, ChurnSnapshotRestoreReplayBitIdentical) {
  workload::ScenarioRunner runner(*workload::FindScenario("churn"),
                                  workload::kDefaultScenarioSeed);
  const std::vector<UpdateBatch>& stream = runner.stream();
  const size_t kill = stream.size() / 2;

  std::unique_ptr<Engine> cold = MakeEngine("gamma", runner.graph());
  for (const QueryGraph& q : runner.queries()) cold->AddQuery(q);
  std::vector<BatchReport> cold_tail;
  for (size_t i = 0; i < stream.size(); ++i) {
    BatchReport report = cold->ProcessBatch(stream[i]);
    if (i >= kill) cold_tail.push_back(std::move(report));
  }

  std::string dir =
      std::string(::testing::TempDir()) + "/gpma_compat_ckpt";
  std::filesystem::remove_all(dir);
  {
    std::unique_ptr<Engine> dying = MakeEngine("gamma", runner.graph());
    for (const QueryGraph& q : runner.queries()) dying->AddQuery(q);
    persist::Checkpointer cp(
        dir, persist::CheckpointPolicy{.every_batches = 2,
                                       .every_updates = 0,
                                       .prune = true});
    cp.Begin(*dying, runner.seed(), "churn");
    for (size_t i = 0; i < kill; ++i) {
      BatchReport report = dying->ProcessBatch(stream[i]);
      cp.OnBatchApplied(*dying, stream[i], report);
    }
  }
  persist::RestoredEngine restored = persist::RestoreEngine(dir);
  ASSERT_EQ(restored.next_batch, kill);
  for (size_t i = kill; i < stream.size(); ++i) {
    BatchReport warm = restored.engine->ProcessBatch(stream[i]);
    const BatchReport& ref = cold_tail[i - kill];
    ASSERT_EQ(warm.queries.size(), ref.queries.size()) << "batch " << i;
    for (size_t q = 0; q < ref.queries.size(); ++q) {
      const QueryReport& wq = warm.queries[q];
      const QueryReport& rq = ref.queries[q];
      ASSERT_EQ(wq.id, rq.id) << "batch " << i;
      EXPECT_EQ(wq.positive_matches, rq.positive_matches)
          << "batch " << i << " query " << q;
      EXPECT_EQ(wq.negative_matches, rq.negative_matches)
          << "batch " << i << " query " << q;
      EXPECT_EQ(wq.num_positive, rq.num_positive);
      EXPECT_EQ(wq.num_negative, rq.num_negative);
      EXPECT_EQ(wq.timed_out, rq.timed_out);
      EXPECT_EQ(wq.overflowed, rq.overflowed);
    }
  }
  EXPECT_EQ(restored.engine->host_graph(), cold->host_graph());
}

}  // namespace
}  // namespace bdsm
