/// DeviceStats arithmetic and DeviceConfig semantics: the quantities
/// every benchmark reports are computed here, so their algebra gets its
/// own tests (merge modes, utilization, tick->seconds conversion).
#include <gtest/gtest.h>

#include "gpusim/device_config.hpp"

namespace bdsm {
namespace {

DeviceStats MakeStats(uint64_t makespan, uint64_t busy, uint64_t lifetime) {
  DeviceStats s;
  s.makespan_ticks = makespan;
  s.total_busy_ticks = busy;
  s.total_warp_ticks = lifetime;
  s.global_transactions = 10;
  s.tasks_executed = 3;
  return s;
}

TEST(DeviceStatsTest, UtilizationRatio) {
  DeviceStats s = MakeStats(100, 250, 1000);
  EXPECT_DOUBLE_EQ(s.Utilization(), 0.25);
  DeviceStats empty;
  EXPECT_DOUBLE_EQ(empty.Utilization(), 0.0);
}

TEST(DeviceStatsTest, MergeTakesMaxMakespan) {
  // Merge models concurrent execution: makespan = max, work adds.
  DeviceStats a = MakeStats(100, 50, 400);
  DeviceStats b = MakeStats(70, 60, 280);
  a.Merge(b);
  EXPECT_EQ(a.makespan_ticks, 100u);
  EXPECT_EQ(a.total_busy_ticks, 110u);
  EXPECT_EQ(a.total_warp_ticks, 680u);
  EXPECT_EQ(a.global_transactions, 20u);
  EXPECT_EQ(a.tasks_executed, 6u);
}

TEST(DeviceStatsTest, MergeSequentialAddsMakespans) {
  // Sequential launches: makespans add.
  DeviceStats a = MakeStats(100, 50, 400);
  DeviceStats b = MakeStats(70, 60, 280);
  a.MergeSequential(b);
  EXPECT_EQ(a.makespan_ticks, 170u);
  EXPECT_EQ(a.total_busy_ticks, 110u);
}

TEST(DeviceStatsTest, TimeoutPropagatesThroughMerge) {
  DeviceStats a, b;
  b.timed_out = true;
  a.Merge(b);
  EXPECT_TRUE(a.timed_out);
  DeviceStats c, d;
  c.MergeSequential(d);
  EXPECT_FALSE(c.timed_out);
}

TEST(DeviceConfigTest, TickSecondsMatchesClock) {
  DeviceConfig cfg;
  cfg.clock_ghz = 2.0;
  EXPECT_DOUBLE_EQ(cfg.TickSeconds(), 0.5e-9);
  cfg.clock_ghz = 1.0;
  EXPECT_DOUBLE_EQ(cfg.TickSeconds(), 1e-9);
}

TEST(DeviceConfigTest, DefaultsAreThePaper3090) {
  DeviceConfig cfg;
  EXPECT_EQ(cfg.num_sms, 83u);       // RTX 3090 SM count (paper §VI-A)
  EXPECT_EQ(cfg.lanes_per_warp, 32u);
  EXPECT_EQ(cfg.steal_policy, StealPolicy::kActive);
}

}  // namespace
}  // namespace bdsm
