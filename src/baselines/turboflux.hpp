/// \file turboflux.hpp
/// TurboFlux-style CSM (Kim et al., SIGMOD'18).
///
/// TurboFlux maintains a *data-centric graph*: per query vertex, the
/// data vertices whose 1-hop neighborhood supports the query vertex's
/// edges, refreshed incrementally as edges arrive.  This lite version
/// keeps exactly that contract with the neighborhood-label-frequency
/// candidate structure (the same family of filter, maintained on the
/// update endpoints), trading TurboFlux's edge-transition states for a
/// simpler equivalent filter.
#pragma once

#include "baselines/csm_common.hpp"
#include "core/encoder.hpp"

namespace bdsm {

class TurboFluxLite : public CsmEngine {
 public:
  TurboFluxLite(const LabeledGraph& g, const QueryGraph& q)
      : CsmEngine(g, q), enc_(q) {
    enc_.BuildAll(g_);
  }

  const char* Name() const override { return "TF"; }

 protected:
  bool Allowed(VertexId v, VertexId u) const override {
    return enc_.IsCandidate(v, u);
  }

  void OnEdgeInserted(VertexId u, VertexId v, Label) override {
    const VertexId dirty[2] = {u, v};
    enc_.UpdateDirty(g_, dirty);
  }

  void OnEdgeRemoved(VertexId u, VertexId v) override {
    const VertexId dirty[2] = {u, v};
    enc_.UpdateDirty(g_, dirty);
  }

 private:
  CandidateEncoder enc_;
};

}  // namespace bdsm
