#include "baselines/calig.hpp"

namespace bdsm {

namespace {

bool TencFilter(const void* self, VertexId v, VertexId u) {
  return static_cast<const CandidateEncoder*>(self)->IsCandidate(v, u);
}

}  // namespace

CaLigLite::CaLigLite(const LabeledGraph& g, const QueryGraph& q)
    : CsmEngine(g, q) {
  edge_labeled_ = g.EdgeLabelAlphabet() > 0 ||
                  [&q] {
                    for (const QueryEdge& e : q.edges()) {
                      if (e.elabel != kNoLabel) return true;
                    }
                    return false;
                  }();
  if (!edge_labeled_) {
    enc_ = std::make_unique<CandidateEncoder>(q_);
    enc_->BuildAll(g_);
    return;
  }

  // --- Edge-labeled input: build the transformed graph & query. ---
  elabel_base_ = static_cast<Label>(
      std::max(g.VertexLabelAlphabet(), static_cast<size_t>(
                                            q.UsedVertexLabels().empty()
                                                ? 0
                                                : q.UsedVertexLabels().back() +
                                                      1)));
  // Transformed query: original vertices keep their labels; every query
  // edge becomes a labeled vertex with two plain edges.
  std::vector<Label> tq_labels = q.vertex_labels();
  tq_origin_.resize(q.NumVertices());
  for (VertexId u = 0; u < q.NumVertices(); ++u) tq_origin_[u] = u;
  for (const QueryEdge& e : q.edges()) {
    tq_labels.push_back(elabel_base_ + (e.elabel == kNoLabel
                                            ? 0
                                            : e.elabel));
    tq_origin_.push_back(kInvalidVertex);
  }
  tq_ = QueryGraph(tq_labels);
  for (size_t j = 0; j < q.edges().size(); ++j) {
    const QueryEdge& e = q.edges()[j];
    VertexId qev = static_cast<VertexId>(q.NumVertices() + j);
    tq_edge_vertex_.push_back(qev);
    tq_.AddEdge(e.u1, qev);
    tq_.AddEdge(qev, e.u2);
  }

  // Transformed data graph.
  tg_ = LabeledGraph(g.vertex_labels());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (v < nb.v) AddTransformedEdge(v, nb.v, nb.elabel);
    }
  }
  tenc_ = std::make_unique<CandidateEncoder>(tq_);
  tenc_->BuildAll(tg_);
}

VertexId CaLigLite::AddTransformedEdge(VertexId u, VertexId v, Label el) {
  Label evl = elabel_base_ + (el == kNoLabel ? 0 : el);
  VertexId ev;
  if (!free_edge_vertices_.empty()) {
    ev = free_edge_vertices_.back();
    free_edge_vertices_.pop_back();
    tg_.SetVertexLabel(ev, evl);
  } else {
    ev = tg_.AddVertex(evl);
  }
  tg_.InsertEdge(u, ev);
  tg_.InsertEdge(ev, v);
  edge_vertex_[Edge(u, v)] = ev;
  return ev;
}

bool CaLigLite::Allowed(VertexId v, VertexId u) const {
  // Only consulted on the vertex-labeled (untransformed) path.
  return enc_ ? enc_->IsCandidate(v, u) : true;
}

void CaLigLite::OnEdgeInserted(VertexId u, VertexId v, Label el) {
  if (!transformed()) {
    const VertexId dirty[2] = {u, v};
    enc_->UpdateDirty(g_, dirty);
    return;
  }
  VertexId ev = AddTransformedEdge(u, v, el);
  const VertexId dirty[3] = {u, v, ev};
  tenc_->UpdateDirty(tg_, dirty);
}

void CaLigLite::OnEdgeRemoved(VertexId u, VertexId v) {
  if (!transformed()) {
    const VertexId dirty[2] = {u, v};
    enc_->UpdateDirty(g_, dirty);
    return;
  }
  auto it = edge_vertex_.find(Edge(u, v));
  GAMMA_CHECK(it != edge_vertex_.end());
  VertexId ev = it->second;
  tg_.RemoveEdge(u, ev);
  tg_.RemoveEdge(ev, v);
  edge_vertex_.erase(it);
  free_edge_vertices_.push_back(ev);
  const VertexId dirty[3] = {u, v, ev};
  tenc_->UpdateDirty(tg_, dirty);
}

void CaLigLite::FindIncremental(VertexId v1, VertexId v2, Label el,
                                bool positive,
                                std::vector<MatchRecord>* out) {
  if (!transformed()) {
    CsmEngine::FindIncremental(v1, v2, el, positive, out);
    return;
  }
  auto it = edge_vertex_.find(Edge(v1, v2));
  GAMMA_CHECK(it != edge_vertex_.end());
  VertexId ev = it->second;

  // Seed (x_j -> v, qev_j -> ev) for each query edge j and each endpoint
  // assignment; a transformed match fixes M(qev) = ev and M(x) is one of
  // {v1, v2}, so the two seeds cover every match exactly once.
  std::vector<MatchRecord> traw;
  for (size_t j = 0; j < q_.edges().size(); ++j) {
    VertexId x = q_.edges()[j].u1;
    VertexId qev = tq_edge_vertex_[j];
    for (VertexId dv : {v1, v2}) {
      CsmEngine::SeededBacktrack(tg_, tq_, tenc_.get(), &TencFilter, x,
                                 qev, dv, ev, positive, &traw,
                                 result_cap_);
    }
  }
  // Map transformed matches back to original query vertices.
  for (const MatchRecord& t : traw) {
    MatchRecord rec;
    rec.n = static_cast<uint8_t>(q_.NumVertices());
    rec.positive = positive;
    for (VertexId u = 0; u < q_.NumVertices(); ++u) rec.m[u] = t.m[u];
    out->push_back(rec);
  }
}

}  // namespace bdsm
