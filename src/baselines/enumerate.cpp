#include "baselines/enumerate.hpp"

#include <algorithm>

#include "core/query_context.hpp"

namespace bdsm {

namespace {

struct Enumerator {
  const LabeledGraph& g;
  const QueryGraph& q;
  const std::vector<VertexId>& order;
  size_t limit;
  std::vector<MatchRecord>* out;
  std::array<VertexId, kMaxQueryVertices> m;

  bool Full() const { return limit != 0 && out->size() >= limit; }

  void Emit() {
    MatchRecord rec;
    rec.n = static_cast<uint8_t>(q.NumVertices());
    rec.m = m;
    out->push_back(rec);
  }

  void Recurse(size_t level) {
    if (Full()) return;
    if (level == order.size()) {
      Emit();
      return;
    }
    VertexId uq = order[level];
    // Matched query neighbors constrain the candidates; scan the first
    // one's adjacency.
    VertexId base_q = kInvalidVertex;
    for (size_t i = 0; i < level; ++i) {
      if (q.HasEdge(order[i], uq)) {
        base_q = order[i];
        break;
      }
    }
    GAMMA_CHECK(base_q != kInvalidVertex);
    Label base_el = q.EdgeLabelBetween(base_q, uq);
    for (const Neighbor& nb : g.Neighbors(m[base_q])) {
      if (Full()) return;
      VertexId w = nb.v;
      if (nb.elabel != base_el) continue;
      if (g.VertexLabel(w) != q.VertexLabel(uq)) continue;
      bool ok = true;
      for (size_t i = 0; i < level && ok; ++i) {
        if (m[order[i]] == w) ok = false;
      }
      for (size_t i = 0; i < level && ok; ++i) {
        VertexId qv = order[i];
        if (qv == base_q || !q.HasEdge(qv, uq)) continue;
        ok = g.HasEdge(m[qv], w) &&
             g.EdgeLabel(m[qv], w) == q.EdgeLabelBetween(qv, uq);
      }
      if (!ok) continue;
      m[uq] = w;
      Recurse(level + 1);
      m[uq] = kInvalidVertex;
    }
  }
};

}  // namespace

std::vector<MatchRecord> EnumerateAllMatches(const LabeledGraph& g,
                                             const QueryGraph& q,
                                             size_t limit) {
  std::vector<MatchRecord> out;
  if (q.NumVertices() == 0 || q.NumEdges() == 0) return out;
  const QueryEdge& e0 = q.edges().front();
  std::vector<VertexId> order = BuildMatchingOrder(q, e0.u1, e0.u2);
  GAMMA_CHECK(!order.empty());
  Enumerator en{g, q, order, limit, &out, {}};
  en.m.fill(kInvalidVertex);
  // Seed the first query edge with every matching data edge (both
  // orientations — distinct bijections).
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.VertexLabel(v) != q.VertexLabel(e0.u1)) continue;
    for (const Neighbor& nb : g.Neighbors(v)) {
      if (nb.elabel != e0.elabel) continue;
      if (g.VertexLabel(nb.v) != q.VertexLabel(e0.u2)) continue;
      en.m[e0.u1] = v;
      en.m[e0.u2] = nb.v;
      en.Recurse(2);
      en.m[e0.u1] = kInvalidVertex;
      en.m[e0.u2] = kInvalidVertex;
      if (en.Full()) return out;
    }
  }
  return out;
}

std::vector<MatchRecord> EnumerateSeededMatches(const LabeledGraph& g,
                                                const QueryGraph& q,
                                                VertexId a, VertexId b,
                                                VertexId v1, VertexId v2,
                                                size_t limit) {
  std::vector<MatchRecord> out;
  if (g.VertexLabel(v1) != q.VertexLabel(a) ||
      g.VertexLabel(v2) != q.VertexLabel(b)) {
    return out;
  }
  // The seed data edge must exist and carry the query edge's label.
  if (!g.HasEdge(v1, v2) ||
      g.EdgeLabel(v1, v2) != q.EdgeLabelBetween(a, b)) {
    return out;
  }
  std::vector<VertexId> order = BuildMatchingOrder(q, a, b);
  if (order.empty()) return out;
  Enumerator en{g, q, order, limit, &out, {}};
  en.m.fill(kInvalidVertex);
  en.m[a] = v1;
  en.m[b] = v2;
  en.Recurse(2);
  return out;
}

}  // namespace bdsm
