/// \file graphflow.hpp
/// Graphflow-style CSM (Kankanamge et al., SIGMOD'17): no auxiliary
/// index at all — each updated edge is mapped onto every query edge and
/// partial results are extended by direct adjacency joins.  The cheapest
/// maintenance, the weakest pruning; the reference point the indexed
/// baselines improve on.
#pragma once

#include "baselines/csm_common.hpp"

namespace bdsm {

class GraphflowLite : public CsmEngine {
 public:
  GraphflowLite(const LabeledGraph& g, const QueryGraph& q)
      : CsmEngine(g, q) {}

  const char* Name() const override { return "GF"; }

 protected:
  bool Allowed(VertexId, VertexId) const override { return true; }
};

}  // namespace bdsm
