/// \file rapidflow.hpp
/// RapidFlow-style CSM (Sun et al., PVLDB'22) — the strongest CPU
/// baseline in the paper's evaluation.
///
/// Two signature techniques are kept:
/// * **Query reduction**: degree-1 query vertices are peeled off; the
///   seeded search runs on the reduced core and the leaves are appended
///   by direct neighbor enumeration afterwards, skipping full
///   backtracking levels.
/// * **Dual matching**: automorphisms of the full query make whole
///   orbits of query edges equivalent; only one directed pair per orbit
///   is seeded and the sibling matches are emitted by permutation
///   (exactly the k = 0 case of GAMMA's coalesced search — RapidFlow is
///   where the paper credits the idea).
#pragma once

#include <map>

#include "baselines/csm_common.hpp"
#include "core/automorphism.hpp"
#include "core/encoder.hpp"

namespace bdsm {

class RapidFlowLite : public CsmEngine {
 public:
  RapidFlowLite(const LabeledGraph& g, const QueryGraph& q);

  const char* Name() const override { return "RF"; }

 protected:
  bool Allowed(VertexId v, VertexId u) const override {
    return enc_.IsCandidate(v, u);
  }

  void OnEdgeInserted(VertexId u, VertexId v, Label) override {
    const VertexId dirty[2] = {u, v};
    enc_.UpdateDirty(g_, dirty);
  }
  void OnEdgeRemoved(VertexId u, VertexId v) override {
    const VertexId dirty[2] = {u, v};
    enc_.UpdateDirty(g_, dirty);
  }

  void FindIncremental(VertexId v1, VertexId v2, Label el, bool positive,
                       std::vector<MatchRecord>* out) override;

 private:
  /// Seeds directed pair (a, b) with the update edge, runs the reduced
  /// search, emits matches (and their dual/automorphic siblings).
  void SeededReduced(VertexId a, VertexId b, VertexId v1, VertexId v2,
                     bool positive,
                     const std::vector<Permutation>* perms,
                     std::vector<MatchRecord>* out);

  /// Extends a complete core match over the peeled leaves (product
  /// enumeration with injectivity); leaves pinned by the seed keep
  /// their pinned value.
  void ExtendLeaves(std::array<VertexId, kMaxQueryVertices>& m,
                    size_t leaf_idx, bool positive,
                    const std::vector<Permutation>* perms,
                    std::vector<MatchRecord>* out);

  void Emit(const std::array<VertexId, kMaxQueryVertices>& m,
            bool positive, const std::vector<Permutation>* perms,
            std::vector<MatchRecord>* out);

  CandidateEncoder enc_;
  /// Core = query minus degree-1 vertices (unless that empties it).
  std::vector<VertexId> core_;        ///< core vertices
  std::vector<VertexId> leaves_;      ///< peeled degree-1 vertices
  std::array<VertexId, kMaxQueryVertices> leaf_parent_;
  /// k = 0 equivalent-edge groups for dual matching: directed pair ->
  /// (representative flag, permutation list).
  struct DualPlan {
    bool is_representative;
    std::vector<Permutation> perms;  // only for representatives
  };
  std::map<std::pair<VertexId, VertexId>, DualPlan> dual_;
};

}  // namespace bdsm
