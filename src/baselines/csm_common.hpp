/// \file csm_common.hpp
/// Shared chassis of the continuous-subgraph-matching (CSM) baselines
/// the paper compares against (TurboFlux, SymBi, RapidFlow, CaLiG).
///
/// The defining property of every CSM system — and the bottleneck BDSM
/// attacks — is that a batch is processed *one edge at a time* on the
/// CPU: index maintenance + seeded search per update, strictly
/// sequentially.  Each baseline keeps its namesake's key idea (see the
/// per-class comments) but shares this chassis: apply update, refresh
/// the engine's index, enumerate the incremental matches seeded at the
/// updated edge.
///
/// These are faithful "lite" reimplementations, not the authors' code
/// (unavailable offline); docs/BENCHMARKS.md records the substitution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/match.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

class CsmEngine {
 public:
  CsmEngine(const LabeledGraph& g, const QueryGraph& q);
  virtual ~CsmEngine() = default;

  virtual const char* Name() const = 0;

  /// Sequential CSM over the batch: updates processed in order on the
  /// evolving graph; a deletion's negative matches are enumerated before
  /// the edge is removed, an insertion's positive matches after it is
  /// inserted.  Returns all incremental matches in processing order.
  /// `budget_seconds` > 0 aborts long runs (the paper's 30-minute
  /// timeout, scaled); on abort, `timed_out()` reports true.  Hitting
  /// the result cap aborts too and reports `overflowed()` instead.
  std::vector<MatchRecord> ProcessBatch(const UpdateBatch& batch,
                                        double budget_seconds = 0.0);

  bool timed_out() const { return timed_out_; }
  bool overflowed() const { return overflowed_; }
  /// Results are partial for either reason (the "unsolved query"
  /// condition of Table III).
  bool Truncated() const { return timed_out_ || overflowed_; }
  const LabeledGraph& graph() const { return g_; }
  const QueryGraph& query() const { return q_; }

  /// Cap on accumulated incremental matches (0 = unlimited); exceeding
  /// it aborts the batch and reports timed_out (the memory analogue of
  /// the paper's timeout — see GammaOptions::result_cap).
  void set_result_cap(size_t cap) { result_cap_ = cap; }

 protected:
  /// Engine-specific candidate filter: may data vertex v play query
  /// vertex u?  Must be *sound* (never reject a vertex of a true match).
  virtual bool Allowed(VertexId v, VertexId u) const = 0;

  /// Index-maintenance hooks, called after the graph g_ reflects the
  /// change (insert and removal alike).
  virtual void OnEdgeInserted(VertexId u, VertexId v, Label el);
  virtual void OnEdgeRemoved(VertexId u, VertexId v);

  /// All matches containing data edge (v1, v2) in the current graph,
  /// stamped with `positive`.  The default implementation seeds every
  /// query-edge orientation and backtracks with Allowed(); RapidFlow
  /// overrides it with query reduction + dual matching.
  virtual void FindIncremental(VertexId v1, VertexId v2, Label el,
                               bool positive,
                               std::vector<MatchRecord>* out);

  /// Seeded backtracking used by FindIncremental implementations.
  void SeededSearch(VertexId a, VertexId b, VertexId v1, VertexId v2,
                    bool positive, std::vector<MatchRecord>* out);

 public:
  /// The generic seeded backtracking all engines share, parameterized on
  /// graph/query/filter so engines searching a *transformed* graph
  /// (CaLiG) can reuse it.
  using CandidateFilter = bool (*)(const void* self, VertexId v, VertexId u);
  static void SeededBacktrack(const LabeledGraph& g, const QueryGraph& q,
                              const void* filter_self,
                              CandidateFilter filter, VertexId a,
                              VertexId b, VertexId v1, VertexId v2,
                              bool positive,
                              std::vector<MatchRecord>* out,
                              size_t result_cap = 0);

 protected:

  LabeledGraph g_;
  QueryGraph q_;
  bool timed_out_ = false;
  bool overflowed_ = false;
  size_t result_cap_ = 0;
};

/// Factory covering the paper's baseline set: "TF", "SYM", "RF", "CL",
/// plus "GF" (Graphflow, index-free reference point).
std::unique_ptr<CsmEngine> MakeCsmEngine(const std::string& name,
                                         const LabeledGraph& g,
                                         const QueryGraph& q);

/// Net effect of a CSM run: positive and negative matches that cancel
/// (same assignment, opposite polarity — the paper's Example 1
/// redundancy) are removed pairwise, yielding the BDSM-comparable delta.
std::vector<MatchRecord> NetEffect(const std::vector<MatchRecord>& raw);

}  // namespace bdsm
