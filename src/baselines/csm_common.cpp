#include "baselines/csm_common.hpp"

#include <algorithm>
#include <map>

#include "baselines/calig.hpp"
#include "baselines/graphflow.hpp"
#include "baselines/rapidflow.hpp"
#include "baselines/symbi.hpp"
#include "baselines/turboflux.hpp"
#include "core/query_context.hpp"
#include "util/timer.hpp"

namespace bdsm {

CsmEngine::CsmEngine(const LabeledGraph& g, const QueryGraph& q)
    : g_(g), q_(q) {}

void CsmEngine::OnEdgeInserted(VertexId, VertexId, Label) {}
void CsmEngine::OnEdgeRemoved(VertexId, VertexId) {}

std::vector<MatchRecord> CsmEngine::ProcessBatch(const UpdateBatch& batch,
                                                 double budget_seconds) {
  std::vector<MatchRecord> out;
  timed_out_ = false;
  overflowed_ = false;
  Timer timer;
  for (const UpdateOp& op : batch) {
    if (budget_seconds > 0 && timer.ElapsedSeconds() > budget_seconds) {
      timed_out_ = true;
      break;
    }
    if (result_cap_ > 0 && out.size() > result_cap_) {
      overflowed_ = true;
      break;
    }
    if (op.is_insert) {
      if (!g_.InsertEdge(op.u, op.v, op.elabel)) continue;
      OnEdgeInserted(op.u, op.v, op.elabel);
      FindIncremental(op.u, op.v, op.elabel, /*positive=*/true, &out);
    } else {
      if (!g_.HasEdge(op.u, op.v)) continue;
      Label el = g_.EdgeLabel(op.u, op.v);
      FindIncremental(op.u, op.v, el, /*positive=*/false, &out);
      g_.RemoveEdge(op.u, op.v);
      OnEdgeRemoved(op.u, op.v);
    }
  }
  return out;
}

void CsmEngine::FindIncremental(VertexId v1, VertexId v2, Label el,
                                bool positive,
                                std::vector<MatchRecord>* out) {
  for (const QueryEdge& e : q_.edges()) {
    if (e.elabel != el) continue;
    SeededSearch(e.u1, e.u2, v1, v2, positive, out);
    SeededSearch(e.u2, e.u1, v1, v2, positive, out);
  }
}

void CsmEngine::SeededSearch(VertexId a, VertexId b, VertexId v1,
                             VertexId v2, bool positive,
                             std::vector<MatchRecord>* out) {
  auto filter = [](const void* self, VertexId v, VertexId u) {
    return static_cast<const CsmEngine*>(self)->Allowed(v, u);
  };
  SeededBacktrack(g_, q_, this, filter, a, b, v1, v2, positive, out,
                  result_cap_);
}

void CsmEngine::SeededBacktrack(const LabeledGraph& g_,
                                const QueryGraph& q_,
                                const void* filter_self,
                                CandidateFilter Allowed0, VertexId a,
                                VertexId b, VertexId v1, VertexId v2,
                                bool positive,
                                std::vector<MatchRecord>* out,
                                size_t result_cap) {
  auto Allowed = [&](VertexId v, VertexId u) {
    return Allowed0(filter_self, v, u);
  };
  if (g_.VertexLabel(v1) != q_.VertexLabel(a) ||
      g_.VertexLabel(v2) != q_.VertexLabel(b)) {
    return;
  }
  if (!Allowed(v1, a) || !Allowed(v2, b)) return;
  std::vector<VertexId> order = BuildMatchingOrder(q_, a, b);
  if (order.empty()) return;

  const size_t nq = q_.NumVertices();
  std::array<VertexId, kMaxQueryVertices> m;
  m.fill(kInvalidVertex);
  m[a] = v1;
  m[b] = v2;

  // Iterative backtracking identical in structure to the oracle but with
  // the engine's Allowed() filter applied at every level.
  struct Frame {
    std::vector<VertexId> cands;
    size_t next = 0;
  };
  std::vector<Frame> frames(nq);
  size_t level = 2;
  auto gen = [&](size_t l) {
    Frame& f = frames[l];
    f.cands.clear();
    f.next = 0;
    VertexId uq = order[l];
    VertexId base_q = kInvalidVertex;
    for (size_t i = 0; i < l; ++i) {
      if (q_.HasEdge(order[i], uq)) {
        base_q = order[i];
        break;
      }
    }
    GAMMA_CHECK(base_q != kInvalidVertex);
    Label base_el = q_.EdgeLabelBetween(base_q, uq);
    for (const Neighbor& nb : g_.Neighbors(m[base_q])) {
      VertexId w = nb.v;
      if (nb.elabel != base_el) continue;
      if (g_.VertexLabel(w) != q_.VertexLabel(uq)) continue;
      if (!Allowed(w, uq)) continue;
      bool ok = true;
      for (size_t i = 0; i < l && ok; ++i) {
        if (m[order[i]] == w) ok = false;
      }
      for (size_t i = 0; i < l && ok; ++i) {
        VertexId qv = order[i];
        if (qv == base_q || !q_.HasEdge(qv, uq)) continue;
        ok = g_.HasEdge(m[qv], w) &&
             g_.EdgeLabel(m[qv], w) == q_.EdgeLabelBetween(qv, uq);
      }
      if (ok) f.cands.push_back(w);
    }
  };

  if (nq == 2) {
    MatchRecord rec;
    rec.n = 2;
    rec.positive = positive;
    rec.m = m;
    out->push_back(rec);
    return;
  }

  gen(2);
  while (true) {
    if (result_cap > 0 && out->size() > result_cap) break;
    Frame& f = frames[level];
    if (f.next < f.cands.size()) {
      VertexId w = f.cands[f.next++];
      m[order[level]] = w;
      if (level + 1 == nq) {
        MatchRecord rec;
        rec.n = static_cast<uint8_t>(nq);
        rec.positive = positive;
        rec.m = m;
        out->push_back(rec);
        m[order[level]] = kInvalidVertex;
      } else {
        ++level;
        gen(level);
      }
    } else {
      if (level == 2) break;
      --level;
      m[order[level]] = kInvalidVertex;
    }
  }
}

std::unique_ptr<CsmEngine> MakeCsmEngine(const std::string& name,
                                         const LabeledGraph& g,
                                         const QueryGraph& q) {
  if (name == "GF") return std::make_unique<GraphflowLite>(g, q);
  if (name == "TF") return std::make_unique<TurboFluxLite>(g, q);
  if (name == "SYM") return std::make_unique<SymBiLite>(g, q);
  if (name == "RF") return std::make_unique<RapidFlowLite>(g, q);
  if (name == "CL") return std::make_unique<CaLigLite>(g, q);
  GAMMA_CHECK_MSG(false, "unknown CSM engine");
  __builtin_unreachable();
}

std::vector<MatchRecord> NetEffect(const std::vector<MatchRecord>& raw) {
  // Count positives minus negatives per assignment; survivors keep their
  // sign.  CSM can produce the same assignment multiple times across a
  // batch only as (+,-) flips, so counts stay within {-1, 0, +1}.
  std::map<std::string, std::pair<int, MatchRecord>> net;
  for (const MatchRecord& m : raw) {
    MatchRecord unsigned_m = m;
    unsigned_m.positive = true;  // key ignores polarity
    auto& entry = net[unsigned_m.Key()];
    entry.first += m.positive ? 1 : -1;
    entry.second = m;
  }
  std::vector<MatchRecord> out;
  for (auto& [key, entry] : net) {
    if (entry.first == 0) continue;
    MatchRecord m = entry.second;
    m.positive = entry.first > 0;
    out.push_back(m);
  }
  return out;
}

}  // namespace bdsm
