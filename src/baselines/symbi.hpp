/// \file symbi.hpp
/// SymBi-style CSM (Min et al., PVLDB'21).
///
/// SymBi maintains a dynamic candidate space over a DAG of the query
/// with *bidirectional* constraints: a data vertex is kept for query
/// vertex u only when, for every query-neighbor u' of u, some data
/// neighbor is itself a (1-hop) candidate of u' — a 2-hop "weak
/// embedding" condition.  Stronger pruning than TurboFlux's 1-hop
/// filter, paid for with a wider dirty set per update (endpoints plus
/// their neighborhoods).
#pragma once

#include <span>

#include "baselines/csm_common.hpp"
#include "core/encoder.hpp"

namespace bdsm {

class SymBiLite : public CsmEngine {
 public:
  SymBiLite(const LabeledGraph& g, const QueryGraph& q)
      : CsmEngine(g, q), enc_(q) {
    enc_.BuildAll(g_);
    table2_.assign(g_.NumVertices(), 0);
    for (VertexId v = 0; v < g_.NumVertices(); ++v) {
      table2_[v] = ComputeMask2(v);
    }
  }

  const char* Name() const override { return "SYM"; }

 protected:
  bool Allowed(VertexId v, VertexId u) const override {
    return (table2_[v] >> u) & 1u;
  }

  void OnEdgeInserted(VertexId u, VertexId v, Label) override {
    Refresh(u, v);
  }
  void OnEdgeRemoved(VertexId u, VertexId v) override { Refresh(u, v); }

 private:
  /// The 2-hop condition: 1-hop candidate of u, and every query-neighbor
  /// u' of u is 1-hop-supported by some data neighbor of v.
  uint16_t ComputeMask2(VertexId v) const {
    uint16_t mask = 0;
    for (VertexId u = 0; u < q_.NumVertices(); ++u) {
      if (!enc_.IsCandidate(v, u)) continue;
      bool ok = true;
      for (VertexId uq : q_.NeighborsOf(u)) {
        Label want = q_.EdgeLabelBetween(u, uq);
        bool supported = false;
        for (const Neighbor& nb : g_.Neighbors(v)) {
          if (nb.elabel == want && enc_.IsCandidate(nb.v, uq)) {
            supported = true;
            break;
          }
        }
        if (!supported) {
          ok = false;
          break;
        }
      }
      if (ok) mask |= static_cast<uint16_t>(1u << u);
    }
    return mask;
  }

  /// Dirty set = endpoints (1-hop codes change) + their neighborhoods
  /// (2-hop masks depend on the endpoints' codes).
  void Refresh(VertexId u, VertexId v) {
    if (table2_.size() < g_.NumVertices()) {
      table2_.resize(g_.NumVertices(), 0);
    }
    const VertexId ends[2] = {u, v};
    enc_.UpdateDirty(g_, ends);
    std::vector<VertexId> dirty{u, v};
    for (VertexId e : ends) {
      for (const Neighbor& nb : g_.Neighbors(e)) dirty.push_back(nb.v);
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (VertexId d : dirty) table2_[d] = ComputeMask2(d);
  }

  CandidateEncoder enc_;
  std::vector<uint16_t> table2_;
};

}  // namespace bdsm
