/// \file calig.hpp
/// CaLiG-style CSM (Yang et al., PACMMOD'23).
///
/// CaLiG operates on vertex-labeled graphs; edge-labeled inputs are
/// handled by *transforming* labeled edges into labeled vertices
/// connecting the two endpoints.  The paper pinpoints this as its
/// downfall on Netflow/LSBench: the transformation inflates the graph
/// (one extra vertex and one extra edge per data edge) and doubles every
/// path length, blowing up the search space (Table III: 1800(50) on
/// NF/LS sparse & tree sets).  This lite version keeps that behaviour:
/// on vertex-labeled inputs it is a competent index-based CSM; on
/// edge-labeled inputs it builds and maintains the transformed graph and
/// searches the transformed query.
#pragma once

#include <unordered_map>

#include "baselines/csm_common.hpp"
#include "core/encoder.hpp"

namespace bdsm {

class CaLigLite : public CsmEngine {
 public:
  CaLigLite(const LabeledGraph& g, const QueryGraph& q);

  const char* Name() const override { return "CL"; }

 protected:
  bool Allowed(VertexId v, VertexId u) const override;
  void OnEdgeInserted(VertexId u, VertexId v, Label el) override;
  void OnEdgeRemoved(VertexId u, VertexId v) override;
  void FindIncremental(VertexId v1, VertexId v2, Label el, bool positive,
                       std::vector<MatchRecord>* out) override;

 private:
  bool transformed() const { return edge_labeled_; }

  // --- transformed-graph machinery (edge-labeled inputs only) ---
  /// Adds the edge-vertex + two plain edges for data edge (u, v, el);
  /// returns the edge-vertex id.
  VertexId AddTransformedEdge(VertexId u, VertexId v, Label el);

  bool edge_labeled_;
  /// Label offset so edge labels do not collide with vertex labels.
  Label elabel_base_ = 0;

  // Vertex-labeled path: plain NLF index over the original graph.
  std::unique_ptr<CandidateEncoder> enc_;

  // Edge-labeled path: transformed graph, query and index.
  LabeledGraph tg_;
  QueryGraph tq_;
  std::unique_ptr<CandidateEncoder> tenc_;
  /// Original query vertex of each transformed query vertex
  /// (kInvalidVertex for query-edge vertices).
  std::vector<VertexId> tq_origin_;
  /// Transformed-query edge whose edge-vertex a seed should map to, per
  /// original query edge index (the canonical seeding point).
  std::vector<VertexId> tq_edge_vertex_;
  /// data edge -> edge-vertex id in tg_.
  std::unordered_map<Edge, VertexId, EdgeHash> edge_vertex_;
  /// Free list of orphaned edge-vertices for reuse after deletions.
  std::vector<VertexId> free_edge_vertices_;
};

}  // namespace bdsm
