#include "baselines/rapidflow.hpp"

#include <algorithm>

#include "core/query_context.hpp"

namespace bdsm {

RapidFlowLite::RapidFlowLite(const LabeledGraph& g, const QueryGraph& q)
    : CsmEngine(g, q), enc_(q) {
  enc_.BuildAll(g_);
  leaf_parent_.fill(kInvalidVertex);
  // Query reduction: peel degree-1 vertices (single pass, as RF does).
  for (VertexId u = 0; u < q_.NumVertices(); ++u) {
    if (q_.Degree(u) == 1 && q_.NumVertices() > 2) {
      leaves_.push_back(u);
      leaf_parent_[u] = q_.NeighborsOf(u).front();
    } else {
      core_.push_back(u);
    }
  }
  // Dual matching: full-query (k = 0) automorphism orbits only.
  for (const EquivalentEdgeGroup& grp : ComputeEquivalentEdgeGroups(q_)) {
    if (grp.k != 0) continue;
    dual_[grp.directed_orbit.front()] = DualPlan{true, grp.perms};
    for (size_t i = 1; i < grp.directed_orbit.size(); ++i) {
      dual_[grp.directed_orbit[i]] = DualPlan{false, {}};
    }
  }
}

void RapidFlowLite::FindIncremental(VertexId v1, VertexId v2, Label el,
                                    bool positive,
                                    std::vector<MatchRecord>* out) {
  for (const QueryEdge& e : q_.edges()) {
    if (e.elabel != el) continue;
    for (auto [a, b] : {std::make_pair(e.u1, e.u2),
                        std::make_pair(e.u2, e.u1)}) {
      auto it = dual_.find({a, b});
      if (it != dual_.end() && !it->second.is_representative) {
        continue;  // derived from the representative by permutation
      }
      const std::vector<Permutation>* perms =
          it != dual_.end() && !it->second.perms.empty()
              ? &it->second.perms
              : nullptr;
      SeededReduced(a, b, v1, v2, positive, perms, out);
    }
  }
}

void RapidFlowLite::Emit(const std::array<VertexId, kMaxQueryVertices>& m,
                         bool positive,
                         const std::vector<Permutation>* perms,
                         std::vector<MatchRecord>* out) {
  const size_t nq = q_.NumVertices();
  MatchRecord rec;
  rec.n = static_cast<uint8_t>(nq);
  rec.positive = positive;
  rec.m = m;
  out->push_back(rec);
  if (!perms) return;
  // Full-query automorphisms map complete matches to complete matches;
  // position constraints are preserved exactly (sigma preserves labels,
  // degrees and neighbor-label multisets), so no re-validation needed.
  for (const Permutation& p : *perms) {
    MatchRecord sib;
    sib.n = rec.n;
    sib.positive = positive;
    for (VertexId x = 0; x < nq; ++x) sib.m[x] = m[p[x]];
    out->push_back(sib);
  }
}

void RapidFlowLite::ExtendLeaves(
    std::array<VertexId, kMaxQueryVertices>& m, size_t leaf_idx,
    bool positive, const std::vector<Permutation>* perms,
    std::vector<MatchRecord>* out) {
  if (result_cap_ > 0 && out->size() > result_cap_) return;
  // Skip leaves already pinned by the seed.
  while (leaf_idx < leaves_.size() &&
         m[leaves_[leaf_idx]] != kInvalidVertex) {
    ++leaf_idx;
  }
  if (leaf_idx == leaves_.size()) {
    Emit(m, positive, perms, out);
    return;
  }
  VertexId leaf = leaves_[leaf_idx];
  VertexId parent = leaf_parent_[leaf];
  Label want = q_.EdgeLabelBetween(parent, leaf);
  for (const Neighbor& nb : g_.Neighbors(m[parent])) {
    VertexId w = nb.v;
    if (nb.elabel != want) continue;
    if (g_.VertexLabel(w) != q_.VertexLabel(leaf)) continue;
    if (!enc_.IsCandidate(w, leaf)) continue;
    bool used = false;
    for (VertexId x = 0; x < q_.NumVertices() && !used; ++x) {
      used = m[x] == w;
    }
    if (used) continue;
    m[leaf] = w;
    ExtendLeaves(m, leaf_idx + 1, positive, perms, out);
    m[leaf] = kInvalidVertex;
  }
}

void RapidFlowLite::SeededReduced(VertexId a, VertexId b, VertexId v1,
                                  VertexId v2, bool positive,
                                  const std::vector<Permutation>* perms,
                                  std::vector<MatchRecord>* out) {
  if (g_.VertexLabel(v1) != q_.VertexLabel(a) ||
      g_.VertexLabel(v2) != q_.VertexLabel(b)) {
    return;
  }
  if (!enc_.IsCandidate(v1, a) || !enc_.IsCandidate(v2, b)) return;

  const size_t nq = q_.NumVertices();
  std::array<VertexId, kMaxQueryVertices> m;
  m.fill(kInvalidVertex);
  m[a] = v1;
  m[b] = v2;

  if (nq == 2) {
    Emit(m, positive, perms, out);
    return;
  }

  // Search order: seed pair first, then the core; peeled leaves are
  // appended by ExtendLeaves.
  uint16_t core_mask = 0;
  for (VertexId c : core_) core_mask |= static_cast<uint16_t>(1u << c);
  std::vector<VertexId> order = BuildMatchingOrder(q_, a, b, core_mask);
  if (order.empty()) return;
  const size_t depth =
      static_cast<size_t>(__builtin_popcount(
          core_mask | static_cast<uint16_t>(1u << a) |
          static_cast<uint16_t>(1u << b)));

  // Iterative backtracking over levels [2, depth).
  struct Frame {
    std::vector<VertexId> cands;
    size_t next = 0;
  };
  std::vector<Frame> frames(std::max<size_t>(depth, 2));
  auto gen = [&](size_t l) {
    Frame& f = frames[l];
    f.cands.clear();
    f.next = 0;
    VertexId uq = order[l];
    VertexId base_q = kInvalidVertex;
    for (size_t i = 0; i < l; ++i) {
      if (q_.HasEdge(order[i], uq)) {
        base_q = order[i];
        break;
      }
    }
    GAMMA_CHECK(base_q != kInvalidVertex);
    Label base_el = q_.EdgeLabelBetween(base_q, uq);
    for (const Neighbor& nb : g_.Neighbors(m[base_q])) {
      VertexId w = nb.v;
      if (nb.elabel != base_el) continue;
      if (!enc_.IsCandidate(w, uq)) continue;
      bool ok = true;
      for (size_t i = 0; i < l && ok; ++i) {
        if (m[order[i]] == w) ok = false;
      }
      for (size_t i = 0; i < l && ok; ++i) {
        VertexId qv = order[i];
        if (qv == base_q || !q_.HasEdge(qv, uq)) continue;
        ok = g_.HasEdge(m[qv], w) &&
             g_.EdgeLabel(m[qv], w) == q_.EdgeLabelBetween(qv, uq);
      }
      if (ok) f.cands.push_back(w);
    }
  };

  if (depth == 2) {  // nothing beyond the seed pair in the core
    ExtendLeaves(m, 0, positive, perms, out);
    return;
  }
  size_t level = 2;
  gen(2);
  while (true) {
    if (result_cap_ > 0 && out->size() > result_cap_) break;
    Frame& f = frames[level];
    if (f.next < f.cands.size()) {
      VertexId w = f.cands[f.next++];
      m[order[level]] = w;
      if (level + 1 == depth) {
        ExtendLeaves(m, 0, positive, perms, out);
        m[order[level]] = kInvalidVertex;
      } else {
        ++level;
        gen(level);
      }
    } else {
      if (level == 2) break;
      --level;
      m[order[level]] = kInvalidVertex;
    }
  }
}

}  // namespace bdsm
