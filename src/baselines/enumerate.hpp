/// \file enumerate.hpp
/// Reference backtracking subgraph-isomorphism enumeration on the host
/// graph.  This is both the "recompute from scratch" strawman the paper's
/// introduction argues against and the ground-truth oracle the property
/// tests compare every incremental engine to.
#pragma once

#include <cstdint>
#include <vector>

#include "core/match.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"

namespace bdsm {

/// All subgraph isomorphisms of q in g (each distinct bijection counted,
/// automorphic images included — Definition 2 semantics).  Stops after
/// `limit` matches (0 = unlimited).
std::vector<MatchRecord> EnumerateAllMatches(const LabeledGraph& g,
                                             const QueryGraph& q,
                                             size_t limit = 0);

/// Matches with the constraint M(a) = v1, M(b) = v2 (seeded enumeration;
/// the building block of every CSM baseline).
std::vector<MatchRecord> EnumerateSeededMatches(const LabeledGraph& g,
                                                const QueryGraph& q,
                                                VertexId a, VertexId b,
                                                VertexId v1, VertexId v2,
                                                size_t limit = 0);

}  // namespace bdsm
