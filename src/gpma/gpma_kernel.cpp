#include "gpma/gpma_kernel.hpp"

#include <algorithm>

#include "gpusim/coop_groups.hpp"

namespace bdsm {

namespace {

/// Prices the locate step of a slice of the batch's updates: each update
/// binary-searches the segment index; the top `cached` layers are shared
/// memory reads, the remainder global.
class LocateTask : public WarpTask {
 public:
  LocateTask(uint64_t searches, uint32_t height, uint32_t cached)
      : remaining_(searches), height_(height), cached_(cached) {}

  bool Step(WarpContext& ctx) override {
    if (remaining_ == 0) return false;
    // One warp performs 32 searches in lockstep per step.
    uint64_t batch = std::min<uint64_t>(remaining_, ctx.lanes());
    uint32_t shared_layers = std::min(height_, cached_);
    uint32_t global_layers = height_ - shared_layers;
    ctx.ChargeShared(batch * shared_layers);
    // Each global layer probe is one divergent word per search.
    ctx.ChargeGlobal(batch * global_layers, /*coalesced=*/false);
    ctx.ChargeCompute(batch * height_);
    remaining_ -= batch;
    return remaining_ > 0;
  }

  uint64_t EstimateRemaining() const override { return remaining_; }

  std::unique_ptr<WarpTask> StealHalf() override {
    if (remaining_ < 2) return nullptr;
    uint64_t half = remaining_ / 2;
    remaining_ -= half;
    return std::make_unique<LocateTask>(half, height_, cached_);
  }

 private:
  uint64_t remaining_;
  uint32_t height_;
  uint32_t cached_;
};

/// Prices the materialization of one segment op (insert/rebalance).
class SegmentTask : public WarpTask {
 public:
  SegmentTask(const SegmentOp& op, bool use_cg)
      : op_(op),
        steps_left_(ComputeSteps(op, use_cg)) {}

  static uint64_t ComputeSteps(const SegmentOp& op, bool use_cg) {
    uint32_t per_seg = op.window_segments
                           ? static_cast<uint32_t>(op.window_entries /
                                                   op.window_segments)
                           : 0;
    uint64_t steps =
        SegmentPassSteps(op.window_segments, std::max(per_seg, 1u), use_cg);
    // Block/device strategies pay extra synchronization per pass.
    if (op.strategy == SegmentStrategy::kBlock) steps += 4;
    if (op.strategy == SegmentStrategy::kDevice) steps += 32;
    return std::max<uint64_t>(steps, 1);
  }

  bool Step(WarpContext& ctx) override {
    if (steps_left_ == 0) return false;
    // Moving window entries is the dominant cost: coalesced global
    // traffic proportional to the entries touched this pass.
    uint64_t entries_per_step = std::max<uint64_t>(
        1, op_.window_entries / std::max<uint64_t>(1, total_steps_));
    ctx.ChargeGlobal(entries_per_step * 3, /*coalesced=*/true);  // key+val+dst
    ctx.ChargeCompute(entries_per_step);
    --steps_left_;
    return steps_left_ > 0;
  }

  uint64_t EstimateRemaining() const override { return steps_left_; }

  std::unique_ptr<WarpTask> StealHalf() override {
    // A segment merge is a cooperative sequential pass; not splittable.
    return nullptr;
  }

 private:
  SegmentOp op_;
  uint64_t steps_left_;
  uint64_t total_steps_ = std::max<uint64_t>(steps_left_, 1);
};

/// Prices an array resize (grow/shrink): every entry moves once,
/// device-wide, fully coalesced.
class ResizeTask : public WarpTask {
 public:
  explicit ResizeTask(uint64_t entries) : remaining_(entries) {}

  bool Step(WarpContext& ctx) override {
    if (remaining_ == 0) return false;
    uint64_t chunk = std::min<uint64_t>(remaining_, 1024);
    ctx.ChargeGlobal(chunk * 2 * 3, /*coalesced=*/true);  // read + write
    ctx.ChargeCompute(chunk);
    remaining_ -= chunk;
    return remaining_ > 0;
  }

  uint64_t EstimateRemaining() const override { return remaining_ / 1024; }

  std::unique_ptr<WarpTask> StealHalf() override {
    if (remaining_ < 2048) return nullptr;
    uint64_t half = remaining_ / 2;
    remaining_ -= half;
    return std::make_unique<ResizeTask>(half);
  }

 private:
  uint64_t remaining_;
};

}  // namespace

uint32_t ResolveCachedLayers(const GpmaKernelOptions& options,
                             uint32_t tree_height) {
  if (options.cached_layers != GpmaKernelOptions::kAutoCachedLayers) {
    return std::min(options.cached_layers, tree_height);
  }
  // The implicit tree's top L layers are nodes [1, 2^L), a dense prefix
  // of 2^L - 1 eight-byte words — stage the deepest prefix that fits.
  uint32_t layers = 0;
  while (layers < tree_height &&
         ((size_t{1} << (layers + 1)) - 1) * sizeof(uint64_t) <=
             options.index_cache_bytes) {
    ++layers;
  }
  return layers;
}

std::vector<std::unique_ptr<WarpTask>> MakeGpmaUpdateTasks(
    const UpdatePlan& plan, const GpmaKernelOptions& options) {
  std::vector<std::unique_ptr<WarpTask>> tasks;
  uint32_t cached = ResolveCachedLayers(options, plan.tree_height);
  // Locate work is spread across warps in 256-search chunks so the
  // device's parallelism is exercised the way GPMA assigns one thread
  // per update.
  uint64_t searches = plan.locate_searches;
  while (searches > 0) {
    uint64_t chunk = std::min<uint64_t>(searches, 256);
    tasks.push_back(
        std::make_unique<LocateTask>(chunk, plan.tree_height, cached));
    searches -= chunk;
  }
  for (const SegmentOp& op : plan.ops) {
    tasks.push_back(
        std::make_unique<SegmentTask>(op, options.use_cooperative_groups));
  }
  if (plan.resized_entries > 0) {
    tasks.push_back(std::make_unique<ResizeTask>(plan.resized_entries));
  }
  // Size-class reallocations are straight coalesced copies of the
  // segment's live prefix — same traffic shape as a resize move.
  if (plan.class_realloc_entries > 0) {
    tasks.push_back(
        std::make_unique<ResizeTask>(plan.class_realloc_entries));
  }
  return tasks;
}

DeviceStats SimulateGpmaUpdate(Device& device, const UpdatePlan& plan,
                               const GpmaKernelOptions& options) {
  return device.Launch(MakeGpmaUpdateTasks(plan, options));
}

}  // namespace bdsm
