/// \file gpma.hpp
/// GPMA: packed-memory-array dynamic graph container (Sha et al.,
/// PVLDB'17), the device-resident graph structure GAMMA adopts (§V-C).
///
/// Edges are 64-bit keys (src << 32 | dst), both directions stored, kept
/// globally sorted across an array of fixed-capacity *segments* (the PMA
/// leaves).  Three structures keep the hot update path cheap
/// (docs/ENGINES.md "GPMA internals"):
///
/// * an implicit binary segment tree over the leaves — per-node minimum
///   key and live-entry count — so locate is O(log n) node hops (the
///   tree's top layers are what GAMMA caches in shared memory) and any
///   rebalance window's density is an O(1) lookup;
/// * Jacobson-style per-segment occupancy bitmaps (one popcount word per
///   64 slots) mirroring the packed prefix layout;
/// * KNTRIE-style size-classed segment storage: each segment allocates
///   its key/value arrays from quarter-step size classes (bounded ~25%
///   slack), so inserts and erases are in-place array shifts in the
///   common case and sparse segments hold little memory even when the
///   logical segment capacity is large.
///
/// Batch updates locate their leaf through the segment tree, materialize
/// in place when the density thresholds allow, and otherwise rebalance
/// the smallest ancestor window that satisfies its threshold.  Deletion
/// rebalancing is deferred to the end of the batch's deletion phase so
/// one window redistribution absorbs many neighboring erases.  The array
/// itself grows/shrinks by whole power-of-two resizes, sized directly to
/// a target occupancy instead of stepwise doubling/halving.
///
/// This implementation uses the packed-segment PMA variant: entries are
/// compacted at the front of each segment rather than interleaved with
/// gaps.  Same asymptotics and identical segment/window/rebalance
/// behaviour (which is what the update cost model measures); far simpler
/// indexing.
///
/// ApplyBatch additionally returns an UpdatePlan — the per-segment work
/// description from which gpma_kernel.hpp builds the simulated device
/// update kernel (warp/block/device strategies, cooperative groups,
/// cached top layers).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gpma/update_plan.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/common.hpp"

namespace bdsm {

class Gpma {
 public:
  /// Sentinel for "no key": empty segments report this as their min.
  static constexpr uint64_t kEmptyKey = ~0ull;

  /// `segment_capacity` must be a power of two (default 32 = one warp).
  explicit Gpma(uint32_t segment_capacity = 32);

  /// Bulk-loads the edges of g (both directions per undirected edge).
  void BuildFrom(const LabeledGraph& g);

  /// Applies a sanitized batch: deletions first, then insertions (the
  /// convention ApplyBatch(LabeledGraph) also follows).  Returns the
  /// plan describing the segment-level work done.
  UpdatePlan ApplyBatch(const UpdateBatch& batch);

  /// Single-edge operations (used by tests and the bulk path).  Return
  /// false when the edge was already present / absent respectively.
  bool InsertEdge(VertexId u, VertexId v, Label elabel);
  bool RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;
  Label EdgeLabel(VertexId u, VertexId v) const;
  /// Existence test that also yields the label (disambiguates absent
  /// edges from present-but-unlabeled ones).
  bool FindEdge(VertexId u, VertexId v, Label* elabel) const;

  /// Sorted destination/label pairs of v's adjacency.  Materializes a
  /// copy; the matching kernels read through NeighborsInto to reuse a
  /// scratch buffer.
  std::vector<Neighbor> NeighborsOf(VertexId v) const;
  void NeighborsInto(VertexId v, std::vector<Neighbor>* out) const;
  size_t Degree(VertexId v) const;

  /// Directed entry count = 2 * number of undirected edges.
  size_t NumEntries() const { return num_entries_; }
  size_t NumEdges() const { return num_entries_ / 2; }

  size_t NumSegments() const { return num_segments_; }
  uint32_t segment_capacity() const { return seg_cap_; }
  /// PMA tree height = log2(#segments) + 1 (the "layers" of §V-C).
  uint32_t TreeHeight() const;
  double Occupancy() const {
    size_t cap = num_segments_ * seg_cap_;
    return cap == 0 ? 0.0
                    : static_cast<double>(num_entries_) /
                          static_cast<double>(cap);
  }

  // ---- structural introspection (tests, benches; all O(1)/O(log n)) --

  /// Min key of a segment; kEmptyKey when the segment is empty.
  uint64_t SegmentMin(size_t seg) const { return tree_mins_[leaf(seg)]; }
  uint32_t SegmentCount(size_t seg) const { return segs_[seg].count; }
  /// Allocated slots of the segment's size class (<= segment_capacity).
  uint32_t SegmentAllocated(size_t seg) const { return segs_[seg].alloc; }
  /// One word of the segment's occupancy bitmap (packed prefix mask).
  uint64_t OccupancyWord(size_t seg, size_t word) const {
    return occ_bits_[seg * words_per_seg_ + word];
  }
  size_t OccupancyWordsPerSegment() const { return words_per_seg_; }
  /// Total allocated slots across all segments (size-class waste bound:
  /// allocated stays within ~25% of live entries plus the per-segment
  /// minimum class).
  size_t AllocatedSlots() const;

  /// Segment holding (or preceding) `key` via the segment-tree descent —
  /// the production locate path.  `key` must be a storable key
  /// (< kEmptyKey, which is the reserved empty-subtree sentinel).
  size_t LocateSegmentIndexed(uint64_t key) const;
  /// Same answer by linear scan over segment mins; the property suite's
  /// reference for index-vs-scan equivalence.
  size_t LocateSegmentLinear(uint64_t key) const;

  /// Smallest size class holding `needed` entries, clamped to `cap`
  /// (quarter-step classes: waste < 25% above the minimum class).
  static uint32_t SizeClassFor(uint32_t needed, uint32_t cap);

  /// Internal consistency check: global sortedness, counts, tree/bitmap
  /// coherence, size-class bounds.  Tests call this after every
  /// mutation burst.
  void CheckInvariants() const;

 private:
  /// Size-classed storage of one PMA leaf.  `alloc` tracks the class
  /// the arrays were drawn with; slots in [count, alloc) are garbage.
  struct Segment {
    std::unique_ptr<uint64_t[]> keys;
    std::unique_ptr<Label[]> vals;
    uint32_t alloc = 0;
    uint32_t count = 0;
  };

  struct Locator {
    size_t segment;
    size_t offset;  ///< position within segment (insertion point)
    bool found;
  };

  size_t leaf(size_t seg) const { return num_segments_ + seg; }

  uint64_t& KeyAt(size_t seg, size_t off) { return segs_[seg].keys[off]; }
  uint64_t KeyAt(size_t seg, size_t off) const {
    return segs_[seg].keys[off];
  }
  Label& ValAt(size_t seg, size_t off) { return segs_[seg].vals[off]; }
  Label ValAt(size_t seg, size_t off) const { return segs_[seg].vals[off]; }

  /// Binary search for `key`: segment via the tree descent, then
  /// position within the segment.
  Locator Locate(uint64_t key) const;

  /// Grows (or, with hysteresis, shrinks) the segment's storage class so
  /// it holds `needed` entries, copying the live prefix.  Counts the
  /// copy into `plan` when given.
  void ReclassSegment(size_t seg, uint32_t needed, UpdatePlan* plan);
  /// Inserts key at locator position (grows the class in place if the
  /// current one is full).
  void InsertAt(const Locator& loc, uint64_t key, Label val,
                UpdatePlan* plan);
  /// Removes the entry at locator position.
  void RemoveAt(const Locator& loc, UpdatePlan* plan);

  /// Bottom-up rebalance around `seg` ensuring the leaf can take
  /// `incoming` more entries.  Records window size in `plan` when given.
  void RebalanceForInsert(size_t seg, size_t incoming, UpdatePlan* plan);
  /// Counterpart after deletions (merges sparse windows).  Called per
  /// dirty segment at the end of a batch's deletion phase, or per op on
  /// the single-edge path.
  void RebalanceForDelete(size_t seg, UpdatePlan* plan);
  /// Direct-to-target shrink when the whole array is drastically
  /// oversized (size classes already reclaimed the memory; this only
  /// buys back locate height).
  void MaybeShrink(UpdatePlan* plan);

  /// Evenly redistributes the entries of segments [first, first+count).
  void RedistributeWindow(size_t first, size_t count);
  /// Rebuilds the array at new_num_segments, then redistributes all.
  void Resize(size_t new_num_segments);

  /// Density thresholds for a window at `level` (0 = leaf).
  double UpperDensity(uint32_t level) const;
  double LowerDensity(uint32_t level) const;

  /// Recomputes the leaf's tree entries and pulls the path to the root.
  void PullLeaf(size_t seg);
  /// Same for a leaf range [first, first+count): one bottom-up pass.
  void PullRange(size_t first, size_t count);
  /// Rewrites the segment's occupancy words as the prefix mask of count.
  void RefreshOccBits(size_t seg);

  uint32_t seg_cap_;
  uint32_t words_per_seg_;
  size_t num_segments_ = 1;          ///< always a power of two
  std::vector<Segment> segs_;
  std::vector<uint64_t> tree_mins_;  ///< implicit tree, size 2n; [0] unused
  std::vector<uint64_t> tree_live_;  ///< live entries per subtree
  std::vector<uint64_t> occ_bits_;   ///< num_segments * words_per_seg_
  size_t num_entries_ = 0;
};

}  // namespace bdsm
