/// \file gpma.hpp
/// GPMA: packed-memory-array dynamic graph container (Sha et al.,
/// PVLDB'17), the device-resident graph structure GAMMA adopts (§V-C).
///
/// Edges are 64-bit keys (src << 32 | dst), both directions stored, kept
/// globally sorted across an array of fixed-capacity *segments* (the PMA
/// leaves).  Batch updates locate their leaf by binary search over the
/// segment index — the tree's top layers are the part GAMMA caches in
/// shared memory — then materialize in-segment when the density
/// thresholds allow, else trigger a bottom-up window rebalance, growing
/// the array when even the root window is too dense.
///
/// This implementation uses the packed-segment PMA variant: entries are
/// compacted at the front of each segment rather than interleaved with
/// gaps.  Same asymptotics and identical segment/window/rebalance
/// behaviour (which is what the update cost model measures); far simpler
/// indexing.
///
/// ApplyBatch additionally returns an UpdatePlan — the per-segment work
/// description from which gpma_kernel.hpp builds the simulated device
/// update kernel (warp/block/device strategies, cooperative groups,
/// cached top layers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpma/update_plan.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/common.hpp"

namespace bdsm {

class Gpma {
 public:
  /// `segment_capacity` must be a power of two (default 32 = one warp).
  explicit Gpma(uint32_t segment_capacity = 32);

  /// Bulk-loads the edges of g (both directions per undirected edge).
  void BuildFrom(const LabeledGraph& g);

  /// Applies a sanitized batch: deletions first, then insertions (the
  /// convention ApplyBatch(LabeledGraph) also follows).  Returns the
  /// plan describing the segment-level work done.
  UpdatePlan ApplyBatch(const UpdateBatch& batch);

  /// Single-edge operations (used by tests and the bulk path).  Return
  /// false when the edge was already present / absent respectively.
  bool InsertEdge(VertexId u, VertexId v, Label elabel);
  bool RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;
  Label EdgeLabel(VertexId u, VertexId v) const;
  /// Existence test that also yields the label (disambiguates absent
  /// edges from present-but-unlabeled ones).
  bool FindEdge(VertexId u, VertexId v, Label* elabel) const;

  /// Sorted destination/label pairs of v's adjacency.  Materializes a
  /// copy; the matching kernels read through NeighborsInto to reuse a
  /// scratch buffer.
  std::vector<Neighbor> NeighborsOf(VertexId v) const;
  void NeighborsInto(VertexId v, std::vector<Neighbor>* out) const;
  size_t Degree(VertexId v) const;

  /// Directed entry count = 2 * number of undirected edges.
  size_t NumEntries() const { return num_entries_; }
  size_t NumEdges() const { return num_entries_ / 2; }

  size_t NumSegments() const { return seg_keys_.size() / seg_cap_; }
  uint32_t segment_capacity() const { return seg_cap_; }
  /// PMA tree height = log2(#segments) + 1 (the "layers" of §V-C).
  uint32_t TreeHeight() const;
  double Occupancy() const {
    size_t cap = seg_keys_.size();
    return cap == 0 ? 0.0
                    : static_cast<double>(num_entries_) /
                          static_cast<double>(cap);
  }

  /// Internal consistency check: global sortedness, counts, thresholds.
  /// Tests call this after every mutation burst.
  void CheckInvariants() const;

 private:
  struct Locator {
    size_t segment;
    size_t offset;  ///< position within segment (insertion point)
    bool found;
  };

  size_t SegCount(size_t seg) const { return seg_counts_[seg]; }
  uint64_t& KeyAt(size_t seg, size_t off) {
    return seg_keys_[seg * seg_cap_ + off];
  }
  uint64_t KeyAt(size_t seg, size_t off) const {
    return seg_keys_[seg * seg_cap_ + off];
  }
  Label& ValAt(size_t seg, size_t off) {
    return seg_vals_[seg * seg_cap_ + off];
  }
  Label ValAt(size_t seg, size_t off) const {
    return seg_vals_[seg * seg_cap_ + off];
  }

  /// Binary search for `key`: segment via the segment-min index, then
  /// position within the segment.
  Locator Locate(uint64_t key) const;

  /// Inserts key at locator position, assuming the leaf has room.
  void InsertAt(const Locator& loc, uint64_t key, Label val);
  /// Removes the entry at locator position.
  void RemoveAt(const Locator& loc);

  /// Bottom-up rebalance around `seg` ensuring the leaf can take
  /// `incoming` more entries.  Records window size in `plan` when given.
  void RebalanceForInsert(size_t seg, size_t incoming, UpdatePlan* plan);
  /// Counterpart after deletions (merges sparse windows).
  void RebalanceForDelete(size_t seg, UpdatePlan* plan);

  /// Evenly redistributes the entries of segments [first, first+count).
  void RedistributeWindow(size_t first, size_t count);
  /// Doubles (or halves) the segment array, then redistributes all.
  void Resize(size_t new_num_segments);

  /// Density thresholds for a window at `level` (0 = leaf).
  double UpperDensity(uint32_t level) const;
  double LowerDensity(uint32_t level) const;

  void RefreshSegMins();
  /// Recomputes seg_mins_[seg] (fill semantics: empty segments inherit
  /// their successor's min) and back-propagates across empty runs.
  void FixMinsAround(size_t seg);

  uint32_t seg_cap_;
  std::vector<uint64_t> seg_keys_;   ///< num_segments * seg_cap_ slots
  std::vector<Label> seg_vals_;
  std::vector<uint32_t> seg_counts_; ///< live entries per segment
  std::vector<uint64_t> seg_mins_;   ///< first key per segment (index)
  size_t num_entries_ = 0;
};

}  // namespace bdsm
