#include "gpma/gpma.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"

namespace bdsm {

namespace {

// Leaf segments may fill almost completely; windows closer to the root
// must stay sparser so local rebalances keep absorbing future inserts
// (standard adaptive-PMA profile, Bender & Hu).
constexpr double kLeafUpper = 0.92;
constexpr double kRootUpper = 0.70;
constexpr double kLeafLower = 0.08;
constexpr double kRootLower = 0.30;

// Whole-array resizes target a mid-band occupancy directly (instead of
// stepwise doubling/halving) so one resize settles the structure.
constexpr double kGrowTargetOccupancy = 0.45;
constexpr double kShrinkTargetOccupancy = 0.35;

// Global shrink trigger.  Deliberately far below the root lower bound:
// with size-classed segments the memory of sparse leaves is already
// reclaimed per segment, so shrinking the segment array only buys back
// locate height — worth a full-array move only when the array is
// drastically oversized.  The wide grow/shrink hysteresis band also
// prevents resize thrash under delete-heavy churn.
constexpr double kShrinkOccupancy = kRootLower / 8;

SegmentStrategy StrategyForWindow(size_t window_slots) {
  if (window_slots <= 32) return SegmentStrategy::kWarp;
  // 12 bytes/entry (key + value + dst) against 48 KB shared memory.
  if (window_slots * 12 <= 48 * 1024) return SegmentStrategy::kBlock;
  return SegmentStrategy::kDevice;
}

}  // namespace

Gpma::Gpma(uint32_t segment_capacity) : seg_cap_(segment_capacity) {
  GAMMA_CHECK_MSG(std::has_single_bit(segment_capacity),
                  "segment capacity must be a power of two");
  words_per_seg_ = (seg_cap_ + 63) / 64;
  num_segments_ = 1;
  segs_ = std::vector<Segment>(1);
  occ_bits_.assign(words_per_seg_, 0);
  tree_mins_.assign(2, kEmptyKey);
  tree_live_.assign(2, 0);
}

uint32_t Gpma::TreeHeight() const {
  return static_cast<uint32_t>(std::bit_width(num_segments_));
}

double Gpma::UpperDensity(uint32_t level) const {
  uint32_t h = std::max(1u, TreeHeight() - 1);
  double frac = static_cast<double>(level) / static_cast<double>(h);
  return kLeafUpper + (kRootUpper - kLeafUpper) * frac;
}

double Gpma::LowerDensity(uint32_t level) const {
  uint32_t h = std::max(1u, TreeHeight() - 1);
  double frac = static_cast<double>(level) / static_cast<double>(h);
  return kLeafLower + (kRootLower - kLeafLower) * frac;
}

uint32_t Gpma::SizeClassFor(uint32_t needed, uint32_t cap) {
  uint32_t c;
  if (needed <= 4) {
    c = 4;
  } else if (needed < 16) {
    c = (needed + 3u) & ~3u;
  } else {
    uint32_t step = std::bit_floor(needed) / 4;  // quarter-step classes
    c = (needed + step - 1) / step * step;
  }
  return std::min(c, cap);
}

size_t Gpma::AllocatedSlots() const {
  size_t total = 0;
  for (const Segment& s : segs_) total += s.alloc;
  return total;
}

void Gpma::RefreshOccBits(size_t seg) {
  uint64_t* w = &occ_bits_[seg * words_per_seg_];
  uint32_t cnt = segs_[seg].count;
  for (uint32_t i = 0; i < words_per_seg_; ++i) {
    uint32_t lo = i * 64;
    w[i] = cnt <= lo ? 0
           : cnt - lo >= 64 ? ~0ull
                            : (1ull << (cnt - lo)) - 1;
  }
}

void Gpma::PullLeaf(size_t seg) {
  size_t node = leaf(seg);
  tree_mins_[node] = segs_[seg].count ? segs_[seg].keys[0] : kEmptyKey;
  tree_live_[node] = segs_[seg].count;
  for (node >>= 1; node >= 1; node >>= 1) {
    tree_mins_[node] =
        std::min(tree_mins_[2 * node], tree_mins_[2 * node + 1]);
    tree_live_[node] = tree_live_[2 * node] + tree_live_[2 * node + 1];
  }
}

void Gpma::PullRange(size_t first, size_t count) {
  for (size_t s = first; s < first + count; ++s) {
    size_t node = leaf(s);
    tree_mins_[node] = segs_[s].count ? segs_[s].keys[0] : kEmptyKey;
    tree_live_[node] = segs_[s].count;
  }
  size_t lo = leaf(first), hi = leaf(first + count - 1) + 1;
  while (lo > 1) {
    lo >>= 1;
    hi = (hi + 1) >> 1;
    for (size_t i = lo; i < hi; ++i) {
      tree_mins_[i] = std::min(tree_mins_[2 * i], tree_mins_[2 * i + 1]);
      tree_live_[i] = tree_live_[2 * i] + tree_live_[2 * i + 1];
    }
  }
}

size_t Gpma::LocateSegmentIndexed(uint64_t key) const {
  // Descend toward the last leaf whose min <= key: take the right child
  // whenever its subtree holds a key small enough.  Empty subtrees
  // report kEmptyKey (+inf) and are never descended into, so the search
  // lands on a non-empty leaf whenever one qualifies, segment 0
  // otherwise — exactly the flat search over inheritance-filled mins.
  size_t node = 1;
  while (node < num_segments_) {
    size_t right = 2 * node + 1;
    node = tree_mins_[right] <= key ? right : 2 * node;
  }
  return node - num_segments_;
}

size_t Gpma::LocateSegmentLinear(uint64_t key) const {
  for (size_t s = num_segments_; s-- > 0;) {
    if (segs_[s].count && segs_[s].keys[0] <= key) return s;
  }
  return 0;
}

Gpma::Locator Gpma::Locate(uint64_t key) const {
  size_t seg = LocateSegmentIndexed(key);
  size_t cnt = segs_[seg].count;
  size_t a = 0, b = cnt;
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (KeyAt(seg, mid) < key) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  bool found = a < cnt && KeyAt(seg, a) == key;
  return Locator{seg, a, found};
}

void Gpma::ReclassSegment(size_t seg, uint32_t needed, UpdatePlan* plan) {
  Segment& s = segs_[seg];
  uint32_t target = SizeClassFor(std::max(needed, s.count), seg_cap_);
  uint64_t roomy = std::min<uint64_t>(uint64_t{needed} * 2, seg_cap_);
  bool grow = s.alloc < target;
  // KNTRIE-style hysteresis: only release storage once the class for
  // twice the live count is still smaller than what we hold.
  bool shrink =
      s.alloc > SizeClassFor(static_cast<uint32_t>(roomy), seg_cap_);
  if (!grow && !shrink) return;
  auto keys = std::make_unique<uint64_t[]>(target);
  auto vals = std::make_unique<Label[]>(target);
  if (s.count) {
    std::copy_n(s.keys.get(), s.count, keys.get());
    std::copy_n(s.vals.get(), s.count, vals.get());
  }
  s.keys = std::move(keys);
  s.vals = std::move(vals);
  s.alloc = target;
  if (plan) {
    ++plan->class_reallocs;
    plan->class_realloc_entries += s.count;
  }
}

void Gpma::InsertAt(const Locator& loc, uint64_t key, Label val,
                    UpdatePlan* plan) {
  Segment& s = segs_[loc.segment];
  GAMMA_CHECK(s.count < seg_cap_);
  // A grow here is covered by the SegmentOp the caller records for this
  // leaf (the op's window_entries already price materializing the whole
  // segment, into whatever allocation backs it) — so it is deliberately
  // not counted as a standalone class realloc.
  if (s.count + 1 > s.alloc) {
    ReclassSegment(loc.segment, s.count + 1, nullptr);
  }
  (void)plan;
  for (size_t i = s.count; i > loc.offset; --i) {
    s.keys[i] = s.keys[i - 1];
    s.vals[i] = s.vals[i - 1];
  }
  s.keys[loc.offset] = key;
  s.vals[loc.offset] = val;
  ++s.count;
  ++num_entries_;
  occ_bits_[loc.segment * words_per_seg_ + (s.count - 1) / 64] |=
      1ull << ((s.count - 1) % 64);
  PullLeaf(loc.segment);
}

void Gpma::RemoveAt(const Locator& loc, UpdatePlan* plan) {
  Segment& s = segs_[loc.segment];
  GAMMA_CHECK(loc.found && loc.offset < s.count);
  for (size_t i = loc.offset; i + 1 < s.count; ++i) {
    s.keys[i] = s.keys[i + 1];
    s.vals[i] = s.vals[i + 1];
  }
  --s.count;
  --num_entries_;
  occ_bits_[loc.segment * words_per_seg_ + s.count / 64] &=
      ~(1ull << (s.count % 64));
  ReclassSegment(loc.segment, s.count, plan);
  PullLeaf(loc.segment);
}

void Gpma::RedistributeWindow(size_t first, size_t count) {
  // Gather live entries of the window in order.
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  for (size_t s = first; s < first + count; ++s) {
    keys.insert(keys.end(), segs_[s].keys.get(),
                segs_[s].keys.get() + segs_[s].count);
    vals.insert(vals.end(), segs_[s].vals.get(),
                segs_[s].vals.get() + segs_[s].count);
  }
  // Spread evenly; normalize each segment's size class to its share.
  size_t total = keys.size();
  size_t base = total / count, extra = total % count;
  size_t idx = 0;
  for (size_t s = first; s < first + count; ++s) {
    size_t take = base + ((s - first) < extra ? 1 : 0);
    GAMMA_CHECK(take <= seg_cap_);
    Segment& sg = segs_[s];
    uint32_t cls = SizeClassFor(static_cast<uint32_t>(take), seg_cap_);
    if (sg.alloc < take || sg.alloc > SizeClassFor(
            static_cast<uint32_t>(std::min<uint64_t>(take * 2, seg_cap_)),
            seg_cap_)) {
      sg.keys = std::make_unique<uint64_t[]>(cls);
      sg.vals = std::make_unique<Label[]>(cls);
      sg.alloc = cls;
    }
    sg.count = static_cast<uint32_t>(take);
    std::copy_n(keys.data() + idx, take, sg.keys.get());
    std::copy_n(vals.data() + idx, take, sg.vals.get());
    idx += take;
    RefreshOccBits(s);
  }
  // One bottom-up pass over the window's ancestors — no full-array
  // sweep (the old implementation re-derived every segment min here).
  PullRange(first, count);
}

void Gpma::Resize(size_t new_num_segments) {
  GAMMA_CHECK(new_num_segments >= 1 &&
              std::has_single_bit(new_num_segments));
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  keys.reserve(num_entries_);
  vals.reserve(num_entries_);
  for (size_t s = 0; s < num_segments_; ++s) {
    keys.insert(keys.end(), segs_[s].keys.get(),
                segs_[s].keys.get() + segs_[s].count);
    vals.insert(vals.end(), segs_[s].vals.get(),
                segs_[s].vals.get() + segs_[s].count);
  }
  GAMMA_CHECK(keys.size() <= new_num_segments * seg_cap_);
  num_segments_ = new_num_segments;
  segs_ = std::vector<Segment>(new_num_segments);
  occ_bits_.assign(new_num_segments * words_per_seg_, 0);
  tree_mins_.assign(2 * new_num_segments, kEmptyKey);
  tree_live_.assign(2 * new_num_segments, 0);
  size_t total = keys.size();
  size_t base = total / new_num_segments, extra = total % new_num_segments;
  size_t idx = 0;
  for (size_t s = 0; s < new_num_segments; ++s) {
    size_t take = base + (s < extra ? 1 : 0);
    Segment& sg = segs_[s];
    sg.alloc = SizeClassFor(static_cast<uint32_t>(take), seg_cap_);
    sg.count = static_cast<uint32_t>(take);
    sg.keys = std::make_unique<uint64_t[]>(sg.alloc);
    sg.vals = std::make_unique<Label[]>(sg.alloc);
    std::copy_n(keys.data() + idx, take, sg.keys.get());
    std::copy_n(vals.data() + idx, take, sg.vals.get());
    idx += take;
    RefreshOccBits(s);
  }
  PullRange(0, new_num_segments);
}

void Gpma::RebalanceForInsert(size_t seg, size_t incoming,
                              UpdatePlan* plan) {
  // Find the smallest window (seg's ancestors) whose density after the
  // incoming entries respects the level threshold; redistribute it.
  // Window live counts come straight from the segment tree.
  size_t n = num_segments_;
  uint32_t level = 0;
  size_t win = 1;
  while (true) {
    size_t first = (seg / win) * win;
    size_t live = tree_live_[(n + first) >> level];
    double density = static_cast<double>(live + incoming) /
                     static_cast<double>(win * seg_cap_);
    bool fits = live + incoming <= win * seg_cap_;  // physical capacity
    // Even redistribution leaves ceil(live/win) entries per leaf; the
    // target leaf must still absorb at least one incoming entry (with
    // tiny segments the density threshold alone can round up to "full").
    size_t per_leaf = (live + win - 1) / win;
    bool leaf_room = per_leaf + 1 <= seg_cap_;
    if (fits && leaf_room && density <= UpperDensity(level)) {
      if (win > 1) {
        RedistributeWindow(first, win);
        if (plan) {
          ++plan->window_rebalances;
          plan->AddOp(SegmentOp{live, static_cast<uint32_t>(win),
                                static_cast<uint32_t>(incoming), 0,
                                StrategyForWindow(win * seg_cap_)});
        }
      }
      return;
    }
    if (win >= n) break;
    win *= 2;
    ++level;
  }
  // Even the root window is too dense: grow the array, sized directly
  // for the post-insert entry count at the target occupancy.
  size_t needed = num_entries_ + incoming;
  size_t by_occ = static_cast<size_t>(
                      static_cast<double>(needed) /
                      (kGrowTargetOccupancy * seg_cap_)) +
                  1;
  size_t target = std::max(n * 2, std::bit_ceil(by_occ));
  size_t moved = num_entries_;
  Resize(target);
  if (plan) {
    ++plan->resizes;
    plan->resized_entries += moved;
  }
}

void Gpma::MaybeShrink(UpdatePlan* plan) {
  if (num_segments_ == 1 || Occupancy() >= kShrinkOccupancy) return;
  size_t by_occ = static_cast<size_t>(
                      static_cast<double>(num_entries_) /
                      (kShrinkTargetOccupancy * seg_cap_)) +
                  1;
  size_t target =
      std::min(std::max<size_t>(1, std::bit_ceil(by_occ)),
               num_segments_ / 2);
  size_t moved = num_entries_;
  Resize(target);
  if (plan) {
    ++plan->resizes;
    plan->resized_entries += moved;
  }
}

void Gpma::RebalanceForDelete(size_t seg, UpdatePlan* plan) {
  size_t n = num_segments_;
  if (n == 1) return;
  double leaf_density = static_cast<double>(segs_[seg].count) /
                        static_cast<double>(seg_cap_);
  // Lower-bound maintenance is lazy, with a hysteresis band mirroring
  // the grow/shrink one: only a near-empty leaf (half the lower bound)
  // is worth a window merge.  Sparse-but-live leaves cost nothing extra
  // to scan (empty slots are never touched under the packed layout) and
  // their storage is already reclaimed by the size classes.
  if (leaf_density >= 0.5 * LowerDensity(0)) return;
  uint32_t level = 0;
  size_t win = 1;
  while (win < n) {
    win *= 2;
    ++level;
    size_t first = (seg / win) * win;
    size_t live = tree_live_[(n + first) >> level];
    double density = static_cast<double>(live) /
                     static_cast<double>(win * seg_cap_);
    if (density >= LowerDensity(level)) {
      RedistributeWindow(first, win);
      if (plan) {
        ++plan->window_rebalances;
        plan->AddOp(SegmentOp{live, static_cast<uint32_t>(win), 0, 1,
                              StrategyForWindow(win * seg_cap_)});
      }
      return;
    }
  }
  MaybeShrink(plan);
}

bool Gpma::InsertEdge(VertexId u, VertexId v, Label elabel) {
  uint64_t k1 = PackEdge(u, v), k2 = PackEdge(v, u);
  if (Locate(k1).found) return false;
  for (uint64_t key : {k1, k2}) {
    Locator loc = Locate(key);
    if (segs_[loc.segment].count >= seg_cap_ ||
        static_cast<double>(segs_[loc.segment].count + 1) /
                static_cast<double>(seg_cap_) >
            kLeafUpper) {
      RebalanceForInsert(loc.segment, 1, nullptr);
      loc = Locate(key);
    }
    InsertAt(loc, key, elabel, nullptr);
  }
  return true;
}

bool Gpma::RemoveEdge(VertexId u, VertexId v) {
  uint64_t k1 = PackEdge(u, v), k2 = PackEdge(v, u);
  Locator l1 = Locate(k1);
  if (!l1.found) return false;
  RemoveAt(l1, nullptr);
  Locator l2 = Locate(k2);
  GAMMA_CHECK(l2.found);
  RemoveAt(l2, nullptr);
  RebalanceForDelete(l2.segment, nullptr);
  return true;
}

void Gpma::BuildFrom(const LabeledGraph& g) {
  // Bulk load: gather all directed entries sorted, size the array to
  // the insert-phase grow target and spread evenly.  Loading at the
  // root *threshold* (the old 70% sizing) meant the very first insert
  // batch paid a full-array resize; loading at the grow target leaves
  // the same headroom a post-growth array has, so realistic (2-10%)
  // update rates stay on the in-place/windowed path.  Size classes keep
  // the extra segments cheap: allocation tracks live entries, not the
  // logical capacity.
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  keys.reserve(2 * g.NumEdges());
  vals.reserve(2 * g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      keys.push_back(PackEdge(v, nb.v));
      vals.push_back(nb.elabel);
    }
  }
  // keys are produced in (src asc, dst asc) order already.
  size_t need =
      keys.size() == 0
          ? 1
          : std::bit_ceil(static_cast<size_t>(
                              static_cast<double>(keys.size()) /
                              (kGrowTargetOccupancy * seg_cap_)) +
                          1);
  num_segments_ = need;
  segs_ = std::vector<Segment>(need);
  occ_bits_.assign(need * words_per_seg_, 0);
  tree_mins_.assign(2 * need, kEmptyKey);
  tree_live_.assign(2 * need, 0);
  num_entries_ = keys.size();
  size_t base = keys.size() / need, extra = keys.size() % need;
  size_t idx = 0;
  for (size_t s = 0; s < need; ++s) {
    size_t take = base + (s < extra ? 1 : 0);
    Segment& sg = segs_[s];
    sg.alloc = SizeClassFor(static_cast<uint32_t>(take), seg_cap_);
    sg.count = static_cast<uint32_t>(take);
    sg.keys = std::make_unique<uint64_t[]>(sg.alloc);
    sg.vals = std::make_unique<Label[]>(sg.alloc);
    std::copy_n(keys.data() + idx, take, sg.keys.get());
    std::copy_n(vals.data() + idx, take, sg.vals.get());
    idx += take;
    RefreshOccBits(s);
  }
  PullRange(0, need);
}

UpdatePlan Gpma::ApplyBatch(const UpdateBatch& batch) {
  UpdatePlan plan;
  plan.tree_height = TreeHeight();

  // Deletions first (ApplyBatch(LabeledGraph) convention): every erase
  // is an in-place segment shift; rebalancing is deferred to the end of
  // the phase so one window redistribution absorbs many neighboring
  // erases instead of sweeping after every op.
  std::vector<size_t> dirty;
  bool deleted = false;
  for (const UpdateOp& op : batch) {
    if (op.is_insert) continue;
    plan.locate_searches += 2;
    plan.index_hops += 2 * (TreeHeight() - 1);
    uint64_t k1 = PackEdge(op.u, op.v), k2 = PackEdge(op.v, op.u);
    Locator l1 = Locate(k1);
    if (!l1.found) continue;
    RemoveAt(l1, &plan);
    Locator l2 = Locate(k2);
    GAMMA_CHECK(l2.found);
    RemoveAt(l2, &plan);
    plan.inplace_ops += 2;
    dirty.push_back(l1.segment);
    dirty.push_back(l2.segment);
    deleted = true;
  }
  if (deleted) {
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    for (size_t seg : dirty) {
      // A shrink mid-loop rebuilds the array; stale ids are covered by
      // that full redistribution.
      if (seg >= num_segments_) continue;
      RebalanceForDelete(seg, &plan);
    }
    MaybeShrink(&plan);
  }

  // Insertions, grouped per leaf segment the way the device kernel
  // groups edges that landed in the same segment.
  std::vector<std::pair<uint64_t, Label>> entries;
  entries.reserve(batch.size() * 2);
  for (const UpdateOp& op : batch) {
    if (!op.is_insert) continue;
    entries.emplace_back(PackEdge(op.u, op.v), op.elabel);
    entries.emplace_back(PackEdge(op.v, op.u), op.elabel);
  }
  std::sort(entries.begin(), entries.end());
  // GPMA assigns one thread per updated (directed) edge for the locate
  // step, regardless of subsequent grouping.
  plan.locate_searches += entries.size();
  plan.index_hops += entries.size() * (TreeHeight() - 1);
  // Min key of segments at or past `from` — the group boundary query
  // (suffix range-min over the segment tree, O(log n)).
  auto suffix_min = [&](size_t from) {
    uint64_t m = kEmptyKey;
    size_t lo = leaf(from), hi = 2 * num_segments_;
    while (lo < hi) {
      if (lo & 1) m = std::min(m, tree_mins_[lo++]);
      if (hi & 1) m = std::min(m, tree_mins_[--hi]);
      lo >>= 1;
      hi >>= 1;
    }
    return m;
  };
  size_t i = 0;
  while (i < entries.size()) {
    Locator loc = Locate(entries[i].first);
    if (loc.found) {  // duplicate insert; skip
      ++i;
      continue;
    }
    // Count how many consecutive sorted entries fall into this segment.
    size_t seg = loc.segment;
    size_t j = i;
    uint64_t seg_limit =
        seg + 1 < num_segments_ ? suffix_min(seg + 1) : kEmptyKey;
    while (j < entries.size() && entries[j].first < seg_limit) ++j;
    size_t group = j - i;
    uint64_t live = segs_[seg].count;
    // Materialize if the leaf absorbs the group within thresholds; else
    // rebalance first (which may grow the array and move entries).
    if (live + group > seg_cap_ ||
        static_cast<double>(live + group) /
                static_cast<double>(seg_cap_) >
            kLeafUpper) {
      RebalanceForInsert(seg, group, &plan);
      // Segment boundaries moved; re-locate and re-group next round.
      Locator fresh = Locate(entries[i].first);
      if (!fresh.found) {
        InsertAt(fresh, entries[i].first, entries[i].second, &plan);
      }
      plan.AddOp(SegmentOp{segs_[fresh.segment].count, 1, 1, 0,
                           SegmentStrategy::kWarp});
      ++i;
      continue;
    }
    for (size_t k = i; k < j; ++k) {
      Locator l = Locate(entries[k].first);
      if (!l.found) InsertAt(l, entries[k].first, entries[k].second, &plan);
    }
    plan.inplace_ops += group;
    plan.AddOp(SegmentOp{
        live + group, 1, static_cast<uint32_t>(group), 0,
        group <= 32 ? SegmentStrategy::kWarp : SegmentStrategy::kBlock});
    i = j;
  }
#if BDSM_OBS
  if (obs::Enabled()) {
    // Registry-backed views of the UpdatePlan — the same totals
    // bench_micro's --profile-only PlanTotals computes (including the
    // moved-entries definition: resize moves plus multi-segment window
    // moves), published from the plan itself so the two cannot drift.
    BDSM_OBS_COUNT("gpma.batches", 1);
    BDSM_OBS_COUNT("gpma.plan.locate_searches", plan.locate_searches);
    BDSM_OBS_COUNT("gpma.plan.index_hops", plan.index_hops);
    BDSM_OBS_COUNT("gpma.plan.resizes", plan.resizes);
    BDSM_OBS_COUNT("gpma.plan.resized_entries", plan.resized_entries);
    BDSM_OBS_COUNT("gpma.plan.window_rebalances", plan.window_rebalances);
    BDSM_OBS_COUNT("gpma.plan.inplace_ops", plan.inplace_ops);
    BDSM_OBS_COUNT("gpma.plan.segment_ops", plan.ops.size());
    uint64_t moved = plan.resized_entries;
    for (const SegmentOp& op : plan.ops) {
      if (op.window_segments > 1) moved += op.window_entries;
    }
    BDSM_OBS_COUNT("gpma.plan.moved_entries", moved);
  }
#endif
  return plan;
}

bool Gpma::HasEdge(VertexId u, VertexId v) const {
  return Locate(PackEdge(u, v)).found;
}

Label Gpma::EdgeLabel(VertexId u, VertexId v) const {
  Locator loc = Locate(PackEdge(u, v));
  if (!loc.found) return kNoLabel;
  return ValAt(loc.segment, loc.offset);
}

bool Gpma::FindEdge(VertexId u, VertexId v, Label* elabel) const {
  Locator loc = Locate(PackEdge(u, v));
  if (!loc.found) return false;
  *elabel = ValAt(loc.segment, loc.offset);
  return true;
}

void Gpma::NeighborsInto(VertexId v, std::vector<Neighbor>* out) const {
  out->clear();
  uint64_t lo = PackEdge(v, 0);
  Locator loc = Locate(lo);
  size_t seg = loc.segment, off = loc.offset;
  size_t n = num_segments_;
  while (seg < n) {
    size_t cnt = segs_[seg].count;
    for (; off < cnt; ++off) {
      uint64_t key = KeyAt(seg, off);
      if (EdgeSrc(key) != v) {
        if (key > lo) return;  // past v's range
        continue;              // still before (possible when loc.offset==cnt)
      }
      out->push_back(Neighbor{EdgeDst(key), ValAt(seg, off)});
    }
    ++seg;
    off = 0;
    // Early exit on the next non-empty segment's min (empty segments
    // carry no key and are simply stepped over).
    if (seg < n && segs_[seg].count && EdgeSrc(SegmentMin(seg)) > v) {
      return;
    }
  }
}

std::vector<Neighbor> Gpma::NeighborsOf(VertexId v) const {
  std::vector<Neighbor> out;
  NeighborsInto(v, &out);
  return out;
}

size_t Gpma::Degree(VertexId v) const {
  std::vector<Neighbor> tmp;
  NeighborsInto(v, &tmp);
  return tmp.size();
}

void Gpma::CheckInvariants() const {
  size_t n = num_segments_;
  GAMMA_CHECK(std::has_single_bit(n));
  GAMMA_CHECK(segs_.size() == n);
  GAMMA_CHECK(tree_mins_.size() == 2 * n && tree_live_.size() == 2 * n);
  GAMMA_CHECK(occ_bits_.size() == n * words_per_seg_);
  size_t live = 0;
  uint64_t prev = 0;
  bool first = true;
  for (size_t s = 0; s < n; ++s) {
    const Segment& sg = segs_[s];
    GAMMA_CHECK(sg.count <= seg_cap_);
    GAMMA_CHECK(sg.alloc <= seg_cap_);
    GAMMA_CHECK(sg.count <= sg.alloc || (sg.count == 0 && sg.alloc == 0));
    live += sg.count;
    // Packed prefix, globally sorted.
    for (size_t i = 0; i < sg.count; ++i) {
      uint64_t key = sg.keys[i];
      GAMMA_CHECK(key != kEmptyKey);
      if (!first) GAMMA_CHECK(prev < key);
      prev = key;
      first = false;
    }
    // Segment-tree leaves mirror the segment exactly.
    GAMMA_CHECK(tree_mins_[n + s] ==
                (sg.count ? sg.keys[0] : kEmptyKey));
    GAMMA_CHECK(tree_live_[n + s] == sg.count);
    // Occupancy bitmap: prefix mask of count, popcount agreement.
    uint32_t pop = 0;
    for (uint32_t w = 0; w < words_per_seg_; ++w) {
      uint64_t word = occ_bits_[s * words_per_seg_ + w];
      uint32_t lo = w * 64;
      uint64_t expect = sg.count <= lo ? 0
                        : sg.count - lo >= 64
                            ? ~0ull
                            : (1ull << (sg.count - lo)) - 1;
      GAMMA_CHECK(word == expect);
      pop += static_cast<uint32_t>(std::popcount(word));
    }
    GAMMA_CHECK(pop == sg.count);
  }
  // Internal tree nodes combine their children.
  for (size_t i = 1; i < n; ++i) {
    GAMMA_CHECK(tree_mins_[i] ==
                std::min(tree_mins_[2 * i], tree_mins_[2 * i + 1]));
    GAMMA_CHECK(tree_live_[i] == tree_live_[2 * i] + tree_live_[2 * i + 1]);
  }
  GAMMA_CHECK(live == num_entries_);
  GAMMA_CHECK(tree_live_[1] == num_entries_);
}

}  // namespace bdsm
