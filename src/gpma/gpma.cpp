#include "gpma/gpma.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace bdsm {

namespace {
constexpr uint64_t kEmptyKey = ~0ull;

// Leaf segments may fill almost completely; windows closer to the root
// must stay sparser so local rebalances keep absorbing future inserts
// (standard adaptive-PMA profile, Bender & Hu).
constexpr double kLeafUpper = 0.92;
constexpr double kRootUpper = 0.70;
constexpr double kLeafLower = 0.08;
constexpr double kRootLower = 0.30;
}  // namespace

Gpma::Gpma(uint32_t segment_capacity) : seg_cap_(segment_capacity) {
  GAMMA_CHECK_MSG(std::has_single_bit(segment_capacity),
                  "segment capacity must be a power of two");
  seg_keys_.assign(seg_cap_, kEmptyKey);
  seg_vals_.assign(seg_cap_, kNoLabel);
  seg_counts_.assign(1, 0);
  seg_mins_.assign(1, kEmptyKey);
}

uint32_t Gpma::TreeHeight() const {
  return static_cast<uint32_t>(std::bit_width(NumSegments()));
}

double Gpma::UpperDensity(uint32_t level) const {
  uint32_t h = std::max(1u, TreeHeight() - 1);
  double frac = static_cast<double>(level) / static_cast<double>(h);
  return kLeafUpper + (kRootUpper - kLeafUpper) * frac;
}

double Gpma::LowerDensity(uint32_t level) const {
  uint32_t h = std::max(1u, TreeHeight() - 1);
  double frac = static_cast<double>(level) / static_cast<double>(h);
  return kLeafLower + (kRootLower - kLeafLower) * frac;
}

void Gpma::RefreshSegMins() {
  // Empty segments inherit the min of the next non-empty segment so the
  // mins array stays monotone non-decreasing and binary-searchable
  // (sparse windows can leave empty segments mid-array).
  size_t n = NumSegments();
  seg_mins_.resize(n);
  uint64_t fill = kEmptyKey;
  for (size_t s = n; s-- > 0;) {
    if (seg_counts_[s]) fill = KeyAt(s, 0);
    seg_mins_[s] = fill;
  }
}

void Gpma::FixMinsAround(size_t seg) {
  size_t n = NumSegments();
  uint64_t m = seg_counts_[seg]
                   ? KeyAt(seg, 0)
                   : (seg + 1 < n ? seg_mins_[seg + 1] : kEmptyKey);
  seg_mins_[seg] = m;
  // Back-propagate across any run of empty segments to our left.
  while (seg > 0 && seg_counts_[seg - 1] == 0) {
    --seg;
    seg_mins_[seg] = m;
  }
}

Gpma::Locator Gpma::Locate(uint64_t key) const {
  // Segment index: last segment whose min <= key.  The mins array is
  // monotone (empty segments inherit their successor's min, kEmptyKey =
  // +inf at the tail), so this is a plain binary search; ties resolve to
  // the later — non-empty — segment.
  size_t n = NumSegments();
  size_t lo = 0, hi = n;  // first segment with min > key
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (seg_mins_[mid] == kEmptyKey || seg_mins_[mid] > key) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  size_t seg = lo == 0 ? 0 : lo - 1;
  // Position within the segment.
  size_t cnt = seg_counts_[seg];
  size_t a = 0, b = cnt;
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (KeyAt(seg, mid) < key) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  bool found = a < cnt && KeyAt(seg, a) == key;
  return Locator{seg, a, found};
}

void Gpma::InsertAt(const Locator& loc, uint64_t key, Label val) {
  size_t cnt = seg_counts_[loc.segment];
  GAMMA_CHECK(cnt < seg_cap_);
  for (size_t i = cnt; i > loc.offset; --i) {
    KeyAt(loc.segment, i) = KeyAt(loc.segment, i - 1);
    ValAt(loc.segment, i) = ValAt(loc.segment, i - 1);
  }
  KeyAt(loc.segment, loc.offset) = key;
  ValAt(loc.segment, loc.offset) = val;
  ++seg_counts_[loc.segment];
  ++num_entries_;
  if (loc.offset == 0) FixMinsAround(loc.segment);
}

void Gpma::RemoveAt(const Locator& loc) {
  size_t cnt = seg_counts_[loc.segment];
  GAMMA_CHECK(loc.found && loc.offset < cnt);
  for (size_t i = loc.offset; i + 1 < cnt; ++i) {
    KeyAt(loc.segment, i) = KeyAt(loc.segment, i + 1);
    ValAt(loc.segment, i) = ValAt(loc.segment, i + 1);
  }
  KeyAt(loc.segment, cnt - 1) = kEmptyKey;
  ValAt(loc.segment, cnt - 1) = kNoLabel;
  --seg_counts_[loc.segment];
  --num_entries_;
  FixMinsAround(loc.segment);
}

void Gpma::RedistributeWindow(size_t first, size_t count) {
  // Gather live entries of the window in order.
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  keys.reserve(count * seg_cap_);
  vals.reserve(count * seg_cap_);
  for (size_t s = first; s < first + count; ++s) {
    for (size_t i = 0; i < seg_counts_[s]; ++i) {
      keys.push_back(KeyAt(s, i));
      vals.push_back(ValAt(s, i));
    }
  }
  // Spread evenly.
  size_t total = keys.size();
  size_t base = total / count, extra = total % count;
  size_t idx = 0;
  for (size_t s = first; s < first + count; ++s) {
    size_t take = base + ((s - first) < extra ? 1 : 0);
    GAMMA_CHECK(take <= seg_cap_);
    seg_counts_[s] = static_cast<uint32_t>(take);
    for (size_t i = 0; i < seg_cap_; ++i) {
      if (i < take) {
        KeyAt(s, i) = keys[idx];
        ValAt(s, i) = vals[idx];
        ++idx;
      } else {
        KeyAt(s, i) = kEmptyKey;
        ValAt(s, i) = kNoLabel;
      }
    }
  }
  RefreshSegMins();
}

void Gpma::Resize(size_t new_num_segments) {
  GAMMA_CHECK(new_num_segments >= 1 &&
              std::has_single_bit(new_num_segments));
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  keys.reserve(num_entries_);
  vals.reserve(num_entries_);
  size_t n = NumSegments();
  for (size_t s = 0; s < n; ++s) {
    for (size_t i = 0; i < seg_counts_[s]; ++i) {
      keys.push_back(KeyAt(s, i));
      vals.push_back(ValAt(s, i));
    }
  }
  GAMMA_CHECK(keys.size() <= new_num_segments * seg_cap_);
  seg_keys_.assign(new_num_segments * seg_cap_, kEmptyKey);
  seg_vals_.assign(new_num_segments * seg_cap_, kNoLabel);
  seg_counts_.assign(new_num_segments, 0);
  seg_mins_.assign(new_num_segments, kEmptyKey);
  // Temporarily place everything in order, then spread evenly.
  size_t idx = 0;
  for (size_t s = 0; s < new_num_segments && idx < keys.size(); ++s) {
    size_t take = std::min<size_t>(seg_cap_, keys.size() - idx);
    seg_counts_[s] = static_cast<uint32_t>(take);
    for (size_t i = 0; i < take; ++i) {
      KeyAt(s, i) = keys[idx];
      ValAt(s, i) = vals[idx];
      ++idx;
    }
  }
  RedistributeWindow(0, new_num_segments);
}

void Gpma::RebalanceForInsert(size_t seg, size_t incoming,
                              UpdatePlan* plan) {
  // Find the smallest window (seg's ancestors) whose density after the
  // incoming entries respects the level threshold; redistribute it.
  size_t n = NumSegments();
  uint32_t level = 0;
  size_t win = 1;
  while (true) {
    size_t first = (seg / win) * win;
    size_t count = std::min(win, n - first);
    size_t live = 0;
    for (size_t s = first; s < first + count; ++s) live += seg_counts_[s];
    double density = static_cast<double>(live + incoming) /
                     static_cast<double>(count * seg_cap_);
    bool leaf_fits =
        live + incoming <= count * seg_cap_;  // physical capacity
    // Even redistribution leaves ceil(live/count) entries per leaf; the
    // target leaf must still absorb at least one incoming entry (with
    // tiny segments the density threshold alone can round up to "full").
    size_t per_leaf = (live + count - 1) / count;
    bool leaf_room = per_leaf + 1 <= seg_cap_;
    if (leaf_fits && leaf_room && density <= UpperDensity(level)) {
      if (count > 1) {
        RedistributeWindow(first, count);
        if (plan) {
          plan->AddOp(SegmentOp{
              live, static_cast<uint32_t>(count),
              static_cast<uint32_t>(incoming), 0,
              count * seg_cap_ <= 32 ? SegmentStrategy::kWarp
              : count * seg_cap_ * 12 <= 48 * 1024
                  ? SegmentStrategy::kBlock
                  : SegmentStrategy::kDevice});
        }
      }
      return;
    }
    if (win >= n) break;
    win *= 2;
    ++level;
  }
  // Even the root window is too dense: grow the array and retry.
  size_t new_segments = std::max<size_t>(2, NumSegments() * 2);
  size_t moved = num_entries_;
  Resize(new_segments);
  if (plan) {
    ++plan->resizes;
    plan->resized_entries += moved;
  }
}

void Gpma::RebalanceForDelete(size_t seg, UpdatePlan* plan) {
  size_t n = NumSegments();
  if (n == 1) return;
  double leaf_density = static_cast<double>(seg_counts_[seg]) /
                        static_cast<double>(seg_cap_);
  if (leaf_density >= LowerDensity(0)) return;
  uint32_t level = 0;
  size_t win = 1;
  while (win < n) {
    win *= 2;
    ++level;
    size_t first = (seg / win) * win;
    size_t count = std::min(win, n - first);
    size_t live = 0;
    for (size_t s = first; s < first + count; ++s) live += seg_counts_[s];
    double density = static_cast<double>(live) /
                     static_cast<double>(count * seg_cap_);
    if (density >= LowerDensity(level)) {
      RedistributeWindow(first, count);
      if (plan) {
        plan->AddOp(SegmentOp{live, static_cast<uint32_t>(count), 0, 1,
                              count * seg_cap_ <= 32
                                  ? SegmentStrategy::kWarp
                              : count * seg_cap_ * 12 <= 48 * 1024
                                  ? SegmentStrategy::kBlock
                                  : SegmentStrategy::kDevice});
      }
      return;
    }
  }
  // Whole structure sparse: shrink (keep at least one segment).
  double total_density = Occupancy();
  if (NumSegments() > 1 && total_density < kRootLower / 2) {
    size_t moved = num_entries_;
    Resize(std::max<size_t>(1, NumSegments() / 2));
    if (plan) {
      ++plan->resizes;
      plan->resized_entries += moved;
    }
  }
}

bool Gpma::InsertEdge(VertexId u, VertexId v, Label elabel) {
  uint64_t k1 = PackEdge(u, v), k2 = PackEdge(v, u);
  if (Locate(k1).found) return false;
  for (uint64_t key : {k1, k2}) {
    Locator loc = Locate(key);
    if (seg_counts_[loc.segment] >= seg_cap_ ||
        static_cast<double>(seg_counts_[loc.segment] + 1) /
                static_cast<double>(seg_cap_) >
            kLeafUpper) {
      RebalanceForInsert(loc.segment, 1, nullptr);
      loc = Locate(key);
    }
    InsertAt(loc, key, elabel);
  }
  return true;
}

bool Gpma::RemoveEdge(VertexId u, VertexId v) {
  uint64_t k1 = PackEdge(u, v), k2 = PackEdge(v, u);
  Locator l1 = Locate(k1);
  if (!l1.found) return false;
  RemoveAt(l1);
  Locator l2 = Locate(k2);
  GAMMA_CHECK(l2.found);
  RemoveAt(l2);
  RebalanceForDelete(l2.segment, nullptr);
  return true;
}

void Gpma::BuildFrom(const LabeledGraph& g) {
  // Bulk load: gather all directed entries sorted, size the array for
  // ~70% occupancy, spread evenly.
  std::vector<uint64_t> keys;
  std::vector<Label> vals;
  keys.reserve(2 * g.NumEdges());
  vals.reserve(2 * g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Neighbor& nb : g.Neighbors(v)) {
      keys.push_back(PackEdge(v, nb.v));
      vals.push_back(nb.elabel);
    }
  }
  // keys are produced in (src asc, dst asc) order already.
  size_t need = keys.size() == 0
                    ? 1
                    : std::bit_ceil((keys.size() * 10 / 7) / seg_cap_ + 1);
  seg_keys_.assign(need * seg_cap_, kEmptyKey);
  seg_vals_.assign(need * seg_cap_, kNoLabel);
  seg_counts_.assign(need, 0);
  seg_mins_.assign(need, kEmptyKey);
  num_entries_ = keys.size();
  size_t idx = 0;
  for (size_t s = 0; s < need && idx < keys.size(); ++s) {
    size_t take = std::min<size_t>(seg_cap_, keys.size() - idx);
    seg_counts_[s] = static_cast<uint32_t>(take);
    for (size_t i = 0; i < take; ++i) {
      KeyAt(s, i) = keys[idx];
      ValAt(s, i) = vals[idx];
      ++idx;
    }
  }
  RedistributeWindow(0, need);
}

UpdatePlan Gpma::ApplyBatch(const UpdateBatch& batch) {
  UpdatePlan plan;
  plan.tree_height = TreeHeight();

  // Deletions first (ApplyBatch(LabeledGraph) convention).
  for (const UpdateOp& op : batch) {
    if (op.is_insert) continue;
    plan.locate_searches += 2;
    uint64_t k1 = PackEdge(op.u, op.v), k2 = PackEdge(op.v, op.u);
    Locator l1 = Locate(k1);
    if (!l1.found) continue;
    RemoveAt(l1);
    Locator l2 = Locate(k2);
    GAMMA_CHECK(l2.found);
    RemoveAt(l2);
    RebalanceForDelete(l2.segment, &plan);
  }

  // Insertions, grouped per leaf segment the way the device kernel
  // groups edges that landed in the same segment.
  std::vector<std::pair<uint64_t, Label>> entries;
  entries.reserve(batch.size() * 2);
  for (const UpdateOp& op : batch) {
    if (!op.is_insert) continue;
    entries.emplace_back(PackEdge(op.u, op.v), op.elabel);
    entries.emplace_back(PackEdge(op.v, op.u), op.elabel);
  }
  std::sort(entries.begin(), entries.end());
  // GPMA assigns one thread per updated (directed) edge for the locate
  // step, regardless of subsequent grouping.
  plan.locate_searches += entries.size();
  size_t i = 0;
  while (i < entries.size()) {
    Locator loc = Locate(entries[i].first);
    if (loc.found) {  // duplicate insert; skip
      ++i;
      continue;
    }
    // Count how many consecutive sorted entries fall into this segment.
    size_t seg = loc.segment;
    size_t j = i;
    uint64_t seg_limit =
        seg + 1 < NumSegments() && seg_mins_[seg + 1] != kEmptyKey
            ? seg_mins_[seg + 1]
            : kEmptyKey;
    while (j < entries.size() && entries[j].first < seg_limit) ++j;
    size_t group = j - i;
    uint64_t live = seg_counts_[seg];
    // Materialize if the leaf absorbs the group within thresholds; else
    // rebalance first (which may grow the array and move entries).
    if (live + group > seg_cap_ ||
        static_cast<double>(live + group) /
                static_cast<double>(seg_cap_) >
            kLeafUpper) {
      RebalanceForInsert(seg, group, &plan);
      // Segment boundaries moved; re-locate and re-group next round.
      Locator fresh = Locate(entries[i].first);
      if (!fresh.found) InsertAt(fresh, entries[i].first, entries[i].second);
      plan.AddOp(SegmentOp{seg_counts_[fresh.segment], 1, 1, 0,
                           SegmentStrategy::kWarp});
      ++i;
      continue;
    }
    for (size_t k = i; k < j; ++k) {
      Locator l = Locate(entries[k].first);
      if (!l.found) InsertAt(l, entries[k].first, entries[k].second);
    }
    plan.AddOp(SegmentOp{
        live + group, 1, static_cast<uint32_t>(group), 0,
        group <= 32 ? SegmentStrategy::kWarp : SegmentStrategy::kBlock});
    i = j;
  }
  return plan;
}

bool Gpma::HasEdge(VertexId u, VertexId v) const {
  return Locate(PackEdge(u, v)).found;
}

Label Gpma::EdgeLabel(VertexId u, VertexId v) const {
  Locator loc = Locate(PackEdge(u, v));
  if (!loc.found) return kNoLabel;
  return ValAt(loc.segment, loc.offset);
}

bool Gpma::FindEdge(VertexId u, VertexId v, Label* elabel) const {
  Locator loc = Locate(PackEdge(u, v));
  if (!loc.found) return false;
  *elabel = ValAt(loc.segment, loc.offset);
  return true;
}

void Gpma::NeighborsInto(VertexId v, std::vector<Neighbor>* out) const {
  out->clear();
  uint64_t lo = PackEdge(v, 0);
  Locator loc = Locate(lo);
  size_t seg = loc.segment, off = loc.offset;
  size_t n = NumSegments();
  while (seg < n) {
    size_t cnt = seg_counts_[seg];
    for (; off < cnt; ++off) {
      uint64_t key = KeyAt(seg, off);
      if (EdgeSrc(key) != v) {
        if (key > lo) return;  // past v's range
        continue;              // still before (possible when loc.offset==cnt)
      }
      out->push_back(Neighbor{EdgeDst(key), ValAt(seg, off)});
    }
    ++seg;
    off = 0;
    if (seg < n && seg_mins_[seg] != kEmptyKey &&
        EdgeSrc(seg_mins_[seg]) > v) {
      return;
    }
  }
}

std::vector<Neighbor> Gpma::NeighborsOf(VertexId v) const {
  std::vector<Neighbor> out;
  NeighborsInto(v, &out);
  return out;
}

size_t Gpma::Degree(VertexId v) const {
  std::vector<Neighbor> tmp;
  NeighborsInto(v, &tmp);
  return tmp.size();
}

void Gpma::CheckInvariants() const {
  size_t n = NumSegments();
  GAMMA_CHECK(seg_keys_.size() == n * seg_cap_);
  GAMMA_CHECK(seg_counts_.size() == n);
  GAMMA_CHECK(seg_mins_.size() == n);
  size_t live = 0;
  uint64_t prev = 0;
  bool first = true;
  uint64_t expected_fill = kEmptyKey;
  for (size_t s = n; s-- > 0;) {
    if (seg_counts_[s]) expected_fill = KeyAt(s, 0);
    GAMMA_CHECK(seg_mins_[s] == expected_fill);
  }
  for (size_t s = 0; s < n; ++s) {
    size_t cnt = seg_counts_[s];
    GAMMA_CHECK(cnt <= seg_cap_);
    live += cnt;
    for (size_t i = 0; i < seg_cap_; ++i) {
      uint64_t key = KeyAt(s, i);
      if (i < cnt) {
        GAMMA_CHECK(key != kEmptyKey);
        if (!first) GAMMA_CHECK(prev < key);
        prev = key;
        first = false;
      } else {
        GAMMA_CHECK(key == kEmptyKey);
      }
    }
  }
  GAMMA_CHECK(live == num_entries_);
}

}  // namespace bdsm
