/// \file rebuild_container.hpp
/// The strawman GPMA replaces: an immutable CSR-style device graph that
/// is *rebuilt from scratch* on every batch.  §V-C motivates adopting
/// GPMA over exactly this pattern ("efficient application of updates to
/// the data graph becomes paramount"); the container exists so the
/// repository can measure that design choice (bench_ablation_container)
/// rather than assert it.
///
/// Query-side interface mirrors Gpma so kernels could run on either.
#pragma once

#include <vector>

#include "gpma/update_plan.hpp"
#include "graph/csr.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

class RebuildContainer {
 public:
  RebuildContainer() = default;

  void BuildFrom(const LabeledGraph& g) {
    mirror_ = g;
    csr_ = CsrGraph(mirror_);
  }

  /// Applies the batch by mutating the host mirror and rebuilding the
  /// CSR.  The returned plan prices the rebuild: every directed entry
  /// moves once, device-wide.
  UpdatePlan ApplyBatch(const UpdateBatch& batch) {
    ApplyBatchOps(batch);
    csr_ = CsrGraph(mirror_);
    UpdatePlan plan;
    plan.tree_height = 1;
    // Each update still locates its position during the merge.
    plan.locate_searches = 2 * batch.size();
    ++plan.resizes;
    plan.resized_entries = 2 * mirror_.NumEdges();
    plan.AddOp(SegmentOp{2 * mirror_.NumEdges(), 1, 0, 0,
                         SegmentStrategy::kDevice});
    return plan;
  }

  bool HasEdge(VertexId u, VertexId v) const { return csr_.HasEdge(u, v); }
  Label EdgeLabel(VertexId u, VertexId v) const {
    return csr_.EdgeLabel(u, v);
  }
  bool FindEdge(VertexId u, VertexId v, Label* elabel) const {
    if (!csr_.HasEdge(u, v)) return false;
    *elabel = csr_.EdgeLabel(u, v);
    return true;
  }

  void NeighborsInto(VertexId v, std::vector<Neighbor>* out) const {
    out->clear();
    auto nbrs = csr_.Neighbors(v);
    auto labels = csr_.NeighborEdgeLabels(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out->push_back(Neighbor{nbrs[i], labels[i]});
    }
  }

  size_t NumEdges() const { return csr_.NumEdges(); }
  size_t Degree(VertexId v) const { return csr_.Degree(v); }

 private:
  void ApplyBatchOps(const UpdateBatch& batch) {
    for (const UpdateOp& op : batch) {
      if (!op.is_insert) mirror_.RemoveEdge(op.u, op.v);
    }
    for (const UpdateOp& op : batch) {
      if (op.is_insert) mirror_.InsertEdge(op.u, op.v, op.elabel);
    }
  }

  LabeledGraph mirror_;
  CsrGraph csr_;
};

}  // namespace bdsm
