/// \file gpma_kernel.hpp
/// Simulated device kernel for GPMA batch updates.
///
/// The host-side Gpma::ApplyBatch does the data-structure work and emits
/// an UpdatePlan; this module turns that plan into warp tasks so the
/// Device can price the update the way the paper's GPU executes it:
/// * one warp task per updated segment group (warp strategy), with the
///   cooperative-group subdivision of §V-C for sub-warp segments;
/// * block/device strategies for larger rebalance windows;
/// * per-update binary "locate" searches whose top `cached_layers` tree
///   layers hit shared memory instead of global (§V-C optimization).
#pragma once

#include <memory>
#include <vector>

#include "gpma/update_plan.hpp"
#include "gpusim/device.hpp"

namespace bdsm {

struct GpmaKernelOptions {
  /// cached_layers value meaning "derive from the shared-memory budget":
  /// the implicit segment tree stores its top L layers as a dense array
  /// prefix of 2^L - 1 words, so the kernel stages the deepest prefix
  /// that fits index_cache_bytes.
  static constexpr uint32_t kAutoCachedLayers = ~0u;

  bool use_cooperative_groups = true;
  /// Top PMA-tree layers cached in block shared memory for the locate
  /// step (0 disables the optimization; kAutoCachedLayers — the default
  /// — sizes the cache to the budget below).
  uint32_t cached_layers = kAutoCachedLayers;
  /// Per-block shared-memory budget for the staged index prefix when
  /// cached_layers is auto (conservative half of a 32 KiB carve-out,
  /// leaving room for the segment-merge staging buffers).
  size_t index_cache_bytes = 16 * 1024;
};

/// Layers the locate step will actually serve from shared memory for a
/// tree of `tree_height` layers under `options` (resolves the auto
/// sentinel against the budget).
uint32_t ResolveCachedLayers(const GpmaKernelOptions& options,
                             uint32_t tree_height);

/// Builds the warp tasks pricing `plan`.
std::vector<std::unique_ptr<WarpTask>> MakeGpmaUpdateTasks(
    const UpdatePlan& plan, const GpmaKernelOptions& options);

/// Convenience: launch the priced kernel on `device` and return stats.
DeviceStats SimulateGpmaUpdate(Device& device, const UpdatePlan& plan,
                               const GpmaKernelOptions& options = {});

}  // namespace bdsm
