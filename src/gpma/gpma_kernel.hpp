/// \file gpma_kernel.hpp
/// Simulated device kernel for GPMA batch updates.
///
/// The host-side Gpma::ApplyBatch does the data-structure work and emits
/// an UpdatePlan; this module turns that plan into warp tasks so the
/// Device can price the update the way the paper's GPU executes it:
/// * one warp task per updated segment group (warp strategy), with the
///   cooperative-group subdivision of §V-C for sub-warp segments;
/// * block/device strategies for larger rebalance windows;
/// * per-update binary "locate" searches whose top `cached_layers` tree
///   layers hit shared memory instead of global (§V-C optimization).
#pragma once

#include <memory>
#include <vector>

#include "gpma/update_plan.hpp"
#include "gpusim/device.hpp"

namespace bdsm {

struct GpmaKernelOptions {
  bool use_cooperative_groups = true;
  /// Top PMA-tree layers cached in block shared memory for the locate
  /// step (0 disables the optimization).
  uint32_t cached_layers = 3;
};

/// Builds the warp tasks pricing `plan`.
std::vector<std::unique_ptr<WarpTask>> MakeGpmaUpdateTasks(
    const UpdatePlan& plan, const GpmaKernelOptions& options);

/// Convenience: launch the priced kernel on `device` and return stats.
DeviceStats SimulateGpmaUpdate(Device& device, const UpdatePlan& plan,
                               const GpmaKernelOptions& options = {});

}  // namespace bdsm
