/// \file update_plan.hpp
/// Description of the segment-level work one GPMA batch update performed;
/// consumed by gpma_kernel.hpp to build the simulated device kernel.
#pragma once

#include <cstdint>
#include <vector>

namespace bdsm {

/// GPMA picks its insert strategy by segment size (§V-C): warps for
/// windows up to 32 entries, blocks for windows fitting shared memory,
/// the whole device beyond that.
enum class SegmentStrategy : uint8_t { kWarp, kBlock, kDevice };

struct SegmentOp {
  uint64_t window_entries;     ///< live entries involved
  uint32_t window_segments;    ///< leaf segments in the window (1 = leaf)
  uint32_t inserted;           ///< entries materialized here
  uint32_t removed;
  SegmentStrategy strategy;
};

struct UpdatePlan {
  std::vector<SegmentOp> ops;
  uint64_t locate_searches = 0;  ///< binary searches over the tree
  uint32_t tree_height = 0;      ///< layers per search at time of update
  uint64_t resizes = 0;          ///< array grow/shrink events
  uint64_t resized_entries = 0;  ///< entries moved by resizes
  uint64_t index_hops = 0;       ///< segment-tree node hops over all locates
  uint64_t window_rebalances = 0;  ///< windowed redistributions performed
  uint64_t inplace_ops = 0;      ///< entries materialized/erased in place,
                                 ///< no window or resize work
  uint64_t class_reallocs = 0;   ///< standalone size-class reallocations
                                 ///< (not covered by an op or resize)
  uint64_t class_realloc_entries = 0;  ///< entries copied by those

  void AddOp(SegmentOp op) { ops.push_back(op); }
};

}  // namespace bdsm
