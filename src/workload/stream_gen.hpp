/// \file stream_gen.hpp
/// Seeded dynamic-graph stream generators (the workload layer's answer
/// to "handle as many scenarios as you can imagine").
///
/// Each generator synthesizes a whole update stream — a sequence of
/// `UpdateBatch`es in the exact format Engine::ProcessBatch and
/// StreamPipeline already consume — against a private evolving replica
/// of the data graph, so every batch is *valid by construction*: given
/// the initial graph and the preceding batches applied in order, every
/// op takes effect (inserts hit absent edges, deletes hit present
/// ones).  That replayability is what makes a generated stream a
/// reusable artifact (see workload/trace.hpp) and lets differential
/// tests drive two engines over the identical stream.
///
/// All randomness flows through util/rng.hpp from one explicit seed;
/// the same (graph, StreamSpec, seed) triple always yields the
/// byte-identical stream.  Generator catalog and parameter semantics
/// are documented in docs/WORKLOADS.md.
#pragma once

#include <string>
#include <vector>

#include "graph/labeled_graph.hpp"
#include "graph/update_stream.hpp"
#include "util/rng.hpp"

namespace bdsm::workload {

/// The generator families (docs/WORKLOADS.md has the catalog):
enum class StreamKind {
  kUniform,   ///< endpoints uniform over V, mixed insert/delete
  kPowerLaw,  ///< Chung-Lu style: endpoints ~ Zipf(skew) over a seeded
              ///< vertex permutation (degree-skewed growth)
  kTemporal,  ///< sliding window: fresh inserts each batch, edges expire
              ///< (are deleted) `window_batches` batches after insertion
  kBurst,     ///< flash crowd: every `burst_period`-th batch is
              ///< `burst_factor` x larger and concentrates on a small
              ///< per-burst crowd vertex set
  kChurn,     ///< deletion-heavy turnover (inserts a minority share)
  kHotspot,   ///< a fixed small hot vertex set attracts most endpoints
};

/// "uniform" | "powerlaw" | "temporal" | "burst" | "churn" | "hotspot".
const char* StreamKindName(StreamKind kind);
/// Inverse of StreamKindName; false when `name` is unknown.
bool StreamKindFromName(const std::string& name, StreamKind* out);
/// All kinds, catalog order.
const std::vector<StreamKind>& AllStreamKinds();

/// Shape of one generated stream.  Per-kind fields are ignored by the
/// kinds that do not use them.
struct StreamSpec {
  StreamKind kind = StreamKind::kUniform;
  size_t num_batches = 8;
  /// Base op count per batch (kTemporal: inserts per batch, expiry
  /// deletions ride on top; kBurst: off-peak size).
  size_t ops_per_batch = 200;
  /// Fraction of ops that are insertions for the mixed kinds
  /// (kUniform/kPowerLaw/kBurst/kHotspot default, kChurn overrides).
  double insert_fraction = 0.65;
  /// Edge-label alphabet for inserted edges (0 = unlabeled).
  size_t elabels = 0;

  // --- kPowerLaw ---
  double skew = 1.1;  ///< Zipf exponent over the vertex permutation

  // --- kTemporal ---
  size_t window_batches = 3;  ///< lifetime of an inserted edge

  // --- kBurst ---
  double burst_factor = 6.0;  ///< burst batch size multiplier
  size_t burst_period = 4;    ///< every Nth batch is a burst
  double crowd_fraction = 0.02;  ///< |crowd| / |V| per burst

  // --- kChurn ---
  double churn_insert_fraction = 0.35;  ///< inserts share under churn

  // --- kHotspot ---
  double hotspot_fraction = 0.01;  ///< |hot| / |V| (>= 2 vertices)
  double hotspot_prob = 0.8;       ///< P(endpoint drawn from hot set)
};

/// Synthesizes one stream.  Stateless between Generate calls except for
/// the RNG, so construct one generator per stream for reproducibility.
class StreamGenerator {
 public:
  StreamGenerator(const StreamSpec& spec, uint64_t seed)
      : spec_(spec), rng_(seed) {}

  /// Generates spec.num_batches batches against an evolving private
  /// copy of `g` (the caller's graph is untouched).  Every returned
  /// batch is sanitized and effective in sequence (see file comment).
  std::vector<UpdateBatch> Generate(const LabeledGraph& g);

 private:
  // Samples `count` insertions with endpoints drawn by `pick` (both
  // endpoints), avoiding existing and already-sampled edges.
  template <typename PickFn>
  UpdateBatch SampleInsertions(const LabeledGraph& g, size_t count,
                               PickFn&& pick);
  // Uniformly samples `count` existing edges as deletions (labels
  // recorded so traces can be reverted).
  UpdateBatch SampleDeletions(const LabeledGraph& g, size_t count);

  StreamSpec spec_;
  Rng rng_;
};

}  // namespace bdsm::workload
