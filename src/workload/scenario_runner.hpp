/// \file scenario_runner.hpp
/// Binds a named scenario to any registry engine spec and measures it.
///
/// The ScenarioRunner is the SLO-style driver behind `bench_scenarios`
/// and `example_cli --scenario`: it materializes a scenario (dataset
/// twin + extracted query set + generated or replayed update stream),
/// runs the stream through an engine built from any spec — "gamma",
/// "tf", "sharded(gamma, shards=4)", anything the EngineRegistry
/// resolves — and reports per-batch latency percentiles (p50/p95/p99),
/// throughput, and truncation counts.
///
/// Latency metric (one core, no wall-clock parallelism claims — see
/// docs/BENCHMARKS.md): the runner reads the clock domain from
/// `Engine::Describe()` — modeled device seconds
/// (`BatchReport::ModeledSeconds`) for device engines, the per-batch
/// *critical path* (`BatchReport::critical_path_seconds`) for sharded
/// CPU engines, host wall seconds otherwise.
/// `ScenarioReport::latency_metric` names which clock produced the
/// numbers.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "workload/scenario.hpp"
#include "workload/trace.hpp"

namespace bdsm::persist {
class Checkpointer;
}

namespace bdsm::workload {

/// One batch's measurement.
struct ScenarioBatchMetric {
  size_t ops = 0;                ///< sanitized ops the engine digested
  size_t positive_matches = 0;   ///< summed over queries
  size_t negative_matches = 0;
  size_t truncated_queries = 0;  ///< queries with partial results
  double latency_seconds = 0.0;  ///< per the runner's latency metric
  /// Ingest observability (BatchReport::queue_wait_seconds /
  /// queue_depth): 0 on the direct ProcessBatch path; on the tenant
  /// drive path, the worst virtual-clock wait among the formed batch's
  /// ops and the pending-op depth when it was formed.
  double queue_wait_seconds = 0.0;
  size_t queue_depth = 0;
};

/// One tenant's share of a multi-tenant run (tenant-mix scenarios
/// driven through a tenancy-capable engine; see docs/SERVING.md).
struct ScenarioTenantMetric {
  std::string tenant;
  std::string priority;        ///< "gold" | "silver" | "best_effort"
  size_t offered_ops = 0;
  size_t admitted_ops = 0;
  size_t shed_ops = 0;
  size_t degraded_ops = 0;
  size_t batches = 0;          ///< formed batches carrying its ops
  size_t positive_matches = 0;
  size_t negative_matches = 0;
  /// Sojourn latency (queue wait + service, both under the engine's
  /// clock / the pump's virtual clock) percentiles over the tenant's
  /// formed batches.
  double sojourn_p50_s = 0.0;
  double sojourn_p95_s = 0.0;
  double sojourn_p99_s = 0.0;
  double max_queue_wait_s = 0.0;
};

/// One follower replica's share of a replicated run (engines built
/// from a `replicated(...)` spec; see docs/REPLICATION.md).  Lag is
/// read *after* the end-of-run drain, so nonzero lag means the leader
/// applied batches that never became durable.
struct ScenarioReplicaMetric {
  int replica = -1;
  size_t applied_batches = 0;
  size_t applied_ops = 0;
  size_t lag_batches = 0;
  size_t lag_updates = 0;
  size_t max_lag_batches = 0;  ///< worst staleness observed mid-stream
  size_t resyncs = 0;          ///< snapshot resyncs (generation gaps)
  /// Modeled critical-path split: link seconds vs apply seconds.
  double transport_seconds = 0.0;
  double apply_seconds = 0.0;
};

/// Everything one (scenario, engine) run produced.
struct ScenarioReport {
  std::string scenario;
  std::string engine;          ///< the spec string the caller passed
  std::string canonical_spec;  ///< Engine::Describe() provenance
  uint64_t seed = 0;
  std::string latency_metric;  ///< ClockDomainName of the engine's clock

  size_t num_queries = 0;
  size_t total_ops = 0;
  size_t total_matches = 0;
  size_t truncated_queries = 0;  ///< summed over batches
  size_t truncated_batches = 0;  ///< batches with >= 1 truncated query
  std::vector<ScenarioBatchMetric> batches;

  /// Multi-tenant runs only (scenario has a tenant mix AND the engine
  /// supports tenancy): one row per tenant role, in role order, plus
  /// the Jain fairness index over admitted/offered shares.  Empty /
  /// 1.0 on single-tenant runs.
  std::vector<ScenarioTenantMetric> tenants;
  double fairness = 1.0;

  /// Replicated runs only (Describe().supports_replication): one row
  /// per follower after the end-of-run drain, plus the group's modeled
  /// shipping volume.  Empty / zero otherwise.
  std::vector<ScenarioReplicaMetric> replicas;
  size_t shipped_batches = 0;  ///< batch x follower deliveries
  size_t shipped_bytes = 0;    ///< trace-format bytes over the link
  size_t failovers = 0;
  /// Modeled duration of the last failover (election + tail shipping +
  /// catch-up replay); 0 when no failover happened.
  double failover_seconds = 0.0;

  double TotalLatencySeconds() const;
  double MeanLatencySeconds() const;
  /// Per-batch latency percentile, p in [0, 100].
  double LatencyPercentile(double p) const;
  /// Ops per second under the report's latency metric.
  double ThroughputOpsPerSec() const;
};

class ScenarioRunner {
 public:
  /// Materializes the scenario: loads the dataset twin, extracts the
  /// query set (DeriveSeed(seed, kSeedQueryExtract)), and generates the
  /// stream (DeriveSeed(seed, kSeedStreamGen)).  Deterministic in
  /// (spec, seed).
  ScenarioRunner(const ScenarioSpec& spec,
                 uint64_t seed = kDefaultScenarioSeed);

  /// Swaps the generated stream for a recorded trace (replay); the
  /// dataset and query set still come from the spec, so the trace's
  /// header must name this scenario (that pins the dataset twin the
  /// stream is valid against) — a mismatch is refused with a warning.
  /// Seed mismatches are accepted: same graph, different draw.  False
  /// when the trace cannot be read or names another scenario.
  bool ReplayTrace(const std::string& path);
  /// Writes the current stream as a trace artifact; false on I/O error.
  bool RecordTrace(const std::string& path) const;

  /// Persistence/recovery controls for Run (persist/checkpoint.hpp).
  /// Defaults reproduce the plain full-stream run.
  struct RunControls {
    /// First stream batch to process (a restored engine resumes at
    /// RestoredEngine::next_batch).
    size_t first_batch = 0;
    /// Process at most this many batches — the "kill point" of the
    /// restart scenario; the report then covers the prefix only.
    size_t max_batches = static_cast<size_t>(-1);
    /// Drive this pre-built engine (not owned; its registered queries
    /// are kept — the restored-engine path) instead of building one
    /// from the spec and registering the scenario's query set.
    Engine* engine = nullptr;
    /// When set, the runner Begin()s a checkpoint of the engine at
    /// `first_batch` (base snapshot + manifest) and tees every applied
    /// batch through OnBatchApplied.  Do not combine with an engine
    /// that already has its own attached checkpointer.
    persist::Checkpointer* checkpointer = nullptr;
  };

  /// Runs the whole stream through a freshly built engine.  `options`
  /// tunes budgets/caps (EngineOptions defaults otherwise; inline
  /// spec overrides win).  Throws EngineSpecError on a bad spec —
  /// validate upfront with EngineRegistry::Validate to fail fast.
  /// `controls` scopes the run to a stream window, substitutes a
  /// pre-built (e.g. restored) engine, and/or tees batches into a
  /// checkpoint (PersistError propagates on checkpoint I/O failure).
  ///
  /// Tenant drive: when the scenario has a tenant mix AND the engine
  /// supports tenancy (Describe().supports_tenancy), the runner
  /// registers the roles, splits each stream batch across them
  /// (AssignTenants, DeriveSeed(seed, kSeedTenantAssign)), ingests,
  /// and pumps SLO-formed batches instead of calling ProcessBatch —
  /// filling ScenarioReport::tenants/fairness.  Formation re-draws
  /// batch boundaries, so this mode cannot be combined with
  /// `controls.checkpointer` (the WAL must record the batches the
  /// engine actually processed as the driver saw them) — refused.
  /// A tenant-mix scenario on a tenancy-less engine falls back to the
  /// flat drive (no per-tenant rows).
  ScenarioReport Run(const std::string& engine_spec,
                     const EngineOptions& options = {}) const {
    return Run(engine_spec, options, RunControls{});
  }
  ScenarioReport Run(const std::string& engine_spec,
                     const EngineOptions& options,
                     const RunControls& controls) const;

  const ScenarioSpec& spec() const { return spec_; }
  uint64_t seed() const { return seed_; }
  const LabeledGraph& graph() const { return graph_; }
  const std::vector<QueryGraph>& queries() const { return queries_; }
  const std::vector<UpdateBatch>& stream() const { return stream_; }

 private:
  /// The tenant drive loop (see Run's docs): registers roles and
  /// queries on a fresh engine, splits + ingests the stream window
  /// [first, last), pumps formed batches, drains, and fills the
  /// per-tenant rows + fairness of `out`.
  ScenarioReport RunTenantDrive(TenantControl* tc, Engine* engine,
                                bool fresh, size_t first, size_t last,
                                const RunControls& controls,
                                ScenarioReport out) const;

  ScenarioSpec spec_;
  uint64_t seed_;
  /// The seed the *stream* was generated from: == seed_ unless a trace
  /// was replayed, in which case the trace header's seed carries over
  /// so RecordTrace preserves provenance.
  uint64_t stream_seed_;
  LabeledGraph graph_;
  std::vector<QueryGraph> queries_;
  std::vector<UpdateBatch> stream_;
};

}  // namespace bdsm::workload
