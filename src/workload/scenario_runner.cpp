#include "workload/scenario_runner.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "persist/checkpoint.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace bdsm::workload {

double ScenarioReport::TotalLatencySeconds() const {
  double s = 0.0;
  for (const ScenarioBatchMetric& b : batches) s += b.latency_seconds;
  return s;
}

double ScenarioReport::MeanLatencySeconds() const {
  return batches.empty() ? 0.0
                         : TotalLatencySeconds() /
                               static_cast<double>(batches.size());
}

double ScenarioReport::LatencyPercentile(double p) const {
  Samples s;
  for (const ScenarioBatchMetric& b : batches) s.Add(b.latency_seconds);
  return s.Percentile(p);
}

double ScenarioReport::ThroughputOpsPerSec() const {
  double total = TotalLatencySeconds();
  return total > 0.0 ? static_cast<double>(total_ops) / total : 0.0;
}

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec, uint64_t seed)
    : spec_(spec),
      seed_(seed),
      stream_seed_(seed),
      graph_(LoadDataset(spec.dataset)) {
  queries_ = BuildQuerySet(graph_, spec_, seed_);
  StreamGenerator gen(spec_.stream, DeriveSeed(seed_, kSeedStreamGen));
  stream_ = gen.Generate(graph_);
}

bool ScenarioRunner::ReplayTrace(const std::string& path) {
  TraceMeta meta;
  auto stream = ReadTrace(path, &meta);
  if (!stream) return false;
  // A trace is only valid against the graph it was recorded for; the
  // scenario name pins the dataset twin (the master seed does not — the
  // twins are generated from their own fixed seeds), so a name mismatch
  // means the replay invariant cannot hold and the run would measure
  // garbage.  Seed mismatches are fine: same scenario, different draw.
  if (meta.scenario != spec_.name) {
    GAMMA_LOG_WARN(
        "trace %s was recorded for scenario \"%s\", not \"%s\"; refusing",
        path.c_str(), meta.scenario.c_str(), spec_.name.c_str());
    return false;
  }
  stream_ = std::move(*stream);
  // Provenance follows the stream: a re-recorded trace must carry the
  // seed its batches were actually generated from, not this runner's.
  stream_seed_ = meta.seed;
  return true;
}

bool ScenarioRunner::RecordTrace(const std::string& path) const {
  return WriteTrace(path, TraceMeta{stream_seed_, spec_.name}, stream_);
}

ScenarioReport ScenarioRunner::Run(const std::string& engine_spec,
                                   const EngineOptions& options,
                                   const RunControls& controls) const {
  ScenarioReport out;
  out.scenario = spec_.name;
  out.engine = engine_spec;
  out.seed = seed_;
  out.num_queries = queries_.size();

  // Either a fresh engine with the scenario's query set, or a caller-
  // supplied (typically warm-restored) engine whose queries are
  // already registered.
  std::unique_ptr<Engine> owned;
  Engine* engine = controls.engine;
  const bool fresh = engine == nullptr;
  if (fresh) {
    owned = MakeEngine(engine_spec, graph_, options);
    engine = owned.get();
  }
  // Tenant drive applies when the scenario has a mix AND the engine
  // can serve it; otherwise the classic flat drive below.
  TenantControl* tc =
      spec_.tenants.Enabled() ? engine->tenant_control() : nullptr;
  if (fresh && tc == nullptr) {
    for (const QueryGraph& q : queries_) engine->AddQuery(q);
  }

  // The engine declares its own clock — no downcasts, no name-sniffing.
  const EngineInfo info = engine->Describe();
  out.canonical_spec = info.canonical_spec;
  out.latency_metric = ClockDomainName(info.clock);

  const size_t first = std::min(controls.first_batch, stream_.size());
  const size_t last =
      first + std::min(controls.max_batches, stream_.size() - first);
  if (tc != nullptr) {
    return RunTenantDrive(tc, engine, fresh, first, last, controls,
                          std::move(out));
  }
  // One tee layer exactly: a replica group already logs every applied
  // batch through its own internal checkpointer, so attaching a second
  // one here would double-log the stream.
  GAMMA_CHECK_MSG(
      controls.checkpointer == nullptr ||
          engine->replication_control() == nullptr,
      "a replicated engine ships its own WAL; do not attach a second "
      "checkpointer (one tee layer exactly — see docs/REPLICATION.md)");
  if (controls.checkpointer != nullptr) {
    controls.checkpointer->Begin(*engine, stream_seed_, spec_.name, first);
  }

  out.batches.reserve(last - first);
  for (size_t b = first; b < last; ++b) {
    const UpdateBatch& batch = stream_[b];
    BatchReport report = engine->ProcessBatch(batch);
    if (controls.checkpointer != nullptr) {
      controls.checkpointer->OnBatchApplied(*engine, batch, report);
    }
    ScenarioBatchMetric m;
    m.ops = batch.size();
    for (const QueryReport& qr : report.queries) {
      m.positive_matches += qr.num_positive;
      m.negative_matches += qr.num_negative;
      if (qr.Truncated()) ++m.truncated_queries;
    }
    switch (info.clock) {
      case ClockDomain::kModeledDevice:
        m.latency_seconds = report.ModeledSeconds(options.gamma.device);
        break;
      case ClockDomain::kCriticalPath:
        m.latency_seconds = report.critical_path_seconds;
        break;
      case ClockDomain::kHostWall:
        m.latency_seconds = report.host_wall_seconds;
        break;
    }
    m.queue_wait_seconds = report.queue_wait_seconds;
    m.queue_depth = report.queue_depth;
    out.total_ops += m.ops;
    out.total_matches += m.positive_matches + m.negative_matches;
    out.truncated_queries += m.truncated_queries;
    if (m.truncated_queries > 0) ++out.truncated_batches;
    out.batches.push_back(m);
  }
  // Close the WAL segment cleanly (a crash between batches is the
  // torn-tail case RestoreEngine recovers; a completed run should not
  // look like one).
  if (controls.checkpointer != nullptr) controls.checkpointer->Finish();
  // Replicated engines: drain the followers so the replica rows
  // describe a quiesced group, then lift the group's accounting into
  // the report.
  if (ReplicationControl* rc = engine->replication_control()) {
    rc->DrainFollowers();
    const ReplicationStats rs = rc->Stats();
    out.shipped_batches = rs.shipped_batches;
    out.shipped_bytes = rs.shipped_bytes;
    out.failovers = rs.failovers;
    out.failover_seconds = rs.last_failover_seconds;
    for (const ReplicaStats& r : rs.replicas) {
      ScenarioReplicaMetric rm;
      rm.replica = r.replica;
      rm.applied_batches = r.applied_batches;
      rm.applied_ops = r.applied_ops;
      rm.lag_batches = r.lag_batches;
      rm.lag_updates = r.lag_updates;
      rm.max_lag_batches = r.max_lag_batches;
      rm.resyncs = r.resyncs;
      rm.transport_seconds = r.transport_seconds;
      rm.apply_seconds = r.apply_seconds;
      out.replicas.push_back(rm);
    }
  }
  BDSM_OBS_COUNT("scenario.batches", out.batches.size());
  BDSM_OBS_COUNT("scenario.ops", out.total_ops);
  BDSM_OBS_COUNT("scenario.matches", out.total_matches);
  return out;
}

ScenarioReport ScenarioRunner::RunTenantDrive(TenantControl* tc,
                                              Engine* engine, bool fresh,
                                              size_t first, size_t last,
                                              const RunControls& controls,
                                              ScenarioReport out) const {
  (void)engine;
  // Batch formation re-draws batch boundaries, so a WAL teed here
  // would record a stream that never existed from the driver's view;
  // checkpoint the flat drive instead (bench_scenarios refuses the
  // flag combination up front with the friendly message).
  GAMMA_CHECK_MSG(controls.checkpointer == nullptr,
                  "tenant drive cannot be checkpointed (batch formation "
                  "re-draws batch boundaries); checkpoint a flat run");
  const std::vector<TenantRole>& roles = spec_.tenants.roles;
  // Role ids: registered here on a fresh front door (only the default
  // tenant exists), or already present when the caller re-drives an
  // engine this runner set up before.
  GAMMA_CHECK_MSG(
      tc->NumTenants() == 1 || tc->NumTenants() == 1 + roles.size(),
      "engine already has tenants that are not this scenario's roles "
      "(e.g. a tenants=N spec key); drive the mix on a clean front door");
  std::vector<TenantId> ids;
  if (tc->NumTenants() == 1) {
    for (const TenantRole& r : roles) {
      ids.push_back(tc->RegisterTenant(r.name, r.policy));
    }
  } else {
    for (size_t r = 0; r < roles.size(); ++r) {
      ids.push_back(static_cast<TenantId>(1 + r));
    }
  }
  if (fresh) {
    // Queries round-robin across the roles, so every tenant owns a
    // slice of the standing set and per-tenant result accounting has
    // something to attribute.
    for (size_t i = 0; i < queries_.size(); ++i) {
      tc->AddTenantQuery(ids[i % ids.size()], queries_[i]);
    }
  }

  auto record = [&out](const FormedBatchStats& fb) {
    if (fb.admitted_ops == 0) return;  // token-starved tick, no batch
    ScenarioBatchMetric m;
    m.ops = fb.admitted_ops;
    m.positive_matches = fb.positive_matches;
    m.negative_matches = fb.negative_matches;
    m.truncated_queries = fb.truncated_queries;
    m.latency_seconds = fb.service_seconds;
    m.queue_wait_seconds = fb.queue_wait_seconds;
    m.queue_depth = fb.queue_depth_before;
    out.total_ops += m.ops;
    out.total_matches += m.positive_matches + m.negative_matches;
    out.truncated_queries += m.truncated_queries;
    if (m.truncated_queries > 0) ++out.truncated_batches;
    out.batches.push_back(m);
  };

  // Steady-state drive: each stream batch arrives (split across the
  // roles by traffic share), the pump forms one batch; the backlog the
  // pump could not clear drains after the stream ends.  Deferred or
  // shed ops can leave later ops invalid against the evolved graph —
  // SanitizeBatch drops those deterministically, which is the honest
  // semantics of an overloaded front door (docs/SERVING.md).
  Rng assign_rng(DeriveSeed(seed_, kSeedTenantAssign));
  for (size_t b = first; b < last; ++b) {
    const UpdateBatch& batch = stream_[b];
    std::vector<size_t> assignment =
        AssignTenants(spec_.tenants, batch.size(), &assign_rng);
    std::vector<UpdateBatch> per_role(ids.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      per_role[assignment[i]].push_back(batch[i]);
    }
    for (size_t r = 0; r < ids.size(); ++r) {
      if (!per_role[r].empty()) tc->Ingest(ids[r], per_role[r]);
    }
    FormedBatchStats fb;
    if (tc->PumpFormedBatch(&fb)) record(fb);
  }
  FormedBatchStats fb;
  while (tc->PumpFormedBatch(&fb)) record(fb);

  for (size_t r = 0; r < ids.size(); ++r) {
    const TenantSnapshot snap = tc->Snapshot(ids[r]);
    ScenarioTenantMetric tm;
    tm.tenant = snap.name;
    tm.priority = PriorityClassName(snap.policy.priority);
    tm.offered_ops = snap.counters.offered_ops;
    tm.admitted_ops = snap.counters.admitted_ops;
    tm.shed_ops = snap.counters.shed_ops;
    tm.degraded_ops = snap.counters.degraded_ops;
    tm.batches = snap.counters.batches;
    tm.positive_matches = snap.counters.positive_matches;
    tm.negative_matches = snap.counters.negative_matches;
    Samples sojourn;
    for (size_t i = 0; i < snap.service_seconds.size(); ++i) {
      sojourn.Add(snap.service_seconds[i] + snap.queue_wait_seconds[i]);
      tm.max_queue_wait_s =
          std::max(tm.max_queue_wait_s, snap.queue_wait_seconds[i]);
    }
    tm.sojourn_p50_s = sojourn.Percentile(50);
    tm.sojourn_p95_s = sojourn.Percentile(95);
    tm.sojourn_p99_s = sojourn.Percentile(99);
    out.tenants.push_back(std::move(tm));
  }
  out.fairness = tc->JainFairnessIndex();
  BDSM_OBS_COUNT("scenario.batches", out.batches.size());
  BDSM_OBS_COUNT("scenario.ops", out.total_ops);
  BDSM_OBS_COUNT("scenario.matches", out.total_matches);
  return out;
}

}  // namespace bdsm::workload
