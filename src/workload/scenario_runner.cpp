#include "workload/scenario_runner.hpp"

#include <algorithm>

#include "persist/checkpoint.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace bdsm::workload {

double ScenarioReport::TotalLatencySeconds() const {
  double s = 0.0;
  for (const ScenarioBatchMetric& b : batches) s += b.latency_seconds;
  return s;
}

double ScenarioReport::MeanLatencySeconds() const {
  return batches.empty() ? 0.0
                         : TotalLatencySeconds() /
                               static_cast<double>(batches.size());
}

double ScenarioReport::LatencyPercentile(double p) const {
  Samples s;
  for (const ScenarioBatchMetric& b : batches) s.Add(b.latency_seconds);
  return s.Percentile(p);
}

double ScenarioReport::ThroughputOpsPerSec() const {
  double total = TotalLatencySeconds();
  return total > 0.0 ? static_cast<double>(total_ops) / total : 0.0;
}

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec, uint64_t seed)
    : spec_(spec),
      seed_(seed),
      stream_seed_(seed),
      graph_(LoadDataset(spec.dataset)) {
  queries_ = BuildQuerySet(graph_, spec_, seed_);
  StreamGenerator gen(spec_.stream, DeriveSeed(seed_, kSeedStreamGen));
  stream_ = gen.Generate(graph_);
}

bool ScenarioRunner::ReplayTrace(const std::string& path) {
  TraceMeta meta;
  auto stream = ReadTrace(path, &meta);
  if (!stream) return false;
  // A trace is only valid against the graph it was recorded for; the
  // scenario name pins the dataset twin (the master seed does not — the
  // twins are generated from their own fixed seeds), so a name mismatch
  // means the replay invariant cannot hold and the run would measure
  // garbage.  Seed mismatches are fine: same scenario, different draw.
  if (meta.scenario != spec_.name) {
    GAMMA_LOG_WARN(
        "trace %s was recorded for scenario \"%s\", not \"%s\"; refusing",
        path.c_str(), meta.scenario.c_str(), spec_.name.c_str());
    return false;
  }
  stream_ = std::move(*stream);
  // Provenance follows the stream: a re-recorded trace must carry the
  // seed its batches were actually generated from, not this runner's.
  stream_seed_ = meta.seed;
  return true;
}

bool ScenarioRunner::RecordTrace(const std::string& path) const {
  return WriteTrace(path, TraceMeta{stream_seed_, spec_.name}, stream_);
}

ScenarioReport ScenarioRunner::Run(const std::string& engine_spec,
                                   const EngineOptions& options,
                                   const RunControls& controls) const {
  ScenarioReport out;
  out.scenario = spec_.name;
  out.engine = engine_spec;
  out.seed = seed_;
  out.num_queries = queries_.size();

  // Either a fresh engine with the scenario's query set, or a caller-
  // supplied (typically warm-restored) engine whose queries are
  // already registered.
  std::unique_ptr<Engine> owned;
  Engine* engine = controls.engine;
  if (engine == nullptr) {
    owned = MakeEngine(engine_spec, graph_, options);
    for (const QueryGraph& q : queries_) owned->AddQuery(q);
    engine = owned.get();
  }

  // The engine declares its own clock — no downcasts, no name-sniffing.
  const EngineInfo info = engine->Describe();
  out.canonical_spec = info.canonical_spec;
  out.latency_metric = ClockDomainName(info.clock);

  const size_t first = std::min(controls.first_batch, stream_.size());
  const size_t last =
      first + std::min(controls.max_batches, stream_.size() - first);
  if (controls.checkpointer != nullptr) {
    controls.checkpointer->Begin(*engine, stream_seed_, spec_.name, first);
  }

  out.batches.reserve(last - first);
  for (size_t b = first; b < last; ++b) {
    const UpdateBatch& batch = stream_[b];
    BatchReport report = engine->ProcessBatch(batch);
    if (controls.checkpointer != nullptr) {
      controls.checkpointer->OnBatchApplied(*engine, batch, report);
    }
    ScenarioBatchMetric m;
    m.ops = batch.size();
    for (const QueryReport& qr : report.queries) {
      m.positive_matches += qr.num_positive;
      m.negative_matches += qr.num_negative;
      if (qr.Truncated()) ++m.truncated_queries;
    }
    switch (info.clock) {
      case ClockDomain::kModeledDevice:
        m.latency_seconds = report.ModeledSeconds(options.gamma.device);
        break;
      case ClockDomain::kCriticalPath:
        m.latency_seconds = report.critical_path_seconds;
        break;
      case ClockDomain::kHostWall:
        m.latency_seconds = report.host_wall_seconds;
        break;
    }
    out.total_ops += m.ops;
    out.total_matches += m.positive_matches + m.negative_matches;
    out.truncated_queries += m.truncated_queries;
    if (m.truncated_queries > 0) ++out.truncated_batches;
    out.batches.push_back(m);
  }
  // Close the WAL segment cleanly (a crash between batches is the
  // torn-tail case RestoreEngine recovers; a completed run should not
  // look like one).
  if (controls.checkpointer != nullptr) controls.checkpointer->Finish();
  return out;
}

}  // namespace bdsm::workload
