#include "workload/stream_gen.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/logging.hpp"

namespace bdsm::workload {

const char* StreamKindName(StreamKind kind) {
  switch (kind) {
    case StreamKind::kUniform: return "uniform";
    case StreamKind::kPowerLaw: return "powerlaw";
    case StreamKind::kTemporal: return "temporal";
    case StreamKind::kBurst: return "burst";
    case StreamKind::kChurn: return "churn";
    case StreamKind::kHotspot: return "hotspot";
  }
  return "?";
}

bool StreamKindFromName(const std::string& name, StreamKind* out) {
  for (StreamKind k : AllStreamKinds()) {
    if (name == StreamKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

const std::vector<StreamKind>& AllStreamKinds() {
  static const std::vector<StreamKind> kKinds = {
      StreamKind::kUniform, StreamKind::kPowerLaw, StreamKind::kTemporal,
      StreamKind::kBurst,   StreamKind::kChurn,    StreamKind::kHotspot};
  return kKinds;
}

namespace {

/// Seeded partial-Fisher-Yates permutation of [0, n).
std::vector<VertexId> RandomPermutation(size_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  for (size_t i = 0; i + 1 < n; ++i) {
    size_t j = i + rng.Uniform(n - i);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace

template <typename PickFn>
UpdateBatch StreamGenerator::SampleInsertions(const LabeledGraph& g,
                                              size_t count, PickFn&& pick) {
  UpdateBatch batch;
  if (g.NumVertices() < 2) return batch;
  std::unordered_set<Edge, EdgeHash> used;
  size_t attempts = 0;
  const size_t max_attempts = count * 64 + 1024;
  while (batch.size() < count && attempts++ < max_attempts) {
    VertexId a = pick();
    VertexId b = pick();
    if (a == b) continue;
    Edge e(a, b);
    if (g.HasEdge(a, b) || used.count(e)) continue;
    used.insert(e);
    Label el = spec_.elabels == 0
                   ? kNoLabel
                   : static_cast<Label>(rng_.Uniform(spec_.elabels));
    batch.push_back(UpdateOp{true, e.u, e.v, el});
  }
  return batch;
}

UpdateBatch StreamGenerator::SampleDeletions(const LabeledGraph& g,
                                             size_t count) {
  UpdateBatch batch;
  std::vector<Edge> edges = g.CollectEdges();
  if (edges.empty()) return batch;
  count = std::min(count, edges.size());
  for (size_t i = 0; i < count; ++i) {
    size_t j = i + rng_.Uniform(edges.size() - i);
    std::swap(edges[i], edges[j]);
    Label el = g.EdgeLabel(edges[i].u, edges[i].v);
    batch.push_back(UpdateOp{false, edges[i].u, edges[i].v, el});
  }
  return batch;
}

std::vector<UpdateBatch> StreamGenerator::Generate(const LabeledGraph& g) {
  std::vector<UpdateBatch> stream;
  stream.reserve(spec_.num_batches);
  LabeledGraph evolving = g;  // private replica; caller's graph untouched
  const size_t n = evolving.NumVertices();
  if (n < 2) return stream;

  // Kind-specific fixed state, sampled once so it is part of the seed's
  // deterministic output.
  std::vector<VertexId> perm;          // kPowerLaw rank -> vertex
  ZipfSampler zipf(0, 1.0);            // re-built below for kPowerLaw
  std::vector<VertexId> hot;           // kHotspot
  std::deque<std::vector<Edge>> live;  // kTemporal insertion windows
  if (spec_.kind == StreamKind::kPowerLaw) {
    perm = RandomPermutation(n, rng_);
    zipf = ZipfSampler(n, spec_.skew);
  } else if (spec_.kind == StreamKind::kHotspot) {
    size_t h = std::max<size_t>(
        2, static_cast<size_t>(spec_.hotspot_fraction * double(n)));
    h = std::min(h, n);
    std::vector<VertexId> p = RandomPermutation(n, rng_);
    hot.assign(p.begin(), p.begin() + h);
  }

  auto uniform_pick = [&]() -> VertexId {
    return static_cast<VertexId>(rng_.Uniform(n));
  };
  // The shared mixed-batch shape: `insert_fraction` of ops_per_batch
  // are insertions with endpoints from `pick`, the rest uniform
  // deletions of existing edges.
  auto mixed_batch = [&](double insert_fraction, auto&& pick) {
    double f = std::clamp(insert_fraction, 0.0, 1.0);
    size_t ins =
        static_cast<size_t>(double(spec_.ops_per_batch) * f);
    ins = std::min(ins, spec_.ops_per_batch);
    UpdateBatch out = SampleInsertions(evolving, ins, pick);
    UpdateBatch dels =
        SampleDeletions(evolving, spec_.ops_per_batch - ins);
    out.insert(out.end(), dels.begin(), dels.end());
    return out;
  };

  for (size_t b = 0; b < spec_.num_batches; ++b) {
    UpdateBatch batch;
    switch (spec_.kind) {
      case StreamKind::kUniform:
        batch = mixed_batch(spec_.insert_fraction, uniform_pick);
        break;
      case StreamKind::kPowerLaw:
        batch = mixed_batch(spec_.insert_fraction, [&]() -> VertexId {
          return perm[zipf.Sample(rng_)];
        });
        break;
      case StreamKind::kTemporal: {
        // Fresh inserts this batch...
        batch = SampleInsertions(evolving, spec_.ops_per_batch,
                                 uniform_pick);
        std::vector<Edge> inserted;
        inserted.reserve(batch.size());
        for (const UpdateOp& op : batch) inserted.emplace_back(op.u, op.v);
        live.push_back(std::move(inserted));
        // ...plus expiry of the window that just aged out.  Only edges
        // still present expire (an expired edge may have been uniformly
        // re-inserted later; it then lives in a younger window too — the
        // presence check keeps the delete valid either way).
        if (live.size() > spec_.window_batches) {
          for (const Edge& e : live.front()) {
            if (!evolving.HasEdge(e.u, e.v)) continue;
            batch.push_back(
                UpdateOp{false, e.u, e.v, evolving.EdgeLabel(e.u, e.v)});
          }
          live.pop_front();
        }
        break;
      }
      case StreamKind::kBurst: {
        const size_t period = std::max<size_t>(2, spec_.burst_period);
        const bool is_burst = (b + 1) % period == 0;
        if (is_burst) {
          // Flash crowd: a fresh small crowd absorbs the spike.
          size_t c = std::max<size_t>(
              2, static_cast<size_t>(spec_.crowd_fraction * double(n)));
          c = std::min(c, n);
          std::vector<VertexId> p = RandomPermutation(n, rng_);
          std::vector<VertexId> crowd(p.begin(), p.begin() + c);
          auto crowd_pick = [&]() -> VertexId {
            if (rng_.Chance(0.9)) return crowd[rng_.PickIndex(crowd)];
            return uniform_pick();
          };
          size_t ops = static_cast<size_t>(double(spec_.ops_per_batch) *
                                           spec_.burst_factor);
          batch = SampleInsertions(evolving, ops, crowd_pick);
        } else {
          batch = mixed_batch(spec_.insert_fraction, uniform_pick);
        }
        break;
      }
      case StreamKind::kChurn:
        batch = mixed_batch(spec_.churn_insert_fraction, uniform_pick);
        break;
      case StreamKind::kHotspot:
        batch = mixed_batch(spec_.insert_fraction, [&]() -> VertexId {
          if (rng_.Chance(spec_.hotspot_prob)) {
            return hot[rng_.PickIndex(hot)];
          }
          return uniform_pick();
        });
        break;
    }
    // Safety net: SampleInsertions/SampleDeletions already avoid
    // conflicts, but sanitizing here guarantees the replay invariant
    // even if a kind combines sub-batches imperfectly.
    batch = SanitizeBatch(evolving, batch);
    size_t applied = ApplyBatch(&evolving, batch);
    GAMMA_CHECK(applied == batch.size());
    stream.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace bdsm::workload
