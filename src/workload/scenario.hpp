/// \file scenario.hpp
/// Named workload scenarios: (dataset, stream shape, query set) triples.
///
/// A scenario is the unit the serving benchmarks speak — "run engine X
/// on scenario Y" — binding a Table-II dataset twin, one stream
/// generator (workload/stream_gen.hpp), and a query-set recipe into a
/// single named, seeded, fully reproducible workload.  The catalog
/// (AllScenarios) is what `bench_scenarios --scenario <name>` and
/// `example_cli --scenario <name>` dispatch on; docs/WORKLOADS.md is
/// the human-readable index.
///
/// Everything is derived from one master seed through DeriveSeed
/// (util/rng.hpp): stream and query extraction use independent
/// sub-seeds, so changing the query recipe never perturbs the stream
/// and vice versa.
#pragma once

#include <string>
#include <vector>

#include "core/tenant.hpp"
#include "graph/datasets.hpp"
#include "graph/query_graph.hpp"
#include "workload/stream_gen.hpp"

namespace bdsm::workload {

/// Default master seed for every scenario surface (bench_scenarios,
/// example_cli --scenario); matches bench::Scale::seed so scenario rows
/// and figure-bench rows in a perf trajectory share provenance.
inline constexpr uint64_t kDefaultScenarioSeed = 2024;

/// Stable sub-seed stream ids (DeriveSeed's second argument).
inline constexpr uint64_t kSeedStreamGen = 1;    ///< update stream
inline constexpr uint64_t kSeedQueryExtract = 2; ///< query extraction
inline constexpr uint64_t kSeedTenantAssign = 3; ///< op -> tenant split

/// One tenant's part in a multi-tenant scenario: its serving contract
/// (core/tenant.hpp) plus its relative share of the stream's ops.
struct TenantRole {
  std::string name;
  TenantPolicy policy;
  /// Relative traffic weight: each stream op is attributed to a role
  /// with probability share/sum(shares), seeded by kSeedTenantAssign —
  /// so the same (scenario, seed) always produces the same split.
  double traffic_share = 1.0;
};

/// A scenario's tenant population.  Empty = classic single-tenant
/// scenario (the stream is driven through ProcessBatch unsplit).
struct TenantMixSpec {
  std::vector<TenantRole> roles;
  bool Enabled() const { return !roles.empty(); }
};

/// Attributes `num_ops` consecutive stream ops to roles by
/// traffic_share; out[i] is the role index of op i.  Pure function of
/// (mix, rng state) — the runner feeds one rng across all batches.
std::vector<size_t> AssignTenants(const TenantMixSpec& mix, size_t num_ops,
                                  Rng* rng);

/// Parses a `--priority-mix` value — "gold:1,silver:2,best_effort:1"
/// (weights optional, default 1) — into an expanded rotation cycle,
/// e.g. [gold, silver, silver, best_effort].  On a malformed entry,
/// returns false and fills `error` with an EngineSpecError-style
/// message listing the valid class names.
bool ParsePriorityMix(const std::string& text,
                      std::vector<PriorityClass>* cycle,
                      std::string* error);

/// Synthesizes an N-tenant mix ("t0".."tN-1", equal traffic shares,
/// permissive policies) with priorities rotating through `cycle`
/// (empty = all silver) — the `--tenants N --priority-mix ...` surface
/// for scenarios that do not define their own mix.
TenantMixSpec MakeUniformTenantMix(size_t n,
                                   const std::vector<PriorityClass>& cycle);

struct ScenarioSpec {
  std::string name;         ///< registry key ("smoke", "churn", ...)
  std::string description;  ///< one line for --list / docs
  DatasetId dataset = DatasetId::kGithub;
  StreamSpec stream;

  // Query-set recipe: connected patterns extracted from the data graph
  // by seeded random walks (graph/query_extractor.hpp).
  size_t num_queries = 4;
  size_t query_size = 5;  ///< |V(Q)|
  /// Rotate Sparse/Tree/Dense across the set (stresses MultiGamma's
  /// cross-query sharing and ShardedEngine placement with heterogeneous
  /// per-query cost); when false, all queries use `query_class`.
  bool mixed_classes = true;
  QueryGraph::StructureClass query_class =
      QueryGraph::StructureClass::kSparse;

  /// Multi-tenant scenarios (tenant-skew, noisy-neighbor,
  /// overload-storm) populate this; the runner then drives a
  /// tenancy-capable engine through Ingest/PumpFormedBatch instead of
  /// flat ProcessBatch, and reports per-tenant rows + fairness.
  TenantMixSpec tenants;
};

/// The built-in catalog, stable order.  Guaranteed >= 6 entries with
/// unique names (tested).
const std::vector<ScenarioSpec>& AllScenarios();

/// Lookup by name; nullptr when unknown.
const ScenarioSpec* FindScenario(const std::string& name);

/// Extracts the scenario's query set from `g` (deterministic in
/// `seed`).  Classes that the dataset cannot supply (e.g. Dense on a
/// very sparse twin) fall back Sparse -> Tree, so the returned set can
/// be smaller than `spec.num_queries` only when even trees of the
/// requested size are unsamplable.
std::vector<QueryGraph> BuildQuerySet(const LabeledGraph& g,
                                      const ScenarioSpec& spec,
                                      uint64_t seed);

}  // namespace bdsm::workload
