#include "workload/trace.hpp"

#include <unistd.h>

#include <cstring>

namespace bdsm::workload {

namespace {

// Explicit little-endian (de)serialization keeps trace bytes identical
// across hosts regardless of native endianness.

void PutU32(FILE* f, uint32_t x, bool* ok) {
  unsigned char b[4] = {static_cast<unsigned char>(x),
                        static_cast<unsigned char>(x >> 8),
                        static_cast<unsigned char>(x >> 16),
                        static_cast<unsigned char>(x >> 24)};
  if (fwrite(b, 1, 4, f) != 4) *ok = false;
}

void PutU64(FILE* f, uint64_t x, bool* ok) {
  PutU32(f, static_cast<uint32_t>(x), ok);
  PutU32(f, static_cast<uint32_t>(x >> 32), ok);
}

void PutU8(FILE* f, uint8_t x, bool* ok) {
  if (fwrite(&x, 1, 1, f) != 1) *ok = false;
}

bool GetU32(FILE* f, uint32_t* x) {
  unsigned char b[4];
  if (fread(b, 1, 4, f) != 4) return false;
  *x = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool GetU64(FILE* f, uint64_t* x) {
  uint32_t lo, hi;
  if (!GetU32(f, &lo) || !GetU32(f, &hi)) return false;
  *x = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetU8(FILE* f, uint8_t* x) { return fread(x, 1, 1, f) == 1; }

constexpr long kNumBatchesOffset = 24;

}  // namespace

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta) {
  f_ = fopen(path.c_str(), "wb");
  if (f_ == nullptr) return;
  ok_ = true;
  if (fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f_) !=
      sizeof(kTraceMagic)) {
    ok_ = false;
  }
  PutU32(f_, kTraceVersion, &ok_);
  PutU32(f_, 0, &ok_);  // flags
  PutU64(f_, meta.seed, &ok_);
  PutU64(f_, 0, &ok_);  // num_batches placeholder, patched in Close()
  PutU32(f_, static_cast<uint32_t>(meta.scenario.size()), &ok_);
  if (!meta.scenario.empty() &&
      fwrite(meta.scenario.data(), 1, meta.scenario.size(), f_) !=
          meta.scenario.size()) {
    ok_ = false;
  }
}

TraceWriter::~TraceWriter() { Close(); }

void TraceWriter::Append(const UpdateBatch& batch) {
  if (f_ == nullptr || !ok_) return;
  PutU64(f_, batch.size(), &ok_);
  for (const UpdateOp& op : batch) {
    PutU8(f_, op.is_insert ? 1 : 0, &ok_);
    PutU32(f_, op.u, &ok_);
    PutU32(f_, op.v, &ok_);
    PutU32(f_, op.elabel, &ok_);
  }
  ++num_batches_;
}

bool TraceWriter::Flush(bool sync) {
  if (f_ == nullptr || !ok_) return false;
  if (fflush(f_) != 0) ok_ = false;
  if (sync && ok_ && fsync(fileno(f_)) != 0) ok_ = false;
  return ok_;
}

void TraceWriter::Close(bool sync) {
  if (f_ == nullptr) return;
  if (ok_ && fseek(f_, kNumBatchesOffset, SEEK_SET) == 0) {
    PutU64(f_, num_batches_, &ok_);
  } else {
    ok_ = false;
  }
  if (sync && ok_) {
    if (fflush(f_) != 0 || fsync(fileno(f_)) != 0) ok_ = false;
  }
  if (fclose(f_) != 0) ok_ = false;
  f_ = nullptr;
}

TraceReader::TraceReader(const std::string& path, Options options)
    : options_(options) {
  f_ = fopen(path.c_str(), "rb");
  if (f_ == nullptr) return;
  if (fseek(f_, 0, SEEK_END) != 0) return;
  long size = ftell(f_);
  if (size < 0 || fseek(f_, 0, SEEK_SET) != 0) return;
  file_size_ = static_cast<uint64_t>(size);
  char magic[8];
  uint32_t version = 0, flags = 0, name_len = 0;
  if (fread(magic, 1, sizeof(magic), f_) != sizeof(magic) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0 ||
      !GetU32(f_, &version) || version != kTraceVersion ||
      !GetU32(f_, &flags) || !GetU64(f_, &meta_.seed) ||
      !GetU64(f_, &num_batches_) || !GetU32(f_, &name_len)) {
    return;
  }
  // Counts come from the file; sanity-check them against the bytes
  // actually present before anyone reserve()s on them, so a corrupt or
  // hostile header yields !ok() instead of std::bad_alloc.  In recover
  // mode the batch count is advisory anyway (a crashed writer leaves
  // the placeholder 0 or, truncated mid-file, a count the bytes cannot
  // honor), so only the name length gates here.
  if (name_len > RemainingBytes() ||
      (!options_.recover_truncated &&
       num_batches_ > (RemainingBytes() - name_len) / 8)) {
    return;
  }
  meta_.scenario.resize(name_len);
  if (name_len > 0 &&
      fread(meta_.scenario.data(), 1, name_len, f_) != name_len) {
    meta_.scenario.clear();
    return;
  }
  ok_ = true;
}

uint64_t TraceReader::RemainingBytes() const {
  long pos = ftell(f_);
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size_) return 0;
  return file_size_ - static_cast<uint64_t>(pos);
}

TraceReader::~TraceReader() {
  if (f_ != nullptr) fclose(f_);
}

std::optional<UpdateBatch> TraceReader::Next() {
  if (!ok_ || truncated_) return std::nullopt;
  if (options_.recover_truncated) {
    // Recover mode walks the bytes, not the header: a crashed writer
    // never patched the count.  A clean stop is ending exactly on a
    // batch boundary with at least as many batches as the header
    // promised (0 = placeholder, promises nothing).
    if (RemainingBytes() == 0) {
      truncated_ = num_batches_ != 0 && read_batches_ < num_batches_;
      return std::nullopt;
    }
  } else if (read_batches_ >= num_batches_) {
    return std::nullopt;
  }
  // A short trailing record is corruption in strict mode (the header
  // promised it whole) but expected wreckage in recover mode — stop at
  // the last good batch and report truncated() instead.
  auto torn = [this]() -> std::optional<UpdateBatch> {
    if (options_.recover_truncated) {
      truncated_ = true;
    } else {
      ok_ = false;
    }
    return std::nullopt;
  };
  uint64_t num_ops = 0;
  if (!GetU64(f_, &num_ops)) return torn();
  // 13 bytes per op (see trace.hpp); an op count the remaining file
  // cannot hold marks the trace corrupt (or torn) before reserve() can
  // blow up.
  if (num_ops > RemainingBytes() / 13) return torn();
  UpdateBatch batch;
  batch.reserve(num_ops);
  for (uint64_t i = 0; i < num_ops; ++i) {
    uint8_t ins = 0;
    uint32_t u = 0, v = 0, el = 0;
    if (!GetU8(f_, &ins) || !GetU32(f_, &u) || !GetU32(f_, &v) ||
        !GetU32(f_, &el)) {
      return torn();
    }
    batch.push_back(UpdateOp{ins != 0, u, v, el});
  }
  ++read_batches_;
  return batch;
}

bool WriteTrace(const std::string& path, const TraceMeta& meta,
                const std::vector<UpdateBatch>& stream) {
  TraceWriter w(path, meta);
  for (const UpdateBatch& b : stream) w.Append(b);
  w.Close();
  return w.ok();
}

std::optional<std::vector<UpdateBatch>> ReadTrace(const std::string& path,
                                                  TraceMeta* meta) {
  TraceReader r(path);
  if (!r.ok()) return std::nullopt;
  std::vector<UpdateBatch> stream;
  stream.reserve(r.num_batches());
  while (auto b = r.Next()) stream.push_back(std::move(*b));
  if (!r.ok() || stream.size() != r.num_batches()) return std::nullopt;
  if (meta != nullptr) *meta = r.meta();
  return stream;
}

}  // namespace bdsm::workload
