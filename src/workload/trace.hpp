/// \file trace.hpp
/// Compact binary update-stream traces with record/replay.
///
/// A trace freezes an update stream — generated (workload/stream_gen.hpp)
/// or real — into a reusable artifact: record once, replay anywhere, and
/// two engines replaying the same trace are guaranteed the identical
/// input.  The format is exact (no floats, explicit little-endian), so
/// "same seed => byte-identical trace" is testable and holds across
/// platforms.
///
/// Layout (version 1; all integers little-endian):
///
///   offset  size  field
///        0     8  magic "BDSMTRC1"
///        8     4  version            (u32, = 1)
///       12     4  flags              (u32, = 0, reserved)
///       16     8  seed               (u64, generator master seed)
///       24     8  num_batches        (u64, patched by TraceWriter::Close)
///       32     4  scenario name len  (u32)
///       36     L  scenario name bytes (no terminator)
///   then per batch:
///              8  num_ops            (u64)
///   then per op (13 bytes):
///              1  is_insert          (u8, 0|1)
///              4  u                  (u32)
///              4  v                  (u32)
///              4  elabel             (u32; kNoLabel = 0xffffffff)
///
/// The spec is duplicated in docs/WORKLOADS.md; bump `kTraceVersion`
/// when changing the layout (readers reject unknown versions).
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "graph/update_stream.hpp"

namespace bdsm::workload {

inline constexpr char kTraceMagic[8] = {'B', 'D', 'S', 'M',
                                        'T', 'R', 'C', '1'};
inline constexpr uint32_t kTraceVersion = 1;

/// Provenance carried in the trace header.
struct TraceMeta {
  uint64_t seed = 0;      ///< master seed the stream was generated from
  std::string scenario;   ///< scenario or generator name ("" for ad hoc)

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// Streams batches into a trace file.  Usage:
///   TraceWriter w(path, meta);
///   for (const UpdateBatch& b : stream) w.Append(b);
///   w.Close();               // patches the header batch count
/// The destructor calls Close(); check ok() after closing — a writer
/// that hit an I/O error leaves no guarantees about the file.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, const TraceMeta& meta);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return ok_; }
  void Append(const UpdateBatch& batch);
  /// Patches the header batch count and closes the file.  With
  /// `sync`, the patched header is fsynced before the close — a
  /// cleanly-closed WAL segment must survive a power loss as closed,
  /// or its header count reads as the placeholder and strict readers
  /// see an empty segment.
  void Close(bool sync = false);

  /// Durability point: flushes buffered bytes to the OS and, with
  /// `sync`, fsyncs them to stable storage.  Called by the persistence
  /// layer's WAL on batch boundaries — everything appended before a
  /// successful Flush(true) survives a crash; the header's batch count
  /// is only patched by Close(), so a crashed trace must be read back
  /// with TraceReader::Options::recover_truncated.
  bool Flush(bool sync);

  uint64_t num_batches() const { return num_batches_; }

 private:
  FILE* f_ = nullptr;
  uint64_t num_batches_ = 0;
  bool ok_ = false;
};

/// Reads a trace back.  Construction validates magic + version and
/// loads the header; Next() then yields batches in order.
///
/// Two reading modes:
///  * strict (default): the header's batch count is authoritative;
///    a file that cannot deliver it is corrupt and flips ok() false.
///  * recover (Options::recover_truncated): for WAL tails and crashed
///    recordings — the header count is advisory (a crashed writer never
///    patched it), Next() yields every *complete* batch the bytes hold
///    and stops cleanly at the first torn or short trailing record,
///    which `truncated()` reports instead of poisoning ok().
class TraceReader {
 public:
  struct Options {
    /// Stop-at-last-good-batch mode for torn final writes (crashed
    /// writer / partial flush).  A torn *trailing* batch is expected
    /// wreckage, not corruption: ok() stays true, truncated() turns
    /// true, and everything before the tear is served.
    bool recover_truncated = false;
  };

  explicit TraceReader(const std::string& path) : TraceReader(path, Options{}) {}
  TraceReader(const std::string& path, Options options);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// False when the file is missing, has a bad magic, or an unknown
  /// version; Next() on a !ok() reader always returns nullopt.  In
  /// strict mode a truncated body also flips this false.
  bool ok() const { return ok_; }
  const TraceMeta& meta() const { return meta_; }
  uint64_t num_batches() const { return num_batches_; }
  /// Complete batches delivered so far.
  uint64_t read_batches() const { return read_batches_; }
  /// Recover mode: true once the end of the readable data fell short of
  /// a batch boundary (torn final write) or of the header's batch count.
  bool truncated() const { return truncated_; }

  /// Next batch, or nullopt at end-of-trace / on a truncated file
  /// (strict mode: truncation flips ok() to false so callers can tell
  /// the two apart; recover mode: truncation sets truncated() and ends
  /// the stream at the last good batch).
  std::optional<UpdateBatch> Next();

 private:
  /// Bytes between the current file position and end-of-file; used to
  /// sanity-check header/batch counts before allocating for them.
  uint64_t RemainingBytes() const;

  FILE* f_ = nullptr;
  Options options_;
  TraceMeta meta_;
  uint64_t file_size_ = 0;
  uint64_t num_batches_ = 0;
  uint64_t read_batches_ = 0;
  bool ok_ = false;
  bool truncated_ = false;
};

/// One-shot record: writes the whole stream; false on I/O failure.
bool WriteTrace(const std::string& path, const TraceMeta& meta,
                const std::vector<UpdateBatch>& stream);

/// One-shot replay: reads the whole stream; nullopt on any error
/// (missing file, bad magic/version, truncation).  `meta`, when
/// non-null, receives the header.
std::optional<std::vector<UpdateBatch>> ReadTrace(const std::string& path,
                                                  TraceMeta* meta = nullptr);

}  // namespace bdsm::workload
