#include "workload/scenario.hpp"

#include "graph/query_extractor.hpp"

namespace bdsm::workload {

namespace {

size_t DatasetElabels(DatasetId id) {
  for (const DatasetSpec& s : AllDatasets()) {
    if (s.id == id) return s.edge_labels > 1 ? s.edge_labels : 0;
  }
  return 0;
}

ScenarioSpec MakeSpec(std::string name, std::string description,
                      DatasetId dataset, StreamKind kind,
                      size_t num_batches, size_t ops_per_batch,
                      size_t num_queries, size_t query_size,
                      bool mixed_classes) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.dataset = dataset;
  s.stream.kind = kind;
  s.stream.num_batches = num_batches;
  s.stream.ops_per_batch = ops_per_batch;
  s.stream.elabels = DatasetElabels(dataset);
  s.num_queries = num_queries;
  s.query_size = query_size;
  s.mixed_classes = mixed_classes;
  return s;
}

}  // namespace

const std::vector<ScenarioSpec>& AllScenarios() {
  static const std::vector<ScenarioSpec> kScenarios = [] {
    std::vector<ScenarioSpec> v;

    // CI's scenario: small enough for seconds on one core, still
    // exercising mixed inserts+deletes and a real extracted query.
    ScenarioSpec smoke =
        MakeSpec("smoke", "tiny uniform mix on GH (CI gate)",
                 DatasetId::kGithub, StreamKind::kUniform,
                 /*batches=*/3, /*ops=*/48, /*queries=*/2,
                 /*qsize=*/4, /*mixed=*/false);
    v.push_back(smoke);

    v.push_back(MakeSpec(
        "uniform", "uniform endpoint mix on GH (baseline shape)",
        DatasetId::kGithub, StreamKind::kUniform, 8, 200, 4, 5, true));

    v.push_back(MakeSpec(
        "powerlaw",
        "Chung-Lu degree-skewed growth on ST (preferential attachment)",
        DatasetId::kSkitter, StreamKind::kPowerLaw, 8, 200, 4, 5, true));

    ScenarioSpec temporal = MakeSpec(
        "temporal",
        "sliding-window insert/expire on NF (edge-labeled, window 3)",
        DatasetId::kNetflow, StreamKind::kTemporal, 10, 150, 3, 4, false);
    temporal.stream.window_batches = 3;
    v.push_back(temporal);

    ScenarioSpec burst = MakeSpec(
        "burst", "flash-crowd spikes on GH (every 4th batch 6x, crowded)",
        DatasetId::kGithub, StreamKind::kBurst, 8, 100, 4, 5, true);
    burst.stream.burst_factor = 6.0;
    burst.stream.burst_period = 4;
    v.push_back(burst);

    v.push_back(MakeSpec(
        "churn", "deletion-heavy turnover on AZ (65% deletes)",
        DatasetId::kAmazon, StreamKind::kChurn, 8, 200, 4, 5, true));

    v.push_back(MakeSpec(
        "hotspot", "hot-vertex concentration on LJ (1% of V, p=0.8)",
        DatasetId::kLiveJournal, StreamKind::kHotspot, 8, 200, 4, 5,
        true));

    // Many small heterogeneous queries: the MultiGamma-sharing /
    // ShardedEngine-placement stressor.
    v.push_back(MakeSpec(
        "multishare",
        "12 mixed-class queries on GH (MultiGamma/sharding stressor)",
        DatasetId::kGithub, StreamKind::kUniform, 6, 150, 12, 4, true));

    return v;
  }();
  return kScenarios;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : AllScenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<QueryGraph> BuildQuerySet(const LabeledGraph& g,
                                      const ScenarioSpec& spec,
                                      uint64_t seed) {
  QueryExtractor ex(g, DeriveSeed(seed, kSeedQueryExtract));
  static const QueryGraph::StructureClass kRotation[] = {
      QueryGraph::StructureClass::kSparse,
      QueryGraph::StructureClass::kTree,
      QueryGraph::StructureClass::kDense};
  std::vector<QueryGraph> queries;
  queries.reserve(spec.num_queries);
  for (size_t i = 0; i < spec.num_queries; ++i) {
    QueryGraph::StructureClass cls =
        spec.mixed_classes ? kRotation[i % 3] : spec.query_class;
    auto q = ex.Extract(spec.query_size, cls);
    // Dense (and occasionally Sparse) can be unsamplable on sparse
    // twins; degrade gracefully rather than shrink the set.
    if (!q && cls != QueryGraph::StructureClass::kSparse) {
      q = ex.Extract(spec.query_size, QueryGraph::StructureClass::kSparse);
    }
    if (!q) {
      q = ex.Extract(spec.query_size, QueryGraph::StructureClass::kTree);
    }
    if (q) queries.push_back(std::move(*q));
  }
  return queries;
}

}  // namespace bdsm::workload
