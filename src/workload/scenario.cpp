#include "workload/scenario.hpp"

#include "graph/query_extractor.hpp"

namespace bdsm::workload {

namespace {

size_t DatasetElabels(DatasetId id) {
  for (const DatasetSpec& s : AllDatasets()) {
    if (s.id == id) return s.edge_labels > 1 ? s.edge_labels : 0;
  }
  return 0;
}

ScenarioSpec MakeSpec(std::string name, std::string description,
                      DatasetId dataset, StreamKind kind,
                      size_t num_batches, size_t ops_per_batch,
                      size_t num_queries, size_t query_size,
                      bool mixed_classes) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.dataset = dataset;
  s.stream.kind = kind;
  s.stream.num_batches = num_batches;
  s.stream.ops_per_batch = ops_per_batch;
  s.stream.elabels = DatasetElabels(dataset);
  s.num_queries = num_queries;
  s.query_size = query_size;
  s.mixed_classes = mixed_classes;
  return s;
}

TenantRole MakeRole(std::string name, PriorityClass priority, double share,
                    double rate, size_t queue_limit, size_t result_budget) {
  TenantRole r;
  r.name = std::move(name);
  r.policy.priority = priority;
  r.policy.rate_ops_per_batch = rate;
  r.policy.queue_limit_ops = queue_limit;
  r.policy.result_budget = result_budget;
  r.traffic_share = share;
  return r;
}

}  // namespace

std::vector<size_t> AssignTenants(const TenantMixSpec& mix, size_t num_ops,
                                  Rng* rng) {
  std::vector<size_t> out(num_ops, 0);
  if (mix.roles.size() < 2) return out;
  double total = 0.0;
  for (const TenantRole& r : mix.roles) total += r.traffic_share;
  for (size_t i = 0; i < num_ops; ++i) {
    double draw = rng->UniformReal() * total;
    size_t role = mix.roles.size() - 1;
    for (size_t r = 0; r < mix.roles.size(); ++r) {
      draw -= mix.roles[r].traffic_share;
      if (draw < 0.0) {
        role = r;
        break;
      }
    }
    out[i] = role;
  }
  return out;
}

bool ParsePriorityMix(const std::string& text,
                      std::vector<PriorityClass>* cycle,
                      std::string* error) {
  cycle->clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    // Tolerate stray spaces around entries ("gold, silver:2").
    while (!entry.empty() && entry.front() == ' ') entry.erase(0, 1);
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty()) {
      if (error != nullptr) {
        *error = "empty entry in priority mix \"" + text +
                 "\"; expected CLASS[:WEIGHT][,CLASS[:WEIGHT]...] with "
                 "classes: " +
                 ValidPriorityClassNames();
      }
      return false;
    }
    const size_t colon = entry.find(':');
    const std::string name = entry.substr(0, colon);
    size_t weight = 1;
    if (colon != std::string::npos) {
      const std::string w = entry.substr(colon + 1);
      weight = 0;
      bool digits = !w.empty();
      for (char c : w) digits = digits && c >= '0' && c <= '9';
      if (digits) weight = static_cast<size_t>(std::stoull(w));
      if (!digits || weight == 0) {
        if (error != nullptr) {
          *error = "bad weight \"" + w + "\" for class \"" + name +
                   "\" in priority mix; expected a positive integer";
        }
        return false;
      }
    }
    PriorityClass pc;
    if (!PriorityClassFromName(name, &pc)) {
      if (error != nullptr) {
        *error = "unknown priority class \"" + name +
                 "\" in priority mix; valid classes: " +
                 ValidPriorityClassNames();
      }
      return false;
    }
    for (size_t i = 0; i < weight; ++i) cycle->push_back(pc);
  }
  return true;
}

TenantMixSpec MakeUniformTenantMix(size_t n,
                                   const std::vector<PriorityClass>& cycle) {
  TenantMixSpec mix;
  for (size_t i = 0; i < n; ++i) {
    TenantRole r;
    r.name = "t" + std::to_string(i);
    r.policy.priority =
        cycle.empty() ? PriorityClass::kSilver : cycle[i % cycle.size()];
    mix.roles.push_back(std::move(r));
  }
  return mix;
}

const std::vector<ScenarioSpec>& AllScenarios() {
  static const std::vector<ScenarioSpec> kScenarios = [] {
    std::vector<ScenarioSpec> v;

    // CI's scenario: small enough for seconds on one core, still
    // exercising mixed inserts+deletes and a real extracted query.
    ScenarioSpec smoke =
        MakeSpec("smoke", "tiny uniform mix on GH (CI gate)",
                 DatasetId::kGithub, StreamKind::kUniform,
                 /*batches=*/3, /*ops=*/48, /*queries=*/2,
                 /*qsize=*/4, /*mixed=*/false);
    v.push_back(smoke);

    v.push_back(MakeSpec(
        "uniform", "uniform endpoint mix on GH (baseline shape)",
        DatasetId::kGithub, StreamKind::kUniform, 8, 200, 4, 5, true));

    v.push_back(MakeSpec(
        "powerlaw",
        "Chung-Lu degree-skewed growth on ST (preferential attachment)",
        DatasetId::kSkitter, StreamKind::kPowerLaw, 8, 200, 4, 5, true));

    ScenarioSpec temporal = MakeSpec(
        "temporal",
        "sliding-window insert/expire on NF (edge-labeled, window 3)",
        DatasetId::kNetflow, StreamKind::kTemporal, 10, 150, 3, 4, false);
    temporal.stream.window_batches = 3;
    v.push_back(temporal);

    ScenarioSpec burst = MakeSpec(
        "burst", "flash-crowd spikes on GH (every 4th batch 6x, crowded)",
        DatasetId::kGithub, StreamKind::kBurst, 8, 100, 4, 5, true);
    burst.stream.burst_factor = 6.0;
    burst.stream.burst_period = 4;
    v.push_back(burst);

    v.push_back(MakeSpec(
        "churn", "deletion-heavy turnover on AZ (65% deletes)",
        DatasetId::kAmazon, StreamKind::kChurn, 8, 200, 4, 5, true));

    // The replica layer's drill workload (docs/REPLICATION.md): a
    // churn-mix stream long enough that a mid-stream leader kill
    // leaves real WAL tail on both sides — checkpoint generations
    // switch and segments roll under the default replica policy
    // (checkpoint_every=8, segment_batches=256 — override via the
    // replicated(...) spec keys to stress rotation harder).  Drive it
    // with `bench_scenarios --scenario failover --failover-at K`.
    v.push_back(MakeSpec(
        "failover",
        "12-batch churn mix on GH for the leader-kill drill",
        DatasetId::kGithub, StreamKind::kChurn, 12, 120, 3, 4, true));

    v.push_back(MakeSpec(
        "hotspot", "hot-vertex concentration on LJ (1% of V, p=0.8)",
        DatasetId::kLiveJournal, StreamKind::kHotspot, 8, 200, 4, 5,
        true));

    // Many small heterogeneous queries: the MultiGamma-sharing /
    // ShardedEngine-placement stressor.
    v.push_back(MakeSpec(
        "multishare",
        "12 mixed-class queries on GH (MultiGamma/sharding stressor)",
        DatasetId::kGithub, StreamKind::kUniform, 6, 150, 12, 4, true));

    // ---- multi-tenant scenarios (serve/tenant_front_door.hpp) ----
    // These populate ScenarioSpec::tenants; drive them through a
    // tenancy-capable engine spec — bench_scenarios auto-wraps bare
    // specs in tenant(...) when the scenario has a mix.

    // Skewed but equally-entitled tenants: 8:4:2:1 traffic against
    // identical rate limits, so the heavy tenants overrun their
    // buckets and the fairness index shows how evenly service tracked
    // entitlement rather than demand.
    ScenarioSpec skew =
        MakeSpec("tenant-skew",
                 "4 tenants, 8:4:2:1 traffic, equal rate limits on GH",
                 DatasetId::kGithub, StreamKind::kUniform, 6, 120, 4, 4,
                 true);
    skew.tenants.roles = {
        MakeRole("t-heavy", PriorityClass::kSilver, 8.0, /*rate=*/40,
                 /*queue=*/256, /*budget=*/0),
        MakeRole("t-mid", PriorityClass::kSilver, 4.0, 40, 256, 0),
        MakeRole("t-low", PriorityClass::kSilver, 2.0, 40, 256, 0),
        MakeRole("t-tail", PriorityClass::kSilver, 1.0, 40, 256, 0),
    };
    v.push_back(skew);

    // The acceptance experiment: a small gold victim sharing the door
    // with a best-effort hog at ~6x its traffic.  Admission ON must
    // bound the victim's sojourn p99 near its solo run; admission OFF
    // (global FIFO) lets the hog's backlog stall it.
    ScenarioSpec noisy =
        MakeSpec("noisy-neighbor",
                 "gold victim vs 6x best-effort hog on GH (admission demo)",
                 DatasetId::kGithub, StreamKind::kUniform, 8, 160, 4, 4,
                 true);
    noisy.tenants.roles = {
        MakeRole("victim", PriorityClass::kGold, 1.0, /*rate=*/0,
                 /*queue=*/512, /*budget=*/0),
        MakeRole("hog", PriorityClass::kBestEffort, 6.0, /*rate=*/48,
                 /*queue=*/256, /*budget=*/0),
    };
    v.push_back(noisy);

    // Everyone bursts at once: flash-crowd stream against tight queue
    // bounds — the pump must shed deterministically instead of
    // blocking, and the SLO controller gets real pressure to adapt.
    ScenarioSpec storm =
        MakeSpec("overload-storm",
                 "3 tenants under 8x flash crowds on GH (shed/degrade)",
                 DatasetId::kGithub, StreamKind::kBurst, 9, 80, 3, 4,
                 true);
    storm.stream.burst_factor = 8.0;
    storm.stream.burst_period = 3;
    storm.tenants.roles = {
        MakeRole("s-gold", PriorityClass::kGold, 1.0, /*rate=*/64,
                 /*queue=*/192, /*budget=*/0),
        MakeRole("s-silver", PriorityClass::kSilver, 1.0, 64, 192, 0),
        MakeRole("s-floor", PriorityClass::kBestEffort, 1.0, 64, 192, 0),
    };
    v.push_back(storm);

    return v;
  }();
  return kScenarios;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : AllScenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<QueryGraph> BuildQuerySet(const LabeledGraph& g,
                                      const ScenarioSpec& spec,
                                      uint64_t seed) {
  QueryExtractor ex(g, DeriveSeed(seed, kSeedQueryExtract));
  static const QueryGraph::StructureClass kRotation[] = {
      QueryGraph::StructureClass::kSparse,
      QueryGraph::StructureClass::kTree,
      QueryGraph::StructureClass::kDense};
  std::vector<QueryGraph> queries;
  queries.reserve(spec.num_queries);
  for (size_t i = 0; i < spec.num_queries; ++i) {
    QueryGraph::StructureClass cls =
        spec.mixed_classes ? kRotation[i % 3] : spec.query_class;
    auto q = ex.Extract(spec.query_size, cls);
    // Dense (and occasionally Sparse) can be unsamplable on sparse
    // twins; degrade gracefully rather than shrink the set.
    if (!q && cls != QueryGraph::StructureClass::kSparse) {
      q = ex.Extract(spec.query_size, QueryGraph::StructureClass::kSparse);
    }
    if (!q) {
      q = ex.Extract(spec.query_size, QueryGraph::StructureClass::kTree);
    }
    if (q) queries.push_back(std::move(*q));
  }
  return queries;
}

}  // namespace bdsm::workload
