/// \file timer.hpp
/// Wall-clock and thread-CPU timing helpers for the benchmark and
/// serving harnesses.
#pragma once

#include <chrono>
#include <ctime>

namespace bdsm {

/// Monotonic stopwatch.  Construction starts it; Elapsed* reads it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU seconds consumed by the *calling thread* so far.  Unlike wall
/// time, this is unaffected by how many other threads share the cores,
/// so per-task measurements stay meaningful on oversubscribed hosts
/// (the serving layer's critical-path accounting relies on this).
inline double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Stopwatch over ThreadCpuSeconds().  Only valid when started and
/// read on the same thread.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(ThreadCpuSeconds()) {}
  void Reset() { start_ = ThreadCpuSeconds(); }
  double ElapsedSeconds() const { return ThreadCpuSeconds() - start_; }

 private:
  double start_;
};

}  // namespace bdsm
