/// \file rng.hpp
/// Deterministic pseudo-random generation for dataset synthesis and tests.
///
/// Everything in GAMMA that is random is seeded explicitly so that every
/// experiment and every property test is exactly reproducible (see
/// docs/ARCHITECTURE.md, "Determinism conventions").
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace bdsm {

/// The SplitMix64 finalizer: the standard cheap, well-distributed
/// 64-bit mixer (also used as the seed expander below and by
/// DeriveSeed).
inline uint64_t SplitMix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xorshift128+ generator: tiny state, passes BigCrush for our purposes,
/// and much faster than std::mt19937 for the bulk sampling the dataset
/// generators do.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the two state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      return SplitMix64(seed);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformReal() < p; }

  /// Uniformly pick an element index of a non-empty container size.
  template <typename Container>
  size_t PickIndex(const Container& c) {
    return static_cast<size_t>(Uniform(c.size()));
  }

 private:
  uint64_t s0_, s1_;
};

/// Deterministically derives an independent sub-seed from a master seed
/// and a stable stream id (SplitMix64 over the pair).  The workload
/// layer routes one user-facing `--seed` through this to give each
/// consumer (stream generator, query extractor, ...) its own
/// decorrelated RNG stream: changing one consumer's draws never
/// perturbs another's (see src/workload/scenario.hpp for the id
/// registry and docs/WORKLOADS.md for the convention).
inline uint64_t DeriveSeed(uint64_t master, uint64_t stream_id) {
  return SplitMix64(master + 0x9e3779b97f4a7c15ull * (stream_id + 1));
}

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`.
/// Used to reproduce the skewed label distributions of the Netflow and
/// LSBench datasets (Table II) where one edge label dominates.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) norm += 1.0 / std::pow(double(i + 1), s);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(double(i + 1), s) / norm;
      cdf_[i] = acc;
    }
    if (!cdf_.empty()) cdf_.back() = 1.0;
  }

  /// Sample a rank; rank 0 is the most frequent.
  size_t Sample(Rng& rng) const {
    double x = rng.UniformReal();
    // Binary search over the CDF.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < x)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace bdsm
