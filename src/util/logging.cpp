#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bdsm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// BDSM_LOG_LEVEL hook: parsed exactly once, at the first call that
/// consults the threshold, so the env var works without any init call
/// but an explicit SetLogLevel beforehand still wins (last writer).
void InitLevelFromEnvOnce() {
  static const bool parsed = [] {
    const char* env = std::getenv("BDSM_LOG_LEVEL");
    if (env == nullptr || env[0] == '\0') return false;
    LogLevel level;
    if (!ParseLogLevel(env, &level)) {
      std::fprintf(stderr,
                   "[WARN] unrecognized BDSM_LOG_LEVEL \"%s\" ignored "
                   "(want debug|info|warn|error or 0-3)\n",
                   env);
      return false;
    }
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
    return true;
  }();
  (void)parsed;
}
}  // namespace

bool ParseLogLevel(const std::string& value, LogLevel* out) {
  std::string v;
  v.reserve(value.size());
  for (char c : value) {
    v.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (v == "debug" || v == "0") {
    *out = LogLevel::kDebug;
  } else if (v == "info" || v == "1") {
    *out = LogLevel::kInfo;
  } else if (v == "warn" || v == "warning" || v == "2") {
    *out = LogLevel::kWarn;
  } else if (v == "error" || v == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  // Ensure the env parse (if any) happens first, so this explicit call
  // wins over it regardless of call order.
  InitLevelFromEnvOnce();
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  InitLevelFromEnvOnce();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const char* fmt, ...) {
  InitLevelFromEnvOnce();
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), buf);
}

}  // namespace bdsm
