#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace bdsm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), buf);
}

}  // namespace bdsm
