/// \file bitset.hpp
/// Dynamic bitset used for vertex encodings and the candidate table.
///
/// The paper's preprocessing (Fig. 4) represents each vertex as a K-bit
/// code and filters candidates with a bitwise AND; this class is that
/// K-bit code.  It is deliberately simple: contiguous 64-bit words,
/// branch-free AND-superset test.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace bdsm {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }
  size_t num_words() const { return words_.size(); }

  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  void Set(size_t i) { words_[i >> 6] |= (1ull << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }
  void Reset() { std::memset(words_.data(), 0, words_.size() * 8); }

  /// True iff every bit set in `other` is also set in *this
  /// (i.e. (other & *this) == other) — the GSI candidate test
  /// "ENC(u) AND ENC(v) == ENC(u)" with u=other, v=*this.
  bool Contains(const Bitset& other) const {
    GAMMA_CHECK(other.words_.size() == words_.size());
    for (size_t w = 0; w < words_.size(); ++w) {
      if ((other.words_[w] & words_[w]) != other.words_[w]) return false;
    }
    return true;
  }

  size_t PopCount() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  uint64_t word(size_t i) const { return words_[i]; }
  void set_word(size_t i, uint64_t w) { words_[i] = w; }

  friend bool operator==(const Bitset&, const Bitset&) = default;

  /// Debug rendering as '0'/'1' string, LSB first.
  std::string ToString() const {
    std::string s;
    s.reserve(bits_);
    for (size_t i = 0; i < bits_; ++i) s.push_back(Test(i) ? '1' : '0');
    return s;
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bdsm
