/// \file stats.hpp
/// Small statistics accumulators shared by the benchmark harnesses and the
/// GPU simulator's utilization accounting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bdsm {

/// Streaming mean/min/max/sum accumulator.
class StatAccumulator {
 public:
  void Add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples so benchmarks can report percentiles; kept trivially
/// simple (sorting on demand) since sample counts are small.
class Samples {
 public:
  void Add(double x) { xs_.push_back(x); }
  size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double Mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double Percentile(double p) const {
    if (xs_.empty()) return 0.0;
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

 private:
  std::vector<double> xs_;
};

}  // namespace bdsm
