/// \file common.hpp
/// Project-wide fundamental types and checking macros.
///
/// GAMMA uses 32-bit vertex ids and label ids throughout: the paper's
/// datasets (after scaling) fit comfortably, and narrow ids halve the
/// memory traffic of adjacency scans, which is the dominant cost in
/// subgraph matching.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace bdsm {

/// Identifier of a data-graph or query-graph vertex.
using VertexId = uint32_t;
/// Vertex or edge label drawn from the alphabet Sigma.
using Label = uint32_t;
/// Wide counter type for match counts (result sets can be huge).
using Count = uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
/// Sentinel for "no label" / unlabeled.
inline constexpr Label kNoLabel = std::numeric_limits<Label>::max();

/// An undirected edge as an ordered pair (min endpoint first) so that a
/// given undirected edge has exactly one canonical representation.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  Edge() = default;
  Edge(VertexId a, VertexId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// 64-bit key packing for edges; used as hash-map keys and as GPMA keys.
inline constexpr uint64_t PackEdge(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline constexpr VertexId EdgeSrc(uint64_t key) {
  return static_cast<VertexId>(key >> 32);
}
inline constexpr VertexId EdgeDst(uint64_t key) {
  return static_cast<VertexId>(key & 0xffffffffu);
}

struct EdgeHash {
  size_t operator()(const Edge& e) const noexcept {
    uint64_t k = PackEdge(e.u, e.v);
    // SplitMix64 finalizer: cheap and well distributed.
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(k ^ (k >> 31));
  }
};

/// Abort with a message when an internal invariant is violated.  Used for
/// programming errors, not user errors (compare Arrow's DCHECK discipline);
/// kept on in release builds because this is a research system where a
/// wrong answer is worse than a crash.
#define GAMMA_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::fprintf(stderr, "GAMMA_CHECK failed: %s at %s:%d\n", #cond,   \
                     __FILE__, __LINE__);                                  \
      ::std::abort();                                                      \
    }                                                                      \
  } while (0)

#define GAMMA_CHECK_MSG(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::std::fprintf(stderr, "GAMMA_CHECK failed: %s (%s) at %s:%d\n",     \
                     #cond, (msg), __FILE__, __LINE__);                    \
      ::std::abort();                                                      \
    }                                                                      \
  } while (0)

}  // namespace bdsm
