/// \file logging.hpp
/// Minimal leveled logging to stderr.
///
/// The benchmark harnesses print their tables to stdout; everything
/// diagnostic goes through here so the two streams never mix.
///
/// The threshold defaults to kInfo and can be set three ways, last
/// writer wins: the BDSM_LOG_LEVEL environment variable (parsed once,
/// lazily, at the first Log/GetLogLevel call — "debug", "info",
/// "warn"/"warning", "error", case-insensitive, or a numeric 0-3),
/// SetLogLevel() from code, or nothing (the default).
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>

namespace bdsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.  Defaults to kInfo
/// (or BDSM_LOG_LEVEL when set — see the file comment).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses one BDSM_LOG_LEVEL value ("debug" | "info" | "warn" |
/// "warning" | "error", case-insensitive, or "0".."3").  Returns false
/// (leaving `*out` alone) for anything else — exposed for direct unit
/// testing; the env hook uses exactly this.
bool ParseLogLevel(const std::string& value, LogLevel* out);

/// printf-style logging.  Thread-safe (single write call per message).
void Log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GAMMA_LOG_DEBUG(...) ::bdsm::Log(::bdsm::LogLevel::kDebug, __VA_ARGS__)
#define GAMMA_LOG_INFO(...) ::bdsm::Log(::bdsm::LogLevel::kInfo, __VA_ARGS__)
#define GAMMA_LOG_WARN(...) ::bdsm::Log(::bdsm::LogLevel::kWarn, __VA_ARGS__)
#define GAMMA_LOG_ERROR(...) ::bdsm::Log(::bdsm::LogLevel::kError, __VA_ARGS__)

/// Rate-limited logging for per-op/per-batch diagnostics: emits the
/// 1st, (n+1)th, (2n+1)th... execution of this *call site* (each use
/// owns a static counter), appending "(seen N times)" from the second
/// emission on so dropped repeats stay accounted for.
///
///   GAMMA_LOG_EVERY_N(WARN, 100, "segment %zu overflowed", seg);
#define GAMMA_LOG_EVERY_N(severity, n, fmt, ...)                          \
  do {                                                                    \
    static ::std::atomic<uint64_t> gamma_log_count_{0};                   \
    const uint64_t gamma_log_seen_ =                                      \
        gamma_log_count_.fetch_add(1, ::std::memory_order_relaxed) + 1;   \
    if ((gamma_log_seen_ - 1) % (n) == 0) {                               \
      if (gamma_log_seen_ == 1) {                                         \
        GAMMA_LOG_##severity(fmt, ##__VA_ARGS__);                         \
      } else {                                                            \
        GAMMA_LOG_##severity(fmt " (seen %llu times)", ##__VA_ARGS__,     \
                             static_cast<unsigned long long>(             \
                                 gamma_log_seen_));                       \
      }                                                                   \
    }                                                                     \
  } while (0)

}  // namespace bdsm
