/// \file logging.hpp
/// Minimal leveled logging to stderr.
///
/// The benchmark harnesses print their tables to stdout; everything
/// diagnostic goes through here so the two streams never mix.
#pragma once

#include <cstdarg>
#include <string>

namespace bdsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.  Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style logging.  Thread-safe (single write call per message).
void Log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GAMMA_LOG_DEBUG(...) ::bdsm::Log(::bdsm::LogLevel::kDebug, __VA_ARGS__)
#define GAMMA_LOG_INFO(...) ::bdsm::Log(::bdsm::LogLevel::kInfo, __VA_ARGS__)
#define GAMMA_LOG_WARN(...) ::bdsm::Log(::bdsm::LogLevel::kWarn, __VA_ARGS__)
#define GAMMA_LOG_ERROR(...) ::bdsm::Log(::bdsm::LogLevel::kError, __VA_ARGS__)

}  // namespace bdsm
