/// \file encoder.hpp
/// Preprocessing: GSI-style K-bit vertex encoding and the candidate
/// table (paper §IV-B, Fig. 4).
///
/// Each vertex is a K-bit code: the first N bits one-hot encode the
/// vertex label over the labels *the query actually uses* (the paper's
/// refinement of GSI — absent labels get no bits), and the remaining 2N
/// bits hold a 2-bit *thermometer* counter of neighbors per used label
/// (0 -> 00, 1 -> 01, >=2 -> 11).  Thermometer encoding is what makes
/// the bitwise test sound: ENC(u) & ENC(v) == ENC(u) implies both the
/// label match and per-label neighbor-count dominance |N^l(v)| >= |N^l(u)|
/// (saturated at 2 — the paper's explicit space/filtering trade-off:
/// v0's encoding not changing after e(v0,v2) in Fig. 4 is this
/// saturation).
///
/// The candidate table is one 16-bit mask per data vertex: bit j set iff
/// the vertex is a candidate for query vertex u_j.  Batch updates only
/// re-encode the *dirty* vertices (update endpoints), mirroring the
/// incremental maintenance of "Encoding of dynamic graphs".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

class CandidateEncoder {
 public:
  /// Binds the encoder to a query (fixes the used-label alphabet and the
  /// query-vertex codes).  Queries use at most kMaxQueryVertices labels,
  /// so a code always fits in one 64-bit word (N + 2N <= 48 bits).
  explicit CandidateEncoder(const QueryGraph& q);

  /// Encodes every data vertex and fills the candidate table.  O(|V| d).
  void BuildAll(const LabeledGraph& g);

  /// Re-encodes only `dirty` vertices (deduplicated internally) against
  /// the *current* state of g and refreshes their table rows.
  void UpdateDirty(const LabeledGraph& g, std::span<const VertexId> dirty);

  /// Convenience: dirty set of a batch = all endpoint vertices.
  void ApplyBatchDirty(const LabeledGraph& g, const UpdateBatch& batch);

  /// True iff data vertex v passed the filter for query vertex u.
  bool IsCandidate(VertexId v, VertexId u) const {
    return (table_[v] >> u) & 1u;
  }

  /// Label-only test (the relaxed filter the coalesced search uses
  /// during the V^k phase, where a position's full-query neighbor-count
  /// constraints may involve removed vertices and thus differ between
  /// the representative and its permutation siblings — see the paper's
  /// Remark in §V-B about V^k vertices "losing specific label
  /// constraints").
  bool HasSameLabel(VertexId v, VertexId u) const {
    uint64_t label_mask = (1ull << used_labels_.size()) - 1;
    return (codes_[v] & label_mask) == (qcodes_[u] & label_mask);
  }
  /// All query vertices v is a candidate for, as a bitmask.
  uint16_t CandidateMask(VertexId v) const { return table_[v]; }

  /// Number of candidates of query vertex u (linear scan; stats/tests).
  size_t CountCandidates(VertexId u) const;

  uint64_t VertexCode(VertexId v) const { return codes_[v]; }
  uint64_t QueryCode(VertexId u) const { return qcodes_[u]; }
  size_t CodeBits() const { return 3 * used_labels_.size(); }

 private:
  uint64_t EncodeDataVertex(const LabeledGraph& g, VertexId v) const;
  // Label -> index in used_labels_, or -1.
  int LabelIndex(Label l) const;
  uint16_t ComputeMask(uint64_t code) const;

  std::vector<Label> used_labels_;
  std::vector<uint64_t> qcodes_;   ///< per query vertex
  size_t num_query_vertices_ = 0;
  std::vector<uint64_t> codes_;    ///< per data vertex
  std::vector<uint16_t> table_;    ///< candidate table rows
};

/// Thermometer pattern for a neighbor count (exposed for tests).
inline uint64_t ThermometerBits2(size_t count) {
  if (count == 0) return 0b00;
  if (count == 1) return 0b01;
  return 0b11;
}

}  // namespace bdsm
