/// \file bfs_kernel.hpp
/// BFS-based matching kernel — the design alternative §IV-C rejects.
///
/// BFS expands all partial matches of a level before moving to the next,
/// materializing every intermediate frontier in device memory.  That is
/// the classic GPU pattern (maximal parallelism, coalesced expansion)
/// and also the reason the paper rejects it: frontiers grow
/// geometrically, exhaust device memory, and force host<->device spills
/// whose transfer time dominates (Fig. 5).  This kernel exists to
/// regenerate that figure and as a differential check against WBM
/// (identical result multisets).
///
/// Coalesced search is not applicable to the frontier representation, so
/// callers must pass a QueryContext built with coalesced_search = false.
#pragma once

#include <memory>
#include <vector>

#include "core/wbm_kernel.hpp"

namespace bdsm {

struct BfsResult {
  std::vector<MatchRecord> matches;
  DeviceStats stats;
  /// Device-memory occupancy (percent of capacity, >100 = spilling)
  /// sampled after every frontier expansion, in expansion order — the
  /// series plotted in Fig. 5(a).
  std::vector<double> memory_samples;
};

/// Runs the BFS kernel for `seeds` on `device`.  Frontier buffers are
/// allocated through the device allocator; bytes beyond capacity spill
/// and are billed as host<->device transfer time.
BfsResult RunBfsKernel(Device& device, const WbmEnv& env,
                       const std::vector<SeedEdge>& seeds);

}  // namespace bdsm
