#include "core/automorphism.hpp"

#include <algorithm>
#include <map>

namespace bdsm {

namespace {

constexpr size_t kMaxBacktrackNodes = 20000;
constexpr size_t kMaxAutomorphisms = 256;
/// The engine enumerates k-degenerated subgraphs for k up to this bound.
/// k = 1 matches the paper's running example; beyond that the V^k-first
/// matching-order constraint and the deferred (relaxed) candidate checks
/// cost more than the shared traversal saves on the scaled datasets.
constexpr uint32_t kMaxDegeneration = 1;

struct AutoSearch {
  const QueryGraph& q;
  std::vector<VertexId> verts;  // kept vertices, ascending
  uint16_t mask;
  std::vector<Permutation>* out;
  Permutation current;
  uint16_t used = 0;  // images already taken
  size_t nodes = 0;
  bool aborted = false;

  bool Compatible(VertexId x, VertexId img, size_t depth) const {
    if (q.VertexLabel(x) != q.VertexLabel(img)) return false;
    // Check induced adjacency (and edge labels) against assigned vertices.
    for (size_t i = 0; i < depth; ++i) {
      VertexId y = verts[i];
      bool e1 = q.HasEdge(x, y);
      bool e2 = q.HasEdge(img, current[y]);
      if (e1 != e2) return false;
      if (e1 &&
          q.EdgeLabelBetween(x, y) != q.EdgeLabelBetween(img, current[y])) {
        return false;
      }
    }
    return true;
  }

  void Recurse(size_t depth) {
    if (aborted) return;
    if (++nodes > kMaxBacktrackNodes || out->size() >= kMaxAutomorphisms) {
      aborted = true;
      return;
    }
    if (depth == verts.size()) {
      out->push_back(current);
      return;
    }
    VertexId x = verts[depth];
    for (VertexId img : verts) {
      if ((used >> img) & 1u) continue;
      if (!Compatible(x, img, depth)) continue;
      current[x] = img;
      used |= static_cast<uint16_t>(1u << img);
      Recurse(depth + 1);
      used &= static_cast<uint16_t>(~(1u << img));
      if (aborted) return;
    }
  }
};

Permutation IdentityOn(uint16_t mask) {
  Permutation p;
  p.fill(kInvalidVertex);
  for (VertexId v = 0; v < kMaxQueryVertices; ++v) {
    if ((mask >> v) & 1u) p[v] = v;
  }
  return p;
}

Permutation InverseOn(const Permutation& p, uint16_t mask) {
  Permutation inv;
  inv.fill(kInvalidVertex);
  for (VertexId v = 0; v < kMaxQueryVertices; ++v) {
    if ((mask >> v) & 1u) inv[p[v]] = v;
  }
  return inv;
}

/// (f o g): x -> f(g(x)), defined on mask.
Permutation ComposeOn(const Permutation& f, const Permutation& g,
                      uint16_t mask) {
  Permutation r;
  r.fill(kInvalidVertex);
  for (VertexId v = 0; v < kMaxQueryVertices; ++v) {
    if ((mask >> v) & 1u) r[v] = f[g[v]];
  }
  return r;
}

/// Candidate group before rule filtering.
struct RawGroup {
  uint16_t mask;
  uint32_t k;
  // Directed pairs of one orbit with, for each, the automorphism mapping
  // the base pair onto it (base = element 0, sigma = identity).
  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::vector<Permutation> sigmas;
};

/// Dominance score of a directed pair: seed at the most constrained
/// endpoints first (paper's "prioritized query edge").
uint64_t PairScore(const QueryGraph& q, std::pair<VertexId, VertexId> d) {
  return (static_cast<uint64_t>(q.Degree(d.first) + q.Degree(d.second))
          << 8) |
         (15 - d.first);  // deterministic tie-break
}

}  // namespace

std::vector<Permutation> InducedAutomorphisms(const QueryGraph& q,
                                              uint16_t mask) {
  std::vector<Permutation> out;
  AutoSearch search{q, {}, mask, &out, IdentityOn(mask)};
  for (VertexId v = 0; v < q.NumVertices(); ++v) {
    if ((mask >> v) & 1u) search.verts.push_back(v);
  }
  search.current.fill(kInvalidVertex);
  search.Recurse(0);
  if (search.aborted) {
    // Too symmetric to enumerate cheaply: report only the identity, which
    // disables coalesced search for this subgraph.
    out.clear();
    out.push_back(IdentityOn(mask));
  }
  return out;
}

std::vector<EquivalentEdgeGroup> ComputeEquivalentEdgeGroups(
    const QueryGraph& q, bool only_degree1_removals) {
  const uint32_t nq = static_cast<uint32_t>(q.NumVertices());
  std::vector<EquivalentEdgeGroup> result;
  if (nq < 2) return result;
  const uint16_t full = static_cast<uint16_t>((1u << nq) - 1);

  // Collect raw orbit groups per k.
  std::vector<std::vector<RawGroup>> by_k(
      std::min(kMaxDegeneration, nq - 2) + 1);
  for (uint16_t removed = 0; removed < (1u << nq); ++removed) {
    uint32_t k = static_cast<uint32_t>(__builtin_popcount(removed));
    if (k >= by_k.size()) continue;
    uint16_t mask = full & static_cast<uint16_t>(~removed);
    if (__builtin_popcount(mask) < 2) continue;
    if (only_degree1_removals && removed != 0) {
      bool ok = true;
      for (VertexId v = 0; v < nq; ++v) {
        if (((removed >> v) & 1u) && q.Degree(v) != 1) ok = false;
      }
      if (!ok) continue;
    }
    // Need at least one induced edge.
    bool has_edge = false;
    for (const QueryEdge& e : q.edges()) {
      if (((mask >> e.u1) & 1u) && ((mask >> e.u2) & 1u)) {
        has_edge = true;
        break;
      }
    }
    if (!has_edge) continue;

    std::vector<Permutation> autos = InducedAutomorphisms(q, mask);
    if (autos.size() < 2) continue;  // only the identity: nothing to share

    // Directed-pair orbits under the group.
    std::map<std::pair<VertexId, VertexId>, size_t> seen;  // pair -> group#
    for (const QueryEdge& e : q.edges()) {
      if (!((mask >> e.u1) & 1u) || !((mask >> e.u2) & 1u)) continue;
      for (auto base : {std::make_pair(e.u1, e.u2),
                        std::make_pair(e.u2, e.u1)}) {
        if (seen.count(base)) continue;
        RawGroup grp;
        grp.mask = mask;
        grp.k = k;
        for (const Permutation& s : autos) {
          std::pair<VertexId, VertexId> img{s[base.first], s[base.second]};
          if (!seen.count(img)) {
            seen[img] = 1;
            grp.pairs.push_back(img);
            grp.sigmas.push_back(s);
          }
        }
        if (grp.pairs.size() >= 2) by_k[k].push_back(std::move(grp));
      }
    }
  }

  // Apply the overlap rules.  Rule 1: smaller k wins (process k
  // ascending, skip already-assigned pairs).  Rule 2: within one k, the
  // larger orbit wins (sort descending by orbit size).
  std::map<std::pair<VertexId, VertexId>, bool> assigned;
  for (auto& groups : by_k) {
    std::stable_sort(groups.begin(), groups.end(),
                     [](const RawGroup& a, const RawGroup& b) {
                       return a.pairs.size() > b.pairs.size();
                     });
    for (RawGroup& grp : groups) {
      // Surviving pairs of the orbit.
      std::vector<size_t> keep;
      for (size_t i = 0; i < grp.pairs.size(); ++i) {
        if (!assigned.count(grp.pairs[i])) keep.push_back(i);
      }
      if (keep.size() < 2) continue;  // nothing left to coalesce

      // Prioritized representative: most constrained endpoints.
      size_t rep = keep[0];
      for (size_t i : keep) {
        if (PairScore(q, grp.pairs[i]) > PairScore(q, grp.pairs[rep])) {
          rep = i;
        }
      }

      EquivalentEdgeGroup out;
      out.vertex_mask = grp.mask;
      out.k = grp.k;
      out.directed_orbit.push_back(grp.pairs[rep]);
      Permutation rep_sigma = grp.sigmas[rep];  // base -> rep
      for (size_t i : keep) {
        if (i == rep) continue;
        out.directed_orbit.push_back(grp.pairs[i]);
        // sigma_{rep->d} = sigma_d o rep_sigma^{-1};  the kernel wants
        // its inverse: rep_sigma o sigma_d^{-1}.
        Permutation inv_d = InverseOn(grp.sigmas[i], grp.mask);
        out.perms.push_back(ComposeOn(rep_sigma, inv_d, grp.mask));
      }
      for (const auto& d : out.directed_orbit) assigned[d] = true;
      result.push_back(std::move(out));
    }
  }
  return result;
}

}  // namespace bdsm
