#include "core/tenant.hpp"

#include <algorithm>
#include <cctype>

namespace bdsm {

const char* PriorityClassName(PriorityClass c) {
  switch (c) {
    case PriorityClass::kGold:
      return "gold";
    case PriorityClass::kSilver:
      return "silver";
    case PriorityClass::kBestEffort:
      return "best_effort";
  }
  return "silver";
}

bool PriorityClassFromName(const std::string& name, PriorityClass* out) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  if (lower == "gold") {
    *out = PriorityClass::kGold;
  } else if (lower == "silver") {
    *out = PriorityClass::kSilver;
  } else if (lower == "best_effort" || lower == "besteffort" ||
             lower == "be") {
    *out = PriorityClass::kBestEffort;
  } else {
    return false;
  }
  return true;
}

std::string ValidPriorityClassNames() { return "best_effort, gold, silver"; }

double JainIndex(const std::vector<double>& shares) {
  double sum = 0.0, sumsq = 0.0;
  size_t n = 0;
  for (double x : shares) {
    sum += x;
    sumsq += x * x;
    ++n;
  }
  if (n == 0 || sumsq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sumsq);
}

}  // namespace bdsm
