/// \file match.hpp
/// Incremental-match record types shared by GAMMA and the baselines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/query_graph.hpp"
#include "util/common.hpp"

namespace bdsm {

/// One subgraph isomorphism: m[u] is the data vertex matched to query
/// vertex u.  `positive` distinguishes matches created by the batch from
/// matches destroyed by it.
struct MatchRecord {
  std::array<VertexId, kMaxQueryVertices> m;
  uint8_t n = 0;       ///< |V(Q)|
  bool positive = true;

  MatchRecord() { m.fill(kInvalidVertex); }

  friend bool operator==(const MatchRecord&, const MatchRecord&) = default;

  /// Canonical key for set comparisons in tests.
  std::string Key() const {
    std::string s;
    s.reserve(n * 9 + 1);
    s.push_back(positive ? '+' : '-');
    for (uint8_t i = 0; i < n; ++i) {
      s += std::to_string(m[i]);
      s.push_back(',');
    }
    return s;
  }
};

/// Sorted canonical keys of a match list (order-insensitive comparison).
std::vector<std::string> CanonicalKeys(const std::vector<MatchRecord>& ms);

}  // namespace bdsm
