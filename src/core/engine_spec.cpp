#include "core/engine_spec.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace bdsm {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

bool IsValueChar(char c) {
  return IsNameChar(c) || c == '.' || c == '+';
}

std::string Lower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// Strips surrounding whitespace so the legacy desugarer sees the bare
/// spec, matching the tolerance the canonical parser already has.
std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

[[noreturn]] void Fail(const std::string& text, size_t pos,
                       const std::string& why) {
  throw EngineSpecError("bad engine spec \"" + text + "\" at position " +
                        std::to_string(pos) + ": " + why);
}

/// Recursive-descent parser over the lower-cased spec text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  EngineSpec ParseTop() {
    SkipWs();
    EngineSpec spec = ParseSpec();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail(text_, pos_,
           "trailing garbage \"" + text_.substr(pos_) + "\" after spec");
    }
    return spec;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string Token(bool (*accept)(char), const char* what) {
    size_t start = pos_;
    while (pos_ < text_.size() && accept(text_[pos_])) ++pos_;
    if (pos_ == start) {
      Fail(text_, pos_,
           std::string("expected ") + what +
               (pos_ < text_.size()
                    ? " before '" + std::string(1, text_[pos_]) + "'"
                    : " before end of spec"));
    }
    return text_.substr(start, pos_ - start);
  }

  EngineSpec ParseSpec() {
    EngineSpec spec;
    spec.name = Token(IsNameChar, "an engine name");
    SkipWs();
    if (Peek() == '(') ParseArgList(&spec);
    return spec;
  }

  /// `'(' arg (',' arg)* ')'` — the opening paren is at pos_.
  void ParseArgList(EngineSpec* spec) {
    ++pos_;  // '('
    SkipWs();
    if (Peek() == ')') {
      Fail(text_, pos_, "empty argument list (drop the parentheses)");
    }
    for (;;) {
      ParseArg(spec);
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (Peek() == ')') {
        ++pos_;
        return;
      }
      Fail(text_, pos_, "expected ',' or ')' in argument list");
    }
  }

  /// One argument: a nested spec, or `key=value`.  Both start with a
  /// name token, so parse it first and disambiguate on the next char.
  void ParseArg(EngineSpec* spec) {
    std::string head = Token(IsNameChar, "an argument");
    SkipWs();
    if (Peek() == '=') {
      ++pos_;
      SkipWs();
      std::string value = Token(IsValueChar, "an option value");
      spec->options.emplace_back(std::move(head), std::move(value));
      return;
    }
    EngineSpec child;
    child.name = std::move(head);
    if (Peek() == '(') ParseArgList(&child);
    spec->children.push_back(std::move(child));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Desugars the legacy composite form `prefix:inner[\@N]` (e.g.
/// "sharded:gamma\@8") into canonical text.  Only the one historical
/// shape is accepted; anything else with ':' or '\@' is an error.
std::string DesugarLegacy(const std::string& text) {
  size_t colon = text.find(':');
  size_t at = text.find('@');
  if (colon == std::string::npos && at == std::string::npos) return text;
  if (colon == std::string::npos || text.rfind(':') != colon) {
    Fail(text, at == std::string::npos ? colon : at,
         "legacy composite specs have the shape \"prefix:inner[@N]\"");
  }
  std::string prefix = text.substr(0, colon);
  std::string rest = text.substr(colon + 1);
  std::string shards;
  at = rest.find('@');
  if (at != std::string::npos) {
    shards = rest.substr(at + 1);
    rest = rest.substr(0, at);
    if (shards.empty() ||
        shards.find_first_not_of("0123456789") != std::string::npos ||
        shards == "0") {
      Fail(text, colon + 1 + at + 1,
           "\"@\" must be followed by a positive shard count");
    }
  }
  auto is_plain_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (!IsNameChar(c)) return false;
    }
    return true;
  };
  if (!is_plain_name(prefix) || !is_plain_name(rest)) {
    Fail(text, colon + 1,
         "legacy composite specs are plain \"prefix:inner[@N]\" names "
         "and do not nest; use the canonical \"wrapper(inner, ...)\" "
         "form");
  }
  std::string out = prefix + "(" + rest;
  if (!shards.empty()) out += ", shards=" + shards;
  out += ")";
  return out;
}

}  // namespace

EngineSpec EngineSpec::Parse(const std::string& text) {
  std::string canonical = DesugarLegacy(Trim(Lower(text)));
  return Parser(canonical).ParseTop();
}

std::string EngineSpec::ToString() const {
  std::string out = name;
  if (children.empty() && options.empty()) return out;
  out += "(";
  bool first = true;
  for (const EngineSpec& child : children) {
    if (!first) out += ", ";
    out += child.ToString();
    first = false;
  }
  for (const auto& [key, value] : options) {
    if (!first) out += ", ";
    out += key + "=" + value;
    first = false;
  }
  out += ")";
  return out;
}

const std::string* EngineSpec::FindOption(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : options) {
    if (k == key) found = &v;
  }
  return found;
}

bool ParseSizeValue(const std::string& text, size_t* out) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseDoubleValue(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseBoolValue(const std::string& text, bool* out) {
  if (text == "true" || text == "on" || text == "yes" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "off" || text == "no" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace bdsm
