#include "core/wbm_kernel.hpp"

#include <algorithm>

#include "core/candidate_gen.hpp"

namespace bdsm {

namespace {

class WbmTask : public WarpTask {
 public:
  WbmTask(const WbmEnv* env, SeedEdge seed,
          std::vector<MatchRecord>* out, size_t plan_begin, size_t plan_end)
      : env_(env),
        seed_(seed),
        out_(out),
        plan_idx_(plan_begin),
        plan_end_(plan_end) {
    m_.fill(kInvalidVertex);
    frames_.resize(env_->qctx->q.NumVertices());
  }

  bool Step(WarpContext& ctx) override {
    if (env_->overflowed &&
        env_->overflowed->load(std::memory_order_relaxed)) {
      return false;  // launch-wide result cap hit: abandon the task
    }
    if (!dfs_active_) return AdvanceWork(ctx);

    const size_t nq = plan_->order.size();
    Frame& f = frames_[cur_];
    if (!f.ready) {
      GenFrame(ctx);
      return true;
    }
    if (f.next < f.cands.size()) {
      if (cur_ == nq - 1) {
        // Terminal level: every remaining candidate is a complete match
        // (Algorithm 1 lines 9-11).
        VertexId uq = plan_->order[cur_];
        for (; f.next < f.cands.size(); ++f.next) {
          m_[uq] = f.cands[f.next];
          EmitMatch(ctx);
        }
        m_[uq] = kInvalidVertex;
        return true;  // next step backtracks
      }
      VertexId v = f.cands[f.next++];
      m_[plan_->order[cur_]] = v;
      ++cur_;
      frames_[cur_].ready = false;
      if (!plan_->perms.empty() && cur_ == plan_->vk_size &&
          plan_->vk_size < nq) {
        SpawnSiblings(ctx);
        // The identity variant must itself pass the deferred full
        // candidate test before its R^k extension.
        if (!ValidatePrefixBits(ctx)) {
          frames_[cur_].cands.clear();
          frames_[cur_].next = 0;
          frames_[cur_].ready = true;  // empty frame => backtrack next step
        }
      }
      return true;
    }
    // Frame exhausted: backtrack (Algorithm 1 lines 12-13 / 21-22).
    f.ready = false;
    if (cur_ == floor_) {
      dfs_active_ = false;
      return true;
    }
    --cur_;
    m_[plan_->order[cur_]] = kInvalidVertex;
    return true;
  }

  uint64_t EstimateRemaining() const override {
    uint64_t rem = 0;
    if (dfs_active_) {
      for (uint32_t l = floor_; l <= cur_; ++l) {
        rem += frames_[l].ready
                   ? frames_[l].cands.size() - frames_[l].next
                   : 1;
      }
    }
    rem += siblings_.size() * 4;
    rem += (plan_end_ - plan_idx_) * 8;
    return rem;
  }

  std::unique_ptr<WarpTask> StealHalf() override {
    // Prefer the coarsest splittable granularity: whole plans, then
    // pending coalesced siblings, then the shallowest candidate range
    // (the paper's Example 3: steal unexplored candidates along with
    // their parents).
    if (plan_end_ - plan_idx_ >= 2) {
      size_t mid = plan_idx_ + (plan_end_ - plan_idx_) / 2;
      auto clone =
          std::make_unique<WbmTask>(env_, seed_, out_, mid, plan_end_);
      plan_end_ = mid;
      return clone;
    }
    if (siblings_.size() >= 2) {
      auto clone = std::make_unique<WbmTask>(env_, seed_, out_, 0, 0);
      clone->plan_ = plan_;
      size_t half = siblings_.size() / 2;
      clone->siblings_.assign(siblings_.end() - half, siblings_.end());
      siblings_.resize(siblings_.size() - half);
      return clone;
    }
    if (dfs_active_) {
      for (uint32_t l = floor_; l <= cur_; ++l) {
        Frame& f = frames_[l];
        if (!f.ready || f.cands.size() - f.next < 2) continue;
        size_t remaining = f.cands.size() - f.next;
        size_t mid = f.next + remaining / 2;
        auto clone = std::make_unique<WbmTask>(env_, seed_, out_, 0, 0);
        clone->plan_ = plan_;
        clone->m_ = m_;
        for (size_t i = l; i < plan_->order.size(); ++i) {
          clone->m_[plan_->order[i]] = kInvalidVertex;
        }
        clone->floor_ = l;
        clone->cur_ = l;
        clone->frames_[l].cands.assign(f.cands.begin() + mid,
                                       f.cands.end());
        clone->frames_[l].next = 0;
        clone->frames_[l].ready = true;
        clone->dfs_active_ = true;
        f.cands.resize(mid);
        return clone;
      }
    }
    return nullptr;
  }

 private:
  struct Frame {
    std::vector<VertexId> cands;
    size_t next = 0;
    bool ready = false;
  };

  /// Picks the next unit of work: a pending coalesced sibling, else the
  /// next seed plan.  Returns false when the task is exhausted.
  bool AdvanceWork(WarpContext& ctx) {
    while (true) {
      if (plan_ && !siblings_.empty()) {
        m_ = siblings_.back();
        siblings_.pop_back();
        floor_ = plan_->vk_size;
        cur_ = floor_;
        frames_[cur_].ready = false;
        dfs_active_ = true;
        return true;
      }
      if (plan_idx_ < plan_end_) {
        plan_ = &env_->qctx->plans[plan_idx_++];
        if (InitPlan(ctx)) {
          dfs_active_ = true;
          return true;
        }
        continue;
      }
      return false;
    }
  }

  /// Maps the update edge onto the plan's directed pair (Algorithm 1
  /// lines 3-5).  Returns false when labels forbid the mapping or the
  /// query has no levels to search (|V(Q)| = 2, handled inline).
  bool InitPlan(WarpContext& ctx) {
    ctx.ChargeCompute(4);
    if (plan_->elabel != seed_.elabel) return false;
    // k > 0 coalesced plans defer the full candidate test: a sibling
    // pair may accept seed vertices the representative's (stronger,
    // R^k-aware) encoding rejects, so the V^k phase uses the orbit-union
    // filter and the full bits are validated per variant at the R^k
    // transition.  k = 0 plans keep strict filtering: a full-query
    // automorphism preserves neighbor-label multisets, hence encoder
    // codes, so the strict test is already sibling-invariant.
    const bool relaxed =
        !plan_->perms.empty() && plan_->vk_size < plan_->order.size();
    if (relaxed) {
      if ((env_->enc->CandidateMask(seed_.v1) &
           plan_->relaxed_masks[plan_->a]) == 0) {
        return false;
      }
      if ((env_->enc->CandidateMask(seed_.v2) &
           plan_->relaxed_masks[plan_->b]) == 0) {
        return false;
      }
    } else {
      if (!env_->enc->IsCandidate(seed_.v1, plan_->a)) return false;
      if (!env_->enc->IsCandidate(seed_.v2, plan_->b)) return false;
    }
    m_.fill(kInvalidVertex);
    m_[plan_->a] = seed_.v1;
    m_[plan_->b] = seed_.v2;
    const size_t nq = plan_->order.size();
    if (nq == 2) {
      EmitMatch(ctx);  // the seed assignment is already a full match
      return false;
    }
    floor_ = 2;
    cur_ = 2;
    frames_[cur_].ready = false;
    return true;
  }

  /// GenCandidates (Algorithm 1 lines 23-29) via the shared helper: the
  /// warp reads one matched neighbor's adjacency coalescedly, then
  /// filters by candidate bit / adjacency binary-searches / injectivity
  /// / the batch-dedup rule.  V^k levels of a coalesced plan use the
  /// relaxed label-only filter (full bits deferred to the variants).
  void GenFrame(WarpContext& ctx) {
    Frame& f = frames_[cur_];
    f.next = 0;
    f.ready = true;
    const bool relaxed = !plan_->perms.empty() &&
                         plan_->vk_size < plan_->order.size() &&
                         cur_ < plan_->vk_size;
    GenCandidatesCost cost;
    GenerateCandidates(*env_->graph, env_->qctx->q, *env_->enc,
                       *env_->update_order, *plan_, m_, cur_, seed_.order,
                       relaxed, &scratch_, &f.cands, &cost);
    ctx.ChargeGlobal(cost.scan_words, /*coalesced=*/true);
    ctx.ChargeGlobal(cost.probe_words, /*coalesced=*/false);
    ctx.ChargeCompute(cost.compute_ops);
  }

  /// Full candidate-table test of the current V^k prefix (deferred from
  /// the relaxed V^k phase).  Pruning only — a genuine completion would
  /// imply the bits hold anyway.
  bool ValidatePrefixBits(WarpContext& ctx) {
    ctx.ChargeCompute(plan_->vk_size);
    for (uint32_t i = 0; i < plan_->vk_size; ++i) {
      VertexId x = plan_->order[i];
      if (!env_->enc->IsCandidate(m_[x], x)) return false;
    }
    return true;
  }

  /// Spawns the coalesced-search sibling partials of the just-completed
  /// V^k prefix: x -> P(perm[x]), dropped early when a permuted position
  /// fails its candidate-table bit (the "avoid invalid matching" check).
  void SpawnSiblings(WarpContext& ctx) {
    for (const Permutation& p : plan_->perms) {
      std::array<VertexId, kMaxQueryVertices> pm;
      pm.fill(kInvalidVertex);
      bool ok = true;
      for (VertexId x = 0; x < kMaxQueryVertices && ok; ++x) {
        if (p[x] == kInvalidVertex) continue;
        VertexId img = m_[p[x]];
        GAMMA_CHECK(img != kInvalidVertex);
        if (!env_->enc->IsCandidate(img, x)) {
          ok = false;
          break;
        }
        pm[x] = img;
      }
      if (ok) siblings_.push_back(pm);
    }
    ctx.ChargeCompute(plan_->perms.size() * plan_->vk_size);
    ctx.ChargeShared(plan_->perms.size() * plan_->vk_size);
  }

  /// Reserves one emission against the launch-wide result cap; false
  /// (and the overflow flag set) once the cap is exhausted.
  bool ReserveEmission() {
    if (!env_->emitted || env_->result_cap == 0) return true;
    if (env_->emitted->fetch_add(1, std::memory_order_relaxed) >=
        env_->result_cap) {
      env_->overflowed->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void EmitMatch(WarpContext& ctx) {
    if (!ReserveEmission()) return;
    const size_t nq = env_->qctx->q.NumVertices();
    MatchRecord rec;
    rec.n = static_cast<uint8_t>(nq);
    rec.positive = env_->positive;
    rec.m = m_;
    out_->push_back(rec);
    ctx.ChargeGlobal(nq, /*coalesced=*/true);  // write the match row
    // k = 0 coalescing: a full-query automorphism maps complete matches
    // to complete matches directly, no re-extension needed.
    if (!plan_->perms.empty() && plan_->vk_size == nq) {
      for (const Permutation& p : plan_->perms) {
        if (!ReserveEmission()) return;
        MatchRecord sib;
        sib.n = rec.n;
        sib.positive = rec.positive;
        for (VertexId x = 0; x < nq; ++x) sib.m[x] = m_[p[x]];
        out_->push_back(sib);
        ctx.ChargeGlobal(nq, /*coalesced=*/true);
      }
    }
  }

  const WbmEnv* env_;
  SeedEdge seed_;
  std::vector<MatchRecord>* out_;
  size_t plan_idx_;
  size_t plan_end_;

  const SeedPlan* plan_ = nullptr;
  bool dfs_active_ = false;
  std::array<VertexId, kMaxQueryVertices> m_;
  uint32_t cur_ = 0;
  uint32_t floor_ = 2;
  std::vector<Frame> frames_;
  std::vector<std::array<VertexId, kMaxQueryVertices>> siblings_;
  std::vector<Neighbor> scratch_;
};

}  // namespace

std::vector<std::unique_ptr<WarpTask>> MakeWbmTasks(
    const WbmEnv& env, const std::vector<SeedEdge>& seeds,
    std::vector<std::vector<MatchRecord>>* out_slots) {
  out_slots->assign(seeds.size(), {});
  std::vector<std::unique_ptr<WarpTask>> tasks;
  tasks.reserve(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    tasks.push_back(std::make_unique<WbmTask>(
        &env, seeds[i], &(*out_slots)[i], 0, env.qctx->plans.size()));
  }
  return tasks;
}

WbmResult RunWbmKernel(Device& device, const WbmEnv& env,
                       const std::vector<SeedEdge>& seeds) {
  std::vector<std::vector<MatchRecord>> slots;
  WbmResult result;
  std::atomic<size_t> emitted{0};
  std::atomic<bool> overflowed{false};
  WbmEnv env_with_cap = env;
  if (env.result_cap > 0 && env.emitted == nullptr) {
    env_with_cap.emitted = &emitted;
    env_with_cap.overflowed = &overflowed;
  }
  result.stats =
      device.Launch(MakeWbmTasks(env_with_cap, seeds, &slots));
  result.overflowed =
      env_with_cap.overflowed &&
      env_with_cap.overflowed->load(std::memory_order_relaxed);
  size_t total = 0;
  for (const auto& s : slots) total += s.size();
  result.matches.reserve(total);
  for (auto& s : slots) {
    result.matches.insert(result.matches.end(), s.begin(), s.end());
  }
  return result;
}

}  // namespace bdsm
