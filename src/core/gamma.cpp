#include "core/gamma.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace bdsm {

namespace {

/// Splits a sanitized batch into polarity-ordered seed lists and the
/// order map the dedup rule consults.
struct PolaritySeeds {
  std::vector<SeedEdge> seeds;
  std::unordered_map<Edge, uint32_t, EdgeHash> order;
};

PolaritySeeds CollectSeeds(const UpdateBatch& batch, bool inserts) {
  PolaritySeeds out;
  uint32_t next = 0;
  for (const UpdateOp& op : batch) {
    if (op.is_insert != inserts) continue;
    out.seeds.push_back(SeedEdge{op.u, op.v, op.elabel, next});
    out.order.emplace(Edge(op.u, op.v), next);
    ++next;
  }
  return out;
}

}  // namespace

Gamma::Gamma(const LabeledGraph& initial, const QueryGraph& query,
             GammaOptions options)
    : options_(options),
      host_graph_(initial),
      gpma_(options.gpma_segment_capacity),
      qctx_(BuildQueryContext(query, options.coalesced_search,
                              options.aggressive_coalescing)),
      encoder_(query),
      device_(options.device) {
  gpma_.BuildFrom(host_graph_);
  encoder_.BuildAll(host_graph_);
}

WbmResult Gamma::RunMatchPhase(const UpdateBatch& batch, bool positive) {
  PolaritySeeds seeds = CollectSeeds(batch, positive);
  if (seeds.seeds.empty()) return WbmResult{};
  WbmEnv env{&gpma_, &qctx_, &encoder_, &seeds.order, positive};
  env.result_cap = options_.result_cap;
  return RunWbmKernel(device_, env, seeds.seeds);
}

void Gamma::RunUpdatePhase(const UpdateBatch& batch, BatchResult* result) {
  UpdatePlan plan = gpma_.ApplyBatch(batch);
  result->update_stats = SimulateGpmaUpdate(device_, plan, options_.gpma);
  Timer host;
  ApplyBatch(&host_graph_, batch);
  encoder_.ApplyBatchDirty(host_graph_, batch);
  result->preprocess_host_seconds = host.ElapsedSeconds();
}

BatchResult Gamma::ProcessBatch(const UpdateBatch& raw_batch) {
  BatchResult result;
  Timer wall;

  UpdateBatch batch = SanitizeBatch(host_graph_, raw_batch);

  // Negative matches: deleted-edge seeds on the pre-update state.
  WbmResult neg = RunMatchPhase(batch, /*positive=*/false);
  result.negative_matches = std::move(neg.matches);
  result.match_stats.MergeSequential(neg.stats);
  result.overflowed = result.overflowed || neg.overflowed;

  // Update: GPMA on the device, host mirror + re-encode on the CPU.
  RunUpdatePhase(batch, &result);

  // Positive matches: inserted-edge seeds on the post-update state.
  WbmResult pos = RunMatchPhase(batch, /*positive=*/true);
  result.positive_matches = std::move(pos.matches);
  result.match_stats.MergeSequential(pos.stats);
  result.overflowed = result.overflowed || pos.overflowed;

  result.host_wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace bdsm
