#include "core/candidate_gen.hpp"

#include "gpusim/warp_ops.hpp"

namespace bdsm {

void GenerateCandidates(
    const Gpma& graph, const QueryGraph& q, const CandidateEncoder& enc,
    const std::unordered_map<Edge, uint32_t, EdgeHash>& update_order,
    const SeedPlan& plan, const std::array<VertexId, kMaxQueryVertices>& m,
    uint32_t level, uint32_t seed_order, bool relaxed,
    std::vector<Neighbor>* scratch, std::vector<VertexId>* out,
    GenCandidatesCost* cost) {
  VertexId uq = plan.order[level];
  struct MatchedNbr {
    VertexId data_v;
    Label elabel;
  };
  MatchedNbr nbrs[kMaxQueryVertices];
  size_t num_nbrs = 0;
  for (uint32_t i = 0; i < level; ++i) {
    VertexId qv = plan.order[i];
    if (q.HasEdge(qv, uq)) {
      nbrs[num_nbrs++] = MatchedNbr{m[qv], q.EdgeLabelBetween(qv, uq)};
    }
  }
  GAMMA_CHECK_MSG(num_nbrs > 0, "matching order must stay connected");

  out->clear();
  graph.NeighborsInto(nbrs[0].data_v, scratch);
  cost->scan_words += 2 * scratch->size();
  cost->compute_ops += 2 * scratch->size();

  for (const Neighbor& nb : *scratch) {
    VertexId w = nb.v;
    if (nb.elabel != nbrs[0].elabel) continue;
    // Relaxed (coalesced V^k) filter: w must be a candidate of at least
    // one position in uq's orbit; plain filter: candidate of uq itself.
    if (relaxed) {
      if (!enc.HasSameLabel(w, uq)) continue;
      if ((enc.CandidateMask(w) & plan.relaxed_masks[uq]) == 0) continue;
    } else if (!enc.IsCandidate(w, uq)) {
      continue;
    }
    // Injectivity against the assigned prefix.
    bool used = false;
    for (uint32_t i = 0; i < level && !used; ++i) {
      used = m[plan.order[i]] == w;
    }
    if (used) continue;
    // Adjacency (+ edge labels) to the remaining matched neighbors —
    // the paper's parallel binary search (WarpOps::IntersectOps prices
    // one probe against the GPMA's sorted adjacency).
    bool ok = true;
    for (size_t i = 1; i < num_nbrs && ok; ++i) {
      Label el;
      cost->probe_words += 2;
      cost->compute_ops +=
          WarpOps::IntersectOps(1, graph.segment_capacity());
      ok = graph.FindEdge(nbrs[i].data_v, w, &el) && el == nbrs[i].elabel;
    }
    if (!ok) continue;
    // Batch-dedup total-order rule.
    for (size_t i = 0; i < num_nbrs && ok; ++i) {
      auto it = update_order.find(Edge(nbrs[i].data_v, w));
      if (it != update_order.end() && it->second < seed_order) ok = false;
    }
    if (!ok) continue;
    out->push_back(w);
  }
}

}  // namespace bdsm
