/// \file match_store.hpp
/// Postprocess component (paper Fig. 3): applications consume GAMMA's
/// incremental matches either as raw deltas or as a maintained view.
/// MatchStore is that view — the set of currently-live matches, updated
/// by each batch's positive/negative deltas, with the bookkeeping
/// applications typically need (per-vertex participation counts for
/// alerting, delta journals for audit).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gamma.hpp"
#include "core/match.hpp"

namespace bdsm {

class MatchStore {
 public:
  /// Applies one batch's deltas.  Positive matches are inserted,
  /// negative matches removed; double-insert/missing-remove abort
  /// (GAMMA guarantees exactly-once deltas, so either is a caller bug).
  void Apply(const BatchResult& result);
  void ApplyDelta(const MatchRecord& m);

  size_t LiveCount() const { return live_.size(); }
  bool Contains(const MatchRecord& m) const;

  /// Live matches containing data vertex v (how many alerts a vertex
  /// participates in — the fraud example's per-account score).
  size_t ParticipationCount(VertexId v) const;

  /// Snapshot of every live match (order unspecified).
  std::vector<MatchRecord> Snapshot() const;

  /// Total deltas seen (for monitoring).
  uint64_t applied_positive() const { return applied_positive_; }
  uint64_t applied_negative() const { return applied_negative_; }

 private:
  static std::string KeyOf(const MatchRecord& m);

  std::unordered_map<std::string, MatchRecord> live_;
  std::unordered_map<VertexId, size_t> participation_;
  uint64_t applied_positive_ = 0;
  uint64_t applied_negative_ = 0;
};

}  // namespace bdsm
