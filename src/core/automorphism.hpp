/// \file automorphism.hpp
/// Query-graph automorphisms and k-degenerated automorphic subgraphs
/// (paper §V-B, Definitions 3-4).
///
/// The coalesced-search optimization rests on this module: removing k
/// vertices from Q can leave an induced subgraph Q^k that is automorphic
/// (self-isomorphic non-trivially).  Edges of Q^k falling in one orbit of
/// its automorphism group are *equivalent*: a partial match found for one
/// of them yields the others' partial matches by permutation.  The engine
/// enumerates all Q^k, computes the directed-edge orbits, applies the
/// paper's two overlap rules (prefer smaller k — larger shared subgraph;
/// tie-break on larger orbit), and selects the *prioritized* seed edge of
/// each orbit (the dominance rule that avoids doomed permuted partials).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/query_graph.hpp"

namespace bdsm {

/// A vertex permutation of Q (identity outside the induced subgraph is
/// not required; entries for removed vertices are kInvalidVertex).
using Permutation = std::array<VertexId, kMaxQueryVertices>;

/// All automorphisms of the labeled graph `q` restricted to the vertex
/// set `mask` (bit i = vertex i kept).  Entries outside the mask are
/// kInvalidVertex.  Includes the identity.  Respects vertex labels and
/// (when present) edge labels.
std::vector<Permutation> InducedAutomorphisms(const QueryGraph& q,
                                              uint16_t mask);

/// One equivalent-edge group discovered on some k-degenerated subgraph.
struct EquivalentEdgeGroup {
  uint16_t vertex_mask;               ///< V^k as a bitmask
  uint32_t k;                         ///< number of removed vertices
  /// Directed seed pairs of the orbit; front() is the prioritized
  /// (dominant) representative the search actually seeds.
  std::vector<std::pair<VertexId, VertexId>> directed_orbit;
  /// For each non-representative directed pair d (aligned with
  /// directed_orbit[1..]), the permutation sigma_d^{-1} turning a partial
  /// match seeded at the representative into one seeded at d:
  /// P_d = P o perm (i.e. P_d(x) = P(perm[x])).
  std::vector<Permutation> perms;
};

/// Computes the active equivalent-edge groups of q after applying the
/// paper's rules 1 & 2.  Each *directed* query pair (a,b) belongs to at
/// most one group; pairs in no group are seeded plainly.
///
/// With `only_degree1_removals` (the default, and the paper's Remark:
/// "we selectively eliminate isolated query vertices with a degree of
/// 1"), k >= 1 subgraphs may only remove degree-1 vertices, bounding the
/// constraints the V^k phase defers to one edge per removed vertex;
/// false admits arbitrary removals (more sharing, more risk).
std::vector<EquivalentEdgeGroup> ComputeEquivalentEdgeGroups(
    const QueryGraph& q, bool only_degree1_removals = true);

}  // namespace bdsm
