/// \file tenant.hpp
/// Multi-tenant serving vocabulary: tenants, priority classes,
/// admission policies, and the TenantControl capability interface.
///
/// "Millions of users" means the unit of tenancy is a user owning a
/// handful of standing queries, not a flat query set.  This header
/// defines the control-plane types the tenant front door
/// (serve/tenant_front_door.hpp) implements and that drivers
/// (ScenarioRunner, bench_scenarios, example_cli) consume:
///
///  * `TenantPolicy` — one tenant's contract: priority class,
///    token-bucket rate limit, standing-query quota, per-batch result
///    budget, and pending-op queue bound.
///  * `FrontDoorOptions` — the front door's own knobs: the admission
///    master switch, the SLO target the batch-formation controller
///    tracks, and the target-batch-size bounds.
///  * `TenantControl` — the capability interface an Engine exposes via
///    `Engine::tenant_control()` when `Describe().supports_tenancy` is
///    true.  Consumers reach tenancy through this interface the same
///    way persistence reaches snapshots through `RegisteredQueries()`:
///    no downcasts to concrete serve/ types anywhere.
///
/// Determinism convention: everything here is driven by batch ticks and
/// the engine's declared clock (`Engine::Describe().clock`), never wall
/// time — token buckets refill per formed batch, queue waits accumulate
/// the front door's virtual clock (the sum of formed-batch service
/// latencies), so a given (stream, policy, seed) always sheds, degrades
/// and forms the exact same batches on any host (docs/SERVING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

/// Stable handle of a registered query (redeclares core/engine.hpp's
/// alias identically so this header stays engine-independent).
using QueryId = uint32_t;

/// Stable handle of a registered tenant.  Id 0 is the always-present
/// "default" tenant that plain Engine::AddQuery / ProcessBatch calls
/// are attributed to.
using TenantId = uint32_t;
inline constexpr TenantId kInvalidTenantId = static_cast<TenantId>(-1);
inline constexpr TenantId kDefaultTenantId = 0;

/// Admission priority classes, strongest first.  Under overload the
/// front door fills each formed batch class by class: gold tenants are
/// served before silver, silver before best-effort — within a class,
/// round-robin keeps tenants starvation-free.
enum class PriorityClass {
  kGold = 0,
  kSilver = 1,
  kBestEffort = 2,
};

/// "gold" | "silver" | "best_effort".
const char* PriorityClassName(PriorityClass c);
/// Inverse of PriorityClassName; false when `name` is unknown.
bool PriorityClassFromName(const std::string& name, PriorityClass* out);
/// Sorted "best_effort, gold, silver" — for EngineSpecError-style
/// messages that list the valid values.
std::string ValidPriorityClassNames();

/// One tenant's serving contract.  Zero always means "unlimited" /
/// "use the front-door default", so the default-constructed policy is
/// fully permissive — the policy under which `tenant(inner)` is
/// match-identical to the bare inner engine.
struct TenantPolicy {
  PriorityClass priority = PriorityClass::kSilver;
  /// Token-bucket refill: ops this tenant may have admitted per formed
  /// batch, averaged (0 = unlimited).  Buckets refill on batch ticks,
  /// never wall time.
  double rate_ops_per_batch = 0.0;
  /// Token-bucket capacity (0 = 2x rate; irrelevant when unlimited).
  double burst_ops = 0.0;
  /// Standing-query quota: AddQuery beyond it is rejected and counted
  /// (0 = unlimited).
  size_t max_queries = 0;
  /// Per-batch result budget: a formed batch delivering more matches
  /// than this across the tenant's queries flags the tenant degraded —
  /// its admission share is clamped for the next batches (0 = never).
  size_t result_budget = 0;
  /// Pending-op bound: ops ingested beyond it are shed immediately
  /// (0 = FrontDoorOptions::queue_limit_ops).
  size_t queue_limit_ops = 0;
};

/// The front door's own configuration (EngineOptions::front_door; the
/// `tenant(...)` spec's inline keys map onto these).
struct FrontDoorOptions {
  /// Master switch: when false, no shedding, rate limiting, priority
  /// ordering or degradation happens — ops are admitted FIFO (the
  /// "admission OFF" arm of the noisy-neighbor experiment).  Batch
  /// formation still applies.
  bool admission = true;
  /// Target per-formed-batch latency under the engine's clock; the
  /// batch-formation controller adapts the target batch size (AIMD) to
  /// keep the recent latency tail under it.  0 = fixed target size.
  double slo_seconds = 0.0;
  /// Bounds and start of the adaptive target batch size (in ops).
  size_t batch_ops_min = 32;
  size_t batch_ops_max = 8192;
  size_t batch_ops_init = 256;
  /// Recent-latency window the controller reads its tail from.
  size_t slo_window = 8;
  /// Default per-tenant pending-op bound (TenantPolicy 0 falls back
  /// here; 0 = unbounded queues).
  size_t queue_limit_ops = 4096;
  /// How many formed batches a tenant stays clamped after blowing its
  /// result budget (admission capped at a quarter of the formation
  /// target, floor 1, while clamped).
  size_t degrade_batches = 2;
  /// Policy applied to the built-in default tenant and to tenants the
  /// `tenants=N` spec key pre-registers.
  TenantPolicy default_policy;
  /// Tenants to pre-register at construction ("t0".."tN-1", default
  /// policy) — the `tenants=N` spec key.
  size_t preregister_tenants = 0;
};

/// Cumulative per-tenant accounting (admitted/shed/degraded story).
struct TenantCounters {
  size_t offered_ops = 0;    ///< ops ingested (or attributed) in total
  size_t admitted_ops = 0;   ///< ops that made it into a formed batch
  size_t shed_ops = 0;       ///< ops dropped (queue bound / flat-path)
  size_t degraded_ops = 0;   ///< ops deferred by a degradation clamp
  size_t rejected_queries = 0;  ///< AddQuery calls refused by quota
  size_t batches = 0;           ///< formed batches carrying its ops
  size_t over_budget_batches = 0;  ///< batches that blew result_budget
  size_t positive_matches = 0;
  size_t negative_matches = 0;
};

/// Point-in-time view of one tenant, for reporting.
struct TenantSnapshot {
  TenantId id = kInvalidTenantId;
  std::string name;
  TenantPolicy policy;
  TenantCounters counters;
  size_t live_queries = 0;
  size_t pending_ops = 0;  ///< currently queued
  /// Per carried formed batch: service latency under the engine's
  /// clock, and the worst queue wait among the tenant's admitted ops
  /// (virtual clock).  A tenant's end-to-end latency sample is the sum
  /// of the two (docs/SERVING.md "sojourn").
  std::vector<double> service_seconds;
  std::vector<double> queue_wait_seconds;
};

/// What one PumpFormedBatch produced (scalars only; drivers that need
/// per-query detail use the Engine interface directly).
struct FormedBatchStats {
  size_t admitted_ops = 0;
  size_t queue_depth_before = 0;  ///< pending ops before formation
  size_t target_ops = 0;          ///< controller's target at formation
  double queue_wait_seconds = 0.0;  ///< worst wait among admitted ops
  double service_seconds = 0.0;     ///< under the engine's clock
  size_t positive_matches = 0;
  size_t negative_matches = 0;
  size_t truncated_queries = 0;
};

/// The tenancy capability interface.  Engines that support multi-tenant
/// serving return a non-null pointer from `Engine::tenant_control()`
/// and report `Describe().supports_tenancy == true`; everything else
/// returns nullptr.  Implemented by serve::TenantFrontDoor.
class TenantControl {
 public:
  virtual ~TenantControl() = default;

  /// Registers a tenant; ids are assigned monotonically (the built-in
  /// default tenant holds id 0).
  virtual TenantId RegisterTenant(const std::string& name,
                                  const TenantPolicy& policy) = 0;
  virtual size_t NumTenants() const = 0;

  /// Registers a query owned by `tenant`.  Returns the engine-scoped
  /// public QueryId, or the invalid id when the tenant's standing-query
  /// quota is exhausted (counted in TenantCounters::rejected_queries).
  virtual QueryId AddTenantQuery(TenantId tenant, const QueryGraph& q) = 0;
  /// Owning tenant of a live public query id (kInvalidTenantId when
  /// the id is unknown).
  virtual TenantId OwnerOf(QueryId id) const = 0;

  /// Appends `ops` to the tenant's ingest queue (data plane).  Ops
  /// beyond the tenant's pending bound are shed immediately and
  /// counted; nothing ever blocks.
  virtual void Ingest(TenantId tenant, const UpdateBatch& ops) = 0;
  /// Ops currently queued across all tenants.
  virtual size_t PendingOps() const = 0;

  /// Forms one batch from the queues (admission: priority classes,
  /// token buckets, degradation clamps; size: the SLO controller's
  /// current target), processes it on the inner engine, and updates
  /// the per-tenant accounting.  Returns false — and forms nothing —
  /// when every queue is empty.  `out` may be null.
  virtual bool PumpFormedBatch(FormedBatchStats* out) = 0;

  /// Current target formed-batch size (ops) of the SLO controller.
  virtual size_t TargetBatchOps() const = 0;

  virtual TenantSnapshot Snapshot(TenantId tenant) const = 0;

  /// Jain fairness index over per-tenant service ratios
  /// (admitted/offered): 1.0 = perfectly even service, 1/n = one
  /// tenant served only.  Tenants that offered nothing are skipped;
  /// 1.0 when no tenant offered anything.
  virtual double JainFairnessIndex() const = 0;
};

/// Jain's fairness index over arbitrary shares: (Σx)² / (n·Σx²).
/// Returns 1.0 for empty/all-zero input (nothing to be unfair about).
double JainIndex(const std::vector<double>& shares);

}  // namespace bdsm
