#include "core/query_context.hpp"

#include <algorithm>
#include <map>

namespace bdsm {

std::vector<VertexId> BuildMatchingOrder(const QueryGraph& q, VertexId a,
                                         VertexId b,
                                         uint16_t restrict_mask) {
  const size_t nq = q.NumVertices();
  std::vector<VertexId> order{a, b};
  uint16_t placed = static_cast<uint16_t>((1u << a) | (1u << b));

  auto pick_next = [&](uint16_t allowed) -> VertexId {
    VertexId best = kInvalidVertex;
    size_t best_back = 0, best_deg = 0;
    for (VertexId u = 0; u < nq; ++u) {
      if ((placed >> u) & 1u) continue;
      if (!((allowed >> u) & 1u)) continue;
      size_t back = static_cast<size_t>(
          __builtin_popcount(q.AdjacencyMask(u) & placed));
      if (back == 0) continue;  // must stay connected
      size_t deg = q.Degree(u);
      if (best == kInvalidVertex || back > best_back ||
          (back == best_back && deg > best_deg)) {
        best = u;
        best_back = back;
        best_deg = deg;
      }
    }
    return best;
  };

  uint16_t all = static_cast<uint16_t>((1u << nq) - 1);
  if (restrict_mask != 0) {
    // Exhaust V^k first; bail out if it cannot be ordered connectedly.
    while ((placed & restrict_mask) != restrict_mask) {
      VertexId u = pick_next(restrict_mask);
      if (u == kInvalidVertex) return {};
      order.push_back(u);
      placed |= static_cast<uint16_t>(1u << u);
    }
  }
  while (placed != all) {
    VertexId u = pick_next(all);
    if (u == kInvalidVertex) return {};  // disconnected query
    order.push_back(u);
    placed |= static_cast<uint16_t>(1u << u);
  }
  return order;
}

QueryContext BuildQueryContext(const QueryGraph& q, bool coalesced_search,
                               bool aggressive_coalescing) {
  QueryContext ctx;
  ctx.q = q;

  // Every directed pair of every query edge must be covered exactly once.
  std::map<std::pair<VertexId, VertexId>, bool> covered;
  auto all_pairs = [&] {
    std::vector<std::pair<VertexId, VertexId>> ps;
    for (const QueryEdge& e : q.edges()) {
      ps.emplace_back(e.u1, e.u2);
      ps.emplace_back(e.u2, e.u1);
    }
    return ps;
  }();

  auto plain_plan = [&](std::pair<VertexId, VertexId> d) {
    SeedPlan plan;
    plan.a = d.first;
    plan.b = d.second;
    plan.elabel = q.EdgeLabelBetween(d.first, d.second);
    plan.order = BuildMatchingOrder(q, d.first, d.second);
    GAMMA_CHECK_MSG(!plan.order.empty(), "query graph must be connected");
    plan.vk_size = 2;
    return plan;
  };

  if (coalesced_search) {
    for (const EquivalentEdgeGroup& grp :
         ComputeEquivalentEdgeGroups(q, !aggressive_coalescing)) {
      auto rep = grp.directed_orbit.front();
      if (covered.count(rep)) continue;  // defensive; groups are disjoint
      std::vector<VertexId> order =
          BuildMatchingOrder(q, rep.first, rep.second, grp.vertex_mask);
      if (order.empty()) continue;  // V^k not connectedly orderable
      SeedPlan plan;
      plan.a = rep.first;
      plan.b = rep.second;
      plan.elabel = q.EdgeLabelBetween(rep.first, rep.second);
      plan.order = std::move(order);
      plan.vk_size = static_cast<uint32_t>(
          __builtin_popcount(grp.vertex_mask));
      plan.perms = grp.perms;
      // Position orbits for the relaxed V^k filter: a vertex at rep
      // position p lands at sibling position x whenever perm[x] == p.
      for (VertexId p = 0; p < q.NumVertices(); ++p) {
        if (!((grp.vertex_mask >> p) & 1u)) continue;
        uint16_t mask = static_cast<uint16_t>(1u << p);
        for (const Permutation& perm : plan.perms) {
          for (VertexId x = 0; x < q.NumVertices(); ++x) {
            if (perm[x] == p) mask |= static_cast<uint16_t>(1u << x);
          }
        }
        plan.relaxed_masks[p] = mask;
      }
      // Mark the whole directed orbit covered; siblings are derived.
      bool clash = false;
      for (const auto& d : grp.directed_orbit) {
        if (covered.count(d)) clash = true;
      }
      if (clash) continue;
      for (const auto& d : grp.directed_orbit) covered[d] = true;
      ctx.coalesced_pairs += grp.directed_orbit.size() - 1;
      ctx.plans.push_back(std::move(plan));
    }
  }

  for (const auto& d : all_pairs) {
    if (covered.count(d)) continue;
    covered[d] = true;
    ctx.plans.push_back(plain_plan(d));
  }
  return ctx;
}

}  // namespace bdsm
