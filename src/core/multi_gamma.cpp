#include "core/multi_gamma.hpp"

#include "util/timer.hpp"

namespace bdsm {

MultiGamma::MultiGamma(const LabeledGraph& initial, GammaOptions options)
    : options_(options),
      host_graph_(initial),
      gpma_(options.gpma_segment_capacity),
      device_(options.device) {
  gpma_.BuildFrom(host_graph_);
}

size_t MultiGamma::AddQuery(const QueryGraph& q) {
  PerQuery pq;
  pq.id = next_query_id_++;
  pq.qctx = BuildQueryContext(q, options_.coalesced_search,
                              options_.aggressive_coalescing);
  pq.encoder = std::make_unique<CandidateEncoder>(q);
  pq.encoder->BuildAll(host_graph_);
  queries_.push_back(std::move(pq));
  return queries_.back().id;
}

bool MultiGamma::RemoveQuery(size_t id) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if (it->id == id) {
      queries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<size_t> MultiGamma::QueryIds() const {
  std::vector<size_t> ids;
  ids.reserve(queries_.size());
  for (const PerQuery& pq : queries_) ids.push_back(pq.id);
  return ids;
}

void MultiGamma::RunMatchAll(const UpdateBatch& batch, bool positive,
                             MultiBatchResult* out) {
  // Seeds and order map are polarity-global; each query gets its own
  // env (query context + encoder) but all tasks go into ONE launch so
  // the device is shared across queries.
  std::vector<SeedEdge> seeds;
  std::unordered_map<Edge, uint32_t, EdgeHash> order;
  uint32_t next = 0;
  for (const UpdateOp& op : batch) {
    if (op.is_insert != positive) continue;
    seeds.push_back(SeedEdge{op.u, op.v, op.elabel, next});
    order.emplace(Edge(op.u, op.v), next);
    ++next;
  }
  if (seeds.empty()) return;

  std::atomic<size_t> emitted{0};
  std::atomic<bool> overflowed{false};
  std::vector<WbmEnv> envs;
  envs.reserve(queries_.size());
  // Slot layout: per query, one slot vector per seed.
  std::vector<std::vector<std::vector<MatchRecord>>> slots(
      queries_.size());
  std::vector<std::unique_ptr<WarpTask>> tasks;
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    WbmEnv env{&gpma_, &queries_[qi].qctx, queries_[qi].encoder.get(),
               &order, positive};
    env.result_cap = options_.result_cap;
    if (env.result_cap > 0) {
      env.emitted = &emitted;
      env.overflowed = &overflowed;
    }
    envs.push_back(env);
  }
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    auto qt = MakeWbmTasks(envs[qi], seeds, &slots[qi]);
    for (auto& t : qt) tasks.push_back(std::move(t));
  }

  DeviceStats stats = device_.Launch(std::move(tasks));
  bool over = overflowed.load(std::memory_order_relaxed);
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    BatchResult& r = out->per_query[qi];
    auto& dst = positive ? r.positive_matches : r.negative_matches;
    for (auto& s : slots[qi]) {
      dst.insert(dst.end(), s.begin(), s.end());
    }
    // The launch is shared; attribute its stats to every query's record
    // (they describe the same kernel).
    r.match_stats.MergeSequential(stats);
    r.overflowed = r.overflowed || over;
  }
}

void MultiGamma::RunUpdate(const UpdateBatch& batch,
                           MultiBatchResult* out) {
  UpdatePlan plan = gpma_.ApplyBatch(batch);
  out->update_stats = SimulateGpmaUpdate(device_, plan, options_.gpma);
  Timer host;
  ApplyBatch(&host_graph_, batch);
  for (PerQuery& pq : queries_) {
    pq.encoder->ApplyBatchDirty(host_graph_, batch);
  }
  out->preprocess_host_seconds = host.ElapsedSeconds();
  for (BatchResult& r : out->per_query) {
    r.update_stats = out->update_stats;
    r.preprocess_host_seconds = out->preprocess_host_seconds;
  }
}

MultiBatchResult MultiGamma::ProcessBatch(const UpdateBatch& raw_batch) {
  MultiBatchResult out;
  out.per_query.resize(queries_.size());

  UpdateBatch batch = SanitizeBatch(host_graph_, raw_batch);

  RunMatchAll(batch, /*positive=*/false, &out);
  RunUpdate(batch, &out);
  RunMatchAll(batch, /*positive=*/true, &out);
  return out;
}

}  // namespace bdsm
