/// \file replication.hpp
/// Replica-group vocabulary: replica options, per-replica accounting,
/// and the ReplicationControl capability interface.
///
/// "Scale out past one process" means one *leader* engine applies the
/// update stream and tees every applied batch through the persistence
/// WAL (persist/wal.hpp), while N *follower* replicas consume the WAL
/// tail over a modeled transport and serve standing-query read traffic
/// at a bounded, observable staleness lag.  This header defines the
/// control-plane types the replica group (replica/group.hpp)
/// implements and that drivers (ScenarioRunner, bench_scenarios,
/// example_cli) consume — the exact shape of core/tenant.hpp's
/// TenantControl story:
///
///  * `ReplicaOptions` — the group's knobs: follower count, poll
///    cadence, checkpoint/segment policy, and the modeled link.
///  * `ReplicaStats` / `ReplicationStats` — per-replica and
///    group-level accounting (shipped/applied, lag, resyncs,
///    failover).
///  * `ReplicationControl` — the capability interface an Engine
///    exposes via `Engine::replication_control()` when
///    `Describe().supports_replication` is true.  No downcasts to
///    concrete replica/ types anywhere.
///
/// Determinism convention (docs/REPLICATION.md): shipping and apply
/// costs live on a *modeled critical-path clock* — link seconds are a
/// pure function of batch bytes (the WAL's trace-format sizes) and the
/// configured link, apply seconds come from the follower engine's own
/// declared clock — never host wall time.  Lag, shipped/applied
/// counts, resyncs and the modeled failover duration are therefore
/// deterministic in (spec, scenario, seed), and CI gates them exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bdsm {

/// Configuration of a replica group (EngineOptions::replica; the
/// `replicated(...)` spec's inline keys map onto these).
struct ReplicaOptions {
  /// Checkpoint directory the leader ships through ("" = a fresh
  /// directory under the system temp dir, removed with the group).
  /// Not a spec key — the spec grammar's value charset has no
  /// path separators; drivers set it through EngineOptions.
  std::string dir;
  /// Follower replicas consuming the WAL tail.
  size_t followers = 2;
  /// Follower poll cadence in leader batches: a follower catches up to
  /// the durable end of the log whenever it is at least this many
  /// batches behind, so `lag_batches <= poll_every` between polls —
  /// the bounded-staleness contract.
  size_t poll_every = 1;
  /// Leader snapshot policy: snapshot every N applied batches
  /// (0 = base snapshot only; followers then never resync).
  size_t checkpoint_every = 8;
  /// WAL segment rotation (batches per segment).
  size_t segment_batches = 256;
  /// Modeled shipping link: one-way latency plus bytes over bandwidth
  /// (batch bytes are the WAL's trace-format sizes, so the model
  /// charges exactly what the log ships).
  double link_latency_seconds = 20e-6;
  double link_gbits_per_second = 10.0;
  /// Modeled election timeout charged at the front of every failover.
  double election_timeout_seconds = 150e-6;
};

/// One follower's cumulative accounting.
struct ReplicaStats {
  int replica = -1;             ///< follower index (0-based)
  uint64_t applied_batches = 0; ///< WAL batches applied so far
  uint64_t applied_ops = 0;
  uint64_t lag_batches = 0;     ///< leader batches not yet applied
  uint64_t lag_updates = 0;     ///< ops in those batches
  uint64_t max_lag_batches = 0; ///< worst lag ever observed
  uint64_t resyncs = 0;         ///< snapshot resyncs (generation gaps)
  /// Modeled critical-path clock split: link seconds vs apply seconds
  /// (follower engine's own clock).
  double transport_seconds = 0.0;
  double apply_seconds = 0.0;
};

/// Group-level accounting (leader + all followers).
struct ReplicationStats {
  /// The group's effective poll cadence (after spec-key overrides) —
  /// the bound the per-replica max_lag_batches is asserted against.
  uint64_t poll_every = 1;
  uint64_t leader_batches = 0;  ///< batches the leader applied + teed
  uint64_t shipped_batches = 0; ///< batch x follower deliveries
  uint64_t shipped_bytes = 0;   ///< trace-format bytes over the link
  uint64_t failovers = 0;
  /// Modeled duration of the last failover: election timeout + tail
  /// shipping + catch-up replay (0 before the first failover).
  double last_failover_seconds = 0.0;
  uint64_t last_failover_replayed = 0;  ///< WAL batches replayed by it
  std::vector<ReplicaStats> replicas;

  uint64_t MaxLagBatches() const {
    uint64_t m = 0;
    for (const ReplicaStats& r : replicas) {
      if (r.lag_batches > m) m = r.lag_batches;
    }
    return m;
  }
  uint64_t MaxLagUpdates() const {
    uint64_t m = 0;
    for (const ReplicaStats& r : replicas) {
      if (r.lag_updates > m) m = r.lag_updates;
    }
    return m;
  }
};

class Engine;  // core/engine.hpp

/// The replication capability interface.  Engines that replicate
/// return a non-null pointer from `Engine::replication_control()` and
/// report `Describe().supports_replication == true`; everything else
/// returns nullptr.  Implemented by replica::ReplicatedEngine.
class ReplicationControl {
 public:
  virtual ~ReplicationControl() = default;

  virtual size_t NumFollowers() const = 0;
  virtual ReplicationStats Stats() const = 0;

  /// Read-side access to one follower's live engine (nullptr when
  /// `index` is out of range or the follower was promoted away).
  /// Serve staleness-tolerant read/evaluation traffic here — its
  /// graph and query set trail the leader by at most the current lag.
  virtual const Engine* FollowerEngine(size_t index) const = 0;

  /// Applies every durable WAL batch on every follower (lag drops to
  /// the number of batches the leader applied but never made durable
  /// — zero in normal operation).  Drivers call this at end of stream
  /// so reported replica rows describe a quiesced group.
  virtual void DrainFollowers() = 0;

  /// Simulated leader crash: closes the leader's WAL tee and marks
  /// the leader dead — ProcessBatch on a killed group fails until
  /// Failover() promotes a replacement.  Idempotent.
  virtual void KillLeader() = 0;

  /// Elects the most-caught-up follower and promotes it: the promoted
  /// leader restores from the latest checkpoint generation, replays
  /// the WAL tail (zero loss — the tee was durable through the last
  /// acknowledged batch), verifies its state against the elected
  /// follower's drained live replica, and resumes shipping under a
  /// fresh checkpoint generation.  Returns false when there is no
  /// follower left to promote.
  virtual bool Failover() = 0;

  /// True after KillLeader() until a successful Failover().
  virtual bool LeaderDead() const = 0;
};

}  // namespace bdsm
