/// \file wbm_kernel.hpp
/// WBM: the warp-centric batch-dynamic subgraph matching kernel
/// (paper Algorithm 1), written as a steppable WarpTask so the simulated
/// device can interleave warps, steal work, and account utilization.
///
/// One task = one updated edge (the paper's warp-per-update assignment).
/// The task iterates the query's seed plans; each plan maps the update
/// edge onto one directed query pair and runs a DFS over the plan's
/// matching order.  GenCandidates (Algorithm 1 lines 23-29) scans the
/// adjacency of an already-matched neighbor — a warp-cooperative,
/// coalesced read — and filters by candidate-table bit, adjacency to the
/// other matched neighbors (binary searches), injectivity, and the
/// batch-dedup total-order rule.
///
/// Coalesced search (§V-B): when a plan carries permutations, completing
/// the first vk_size levels spawns the sibling partial matches by
/// permutation (validated against the candidate table) instead of
/// re-traversing the same data subgraph; each sibling is then extended
/// over the removed vertices R^k.  Pending siblings are stealable work.
#pragma once

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/encoder.hpp"
#include "core/match.hpp"
#include "core/query_context.hpp"
#include "gpma/gpma.hpp"
#include "gpusim/device.hpp"

namespace bdsm {

/// One seeded update edge: the data edge plus its polarity-local order
/// (used by the dedup rule: a match is attributed to the lowest-order
/// update edge it contains).
struct SeedEdge {
  VertexId v1;
  VertexId v2;
  Label elabel;
  uint32_t order;
};

/// Read-only environment shared by every task of a launch.
struct WbmEnv {
  const Gpma* graph;                   ///< state matching the polarity
  const QueryContext* qctx;
  const CandidateEncoder* enc;
  /// Order of every same-polarity update edge in the batch.
  const std::unordered_map<Edge, uint32_t, EdgeHash>* update_order;
  bool positive;                       ///< stamped on emitted matches
  /// Launch-wide cap on emitted matches (0 = unlimited).  Result sets of
  /// tree queries explode combinatorially; on a 128 GB testbed the paper
  /// bounds them by its 30-minute timeout, here the cap bounds memory
  /// the same way: once hit, tasks stop and the launch reports overflow.
  size_t result_cap = 0;
  /// Shared counter/flag backing the cap (set by RunWbmKernel).
  std::atomic<size_t>* emitted = nullptr;
  std::atomic<bool>* overflowed = nullptr;
};

/// Builds one WBM warp task per seed, emitting into out_slots[i]
/// (preallocated by the caller; one slot per seed; intra-block steals
/// share their victim's slot, which is safe because a block runs on one
/// host thread).
std::vector<std::unique_ptr<WarpTask>> MakeWbmTasks(
    const WbmEnv& env, const std::vector<SeedEdge>& seeds,
    std::vector<std::vector<MatchRecord>>* out_slots);

struct WbmResult {
  std::vector<MatchRecord> matches;
  DeviceStats stats;
  /// Result cap was hit; matches is truncated (treat as unsolved).
  bool overflowed = false;
};

/// Convenience driver: launch the kernel for `seeds` and gather results.
WbmResult RunWbmKernel(Device& device, const WbmEnv& env,
                       const std::vector<SeedEdge>& seeds);

}  // namespace bdsm
