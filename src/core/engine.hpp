/// \file engine.hpp
/// The unified engine layer: every matching system in this repository —
/// GAMMA (one device graph per query), MultiGamma (one shared device
/// graph, fused launches) and the five sequential CSM baselines
/// (TurboFlux, SymBi, RapidFlow, CaLiG, Graphflow) — behind one
/// interface, so benches, examples and serving code select an engine by
/// name instead of by code path.
///
/// The interface is the paper's problem statement made operational:
/// queries are registered and removed at runtime (`AddQuery` /
/// `RemoveQuery`), one `ProcessBatch` call digests an update batch for
/// every live query, and results are delivered either materialized in
/// the returned `BatchReport` or streamed through a `ResultSink`
/// callback (the postprocess hook of Fig. 3) without ever building
/// unbounded vectors.
///
/// Quickstart:
///   auto engine = MakeEngine("gamma", initial_graph);
///   QueryId q = engine->AddQuery(query);
///   BatchReport r = engine->ProcessBatch(batch);
///   // r.Find(q)->positive_matches / ->negative_matches, r.*_stats
///
/// Streaming:
///   struct Alert : ResultSink {
///     void OnMatch(QueryId q, const MatchRecord& m) override { ... }
///   } sink;
///   BatchOptions opts;
///   opts.sink = &sink;
///   opts.materialize = false;  // counts only, no vectors
///   engine->ProcessBatch(batch, opts);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine_spec.hpp"
#include "core/gamma.hpp"
#include "core/match.hpp"
#include "core/replication.hpp"
#include "core/tenant.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

namespace serve {
class ShardedEngine;
class TenantFrontDoor;
}

namespace replica {
class ReplicatedEngine;
}

/// Stable handle of a registered query.  Ids are engine-scoped,
/// monotonically assigned, and never reused after RemoveQuery.
using QueryId = uint32_t;
inline constexpr QueryId kInvalidQueryId = static_cast<QueryId>(-1);

/// One registered query together with its public id — the unit the
/// persistence layer (persist/snapshot.hpp) captures and restores.
struct RegisteredQuery {
  QueryId id = kInvalidQueryId;
  QueryGraph query;
};

/// Streaming delivery target.  OnMatch is invoked once per incremental
/// match, after each processing phase, on the caller's thread.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnMatch(QueryId query, const MatchRecord& m) = 0;
};

/// A ResultSink that collects matches per query (tests, small tools).
class CollectingSink : public ResultSink {
 public:
  void OnMatch(QueryId query, const MatchRecord& m) override {
    matches_[query].push_back(m);
  }
  const std::vector<MatchRecord>& MatchesFor(QueryId q) const {
    static const std::vector<MatchRecord> kEmpty;
    auto it = matches_.find(q);
    return it == matches_.end() ? kEmpty : it->second;
  }
  size_t TotalCount() const {
    size_t n = 0;
    for (const auto& [q, v] : matches_) n += v.size();
    return n;
  }

 private:
  std::unordered_map<QueryId, std::vector<MatchRecord>> matches_;
};

/// Per-ProcessBatch knobs.
struct BatchOptions {
  /// Per-query host budget in seconds for the CPU (CSM) engines; 0 uses
  /// the engine default (EngineOptions::csm_budget_seconds).  Device
  /// engines take their budget from
  /// GammaOptions::device.host_budget_seconds at construction.
  double budget_seconds = 0.0;
  /// When set, every incremental match is also delivered via OnMatch.
  ResultSink* sink = nullptr;
  /// When false, match vectors in the report stay empty (counts are
  /// still exact) — combine with `sink` for bounded-memory streaming.
  bool materialize = true;
};

/// One query's share of a batch: matches (or just counts when not
/// materializing) plus the unified timing/truncation story that was
/// previously split across BatchResult::TimedOut(),
/// CsmEngine::timed_out() and BatchResult::overflowed.
struct QueryReport {
  QueryId id = kInvalidQueryId;

  std::vector<MatchRecord> positive_matches;  ///< empty if !materialize
  std::vector<MatchRecord> negative_matches;  ///< empty if !materialize
  size_t num_positive = 0;  ///< exact counts, independent of materialize
  size_t num_negative = 0;

  bool timed_out = false;   ///< a host/launch budget expired
  bool overflowed = false;  ///< a result cap was hit

  DeviceStats update_stats;  ///< zero for CPU engines
  DeviceStats match_stats;   ///< zero for CPU engines
  double preprocess_host_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< this query's host time share

  /// The "unsolved query" condition of Table III: results are partial.
  bool Truncated() const { return timed_out || overflowed; }

  size_t TotalMatches() const { return num_positive + num_negative; }

  /// Modeled device latency (device engines): update + matching
  /// makespan with CPU preprocessing overlapped (§IV-A).
  double ModeledSeconds(const DeviceConfig& cfg) const {
    double device = static_cast<double>(update_stats.makespan_ticks +
                                        match_stats.makespan_ticks) *
                    cfg.TickSeconds();
    return std::max(device, preprocess_host_seconds);
  }

  // Streaming bookkeeping (managed by Engine; not part of the API).
  size_t streamed_positive = 0;
  size_t streamed_negative = 0;
};

/// Everything one batch produced across all registered queries.
struct BatchReport {
  /// One entry per live query, in registration order.
  std::vector<QueryReport> queries;

  /// Aggregate device stats: the graph-update kernel (charged once for
  /// shared-graph engines) and the matching launches.
  DeviceStats update_stats;
  DeviceStats match_stats;
  double preprocess_host_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< whole ProcessBatch call
  /// This batch's critical-path seconds (sum over phases of the
  /// slowest shard's thread-CPU time) — the wall-clock a host with
  /// enough free cores pays.  Filled only by the sharded serving
  /// layer; 0 for single-instance engines.  This is the clock behind
  /// ClockDomain::kCriticalPath (see Engine::Describe()).
  double critical_path_seconds = 0.0;
  /// Ingest-path observability (serve layer): how long this batch sat
  /// in the ingest queue before processing started, and how many
  /// batches (ShardedEngine::SubmitBatch) or ops (TenantFrontDoor)
  /// were queued ahead of it at submit time.  0 on the direct
  /// ProcessBatch path — there is no queue to wait in.
  double queue_wait_seconds = 0.0;
  size_t queue_depth = 0;

  QueryReport* Find(QueryId id) {
    for (QueryReport& q : queries) {
      if (q.id == id) return &q;
    }
    return nullptr;
  }
  const QueryReport* Find(QueryId id) const {
    return const_cast<BatchReport*>(this)->Find(id);
  }

  bool Truncated() const {
    for (const QueryReport& q : queries) {
      if (q.Truncated()) return true;
    }
    return false;
  }

  size_t TotalMatches() const {
    size_t n = 0;
    for (const QueryReport& q : queries) n += q.TotalMatches();
    return n;
  }

  double ModeledSeconds(const DeviceConfig& cfg) const {
    double device = static_cast<double>(update_stats.makespan_ticks +
                                        match_stats.makespan_ticks) *
                    cfg.TickSeconds();
    return std::max(device, preprocess_host_seconds);
  }
};

/// Which clock an engine's latencies must be read from.  The repo's
/// measurement convention (docs/BENCHMARKS.md): never claim wall-clock
/// parallelism this host cannot show.
enum class ClockDomain {
  kModeledDevice,  ///< BatchReport::ModeledSeconds (simulated makespan)
  kCriticalPath,   ///< BatchReport::critical_path_seconds (sharded CPU)
  kHostWall,       ///< BatchReport::host_wall_seconds (sequential CPU)
};

/// Stable name of a clock domain: "modeled-device" | "critical-path" |
/// "host-wall" (the `latency_metric` vocabulary of bench JSON rows).
const char* ClockDomainName(ClockDomain clock);

namespace obs {
enum class Domain : uint8_t;
}

/// Maps core's ClockDomain onto the obs layer's trace Domain (the obs
/// layer sits below core and defines its own mirror of the enum; this
/// is the one sanctioned crossing — docs/OBSERVABILITY.md).
obs::Domain ToObsTraceDomain(ClockDomain clock);

/// Engine capability introspection, returned by Engine::Describe().
/// Consumers select clocks and record provenance from this struct
/// instead of sniffing engine names or downcasting.
struct EngineInfo {
  /// Alias-resolved canonical spec, e.g. "sharded(gamma, shards=8)".
  /// Stamped by the registry at construction; embedded in bench JSON
  /// rows as the provenance key (scripts/bench_diff.py joins on it).
  std::string canonical_spec;
  /// The clock its latencies are honest under.
  ClockDomain clock = ClockDomain::kHostWall;
  /// False for engines that reject RemoveQuery (none today; wrappers
  /// must forward their inner engine's answer).
  bool supports_remove_query = true;
  /// Shard topology: 1 for single-instance engines, the shard count
  /// for the sharded serving layer.
  size_t num_shards = 1;
  /// Wrapper engines: canonical spec of the inner engine ("" when the
  /// engine wraps nothing).
  std::string inner_spec;
  /// Snapshot/restore capability (persist/snapshot.hpp): true when the
  /// engine exposes its registered query set (RegisteredQueries) and
  /// can re-register a query under its original public id
  /// (RestoreQuery), so CaptureSnapshot + warm-start restore reproduce
  /// it exactly.  Wrappers forward their inner engine's answer.
  bool supports_snapshot = false;
  /// Multi-tenant capability (core/tenant.hpp): true when
  /// Engine::tenant_control() returns a usable TenantControl — tenant
  /// namespaces, admission control, SLO-aware batch formation.  Only
  /// the tenant front door (serve/tenant_front_door.hpp) sets this.
  bool supports_tenancy = false;
  /// Replica-group capability (core/replication.hpp): true when
  /// Engine::replication_control() returns a usable
  /// ReplicationControl — a leader shipping its WAL to followers with
  /// failover.  Only the replica group (replica/group.hpp) sets this.
  bool supports_replication = false;
  /// Follower replicas behind the leader (0 for unreplicated engines).
  size_t num_followers = 0;
  /// Seconds per modeled device tick for engines whose clock is
  /// kModeledDevice (0 otherwise).  Lets clock-agnostic consumers (the
  /// obs layer's phase spans) convert DeviceStats tick counts to
  /// seconds without reaching for the engine's DeviceConfig; wrappers
  /// forward their inner engine's value.
  double tick_seconds = 0.0;
};

/// The unified engine interface.  Implementations: GammaEngine (one
/// Gamma instance per query), MultiGammaEngine (shared device graph,
/// fused launches), CsmAdapter (each CSM baseline).  Construct through
/// MakeEngine()/EngineRegistry.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry name ("gamma", "multi", "tf", ...).
  virtual const char* Name() const = 0;

  /// Capability introspection: canonical spec, clock domain, shard
  /// topology.  This is how drivers pick the right latency clock —
  /// ScenarioRunner, bench_common and the examples all switch on
  /// Describe().clock instead of probing concrete engine types.
  virtual EngineInfo Describe() const = 0;

  /// Registers a pattern against the *current* graph state; it takes
  /// part in every subsequent ProcessBatch.
  virtual QueryId AddQuery(const QueryGraph& q) = 0;
  /// Unregisters; returns false if the id is unknown (already removed).
  virtual bool RemoveQuery(QueryId id) = 0;
  /// Live query ids, in registration order.
  virtual std::vector<QueryId> QueryIds() const = 0;
  size_t NumQueries() const { return QueryIds().size(); }

  /// Snapshot capture (persist/snapshot.hpp): the live query set with
  /// its public ids, in registration order.  Engines that cannot
  /// reproduce their registration state return empty and report
  /// Describe().supports_snapshot == false.
  virtual std::vector<RegisteredQuery> RegisteredQueries() const {
    return {};
  }

  /// Snapshot restore: re-registers `q` under the exact public id it
  /// held when the snapshot was taken.  `id` must be ahead of every id
  /// assigned so far (snapshots list queries in registration order, so
  /// replaying them in order satisfies this); the id counter advances
  /// past `id`, so later AddQuery calls never collide with restored
  /// ids.  Returns false when the engine does not support snapshots or
  /// `id` is not ahead of the counter.
  virtual bool RestoreQuery(const QueryGraph& q, QueryId id) {
    (void)q;
    (void)id;
    return false;
  }

  /// The engine's evolving host-side graph (updated by ProcessBatch).
  virtual const LabeledGraph& host_graph() const = 0;

  /// Tenancy capability (core/tenant.hpp): non-null exactly when
  /// Describe().supports_tenancy — drivers reach tenant registration,
  /// ingest and accounting through this interface instead of
  /// downcasting to serve/ types.  Wrappers that merely contain a
  /// tenant layer (none today) would forward it.
  virtual TenantControl* tenant_control() { return nullptr; }
  const TenantControl* tenant_control() const {
    return const_cast<Engine*>(this)->tenant_control();
  }

  /// Replication capability (core/replication.hpp): non-null exactly
  /// when Describe().supports_replication — drivers reach follower
  /// state, lag accounting and the failover drill through this
  /// interface instead of downcasting to replica/ types.
  virtual ReplicationControl* replication_control() { return nullptr; }
  const ReplicationControl* replication_control() const {
    return const_cast<Engine*>(this)->replication_control();
  }

  /// Digests one update batch for every live query: sanitizes it,
  /// enumerates negative matches on the pre-update state, applies the
  /// update, enumerates positive matches on the post-update state.
  /// Matches are delivered per BatchOptions (materialized and/or
  /// streamed).
  BatchReport ProcessBatch(const UpdateBatch& batch,
                           const BatchOptions& options = {});

 protected:
  friend class StreamPipeline;
  // The serving layer drives the same phases across inner engines it
  // owns (see serve/sharded_engine.hpp, serve/tenant_front_door.hpp),
  // and the replica group drives them on its leader and followers
  // (replica/group.hpp, replica/follower.hpp).
  friend class serve::ShardedEngine;
  friend class serve::TenantFrontDoor;
  friend class replica::ReplicatedEngine;

  /// Template-method phases over a batch already sanitized against
  /// host_graph().  StreamPipeline drives them directly so it can
  /// overlap host preparation of batch i+1 with the positive phase of
  /// batch i.  Engines whose processing cannot be split (the sequential
  /// CSM chassis interleaves matching with updates) do all their work
  /// in RunUpdatePhase and leave RunMatchPhase empty.
  ///
  /// Phase contract: a driver must run every batch through the full,
  /// fixed sequence — RunMatchPhase(positive=false), RunUpdatePhase,
  /// RunMatchPhase(positive=true) — even when a phase has no seeds.
  /// The order is semantically forced (negatives need the pre-update
  /// state, positives the post-update state), and engines may rely on
  /// the negative phase marking the start of a batch (ShardedEngine
  /// resets its per-batch shard scratch there).
  virtual void RunMatchPhase(const UpdateBatch& batch, bool positive,
                             const BatchOptions& options,
                             BatchReport* report) = 0;
  virtual void RunUpdatePhase(const UpdateBatch& batch,
                              const BatchOptions& options,
                              BatchReport* report) = 0;

  /// Creates one QueryReport slot per live query.  Slots appear in
  /// QueryIds() order, so phase implementations may index
  /// report->queries positionally instead of calling Find().
  void InitReport(BatchReport* report) const;

  /// Streams matches appended since the previous flush to the sink and,
  /// when not materializing, drops them; maintains the num_* counts.
  static void FlushPhase(const BatchOptions& options, BatchReport* report);

  /// End-of-batch hook, called by ProcessBatch after the phases,
  /// flushes and timing are complete — `batch` is the *sanitized*
  /// batch the phases actually digested, `report` is final.  Wrapper
  /// engines that must observe every applied batch exactly once at
  /// the outermost layer override this (the replica group tees the
  /// batch into its WAL and advances followers here); the default
  /// does nothing.  Runs outside the report's own clocks: work done
  /// here never inflates the batch's reported latency.
  virtual void OnBatchDigested(const UpdateBatch& batch,
                               const BatchReport& report) {
    (void)batch;
    (void)report;
  }

  /// Delivers one match immediately — count + sink + (if materializing)
  /// report vector — preserving the caller's emission order.  For
  /// engines whose matches do not arrive polarity-grouped (the CSM
  /// chassis interleaves positives and negatives edge by edge); matches
  /// delivered this way are skipped by the next FlushPhase.
  static void DeliverDirect(const BatchOptions& options, QueryReport* qr,
                            const MatchRecord& m);

  /// The alias-resolved canonical spec, reported by Describe()
  /// implementations through this accessor.  Engines without a stamp
  /// (constructed directly, not via the registry) fall back to their
  /// registry name.
  std::string CanonicalSpecOrName() const {
    return canonical_spec_.empty() ? std::string(Name()) : canonical_spec_;
  }
  /// Wrapper engines that compose their own canonical spec with
  /// defaults materialized (ShardedEngine's shard count) stamp it here
  /// during construction; the registry stamps every still-unstamped
  /// engine after its factory returns and never overwrites.
  void StampCanonicalSpec(std::string spec) {
    canonical_spec_ = std::move(spec);
  }

  // --- observability (src/obs/; docs/OBSERVABILITY.md) ---
  // Shared by ProcessBatch's span/counter publishing and by the
  // serving layer's per-shard spans (ShardedEngine is a friend and
  // tags its shard spans with the same batch sequence number).
  /// Batches this engine object has processed; tags every span it
  /// emits.  Advances only while observability is runtime-enabled.
  uint64_t obs_batch_seq_ = 0;
  /// This engine's span cursor on its own clock domain: consecutive
  /// batches' spans tile end to end from 0, which is what makes a
  /// modeled-device trace deterministic in (spec, scenario, seed).
  double obs_cursor_seconds_ = 0.0;

 private:
  friend class EngineRegistry;  // stamps canonical_spec_ post-factory
  std::string canonical_spec_;

  /// Publishes one batch's counters and clock-domain phase spans; only
  /// called from ProcessBatch when observability is runtime-enabled.
  /// `host_after`/`cp_after` are the cumulative host-wall /
  /// critical-path readings after each of the three phases;
  /// `match_ticks_after_neg` splits the match makespan between the
  /// negative and positive phases.
  void RecordBatchObs(const UpdateBatch& batch, const BatchReport& report,
                      const double host_after[3],
                      uint64_t match_ticks_after_neg,
                      const double cp_after[3]);
  /// Cached Describe().clock / .tick_seconds (-1 = not yet cached) so
  /// the per-batch publish never rebuilds EngineInfo strings.
  int obs_clock_cache_ = -1;
  double obs_tick_seconds_ = 0.0;
};

/// Construction options for MakeEngine / EngineRegistry.
struct EngineOptions {
  /// Device-engine ("gamma", "multi") configuration, including the
  /// per-launch host budget and result cap.
  GammaOptions gamma;
  /// Result cap for the CPU (CSM) engines (0 = unlimited); exceeding it
  /// reports the query truncated, mirroring GammaOptions::result_cap.
  size_t csm_result_cap = 1'500'000;
  /// Default per-query host budget for the CPU engines (0 = unlimited);
  /// BatchOptions::budget_seconds overrides it per batch.
  double csm_budget_seconds = 0.0;

  /// --- serving layer (serve/sharded_engine.hpp) ---
  /// Worker threads for ShardedEngine's phase fan-out (0 = one per
  /// shard).  Output never depends on this; only wall-clock does.
  size_t serve_threads = 0;
  /// Capacity of the SubmitBatch ingest queue: SubmitBatch blocks (and
  /// TrySubmitBatch refuses) once this many batches are waiting.
  size_t serve_queue_capacity = 8;

  /// --- tenant front door (serve/tenant_front_door.hpp) ---
  /// Admission, SLO batch-formation and quota defaults for engines
  /// built from a `tenant(...)` spec; inline spec keys override these.
  FrontDoorOptions front_door;

  /// --- replica group (replica/group.hpp) ---
  /// Follower count, poll cadence, checkpoint policy and the modeled
  /// shipping link for engines built from a `replicated(...)` spec;
  /// inline spec keys override these.  `replica.dir` has no spec key
  /// (the spec grammar's values cannot carry paths) — drivers that
  /// need a stable shipping directory set it here.
  ReplicaOptions replica;
};

/// An engine factory receives the alias-resolved spec subtree it was
/// selected by (children and inline options included) and an
/// EngineOptions that already has the spec's own `key=value` overrides
/// applied.  Wrapper factories build their inner engines by passing
/// spec.children[i] back through EngineRegistry::Make with the same
/// options — each child's overrides are then applied on top, so
/// wrappers compose recursively for free.
using EngineFactory = std::function<std::unique_ptr<Engine>(
    const EngineSpec&, const LabeledGraph&, const EngineOptions&)>;

/// One inline option an engine accepts in its spec argument list.
struct EngineOptionKey {
  std::string key;  ///< lower-case, e.g. "result_cap"
  std::string doc;  ///< one-line help (docs/ENGINES.md, --list-engines)
  /// Parses `value` and applies it onto `options`; returns false on a
  /// malformed value (the registry composes the error message).
  /// Structural keys consumed by the factory itself (e.g. "shards")
  /// validate only and leave `options` untouched.
  std::function<bool(const std::string& value, EngineOptions* options)>
      apply;
};

/// Everything the registry knows about one engine name: how to build
/// it, which inline options it accepts, and how many inner engine
/// specs it takes (0..0 for leaf engines, 1..1 for wrappers).
struct EngineDef {
  EngineFactory factory;
  std::vector<EngineOptionKey> option_keys;
  /// One canonical example spec, shown by `example_cli --list-engines`.
  std::string example;
  size_t min_children = 0;
  size_t max_children = 0;
};

/// Spec-tree-keyed engine factory.  Built-in names (case-insensitive):
///   "gamma"              one device graph + kernel pipeline per query
///   "multi"              shared device graph, fused multi-query launches
///   "tf" | "turboflux"   TurboFlux-lite   (CPU baseline)
///   "sym" | "symbi"      SymBi-lite       (CPU baseline)
///   "rf" | "rapidflow"   RapidFlow-lite   (CPU baseline)
///   "cl" | "calig"       CaLiG-lite       (CPU baseline)
///   "gf" | "graphflow"   Graphflow-lite   (CPU baseline)
///   "sharded"            serving wrapper over any inner spec
///                        (serve/sharded_engine.hpp)
///   "tenant"             multi-tenant front door over any inner spec
///                        (serve/tenant_front_door.hpp)
///   "replicated"         WAL-shipping replica group over any inner
///                        spec (replica/group.hpp)
///
/// Specs follow the canonical grammar of core/engine_spec.hpp —
/// `sharded(gamma, shards=8)`, `gamma(result_cap=100000)` — with the
/// legacy `"sharded:gamma\@8"` form accepted as sugar.  Unknown names
/// and option keys raise EngineSpecError whose message lists the
/// registered names / the engine's valid keys (docs/ENGINES.md).
class EngineRegistry {
 public:
  static EngineRegistry& Instance();

  /// Registers an engine under `name` (overwrites an existing entry).
  void Register(const std::string& name, EngineDef def);
  /// Shorthand for a leaf engine with no inline options.
  void Register(const std::string& name, EngineFactory factory);
  void RegisterAlias(const std::string& alias, const std::string& target);

  /// True when `spec` parses and validates (names, arity, option keys
  /// and values, recursively).  The no-details probe; prefer Validate
  /// when the caller can print the reason.
  bool Has(const std::string& spec) const;
  /// Full fail-fast validation without building: nullopt when `spec`
  /// is buildable, otherwise the EngineSpecError message.
  std::optional<std::string> Validate(const std::string& spec) const;
  std::optional<std::string> Validate(const EngineSpec& spec) const;

  /// Canonical (non-alias) registered names, sorted.
  std::vector<std::string> Names() const;

  /// One row per canonical name, sorted, for `--list-engines` and the
  /// docs: the example spec plus the accepted option keys.
  struct Listing {
    std::string name;
    std::string example;
    std::vector<std::string> option_keys;  ///< sorted
  };
  std::vector<Listing> Listings() const;

  /// Alias-resolves every name in the tree ("turboflux" -> "tf").
  /// Throws EngineSpecError on an unknown name.
  EngineSpec Canonicalize(const EngineSpec& spec) const;

  /// Builds the engine over an initial graph.  Validates the whole
  /// tree first and throws EngineSpecError (never aborts) on unknown
  /// names, bad arity, unknown option keys or malformed values; the
  /// built engine is stamped with its canonical spec
  /// (Engine::Describe().canonical_spec).
  std::unique_ptr<Engine> Make(const std::string& spec,
                               const LabeledGraph& g,
                               const EngineOptions& options = {}) const;
  std::unique_ptr<Engine> Make(const EngineSpec& spec,
                               const LabeledGraph& g,
                               const EngineOptions& options = {}) const;

 private:
  EngineRegistry();
  struct Entry {
    EngineDef def;
    std::string alias_target;  ///< non-empty for aliases
  };
  /// Resolves a (possibly alias) name to its canonical entry; nullptr
  /// when unknown.  `canonical_name` receives the resolved name.
  const Entry* Resolve(const std::string& name,
                       std::string* canonical_name) const;
  /// Validate() after Canonicalize(): walks an alias-resolved tree
  /// checking arity and option keys/values at every node.
  std::optional<std::string> ValidateCanonical(
      const EngineSpec& canonical) const;
  /// Applies spec.options onto *options; throws on unknown key/value.
  void ApplyOptions(const EngineSpec& spec, const EngineDef& def,
                    EngineOptions* options) const;
  std::unordered_map<std::string, Entry> entries_;
};

/// Convenience wrappers over EngineRegistry::Instance().
std::unique_ptr<Engine> MakeEngine(const std::string& spec,
                                   const LabeledGraph& g,
                                   const EngineOptions& options = {});
std::unique_ptr<Engine> MakeEngine(const EngineSpec& spec,
                                   const LabeledGraph& g,
                                   const EngineOptions& options = {});
std::vector<std::string> EngineNames();

/// A query's *net* batch delta: device engines already emit it (this is
/// the identity on their output, modulo order); the CSM baselines emit
/// a raw sequential stream whose (+,-) flips cancel pairwise (the
/// paper's Example 1 redundancy).  Requires a materialized report.
std::vector<MatchRecord> NetDelta(const QueryReport& report);

}  // namespace bdsm
