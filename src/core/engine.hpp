/// \file engine.hpp
/// The unified engine layer: every matching system in this repository —
/// GAMMA (one device graph per query), MultiGamma (one shared device
/// graph, fused launches) and the five sequential CSM baselines
/// (TurboFlux, SymBi, RapidFlow, CaLiG, Graphflow) — behind one
/// interface, so benches, examples and serving code select an engine by
/// name instead of by code path.
///
/// The interface is the paper's problem statement made operational:
/// queries are registered and removed at runtime (`AddQuery` /
/// `RemoveQuery`), one `ProcessBatch` call digests an update batch for
/// every live query, and results are delivered either materialized in
/// the returned `BatchReport` or streamed through a `ResultSink`
/// callback (the postprocess hook of Fig. 3) without ever building
/// unbounded vectors.
///
/// Quickstart:
///   auto engine = MakeEngine("gamma", initial_graph);
///   QueryId q = engine->AddQuery(query);
///   BatchReport r = engine->ProcessBatch(batch);
///   // r.Find(q)->positive_matches / ->negative_matches, r.*_stats
///
/// Streaming:
///   struct Alert : ResultSink {
///     void OnMatch(QueryId q, const MatchRecord& m) override { ... }
///   } sink;
///   BatchOptions opts;
///   opts.sink = &sink;
///   opts.materialize = false;  // counts only, no vectors
///   engine->ProcessBatch(batch, opts);
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gamma.hpp"
#include "core/match.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/query_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

namespace serve {
class ShardedEngine;
}

/// Stable handle of a registered query.  Ids are engine-scoped,
/// monotonically assigned, and never reused after RemoveQuery.
using QueryId = uint32_t;
inline constexpr QueryId kInvalidQueryId = static_cast<QueryId>(-1);

/// Streaming delivery target.  OnMatch is invoked once per incremental
/// match, after each processing phase, on the caller's thread.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnMatch(QueryId query, const MatchRecord& m) = 0;
};

/// A ResultSink that collects matches per query (tests, small tools).
class CollectingSink : public ResultSink {
 public:
  void OnMatch(QueryId query, const MatchRecord& m) override {
    matches_[query].push_back(m);
  }
  const std::vector<MatchRecord>& MatchesFor(QueryId q) const {
    static const std::vector<MatchRecord> kEmpty;
    auto it = matches_.find(q);
    return it == matches_.end() ? kEmpty : it->second;
  }
  size_t TotalCount() const {
    size_t n = 0;
    for (const auto& [q, v] : matches_) n += v.size();
    return n;
  }

 private:
  std::unordered_map<QueryId, std::vector<MatchRecord>> matches_;
};

/// Per-ProcessBatch knobs.
struct BatchOptions {
  /// Per-query host budget in seconds for the CPU (CSM) engines; 0 uses
  /// the engine default (EngineOptions::csm_budget_seconds).  Device
  /// engines take their budget from
  /// GammaOptions::device.host_budget_seconds at construction.
  double budget_seconds = 0.0;
  /// When set, every incremental match is also delivered via OnMatch.
  ResultSink* sink = nullptr;
  /// When false, match vectors in the report stay empty (counts are
  /// still exact) — combine with `sink` for bounded-memory streaming.
  bool materialize = true;
};

/// One query's share of a batch: matches (or just counts when not
/// materializing) plus the unified timing/truncation story that was
/// previously split across BatchResult::TimedOut(),
/// CsmEngine::timed_out() and BatchResult::overflowed.
struct QueryReport {
  QueryId id = kInvalidQueryId;

  std::vector<MatchRecord> positive_matches;  ///< empty if !materialize
  std::vector<MatchRecord> negative_matches;  ///< empty if !materialize
  size_t num_positive = 0;  ///< exact counts, independent of materialize
  size_t num_negative = 0;

  bool timed_out = false;   ///< a host/launch budget expired
  bool overflowed = false;  ///< a result cap was hit

  DeviceStats update_stats;  ///< zero for CPU engines
  DeviceStats match_stats;   ///< zero for CPU engines
  double preprocess_host_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< this query's host time share

  /// The "unsolved query" condition of Table III: results are partial.
  bool Truncated() const { return timed_out || overflowed; }

  size_t TotalMatches() const { return num_positive + num_negative; }

  /// Modeled device latency (device engines): update + matching
  /// makespan with CPU preprocessing overlapped (§IV-A).
  double ModeledSeconds(const DeviceConfig& cfg) const {
    double device = static_cast<double>(update_stats.makespan_ticks +
                                        match_stats.makespan_ticks) *
                    cfg.TickSeconds();
    return std::max(device, preprocess_host_seconds);
  }

  // Streaming bookkeeping (managed by Engine; not part of the API).
  size_t streamed_positive = 0;
  size_t streamed_negative = 0;
};

/// Everything one batch produced across all registered queries.
struct BatchReport {
  /// One entry per live query, in registration order.
  std::vector<QueryReport> queries;

  /// Aggregate device stats: the graph-update kernel (charged once for
  /// shared-graph engines) and the matching launches.
  DeviceStats update_stats;
  DeviceStats match_stats;
  double preprocess_host_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< whole ProcessBatch call

  QueryReport* Find(QueryId id) {
    for (QueryReport& q : queries) {
      if (q.id == id) return &q;
    }
    return nullptr;
  }
  const QueryReport* Find(QueryId id) const {
    return const_cast<BatchReport*>(this)->Find(id);
  }

  bool Truncated() const {
    for (const QueryReport& q : queries) {
      if (q.Truncated()) return true;
    }
    return false;
  }

  size_t TotalMatches() const {
    size_t n = 0;
    for (const QueryReport& q : queries) n += q.TotalMatches();
    return n;
  }

  double ModeledSeconds(const DeviceConfig& cfg) const {
    double device = static_cast<double>(update_stats.makespan_ticks +
                                        match_stats.makespan_ticks) *
                    cfg.TickSeconds();
    return std::max(device, preprocess_host_seconds);
  }
};

/// The unified engine interface.  Implementations: GammaEngine (one
/// Gamma instance per query), MultiGammaEngine (shared device graph,
/// fused launches), CsmAdapter (each CSM baseline).  Construct through
/// MakeEngine()/EngineRegistry.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registry name ("gamma", "multi", "tf", ...).
  virtual const char* Name() const = 0;

  /// True when latencies should be read from ModeledSeconds (simulated
  /// device makespan); false for CPU engines measured by host wall.
  virtual bool ModelsDevice() const { return false; }

  /// Registers a pattern against the *current* graph state; it takes
  /// part in every subsequent ProcessBatch.
  virtual QueryId AddQuery(const QueryGraph& q) = 0;
  /// Unregisters; returns false if the id is unknown (already removed).
  virtual bool RemoveQuery(QueryId id) = 0;
  /// Live query ids, in registration order.
  virtual std::vector<QueryId> QueryIds() const = 0;
  size_t NumQueries() const { return QueryIds().size(); }

  /// The engine's evolving host-side graph (updated by ProcessBatch).
  virtual const LabeledGraph& host_graph() const = 0;

  /// Digests one update batch for every live query: sanitizes it,
  /// enumerates negative matches on the pre-update state, applies the
  /// update, enumerates positive matches on the post-update state.
  /// Matches are delivered per BatchOptions (materialized and/or
  /// streamed).
  BatchReport ProcessBatch(const UpdateBatch& batch,
                           const BatchOptions& options = {});

 protected:
  friend class StreamPipeline;
  // The serving layer drives the same phases across inner engines it
  // owns (see serve/sharded_engine.hpp).
  friend class serve::ShardedEngine;

  /// Template-method phases over a batch already sanitized against
  /// host_graph().  StreamPipeline drives them directly so it can
  /// overlap host preparation of batch i+1 with the positive phase of
  /// batch i.  Engines whose processing cannot be split (the sequential
  /// CSM chassis interleaves matching with updates) do all their work
  /// in RunUpdatePhase and leave RunMatchPhase empty.
  ///
  /// Phase contract: a driver must run every batch through the full,
  /// fixed sequence — RunMatchPhase(positive=false), RunUpdatePhase,
  /// RunMatchPhase(positive=true) — even when a phase has no seeds.
  /// The order is semantically forced (negatives need the pre-update
  /// state, positives the post-update state), and engines may rely on
  /// the negative phase marking the start of a batch (ShardedEngine
  /// resets its per-batch shard scratch there).
  virtual void RunMatchPhase(const UpdateBatch& batch, bool positive,
                             const BatchOptions& options,
                             BatchReport* report) = 0;
  virtual void RunUpdatePhase(const UpdateBatch& batch,
                              const BatchOptions& options,
                              BatchReport* report) = 0;

  /// Creates one QueryReport slot per live query.  Slots appear in
  /// QueryIds() order, so phase implementations may index
  /// report->queries positionally instead of calling Find().
  void InitReport(BatchReport* report) const;

  /// Streams matches appended since the previous flush to the sink and,
  /// when not materializing, drops them; maintains the num_* counts.
  static void FlushPhase(const BatchOptions& options, BatchReport* report);

  /// Delivers one match immediately — count + sink + (if materializing)
  /// report vector — preserving the caller's emission order.  For
  /// engines whose matches do not arrive polarity-grouped (the CSM
  /// chassis interleaves positives and negatives edge by edge); matches
  /// delivered this way are skipped by the next FlushPhase.
  static void DeliverDirect(const BatchOptions& options, QueryReport* qr,
                            const MatchRecord& m);
};

/// Construction options for MakeEngine / EngineRegistry.
struct EngineOptions {
  /// Device-engine ("gamma", "multi") configuration, including the
  /// per-launch host budget and result cap.
  GammaOptions gamma;
  /// Result cap for the CPU (CSM) engines (0 = unlimited); exceeding it
  /// reports the query truncated, mirroring GammaOptions::result_cap.
  size_t csm_result_cap = 1'500'000;
  /// Default per-query host budget for the CPU engines (0 = unlimited);
  /// BatchOptions::budget_seconds overrides it per batch.
  double csm_budget_seconds = 0.0;

  /// --- serving layer (serve/sharded_engine.hpp) ---
  /// Worker threads for ShardedEngine's phase fan-out (0 = one per
  /// shard).  Output never depends on this; only wall-clock does.
  size_t serve_threads = 0;
  /// Capacity of the SubmitBatch ingest queue: SubmitBatch blocks (and
  /// TrySubmitBatch refuses) once this many batches are waiting.
  size_t serve_queue_capacity = 8;
};

using EngineFactory = std::function<std::unique_ptr<Engine>(
    const LabeledGraph&, const EngineOptions&)>;

/// String-keyed engine factory.  Built-in names (case-insensitive):
///   "gamma"              one device graph + kernel pipeline per query
///   "multi"              shared device graph, fused multi-query launches
///   "tf" | "turboflux"   TurboFlux-lite   (CPU baseline)
///   "sym" | "symbi"      SymBi-lite       (CPU baseline)
///   "rf" | "rapidflow"   RapidFlow-lite   (CPU baseline)
///   "cl" | "calig"       CaLiG-lite       (CPU baseline)
///   "gf" | "graphflow"   Graphflow-lite   (CPU baseline)
///
/// Composite specs — `"<prefix>:<rest>"` — build engines parameterized by
/// the spec string itself.  The serving layer registers the "sharded"
/// prefix: "sharded:gamma\@8" is a ShardedEngine over 8 gamma shards
/// (serve/sharded_engine.hpp).
class EngineRegistry {
 public:
  static EngineRegistry& Instance();

  /// Registers a factory under `name` (overwrites an existing entry).
  void Register(const std::string& name, EngineFactory factory);
  bool Has(const std::string& name) const;
  /// Canonical (non-alias, non-prefix) registered names, sorted.
  std::vector<std::string> Names() const;

  /// Builds the engine over an initial graph; GAMMA_CHECKs on unknown
  /// names (use Has() to probe).
  std::unique_ptr<Engine> Make(const std::string& name,
                               const LabeledGraph& g,
                               const EngineOptions& options = {}) const;

  /// A composite-spec factory receives the part of the spec after
  /// `"<prefix>:"`, already lower-cased.
  using SpecFactory = std::function<std::unique_ptr<Engine>(
      const std::string& rest, const LabeledGraph&, const EngineOptions&)>;
  /// Validates the `"<rest>"` of a spec without building (drives Has()).
  using SpecValidator = std::function<bool(const std::string& rest)>;

  /// Registers a composite-spec prefix: Make(`"<prefix>:<rest>"`, ...)
  /// dispatches to `factory`, Has(`"<prefix>:<rest>"`) to `validator`.
  /// Plain names always win — the prefix path is only consulted for
  /// specs containing ':'.
  void RegisterPrefix(const std::string& prefix, SpecFactory factory,
                      SpecValidator validator);

 private:
  EngineRegistry();
  struct Entry {
    EngineFactory factory;
    bool is_alias = false;
  };
  struct PrefixEntry {
    SpecFactory factory;
    SpecValidator validator;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, PrefixEntry> prefixes_;
};

/// Convenience wrappers over EngineRegistry::Instance().
std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                   const LabeledGraph& g,
                                   const EngineOptions& options = {});
std::vector<std::string> EngineNames();

/// A query's *net* batch delta: device engines already emit it (this is
/// the identity on their output, modulo order); the CSM baselines emit
/// a raw sequential stream whose (+,-) flips cancel pairwise (the
/// paper's Example 1 redundancy).  Requires a materialized report.
std::vector<MatchRecord> NetDelta(const QueryReport& report);

}  // namespace bdsm
