#include "core/stream_pipeline.hpp"

#include <future>

#include "util/timer.hpp"

namespace bdsm {

PipelineStats StreamPipeline::Run(const std::vector<UpdateBatch>& stream,
                                  std::vector<BatchReport>* reports,
                                  const BatchOptions& options) {
  PipelineStats stats;
  Timer wall;

  // Background preparation: sanitize against the *current* host graph.
  // Launched while the engine runs the previous batch's positive phase;
  // the host graph is final for the round by then, so the read is
  // race-free (see header).
  auto prepare = [this](const UpdateBatch& raw) {
    Timer t;
    UpdateBatch clean = SanitizeBatch(engine_->host_graph(), raw);
    return std::make_pair(std::move(clean), t.ElapsedSeconds());
  };

  std::future<std::pair<UpdateBatch, double>> prepared;
  if (!stream.empty()) {
    // First batch has nothing to overlap with.
    prepared = std::async(std::launch::deferred, prepare, stream[0]);
  }

  double last_kernel_wall = 0.0;  // device time batch i's prep hid behind
  for (size_t i = 0; i < stream.size(); ++i) {
    auto [batch, prep_seconds] = prepared.get();

    PipelineBatchStats bs;
    bs.prep_seconds = prep_seconds;
    // This batch's preparation ran while batch i-1's positive phase
    // did; the hidden portion is bounded by both durations.
    if (i > 0) {
      bs.prep_hidden_seconds = std::min(prep_seconds, last_kernel_wall);
    }
    bs.applied_ops = batch.size();

    Timer batch_wall;
    BatchReport report;
    engine_->InitReport(&report);

    engine_->RunMatchPhase(batch, /*positive=*/false, options, &report);
    Engine::FlushPhase(options, &report);

    engine_->RunUpdatePhase(batch, options, &report);
    Engine::FlushPhase(options, &report);

    // Host graph is now final for this round: kick off the next batch's
    // preparation so it overlaps the positive phase below.
    Timer overlap_timer;
    if (i + 1 < stream.size()) {
      prepared = std::async(std::launch::async, prepare, stream[i + 1]);
    }

    engine_->RunMatchPhase(batch, /*positive=*/true, options, &report);
    last_kernel_wall = overlap_timer.ElapsedSeconds();
    Engine::FlushPhase(options, &report);

    report.host_wall_seconds = batch_wall.ElapsedSeconds();
    for (QueryReport& qr : report.queries) {
      if (qr.host_wall_seconds == 0.0) {
        qr.host_wall_seconds = report.host_wall_seconds;
      }
      bs.positive_matches += qr.num_positive;
      bs.negative_matches += qr.num_negative;
    }
    bs.device = report.update_stats;
    bs.device.MergeSequential(report.match_stats);
    stats.total_hidden_seconds += bs.prep_hidden_seconds;
    stats.batches.push_back(bs);
    if (reports) reports->push_back(std::move(report));
  }

  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

}  // namespace bdsm
