#include "core/stream_pipeline.hpp"

#include <future>

#include "util/timer.hpp"

namespace bdsm {

PipelineStats StreamPipeline::Run(const std::vector<UpdateBatch>& stream,
                                  std::vector<BatchResult>* sink) {
  PipelineStats stats;
  Timer wall;

  // Background preparation: sanitize against the *current* host graph.
  // Launched while the device runs the previous batch's positives
  // kernel; the host graph is stable during that kernel, so the read is
  // race-free (see header).
  auto prepare = [this](const UpdateBatch& raw) {
    Timer t;
    UpdateBatch clean = SanitizeBatch(gamma_->host_graph_, raw);
    return std::make_pair(std::move(clean), t.ElapsedSeconds());
  };

  std::future<std::pair<UpdateBatch, double>> prepared;
  if (!stream.empty()) {
    // First batch has nothing to overlap with.
    prepared = std::async(std::launch::deferred, prepare, stream[0]);
  }

  double last_kernel_wall = 0.0;  // device time batch i's prep hid behind
  for (size_t i = 0; i < stream.size(); ++i) {
    auto [batch, prep_seconds] = prepared.get();

    PipelineBatchStats bs;
    bs.prep_seconds = prep_seconds;
    // This batch's preparation ran while batch i-1's positives kernel
    // did; the hidden portion is bounded by both durations.
    if (i > 0) {
      bs.prep_hidden_seconds = std::min(prep_seconds, last_kernel_wall);
    }
    bs.applied_ops = batch.size();

    BatchResult result;
    WbmResult neg = gamma_->RunMatchPhase(batch, /*positive=*/false);
    result.negative_matches = std::move(neg.matches);
    result.match_stats.MergeSequential(neg.stats);
    result.overflowed = neg.overflowed;

    gamma_->RunUpdatePhase(batch, &result);

    // Host graph is now final for this round: kick off the next batch's
    // preparation so it overlaps the positives kernel below.
    Timer overlap_timer;
    if (i + 1 < stream.size()) {
      prepared = std::async(std::launch::async, prepare, stream[i + 1]);
    }

    WbmResult pos = gamma_->RunMatchPhase(batch, /*positive=*/true);
    last_kernel_wall = overlap_timer.ElapsedSeconds();
    result.positive_matches = std::move(pos.matches);
    result.match_stats.MergeSequential(pos.stats);
    result.overflowed = result.overflowed || pos.overflowed;

    bs.positive_matches = result.positive_matches.size();
    bs.negative_matches = result.negative_matches.size();
    bs.device = result.update_stats;
    bs.device.MergeSequential(result.match_stats);
    stats.total_hidden_seconds += bs.prep_hidden_seconds;
    stats.batches.push_back(bs);
    if (sink) sink->push_back(std::move(result));
  }

  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

}  // namespace bdsm
