#include "core/encoder.hpp"

#include <algorithm>

namespace bdsm {

CandidateEncoder::CandidateEncoder(const QueryGraph& q)
    : used_labels_(q.UsedVertexLabels()),
      num_query_vertices_(q.NumVertices()) {
  GAMMA_CHECK_MSG(3 * used_labels_.size() <= 64, "code exceeds 64 bits");
  qcodes_.resize(q.NumVertices());
  const size_t n = used_labels_.size();
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    uint64_t code = 0;
    int li = LabelIndex(q.VertexLabel(u));
    GAMMA_CHECK(li >= 0);
    code |= 1ull << li;
    // Count query-neighbors per used label.
    for (size_t i = 0; i < n; ++i) {
      size_t cnt = 0;
      for (VertexId nb : q.NeighborsOf(u)) {
        if (q.VertexLabel(nb) == used_labels_[i]) ++cnt;
      }
      code |= ThermometerBits2(cnt) << (n + 2 * i);
    }
    qcodes_[u] = code;
  }
}

int CandidateEncoder::LabelIndex(Label l) const {
  auto it = std::lower_bound(used_labels_.begin(), used_labels_.end(), l);
  if (it == used_labels_.end() || *it != l) return -1;
  return static_cast<int>(it - used_labels_.begin());
}

uint64_t CandidateEncoder::EncodeDataVertex(const LabeledGraph& g,
                                            VertexId v) const {
  int li = LabelIndex(g.VertexLabel(v));
  if (li < 0) return 0;  // label absent from the query: never a candidate
  const size_t n = used_labels_.size();
  uint64_t code = 1ull << li;
  // One pass over the adjacency collecting per-used-label counts.
  size_t counts[kMaxQueryVertices] = {};
  for (const Neighbor& nb : g.Neighbors(v)) {
    int ni = LabelIndex(g.VertexLabel(nb.v));
    if (ni >= 0 && counts[ni] < 2) ++counts[ni];
  }
  for (size_t i = 0; i < n; ++i) {
    code |= ThermometerBits2(counts[i]) << (n + 2 * i);
  }
  return code;
}

uint16_t CandidateEncoder::ComputeMask(uint64_t code) const {
  uint16_t mask = 0;
  for (VertexId u = 0; u < num_query_vertices_; ++u) {
    // The GSI test: v is a candidate of u iff ENC(u) AND ENC(v) == ENC(u).
    if ((qcodes_[u] & code) == qcodes_[u]) {
      mask |= static_cast<uint16_t>(1u << u);
    }
  }
  return mask;
}

void CandidateEncoder::BuildAll(const LabeledGraph& g) {
  codes_.resize(g.NumVertices());
  table_.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    codes_[v] = EncodeDataVertex(g, v);
    table_[v] = ComputeMask(codes_[v]);
  }
}

void CandidateEncoder::UpdateDirty(const LabeledGraph& g,
                                   std::span<const VertexId> dirty) {
  for (VertexId v : dirty) {
    if (v >= codes_.size()) {  // vertex added after BuildAll
      codes_.resize(g.NumVertices(), 0);
      table_.resize(g.NumVertices(), 0);
    }
    uint64_t code = EncodeDataVertex(g, v);
    if (code != codes_[v]) {
      codes_[v] = code;
      table_[v] = ComputeMask(code);
    }
  }
}

void CandidateEncoder::ApplyBatchDirty(const LabeledGraph& g,
                                       const UpdateBatch& batch) {
  std::vector<VertexId> dirty;
  dirty.reserve(batch.size() * 2);
  for (const UpdateOp& op : batch) {
    dirty.push_back(op.u);
    dirty.push_back(op.v);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  UpdateDirty(g, dirty);
}

size_t CandidateEncoder::CountCandidates(VertexId u) const {
  size_t n = 0;
  for (uint16_t row : table_) n += (row >> u) & 1u;
  return n;
}

}  // namespace bdsm
