#include "core/match_store.hpp"

namespace bdsm {

std::string MatchStore::KeyOf(const MatchRecord& m) {
  MatchRecord unsigned_m = m;
  unsigned_m.positive = true;  // keys ignore polarity
  return unsigned_m.Key();
}

void MatchStore::ApplyDelta(const MatchRecord& m) {
  std::string key = KeyOf(m);
  if (m.positive) {
    auto [it, inserted] = live_.emplace(key, m);
    GAMMA_CHECK_MSG(inserted, "duplicate positive delta");
    ++applied_positive_;
    for (uint8_t i = 0; i < m.n; ++i) ++participation_[m.m[i]];
  } else {
    size_t erased = live_.erase(key);
    GAMMA_CHECK_MSG(erased == 1, "negative delta for unknown match");
    ++applied_negative_;
    for (uint8_t i = 0; i < m.n; ++i) {
      auto it = participation_.find(m.m[i]);
      GAMMA_CHECK(it != participation_.end() && it->second > 0);
      if (--it->second == 0) participation_.erase(it);
    }
  }
}

void MatchStore::Apply(const BatchResult& result) {
  // Negatives first: a batch may retract a match and (through other
  // edges) create a structurally identical one.
  for (const MatchRecord& m : result.negative_matches) ApplyDelta(m);
  for (const MatchRecord& m : result.positive_matches) ApplyDelta(m);
}

bool MatchStore::Contains(const MatchRecord& m) const {
  return live_.count(KeyOf(m)) > 0;
}

size_t MatchStore::ParticipationCount(VertexId v) const {
  auto it = participation_.find(v);
  return it == participation_.end() ? 0 : it->second;
}

std::vector<MatchRecord> MatchStore::Snapshot() const {
  std::vector<MatchRecord> out;
  out.reserve(live_.size());
  for (const auto& [key, m] : live_) out.push_back(m);
  return out;
}

}  // namespace bdsm
