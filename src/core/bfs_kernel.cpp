#include "core/bfs_kernel.hpp"

#include <mutex>

#include "core/candidate_gen.hpp"

namespace bdsm {

namespace {

/// Shared, thread-safe memory-usage sampler (blocks run concurrently).
struct MemorySampler {
  std::mutex mu;
  std::vector<double> samples;

  void Sample(const DeviceAllocator& alloc) {
    std::lock_guard<std::mutex> lock(mu);
    samples.push_back(alloc.UsagePercent());
  }
};

using Partial = std::array<VertexId, kMaxQueryVertices>;

class BfsTask : public WarpTask {
 public:
  BfsTask(const WbmEnv* env, SeedEdge seed, std::vector<MatchRecord>* out,
          MemorySampler* sampler)
      : env_(env), seed_(seed), out_(out), sampler_(sampler) {
    GAMMA_CHECK_MSG(env_->qctx->coalesced_pairs == 0,
                    "BFS kernel requires a non-coalesced query context");
  }

  ~BfsTask() override {
    // Return any still-held frontier bytes to the allocator.
    ReleaseFrontier();
  }

  bool Step(WarpContext& ctx) override {
    const size_t nq = env_->qctx->q.NumVertices();
    if (!plan_inited_) {
      if (plan_idx_ >= env_->qctx->plans.size()) return false;
      plan_ = &env_->qctx->plans[plan_idx_++];
      if (!SeedViable()) return true;  // try next plan next step
      Partial p;
      p.fill(kInvalidVertex);
      p[plan_->a] = seed_.v1;
      p[plan_->b] = seed_.v2;
      if (nq == 2) {
        Emit(p);
        return true;
      }
      ReleaseFrontier();
      frontier_.assign(1, p);
      AccountFrontier(ctx);
      level_ = 2;
      pos_ = 0;
      plan_inited_ = true;
      return true;
    }

    // Expand a bounded number of partials per step.
    size_t budget = 8;
    while (budget-- > 0 && pos_ < frontier_.size()) {
      const Partial& p = frontier_[pos_++];
      GenCandidatesCost cost;
      GenerateCandidates(*env_->graph, env_->qctx->q, *env_->enc,
                         *env_->update_order, *plan_, p, level_,
                         seed_.order, /*relaxed=*/false, &scratch_,
                         &cands_, &cost);
      ctx.ChargeGlobal(cost.scan_words, true);
      ctx.ChargeGlobal(cost.probe_words, false);
      ctx.ChargeCompute(cost.compute_ops);
      VertexId uq = plan_->order[level_];
      for (VertexId w : cands_) {
        Partial np = p;
        np[uq] = w;
        if (level_ + 1 == nq) {
          Emit(np);
        } else {
          next_frontier_.push_back(np);
        }
      }
    }
    if (pos_ < frontier_.size()) return true;

    // Level complete: swap frontiers, account the allocation growth.
    frontier_ = std::move(next_frontier_);
    next_frontier_.clear();
    ctx.allocator().Free(held_bytes_);
    held_bytes_ = FrontierBytes(frontier_.size());
    uint64_t spilled = ctx.allocator().Alloc(held_bytes_);
    if (spilled > 0) ctx.ChargeTransfer(2 * spilled);
    sampler_->Sample(ctx.allocator());
    ctx.ChargeGlobal(frontier_.size() * env_->qctx->q.NumVertices(), true);

    ++level_;
    pos_ = 0;
    if (frontier_.empty() || level_ >= nq) {
      ReleaseFrontierDeferred(ctx);
      plan_inited_ = false;  // next plan
    }
    return true;
  }

  uint64_t EstimateRemaining() const override {
    return (frontier_.size() - pos_) +
           (env_->qctx->plans.size() - plan_idx_) * 8;
  }

  // BFS frontiers live in device global memory shared by the whole
  // kernel; splitting them is possible but the paper's BFS baseline
  // does not balance (one more reason it loses).  Not splittable.

 private:
  bool SeedViable() const {
    if (plan_->elabel != seed_.elabel) return false;
    return env_->enc->IsCandidate(seed_.v1, plan_->a) &&
           env_->enc->IsCandidate(seed_.v2, plan_->b);
  }

  void Emit(const Partial& p) {
    MatchRecord rec;
    rec.n = static_cast<uint8_t>(env_->qctx->q.NumVertices());
    rec.positive = env_->positive;
    rec.m = p;
    out_->push_back(rec);
  }

  uint64_t FrontierBytes(size_t partials) const {
    return partials * env_->qctx->q.NumVertices() * sizeof(VertexId);
  }

  void AccountFrontier(WarpContext& ctx) {
    held_bytes_ = FrontierBytes(frontier_.size());
    uint64_t spilled = ctx.allocator().Alloc(held_bytes_);
    if (spilled > 0) ctx.ChargeTransfer(2 * spilled);
    sampler_->Sample(ctx.allocator());
  }

  void ReleaseFrontierDeferred(WarpContext& ctx) {
    ctx.allocator().Free(held_bytes_);
    held_bytes_ = 0;
    frontier_.clear();
  }

  void ReleaseFrontier() {
    // Destructor path: allocator may be gone only after Device teardown,
    // which outlives tasks; held bytes were freed in the normal path.
    frontier_.clear();
    next_frontier_.clear();
  }

  const WbmEnv* env_;
  SeedEdge seed_;
  std::vector<MatchRecord>* out_;
  MemorySampler* sampler_;

  size_t plan_idx_ = 0;
  const SeedPlan* plan_ = nullptr;
  bool plan_inited_ = false;
  uint32_t level_ = 2;
  size_t pos_ = 0;
  uint64_t held_bytes_ = 0;
  std::vector<Partial> frontier_;
  std::vector<Partial> next_frontier_;
  std::vector<Neighbor> scratch_;
  std::vector<VertexId> cands_;
};

}  // namespace

BfsResult RunBfsKernel(Device& device, const WbmEnv& env,
                       const std::vector<SeedEdge>& seeds) {
  MemorySampler sampler;
  std::vector<std::vector<MatchRecord>> slots(seeds.size());
  std::vector<std::unique_ptr<WarpTask>> tasks;
  tasks.reserve(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    tasks.push_back(
        std::make_unique<BfsTask>(&env, seeds[i], &slots[i], &sampler));
  }
  BfsResult result;
  result.stats = device.Launch(std::move(tasks));
  for (auto& s : slots) {
    result.matches.insert(result.matches.end(), s.begin(), s.end());
  }
  result.memory_samples = std::move(sampler.samples);
  return result;
}

}  // namespace bdsm
