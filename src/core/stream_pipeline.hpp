/// \file stream_pipeline.hpp
/// Asynchronous batch-stream processing (paper §IV-A, Challenge III).
///
/// GAMMA's four components "operate asynchronously": while the device
/// runs batch i's matching kernel, the CPU already prepares batch i+1
/// (sanitization, seed extraction) so the kernel never waits on host
/// bookkeeping.  This module implements that overlap for a stream
/// ∆B = (∆B1, ∆B2, ...) over ANY engine behind the unified Engine
/// interface (core/engine.hpp) — single-query GAMMA, fused multi-query
/// MultiGamma, or a CPU baseline:
///
///   for each batch i:
///     [host]   take the prepared batch (from the background worker)
///     [engine] negative-match phase on the pre-update state
///     [both]   update phase (device graph + host mirror + re-encode)
///     [host->bg] start preparing batch i+1   <── overlaps ──┐
///     [engine] positive-match phase on the post-update state  <─┘
///
/// Preparation only reads the host graph, which is final for the round
/// once the update phase returns, so the overlap is race-free.  Results
/// are bit-identical to calling Engine::ProcessBatch per batch (tested,
/// including over MultiGamma).  Engines that cannot split their
/// processing (the sequential CSM chassis) do all work in the update
/// phase; the pipeline stays correct, it just hides nothing.
#pragma once

#include <vector>

#include "core/engine.hpp"

namespace bdsm {

/// Per-batch accounting of one pipeline round.
struct PipelineBatchStats {
  /// Update ops that survived sanitization and were applied.
  size_t applied_ops = 0;
  size_t positive_matches = 0;  ///< summed over all registered queries
  size_t negative_matches = 0;  ///< summed over all registered queries
  double prep_seconds = 0.0;      ///< host preparation (overlappable)
  double prep_hidden_seconds = 0.0;  ///< portion hidden behind the device
  DeviceStats device;             ///< update + matching kernels
};

/// Whole-stream accounting returned by StreamPipeline::Run.
struct PipelineStats {
  /// One entry per batch of the stream, in order.
  std::vector<PipelineBatchStats> batches;
  /// End-to-end host wall time of the Run call.
  double wall_seconds = 0.0;
  /// Host preparation time hidden behind device kernels — the paper's
  /// asynchrony payoff ("minimizing the time overhead of preceding
  /// steps prior to result computation").
  double total_hidden_seconds = 0.0;

  /// Positive + negative matches over every batch and query.
  size_t TotalMatches() const {
    size_t n = 0;
    for (const auto& b : batches) {
      n += b.positive_matches + b.negative_matches;
    }
    return n;
  }
};

/// Drives a batch stream through any Engine with host/device overlap
/// (see the file comment for the phase schedule).  The pipeline holds
/// the engine only by pointer: the caller keeps ownership and may
/// inspect or mutate the engine between Run calls (not during one).
class StreamPipeline {
 public:
  /// Wraps any engine; the pipeline drives the same phases
  /// Engine::ProcessBatch uses, overlapping preparation.
  explicit StreamPipeline(Engine* engine) : engine_(engine) {}

  /// Processes the whole stream in order.  `reports`, when non-null,
  /// receives every batch's BatchReport (bit-identical to per-batch
  /// ProcessBatch calls); `options` (sink / materialize / budget)
  /// applies to every batch.  Batches are sanitized against the
  /// engine's evolving host graph as part of the overlapped
  /// preparation, so the raw stream may contain conflicting ops.
  PipelineStats Run(const std::vector<UpdateBatch>& stream,
                    std::vector<BatchReport>* reports = nullptr,
                    const BatchOptions& options = {});

 private:
  Engine* engine_;
};

}  // namespace bdsm
