/// \file stream_pipeline.hpp
/// Asynchronous batch-stream processing (paper §IV-A, Challenge III).
///
/// GAMMA's four components "operate asynchronously": while the device
/// runs batch i's matching kernel, the CPU already prepares batch i+1
/// (sanitization, seed extraction) so the kernel never waits on host
/// bookkeeping.  This module implements that overlap for a stream
/// ∆B = (∆B1, ∆B2, ...):
///
///   for each batch i:
///     [host]   take the prepared batch (from the background worker)
///     [device] negatives kernel on the pre-update state
///     [both]   GPMA update + host mirror + dirty re-encode
///     [host->bg] start preparing batch i+1   <── overlaps ──┐
///     [device] positives kernel on the post-update state  <─┘
///
/// Preparation only reads the host graph, which is stable during the
/// positives kernel, so the overlap is race-free.  Results are
/// bit-identical to calling Gamma::ProcessBatch per batch (tested).
#pragma once

#include <vector>

#include "core/gamma.hpp"

namespace bdsm {

struct PipelineBatchStats {
  size_t applied_ops = 0;
  size_t positive_matches = 0;
  size_t negative_matches = 0;
  double prep_seconds = 0.0;      ///< host preparation (overlappable)
  double prep_hidden_seconds = 0.0;  ///< portion hidden behind the device
  DeviceStats device;             ///< update + both matching kernels
};

struct PipelineStats {
  std::vector<PipelineBatchStats> batches;
  double wall_seconds = 0.0;
  /// Host preparation time hidden behind device kernels — the paper's
  /// asynchrony payoff ("minimizing the time overhead of preceding
  /// steps prior to result computation").
  double total_hidden_seconds = 0.0;

  size_t TotalMatches() const {
    size_t n = 0;
    for (const auto& b : batches) {
      n += b.positive_matches + b.negative_matches;
    }
    return n;
  }
};

class StreamPipeline {
 public:
  /// Wraps an engine; the pipeline drives the same members ProcessBatch
  /// uses, phase by phase.
  explicit StreamPipeline(Gamma* gamma) : gamma_(gamma) {}

  /// Processes the whole stream.  `sink`, when non-null, receives every
  /// batch's incremental matches (the postprocess hook of Fig. 3).
  PipelineStats Run(const std::vector<UpdateBatch>& stream,
                    std::vector<BatchResult>* sink = nullptr);

 private:
  Gamma* gamma_;
};

}  // namespace bdsm
