#include "core/engine.hpp"

#include <algorithm>
#include <cctype>

#include "baselines/csm_common.hpp"
#include "core/multi_gamma.hpp"
#include "serve/sharded_engine.hpp"
#include "util/timer.hpp"

namespace bdsm {

// ---------------------------------------------------------------- Engine

BatchReport Engine::ProcessBatch(const UpdateBatch& raw_batch,
                                 const BatchOptions& options) {
  BatchReport report;
  InitReport(&report);
  Timer wall;

  UpdateBatch batch = SanitizeBatch(host_graph(), raw_batch);

  // Negative matches: deleted-edge seeds on the pre-update state.
  RunMatchPhase(batch, /*positive=*/false, options, &report);
  FlushPhase(options, &report);

  // Update: device graph + host mirror + candidate re-encode (CSM
  // engines run their whole sequential loop here).
  RunUpdatePhase(batch, options, &report);
  FlushPhase(options, &report);

  // Positive matches: inserted-edge seeds on the post-update state.
  RunMatchPhase(batch, /*positive=*/true, options, &report);
  FlushPhase(options, &report);

  report.host_wall_seconds = wall.ElapsedSeconds();
  for (QueryReport& qr : report.queries) {
    if (qr.host_wall_seconds == 0.0) {
      qr.host_wall_seconds = report.host_wall_seconds;
    }
  }
  return report;
}

void Engine::InitReport(BatchReport* report) const {
  report->queries.clear();
  for (QueryId id : QueryIds()) {
    QueryReport qr;
    qr.id = id;
    report->queries.push_back(std::move(qr));
  }
}

void Engine::FlushPhase(const BatchOptions& options, BatchReport* report) {
  auto flush = [&](QueryId id, std::vector<MatchRecord>* v,
                   size_t* streamed, size_t* total) {
    for (size_t i = *streamed; i < v->size(); ++i) {
      ++*total;
      if (options.sink) options.sink->OnMatch(id, (*v)[i]);
    }
    *streamed = v->size();
    if (!options.materialize) {
      v->clear();
      *streamed = 0;
    }
  };
  for (QueryReport& qr : report->queries) {
    flush(qr.id, &qr.positive_matches, &qr.streamed_positive,
          &qr.num_positive);
    flush(qr.id, &qr.negative_matches, &qr.streamed_negative,
          &qr.num_negative);
  }
}

void Engine::DeliverDirect(const BatchOptions& options, QueryReport* qr,
                           const MatchRecord& m) {
  if (m.positive) {
    ++qr->num_positive;
  } else {
    ++qr->num_negative;
  }
  if (options.sink) options.sink->OnMatch(qr->id, m);
  if (options.materialize) {
    auto& v = m.positive ? qr->positive_matches : qr->negative_matches;
    v.push_back(m);
    // Already counted and streamed: advance the flush marker past it.
    (m.positive ? qr->streamed_positive : qr->streamed_negative) = v.size();
  }
}

namespace {

// ----------------------------------------------------------- GammaEngine

/// "gamma": the paper's single-query system, one full Gamma instance
/// (own GPMA + encoder + device) per registered query.  This is the
/// un-shared reference point the multi-query bench compares against.
class GammaEngineBase : public Engine {
 public:
  GammaEngineBase(const LabeledGraph& g, const EngineOptions& options)
      : options_(options.gamma), graph_(g) {}

  bool ModelsDevice() const override { return true; }

  QueryId AddQuery(const QueryGraph& q) override {
    Slot slot;
    slot.id = next_id_++;
    slot.gamma = std::make_unique<Gamma>(graph_, q, options_);
    slots_.push_back(std::move(slot));
    return slots_.back().id;
  }

  bool RemoveQuery(QueryId id) override {
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->id == id) {
        slots_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    ids.reserve(slots_.size());
    for (const Slot& s : slots_) ids.push_back(s.id);
    return ids;
  }

  const LabeledGraph& host_graph() const override { return graph_; }

 protected:
  struct Slot {
    QueryId id = kInvalidQueryId;
    std::unique_ptr<Gamma> gamma;
  };

  GammaOptions options_;
  LabeledGraph graph_;  ///< canonical evolving host graph
  std::vector<Slot> slots_;
  QueryId next_id_ = 0;
};

}  // namespace

// Named (not in the anonymous namespace) because Gamma befriends it to
// expose its phase methods.
class GammaEngine final : public GammaEngineBase {
 public:
  using GammaEngineBase::GammaEngineBase;

  const char* Name() const override { return "gamma"; }

 protected:
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& /*options*/,
                     BatchReport* report) override {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      WbmResult r = s.gamma->RunMatchPhase(batch, positive);
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      auto& dst = positive ? qr->positive_matches : qr->negative_matches;
      dst.insert(dst.end(), std::make_move_iterator(r.matches.begin()),
                 std::make_move_iterator(r.matches.end()));
      qr->match_stats.MergeSequential(r.stats);
      qr->timed_out = qr->timed_out || r.stats.timed_out;
      qr->overflowed = qr->overflowed || r.overflowed;
      // Separate launches run back to back on the one device.
      report->match_stats.MergeSequential(r.stats);
    }
  }

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& /*options*/,
                      BatchReport* report) override {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      BatchResult tmp;
      s.gamma->RunUpdatePhase(batch, &tmp);
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      qr->update_stats = tmp.update_stats;
      qr->timed_out = qr->timed_out || tmp.update_stats.timed_out;
      qr->preprocess_host_seconds = tmp.preprocess_host_seconds;
      report->update_stats.MergeSequential(tmp.update_stats);
      report->preprocess_host_seconds += tmp.preprocess_host_seconds;
    }
    // The canonical graph advances even with no queries registered.
    ApplyBatch(&graph_, batch);
  }
};

// ------------------------------------------------------ MultiGammaEngine

/// "multi": one shared device graph and encoder set, every query's
/// seeds fused into each kernel launch (MultiGamma).
class MultiGammaEngine final : public Engine {
 public:
  MultiGammaEngine(const LabeledGraph& g, const EngineOptions& options)
      : multi_(g, options.gamma) {}

  const char* Name() const override { return "multi"; }
  bool ModelsDevice() const override { return true; }

  QueryId AddQuery(const QueryGraph& q) override {
    return static_cast<QueryId>(multi_.AddQuery(q));
  }
  bool RemoveQuery(QueryId id) override { return multi_.RemoveQuery(id); }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    for (size_t id : multi_.QueryIds()) {
      ids.push_back(static_cast<QueryId>(id));
    }
    return ids;
  }

  const LabeledGraph& host_graph() const override {
    return multi_.host_graph();
  }

  MultiGamma& multi() { return multi_; }

 protected:
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& /*options*/,
                     BatchReport* report) override {
    MultiBatchResult mbr;
    mbr.per_query.resize(multi_.NumQueries());
    multi_.RunMatchAll(batch, positive, &mbr);
    std::vector<size_t> ids = multi_.QueryIds();
    bool launch_counted = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      BatchResult& src = mbr.per_query[i];
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == static_cast<QueryId>(ids[i]));
      auto& src_v = positive ? src.positive_matches : src.negative_matches;
      auto& dst = positive ? qr->positive_matches : qr->negative_matches;
      dst.insert(dst.end(), std::make_move_iterator(src_v.begin()),
                 std::make_move_iterator(src_v.end()));
      qr->match_stats.MergeSequential(src.match_stats);
      qr->timed_out = qr->timed_out || src.match_stats.timed_out;
      qr->overflowed = qr->overflowed || src.overflowed;
      if (!launch_counted) {
        // One fused launch shared by all queries: charge it once at the
        // report level (every per_query record describes the same
        // kernel).
        report->match_stats.MergeSequential(src.match_stats);
        launch_counted = true;
      }
    }
  }

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& /*options*/,
                      BatchReport* report) override {
    MultiBatchResult mbr;
    mbr.per_query.resize(multi_.NumQueries());
    multi_.RunUpdate(batch, &mbr);
    report->update_stats = mbr.update_stats;
    report->preprocess_host_seconds = mbr.preprocess_host_seconds;
    for (QueryReport& qr : report->queries) {
      qr.update_stats = mbr.update_stats;
      qr.timed_out = qr.timed_out || mbr.update_stats.timed_out;
      qr.preprocess_host_seconds = mbr.preprocess_host_seconds;
    }
  }

 private:
  MultiGamma multi_;
};

namespace {

// ------------------------------------------------------------ CsmAdapter

/// The five sequential CPU baselines behind the Engine interface: one
/// CsmEngine instance per registered query, each processing the batch
/// edge-at-a-time.  Matching is interleaved with updates in the CSM
/// chassis, so everything happens in RunUpdatePhase.
class CsmAdapter final : public Engine {
 public:
  CsmAdapter(const char* registry_name, std::string csm_key,
             const LabeledGraph& g, const EngineOptions& options)
      : name_(registry_name),
        csm_key_(std::move(csm_key)),
        graph_(g),
        result_cap_(options.csm_result_cap),
        default_budget_(options.csm_budget_seconds) {}

  const char* Name() const override { return name_; }

  QueryId AddQuery(const QueryGraph& q) override {
    Slot slot;
    slot.id = next_id_++;
    slot.engine = MakeCsmEngine(csm_key_, graph_, q);
    slot.engine->set_result_cap(result_cap_);
    slots_.push_back(std::move(slot));
    return slots_.back().id;
  }

  bool RemoveQuery(QueryId id) override {
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->id == id) {
        slots_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    ids.reserve(slots_.size());
    for (const Slot& s : slots_) ids.push_back(s.id);
    return ids;
  }

  const LabeledGraph& host_graph() const override { return graph_; }

 protected:
  void RunMatchPhase(const UpdateBatch&, bool, const BatchOptions&,
                     BatchReport*) override {}

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& options,
                      BatchReport* report) override {
    double budget = options.budget_seconds > 0 ? options.budget_seconds
                                               : default_budget_;
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      Timer t;
      std::vector<MatchRecord> raw = s.engine->ProcessBatch(batch, budget);
      qr->host_wall_seconds = t.ElapsedSeconds();
      qr->timed_out = qr->timed_out || s.engine->timed_out();
      qr->overflowed = qr->overflowed || s.engine->overflowed();
      // The chassis interleaves positives and negatives edge by edge;
      // deliver in that order so order-sensitive sinks (delta views)
      // see the same sequence the engine produced.
      for (const MatchRecord& m : raw) {
        DeliverDirect(options, qr, m);
      }
    }
    ApplyBatch(&graph_, batch);
  }

 private:
  struct Slot {
    QueryId id = kInvalidQueryId;
    std::unique_ptr<CsmEngine> engine;
  };

  const char* name_;
  std::string csm_key_;  ///< MakeCsmEngine key ("TF", "SYM", ...)
  LabeledGraph graph_;   ///< canonical evolving host graph
  size_t result_cap_;
  double default_budget_;
  std::vector<Slot> slots_;
  QueryId next_id_ = 0;
};

std::string Canonical(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

// --------------------------------------------------------- EngineRegistry

EngineRegistry::EngineRegistry() {
  auto add = [this](const char* name, EngineFactory f) {
    entries_.emplace(name, Entry{std::move(f), /*is_alias=*/false});
  };
  auto alias = [this](const char* name, const char* target) {
    entries_.emplace(name, Entry{entries_.at(target).factory,
                                 /*is_alias=*/true});
  };

  add("gamma", [](const LabeledGraph& g, const EngineOptions& o) {
    return std::unique_ptr<Engine>(new GammaEngine(g, o));
  });
  add("multi", [](const LabeledGraph& g, const EngineOptions& o) {
    return std::unique_ptr<Engine>(new MultiGammaEngine(g, o));
  });
  struct Csm {
    const char* name;
    const char* alias;
    const char* key;
  };
  for (const Csm& c : {Csm{"tf", "turboflux", "TF"},
                       Csm{"sym", "symbi", "SYM"},
                       Csm{"rf", "rapidflow", "RF"},
                       Csm{"cl", "calig", "CL"},
                       Csm{"gf", "graphflow", "GF"}}) {
    add(c.name, [c](const LabeledGraph& g, const EngineOptions& o) {
      return std::unique_ptr<Engine>(new CsmAdapter(c.name, c.key, g, o));
    });
    alias(c.alias, c.name);
  }
  alias("multigamma", "multi");

  // Composite serving specs ("sharded:inner@N").  Registered through an
  // explicit hook rather than a serve/-local static initializer, which
  // the linker would drop from the static library whenever no serve/
  // symbol is referenced directly.
  serve::RegisterServeEngines(this);
}

EngineRegistry& EngineRegistry::Instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::Register(const std::string& name,
                              EngineFactory factory) {
  entries_[Canonical(name)] = Entry{std::move(factory), /*is_alias=*/false};
}

void EngineRegistry::RegisterPrefix(const std::string& prefix,
                                    SpecFactory factory,
                                    SpecValidator validator) {
  prefixes_[Canonical(prefix)] =
      PrefixEntry{std::move(factory), std::move(validator)};
}

bool EngineRegistry::Has(const std::string& name) const {
  std::string canonical = Canonical(name);
  if (entries_.count(canonical) > 0) return true;
  size_t colon = canonical.find(':');
  if (colon == std::string::npos) return false;
  auto it = prefixes_.find(canonical.substr(0, colon));
  return it != prefixes_.end() &&
         it->second.validator(canonical.substr(colon + 1));
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (!entry.is_alias) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<Engine> EngineRegistry::Make(
    const std::string& name, const LabeledGraph& g,
    const EngineOptions& options) const {
  std::string canonical = Canonical(name);
  auto it = entries_.find(canonical);
  if (it != entries_.end()) return it->second.factory(g, options);
  size_t colon = canonical.find(':');
  if (colon != std::string::npos) {
    auto pit = prefixes_.find(canonical.substr(0, colon));
    if (pit != prefixes_.end()) {
      std::string rest = canonical.substr(colon + 1);
      GAMMA_CHECK_MSG(pit->second.validator(rest),
                      "malformed composite engine spec");
      return pit->second.factory(rest, g, options);
    }
  }
  GAMMA_CHECK_MSG(false, "unknown engine name");
  return nullptr;
}

std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                   const LabeledGraph& g,
                                   const EngineOptions& options) {
  return EngineRegistry::Instance().Make(name, g, options);
}

std::vector<std::string> EngineNames() {
  return EngineRegistry::Instance().Names();
}

std::vector<MatchRecord> NetDelta(const QueryReport& report) {
  std::vector<MatchRecord> raw = report.positive_matches;
  raw.insert(raw.end(), report.negative_matches.begin(),
             report.negative_matches.end());
  return NetEffect(raw);
}

}  // namespace bdsm
