#include "core/engine.hpp"

#include <algorithm>
#include <cctype>

#include "baselines/csm_common.hpp"
#include "core/multi_gamma.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "replica/group.hpp"
#include "serve/sharded_engine.hpp"
#include "util/timer.hpp"

namespace bdsm {

const char* ClockDomainName(ClockDomain clock) {
  switch (clock) {
    case ClockDomain::kModeledDevice:
      return "modeled-device";
    case ClockDomain::kCriticalPath:
      return "critical-path";
    case ClockDomain::kHostWall:
      return "host-wall";
  }
  return "unknown";
}

obs::Domain ToObsTraceDomain(ClockDomain clock) {
  switch (clock) {
    case ClockDomain::kModeledDevice:
      return obs::Domain::kModeledDevice;
    case ClockDomain::kCriticalPath:
      return obs::Domain::kCriticalPath;
    case ClockDomain::kHostWall:
      return obs::Domain::kHostWall;
  }
  return obs::Domain::kHostWall;
}

// ---------------------------------------------------------------- Engine

BatchReport Engine::ProcessBatch(const UpdateBatch& raw_batch,
                                 const BatchOptions& options) {
  BatchReport report;
  InitReport(&report);
  Timer wall;

  UpdateBatch batch = SanitizeBatch(host_graph(), raw_batch);

#if BDSM_OBS
  const bool obs_on = obs::Enabled();
  double host_after[3] = {0.0, 0.0, 0.0};
  double cp_after[3] = {0.0, 0.0, 0.0};
  uint64_t match_ticks_after_neg = 0;
#endif

  // Negative matches: deleted-edge seeds on the pre-update state.
  RunMatchPhase(batch, /*positive=*/false, options, &report);
  FlushPhase(options, &report);
#if BDSM_OBS
  if (obs_on) {
    host_after[0] = wall.ElapsedSeconds();
    cp_after[0] = report.critical_path_seconds;
    match_ticks_after_neg = report.match_stats.makespan_ticks;
  }
#endif

  // Update: device graph + host mirror + candidate re-encode (CSM
  // engines run their whole sequential loop here).
  RunUpdatePhase(batch, options, &report);
  FlushPhase(options, &report);
#if BDSM_OBS
  if (obs_on) {
    host_after[1] = wall.ElapsedSeconds();
    cp_after[1] = report.critical_path_seconds;
  }
#endif

  // Positive matches: inserted-edge seeds on the post-update state.
  RunMatchPhase(batch, /*positive=*/true, options, &report);
  FlushPhase(options, &report);

  report.host_wall_seconds = wall.ElapsedSeconds();
  for (QueryReport& qr : report.queries) {
    if (qr.host_wall_seconds == 0.0) {
      qr.host_wall_seconds = report.host_wall_seconds;
    }
  }
#if BDSM_OBS
  if (obs_on) {
    host_after[2] = report.host_wall_seconds;
    cp_after[2] = report.critical_path_seconds;
    RecordBatchObs(batch, report, host_after, match_ticks_after_neg,
                   cp_after);
  }
#endif
  // Outermost-layer end-of-batch hook (the replica group's WAL tee +
  // follower advance): after the clocks, so its work never inflates
  // this batch's reported latency.
  OnBatchDigested(batch, report);
  return report;
}

void Engine::RecordBatchObs(const UpdateBatch& batch,
                            const BatchReport& report,
                            const double host_after[3],
                            uint64_t match_ticks_after_neg,
                            const double cp_after[3]) {
#if BDSM_OBS
  if (obs_clock_cache_ < 0) {
    const EngineInfo info = Describe();
    obs_clock_cache_ = static_cast<int>(info.clock);
    obs_tick_seconds_ = info.tick_seconds;
  }
  const ClockDomain clock = static_cast<ClockDomain>(obs_clock_cache_);

  // Counters: the registry-backed view of the report aggregates — read
  // from the same variables the report carries, so the two can never
  // disagree.
  size_t pos = 0, neg = 0, truncated = 0;
  for (const QueryReport& qr : report.queries) {
    pos += qr.num_positive;
    neg += qr.num_negative;
    if (qr.Truncated()) ++truncated;
  }
  BDSM_OBS_COUNT("engine.batches", 1);
  BDSM_OBS_COUNT("engine.ops", batch.size());
  BDSM_OBS_COUNT("engine.matches.positive", pos);
  BDSM_OBS_COUNT("engine.matches.negative", neg);
  BDSM_OBS_COUNT("engine.queries.truncated", truncated);
  BDSM_OBS_COUNT("engine.device.update.makespan_ticks",
                 report.update_stats.makespan_ticks);
  BDSM_OBS_COUNT("engine.device.match.makespan_ticks",
                 report.match_stats.makespan_ticks);
  BDSM_OBS_COUNT("engine.device.global_transactions",
                 report.update_stats.global_transactions +
                     report.match_stats.global_transactions);
  BDSM_OBS_COUNT_US("engine.host_us", report.host_wall_seconds);

  // Per-phase durations on the engine's own clock (Describe().clock),
  // split the way ScenarioRunner's latency switch reads the report.
  double phase_s[3] = {0.0, 0.0, 0.0};
  double batch_latency = 0.0;
  switch (clock) {
    case ClockDomain::kModeledDevice: {
      const double tick = obs_tick_seconds_;
      phase_s[0] = static_cast<double>(match_ticks_after_neg) * tick;
      phase_s[1] =
          static_cast<double>(report.update_stats.makespan_ticks) * tick;
      phase_s[2] = static_cast<double>(report.match_stats.makespan_ticks -
                                       match_ticks_after_neg) *
                   tick;
      // ModeledSeconds semantics: device makespan overlapped with host
      // preprocessing.
      batch_latency = std::max(phase_s[0] + phase_s[1] + phase_s[2],
                               report.preprocess_host_seconds);
      break;
    }
    case ClockDomain::kCriticalPath:
      phase_s[0] = cp_after[0];
      phase_s[1] = cp_after[1] - cp_after[0];
      phase_s[2] = cp_after[2] - cp_after[1];
      batch_latency = report.critical_path_seconds;
      break;
    case ClockDomain::kHostWall:
      phase_s[0] = host_after[0];
      phase_s[1] = host_after[1] - host_after[0];
      phase_s[2] = host_after[2] - host_after[1];
      batch_latency = report.host_wall_seconds;
      break;
  }
  BDSM_OBS_HISTOGRAM_US("engine.batch_us", batch_latency);

  obs::TraceRecorder& tracer = obs::TraceRecorder::Instance();
  if (tracer.enabled()) {
    const obs::Domain domain = ToObsTraceDomain(clock);
    obs::TraceSpan span;
    span.name = "engine.batch";
    span.domain = domain;
    span.batch = obs_batch_seq_;
    span.start_s = obs_cursor_seconds_;
    span.dur_s = batch_latency;
    span.detail = "ops=" + std::to_string(batch.size());
    tracer.Record(std::move(span));
    static const char* kPhaseNames[3] = {"engine.match.neg",
                                         "engine.update",
                                         "engine.match.pos"};
    double cursor = obs_cursor_seconds_;
    for (int p = 0; p < 3; ++p) {
      obs::TraceSpan ps;
      ps.name = kPhaseNames[p];
      ps.domain = domain;
      ps.batch = obs_batch_seq_;
      ps.start_s = cursor;
      ps.dur_s = phase_s[p];
      cursor += phase_s[p];
      tracer.Record(std::move(ps));
    }
  }
  obs_cursor_seconds_ += batch_latency;
  ++obs_batch_seq_;
#else
  (void)batch;
  (void)report;
  (void)host_after;
  (void)match_ticks_after_neg;
  (void)cp_after;
#endif
}

void Engine::InitReport(BatchReport* report) const {
  report->queries.clear();
  for (QueryId id : QueryIds()) {
    QueryReport qr;
    qr.id = id;
    report->queries.push_back(std::move(qr));
  }
}

void Engine::FlushPhase(const BatchOptions& options, BatchReport* report) {
  size_t delivered = 0;
  auto flush = [&](QueryId id, std::vector<MatchRecord>* v,
                   size_t* streamed, size_t* total) {
    for (size_t i = *streamed; i < v->size(); ++i) {
      ++*total;
      if (options.sink) {
        options.sink->OnMatch(id, (*v)[i]);
        ++delivered;
      }
    }
    *streamed = v->size();
    if (!options.materialize) {
      v->clear();
      *streamed = 0;
    }
  };
  for (QueryReport& qr : report->queries) {
    flush(qr.id, &qr.positive_matches, &qr.streamed_positive,
          &qr.num_positive);
    flush(qr.id, &qr.negative_matches, &qr.streamed_negative,
          &qr.num_negative);
  }
  if (delivered > 0) BDSM_OBS_COUNT("engine.sink.delivered", delivered);
  (void)delivered;  // referenced only through the macro when BDSM_OBS=1
}

void Engine::DeliverDirect(const BatchOptions& options, QueryReport* qr,
                           const MatchRecord& m) {
  if (m.positive) {
    ++qr->num_positive;
  } else {
    ++qr->num_negative;
  }
  if (options.sink) {
    options.sink->OnMatch(qr->id, m);
    BDSM_OBS_COUNT("engine.sink.delivered", 1);
  }
  if (options.materialize) {
    auto& v = m.positive ? qr->positive_matches : qr->negative_matches;
    v.push_back(m);
    // Already counted and streamed: advance the flush marker past it.
    (m.positive ? qr->streamed_positive : qr->streamed_negative) = v.size();
  }
}

namespace {

// ----------------------------------------------------------- GammaEngine

/// "gamma": the paper's single-query system, one full Gamma instance
/// (own GPMA + encoder + device) per registered query.  This is the
/// un-shared reference point the multi-query bench compares against.
class GammaEngineBase : public Engine {
 public:
  GammaEngineBase(const LabeledGraph& g, const EngineOptions& options)
      : options_(options.gamma), graph_(g) {}

  EngineInfo Describe() const override {
    EngineInfo info;
    info.canonical_spec = CanonicalSpecOrName();
    info.clock = ClockDomain::kModeledDevice;
    info.supports_snapshot = true;
    info.tick_seconds = options_.device.TickSeconds();
    return info;
  }

  QueryId AddQuery(const QueryGraph& q) override {
    Slot slot;
    slot.id = next_id_++;
    slot.gamma = std::make_unique<Gamma>(graph_, q, options_);
    slots_.push_back(std::move(slot));
    return slots_.back().id;
  }

  std::vector<RegisteredQuery> RegisteredQueries() const override {
    std::vector<RegisteredQuery> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      out.push_back(RegisteredQuery{s.id, s.gamma->query_context().q});
    }
    return out;
  }

  bool RestoreQuery(const QueryGraph& q, QueryId id) override {
    if (id < next_id_) return false;
    next_id_ = id;
    return AddQuery(q) == id;
  }

  bool RemoveQuery(QueryId id) override {
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->id == id) {
        slots_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    ids.reserve(slots_.size());
    for (const Slot& s : slots_) ids.push_back(s.id);
    return ids;
  }

  const LabeledGraph& host_graph() const override { return graph_; }

 protected:
  struct Slot {
    QueryId id = kInvalidQueryId;
    std::unique_ptr<Gamma> gamma;
  };

  GammaOptions options_;
  LabeledGraph graph_;  ///< canonical evolving host graph
  std::vector<Slot> slots_;
  QueryId next_id_ = 0;
};

}  // namespace

// Named (not in the anonymous namespace) because Gamma befriends it to
// expose its phase methods.
class GammaEngine final : public GammaEngineBase {
 public:
  using GammaEngineBase::GammaEngineBase;

  const char* Name() const override { return "gamma"; }

 protected:
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& /*options*/,
                     BatchReport* report) override {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      WbmResult r = s.gamma->RunMatchPhase(batch, positive);
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      auto& dst = positive ? qr->positive_matches : qr->negative_matches;
      dst.insert(dst.end(), std::make_move_iterator(r.matches.begin()),
                 std::make_move_iterator(r.matches.end()));
      qr->match_stats.MergeSequential(r.stats);
      qr->timed_out = qr->timed_out || r.stats.timed_out;
      qr->overflowed = qr->overflowed || r.overflowed;
      // Separate launches run back to back on the one device.
      report->match_stats.MergeSequential(r.stats);
    }
  }

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& /*options*/,
                      BatchReport* report) override {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      BatchResult tmp;
      s.gamma->RunUpdatePhase(batch, &tmp);
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      qr->update_stats = tmp.update_stats;
      qr->timed_out = qr->timed_out || tmp.update_stats.timed_out;
      qr->preprocess_host_seconds = tmp.preprocess_host_seconds;
      report->update_stats.MergeSequential(tmp.update_stats);
      report->preprocess_host_seconds += tmp.preprocess_host_seconds;
    }
    // The canonical graph advances even with no queries registered.
    ApplyBatch(&graph_, batch);
  }
};

// ------------------------------------------------------ MultiGammaEngine

/// "multi": one shared device graph and encoder set, every query's
/// seeds fused into each kernel launch (MultiGamma).
class MultiGammaEngine final : public Engine {
 public:
  MultiGammaEngine(const LabeledGraph& g, const EngineOptions& options)
      : multi_(g, options.gamma) {}

  const char* Name() const override { return "multi"; }

  EngineInfo Describe() const override {
    EngineInfo info;
    info.canonical_spec = CanonicalSpecOrName();
    info.clock = ClockDomain::kModeledDevice;
    info.supports_snapshot = true;
    info.tick_seconds = multi_.options_.device.TickSeconds();
    return info;
  }

  QueryId AddQuery(const QueryGraph& q) override {
    return static_cast<QueryId>(multi_.AddQuery(q));
  }
  bool RemoveQuery(QueryId id) override { return multi_.RemoveQuery(id); }

  std::vector<RegisteredQuery> RegisteredQueries() const override {
    std::vector<RegisteredQuery> out;
    out.reserve(multi_.queries_.size());
    for (const auto& pq : multi_.queries_) {
      out.push_back(
          RegisteredQuery{static_cast<QueryId>(pq.id), pq.qctx.q});
    }
    return out;
  }

  bool RestoreQuery(const QueryGraph& q, QueryId id) override {
    if (id < multi_.next_query_id_) return false;
    multi_.next_query_id_ = id;
    return AddQuery(q) == id;
  }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    for (size_t id : multi_.QueryIds()) {
      ids.push_back(static_cast<QueryId>(id));
    }
    return ids;
  }

  const LabeledGraph& host_graph() const override {
    return multi_.host_graph();
  }

  MultiGamma& multi() { return multi_; }

 protected:
  void RunMatchPhase(const UpdateBatch& batch, bool positive,
                     const BatchOptions& /*options*/,
                     BatchReport* report) override {
    MultiBatchResult mbr;
    mbr.per_query.resize(multi_.NumQueries());
    multi_.RunMatchAll(batch, positive, &mbr);
    std::vector<size_t> ids = multi_.QueryIds();
    bool launch_counted = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      BatchResult& src = mbr.per_query[i];
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == static_cast<QueryId>(ids[i]));
      auto& src_v = positive ? src.positive_matches : src.negative_matches;
      auto& dst = positive ? qr->positive_matches : qr->negative_matches;
      dst.insert(dst.end(), std::make_move_iterator(src_v.begin()),
                 std::make_move_iterator(src_v.end()));
      qr->match_stats.MergeSequential(src.match_stats);
      qr->timed_out = qr->timed_out || src.match_stats.timed_out;
      qr->overflowed = qr->overflowed || src.overflowed;
      if (!launch_counted) {
        // One fused launch shared by all queries: charge it once at the
        // report level (every per_query record describes the same
        // kernel).
        report->match_stats.MergeSequential(src.match_stats);
        launch_counted = true;
      }
    }
  }

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& /*options*/,
                      BatchReport* report) override {
    MultiBatchResult mbr;
    mbr.per_query.resize(multi_.NumQueries());
    multi_.RunUpdate(batch, &mbr);
    report->update_stats = mbr.update_stats;
    report->preprocess_host_seconds = mbr.preprocess_host_seconds;
    for (QueryReport& qr : report->queries) {
      qr.update_stats = mbr.update_stats;
      qr.timed_out = qr.timed_out || mbr.update_stats.timed_out;
      qr.preprocess_host_seconds = mbr.preprocess_host_seconds;
    }
  }

 private:
  MultiGamma multi_;
};

namespace {

// ------------------------------------------------------------ CsmAdapter

/// The five sequential CPU baselines behind the Engine interface: one
/// CsmEngine instance per registered query, each processing the batch
/// edge-at-a-time.  Matching is interleaved with updates in the CSM
/// chassis, so everything happens in RunUpdatePhase.
class CsmAdapter final : public Engine {
 public:
  CsmAdapter(const char* registry_name, std::string csm_key,
             const LabeledGraph& g, const EngineOptions& options)
      : name_(registry_name),
        csm_key_(std::move(csm_key)),
        graph_(g),
        result_cap_(options.csm_result_cap),
        default_budget_(options.csm_budget_seconds) {}

  const char* Name() const override { return name_; }

  EngineInfo Describe() const override {
    EngineInfo info;
    info.canonical_spec = CanonicalSpecOrName();
    info.clock = ClockDomain::kHostWall;
    info.supports_snapshot = true;
    return info;
  }

  QueryId AddQuery(const QueryGraph& q) override {
    Slot slot;
    slot.id = next_id_++;
    slot.engine = MakeCsmEngine(csm_key_, graph_, q);
    slot.engine->set_result_cap(result_cap_);
    slots_.push_back(std::move(slot));
    return slots_.back().id;
  }

  std::vector<RegisteredQuery> RegisteredQueries() const override {
    std::vector<RegisteredQuery> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) {
      out.push_back(RegisteredQuery{s.id, s.engine->query()});
    }
    return out;
  }

  bool RestoreQuery(const QueryGraph& q, QueryId id) override {
    if (id < next_id_) return false;
    next_id_ = id;
    return AddQuery(q) == id;
  }

  bool RemoveQuery(QueryId id) override {
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->id == id) {
        slots_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::vector<QueryId> QueryIds() const override {
    std::vector<QueryId> ids;
    ids.reserve(slots_.size());
    for (const Slot& s : slots_) ids.push_back(s.id);
    return ids;
  }

  const LabeledGraph& host_graph() const override { return graph_; }

 protected:
  void RunMatchPhase(const UpdateBatch&, bool, const BatchOptions&,
                     BatchReport*) override {}

  void RunUpdatePhase(const UpdateBatch& batch,
                      const BatchOptions& options,
                      BatchReport* report) override {
    double budget = options.budget_seconds > 0 ? options.budget_seconds
                                               : default_budget_;
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      QueryReport* qr = &report->queries[i];  // InitReport order
      GAMMA_CHECK(qr->id == s.id);
      Timer t;
      std::vector<MatchRecord> raw = s.engine->ProcessBatch(batch, budget);
      qr->host_wall_seconds = t.ElapsedSeconds();
      qr->timed_out = qr->timed_out || s.engine->timed_out();
      qr->overflowed = qr->overflowed || s.engine->overflowed();
      // The chassis interleaves positives and negatives edge by edge;
      // deliver in that order so order-sensitive sinks (delta views)
      // see the same sequence the engine produced.
      for (const MatchRecord& m : raw) {
        DeliverDirect(options, qr, m);
      }
    }
    ApplyBatch(&graph_, batch);
  }

 private:
  struct Slot {
    QueryId id = kInvalidQueryId;
    std::unique_ptr<CsmEngine> engine;
  };

  const char* name_;
  std::string csm_key_;  ///< MakeCsmEngine key ("TF", "SYM", ...)
  LabeledGraph graph_;   ///< canonical evolving host graph
  size_t result_cap_;
  double default_budget_;
  std::vector<Slot> slots_;
  QueryId next_id_ = 0;
};

std::string Canonical(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// Joins strings as `a, b, c` for error messages and listings.
std::string JoinSorted(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

/// Inline option table of the device engines ("gamma", "multi").
std::vector<EngineOptionKey> DeviceOptionKeys() {
  return {
      {"result_cap",
       "cap on matches materialized per kernel launch (0 = unlimited)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->gamma.result_cap = n;
         return true;
       }},
      {"budget", "per-launch host budget in seconds (0 = unlimited)",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->gamma.device.host_budget_seconds = s;
         return true;
       }},
      {"segment_capacity", "GPMA segment capacity (a power of two)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n) || n == 0 || (n & (n - 1)) != 0 ||
             n > (size_t{1} << 31)) {
           return false;
         }
         o->gamma.gpma_segment_capacity = static_cast<uint32_t>(n);
         return true;
       }},
      {"coalesced", "coalesced candidate search on/off (paper §V-B)",
       [](const std::string& v, EngineOptions* o) {
         bool b;
         if (!ParseBoolValue(v, &b)) return false;
         o->gamma.coalesced_search = b;
         return true;
       }},
      {"aggressive_coalescing",
       "coalesce equivalent edges across encoder-constraint orbits",
       [](const std::string& v, EngineOptions* o) {
         bool b;
         if (!ParseBoolValue(v, &b)) return false;
         o->gamma.aggressive_coalescing = b;
         return true;
       }},
  };
}

/// Inline option table of the CPU (CSM) baselines.
std::vector<EngineOptionKey> CsmOptionKeys() {
  return {
      {"result_cap", "cap on matches per query (0 = unlimited)",
       [](const std::string& v, EngineOptions* o) {
         size_t n;
         if (!ParseSizeValue(v, &n)) return false;
         o->csm_result_cap = n;
         return true;
       }},
      {"budget", "per-query host budget in seconds (0 = unlimited)",
       [](const std::string& v, EngineOptions* o) {
         double s;
         if (!ParseDoubleValue(v, &s) || s < 0.0) return false;
         o->csm_budget_seconds = s;
         return true;
       }},
  };
}

}  // namespace

// --------------------------------------------------------- EngineRegistry

EngineRegistry::EngineRegistry() {
  EngineDef gamma_def;
  gamma_def.option_keys = DeviceOptionKeys();
  gamma_def.example = "gamma(result_cap=100000)";
  gamma_def.factory = [](const EngineSpec&, const LabeledGraph& g,
                         const EngineOptions& o) {
    return std::unique_ptr<Engine>(new GammaEngine(g, o));
  };
  EngineDef multi_def = gamma_def;
  multi_def.example = "multi(budget=1.0)";
  multi_def.factory = [](const EngineSpec&, const LabeledGraph& g,
                         const EngineOptions& o) {
    return std::unique_ptr<Engine>(new MultiGammaEngine(g, o));
  };
  Register("gamma", std::move(gamma_def));
  Register("multi", std::move(multi_def));

  struct Csm {
    const char* name;
    const char* alias;
    const char* key;
  };
  for (const Csm& c : {Csm{"tf", "turboflux", "TF"},
                       Csm{"sym", "symbi", "SYM"},
                       Csm{"rf", "rapidflow", "RF"},
                       Csm{"cl", "calig", "CL"},
                       Csm{"gf", "graphflow", "GF"}}) {
    EngineDef def;
    def.option_keys = CsmOptionKeys();
    def.example = std::string(c.name) + "(result_cap=100000, budget=1.0)";
    def.factory = [c](const EngineSpec&, const LabeledGraph& g,
                      const EngineOptions& o) {
      return std::unique_ptr<Engine>(new CsmAdapter(c.name, c.key, g, o));
    };
    Register(c.name, std::move(def));
    RegisterAlias(c.alias, c.name);
  }
  RegisterAlias("multigamma", "multi");

  // The serving wrapper ("sharded") and the replica group
  // ("replicated").  Registered through explicit hooks rather than
  // layer-local static initializers, which the linker would drop from
  // the static library whenever no serve//replica/ symbol is
  // referenced directly.
  serve::RegisterServeEngines(this);
  replica::RegisterReplicaEngines(this);
}

EngineRegistry& EngineRegistry::Instance() {
  static EngineRegistry registry;
  return registry;
}

void EngineRegistry::Register(const std::string& name, EngineDef def) {
  entries_[Canonical(name)] = Entry{std::move(def), /*alias_target=*/""};
}

void EngineRegistry::Register(const std::string& name,
                              EngineFactory factory) {
  EngineDef def;
  def.factory = std::move(factory);
  def.example = Canonical(name);
  Register(name, std::move(def));
}

void EngineRegistry::RegisterAlias(const std::string& alias,
                                   const std::string& target) {
  std::string canonical_target = Canonical(target);
  GAMMA_CHECK_MSG(entries_.count(canonical_target) > 0,
                  "alias target must be registered first");
  Entry entry;
  entry.alias_target = canonical_target;
  entries_[Canonical(alias)] = std::move(entry);
}

const EngineRegistry::Entry* EngineRegistry::Resolve(
    const std::string& name, std::string* canonical_name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  if (!it->second.alias_target.empty()) {
    *canonical_name = it->second.alias_target;
    it = entries_.find(it->second.alias_target);
    GAMMA_CHECK(it != entries_.end());
  } else {
    *canonical_name = name;
  }
  return &it->second;
}

EngineSpec EngineRegistry::Canonicalize(const EngineSpec& spec) const {
  EngineSpec out = spec;
  out.name = Canonical(out.name);
  std::string canonical_name;
  if (Resolve(out.name, &canonical_name) == nullptr) {
    throw EngineSpecError("unknown engine \"" + out.name +
                          "\"; registered engines: " + JoinSorted(Names()));
  }
  out.name = canonical_name;
  for (EngineSpec& child : out.children) child = Canonicalize(child);
  return out;
}

void EngineRegistry::ApplyOptions(const EngineSpec& spec,
                                  const EngineDef& def,
                                  EngineOptions* options) const {
  for (const auto& [key, value] : spec.options) {
    const EngineOptionKey* found = nullptr;
    for (const EngineOptionKey& ok : def.option_keys) {
      if (ok.key == key) {
        found = &ok;
        break;
      }
    }
    if (found == nullptr) {
      std::vector<std::string> keys;
      for (const EngineOptionKey& ok : def.option_keys) {
        keys.push_back(ok.key);
      }
      throw EngineSpecError(
          "unknown option \"" + key + "\" for engine \"" + spec.name +
          "\"; " +
          (keys.empty() ? std::string("it takes no options")
                        : "valid keys: " + JoinSorted(std::move(keys))));
    }
    if (!found->apply(value, options)) {
      throw EngineSpecError("bad value \"" + value + "\" for option \"" +
                            key + "\" of engine \"" + spec.name + "\"");
    }
  }
}

namespace {

/// Arity error text: "no inner engine spec" / "exactly one inner
/// engine spec" / "between 1 and 2 inner engine specs".
std::string ArityText(size_t min_children, size_t max_children) {
  if (max_children == 0) return "no inner engine spec";
  if (min_children == max_children) {
    return (min_children == 1 ? std::string("exactly one")
                              : std::to_string(min_children)) +
           " inner engine spec" + (min_children == 1 ? "" : "s");
  }
  return "between " + std::to_string(min_children) + " and " +
         std::to_string(max_children) + " inner engine specs";
}

}  // namespace

std::optional<std::string> EngineRegistry::Validate(
    const EngineSpec& spec) const {
  try {
    return ValidateCanonical(Canonicalize(spec));
  } catch (const EngineSpecError& e) {
    return std::string(e.what());
  }
}

std::optional<std::string> EngineRegistry::ValidateCanonical(
    const EngineSpec& canonical) const {
  try {
    // Walk the canonical tree: arity and option checks at every node.
    std::vector<const EngineSpec*> todo = {&canonical};
    while (!todo.empty()) {
      const EngineSpec* node = todo.back();
      todo.pop_back();
      std::string name;
      const Entry* entry = Resolve(node->name, &name);
      GAMMA_CHECK(entry != nullptr);  // Canonicalize resolved every name
      const EngineDef& def = entry->def;
      if (node->children.size() < def.min_children ||
          node->children.size() > def.max_children) {
        throw EngineSpecError(
            "engine \"" + node->name + "\" takes " +
            ArityText(def.min_children, def.max_children) + ", got " +
            std::to_string(node->children.size()) + " in \"" +
            node->ToString() + "\"" +
            (def.example.empty() ? "" : "; example: " + def.example));
      }
      EngineOptions scratch;
      ApplyOptions(*node, def, &scratch);
      for (const EngineSpec& child : node->children) todo.push_back(&child);
    }
  } catch (const EngineSpecError& e) {
    return std::string(e.what());
  }
  return std::nullopt;
}

std::optional<std::string> EngineRegistry::Validate(
    const std::string& spec) const {
  try {
    return Validate(EngineSpec::Parse(spec));
  } catch (const EngineSpecError& e) {
    return std::string(e.what());
  }
}

bool EngineRegistry::Has(const std::string& spec) const {
  return !Validate(spec).has_value();
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.alias_target.empty()) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<EngineRegistry::Listing> EngineRegistry::Listings() const {
  std::vector<Listing> listings;
  for (const std::string& name : Names()) {
    auto it = entries_.find(name);
    Listing listing;
    listing.name = name;
    listing.example = it->second.def.example;
    for (const EngineOptionKey& ok : it->second.def.option_keys) {
      listing.option_keys.push_back(ok.key);
    }
    std::sort(listing.option_keys.begin(), listing.option_keys.end());
    listings.push_back(std::move(listing));
  }
  return listings;
}

std::unique_ptr<Engine> EngineRegistry::Make(
    const EngineSpec& spec, const LabeledGraph& g,
    const EngineOptions& options) const {
  EngineSpec canonical = Canonicalize(spec);
  // Fail fast over the whole tree before any engine is built: a bad
  // inner spec must not surface after the outer wrapper spun up
  // threads or replicated graphs.
  if (std::optional<std::string> err = ValidateCanonical(canonical)) {
    throw EngineSpecError(*err);
  }
  std::string name;
  const Entry* entry = Resolve(canonical.name, &name);
  EngineOptions applied = options;
  ApplyOptions(canonical, entry->def, &applied);
  // Programmatic EngineOptions bypass the spec-string option parsers, so
  // the same structural constraints are re-checked here: a bad value must
  // surface as an EngineSpecError before any engine is constructed, not
  // as an internal-check abort inside the Gpma constructor.
  if (uint32_t cap = applied.gamma.gpma_segment_capacity;
      cap == 0 || (cap & (cap - 1)) != 0) {
    throw EngineSpecError(
        "gpma_segment_capacity must be a nonzero power of two, got " +
        std::to_string(cap) +
        " (set via EngineOptions.gamma.gpma_segment_capacity or the "
        "segment_capacity= spec option)");
  }
  std::unique_ptr<Engine> engine = entry->def.factory(canonical, g, applied);
  GAMMA_CHECK(engine != nullptr);
  // An engine that stamped its own spec during construction (wrappers
  // materialize defaults, e.g. the shard count) keeps it — but only
  // when that stamp names the engine we just built.  A delegating
  // factory (one that returns a nested Make() of another name) hands
  // back an engine stamped as the *inner* spec, which must not leak
  // into provenance: rebuilding from it would produce a different
  // engine.
  bool keep_stamp = false;
  if (!engine->canonical_spec_.empty()) {
    try {
      keep_stamp =
          EngineSpec::Parse(engine->canonical_spec_).name == canonical.name;
    } catch (const EngineSpecError&) {
      keep_stamp = false;
    }
  }
  if (!keep_stamp) engine->canonical_spec_ = canonical.ToString();
  return engine;
}

std::unique_ptr<Engine> EngineRegistry::Make(
    const std::string& spec, const LabeledGraph& g,
    const EngineOptions& options) const {
  return Make(EngineSpec::Parse(spec), g, options);
}

std::unique_ptr<Engine> MakeEngine(const std::string& spec,
                                   const LabeledGraph& g,
                                   const EngineOptions& options) {
  return EngineRegistry::Instance().Make(spec, g, options);
}

std::unique_ptr<Engine> MakeEngine(const EngineSpec& spec,
                                   const LabeledGraph& g,
                                   const EngineOptions& options) {
  return EngineRegistry::Instance().Make(spec, g, options);
}

std::vector<std::string> EngineNames() {
  return EngineRegistry::Instance().Names();
}

std::vector<MatchRecord> NetDelta(const QueryReport& report) {
  std::vector<MatchRecord> raw = report.positive_matches;
  raw.insert(raw.end(), report.negative_matches.begin(),
             report.negative_matches.end());
  return NetEffect(raw);
}

}  // namespace bdsm
