#include "core/match.hpp"

#include <algorithm>

namespace bdsm {

std::vector<std::string> CanonicalKeys(const std::vector<MatchRecord>& ms) {
  std::vector<std::string> keys;
  keys.reserve(ms.size());
  for (const MatchRecord& m : ms) keys.push_back(m.Key());
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace bdsm
