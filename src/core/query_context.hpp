/// \file query_context.hpp
/// Offline per-query preparation: matching orders per query edge
/// (paper §IV-C: "we generate it for each query edge offline") and the
/// coalesced-search seed plans built from the equivalent-edge groups.
///
/// Coverage contract: across all plans, every *directed* query pair
/// (a, b) with {a, b} in E(Q) is covered exactly once — either as a
/// plan's own seed pair or through a plan's permutation list.  The WBM
/// kernel maps each update edge (v1, v2) once per plan as a -> v1,
/// b -> v2; the reverse data orientation is the plan of the reverse pair.
/// This is what makes the result multiset exactly the set of incremental
/// isomorphisms, with no duplicates and no misses.
#pragma once

#include <vector>

#include "core/automorphism.hpp"
#include "graph/query_graph.hpp"

namespace bdsm {

/// One seeded search the kernel runs per update edge.
struct SeedPlan {
  VertexId a = kInvalidVertex;  ///< pi[0], mapped to the update's v1
  VertexId b = kInvalidVertex;  ///< pi[1], mapped to the update's v2
  Label elabel = kNoLabel;      ///< required update-edge label
  /// Full matching order; order[0] = a, order[1] = b.  When perms is
  /// non-empty the first vk_size entries are exactly V^k.
  std::vector<VertexId> order;
  /// Permutation point |V^k| (2 when coalesced search is off/inapplicable).
  uint32_t vk_size = 2;
  /// sigma^{-1} per coalesced sibling pair: a completed V^k-partial P
  /// spawns the sibling partial x -> P(perm[x]).
  std::vector<Permutation> perms;
  /// Relaxed filter for the V^k phase: a vertex placed at position p by
  /// the representative search may end up at any position of p's orbit
  /// across the siblings, so it must pass the candidate bit of at least
  /// one of them.  relaxed_masks[p] = bitmask of that orbit (always
  /// includes p).  Tighter than label-only, still sound for coverage.
  std::array<uint16_t, kMaxQueryVertices> relaxed_masks{};
};

struct QueryContext {
  QueryGraph q;
  std::vector<SeedPlan> plans;
  /// Directed pairs whose search is derived by permutation instead of a
  /// separate DFS (the savings coalesced search buys).
  size_t coalesced_pairs = 0;
};

/// Builds the context.  With `coalesced_search` false every directed
/// pair gets a plain plan (the WBM baseline of the ablation study).
///
/// By default k >= 1 subgraphs only remove degree-1 query vertices (the
/// paper's Remark), bounding the constraints the relaxed V^k phase
/// defers; `aggressive_coalescing` admits arbitrary removals (more
/// sharing, but the deferred constraints can cost more than the shared
/// traversal saves on dense queries).
QueryContext BuildQueryContext(const QueryGraph& q, bool coalesced_search,
                               bool aggressive_coalescing = false);

/// Greedy connected matching order starting from `a, b`: repeatedly
/// appends the vertex with the most already-ordered neighbors (ties:
/// higher degree, then lower id).  When `restrict_mask` != 0 the order
/// exhausts the vertices in the mask before the rest (V^k-first), and
/// fails (returns empty) if the mask is not connectedly orderable.
std::vector<VertexId> BuildMatchingOrder(const QueryGraph& q, VertexId a,
                                         VertexId b,
                                         uint16_t restrict_mask = 0);

}  // namespace bdsm
