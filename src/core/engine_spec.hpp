/// \file engine_spec.hpp
/// Structured engine construction specs: the parse tree behind every
/// engine string in the system.
///
/// An EngineSpec is a small tree — an engine name, optional inner
/// engine specs (for wrapper engines like the sharded serving layer),
/// and inline `key=value` option overrides that map onto
/// EngineOptions/GammaOptions fields.  The canonical grammar:
///
///   spec    := name [ '(' arg (',' arg)* ')' ]
///   arg     := spec | key '=' value
///   name    := [a-z0-9_-]+          (input is case-insensitive)
///   value   := [a-z0-9_.+-]+
///
/// Examples:
///   gamma
///   gamma(result_cap=100000)
///   sharded(gamma, shards=8, threads=4)
///   sharded(sharded(rf, shards=2), shards=2)     // wrappers nest
///
/// Legacy composite strings — `"sharded:gamma\@8"` — remain accepted as
/// sugar: Parse desugars them to the canonical tree
/// (`sharded(gamma, shards=8)`), so they build bit-identical engines.
///
/// Parsing and validation report user errors by throwing
/// EngineSpecError with a message that names the bad token (and, at
/// the registry layer, the sorted list of registered names / valid
/// option keys) — engine strings come from CLIs and config, so a
/// helpful message beats an abort.  See docs/ENGINES.md for the
/// grammar, the per-engine option-key tables, and the capability
/// fields reported by Engine::Describe().
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bdsm {

/// A malformed or unresolvable engine spec (user error, not an
/// internal invariant — compare GAMMA_CHECK).  The message is meant to
/// be printed verbatim by CLIs and benches.
class EngineSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The parse tree of one engine construction spec.
struct EngineSpec {
  /// Engine (or alias) name, lower-cased.  Alias resolution happens in
  /// EngineRegistry::Canonicalize, not here — the parser is
  /// registry-agnostic.
  std::string name;
  /// Inner engine specs, in spec order.  Non-wrapper engines take none;
  /// the registry enforces each engine's arity.
  std::vector<EngineSpec> children;
  /// Inline `key=value` overrides, in spec order, lower-cased.  Keys
  /// are validated against the engine's registered option table.
  std::vector<std::pair<std::string, std::string>> options;

  /// Parses canonical or legacy-sugar text.  Throws EngineSpecError on
  /// malformed input (bad token, unbalanced parens, trailing garbage);
  /// names are NOT checked against the registry here.
  static EngineSpec Parse(const std::string& text);

  /// Canonical rendering: `name(child, ..., key=value, ...)` — children
  /// first, then options, single canonical spacing.  Round-trips:
  /// Parse(s.ToString()) == s for every parseable s.
  std::string ToString() const;

  /// Last value bound to `key`, or nullptr when absent (last one wins,
  /// like repeated CLI flags).
  const std::string* FindOption(const std::string& key) const;

  friend bool operator==(const EngineSpec&, const EngineSpec&) = default;
};

/// Option-value parsers shared by the registry's per-engine option
/// tables.  Each returns false (rather than throwing) on a malformed
/// value so the caller can compose the full "bad value" message.
bool ParseSizeValue(const std::string& text, size_t* out);
bool ParseDoubleValue(const std::string& text, double* out);
/// Accepts true/false, on/off, yes/no, 1/0.
bool ParseBoolValue(const std::string& text, bool* out);

}  // namespace bdsm
