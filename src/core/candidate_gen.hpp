/// \file candidate_gen.hpp
/// GenCandidates (Algorithm 1, lines 23-29) shared by the DFS (WBM) and
/// BFS kernels: candidates for the query vertex at `level` of a plan's
/// matching order, given the partial assignment `m`.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/encoder.hpp"
#include "core/query_context.hpp"
#include "gpma/gpma.hpp"

namespace bdsm {

struct WbmEnv;  // defined in wbm_kernel.hpp

/// Cost counters the caller converts into device charges.
struct GenCandidatesCost {
  uint64_t scan_words = 0;   ///< coalesced adjacency words read
  uint64_t probe_words = 0;  ///< divergent binary-search words
  uint64_t compute_ops = 0;
};

/// Fills `out` with the data-vertex candidates of plan.order[level].
/// `relaxed` applies the label-only filter of the coalesced V^k phase.
/// `seed_order` drives the batch-dedup rule via `update_order`.
void GenerateCandidates(
    const Gpma& graph, const QueryGraph& q, const CandidateEncoder& enc,
    const std::unordered_map<Edge, uint32_t, EdgeHash>& update_order,
    const SeedPlan& plan, const std::array<VertexId, kMaxQueryVertices>& m,
    uint32_t level, uint32_t seed_order, bool relaxed,
    std::vector<Neighbor>* scratch, std::vector<VertexId>* out,
    GenCandidatesCost* cost);

}  // namespace bdsm
