/// \file multi_gamma.hpp
/// Multi-pattern GAMMA: one device graph, many registered queries.
///
/// Deployments monitor many patterns at once (the paper's evaluation
/// runs 50-query sets; the fraud example would register one pattern per
/// typology).  Building a full Gamma per query duplicates the GPMA and
/// the host mirror; MultiGamma shares them — per query it keeps only
/// the cheap parts (query context + candidate table) and fuses all
/// queries' seeds into each kernel launch, so one batch costs one
/// update + two matching launches total, not per query.
#pragma once

#include <memory>
#include <vector>

#include "core/gamma.hpp"

namespace bdsm {

struct MultiBatchResult {
  /// Per registered query, in registration order.
  std::vector<BatchResult> per_query;
  /// Device stats of the shared GPMA update (charged once).
  DeviceStats update_stats;
  double preprocess_host_seconds = 0.0;
};

class MultiGamma {
 public:
  explicit MultiGamma(const LabeledGraph& initial,
                      GammaOptions options = {});

  /// Registers a pattern; returns its id (index into results).
  size_t AddQuery(const QueryGraph& q);

  size_t NumQueries() const { return queries_.size(); }
  const LabeledGraph& host_graph() const { return host_graph_; }

  /// Processes one batch for every registered query.
  MultiBatchResult ProcessBatch(const UpdateBatch& batch);

 private:
  struct PerQuery {
    QueryContext qctx;
    std::unique_ptr<CandidateEncoder> encoder;
  };

  /// Runs one polarity's kernel for every query (seeds fused into a
  /// single launch so small queries share the device).
  void RunMatchAll(const UpdateBatch& batch, bool positive,
                   MultiBatchResult* out);

  GammaOptions options_;
  LabeledGraph host_graph_;
  Gpma gpma_;
  Device device_;
  std::vector<PerQuery> queries_;
};

}  // namespace bdsm
