/// \file multi_gamma.hpp
/// Multi-pattern GAMMA: one device graph, many registered queries.
///
/// Deployments monitor many patterns at once (the paper's evaluation
/// runs 50-query sets; the fraud example would register one pattern per
/// typology).  Building a full Gamma per query duplicates the GPMA and
/// the host mirror; MultiGamma shares them — per query it keeps only
/// the cheap parts (query context + candidate table) and fuses all
/// queries' seeds into each kernel launch, so one batch costs one
/// update + two matching launches total, not per query.
#pragma once

#include <memory>
#include <vector>

#include "core/gamma.hpp"

namespace bdsm {

struct MultiBatchResult {
  /// Per registered query, in registration order.
  std::vector<BatchResult> per_query;
  /// Device stats of the shared GPMA update (charged once).
  DeviceStats update_stats;
  double preprocess_host_seconds = 0.0;
};

class MultiGamma {
 public:
  explicit MultiGamma(const LabeledGraph& initial,
                      GammaOptions options = {});

  /// Registers a pattern; returns its stable id.  Ids are assigned
  /// monotonically and never reused, so they double as the per_query
  /// index only until the first RemoveQuery.
  size_t AddQuery(const QueryGraph& q);

  /// Unregisters a pattern; later batches no longer evaluate it.
  /// Returns false when the id is unknown (never assigned or already
  /// removed).
  bool RemoveQuery(size_t id);

  size_t NumQueries() const { return queries_.size(); }
  /// Live query ids, in registration order (aligned with
  /// MultiBatchResult::per_query).
  std::vector<size_t> QueryIds() const;
  const LabeledGraph& host_graph() const { return host_graph_; }

  /// Processes one batch for every registered query.
  MultiBatchResult ProcessBatch(const UpdateBatch& batch);

 private:
  friend class MultiGammaEngine;  // drives the same phases, with overlap

  struct PerQuery {
    size_t id = 0;
    QueryContext qctx;
    std::unique_ptr<CandidateEncoder> encoder;
  };

  /// Runs one polarity's kernel for every query (seeds fused into a
  /// single launch so small queries share the device).  The batch must
  /// already be sanitized; `out->per_query` must be sized.
  void RunMatchAll(const UpdateBatch& batch, bool positive,
                   MultiBatchResult* out);

  /// GPMA update + host mirror + dirty re-encode of every query's
  /// candidate table; fills the shared update stats and preprocess
  /// timing (batch must already be sanitized).
  void RunUpdate(const UpdateBatch& batch, MultiBatchResult* out);

  GammaOptions options_;
  LabeledGraph host_graph_;
  Gpma gpma_;
  Device device_;
  std::vector<PerQuery> queries_;
  size_t next_query_id_ = 0;
};

}  // namespace bdsm
