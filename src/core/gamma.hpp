/// \file gamma.hpp
/// The GAMMA system facade: the CPU-GPU heterogeneous pipeline of
/// Fig. 3 — Preprocess (CPU encoding + candidate table), Update (GPMA on
/// the device), BDSM computational kernel (WBM + work stealing +
/// coalesced search), Postprocess (match delivery).
///
/// Quickstart:
///   LabeledGraph g = LoadDataset(DatasetId::kGithub);
///   QueryGraph q = ...;
///   Gamma gamma(g, q, GammaOptions{});
///   BatchResult r = gamma.ProcessBatch(batch);
///   // r.positive_matches / r.negative_matches, r.* timings
///
/// Batch semantics (Problem Statement, §II-A): negative matches are the
/// embeddings of Q present before the batch that contain a deleted edge;
/// positive matches are the embeddings present after the batch that
/// contain an inserted edge.  Matches are deduplicated across the batch
/// by the total-order rule (each match attributed to its lowest-order
/// update edge).
#pragma once

#include <memory>
#include <vector>

#include "core/encoder.hpp"
#include "core/match.hpp"
#include "core/query_context.hpp"
#include "core/wbm_kernel.hpp"
#include "gpma/gpma.hpp"
#include "gpma/gpma_kernel.hpp"
#include "gpusim/device.hpp"
#include "graph/labeled_graph.hpp"
#include "graph/update_stream.hpp"

namespace bdsm {

struct GammaOptions {
  DeviceConfig device;          ///< steal_policy lives here (§V-A)
  bool coalesced_search = true; ///< §V-B
  /// Keep k >= 1 equivalent-edge groups even when their position orbits
  /// carry different encoder constraints (see BuildQueryContext).
  bool aggressive_coalescing = false;
  GpmaKernelOptions gpma;       ///< CG + cached-layer options (§V-C)
  /// Segment capacity of the GPMA (power of two).
  uint32_t gpma_segment_capacity = 32;
  /// Cap on incremental matches materialized per kernel launch
  /// (0 = unlimited).  Queries whose result sets exceed it are reported
  /// as unsolved, bounding memory the way the paper's 30-minute timeout
  /// bounds its 128 GB testbed.
  size_t result_cap = 1'500'000;
};

/// Everything one batch produced, plus the cost breakdown the
/// experiments report.
struct BatchResult {
  std::vector<MatchRecord> positive_matches;
  std::vector<MatchRecord> negative_matches;

  /// Host time spent re-encoding dirty vertices (CPU preprocess; runs
  /// concurrently with device work in the paper's async pipeline).
  double preprocess_host_seconds = 0.0;
  /// Simulated device time of the GPMA update kernel.
  DeviceStats update_stats;
  /// Simulated device time of the matching kernels (negatives+positives).
  DeviceStats match_stats;
  /// Host wall-clock of the whole ProcessBatch call (what a CPU baseline
  /// would be compared against on this machine).
  double host_wall_seconds = 0.0;
  /// The result cap was hit; match lists are truncated.
  bool overflowed = false;

  /// Modeled end-to-end device latency: update + matching makespan, with
  /// CPU preprocessing overlapped (it only counts where it exceeds the
  /// device work, per the asynchronous design of §IV-A).
  double ModeledSeconds(const DeviceConfig& cfg) const {
    double tick = cfg.TickSeconds();
    double device = static_cast<double>(update_stats.makespan_ticks +
                                        match_stats.makespan_ticks) *
                    tick;
    return std::max(device, preprocess_host_seconds);
  }

  size_t TotalMatches() const {
    return positive_matches.size() + negative_matches.size();
  }

  /// True when any kernel launch ran out of its host time budget or its
  /// result cap (the "unsolved query" condition of Table III).
  bool TimedOut() const {
    return match_stats.timed_out || update_stats.timed_out || overflowed;
  }
};

class Gamma {
 public:
  /// Builds the system over an initial graph: bulk-loads the GPMA,
  /// encodes every vertex, prepares the query context (matching orders,
  /// equivalent-edge groups).
  Gamma(const LabeledGraph& initial, const QueryGraph& query,
        GammaOptions options = {});

  /// Processes one update batch and returns the incremental matches.
  /// The batch is sanitized first (conflicting/no-op updates dropped).
  BatchResult ProcessBatch(const UpdateBatch& batch);

  const LabeledGraph& host_graph() const { return host_graph_; }
  const Gpma& device_graph() const { return gpma_; }
  const QueryContext& query_context() const { return qctx_; }
  const GammaOptions& options() const { return options_; }
  Device& device() { return device_; }

 private:
  friend class GammaEngine;  // drives the same phases via the unified
                             // Engine interface (see core/engine.hpp)

  /// ProcessBatch phases, shared with the engine adapter.  The batch
  /// passed to these must already be sanitized.
  WbmResult RunMatchPhase(const UpdateBatch& batch, bool positive);
  /// GPMA + host mirror + dirty re-encode; fills the result's update
  /// stats and preprocess timing.
  void RunUpdatePhase(const UpdateBatch& batch, BatchResult* result);

  GammaOptions options_;
  LabeledGraph host_graph_;
  Gpma gpma_;
  QueryContext qctx_;
  CandidateEncoder encoder_;
  Device device_;
};

}  // namespace bdsm
