/// \file provenance.hpp
/// Run provenance: the identifying header every observability artifact
/// (metrics JSON, chrome trace) carries so a number can always be
/// traced back to the exact (build, spec, scenario, seed) that
/// produced it — the precondition for honest regression tracking
/// (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>

namespace bdsm::obs {

/// The commit the binary was built from: `git describe --always
/// --dirty` captured at CMake configure time ("unknown" outside a git
/// checkout).  Configure-time, so it goes stale across commits without
/// a reconfigure — good enough for CI artifacts, which always build
/// fresh.
const char* GitDescribe();

/// What produced an artifact.  Drivers fill this once per run and pass
/// it to MetricsSnapshot::ToJson / TraceRecorder::WriteChromeJson.
struct RunProvenance {
  std::string tool;      ///< producing binary, e.g. "bench_scenarios"
  std::string scenario;  ///< scenario name(s), "" when not scenario-driven
  std::string engine;    ///< canonical engine spec(s)
  uint64_t seed = 0;
  std::string git = GitDescribe();
  bool obs_compiled = true;  ///< BDSM_OBS state of the producing build
};

/// Minimal JSON string escaping (quotes, backslashes, control chars)
/// shared by the obs exporters.
std::string JsonEscape(const std::string& s);

/// The provenance object as a JSON value, e.g.
/// `{"tool": "bench_scenarios", "scenario": "smoke", ...}`.
std::string ProvenanceJson(const RunProvenance& prov);

}  // namespace bdsm::obs
