#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "obs/provenance.hpp"

namespace bdsm::obs {

const char* DomainName(Domain d) {
  switch (d) {
    case Domain::kModeledDevice:
      return "modeled-device";
    case Domain::kCriticalPath:
      return "critical-path";
    case Domain::kHostWall:
      return "host-wall";
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

TraceRecorder::Buffer* TraceRecorder::ThisThreadBuffer() {
  // One recorder per process (singleton), so a plain thread_local
  // cache is safe; buffers outlive their threads (owned here).
  thread_local Buffer* cached = nullptr;
  if (cached == nullptr) {
    auto owned = std::make_unique<Buffer>();
    cached = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(owned));
  }
  return cached;
}

void TraceRecorder::Record(TraceSpan span) {
  Buffer* buf = ThisThreadBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->spans.push_back(std::move(span));
}

namespace {

/// Structural order: everything but the measured times, so a
/// deterministic span set sorts identically across runs; times break
/// remaining ties for stable rendering only.
bool StructuralLess(const TraceSpan& a, const TraceSpan& b) {
  return std::tie(a.domain, a.batch, a.shard, a.tenant, a.replica, a.name,
                  a.detail, a.start_s, a.dur_s) <
         std::tie(b.domain, b.batch, b.shard, b.tenant, b.replica, b.name,
                  b.detail, b.start_s, b.dur_s);
}

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvStr(uint64_t h, const std::string& s) {
  return Fnv1a(h, s.data(), s.size());
}

}  // namespace

std::vector<TraceSpan> TraceRecorder::Spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Buffer>& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::sort(out.begin(), out.end(), StructuralLess);
  return out;
}

uint64_t TraceRecorder::StructuralDigest() const {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const TraceSpan& s : Spans()) {
    h = FnvStr(h, s.name);
    const uint8_t domain = static_cast<uint8_t>(s.domain);
    h = Fnv1a(h, &domain, sizeof(domain));
    h = Fnv1a(h, &s.batch, sizeof(s.batch));
    h = Fnv1a(h, &s.shard, sizeof(s.shard));
    h = FnvStr(h, s.tenant);
    // Hashed only when tagged, so pre-replication golden digests
    // stay valid.
    if (s.replica >= 0) h = Fnv1a(h, &s.replica, sizeof(s.replica));
    h = FnvStr(h, s.detail);
  }
  return h;
}

bool TraceRecorder::WriteChromeJson(const std::string& path,
                                    const RunProvenance& prov) const {
  std::vector<TraceSpan> spans = Spans();

  // Lane (tid) assignment: shards take their own index; tenants get
  // stable lanes past the shard range, in first-appearance order of
  // the sorted span list (deterministic when the span set is).
  constexpr int32_t kTenantLaneBase = 1000;
  constexpr int32_t kReplicaLaneBase = 2000;
  std::map<std::string, int32_t> tenant_lane;
  for (const TraceSpan& s : spans) {
    if (!s.tenant.empty() && tenant_lane.count(s.tenant) == 0) {
      tenant_lane[s.tenant] =
          kTenantLaneBase + static_cast<int32_t>(tenant_lane.size());
    }
  }
  bool domain_present[3] = {false, false, false};
  bool replica_lane_present[3] = {false, false, false};
  for (const TraceSpan& s : spans) {
    domain_present[static_cast<size_t>(s.domain)] = true;
    if (s.replica >= 0 && s.shard < 0 && s.tenant.empty()) {
      replica_lane_present[static_cast<size_t>(s.domain)] = true;
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n\"displayTimeUnit\": \"ms\",\n";
  out << "\"otherData\": {\"schema\": \"bdsm-trace-v1\", \"provenance\": "
      << ProvenanceJson(prov) << "},\n";
  out << "\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  };
  // Process metadata: one tracing "process" per clock domain.
  for (int d = 0; d < 3; ++d) {
    if (!domain_present[d]) continue;
    emit("{\"ph\": \"M\", \"pid\": " + std::to_string(d + 1) +
         ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": "
         "\"clock: " +
         std::string(DomainName(static_cast<Domain>(d))) + "\"}}");
  }
  for (const auto& [tenant, lane] : tenant_lane) {
    for (int d = 0; d < 3; ++d) {
      if (!domain_present[d]) continue;
      emit("{\"ph\": \"M\", \"pid\": " + std::to_string(d + 1) +
           ", \"tid\": " + std::to_string(lane) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"tenant " +
           JsonEscape(tenant) + "\"}}");
    }
  }
  // Replica lanes: one per follower id past the tenant range, labeled
  // in every domain where replica spans appear.
  std::map<int32_t, bool> replica_ids;
  for (const TraceSpan& s : spans) {
    if (s.replica >= 0 && s.shard < 0 && s.tenant.empty()) {
      replica_ids[s.replica] = true;
    }
  }
  for (const auto& [rid, unused] : replica_ids) {
    (void)unused;
    for (int d = 0; d < 3; ++d) {
      if (!replica_lane_present[d]) continue;
      emit("{\"ph\": \"M\", \"pid\": " + std::to_string(d + 1) +
           ", \"tid\": " + std::to_string(kReplicaLaneBase + rid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"replica " +
           std::to_string(rid) + "\"}}");
    }
  }
  char buf[160];
  for (const TraceSpan& s : spans) {
    int32_t tid = 0;
    if (s.shard >= 0) {
      tid = s.shard + 1;
    } else if (!s.tenant.empty()) {
      tid = tenant_lane[s.tenant];
    } else if (s.replica >= 0) {
      tid = kReplicaLaneBase + s.replica;
    }
    // ts/dur are microseconds in the trace event format.
    std::snprintf(buf, sizeof(buf),
                  "\"ts\": %.6f, \"dur\": %.6f, \"pid\": %d, \"tid\": %d",
                  s.start_s * 1e6, s.dur_s * 1e6,
                  static_cast<int>(s.domain) + 1, tid);
    std::string event = "{\"ph\": \"X\", \"name\": \"" +
                        JsonEscape(s.name) + "\", \"cat\": \"" +
                        std::string(DomainName(s.domain)) + "\", " + buf +
                        ", \"args\": {\"batch\": " + std::to_string(s.batch);
    if (s.shard >= 0) event += ", \"shard\": " + std::to_string(s.shard);
    if (!s.tenant.empty()) {
      event += ", \"tenant\": \"" + JsonEscape(s.tenant) + "\"";
    }
    if (s.replica >= 0) {
      event += ", \"replica\": " + std::to_string(s.replica);
    }
    if (!s.detail.empty()) {
      event += ", \"detail\": \"" + JsonEscape(s.detail) + "\"";
    }
    event += "}}";
    emit(event);
  }
  out << "\n]\n}\n";
  return static_cast<bool>(out);
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Buffer>& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->spans.clear();
  }
}

}  // namespace bdsm::obs
