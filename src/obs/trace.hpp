/// \file trace.hpp
/// Phase-span tracing with clock-domain provenance, exported as
/// chrome://tracing JSON (docs/OBSERVABILITY.md).
///
/// Every span carries the clock domain its times were read from —
/// modeled-device, critical-path or host-wall, mirroring
/// Engine::Describe().clock — as its tracing *process*, so a mixed
/// trace (modeled kernel phases + thread-CPU shard spans + wall-clock
/// checkpoint IO) renders as three aligned-but-separate tracks and a
/// modeled span can never be misread as wall time.  Batch id, shard id
/// and tenant id tag every span that has them.
///
/// Recording is runtime-gated separately from metrics: spans cost
/// memory per event, so TraceRecorder::SetEnabled is flipped only by
/// --trace-out.  Span *content* on the deterministic clocks
/// (modeled-device spans, counts, ids) is a pure function of
/// (spec, scenario, seed); StructuralDigest() hashes exactly that
/// content, ignoring measured times, which is what the golden smoke
/// trace test pins.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // BDSM_OBS
#include "util/timer.hpp"

namespace bdsm::obs {

struct RunProvenance;  // provenance.hpp

/// The clock a span's start/duration were read from.  Values mirror
/// core's ClockDomain (core/engine.cpp maps between them; obs stays
/// below core in the layer order and cannot include engine.hpp).
enum class Domain : uint8_t {
  kModeledDevice = 0,  ///< simulated device makespan (deterministic)
  kCriticalPath = 1,   ///< slowest-shard thread-CPU (measured)
  kHostWall = 2,       ///< host wall clock (measured)
};

/// "modeled-device" | "critical-path" | "host-wall" (matches
/// ClockDomainName for the corresponding core enum).
const char* DomainName(Domain d);

/// One phase span.  `start_s`/`dur_s` are seconds on `domain`'s clock;
/// each emitting layer keeps its own per-domain cursor so spans of one
/// engine tile without overlap.
struct TraceSpan {
  std::string name;    ///< e.g. "engine.update", "serve.shard"
  Domain domain = Domain::kHostWall;
  double start_s = 0.0;
  double dur_s = 0.0;
  uint64_t batch = 0;   ///< emitting engine's batch sequence number
  int32_t shard = -1;   ///< shard index, -1 when not sharded
  std::string tenant;   ///< tenant name, "" when not tenant-scoped
  int32_t replica = -1;  ///< follower replica id, -1 when not replicated
  std::string detail;   ///< free-form annotation ("phase=update", counts)
};

/// Process-wide span sink.  Record() appends to a per-thread buffer
/// (own mutex, uncontended in steady state); Spans()/export merge and
/// deterministically order them.  Drain only at quiescence — between
/// batches or after a run — never concurrently with in-flight phases.
class TraceRecorder {
 public:
  static TraceRecorder& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Span recording master switch (drivers: --trace-out).  Metrics
  /// (obs::SetEnabled) can be on with tracing off, never vice versa in
  /// practice — emitting sites check both.
  void SetEnabled(bool on);

  void Record(TraceSpan span);

  /// Seconds since this recorder's construction — the shared epoch of
  /// every host-wall span, so wall spans from different layers align.
  double HostNowSeconds() const { return epoch_.ElapsedSeconds(); }

  /// All spans so far, merged across threads and sorted by the
  /// structural key (domain, batch, shard, tenant, replica, name,
  /// detail) — stable across runs whenever the span *set* is
  /// deterministic.
  std::vector<TraceSpan> Spans() const;

  /// FNV-1a hash over the sorted spans' structural fields (times
  /// excluded) — the golden-test determinism pin.
  uint64_t StructuralDigest() const;

  /// Writes the chrome://tracing JSON (object form: traceEvents +
  /// otherData provenance; load via chrome://tracing or Perfetto).
  /// Returns false on IO failure.
  bool WriteChromeJson(const std::string& path,
                       const RunProvenance& prov) const;

  /// Drops all recorded spans (keeps thread buffers registered).
  void Reset();

 private:
  TraceRecorder() = default;
  struct Buffer {
    std::mutex mu;
    std::vector<TraceSpan> spans;
  };
  Buffer* ThisThreadBuffer();

  mutable std::mutex mu_;  ///< guards buffers_ registration
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<bool> enabled_{false};
  Timer epoch_;
};

}  // namespace bdsm::obs
