#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

#include "obs/provenance.hpp"

namespace bdsm::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace detail

void SetEnabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------- Counter

void Counter::AddSecondsAsMicros(double seconds) {
  if (seconds <= 0.0) return;
  Add(static_cast<uint64_t>(std::llround(seconds * 1e6)));
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const detail::Cell& c : cells_) {
    sum += c.v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (detail::Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_((bounds_.size() + 1) * kStripes) {
  for (size_t s = 0; s < kStripes; ++s) sum_[s].store(0.0);
}

void Histogram::Observe(double x) {
  size_t bucket = 0;
  while (bucket < bounds_.size() && x > bounds_[bucket]) ++bucket;
  const size_t stripe = detail::ThreadStripe();
  counts_[bucket * kStripes + stripe].v.fetch_add(
      1, std::memory_order_relaxed);
  count_[stripe].v.fetch_add(1, std::memory_order_relaxed);
  sum_[stripe].fetch_add(x, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.resize(bounds_.size() + 1, 0);
  for (size_t b = 0; b < out.counts.size(); ++b) {
    for (size_t s = 0; s < kStripes; ++s) {
      out.counts[b] +=
          counts_[b * kStripes + s].v.load(std::memory_order_relaxed);
    }
  }
  for (size_t s = 0; s < kStripes; ++s) {
    out.count += count_[s].v.load(std::memory_order_relaxed);
    out.sum += sum_[s].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (detail::Cell& c : counts_) c.v.store(0, std::memory_order_relaxed);
  for (size_t s = 0; s < kStripes; ++s) {
    count_[s].v.store(0, std::memory_order_relaxed);
    sum_[s].store(0.0, std::memory_order_relaxed);
  }
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> bounds = {1,   10,  100, 1e3,
                                             1e4, 1e5, 1e6, 1e7};
  return bounds;
}

// --------------------------------------------------- MetricsSnapshot

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

namespace {

std::string DoubleJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson(const RunProvenance* prov) const {
  std::string out = "{\n  \"schema\": \"bdsm-metrics-v1\"";
  if (prov != nullptr) {
    out += ",\n  \"provenance\": " + ProvenanceJson(*prov);
  }
  out += ",\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + JsonEscape(counters[i].first) +
           "\": " + std::to_string(counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += "    \"" + JsonEscape(gauges[i].first) +
           "\": " + std::to_string(gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const Hist& h = histograms[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"name\": \"" + JsonEscape(h.name) + "\", \"bounds\": [";
    for (size_t b = 0; b < h.data.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += DoubleJson(h.data.bounds[b]);
    }
    out += "], \"counts\": [";
    for (size_t b = 0; b < h.data.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.data.counts[b]);
    }
    out += "], \"count\": " + std::to_string(h.data.count) +
           ", \"sum\": " + DoubleJson(h.data.sum) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

// --------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms.push_back(MetricsSnapshot::Hist{name, h->Snap()});
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace bdsm::obs
